module imdpp

go 1.24

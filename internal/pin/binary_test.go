package pin

import (
	"math"
	"testing"

	"imdpp/internal/wirebin"
)

func TestRowsBinaryRoundTrip(t *testing.T) {
	cases := [][][]PairRel{
		nil,
		{},
		{nil, {}},
		{
			{{Y: 1, Contribs: []Contrib{{Meta: 0, S: 0.5}}}, {Y: 3, Contribs: []Contrib{{Meta: 1, S: 0.75}, {Meta: 0, S: 0.125}}}},
			{{Y: 0, Contribs: []Contrib{{Meta: 0, S: 0.5}}}},
			{{Y: 1, Contribs: nil}},
			{},
		},
	}
	for ci, rows := range cases {
		b := AppendRowsBinary(nil, rows)
		got, err := DecodeRowsBinary(wirebin.NewReader(b))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if len(got) != len(rows) {
			t.Fatalf("case %d: %d rows != %d", ci, len(got), len(rows))
		}
		for x := range rows {
			if len(got[x]) != len(rows[x]) {
				t.Fatalf("case %d row %d: %d entries != %d", ci, x, len(got[x]), len(rows[x]))
			}
			for j := range rows[x] {
				w, g := rows[x][j], got[x][j]
				if w.Y != g.Y || len(w.Contribs) != len(g.Contribs) {
					t.Fatalf("case %d row %d entry %d drifted", ci, x, j)
				}
				for k := range w.Contribs {
					if w.Contribs[k].Meta != g.Contribs[k].Meta ||
						math.Float64bits(w.Contribs[k].S) != math.Float64bits(g.Contribs[k].S) {
						t.Fatalf("case %d row %d entry %d contrib %d drifted", ci, x, j, k)
					}
				}
			}
		}
	}
}

func FuzzDecodeRowsBinary(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRowsBinary(nil, [][]PairRel{{{Y: 2, Contribs: []Contrib{{Meta: 1, S: 0.25}}}}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := DecodeRowsBinary(wirebin.NewReader(data))
		if err != nil {
			return
		}
		b := AppendRowsBinary(nil, rows)
		if _, err := DecodeRowsBinary(wirebin.NewReader(b)); err != nil {
			t.Fatalf("re-encode of decoded rows failed: %v", err)
		}
	})
}

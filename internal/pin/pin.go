package pin

import (
	"fmt"
	"math"
	"sort"

	"imdpp/internal/kg"
)

// Contrib is one meta-graph's contribution to a related item pair.
// The JSON field names are a stable wire contract of the shard
// subsystem's problem upload.
type Contrib struct {
	Meta uint8   `json:"m"` // index into the model's meta-graph list
	S    float64 `json:"s"` // s(x,y|m)
}

// PairRel is one entry of an item's merged relevance row: the related
// item and the per-meta-graph contributions. JSON field names are a
// stable wire contract (shard problem upload).
type PairRel struct {
	Y        int32     `json:"y"`
	Contribs []Contrib `json:"c"`
}

// RelInit is one row entry's (rC, rS) under the initial weights.
type RelInit struct {
	RC, RS float64
}

// Model is the immutable relationship model shared by all users.
type Model struct {
	KG    *kg.KG
	Metas []*kg.MetaGraph // complementary first, then substitutable
	numC  int

	tables []*kg.RelTable
	// rows is the merged sparse structure: rows[x] lists every item
	// related to x under any meta-graph, sorted by Y, with the
	// per-meta contributions inline (symmetric: y appears in rows[x]
	// iff x appears in rows[y]).
	rows    [][]PairRel
	itemAdj [][]int32 // per item: sorted union of related items
	// initRel caches EvalContribs(InitWeights, ·) per row entry
	// (initRel[x][j] mirrors rows[x][j]): most users in a Monte-Carlo
	// sample never adopt, so their weights stay at InitWeights and the
	// diffusion hot loop can skip re-evaluating the weighted sum.
	initRel [][]RelInit

	// InitWeights is the initial Wmeta(u,·) every user starts with.
	InitWeights []float64
}

// NewModel builds relevance tables for every meta-graph and merges them
// into one sparse pair structure. metasC/metasS must be non-empty in
// total. initWeights, when nil, defaults to 0.3 per meta-graph (the
// paper's Fig. 1(c) uses small initial weightings that grow with
// adoptions).
func NewModel(g *kg.KG, metasC, metasS []*kg.MetaGraph, initWeights []float64) (*Model, error) {
	if len(metasC)+len(metasS) == 0 {
		return nil, fmt.Errorf("pin: no meta-graphs")
	}
	m := &Model{KG: g, numC: len(metasC)}
	m.Metas = append(m.Metas, metasC...)
	m.Metas = append(m.Metas, metasS...)
	for i, mg := range m.Metas {
		want := kg.Complementary
		if i >= m.numC {
			want = kg.Substitutable
		}
		if mg.Kind != want {
			return nil, fmt.Errorf("pin: meta-graph %q has kind %v, placed in %v list", mg.Name, mg.Kind, want)
		}
	}
	if initWeights == nil {
		initWeights = make([]float64, len(m.Metas))
		for i := range initWeights {
			initWeights[i] = 0.3
		}
	}
	if len(initWeights) != len(m.Metas) {
		return nil, fmt.Errorf("pin: initWeights len %d != %d meta-graphs", len(initWeights), len(m.Metas))
	}
	m.InitWeights = append([]float64(nil), initWeights...)

	pairs := make(map[uint64][]Contrib)
	for mi, mg := range m.Metas {
		t := kg.BuildRelTable(g, mg)
		m.tables = append(m.tables, t)
		for x := 0; x < g.NumItems(); x++ {
			for _, ir := range t.Row(x) {
				if int(ir.Other) < x {
					continue // unordered pairs once
				}
				key := pairKey(int32(x), ir.Other)
				pairs[key] = append(pairs[key], Contrib{Meta: uint8(mi), S: ir.S})
			}
		}
	}
	m.rows = make([][]PairRel, g.NumItems())
	for key, cs := range pairs {
		x := int32(key >> 32)
		y := int32(key & 0xffffffff)
		m.rows[x] = append(m.rows[x], PairRel{Y: y, Contribs: cs})
		m.rows[y] = append(m.rows[y], PairRel{Y: x, Contribs: cs})
	}
	m.itemAdj = make([][]int32, g.NumItems())
	m.initRel = make([][]RelInit, g.NumItems())
	for x := range m.rows {
		row := m.rows[x]
		sort.Slice(row, func(a, b int) bool { return row[a].Y < row[b].Y })
		adj := make([]int32, len(row))
		init := make([]RelInit, len(row))
		for i, pr := range row {
			adj[i] = pr.Y
			init[i].RC, init[i].RS = m.EvalContribs(m.InitWeights, pr.Contribs)
		}
		m.itemAdj[x] = adj
		m.initRel[x] = init
	}
	return m, nil
}

// ModelFromRows rebuilds a Model from its merged relevance rows — the
// wire image the shard subsystem ships to remote estimator workers.
// g supplies |I| (a minimal items-only KG suffices: the diffusion hot
// path never walks KG edges through the model); numC splits the
// initWeights-indexed meta-graph list into complementary then
// substitutable, matching NewModel's layout. The per-meta relevance
// tables, the item adjacency and the initial-weights relevance cache
// are all re-derived from the rows, and the derivations reuse the same
// arithmetic as NewModel, so a round-tripped model drives the
// diffusion — and hashes (service.HashProblem) — identically to the
// original. Meta-graph schemas are not part of the wire image;
// Metas holds placeholders and only its length is meaningful.
func ModelFromRows(g *kg.KG, numC int, initWeights []float64, rows [][]PairRel) (*Model, error) {
	numMeta := len(initWeights)
	if numMeta == 0 {
		return nil, fmt.Errorf("pin: no meta-graphs")
	}
	if numC < 0 || numC > numMeta {
		return nil, fmt.Errorf("pin: numC %d outside [0,%d]", numC, numMeta)
	}
	items := g.NumItems()
	if len(rows) != items {
		return nil, fmt.Errorf("pin: %d relevance rows != %d items", len(rows), items)
	}
	m := &Model{
		KG:          g,
		Metas:       make([]*kg.MetaGraph, numMeta),
		numC:        numC,
		rows:        rows,
		InitWeights: append([]float64(nil), initWeights...),
	}
	metaAdj := make([][][]kg.ItemRel, numMeta)
	for mi := range metaAdj {
		metaAdj[mi] = make([][]kg.ItemRel, items)
	}
	m.itemAdj = make([][]int32, items)
	m.initRel = make([][]RelInit, items)
	for x := range rows {
		row := rows[x]
		adj := make([]int32, len(row))
		init := make([]RelInit, len(row))
		for i, pr := range row {
			if int(pr.Y) < 0 || int(pr.Y) >= items {
				return nil, fmt.Errorf("pin: row %d: related item %d out of range", x, pr.Y)
			}
			if i > 0 && row[i-1].Y >= pr.Y {
				return nil, fmt.Errorf("pin: row %d not strictly ascending", x)
			}
			adj[i] = pr.Y
			// validate every meta index BEFORE EvalContribs touches the
			// weights slice: a corrupt upload must fail typed, not panic
			for _, c := range pr.Contribs {
				if int(c.Meta) >= numMeta {
					return nil, fmt.Errorf("pin: row %d: meta index %d out of range", x, c.Meta)
				}
			}
			init[i].RC, init[i].RS = m.EvalContribs(m.InitWeights, pr.Contribs)
			for _, c := range pr.Contribs {
				metaAdj[c.Meta][x] = append(metaAdj[c.Meta][x], kg.ItemRel{Other: pr.Y, S: c.S})
			}
		}
		m.itemAdj[x] = adj
		m.initRel[x] = init
	}
	for mi := range metaAdj {
		// rows are sorted by Y, so each filtered per-meta row is sorted
		// by Other — the same ordering BuildRelTable materialises
		m.tables = append(m.tables, kg.RelTableFromRows(metaAdj[mi]))
	}
	return m, nil
}

// Rows returns the full merged relevance structure (rows[x] mirrors
// Row(x)) — the payload ModelFromRows round-trips. Do not modify.
func (m *Model) Rows() [][]PairRel { return m.rows }

func pairKey(x, y int32) uint64 {
	if x > y {
		x, y = y, x
	}
	return uint64(x)<<32 | uint64(uint32(y))
}

// NumMeta returns the total number of meta-graphs.
func (m *Model) NumMeta() int { return len(m.Metas) }

// NumC returns the number of complementary meta-graphs.
func (m *Model) NumC() int { return m.numC }

// NumItems returns |I|.
func (m *Model) NumItems() int { return m.KG.NumItems() }

// Table returns the relevance table of meta-graph index mi (test aid).
func (m *Model) Table(mi int) *kg.RelTable { return m.tables[mi] }

// Neighbors returns the items related to x under any meta-graph,
// sorted ascending. The slice must not be modified.
func (m *Model) Neighbors(x int) []int32 { return m.itemAdj[x] }

// Row returns item x's merged relevance row sorted by Y; the hot loops
// of the diffusion engine iterate this directly. Do not modify.
func (m *Model) Row(x int) []PairRel { return m.rows[x] }

// InitRow returns item x's cached (rC, rS) row under InitWeights,
// aligned index-for-index with Row(x). Entries are bit-identical to
// EvalContribs(InitWeights, Row(x)[j].Contribs), so callers may use
// them whenever a user's weights are known to still be initial without
// perturbing any downstream RNG decision. Do not modify.
func (m *Model) InitRow(x int) []RelInit { return m.initRel[x] }

// EvalContribs turns one row entry's contributions into (rC, rS) under
// weighting vector w, clamped to [0,1].
func (m *Model) EvalContribs(w []float64, cs []Contrib) (rc, rs float64) {
	for _, c := range cs {
		v := w[c.Meta] * c.S
		if int(c.Meta) < m.numC {
			rc += v
		} else {
			rs += v
		}
	}
	return clamp01(rc), clamp01(rs)
}

// Rel evaluates (rC, rS) between items x and y under weighting vector
// w (one weight per meta-graph, as stored per user by the diffusion
// state). Both are clamped to [0,1].
func (m *Model) Rel(w []float64, x, y int) (rc, rs float64) {
	if x == y {
		return 0, 0
	}
	row := m.rows[x]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(row[mid].Y) < y {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(row) || int(row[lo].Y) != y {
		return 0, 0
	}
	return m.EvalContribs(w, row[lo].Contribs)
}

// RelStatic evaluates (rC, rS) under the initial weights — the
// "relevance over all users before any adoption" view used by TMI when
// clustering nominees.
func (m *Model) RelStatic(x, y int) (rc, rs float64) {
	return m.Rel(m.InitWeights, x, y)
}

// SupportOf returns Σ_{b ∈ adopted, b≠a} s(a,b|m) for meta-graph mi —
// how well meta-graph mi explains co-adoption of a with the already
// adopted items. adopted is a callback to avoid coupling to the
// diffusion state's bitset layout.
func (m *Model) SupportOf(mi int, a int, adopted func(item int) bool) float64 {
	t := m.tables[mi]
	sum := 0.0
	for _, ir := range t.Row(a) {
		if int(ir.Other) != a && adopted(int(ir.Other)) {
			sum += ir.S
		}
	}
	return sum
}

// UpdateWeights applies the relevance-measurement update for user
// weights w after the user newly adopted items newItems (the rest of
// the adoption set is reported by adopted):
//
//	Wmeta(u,m) ← min(1, Wmeta(u,m) + η·Σ_{a∈new} SupportOf(m,a))
//
// It reports whether any weight changed.
func (m *Model) UpdateWeights(w []float64, newItems []int, adopted func(item int) bool, eta float64) bool {
	changed := false
	for mi := range m.Metas {
		sup := 0.0
		for _, a := range newItems {
			sup += m.SupportOf(mi, a, adopted)
		}
		if sup == 0 {
			continue
		}
		nw := w[mi] + eta*sup
		if nw > 1 {
			nw = 1
		}
		if nw != w[mi] {
			w[mi] = nw
			changed = true
		}
	}
	return changed
}

// CosSim returns the cosine similarity of two weighting vectors, the
// personal-item-network half of the influence-learning similarity.
func CosSim(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// AvgRel returns the average (r̄C, r̄S) between items x and y over the
// given users' weighting vectors (weights[u] is user u's vector). This
// is the r̄C_{x,y} / r̄S_{x,y} of Sec. IV used by TMI, DRE and AE.
func (m *Model) AvgRel(weights [][]float64, users []int, x, y int) (rc, rs float64) {
	if len(users) == 0 {
		return m.RelStatic(x, y)
	}
	for _, u := range users {
		c, s := m.Rel(weights[u], x, y)
		rc += c
		rs += s
	}
	n := float64(len(users))
	return rc / n, rs / n
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

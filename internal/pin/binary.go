package pin

import (
	"fmt"

	"imdpp/internal/wirebin"
)

// Binary codec of the merged relevance rows — the PIN model's half of
// the shard subsystem's binary problem upload (DESIGN.md §8). Rows are
// sorted by related-item id (a Model invariant), so the Y ids encode
// as first-id + ascending deltas; contributions are a meta index byte
// plus a compact float. Like the JSON form, the binary image carries
// no derived state: ModelFromRows revalidates and rebuilds initRel
// from whatever arrives.

// AppendRowsBinary appends the binary image of merged relevance rows.
func AppendRowsBinary(b []byte, rows [][]PairRel) []byte {
	b = wirebin.AppendUvarint(b, uint64(len(rows)))
	for _, row := range rows {
		b = wirebin.AppendUvarint(b, uint64(len(row)))
		prev := int32(0)
		for i, pr := range row {
			if i == 0 {
				b = wirebin.AppendVarint(b, int64(pr.Y))
			} else {
				if pr.Y < prev {
					panic(fmt.Sprintf("pin: AppendRowsBinary row not sorted by Y: %d after %d", pr.Y, prev))
				}
				b = wirebin.AppendUvarint(b, uint64(pr.Y-prev))
			}
			prev = pr.Y
			b = wirebin.AppendUvarint(b, uint64(len(pr.Contribs)))
			for _, c := range pr.Contribs {
				b = wirebin.AppendU8(b, c.Meta)
				b = wirebin.AppendFloat(b, c.S)
			}
		}
	}
	return b
}

// DecodeRowsBinary reads merged relevance rows written by
// AppendRowsBinary. Structural validation (meta ranges, symmetry)
// stays in ModelFromRows, exactly as on the JSON path.
func DecodeRowsBinary(r *wirebin.Reader) ([][]PairRel, error) {
	n := r.Count(1)
	if r.Err() != nil {
		return nil, fmt.Errorf("pin: decode rows: %w", r.Err())
	}
	rows := make([][]PairRel, n)
	for x := range rows {
		cnt := r.Count(2) // ≥ id varint + contrib count per entry
		if r.Err() != nil {
			return nil, fmt.Errorf("pin: decode rows: %w", r.Err())
		}
		if cnt == 0 {
			continue
		}
		row := make([]PairRel, cnt)
		prev := int64(0)
		for i := range row {
			if i == 0 {
				prev = r.Varint()
			} else {
				prev += int64(r.Uvarint())
			}
			if prev < 0 || prev > int64(^uint32(0)>>1) {
				return nil, fmt.Errorf("pin: decode rows: related id %d out of int32 range", prev)
			}
			row[i].Y = int32(prev)
			cn := r.Count(2) // meta byte + float tag at minimum
			if r.Err() != nil {
				return nil, fmt.Errorf("pin: decode rows: %w", r.Err())
			}
			if cn > 0 {
				contribs := make([]Contrib, cn)
				for j := range contribs {
					contribs[j].Meta = r.U8()
					contribs[j].S = r.Float()
				}
				row[i].Contribs = contribs
			}
		}
		rows[x] = row
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("pin: decode rows: %w", err)
	}
	return rows, nil
}

// Package pin implements personal item networks: the per-user dynamic
// perception of item relationships (Sec. V-A(1) of the paper).
//
// A Model bundles the meta-graphs {mC} ∪ {mS} with their materialised
// relevance tables s(x,y|m). A user's perception is a weighting vector
// over the meta-graphs; the complementary / substitutable relevance in
// that user's personal item network is the weighting-weighted sum of
// the per-meta-graph relevance:
//
//	rC(u,x,y) = Σ_{m ∈ mC} Wmeta(u,m)·s(x,y|m)   (clamped to [0,1])
//	rS(u,x,y) = Σ_{m ∈ mS} Wmeta(u,m)·s(x,y|m)
//
// Adoptions update the weightings (SemRec-style): meta-graphs that
// explain co-adoptions gain weight, reproducing Fig. 1(c)→(d).
package pin

package pin

import (
	"math"
	"testing"
	"testing/quick"

	"imdpp/internal/kg"
)

// appleKG rebuilds the paper's Fig. 1 toy KG (iPhone, AirPods,
// wireless charger, charging cable) plus a substitutable rival pair,
// and returns the model inputs.
func appleKG(t *testing.T) (g *kg.KG, metaC, metaS []*kg.MetaGraph, ids map[string]int) {
	t.Helper()
	b := kg.NewBuilder()
	tItem := b.NodeTypeID("ITEM")
	tFeature := b.NodeTypeID("FEATURE")
	tBrand := b.NodeTypeID("BRAND")
	tCategory := b.NodeTypeID("CATEGORY")
	eSupports := b.EdgeTypeID("SUPPORTS")
	eMadeBy := b.EdgeTypeID("MADE_BY")
	eInCat := b.EdgeTypeID("IN_CATEGORY")

	nIPhone := b.AddNode(tItem)
	nAirPods := b.AddNode(tItem)
	nCharger := b.AddNode(tItem)
	nBuds := b.AddNode(tItem) // rival earbuds, substitutable with AirPods
	nBluetooth := b.AddNode(tFeature)
	nQi := b.AddNode(tFeature)
	nApple := b.AddNode(tBrand)
	nAudio := b.AddNode(tCategory)

	b.AddEdge(nIPhone, nBluetooth, eSupports)
	b.AddEdge(nAirPods, nBluetooth, eSupports)
	b.AddEdge(nIPhone, nQi, eSupports)
	b.AddEdge(nCharger, nQi, eSupports)
	b.AddEdge(nIPhone, nApple, eMadeBy)
	b.AddEdge(nAirPods, nApple, eMadeBy)
	b.AddEdge(nCharger, nApple, eMadeBy)
	b.AddEdge(nAirPods, nAudio, eInCat)
	b.AddEdge(nBuds, nAudio, eInCat)

	g = b.Build()
	metaC = []*kg.MetaGraph{
		kg.PathMetaGraph("m1:feature", kg.Complementary, tItem, tFeature, eSupports, eSupports),
		kg.PathMetaGraph("m2:brand", kg.Complementary, tItem, tBrand, eMadeBy, eMadeBy),
	}
	metaS = []*kg.MetaGraph{
		kg.PathMetaGraph("s1:category", kg.Substitutable, tItem, tCategory, eInCat, eInCat),
	}
	ids = map[string]int{
		"iPhone":  g.ItemID(nIPhone),
		"AirPods": g.ItemID(nAirPods),
		"Charger": g.ItemID(nCharger),
		"Buds":    g.ItemID(nBuds),
	}
	return g, metaC, metaS, ids
}

func newTestModel(t *testing.T, init []float64) (*Model, map[string]int) {
	t.Helper()
	g, mc, ms, ids := appleKG(t)
	m, err := NewModel(g, mc, ms, init)
	if err != nil {
		t.Fatal(err)
	}
	return m, ids
}

func TestNewModelValidation(t *testing.T) {
	g, mc, ms, _ := appleKG(t)
	if _, err := NewModel(g, nil, nil, nil); err == nil {
		t.Fatal("empty meta-graphs accepted")
	}
	if _, err := NewModel(g, ms, nil, nil); err == nil {
		t.Fatal("substitutable meta accepted in complementary list")
	}
	if _, err := NewModel(g, mc, ms, []float64{1}); err == nil {
		t.Fatal("wrong initWeights length accepted")
	}
	if _, err := NewModel(g, mc, ms, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelCounts(t *testing.T) {
	m, _ := newTestModel(t, nil)
	if m.NumMeta() != 3 || m.NumC() != 2 {
		t.Fatalf("meta counts %d/%d", m.NumMeta(), m.NumC())
	}
	if m.NumItems() != 4 {
		t.Fatalf("items %d", m.NumItems())
	}
	if len(m.InitWeights) != 3 {
		t.Fatalf("init weights %v", m.InitWeights)
	}
}

func TestRelValues(t *testing.T) {
	m, ids := newTestModel(t, []float64{0.4, 0.2, 0.6})
	// iPhone-AirPods: feature s=0.5 (Bluetooth) w=0.4, brand s=0.5 w=0.2
	rc, rs := m.Rel([]float64{0.4, 0.2, 0.6}, ids["iPhone"], ids["AirPods"])
	if math.Abs(rc-(0.4*0.5+0.2*0.5)) > 1e-12 {
		t.Fatalf("rc = %v", rc)
	}
	if rs != 0 {
		t.Fatalf("rs = %v", rs)
	}
	// AirPods-Buds: category s=0.5 w=0.6 substitutable only
	rc, rs = m.Rel([]float64{0.4, 0.2, 0.6}, ids["AirPods"], ids["Buds"])
	if rc != 0 || math.Abs(rs-0.3) > 1e-12 {
		t.Fatalf("rc=%v rs=%v", rc, rs)
	}
	// self
	if rc, rs = m.Rel(m.InitWeights, ids["iPhone"], ids["iPhone"]); rc != 0 || rs != 0 {
		t.Fatal("self relevance nonzero")
	}
	// unrelated: Charger-Buds
	if rc, rs = m.Rel(m.InitWeights, ids["Charger"], ids["Buds"]); rc != 0 || rs != 0 {
		t.Fatal("unrelated pair nonzero")
	}
}

func TestRelSymmetry(t *testing.T) {
	m, _ := newTestModel(t, nil)
	w := []float64{0.7, 0.1, 0.9}
	for x := 0; x < m.NumItems(); x++ {
		for y := 0; y < m.NumItems(); y++ {
			c1, s1 := m.Rel(w, x, y)
			c2, s2 := m.Rel(w, y, x)
			if c1 != c2 || s1 != s2 {
				t.Fatalf("asymmetric relevance (%d,%d)", x, y)
			}
		}
	}
}

func TestRelLinearInWeights(t *testing.T) {
	m, ids := newTestModel(t, nil)
	x, y := ids["iPhone"], ids["AirPods"]
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw) / 512 // keep sums below the clamp
		b := float64(bRaw) / 512
		rcA, _ := m.Rel([]float64{a, 0, 0}, x, y)
		rcB, _ := m.Rel([]float64{b, 0, 0}, x, y)
		rcAB, _ := m.Rel([]float64{a + b, 0, 0}, x, y)
		return math.Abs(rcAB-(rcA+rcB)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelClamped(t *testing.T) {
	m, ids := newTestModel(t, nil)
	// huge weights must clamp at 1
	rc, _ := m.Rel([]float64{100, 100, 100}, ids["iPhone"], ids["AirPods"])
	if rc != 1 {
		t.Fatalf("rc = %v, want clamp at 1", rc)
	}
}

func TestNeighbors(t *testing.T) {
	m, ids := newTestModel(t, nil)
	nb := m.Neighbors(ids["iPhone"])
	// iPhone relates to AirPods (feature+brand) and Charger (feature+brand)
	if len(nb) != 2 {
		t.Fatalf("iPhone neighbors %v", nb)
	}
	for i := 1; i < len(nb); i++ {
		if nb[i] <= nb[i-1] {
			t.Fatalf("neighbors not sorted: %v", nb)
		}
	}
	// Buds relates only to AirPods
	nb = m.Neighbors(ids["Buds"])
	if len(nb) != 1 || int(nb[0]) != ids["AirPods"] {
		t.Fatalf("Buds neighbors %v", nb)
	}
}

func TestRowMatchesRel(t *testing.T) {
	m, _ := newTestModel(t, nil)
	w := []float64{0.5, 0.25, 0.75}
	for x := 0; x < m.NumItems(); x++ {
		for _, pr := range m.Row(x) {
			rc1, rs1 := m.EvalContribs(w, pr.Contribs)
			rc2, rs2 := m.Rel(w, x, int(pr.Y))
			if rc1 != rc2 || rs1 != rs2 {
				t.Fatalf("Row/Rel disagree at (%d,%d)", x, pr.Y)
			}
		}
	}
}

func TestSupportOf(t *testing.T) {
	m, ids := newTestModel(t, nil)
	adopted := map[int]bool{ids["iPhone"]: true}
	// support of AirPods under m1 (feature): s(AirPods,iPhone|m1)=0.5
	sup := m.SupportOf(0, ids["AirPods"], func(i int) bool { return adopted[i] })
	if math.Abs(sup-0.5) > 1e-12 {
		t.Fatalf("support %v", sup)
	}
	// support under s1 (category): iPhone not in audio category → 0
	sup = m.SupportOf(2, ids["AirPods"], func(i int) bool { return adopted[i] })
	if sup != 0 {
		t.Fatalf("category support %v", sup)
	}
}

func TestUpdateWeightsGrowsExplainingMeta(t *testing.T) {
	m, ids := newTestModel(t, []float64{0.2, 0.2, 0.6})
	w := append([]float64(nil), m.InitWeights...)
	adopted := map[int]bool{ids["iPhone"]: true, ids["AirPods"]: true}
	changed := m.UpdateWeights(w, []int{ids["AirPods"]}, func(i int) bool { return adopted[i] }, 0.25)
	if !changed {
		t.Fatal("no weight change")
	}
	// Fig. 1(c)→(d): weightings on m1 (feature) and m2 (brand) grow…
	if w[0] <= 0.2 || w[1] <= 0.2 {
		t.Fatalf("complementary weightings did not grow: %v", w)
	}
	// …while the substitutable meta stays (AirPods/iPhone share no category)
	if w[2] != 0.6 {
		t.Fatalf("substitutable weighting moved: %v", w)
	}
}

func TestUpdateWeightsCapAtOne(t *testing.T) {
	m, ids := newTestModel(t, []float64{0.99, 0.99, 0.99})
	w := append([]float64(nil), m.InitWeights...)
	adopted := map[int]bool{ids["iPhone"]: true, ids["AirPods"]: true, ids["Charger"]: true}
	m.UpdateWeights(w, []int{ids["AirPods"], ids["Charger"]}, func(i int) bool { return adopted[i] }, 10)
	for i, v := range w {
		if v > 1 {
			t.Fatalf("weight %d over cap: %v", i, v)
		}
	}
}

func TestUpdateWeightsNoSupportNoChange(t *testing.T) {
	m, ids := newTestModel(t, nil)
	w := append([]float64(nil), m.InitWeights...)
	// Buds alone: nothing else adopted → no support anywhere
	changed := m.UpdateWeights(w, []int{ids["Buds"]}, func(int) bool { return false }, 0.25)
	if changed {
		t.Fatalf("unexpected change: %v", w)
	}
}

func TestCosSim(t *testing.T) {
	if v := CosSim([]float64{1, 0}, []float64{1, 0}); math.Abs(v-1) > 1e-12 {
		t.Fatalf("identical cos %v", v)
	}
	if v := CosSim([]float64{1, 0}, []float64{0, 1}); v != 0 {
		t.Fatalf("orthogonal cos %v", v)
	}
	if v := CosSim([]float64{0, 0}, []float64{1, 1}); v != 0 {
		t.Fatalf("zero-vector cos %v", v)
	}
}

func TestAvgRel(t *testing.T) {
	m, ids := newTestModel(t, []float64{0.2, 0.2, 0.6})
	weights := [][]float64{
		{0.2, 0.2, 0.6},
		{0.6, 0.2, 0.6},
	}
	rc, _ := m.AvgRel(weights, []int{0, 1}, ids["iPhone"], ids["AirPods"])
	// user0: 0.2*.5+0.2*.5 = 0.2; user1: 0.6*.5+0.2*.5 = 0.4 → avg 0.3
	if math.Abs(rc-0.3) > 1e-12 {
		t.Fatalf("avg rc %v", rc)
	}
	// empty user set falls back to the static view
	rcStatic, _ := m.AvgRel(weights, nil, ids["iPhone"], ids["AirPods"])
	wantC, _ := m.RelStatic(ids["iPhone"], ids["AirPods"])
	if rcStatic != wantC {
		t.Fatalf("static fallback %v vs %v", rcStatic, wantC)
	}
}

package kg

import (
	"fmt"
	"sort"
)

// NodeType identifies a node type (Φ image), e.g. ITEM, FEATURE, BRAND.
type NodeType uint8

// EdgeType identifies an edge type (Ψ image), e.g. SUPPORTS, MADE_BY.
type EdgeType uint8

// TypedEdge is an arc in the knowledge graph.
type TypedEdge struct {
	To int32
	ET EdgeType
}

// KG is an immutable heterogeneous information network. Node ids are
// dense 0..N-1; items are the nodes whose type equals the ITEM type
// registered at construction, and each item node also has a dense item
// id 0..|I|-1 used throughout the diffusion engine.
type KG struct {
	nodeTypeNames []string
	edgeTypeNames []string
	itemType      NodeType

	ntype []NodeType
	out   [][]TypedEdge
	in    [][]TypedEdge

	items     []int32 // item id -> KG node id
	itemIndex []int32 // KG node id -> item id or -1
}

// Builder assembles a KG.
type Builder struct {
	nodeTypeNames []string
	edgeTypeNames []string
	itemType      NodeType
	hasItemType   bool

	ntype []NodeType
	edges []struct {
		u, v int32
		et   EdgeType
	}
}

// NewBuilder creates a KG builder.
func NewBuilder() *Builder { return &Builder{} }

// NodeTypeID registers (or returns) the type id for name. The first
// registration of "ITEM" marks the item type.
func (b *Builder) NodeTypeID(name string) NodeType {
	for i, n := range b.nodeTypeNames {
		if n == name {
			return NodeType(i)
		}
	}
	if len(b.nodeTypeNames) >= 250 {
		panic("kg: too many node types")
	}
	b.nodeTypeNames = append(b.nodeTypeNames, name)
	id := NodeType(len(b.nodeTypeNames) - 1)
	if name == "ITEM" {
		b.itemType = id
		b.hasItemType = true
	}
	return id
}

// EdgeTypeID registers (or returns) the type id for name.
func (b *Builder) EdgeTypeID(name string) EdgeType {
	for i, n := range b.edgeTypeNames {
		if n == name {
			return EdgeType(i)
		}
	}
	if len(b.edgeTypeNames) >= 250 {
		panic("kg: too many edge types")
	}
	b.edgeTypeNames = append(b.edgeTypeNames, name)
	return EdgeType(len(b.edgeTypeNames) - 1)
}

// AddNode appends a node of type t and returns its id.
func (b *Builder) AddNode(t NodeType) int {
	b.ntype = append(b.ntype, t)
	return len(b.ntype) - 1
}

// AddEdge records a directed typed edge u->v.
func (b *Builder) AddEdge(u, v int, et EdgeType) {
	if u < 0 || u >= len(b.ntype) || v < 0 || v >= len(b.ntype) {
		panic(fmt.Sprintf("kg: edge (%d,%d) out of range n=%d", u, v, len(b.ntype)))
	}
	b.edges = append(b.edges, struct {
		u, v int32
		et   EdgeType
	}{int32(u), int32(v), et})
}

// Build finalises the KG. It panics if no ITEM node type was registered.
func (b *Builder) Build() *KG {
	if !b.hasItemType {
		panic("kg: Build without an ITEM node type")
	}
	n := len(b.ntype)
	g := &KG{
		nodeTypeNames: append([]string(nil), b.nodeTypeNames...),
		edgeTypeNames: append([]string(nil), b.edgeTypeNames...),
		itemType:      b.itemType,
		ntype:         append([]NodeType(nil), b.ntype...),
		out:           make([][]TypedEdge, n),
		in:            make([][]TypedEdge, n),
		itemIndex:     make([]int32, n),
	}
	for _, e := range b.edges {
		g.out[e.u] = append(g.out[e.u], TypedEdge{To: e.v, ET: e.et})
		g.in[e.v] = append(g.in[e.v], TypedEdge{To: e.u, ET: e.et})
	}
	for v := 0; v < n; v++ {
		g.itemIndex[v] = -1
		if g.ntype[v] == g.itemType {
			g.itemIndex[v] = int32(len(g.items))
			g.items = append(g.items, int32(v))
		}
	}
	return g
}

// N returns the number of KG nodes.
func (g *KG) N() int { return len(g.ntype) }

// M returns the number of typed edges.
func (g *KG) M() int {
	m := 0
	for _, es := range g.out {
		m += len(es)
	}
	return m
}

// NumItems returns |I|.
func (g *KG) NumItems() int { return len(g.items) }

// ItemNode returns the KG node id of item i.
func (g *KG) ItemNode(i int) int { return int(g.items[i]) }

// ItemID returns the dense item id of KG node v, or -1.
func (g *KG) ItemID(v int) int { return int(g.itemIndex[v]) }

// NodeTypeOf returns Φ(v).
func (g *KG) NodeTypeOf(v int) NodeType { return g.ntype[v] }

// NodeTypeName returns the registered name of t.
func (g *KG) NodeTypeName(t NodeType) string { return g.nodeTypeNames[t] }

// EdgeTypeName returns the registered name of t.
func (g *KG) EdgeTypeName(t EdgeType) string { return g.edgeTypeNames[t] }

// NumNodeTypes returns the count of registered node types (Table II row).
func (g *KG) NumNodeTypes() int { return len(g.nodeTypeNames) }

// NumEdgeTypes returns the count of registered edge types (Table II row).
func (g *KG) NumEdgeTypes() int { return len(g.edgeTypeNames) }

// Out returns the outgoing typed edges of v; do not modify.
func (g *KG) Out(v int) []TypedEdge { return g.out[v] }

// In returns the incoming typed edges of v; do not modify.
func (g *KG) In(v int) []TypedEdge { return g.in[v] }

// LookupNodeType returns the id of a registered type name.
func (g *KG) LookupNodeType(name string) (NodeType, bool) {
	for i, n := range g.nodeTypeNames {
		if n == name {
			return NodeType(i), true
		}
	}
	return 0, false
}

// LookupEdgeType returns the id of a registered edge type name.
func (g *KG) LookupEdgeType(name string) (EdgeType, bool) {
	for i, n := range g.edgeTypeNames {
		if n == name {
			return EdgeType(i), true
		}
	}
	return 0, false
}

// ItemsSorted returns the item node ids in ascending order (test aid).
func (g *KG) ItemsSorted() []int {
	out := make([]int, len(g.items))
	for i, v := range g.items {
		out[i] = int(v)
	}
	sort.Ints(out)
	return out
}

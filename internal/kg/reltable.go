package kg

import "sort"

// ItemRel is one entry of a sparse item-to-item relevance row.
type ItemRel struct {
	Other int32   // the other item id
	S     float64 // s(x,other|m) in [0,1)
}

// RelTable is the materialised pairwise relevance s(x,y|m) of one
// meta-graph over all item pairs. Relevance is stored symmetrically:
// s(x,y) == s(y,x), matching the undirected semantics of the
// complementary / substitutable relationships in the paper.
type RelTable struct {
	Meta *MetaGraph
	adj  [][]ItemRel // per item id, sorted by Other
}

// saturate maps an instance count into [0,1): c/(c+1). Monotone in c,
// 0 for no instances — the "correlated to the number of m's instances"
// requirement of Sec. V-A(1) with a bounded range.
func saturate(c int) float64 {
	if c <= 0 {
		return 0
	}
	return float64(c) / float64(c+1)
}

// BuildRelTable counts meta-graph instances for all item pairs and
// returns the sparse relevance table. It uses structure-aware
// enumeration for the three canonical shapes (direct edge, common-mid
// path, diamond) and falls back to generic homomorphism counting for
// other small schemas.
func BuildRelTable(g *KG, m *MetaGraph) *RelTable {
	counts := make(map[uint64]int)
	switch {
	case m.isDirect():
		m.countDirect(g, counts)
	case m.isPath():
		m.countPath(g, counts)
	case m.isDiamond():
		m.countDiamond(g, counts)
	default:
		m.countGeneric(g, counts)
	}
	t := &RelTable{Meta: m, adj: make([][]ItemRel, g.NumItems())}
	for key, c := range counts {
		x := int32(key >> 32)
		y := int32(key & 0xffffffff)
		s := saturate(c)
		t.adj[x] = append(t.adj[x], ItemRel{Other: y, S: s})
		t.adj[y] = append(t.adj[y], ItemRel{Other: x, S: s})
	}
	for i := range t.adj {
		row := t.adj[i]
		sort.Slice(row, func(a, b int) bool { return row[a].Other < row[b].Other })
	}
	return t
}

func pairKey(x, y int32) uint64 {
	if x > y {
		x, y = y, x
	}
	return uint64(x)<<32 | uint64(uint32(y))
}

// RelTableFromRows wraps pre-materialised relevance rows (adj[x]
// sorted by Other) as a RelTable with no meta-graph schema attached.
// The shard subsystem uses it to rebuild a worker-side pin.Model from
// the wire image of the merged relevance rows: the diffusion hot path
// only ever reads tables through Row/S, so a schema-less table is
// indistinguishable from one materialised by BuildRelTable with the
// same contents.
func RelTableFromRows(adj [][]ItemRel) *RelTable { return &RelTable{adj: adj} }

// S returns s(x,y|m); 0 when the pair has no instances or x==y.
func (t *RelTable) S(x, y int) float64 {
	if x == y {
		return 0
	}
	row := t.adj[x]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(row[mid].Other) < y {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && int(row[lo].Other) == y {
		return row[lo].S
	}
	return 0
}

// Row returns the sorted sparse relevance row of item x; do not modify.
func (t *RelTable) Row(x int) []ItemRel { return t.adj[x] }

// NumPairs returns the number of related unordered item pairs.
func (t *RelTable) NumPairs() int {
	n := 0
	for _, row := range t.adj {
		n += len(row)
	}
	return n / 2
}

// --- shape detection -------------------------------------------------

func (m *MetaGraph) isDirect() bool {
	return len(m.types) == 2 && len(m.edges) == 1 &&
		((m.edges[0].from == 0 && m.edges[0].to == 1) || (m.edges[0].from == 1 && m.edges[0].to == 0))
}

// isPath matches ITEM -e1-> MID <-e2- ITEM (both endpoints point at the
// single internal node).
func (m *MetaGraph) isPath() bool {
	if len(m.types) != 3 || len(m.edges) != 2 {
		return false
	}
	seen := [2]bool{}
	for _, e := range m.edges {
		if e.to != 2 || e.from > 1 {
			return false
		}
		seen[e.from] = true
	}
	return seen[0] && seen[1]
}

// isDiamond matches the two-mid schema produced by DiamondMetaGraph.
func (m *MetaGraph) isDiamond() bool {
	if len(m.types) != 4 || len(m.edges) != 4 {
		return false
	}
	for _, e := range m.edges {
		if e.from > 1 || (e.to != 2 && e.to != 3) {
			return false
		}
	}
	return true
}

// --- structural counters ---------------------------------------------

func (m *MetaGraph) countDirect(g *KG, counts map[uint64]int) {
	et := m.edges[0].et
	for xi := 0; xi < g.NumItems(); xi++ {
		x := g.ItemNode(xi)
		for _, te := range g.Out(x) {
			if te.ET != et {
				continue
			}
			yi := g.ItemID(int(te.To))
			if yi >= 0 && yi != xi {
				counts[pairKey(int32(xi), int32(yi))]++
			}
		}
	}
}

func (m *MetaGraph) countPath(g *KG, counts map[uint64]int) {
	var e1, e2 EdgeType
	for _, e := range m.edges {
		if e.from == 0 {
			e1 = e.et
		} else {
			e2 = e.et
		}
	}
	midType := m.types[2]
	for w := 0; w < g.N(); w++ {
		if g.NodeTypeOf(w) != midType {
			continue
		}
		var left, right []int32
		for _, te := range g.In(w) {
			ii := g.ItemID(int(te.To))
			if ii < 0 {
				continue
			}
			if te.ET == e1 {
				left = append(left, int32(ii))
			}
			if te.ET == e2 {
				right = append(right, int32(ii))
			}
		}
		for _, x := range left {
			for _, y := range right {
				if x == y {
					continue
				}
				// Instances are ordered homomorphisms; counting each
				// unordered pair once per (x in left, y in right)
				// matches the symmetric relevance we expose. Avoid
				// double-count when e1 == e2 by requiring x < y.
				if e1 == e2 && x > y {
					continue
				}
				counts[pairKey(x, y)]++
			}
		}
	}
}

func (m *MetaGraph) countDiamond(g *KG, counts map[uint64]int) {
	// Split into the two implied path schemas and multiply counts.
	var eA, eB EdgeType
	var tA, tB NodeType
	seenA := false
	for _, e := range m.edges {
		if e.to == 2 {
			eA = e.et
			tA = m.types[2]
			seenA = true
		} else {
			eB = e.et
			tB = m.types[3]
		}
	}
	_ = seenA
	pa := PathMetaGraph(m.Name+"/a", m.Kind, m.types[0], tA, eA, eA)
	pb := PathMetaGraph(m.Name+"/b", m.Kind, m.types[0], tB, eB, eB)
	ca := make(map[uint64]int)
	cb := make(map[uint64]int)
	pa.countPath(g, ca)
	pb.countPath(g, cb)
	for key, a := range ca {
		if b, ok := cb[key]; ok {
			counts[key] = a * b
		}
	}
}

func (m *MetaGraph) countGeneric(g *KG, counts map[uint64]int) {
	// Candidate y's reachable from x within len(types)-1 undirected hops.
	maxHop := len(m.types) - 1
	for xi := 0; xi < g.NumItems(); xi++ {
		x := g.ItemNode(xi)
		cands := nearbyItems(g, x, maxHop)
		for _, yi := range cands {
			if yi <= xi {
				continue
			}
			c := m.CountInstances(g, x, g.ItemNode(yi))
			c += m.CountInstances(g, g.ItemNode(yi), x)
			if c > 0 {
				counts[pairKey(int32(xi), int32(yi))] += c
			}
		}
	}
}

// nearbyItems returns item ids within maxHop undirected hops of node v.
func nearbyItems(g *KG, v, maxHop int) []int {
	dist := map[int]int{v: 0}
	frontier := []int{v}
	var items []int
	for h := 0; h < maxHop; h++ {
		var next []int
		for _, u := range frontier {
			expand := func(te TypedEdge) {
				w := int(te.To)
				if _, ok := dist[w]; ok {
					return
				}
				dist[w] = h + 1
				next = append(next, w)
				if ii := g.ItemID(w); ii >= 0 {
					items = append(items, ii)
				}
			}
			for _, te := range g.Out(u) {
				expand(te)
			}
			for _, te := range g.In(u) {
				expand(te)
			}
		}
		frontier = next
	}
	return items
}

package kg

import (
	"math"
	"testing"

	"imdpp/internal/wirebin"
)

func TestRelTableBinaryRoundTrip(t *testing.T) {
	cases := [][][]ItemRel{
		nil,
		{},
		{nil, {}},
		{
			{{Other: 1, S: 0.5}, {Other: 4, S: 0.75}},
			{{Other: 0, S: 0.5}},
			{},
			{{Other: 0, S: 0.8}, {Other: 1, S: 1.0 / 3.0}},
			{{Other: 3, S: 1.0 / 3.0}},
		},
	}
	for ci, adj := range cases {
		tbl := RelTableFromRows(adj)
		b := tbl.AppendBinary(nil)
		got, err := DecodeRelTableBinary(wirebin.NewReader(b))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if len(got.adj) != len(adj) {
			t.Fatalf("case %d: %d rows != %d", ci, len(got.adj), len(adj))
		}
		for x := range adj {
			if len(got.adj[x]) != len(adj[x]) {
				t.Fatalf("case %d row %d: %d entries != %d", ci, x, len(got.adj[x]), len(adj[x]))
			}
			for j := range adj[x] {
				if got.adj[x][j].Other != adj[x][j].Other ||
					math.Float64bits(got.adj[x][j].S) != math.Float64bits(adj[x][j].S) {
					t.Fatalf("case %d row %d entry %d drifted", ci, x, j)
				}
			}
		}
	}
}

func FuzzDecodeRelTableBinary(f *testing.F) {
	f.Add([]byte{})
	f.Add(RelTableFromRows([][]ItemRel{{{Other: 1, S: 0.5}}, {{Other: 0, S: 0.5}}}).AppendBinary(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := DecodeRelTableBinary(wirebin.NewReader(data))
		if err != nil {
			return
		}
		b := tbl.AppendBinary(nil)
		if _, err := DecodeRelTableBinary(wirebin.NewReader(b)); err != nil {
			t.Fatalf("re-encode of decoded table failed: %v", err)
		}
	})
}

package kg

import "fmt"

// RelKind says which item relationship a meta-graph describes.
type RelKind uint8

// Relationship kinds per the paper: {mC} and {mS}.
const (
	Complementary RelKind = iota
	Substitutable
)

func (k RelKind) String() string {
	if k == Complementary {
		return "complementary"
	}
	return "substitutable"
}

// MetaGraph is a schema over node/edge types with two designated ITEM
// endpoints (schema nodes 0 and 1). An instance is a homomorphism from
// the schema into the KG; s(x,y|m) is a saturating function of the
// instance count with endpoints mapped to x and y.
//
// Schema edges may run in either direction; Dir distinguishes them so
// "ITEM -SUPPORTS-> FEATURE <-SUPPORTS- ITEM" is expressible.
type MetaGraph struct {
	Name  string
	Kind  RelKind
	types []NodeType   // schema node types; nodes 0 and 1 are the ITEM endpoints
	edges []schemaEdge // schema edges
}

type schemaEdge struct {
	from, to int
	et       EdgeType
}

// NewMetaGraph starts a schema whose endpoint nodes 0 and 1 have the
// given item type.
func NewMetaGraph(name string, kind RelKind, itemType NodeType) *MetaGraph {
	return &MetaGraph{
		Name:  name,
		Kind:  kind,
		types: []NodeType{itemType, itemType},
	}
}

// AddNode appends an internal schema node of type t and returns its id.
func (m *MetaGraph) AddNode(t NodeType) int {
	m.types = append(m.types, t)
	return len(m.types) - 1
}

// AddEdge adds a schema edge from->to with edge type et. Endpoints are
// schema node ids (0 and 1 are the item endpoints).
func (m *MetaGraph) AddEdge(from, to int, et EdgeType) *MetaGraph {
	if from < 0 || from >= len(m.types) || to < 0 || to >= len(m.types) {
		panic(fmt.Sprintf("kg: schema edge (%d,%d) out of range", from, to))
	}
	m.edges = append(m.edges, schemaEdge{from, to, et})
	return m
}

// Size returns the number of schema nodes.
func (m *MetaGraph) Size() int { return len(m.types) }

// PathMetaGraph builds the common "ITEM -e1-> MID <-e2- ITEM" schema
// (m1/m2 in Fig. 1(b): two items supporting a common FEATURE, or made
// by a common BRAND).
func PathMetaGraph(name string, kind RelKind, itemType, midType NodeType, e1, e2 EdgeType) *MetaGraph {
	m := NewMetaGraph(name, kind, itemType)
	mid := m.AddNode(midType)
	m.AddEdge(0, mid, e1)
	m.AddEdge(1, mid, e2)
	return m
}

// DirectMetaGraph builds the "ITEM -e-> ITEM" schema (m3 in Fig. 1(b):
// an explicit relationship edge such as also-bought).
func DirectMetaGraph(name string, kind RelKind, itemType NodeType, e EdgeType) *MetaGraph {
	m := NewMetaGraph(name, kind, itemType)
	m.AddEdge(0, 1, e)
	return m
}

// DiamondMetaGraph builds the two-mid schema requiring both a common
// node of type midA (via eA) and a common node of type midB (via eB) —
// the "meta structure" generalisation of meta-paths (Huang et al.).
func DiamondMetaGraph(name string, kind RelKind, itemType, midA, midB NodeType, eA, eB EdgeType) *MetaGraph {
	m := NewMetaGraph(name, kind, itemType)
	a := m.AddNode(midA)
	bn := m.AddNode(midB)
	m.AddEdge(0, a, eA)
	m.AddEdge(1, a, eA)
	m.AddEdge(0, bn, eB)
	m.AddEdge(1, bn, eB)
	return m
}

// CountInstances counts homomorphisms of the schema into g with schema
// node 0 mapped to KG node x and schema node 1 mapped to KG node y.
// Internal schema nodes may map to any KG node of the right type;
// distinct schema nodes may map to the same KG node only if they are
// different schema positions with compatible edges (standard
// homomorphism semantics, which is what instance counting in HIN
// relevance measures uses).
func (m *MetaGraph) CountInstances(g *KG, x, y int) int {
	if g.NodeTypeOf(x) != m.types[0] || g.NodeTypeOf(y) != m.types[1] {
		return 0
	}
	assign := make([]int32, len(m.types))
	for i := range assign {
		assign[i] = -1
	}
	assign[0] = int32(x)
	assign[1] = int32(y)
	return m.countRec(g, assign, 2)
}

func (m *MetaGraph) countRec(g *KG, assign []int32, next int) int {
	if next == len(m.types) {
		if m.consistent(g, assign) {
			return 1
		}
		return 0
	}
	// Candidates for schema node `next`: prefer narrowing through an
	// already-assigned neighbour; fall back to all nodes of the type.
	want := m.types[next]
	total := 0
	cands := m.candidates(g, assign, next)
	for _, v := range cands {
		if g.NodeTypeOf(int(v)) != want {
			continue
		}
		assign[next] = v
		if m.partialOK(g, assign, next) {
			total += m.countRec(g, assign, next+1)
		}
		assign[next] = -1
	}
	return total
}

// candidates returns plausible KG nodes for schema position pos by
// following one schema edge incident to an assigned position; if none
// exists it scans all KG nodes (schemas here are tiny and connected, so
// that path is effectively never taken for well-formed meta-graphs).
func (m *MetaGraph) candidates(g *KG, assign []int32, pos int) []int32 {
	for _, e := range m.edges {
		if e.from == pos && assign[e.to] >= 0 {
			tgt := assign[e.to]
			var out []int32
			for _, te := range g.In(int(tgt)) { // we need v with v -> tgt? no: e is pos->to, so candidate v has edge v->tgt
				if te.ET == e.et {
					out = append(out, te.To)
				}
			}
			return out
		}
		if e.to == pos && assign[e.from] >= 0 {
			src := assign[e.from]
			var out []int32
			for _, te := range g.Out(int(src)) {
				if te.ET == e.et {
					out = append(out, te.To)
				}
			}
			return out
		}
	}
	all := make([]int32, 0, g.N())
	for v := 0; v < g.N(); v++ {
		all = append(all, int32(v))
	}
	return all
}

// partialOK checks every schema edge whose endpoints are both assigned.
func (m *MetaGraph) partialOK(g *KG, assign []int32, justSet int) bool {
	for _, e := range m.edges {
		if e.from != justSet && e.to != justSet {
			continue
		}
		fu, tv := assign[e.from], assign[e.to]
		if fu < 0 || tv < 0 {
			continue
		}
		if !hasEdge(g, int(fu), int(tv), e.et) {
			return false
		}
	}
	return true
}

func (m *MetaGraph) consistent(g *KG, assign []int32) bool {
	for _, e := range m.edges {
		if !hasEdge(g, int(assign[e.from]), int(assign[e.to]), e.et) {
			return false
		}
	}
	return true
}

func hasEdge(g *KG, u, v int, et EdgeType) bool {
	for _, te := range g.Out(u) {
		if int(te.To) == v && te.ET == et {
			return true
		}
	}
	return false
}

package kg

import (
	"fmt"

	"imdpp/internal/wirebin"
)

// Binary codec of materialised relevance tables. The shard problem
// upload ships the PIN model's *merged* rows (pin.AppendRowsBinary);
// this codec covers the per-meta-graph tables underneath them — the
// piece a future dataset-upload path (ROADMAP "real-dataset
// ingestion": POST a problem by content hash) needs to move a
// pre-built RelTable without recounting meta-graph instances. Rows are
// sorted by Other (a BuildRelTable invariant), so ids encode as
// ascending deltas; relevances use the compact float.

// AppendBinary appends the table's sparse rows to b. The meta-graph
// itself is identified out of band (tables travel alongside their
// model), so only the adjacency is encoded.
func (t *RelTable) AppendBinary(b []byte) []byte {
	b = wirebin.AppendUvarint(b, uint64(len(t.adj)))
	for _, row := range t.adj {
		b = wirebin.AppendUvarint(b, uint64(len(row)))
		prev := int32(0)
		for i, rel := range row {
			if i == 0 {
				b = wirebin.AppendVarint(b, int64(rel.Other))
			} else {
				if rel.Other < prev {
					panic(fmt.Sprintf("kg: RelTable.AppendBinary row not sorted: %d after %d", rel.Other, prev))
				}
				b = wirebin.AppendUvarint(b, uint64(rel.Other-prev))
			}
			prev = rel.Other
			b = wirebin.AppendFloat(b, rel.S)
		}
	}
	return b
}

// DecodeRelTableBinary reads rows written by AppendBinary and wraps
// them as a RelTable (Meta left nil, exactly like RelTableFromRows).
func DecodeRelTableBinary(r *wirebin.Reader) (*RelTable, error) {
	n := r.Count(1)
	if r.Err() != nil {
		return nil, fmt.Errorf("kg: decode rel table: %w", r.Err())
	}
	adj := make([][]ItemRel, n)
	for x := range adj {
		cnt := r.Count(3) // id varint + float tag + varint at minimum
		if r.Err() != nil {
			return nil, fmt.Errorf("kg: decode rel table: %w", r.Err())
		}
		if cnt == 0 {
			continue
		}
		row := make([]ItemRel, cnt)
		prev := int64(0)
		for i := range row {
			if i == 0 {
				prev = r.Varint()
			} else {
				prev += int64(r.Uvarint())
			}
			if prev < 0 || prev > int64(^uint32(0)>>1) {
				return nil, fmt.Errorf("kg: decode rel table: item id %d out of int32 range", prev)
			}
			row[i].Other = int32(prev)
			row[i].S = r.Float()
		}
		adj[x] = row
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("kg: decode rel table: %w", err)
	}
	return RelTableFromRows(adj), nil
}

// Package kg implements the knowledge-graph substrate of IMDPP: a
// heterogeneous information network G_KG = (V, E, Φ, Ψ) with typed
// nodes and edges, meta-graph schemas describing item relationships,
// and instance counting that turns a meta-graph m into a pairwise item
// relevance function s(x,y|m) ∈ [0,1).
package kg

package kg

import (
	"testing"
)

// fig1KG builds the paper's Fig. 1(a) toy knowledge graph: iPhone,
// AirPods, wireless charger and charging cable; features Bluetooth and
// Qi standard; brand Apple Inc. It returns the KG and the item ids.
func fig1KG(t *testing.T) (g *KG, iPhone, airPods, charger, cable int) {
	t.Helper()
	b := NewBuilder()
	tItem := b.NodeTypeID("ITEM")
	tFeature := b.NodeTypeID("FEATURE")
	tBrand := b.NodeTypeID("BRAND")
	eSupports := b.EdgeTypeID("SUPPORTS")
	eMadeBy := b.EdgeTypeID("MADE_BY")
	ePairs := b.EdgeTypeID("PAIRS_WITH")

	nIPhone := b.AddNode(tItem)
	nAirPods := b.AddNode(tItem)
	nCharger := b.AddNode(tItem)
	nCable := b.AddNode(tItem)
	nBluetooth := b.AddNode(tFeature)
	nQi := b.AddNode(tFeature)
	nApple := b.AddNode(tBrand)

	// ITEM iPhone and ITEM AirPods SUPPORT the FEATURE Bluetooth
	b.AddEdge(nIPhone, nBluetooth, eSupports)
	b.AddEdge(nAirPods, nBluetooth, eSupports)
	// iPhone and wireless charger support Qi
	b.AddEdge(nIPhone, nQi, eSupports)
	b.AddEdge(nCharger, nQi, eSupports)
	// all four made by Apple
	for _, n := range []int{nIPhone, nAirPods, nCharger, nCable} {
		b.AddEdge(n, nApple, eMadeBy)
	}
	// explicit pairing: cable pairs with iPhone
	b.AddEdge(nCable, nIPhone, ePairs)

	g = b.Build()
	return g, g.ItemID(nIPhone), g.ItemID(nAirPods), g.ItemID(nCharger), g.ItemID(nCable)
}

func TestBuilderTypeRegistration(t *testing.T) {
	b := NewBuilder()
	a := b.NodeTypeID("ITEM")
	b2 := b.NodeTypeID("FEATURE")
	if a == b2 {
		t.Fatal("distinct types share id")
	}
	if again := b.NodeTypeID("ITEM"); again != a {
		t.Fatal("re-registration changed id")
	}
	e1 := b.EdgeTypeID("SUPPORTS")
	if e2 := b.EdgeTypeID("SUPPORTS"); e2 != e1 {
		t.Fatal("edge type re-registration changed id")
	}
}

func TestBuildRequiresItemType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build without ITEM type did not panic")
		}
	}()
	b := NewBuilder()
	tt := b.NodeTypeID("THING")
	b.AddNode(tt)
	b.Build()
}

func TestKGBasics(t *testing.T) {
	g, iPhone, airPods, charger, cable := fig1KG(t)
	if g.NumItems() != 4 {
		t.Fatalf("items = %d", g.NumItems())
	}
	for _, id := range []int{iPhone, airPods, charger, cable} {
		if id < 0 || id >= 4 {
			t.Fatalf("bad item id %d", id)
		}
	}
	if g.NumNodeTypes() != 3 || g.NumEdgeTypes() != 3 {
		t.Fatalf("types: %d/%d", g.NumNodeTypes(), g.NumEdgeTypes())
	}
	if g.M() != 9 {
		t.Fatalf("edges = %d", g.M())
	}
	// item/node id mapping round-trips
	for i := 0; i < g.NumItems(); i++ {
		if g.ItemID(g.ItemNode(i)) != i {
			t.Fatalf("item %d mapping broken", i)
		}
	}
	if tt, ok := g.LookupNodeType("FEATURE"); !ok || g.NodeTypeName(tt) != "FEATURE" {
		t.Fatal("LookupNodeType failed")
	}
	if _, ok := g.LookupNodeType("NOPE"); ok {
		t.Fatal("found nonexistent type")
	}
	if _, ok := g.LookupEdgeType("NOPE"); ok {
		t.Fatal("found nonexistent edge type")
	}
}

func TestPathMetaGraphCounts(t *testing.T) {
	g, iPhone, airPods, charger, cable := fig1KG(t)
	tItem, _ := g.LookupNodeType("ITEM")
	tFeature, _ := g.LookupNodeType("FEATURE")
	eSupports, _ := g.LookupEdgeType("SUPPORTS")
	m1 := PathMetaGraph("m1", Complementary, tItem, tFeature, eSupports, eSupports)

	// iPhone and AirPods share exactly Bluetooth
	if c := m1.CountInstances(g, g.ItemNode(iPhone), g.ItemNode(airPods)); c != 1 {
		t.Fatalf("iPhone-AirPods common features = %d", c)
	}
	// iPhone and charger share Qi
	if c := m1.CountInstances(g, g.ItemNode(iPhone), g.ItemNode(charger)); c != 1 {
		t.Fatalf("iPhone-charger = %d", c)
	}
	// AirPods and charger share nothing
	if c := m1.CountInstances(g, g.ItemNode(airPods), g.ItemNode(charger)); c != 0 {
		t.Fatalf("AirPods-charger = %d", c)
	}
	_ = cable
}

func TestDirectMetaGraphCounts(t *testing.T) {
	g, iPhone, _, _, cable := fig1KG(t)
	tItem, _ := g.LookupNodeType("ITEM")
	ePairs, _ := g.LookupEdgeType("PAIRS_WITH")
	m3 := DirectMetaGraph("m3", Complementary, tItem, ePairs)
	if c := m3.CountInstances(g, g.ItemNode(cable), g.ItemNode(iPhone)); c != 1 {
		t.Fatalf("cable→iPhone direct = %d", c)
	}
	// direction matters for CountInstances (table symmetrises)
	if c := m3.CountInstances(g, g.ItemNode(iPhone), g.ItemNode(cable)); c != 0 {
		t.Fatalf("iPhone→cable direct = %d", c)
	}
}

func TestDiamondMetaGraphCounts(t *testing.T) {
	g, iPhone, airPods, charger, _ := fig1KG(t)
	tItem, _ := g.LookupNodeType("ITEM")
	tFeature, _ := g.LookupNodeType("FEATURE")
	tBrand, _ := g.LookupNodeType("BRAND")
	eSupports, _ := g.LookupEdgeType("SUPPORTS")
	eMadeBy, _ := g.LookupEdgeType("MADE_BY")
	dm := DiamondMetaGraph("dm", Complementary, tItem, tFeature, tBrand, eSupports, eMadeBy)
	// iPhone/AirPods: common feature (Bluetooth) AND common brand → 1·1
	if c := dm.CountInstances(g, g.ItemNode(iPhone), g.ItemNode(airPods)); c != 1 {
		t.Fatalf("diamond iPhone-AirPods = %d", c)
	}
	_ = charger
}

func TestRelTablePathShape(t *testing.T) {
	g, iPhone, airPods, charger, cable := fig1KG(t)
	tItem, _ := g.LookupNodeType("ITEM")
	tFeature, _ := g.LookupNodeType("FEATURE")
	eSupports, _ := g.LookupEdgeType("SUPPORTS")
	tab := BuildRelTable(g, PathMetaGraph("m1", Complementary, tItem, tFeature, eSupports, eSupports))

	// one shared feature → s = 1/2, symmetric
	if s := tab.S(iPhone, airPods); s != 0.5 {
		t.Fatalf("s(iPhone,airPods)=%v", s)
	}
	if s := tab.S(airPods, iPhone); s != 0.5 {
		t.Fatalf("not symmetric: %v", s)
	}
	if s := tab.S(airPods, charger); s != 0 {
		t.Fatalf("unrelated pair s=%v", s)
	}
	if s := tab.S(iPhone, iPhone); s != 0 {
		t.Fatalf("self-relevance %v", s)
	}
	if tab.NumPairs() != 2 {
		t.Fatalf("pairs = %d", tab.NumPairs())
	}
	_ = cable
}

func TestRelTableDirectSymmetrised(t *testing.T) {
	g, iPhone, _, _, cable := fig1KG(t)
	tItem, _ := g.LookupNodeType("ITEM")
	ePairs, _ := g.LookupEdgeType("PAIRS_WITH")
	tab := BuildRelTable(g, DirectMetaGraph("m3", Complementary, tItem, ePairs))
	if s := tab.S(iPhone, cable); s != 0.5 {
		t.Fatalf("direct s=%v", s)
	}
	if s := tab.S(cable, iPhone); s != 0.5 {
		t.Fatalf("direct reverse s=%v", s)
	}
}

func TestRelTableBrandPath(t *testing.T) {
	g, iPhone, airPods, charger, cable := fig1KG(t)
	tItem, _ := g.LookupNodeType("ITEM")
	tBrand, _ := g.LookupNodeType("BRAND")
	eMadeBy, _ := g.LookupEdgeType("MADE_BY")
	tab := BuildRelTable(g, PathMetaGraph("m2", Complementary, tItem, tBrand, eMadeBy, eMadeBy))
	// all 4 items share Apple → C(4,2)=6 pairs, each s=1/2
	if tab.NumPairs() != 6 {
		t.Fatalf("brand pairs = %d", tab.NumPairs())
	}
	for _, pair := range [][2]int{{iPhone, airPods}, {charger, cable}, {airPods, cable}} {
		if s := tab.S(pair[0], pair[1]); s != 0.5 {
			t.Fatalf("brand s(%v)=%v", pair, s)
		}
	}
}

func TestGenericMatchesStructural(t *testing.T) {
	// A bespoke schema the shape detector does not recognise: a 2-hop
	// chain ITEM→FEATURE←ITEM expressed with reversed construction so
	// isPath() fails, forcing the generic counter; results must match
	// the structural path counter.
	g, iPhone, airPods, _, _ := fig1KG(t)
	tItem, _ := g.LookupNodeType("ITEM")
	tFeature, _ := g.LookupNodeType("FEATURE")
	eSupports, _ := g.LookupEdgeType("SUPPORTS")

	path := PathMetaGraph("m1", Complementary, tItem, tFeature, eSupports, eSupports)
	structural := BuildRelTable(g, path)

	// same semantics via generic machinery: build a schema with an
	// extra no-op ordering (nodes 0,1 endpoints; mid node appended
	// after a dummy) — four nodes would change semantics, so instead
	// verify CountInstances agreement pair-by-pair.
	for x := 0; x < g.NumItems(); x++ {
		for y := 0; y < g.NumItems(); y++ {
			if x == y {
				continue
			}
			c := path.CountInstances(g, g.ItemNode(x), g.ItemNode(y))
			want := 0.0
			if c > 0 {
				want = float64(c) / float64(c+1)
			}
			if s := structural.S(x, y); s != want {
				t.Fatalf("pair (%d,%d): table %v vs generic count %d", x, y, s, c)
			}
		}
	}
	_, _ = iPhone, airPods
}

func TestMetaGraphKindString(t *testing.T) {
	if Complementary.String() != "complementary" || Substitutable.String() != "substitutable" {
		t.Fatal("RelKind strings wrong")
	}
}

func TestItemsSorted(t *testing.T) {
	g, _, _, _, _ := fig1KG(t)
	items := g.ItemsSorted()
	if len(items) != 4 {
		t.Fatalf("items %v", items)
	}
	for i := 1; i < len(items); i++ {
		if items[i] <= items[i-1] {
			t.Fatalf("not sorted: %v", items)
		}
	}
}

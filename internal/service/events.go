package service

import (
	"imdpp/internal/core"
)

// Event is one entry in a job's retained event log — the payload of
// the daemon's SSE stream (GET /v1/jobs/{id}/events, DESIGN.md §12).
// Seq numbers are contiguous per job starting at 1; the SSE "id:"
// field carries Seq so Last-Event-ID resume is exact.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "progress", or terminal: "done"|"failed"|"cancelled"
	// Progress carries the solver event for Type "progress".
	Progress *core.ProgressEvent `json:"progress,omitempty"`
	// Job carries the final snapshot (solution included) on the
	// terminal event.
	Job *JobView `json:"job,omitempty"`
}

// eventRetention bounds how many progress events a job retains for
// Last-Event-ID resume. The terminal event is stored separately and
// is never evicted: a subscriber may always miss intermediate
// progress, never the outcome.
const eventRetention = 256

// publishProgress appends a progress event to the ring; j.mu must be
// held. Oldest events fall off beyond the retention bound.
func (j *Job) publishProgressLocked(ev core.ProgressEvent) {
	j.seq++
	e := Event{Seq: j.seq, Type: "progress", Progress: &ev}
	if len(j.ring) >= eventRetention {
		copy(j.ring, j.ring[1:])
		j.ring[len(j.ring)-1] = e
	} else {
		j.ring = append(j.ring, e)
	}
	j.wakeLocked()
}

// publishTerminalLocked records the terminal event; j.mu must be
// held. It runs inside the same critical section that settles the job
// status, so no subscriber can observe a finished job without a
// terminal event — the ordering guarantee retirement relies on
// (DESIGN.md §12): finish publishes the terminal event strictly
// before retireJob may evict the id.
func (j *Job) publishTerminalLocked() {
	j.seq++
	v := j.snapshotLocked()
	j.terminal = &Event{Seq: j.seq, Type: string(j.status), Job: &v}
	j.wakeLocked()
}

// wakeLocked releases every EventsSince waiter; j.mu must be held.
func (j *Job) wakeLocked() {
	if j.wakeCh != nil {
		close(j.wakeCh)
		j.wakeCh = nil
	}
}

// Wake returns a channel closed on the next event publication. Grab
// it BEFORE calling EventsSince: if an event lands between the two
// calls the returned channel is already closed, so the caller never
// sleeps through a publication.
func (j *Job) Wake() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wakeCh == nil {
		j.wakeCh = make(chan struct{})
	}
	return j.wakeCh
}

// EventsSince returns the retained events with Seq > after, in order,
// and whether the batch ends with the terminal event (after which no
// further events will ever be published). Progress older than the
// retention window is silently skipped — resume delivers what is
// retained, and always the terminal event exactly once per contiguous
// read sequence.
func (j *Job) EventsSince(after int) (evs []Event, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, e := range j.ring {
		if e.Seq > after {
			evs = append(evs, e)
		}
	}
	if j.terminal != nil {
		if j.terminal.Seq > after {
			evs = append(evs, *j.terminal)
		}
		return evs, true
	}
	return evs, false
}

package service

import (
	"context"
	"sync"
	"time"

	"imdpp/internal/core"
	"imdpp/internal/obs"
)

// Status is the lifecycle state of a job.
type Status string

// Job lifecycle states.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Job is one asynchronous solve tracked by the Service. All methods
// are safe for concurrent use.
type Job struct {
	id  string
	key Key
	req Request

	// tenant and priority are the scheduling coordinates (DESIGN.md
	// §12): tenant selects the sub-queue (canonicalised by admit),
	// priority orders within it. Immutable after admission.
	tenant   string
	priority int

	ctx        context.Context
	cancelCtx  context.CancelFunc
	cancelHook func() // set by the Service: ctx cancel + queue bookkeeping
	done       chan struct{}

	// backend labels the estimation backend the request selected:
	// BackendSketch for epsilon requests, empty for the default MC
	// path (so pre-epsilon job snapshots keep byte-identical JSON).
	backend string

	mu       sync.Mutex
	status   Status
	cacheHit bool
	events   int
	progress core.ProgressEvent
	sol      *core.Solution
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	traceID  string
	phases   []PhaseTiming

	// event log (events.go): bounded progress ring + the terminal
	// event, with wakeCh releasing SSE/long-poll waiters per publish.
	seq      int
	ring     []Event
	terminal *Event
	wakeCh   chan struct{}
}

// JobView is the JSON-able snapshot of a job, the body of the
// daemon's GET /v1/jobs/{id} response.
type JobView struct {
	ID       string `json:"id"`
	Key      string `json:"key"` // content address of the request
	Status   Status `json:"status"`
	CacheHit bool   `json:"cache_hit"`
	// Tenant is the scheduling tenant the job was accounted under;
	// Priority its within-tenant dispatch priority (omitted at the
	// defaults, keeping pre-tenant snapshots byte-identical).
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// Backend echoes the estimation backend the request selected
	// ("sketch" for epsilon requests); omitted on the exact MC path so
	// existing clients see unchanged bytes.
	Backend string `json:"backend,omitempty"`
	// Progress is the latest solver event; ProgressEvents counts how
	// many were emitted, so pollers can detect movement between
	// identical-looking snapshots.
	Progress       core.ProgressEvent `json:"progress"`
	ProgressEvents int                `json:"progress_events"`
	// TraceID correlates the job with its trace at GET /debug/traces
	// and in structured logs; omitted when the daemon runs untraced.
	TraceID string `json:"trace_id,omitempty"`
	// Phases is the per-phase timing breakdown (DESIGN.md §11), present
	// once the solve has finished on a daemon emitting progress.
	Phases       []PhaseTiming  `json:"phases,omitempty"`
	Solution     *core.Solution `json:"solution,omitempty"`
	Error        string         `json:"error,omitempty"`
	CreatedAt    time.Time      `json:"created_at"`
	StartedAt    time.Time      `json:"started_at,omitzero"`
	FinishedAt   time.Time      `json:"finished_at,omitzero"`
	QueueSeconds float64        `json:"queue_seconds"`
	SolveSeconds float64        `json:"solve_seconds"`
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Key returns the content address of the job's request.
func (j *Job) Key() Key { return j.key }

// Done returns a channel closed when the job reaches a terminal
// state (done, failed or cancelled).
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cancellation. A queued job is cancelled
// immediately; a running job aborts within about one campaign
// simulation. Cancelling a finished job is a no-op.
func (j *Job) Cancel() { j.cancelHook() }

// Wait blocks until the job finishes or ctx fires, returning the
// solution or the job's terminal error.
func (j *Job) Wait(ctx context.Context) (*core.Solution, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sol, j.err
}

// Snapshot returns a JSON-able view of the job's current state.
func (j *Job) Snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

// snapshotLocked builds the view; j.mu must be held.
func (j *Job) snapshotLocked() JobView {
	tenant := j.tenant
	if tenant == DefaultTenant {
		// requests that never named a tenant (and ones naming the
		// default explicitly) keep their pre-tenant snapshot bytes
		tenant = ""
	}
	v := JobView{
		ID:             j.id,
		Key:            j.key.String(),
		Status:         j.status,
		CacheHit:       j.cacheHit,
		Tenant:         tenant,
		Priority:       j.priority,
		Backend:        j.backend,
		Progress:       j.progress,
		ProgressEvents: j.events,
		TraceID:        j.traceID,
		Phases:         j.phases,
		Solution:       j.sol,
		CreatedAt:      j.created,
		StartedAt:      j.started,
		FinishedAt:     j.finished,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		v.QueueSeconds = j.started.Sub(j.created).Seconds()
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		v.SolveSeconds = end.Sub(j.started).Seconds()
	}
	return v
}

// setTrace records the job's trace id (a no-op for the zero id, so
// untraced daemons keep byte-identical job JSON).
func (j *Job) setTrace(id obs.ID) {
	if id == 0 {
		return
	}
	j.mu.Lock()
	j.traceID = id.String()
	j.mu.Unlock()
}

// setPhases records the finished solve's per-phase breakdown.
func (j *Job) setPhases(phases []PhaseTiming) {
	if len(phases) == 0 {
		return
	}
	j.mu.Lock()
	j.phases = phases
	j.mu.Unlock()
}

// queueWait returns how long the job sat queued before running.
func (j *Job) queueWait() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.started.Sub(j.created)
}

// setProgress is the solver's Progress callback target.
func (j *Job) setProgress(ev core.ProgressEvent) {
	j.mu.Lock()
	j.progress = ev
	j.events++
	j.publishProgressLocked(ev)
	j.mu.Unlock()
}

// markRunning transitions queued → running. It returns false when the
// job was already cancelled.
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now()
	return true
}

// finish records the terminal state and releases waiters. Repeated
// calls are ignored, so a cancel racing a normal completion settles
// on whichever finish lands first.
func (j *Job) finish(st Status, sol *core.Solution, err error) bool {
	j.mu.Lock()
	switch j.status {
	case StatusDone, StatusFailed, StatusCancelled:
		j.mu.Unlock()
		return false
	}
	j.status = st
	j.sol = sol
	j.err = err
	j.finished = time.Now()
	if j.started.IsZero() {
		j.started = j.finished
	}
	j.publishTerminalLocked()
	j.mu.Unlock()
	j.cancelCtx() // release the context's resources in every terminal path
	close(j.done)
	return true
}

// finishIfQueued settles a job that was cancelled before any worker
// picked it up. It is a no-op once the job is running or finished —
// the worker owns the terminal transition from then on.
func (j *Job) finishIfQueued() bool {
	j.mu.Lock()
	if j.status != StatusQueued {
		j.mu.Unlock()
		return false
	}
	j.status = StatusCancelled
	j.err = context.Canceled
	j.finished = time.Now()
	j.started = j.finished
	j.publishTerminalLocked()
	j.mu.Unlock()
	j.cancelCtx()
	close(j.done)
	return true
}

package service

import (
	"container/list"

	"imdpp/internal/core"
)

// lru is a bounded content-addressed result cache: Key → Solution.
// Determinism (DESIGN.md §3) makes the cached value exact, not an
// approximation — an identical request would recompute bit-identical
// bytes — so entries never expire, they are only evicted by capacity.
// Not safe for concurrent use; the Service serialises access under
// its own mutex.
type lru struct {
	capacity int
	ll       *list.List            // front = most recently used
	byKey    map[Key]*list.Element // element value is *cacheEntry
}

type cacheEntry struct {
	key Key
	sol *core.Solution
}

func newLRU(capacity int) *lru {
	return &lru{capacity: capacity, ll: list.New(), byKey: make(map[Key]*list.Element)}
}

// get returns the cached solution for k, refreshing its recency.
func (c *lru) get(k Key) (*core.Solution, bool) {
	el, ok := c.byKey[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).sol, true
}

// add inserts (or refreshes) k → sol, evicting the least recently
// used entry beyond capacity.
func (c *lru) add(k Key, sol *core.Solution) {
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.byKey[k]; ok {
		el.Value.(*cacheEntry).sol = sol
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[k] = c.ll.PushFront(&cacheEntry{key: k, sol: sol})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached solutions.
func (c *lru) len() int { return c.ll.Len() }

package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"imdpp/internal/obs"
)

// DefaultTenant is the tenant requests without an explicit tenant are
// accounted under.
const DefaultTenant = "default"

// maxTenants bounds the number of distinct tenant queues the scheduler
// tracks. Tenants beyond the bound (none of which were configured — a
// configured tenant always gets its own queue) alias to the default
// queue, so an adversary inventing tenant names cannot grow the
// scheduler without bound.
const maxTenants = 64

// TenantQuota bounds and weights one tenant's share of the service
// (DESIGN.md §12). The zero value selects the defaults.
type TenantQuota struct {
	// Weight is the tenant's deficit-weighted round-robin share: a
	// weight-3 tenant dequeues up to three jobs per scheduler cycle for
	// every one of a weight-1 tenant (default 1).
	Weight int
	// MaxQueue bounds the tenant's queued (not yet running) jobs;
	// admission beyond it sheds with a quota_exceeded QuotaError
	// (default: the service-wide QueueDepth).
	MaxQueue int
	// MaxInflight bounds the tenant's concurrently running jobs. The
	// scheduler skips the tenant while it is at the cap — the jobs stay
	// queued, they are not shed (default: the service worker count, so
	// one tenant can saturate an otherwise idle service).
	MaxInflight int
}

func (q TenantQuota) withDefaults(queueDepth, workers int) TenantQuota {
	if q.Weight <= 0 {
		q.Weight = 1
	}
	if q.MaxQueue <= 0 {
		q.MaxQueue = queueDepth
	}
	if q.MaxInflight <= 0 {
		q.MaxInflight = workers
	}
	return q
}

// QuotaError is a typed admission rejection: the global queue or the
// tenant's own quota had no room. It unwraps to ErrQueueFull so
// pre-tenant callers checking errors.Is(err, ErrQueueFull) keep
// working; new callers switch on Code and honour RetryAfter.
type QuotaError struct {
	// Code is the machine-readable shed reason: "queue_full" (the
	// service-wide queue bound) or "quota_exceeded" (the tenant's own
	// MaxQueue).
	Code string
	// Tenant is the tenant the request was accounted under.
	Tenant string
	// Depth and Limit are the bound that rejected: current occupancy
	// and its cap.
	Depth, Limit int
	// RetryAfter estimates when a slot should free up, from the queue
	// backlog and the observed mean solve time — the daemon's
	// Retry-After header.
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("service: %s for tenant %q (%d/%d queued); retry after %s",
		e.Code, e.Tenant, e.Depth, e.Limit, e.RetryAfter)
}

// Is reports both shed reasons as ErrQueueFull, the pre-tenant
// submission failure, so existing retry loops keep working unchanged.
func (e *QuotaError) Is(target error) bool { return target == ErrQueueFull }

// Shed reason codes carried by QuotaError.Code and the daemon's typed
// 429 bodies.
const (
	ShedQueueFull     = "queue_full"
	ShedQuotaExceeded = "quota_exceeded"
)

// TenantMetrics is one tenant's slice of the /metrics "tenants" block.
type TenantMetrics struct {
	Admitted      uint64 `json:"admitted"`
	Completed     uint64 `json:"completed"`
	ShedQuota     uint64 `json:"shed_quota"`
	ShedQueueFull uint64 `json:"shed_queue_full"`
	Queued        int    `json:"queued"`
	Inflight      int    `json:"inflight"`
	Weight        int    `json:"weight"`
	MaxQueue      int    `json:"max_queue"`
	MaxInflight   int    `json:"max_inflight"`
	// QueueWait is the tenant's own queue-wait histogram, so fairness
	// is observable per tenant: a greedy neighbour should move its own
	// tail, not everyone else's.
	QueueWait obs.HistStats `json:"queue_wait"`
}

// tenantQ is one tenant's bounded sub-queue plus its accounting. All
// fields are guarded by the owning scheduler's mutex except hist,
// which is internally synchronised.
type tenantQ struct {
	name  string
	quota TenantQuota

	// q holds queued jobs ordered for dispatch: higher Priority first,
	// FIFO within a priority (stable insertion).
	q        []*Job
	inflight int

	admitted  uint64
	completed uint64
	shedQuota uint64
	shedFull  uint64
	hist      *obs.Histogram
}

// scheduler replaces the FIFO job channel with per-tenant bounded
// sub-queues drained by deficit-weighted round-robin (DESIGN.md §12).
// Scheduling only reorders result-invariant work: each admitted job's
// solve is a pure function of its request (§3), so any drain order
// returns bit-identical per-job results.
type scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	queueDepth int // service-wide queued bound
	workers    int // default MaxInflight
	quotas     map[string]TenantQuota
	defQuota   TenantQuota
	// retryAfter estimates time-to-free-slot from the backlog; injected
	// by the service so the estimate can use the live solve histogram.
	retryAfter func(queued int) time.Duration

	tenants map[string]*tenantQ
	ring    []*tenantQ // round-robin visit order, append-only
	rr      int        // ring index currently holding credit
	credit  int        // dequeues the rr tenant may still take this cycle
	total   int        // queued jobs across all tenants
	closed  bool
}

func newScheduler(cfg Config) *scheduler {
	s := &scheduler{
		queueDepth: cfg.QueueDepth,
		workers:    cfg.Workers,
		quotas:     cfg.Tenants,
		defQuota:   cfg.DefaultQuota.withDefaults(cfg.QueueDepth, cfg.Workers),
		retryAfter: func(int) time.Duration { return time.Second },
		tenants:    make(map[string]*tenantQ),
	}
	s.cond = sync.NewCond(&s.mu)
	// materialise configured tenants up front so their quota rows show
	// in /metrics before their first request, and so the maxTenants
	// aliasing below can never displace a configured tenant
	for name := range cfg.Tenants {
		s.tenantLocked(name)
	}
	return s
}

// tenantLocked resolves (creating on first sight) the queue for a
// tenant name; s.mu must be held. Unconfigured tenants beyond the
// maxTenants bound alias to the default queue.
func (s *scheduler) tenantLocked(name string) *tenantQ {
	if name == "" {
		name = DefaultTenant
	}
	if tq, ok := s.tenants[name]; ok {
		return tq
	}
	quota, configured := s.quotas[name]
	if !configured {
		if name != DefaultTenant && len(s.tenants) >= maxTenants {
			return s.tenantLocked(DefaultTenant)
		}
		quota = s.defQuota
	}
	tq := &tenantQ{
		name:  name,
		quota: quota.withDefaults(s.queueDepth, s.workers),
		hist:  obs.NewHistogram(),
	}
	s.tenants[name] = tq
	s.ring = append(s.ring, tq)
	return tq
}

// admit enqueues j under its tenant, or sheds it with a typed
// QuotaError: the service-wide queue bound sheds as queue_full, the
// tenant's own MaxQueue as quota_exceeded. On success the job's
// tenant field is canonicalised to the accounting tenant (aliased
// names report the queue that actually holds them).
func (s *scheduler) admit(j *Job) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	tq := s.tenantLocked(j.tenant)
	if s.total >= s.queueDepth {
		tq.shedFull++
		retry := s.retryAfter(s.total)
		s.mu.Unlock()
		return &QuotaError{Code: ShedQueueFull, Tenant: tq.name,
			Depth: s.total, Limit: s.queueDepth, RetryAfter: retry}
	}
	if len(tq.q) >= tq.quota.MaxQueue {
		tq.shedQuota++
		retry := s.retryAfter(len(tq.q))
		s.mu.Unlock()
		return &QuotaError{Code: ShedQuotaExceeded, Tenant: tq.name,
			Depth: len(tq.q), Limit: tq.quota.MaxQueue, RetryAfter: retry}
	}
	j.tenant = tq.name
	// stable priority insert: after every queued job with priority >=
	// ours, before the first with a strictly lower one — FIFO within a
	// priority class
	at := len(tq.q)
	for i, queued := range tq.q {
		if queued.priority < j.priority {
			at = i
			break
		}
	}
	tq.q = append(tq.q, nil)
	copy(tq.q[at+1:], tq.q[at:])
	tq.q[at] = j
	tq.admitted++
	s.total++
	s.mu.Unlock()
	s.cond.Signal()
	return nil
}

// next blocks until a job is dispatchable and returns it, or returns
// false once the scheduler is closed and drained. The caller owns the
// returned job's inflight slot and must release() it.
func (s *scheduler) next() (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if j := s.pickLocked(); j != nil {
			if s.closed && s.total == 0 {
				// last drained job: wake the other workers so they observe
				// closed-and-empty and exit
				s.cond.Broadcast()
			}
			return j, true
		}
		if s.closed && s.total == 0 {
			return nil, false
		}
		s.cond.Wait()
	}
}

// pickLocked runs one deficit-weighted round-robin scan: the tenant at
// the ring cursor spends one credit per dequeue and yields the cursor
// when its credit or queue is exhausted (or its inflight cap is hit).
// Every tenant with queued work and inflight room is visited at least
// once per cycle, so no tenant starves. s.mu must be held.
func (s *scheduler) pickLocked() *Job {
	n := len(s.ring)
	if n == 0 || s.total == 0 {
		return nil
	}
	for scanned := 0; scanned <= n; scanned++ {
		tq := s.ring[s.rr]
		if s.credit > 0 && s.eligibleLocked(tq) {
			j := tq.q[0]
			tq.q = tq.q[1:]
			s.credit--
			s.total--
			tq.inflight++
			return j
		}
		s.rr = (s.rr + 1) % n
		s.credit = s.ring[s.rr].quota.Weight
	}
	return nil
}

// eligibleLocked reports whether tq can dispatch now. A closed
// scheduler ignores inflight caps: the drain only settles jobs as
// cancelled, and throttling a shutdown helps no one.
func (s *scheduler) eligibleLocked(tq *tenantQ) bool {
	return len(tq.q) > 0 && (s.closed || tq.inflight < tq.quota.MaxInflight)
}

// release returns the tenant's inflight slot after a job settles,
// recording its terminal accounting.
func (s *scheduler) release(tenant string, qwait time.Duration, completed bool) {
	s.mu.Lock()
	tq := s.tenantLocked(tenant)
	tq.inflight--
	if completed {
		tq.completed++
	}
	s.mu.Unlock()
	tq.hist.Observe(qwait)
	s.cond.Signal()
}

// remove withdraws a still-queued job (cancelled before dispatch),
// freeing its queue slot immediately so quota accounting stays exact.
// It reports whether the job was found; false means a worker already
// dequeued it and owns its lifecycle.
func (s *scheduler) remove(j *Job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	tq, ok := s.tenants[j.tenant]
	if !ok {
		return false
	}
	for i, queued := range tq.q {
		if queued == j {
			tq.q = append(tq.q[:i], tq.q[i+1:]...)
			s.total--
			return true
		}
	}
	return false
}

// reload swaps the quota table atomically (DESIGN.md §12): every
// existing tenant queue is re-derived from the new configuration —
// configured tenants get their new quota, the rest the new default —
// and newly configured tenants are materialised so their rows appear
// in /metrics immediately. Queued jobs are untouched: a tenant whose
// MaxQueue shrank below its current depth keeps its backlog and simply
// sheds new admissions until it drains under the new cap. Weight and
// inflight-cap changes take effect at the next scheduler scan.
func (s *scheduler) reload(quotas map[string]TenantQuota, def TenantQuota) {
	s.mu.Lock()
	s.quotas = quotas
	s.defQuota = def.withDefaults(s.queueDepth, s.workers)
	for name, tq := range s.tenants {
		quota, configured := quotas[name]
		if !configured {
			quota = s.defQuota
		}
		tq.quota = quota.withDefaults(s.queueDepth, s.workers)
	}
	for name := range quotas {
		s.tenantLocked(name)
	}
	s.mu.Unlock()
	// quota growth may make blocked tenants dispatchable right now
	s.cond.Broadcast()
}

// close marks the scheduler closed and wakes every waiter. Queued jobs
// are still handed out (next drains them) so workers settle each as
// cancelled rather than stranding pollers.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// depth reports queued jobs across all tenants.
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// metrics snapshots every tenant's accounting row.
func (s *scheduler) metrics() map[string]TenantMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]TenantMetrics, len(s.tenants))
	for name, tq := range s.tenants {
		out[name] = TenantMetrics{
			Admitted:      tq.admitted,
			Completed:     tq.completed,
			ShedQuota:     tq.shedQuota,
			ShedQueueFull: tq.shedFull,
			Queued:        len(tq.q),
			Inflight:      tq.inflight,
			Weight:        tq.quota.Weight,
			MaxQueue:      tq.quota.MaxQueue,
			MaxInflight:   tq.quota.MaxInflight,
			QueueWait:     tq.hist.Stats(),
		}
	}
	return out
}

// ParseTenantQuotas parses the -tenant-quotas flag syntax: a
// comma-separated list of name:weight:max_queue:max_inflight entries
// with zero fields selecting defaults, e.g.
// "pro:4:32:4,free:1:8:1". The name "default" sets the quota every
// unlisted tenant gets.
func ParseTenantQuotas(spec string) (map[string]TenantQuota, TenantQuota, error) {
	quotas := make(map[string]TenantQuota)
	var def TenantQuota
	if spec == "" {
		return quotas, def, nil
	}
	for _, entry := range splitNonEmpty(spec, ',') {
		parts := splitKeep(entry, ':')
		if len(parts) < 2 || len(parts) > 4 || parts[0] == "" {
			return nil, def, fmt.Errorf("service: bad tenant quota %q (want name:weight[:max_queue[:max_inflight]])", entry)
		}
		var q TenantQuota
		var err error
		if q.Weight, err = atoiDefault(parts[1]); err != nil {
			return nil, def, fmt.Errorf("service: tenant %q: bad weight %q", parts[0], parts[1])
		}
		if len(parts) > 2 {
			if q.MaxQueue, err = atoiDefault(parts[2]); err != nil {
				return nil, def, fmt.Errorf("service: tenant %q: bad max_queue %q", parts[0], parts[2])
			}
		}
		if len(parts) > 3 {
			if q.MaxInflight, err = atoiDefault(parts[3]); err != nil {
				return nil, def, fmt.Errorf("service: tenant %q: bad max_inflight %q", parts[0], parts[3])
			}
		}
		if parts[0] == DefaultTenant {
			def = q
			continue
		}
		quotas[parts[0]] = q
	}
	return quotas, def, nil
}

func splitNonEmpty(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == sep {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func splitKeep(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == sep {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

// atoiDefault parses a non-negative int, with "" meaning 0 (take the
// default).
func atoiDefault(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errors.New("not a number")
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, errors.New("out of range")
		}
	}
	return n, nil
}

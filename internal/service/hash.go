package service

import (
	"fmt"
	"math"
	"strconv"

	"imdpp/internal/core"
	"imdpp/internal/diffusion"
)

// Content addressing. DESIGN.md §3 pins the determinism contract: a
// solve is a pure function of (Problem, Options.Seed, sample counts,
// selection knobs) — bit-identical across worker counts, GOMAXPROCS
// and machines. That makes a solve request content-addressable: two
// requests with equal canonical hashes produce bit-identical
// Solutions, so the serving layer can both cache finished results and
// coalesce concurrent duplicates onto one in-flight solve.
//
// The hash walks every input the solver can observe: the social
// graph's CSR adjacency, the merged per-item relevance rows and
// initial meta-graph weights of the PIN model, the importance /
// base-preference / cost tables, budget, T, the diffusion
// hyper-parameters, and every Options field that steers selection.
// Options.Workers, Options.Progress and Options.Backend are
// deliberately excluded — the §3 (and, for sharded backends, §7)
// contracts guarantee they cannot change the result.

// Key is the 128-bit content address of a solve request.
type Key struct {
	Hi, Lo uint64
}

// String renders the key as 32 hex digits.
func (k Key) String() string { return fmt.Sprintf("%016x%016x", k.Hi, k.Lo) }

// ParseKey parses the 32-hex-digit form produced by Key.String — the
// content-address format the shard RPC passes problem references in.
// Parsing is strict (exactly 32 hex digits, no whitespace or signs),
// so distinct wire strings cannot alias to one key.
func ParseKey(s string) (Key, error) {
	if len(s) != 32 {
		return Key{}, fmt.Errorf("service: key %q is not 32 hex digits", s)
	}
	hi, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil {
		return Key{}, fmt.Errorf("service: bad key %q: %w", s, err)
	}
	lo, err := strconv.ParseUint(s[16:], 16, 64)
	if err != nil {
		return Key{}, fmt.Errorf("service: bad key %q: %w", s, err)
	}
	return Key{Hi: hi, Lo: lo}, nil
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// digest is a two-lane FNV-1a over 64-bit words (one multiply per
// word instead of per byte: the matrices dominate and hashing must
// stay cheap next to a solve). The second lane starts from a
// different offset and rotates between words so the lanes stay
// decorrelated, giving a 128-bit address.
type digest struct {
	a, b uint64
}

func newDigest() *digest {
	return &digest{a: fnvOffset, b: fnvOffset ^ 0x9e3779b97f4a7c15}
}

func (d *digest) u64(x uint64) {
	d.a = (d.a ^ x) * fnvPrime
	d.b = (d.b ^ x) * fnvPrime
	d.b = d.b<<13 | d.b>>51
}

func (d *digest) i64(x int)     { d.u64(uint64(int64(x))) }
func (d *digest) f64(x float64) { d.u64(math.Float64bits(x)) }

func (d *digest) f64s(xs []float64) {
	d.i64(len(xs))
	for _, x := range xs {
		d.f64(x)
	}
}

func (d *digest) bool(v bool) {
	if v {
		d.u64(1)
	} else {
		d.u64(0)
	}
}

// HashRequest returns the content address of one solve request.
// Options are canonicalised first (WithDefaults), so a request
// relying on a default and one spelling it out — Seed 0 vs 1, MC 0
// vs 32 — share one key, as they run the bit-identical solve.
func HashRequest(p *diffusion.Problem, opt core.Options, adaptive bool) Key {
	d := newDigest()
	d.bool(adaptive)
	hashOptions(d, opt.WithDefaults())
	hashProblem(d, p)
	return Key{Hi: d.a, Lo: d.b}
}

// HashProblem returns the content address of a Problem alone — the
// key under which the shard subsystem uploads a problem to remote
// estimator workers once and references it by hash thereafter. It
// covers everything the diffusion dynamics can observe (graph CSR,
// PIN rows and initial weights, the economic tables, budget, T,
// params), so two problems with equal keys estimate bit-identically;
// a worker recomputes the hash over the decoded upload, making the
// address self-verifying against codec drift.
func HashProblem(p *diffusion.Problem) Key {
	d := newDigest()
	hashProblem(d, p)
	return Key{Hi: d.a, Lo: d.b}
}

func hashOptions(d *digest, o core.Options) {
	d.i64(o.MC)
	d.i64(o.MCSI)
	d.u64(o.Seed)
	d.i64(o.Theta)
	d.f64(o.MIOAThreshold)
	d.i64(o.CandidateCap)
	d.i64(int(o.Cluster.Strategy))
	d.i64(o.Cluster.MaxHops)
	d.f64(o.Cluster.MinRelGap)
	d.i64(int(o.Order))
	d.bool(o.DisableTargetMarkets)
	d.bool(o.DisableItemPriority)
	// Workers, Progress, Backend-as-constructor and GridCache
	// intentionally omitted: none can affect the result under the
	// §3/§7/§10 determinism contracts, so requests that differ only
	// there should share one cache entry. Epsilon/Delta are the exception the PR-4 note
	// predates: they change the answer itself (approximate coverage
	// counts instead of exact simulation), so sketch requests hash
	// into their own cache lane below — gated on Epsilon > 0 so every
	// pre-epsilon request keeps its exact historical key (DESIGN.md
	// §9).
	if o.Epsilon > 0 {
		d.u64(0x5253) // "RS" lane tag: sketch answers never alias MC
		d.f64(o.Epsilon)
		d.f64(o.Delta)
	}
}

func hashProblem(d *digest, p *diffusion.Problem) {
	n := p.NumUsers()
	items := p.NumItems()
	d.i64(n)
	d.i64(items)
	d.bool(p.G.Directed())

	// social graph: CSR out-adjacency (arcs are sorted by target at
	// Build(), so equal edge multisets hash equally regardless of
	// insertion order — the same canonicalisation the determinism
	// contract relies on)
	for u := 0; u < n; u++ {
		arcs := p.G.Out(u)
		d.i64(arcs.Len())
		for i, v := range arcs.To {
			d.i64(int(v))
			d.f64(arcs.W[i])
		}
	}

	// PIN model: initial meta-graph weights plus the merged relevance
	// rows — everything the diffusion dynamics read from the
	// knowledge-graph side
	d.f64s(p.PIN.InitWeights)
	d.i64(p.PIN.NumC())
	for x := 0; x < items; x++ {
		row := p.PIN.Row(x)
		d.i64(len(row))
		for _, pr := range row {
			d.i64(int(pr.Y))
			d.i64(len(pr.Contribs))
			for _, c := range pr.Contribs {
				d.i64(int(c.Meta))
				d.f64(c.S)
			}
		}
	}

	d.f64s(p.Importance)
	for u := 0; u < n; u++ {
		d.f64s(p.BasePref.Row(u))
	}
	for u := 0; u < n; u++ {
		d.f64s(p.Cost.Row(u))
	}

	d.f64(p.Budget)
	d.i64(p.T)

	pr := p.Params
	d.f64(pr.Eta)
	d.f64(pr.Lambda)
	d.f64(pr.Gamma)
	d.f64(pr.Chi)
	d.i64(pr.MaxSteps)
	d.i64(int(pr.AIS))
	d.bool(pr.Static)
}

package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"imdpp/internal/core"
	"imdpp/internal/diffusion"
	"imdpp/internal/gridcache"
	"imdpp/internal/obs"
	"imdpp/internal/sketch"
)

// Typed submission failures.
var (
	// ErrQueueFull rejects a Submit when the bounded job queue has no
	// room; callers should retry later (HTTP 429/503).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed rejects work submitted after Close.
	ErrClosed = errors.New("service: closed")
)

// Config sizes the service. The zero value selects the defaults.
type Config struct {
	// Workers is the number of concurrent solver jobs (default 1).
	// Each job additionally parallelises its own σ estimation across
	// SolveWorkers estimator goroutines.
	Workers int
	// QueueDepth bounds the number of jobs waiting to run
	// (default 16); Submit fails with ErrQueueFull beyond it.
	QueueDepth int
	// CacheSize bounds the content-addressed result cache in entries
	// (default 128; 0 uses the default, negative disables caching).
	CacheSize int
	// SolveWorkers bounds estimator parallelism within one solve
	// (0 → GOMAXPROCS), overriding Request.Options.Workers.
	SolveWorkers int
	// JobRetention bounds how many finished jobs stay pollable
	// (default 1024); beyond it the oldest finished jobs are forgotten
	// and their ids return not-found. Queued and running jobs are
	// never evicted, and a job's terminal event is always published to
	// its event log before its id can be evicted (DESIGN.md §12).
	JobRetention int
	// Tenants maps tenant names to their scheduling quotas (weight,
	// queue depth, in-flight bound; DESIGN.md §12). Tenants not listed
	// get DefaultQuota. Scheduling only reorders work, so quotas never
	// change any job's result bits.
	Tenants map[string]TenantQuota
	// DefaultQuota is the quota applied to every tenant absent from
	// Tenants, including the default tenant requests without an
	// explicit tenant land in. The zero value selects weight 1,
	// MaxQueue = QueueDepth and MaxInflight = Workers.
	DefaultQuota TenantQuota
	// Backend, when non-nil, constructs the σ/π estimation backend
	// every solve and sigma evaluation runs over — e.g. a sharded
	// remote-worker estimator (internal/shard). The determinism
	// contract makes any conforming backend result-invariant, so the
	// content-addressed cache and coalescing sit above it unchanged: a
	// request solved by the fleet and one solved in-process share one
	// cache entry with bit-identical bytes. Requests that set Epsilon
	// override Backend with the RR-sketch estimator: an approximate
	// answer is what they asked for, and sketch indexes are built
	// where the coverage queries run rather than shipped per-sample
	// like MC grids (DESIGN.md §9).
	Backend core.EstimatorFactory
	// SketchCacheSize bounds the in-memory sketch index cache in
	// entries (default 4). Sketches are keyed by problem content
	// address plus (ε, δ, seed) — a separate lane from the result
	// cache, so approximate artefacts never alias exact results.
	SketchCacheSize int
	// SketchDir, when non-empty, persists built sketch indexes to disk
	// in the canonical wire form and reloads them across restarts.
	SketchDir string
	// GridCacheMB bounds the in-memory sample-grid memoization cache
	// (internal/gridcache, DESIGN.md §10) in MiB (default 64; 0 uses
	// the default, negative disables). The cache is shared by every
	// job and sigma evaluation, so CELF waves of near-duplicate
	// requests reuse simulation work bit-identically — it sits below
	// the whole-solve result cache and, unlike the sketch lane, never
	// changes an answer.
	GridCacheMB int
	// GridCacheDir, when non-empty, spills committed sample grids to
	// disk in the canonical wire form and reloads them on a miss, so
	// eviction or a restart degrades repeats to disk hits instead of
	// re-simulation.
	GridCacheDir string
	// Tracer, when non-nil, records one trace per job and sigma
	// evaluation (DESIGN.md §11). Tracing is observation only: the §3
	// determinism contract guarantees traced and untraced runs return
	// bit-identical results, so Tracer — like Progress and GridCache —
	// is excluded from every content address.
	Tracer *obs.Tracer
	// Logger receives structured job-lifecycle records with job_id and
	// trace_id correlation fields; nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 1024
	}
	if c.GridCacheMB == 0 {
		c.GridCacheMB = 64
	}
	return c
}

// Request is one solve submission.
type Request struct {
	Problem *diffusion.Problem
	Options core.Options
	// Adaptive selects SolveAdaptive (Sec. V-D) instead of Dysim.
	Adaptive bool
	// Tenant names the scheduling tenant the request is accounted
	// under; empty selects the default tenant. Tenancy affects only
	// admission and dispatch order — never the solve result or its
	// content-address (§3 exclusion, like Workers and Progress).
	Tenant string
	// Priority orders dispatch within the tenant's queue: higher runs
	// earlier, FIFO within a priority. Result-invariant like Tenant.
	Priority int
}

// Metrics is a point-in-time snapshot of the service counters, the
// body of the daemon's GET /metrics response.
type Metrics struct {
	JobsSubmitted    uint64  `json:"jobs_submitted"`
	JobsCompleted    uint64  `json:"jobs_completed"`
	JobsFailed       uint64  `json:"jobs_failed"`
	JobsCancelled    uint64  `json:"jobs_cancelled"`
	CacheHits        uint64  `json:"cache_hits"`
	CacheMisses      uint64  `json:"cache_misses"`
	Coalesced        uint64  `json:"coalesced"`
	CacheEntries     int     `json:"cache_entries"`
	QueueDepth       int     `json:"queue_depth"`
	Running          int     `json:"running"`
	SamplesSimulated uint64  `json:"samples_simulated"`
	SolveSeconds     float64 `json:"solve_seconds"`
	// SamplesPerSec is effective estimator throughput: samples
	// simulated plus samples served from the grid cache, over
	// cumulative solve time. Counting served samples keeps the metric
	// comparable across cache-on and cache-off daemons — a cache hit
	// delivers the same bits as a simulation, just faster.
	SamplesPerSec float64 `json:"samples_per_sec"`
	// Sketch and Grid nest the per-subsystem cache counters, the same
	// object-per-subsystem shape the daemon uses for "shard" — one
	// naming discipline for every future counter family instead of a
	// drift of flat prefixed keys.
	Sketch SketchMetrics   `json:"sketch"`
	Grid   gridcache.Stats `json:"grid"`
	// Latency nests the pipeline latency histograms (DESIGN.md §11).
	Latency LatencyMetrics `json:"latency"`
	// Tenants is the per-tenant scheduling block (DESIGN.md §12): one
	// row per tenant with admission/shed counters, live queue/inflight
	// occupancy, the effective quota and the tenant's own queue-wait
	// histogram.
	Tenants map[string]TenantMetrics `json:"tenants"`
}

// LatencyMetrics is the /metrics "latency" block: p50/p95/p99
// snapshots of the pipeline's four latency histograms. ShardRPC is
// zero-valued here — the daemon overlays it from the shard pool.
type LatencyMetrics struct {
	QueueWait obs.HistStats `json:"queue_wait"`
	SolveWall obs.HistStats `json:"solve_wall"`
	ShardRPC  obs.HistStats `json:"shard_rpc"`
	Sigma     obs.HistStats `json:"sigma"`
}

// SketchMetrics groups the sketch-backend counters: requests that
// selected the approximate backend (epsilon set), RR indexes actually
// built, in-memory sketch cache hits, and indexes reloaded from the
// disk spill (-sketch-dir) instead of rebuilt.
type SketchMetrics struct {
	Requests  uint64 `json:"requests"`
	Builds    uint64 `json:"builds"`
	CacheHits uint64 `json:"cache_hits"`
	DiskHits  uint64 `json:"disk_hits"`
}

// Service runs campaign solves asynchronously. Create with New,
// release with Close.
type Service struct {
	cfg Config
	// sched is the weighted-fair, quota-aware admission and dispatch
	// layer (sched.go, DESIGN.md §12) that replaced the FIFO channel.
	sched *scheduler

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	nextID   uint64
	jobs     map[string]*Job
	retired  []string     // finished job ids, oldest first, for eviction
	inflight map[Key]*Job // queued or running job per content address
	cache    *lru

	// sketchCache shares RR sketch indexes across epsilon requests,
	// keyed by HashProblem + (ε, δ, seed).
	sketchCache *sketch.Cache
	sketchReqs  atomic.Uint64

	// gridCache memoizes raw sample grids across jobs and sigma
	// evaluations, keyed by HashProblem + the canonical group key
	// (DESIGN.md §10); nil when Config disables it.
	gridCache *gridcache.Cache

	submitted  atomic.Uint64
	completed  atomic.Uint64
	failed     atomic.Uint64
	cancelled  atomic.Uint64
	cacheHits  atomic.Uint64
	cacheMiss  atomic.Uint64
	coalesced  atomic.Uint64
	running    atomic.Int64
	samples    atomic.Uint64
	saved      atomic.Uint64
	solveNanos atomic.Int64

	// latency histograms, always allocated so /metrics carries the
	// latency block whether or not a tracer is configured
	histQueue *obs.Histogram
	histSolve *obs.Histogram
	histSigma *obs.Histogram
	logger    *slog.Logger
}

// New starts a service with cfg's worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		sched:      newScheduler(cfg),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		inflight:   make(map[Key]*Job),
		cache:      newLRU(cfg.CacheSize),
		histQueue:  obs.NewHistogram(),
		histSolve:  obs.NewHistogram(),
		histSigma:  obs.NewHistogram(),
		logger:     cfg.Logger,
	}
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	// Retry-After estimate: how long until a queue slot frees, from
	// the backlog ahead of the caller and the observed mean solve time
	// (1s floor before any solve completes, 60s cap so clients never
	// back off absurdly).
	s.sched.retryAfter = func(queued int) time.Duration {
		mean := time.Duration(s.histSolve.Stats().MeanMs * float64(time.Millisecond))
		if mean <= 0 {
			mean = time.Second
		}
		d := mean * time.Duration(queued/cfg.Workers+1)
		return min(max(d, time.Second), time.Minute)
	}
	s.sketchCache = sketch.NewCache(cfg.SketchCacheSize, cfg.SketchDir,
		func(p *diffusion.Problem) string { return HashProblem(p).String() })
	if cfg.GridCacheMB > 0 {
		s.gridCache = gridcache.New(gridcache.Config{
			MaxBytes: int64(cfg.GridCacheMB) << 20,
			Dir:      cfg.GridCacheDir,
			KeyFn:    func(p *diffusion.Problem) string { return HashProblem(p).String() },
		})
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close cancels running jobs, drains the queue and waits for the
// worker pool to exit. The service rejects submissions afterwards.
// Jobs still queued are settled as cancelled, publishing their
// terminal events, so SSE subscribers and long-pollers attached at
// close time observe an outcome instead of hanging.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.baseCancel()
	s.sched.close() // workers drain the remaining queue as cancelled, then exit
	s.wg.Wait()
}

// ReloadQuotas swaps the per-tenant scheduling quotas atomically
// without dropping queued jobs (DESIGN.md §12) — the daemon's SIGHUP
// path. A tenant whose MaxQueue shrank below its current depth keeps
// its backlog and sheds only new admissions until it drains under the
// new cap.
func (s *Service) ReloadQuotas(quotas map[string]TenantQuota, def TenantQuota) {
	s.sched.reload(quotas, def)
}

// Submit enqueues a solve. The returned job may be shared: an
// identical request already queued or running is coalesced onto the
// existing job (coalesced=true), and a cached result completes the
// new job immediately (Job.Snapshot().CacheHit). Distinct requests
// beyond the queue bound fail with ErrQueueFull.
func (s *Service) Submit(req Request) (job *Job, coalescedFlag bool, err error) {
	if err := core.ValidateRequest(req.Problem, req.Options); err != nil {
		return nil, false, err
	}
	if err := req.Problem.Validate(); err != nil {
		return nil, false, err
	}
	key := HashRequest(req.Problem, req.Options, req.Adaptive)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	if sol, ok := s.cache.get(key); ok {
		j := s.newJobLocked(key, req)
		j.cacheHit = true
		s.mu.Unlock()
		s.cacheHits.Add(1)
		s.submitted.Add(1)
		s.completed.Add(1)
		j.finish(StatusDone, sol, nil)
		s.retireJob(j)
		return j, false, nil
	}
	if j := s.inflight[key]; j != nil {
		s.mu.Unlock()
		s.coalesced.Add(1)
		return j, true, nil
	}
	j := s.newJobLocked(key, req)
	if err := s.sched.admit(j); err != nil {
		// typed shed: *QuotaError carries the reason (queue_full or
		// quota_exceeded), the tenant and a Retry-After estimate
		delete(s.jobs, j.id)
		s.mu.Unlock()
		j.cancelCtx()
		return nil, false, err
	}
	s.inflight[key] = j
	s.mu.Unlock()
	s.cacheMiss.Add(1)
	s.submitted.Add(1)
	return j, false, nil
}

// newJobLocked allocates and registers a job; s.mu must be held.
func (s *Service) newJobLocked(key Key, req Request) *Job {
	s.nextID++
	ctx, cancel := context.WithCancel(s.baseCtx)
	tenant := req.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	j := &Job{
		id:        jobID(s.nextID),
		key:       key,
		req:       req,
		tenant:    tenant,
		priority:  req.Priority,
		ctx:       ctx,
		cancelCtx: cancel,
		done:      make(chan struct{}),
		status:    StatusQueued,
		created:   time.Now(),
	}
	if req.Options.Epsilon > 0 {
		j.backend = BackendSketch
	}
	j.cancelHook = func() { s.cancelJob(j) }
	s.jobs[j.id] = j
	return j
}

func jobID(n uint64) string { return fmt.Sprintf("j%d", n) }

// Job looks up a job by id.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels the job with the given id, reporting whether the id
// was known.
func (s *Service) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	s.cancelJob(j)
	return true
}

// cancelJob cancels a job's context and, when no worker has picked it
// up yet, settles it as cancelled immediately so pollers never wait
// on a dead queue entry. The queued entry is withdrawn from its
// tenant's sub-queue eagerly, so quota accounting stays exact — a
// cancelled job can never hold a tenant at its MaxQueue bound.
func (s *Service) cancelJob(j *Job) {
	j.cancelCtx()
	if j.finishIfQueued() {
		s.sched.remove(j)
		s.cancelled.Add(1)
		s.retireJob(j)
		s.clearInflight(j)
	}
}

// clearInflight removes j from the coalescing index if it still owns
// its key, so a later identical request solves afresh.
func (s *Service) clearInflight(j *Job) {
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
}

// retireJob enrols a finished job in the bounded retention window,
// evicting the oldest finished jobs beyond Config.JobRetention so a
// long-running daemon's job index cannot grow without bound. Only
// finished jobs enter the window, so queued/running jobs are safe.
//
// Ordering guarantee (DESIGN.md §12): every caller invokes retireJob
// strictly after Job.finish / finishIfQueued, which publish the
// terminal event to the job's event log inside the status-settling
// critical section. An SSE subscriber or long-poller attached to a
// retiring job therefore always observes the terminal event — eviction
// only removes the id from the index; attached streams keep draining
// the Job they already hold. TestRetireDeliversTerminalToSubscribers
// pins this.
func (s *Service) retireJob(j *Job) {
	s.mu.Lock()
	s.retired = append(s.retired, j.id)
	for len(s.retired) > s.cfg.JobRetention {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
	s.mu.Unlock()
}

// worker is the solver loop: one goroutine per Config.Workers. Every
// job handed out by the scheduler — run, drained-at-close or
// cancelled-after-dequeue — releases its tenant's inflight slot here,
// so the per-tenant accounting is exact.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.sched.next()
		if !ok {
			return
		}
		s.runJob(j)
		s.sched.release(j.tenant, j.queueWait(), j.Snapshot().Status == StatusDone)
	}
}

func (s *Service) runJob(j *Job) {
	if j.ctx.Err() != nil {
		// cancelled (or service-closed) while queued
		if j.finish(StatusCancelled, nil, context.Canceled) {
			s.cancelled.Add(1)
			s.retireJob(j)
		}
		s.clearInflight(j)
		return
	}
	if !j.markRunning() {
		s.clearInflight(j)
		return
	}
	s.running.Add(1)
	defer s.running.Add(-1)

	// root span for the whole job: nil tracer → nil span → every call
	// below is a no-op and ctx is passed through unchanged
	root := s.cfg.Tracer.Start("job")
	defer root.End()
	root.SetAttr("job_id", j.id)
	root.SetAttr("key", j.key.String())
	j.setTrace(root.TraceID())
	qwait := j.queueWait()
	root.RecordChild("queue_wait", j.created, j.created.Add(qwait))
	s.histQueue.Observe(qwait)
	ctx := obs.ContextWithSpan(j.ctx, root)
	s.logger.Info("job running",
		"job_id", j.id, "trace_id", root.TraceID().String(),
		"queue_ms", float64(qwait)/1e6, "adaptive", j.req.Adaptive)

	tracker := &phaseTracker{parent: root}
	opt := j.req.Options
	opt.Progress = func(ev core.ProgressEvent) {
		tracker.observe(ev)
		j.setProgress(ev)
	}
	if s.cfg.SolveWorkers > 0 {
		opt.Workers = s.cfg.SolveWorkers
	}
	if opt.GridCache == nil {
		// the shared grid cache is what lets near-duplicate jobs — same
		// problem and seed, slightly different options — reuse each
		// other's simulation work below the whole-solve result cache
		opt.GridCache = s.gridCache
	}
	if opt.Backend == nil {
		if opt.Epsilon > 0 {
			// an epsilon request explicitly asked for the approximate
			// backend, so it wins over a configured fleet backend —
			// coverage counting runs where the sketch index lives
			// (DESIGN.md §9)
			s.sketchReqs.Add(1)
			opt.Backend = core.SketchBackend(sketch.Config{
				Epsilon: opt.Epsilon, Delta: opt.Delta, Cache: s.sketchCache,
			})
		} else {
			opt.Backend = s.cfg.Backend
		}
	}
	start := time.Now()
	var (
		sol core.Solution
		err error
	)
	if j.req.Adaptive {
		sol, err = core.SolveAdaptiveCtx(ctx, j.req.Problem, opt)
	} else {
		sol, err = core.SolveCtx(ctx, j.req.Problem, opt)
	}
	elapsed := time.Since(start)
	s.histSolve.Observe(elapsed)
	j.setPhases(tracker.finish())
	if err != nil {
		root.SetAttr("error", err.Error())
		s.logger.Warn("job finished",
			"job_id", j.id, "trace_id", root.TraceID().String(),
			"solve_ms", elapsed.Seconds()*1e3, "err", err)
	} else {
		s.logger.Info("job finished",
			"job_id", j.id, "trace_id", root.TraceID().String(),
			"solve_ms", elapsed.Seconds()*1e3, "sigma", sol.Sigma)
	}

	switch {
	case err == nil:
		// cache-insert and inflight-clear atomically: an identical
		// Submit must never observe the key absent from both (it would
		// enqueue a duplicate full solve)
		s.mu.Lock()
		s.cache.add(j.key, &sol)
		if s.inflight[j.key] == j {
			delete(s.inflight, j.key)
		}
		s.mu.Unlock()
		s.samples.Add(sol.Stats.SamplesSimulated)
		s.saved.Add(sol.Stats.SamplesSaved)
		s.solveNanos.Add(int64(elapsed))
		if j.finish(StatusDone, &sol, nil) {
			s.completed.Add(1)
			s.retireJob(j)
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.clearInflight(j)
		if j.finish(StatusCancelled, nil, err) {
			s.cancelled.Add(1)
			s.retireJob(j)
		}
	default:
		s.clearInflight(j)
		if j.finish(StatusFailed, nil, err) {
			s.failed.Add(1)
			s.retireJob(j)
		}
	}
}

// SigmaOptions configure one synchronous σ evaluation. The zero value
// is valid: 100 Monte-Carlo samples, exact engine.
type SigmaOptions struct {
	// MC is the Monte-Carlo sample count (0 → 100). Ignored by the
	// sketch path, whose sample count θ derives from (ε, δ).
	MC int
	// Seed is the master RNG seed.
	Seed uint64
	// Epsilon > 0 answers by RR-sketch coverage counting instead of
	// simulation, within ε·n·W of the exact value with probability
	// ≥ 1−Delta. 0 keeps the exact engine and its bit-identical
	// responses.
	Epsilon float64
	// Delta is the (ε, δ) failure probability (0 → 0.05 when Epsilon
	// is set).
	Delta float64
}

// Backend labels returned by Sigma.
const (
	BackendMC     = "mc"
	BackendSketch = "sketch"
)

// Sigma evaluates σ for an explicit seed group synchronously — the
// daemon's POST /v1/sigma. It validates the seeds, honours ctx
// cancellation and contributes to the service throughput counters.
// The returned backend label reports which estimator answered
// (BackendMC or BackendSketch).
func (s *Service) Sigma(ctx context.Context, p *diffusion.Problem, seeds []diffusion.Seed, opt SigmaOptions) (diffusion.Estimate, string, error) {
	// same request gate as Submit: typed errors for nil problem,
	// negative budget, T < 1, a negative sample count and a bad
	// (ε, δ) pair
	if err := core.ValidateRequest(p, core.Options{MC: opt.MC, Epsilon: opt.Epsilon, Delta: opt.Delta}); err != nil {
		return diffusion.Estimate{}, "", err
	}
	if err := p.Validate(); err != nil {
		return diffusion.Estimate{}, "", err
	}
	mc := opt.MC
	if mc == 0 {
		mc = 100
	}
	if err := p.ValidateSeeds(seeds); err != nil {
		return diffusion.Estimate{}, "", err
	}
	name := BackendMC
	backend := core.LocalEstimator
	switch {
	case opt.Epsilon > 0:
		// epsilon selects the sketch lane, sharing the service's index
		// cache with epsilon solves over the same problem
		s.sketchReqs.Add(1)
		name = BackendSketch
		backend = core.SketchBackend(sketch.Config{
			Epsilon: opt.Epsilon, Delta: opt.Delta, Cache: s.sketchCache,
		})
	case s.cfg.Backend != nil:
		backend = s.cfg.Backend
	}
	root := s.cfg.Tracer.Start("sigma")
	defer root.End()
	root.SetAttr("backend", name)
	root.SetAttrInt("seeds", int64(len(seeds)))
	ctx = obs.ContextWithSpan(ctx, root)
	est := backend(p, mc, opt.Seed, s.cfg.SolveWorkers)
	est.Bind(ctx)
	core.AttachGridCache(est, p, s.gridCache)
	start := time.Now()
	run := est.Run(seeds, nil, false)
	s.histSigma.Observe(time.Since(start))
	if err := ctx.Err(); err != nil {
		return diffusion.Estimate{}, "", err
	}
	s.samples.Add(est.SamplesDone())
	if gs, ok := est.(interface{ GridStats() (uint64, uint64) }); ok {
		_, sv := gs.GridStats()
		s.saved.Add(sv)
	}
	s.solveNanos.Add(int64(time.Since(start)))
	return run, name, nil
}

// Metrics snapshots the service counters.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	entries := s.cache.len()
	s.mu.Unlock()
	depth := s.sched.depth()
	m := Metrics{
		JobsSubmitted:    s.submitted.Load(),
		JobsCompleted:    s.completed.Load(),
		JobsFailed:       s.failed.Load(),
		JobsCancelled:    s.cancelled.Load(),
		CacheHits:        s.cacheHits.Load(),
		CacheMisses:      s.cacheMiss.Load(),
		Coalesced:        s.coalesced.Load(),
		CacheEntries:     entries,
		QueueDepth:       depth,
		Running:          int(s.running.Load()),
		SamplesSimulated: s.samples.Load(),
		SolveSeconds:     time.Duration(s.solveNanos.Load()).Seconds(),
	}
	if m.SolveSeconds > 0 {
		m.SamplesPerSec = float64(m.SamplesSimulated+s.saved.Load()) / m.SolveSeconds
	}
	m.Sketch.Requests = s.sketchReqs.Load()
	m.Sketch.Builds, m.Sketch.CacheHits, m.Sketch.DiskHits = s.sketchCache.Stats()
	m.Grid = s.gridCache.Stats()
	m.Latency.QueueWait = s.histQueue.Stats()
	m.Latency.SolveWall = s.histSolve.Stats()
	m.Latency.Sigma = s.histSigma.Stats()
	m.Tenants = s.sched.metrics()
	return m
}

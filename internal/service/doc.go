// Package service is the campaign-solving subsystem behind the
// imdppd daemon: a bounded job queue over a solver worker pool, with
// per-job status and progress, prompt cancellation, a
// content-addressed LRU result cache and in-flight request
// coalescing.
//
// The cache and coalescing lean on the determinism contract of
// DESIGN.md §3: a solve is a pure function of its content-addressed
// inputs (HashRequest), so a cached Solution is the exact result an
// identical request would recompute, and concurrent duplicates can
// share one in-flight solve without changing what any caller
// observes. Because sharded estimation (internal/shard, DESIGN.md §7)
// is result-invariant too, the same cache sits unchanged above a
// remote-worker backend (Config.Backend): fleet-computed and local
// solves share cache entries, and HashProblem — the problem-only
// restriction of the digest — doubles as the content address problems
// are uploaded to estimator workers under.
package service

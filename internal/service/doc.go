// Package service is the campaign-solving subsystem behind the
// imdppd daemon: a bounded job queue over a solver worker pool, with
// per-job status and progress, prompt cancellation, a
// content-addressed LRU result cache and in-flight request
// coalescing.
//
// The cache and coalescing lean on the determinism contract of
// DESIGN.md §3: a solve is a pure function of its content-addressed
// inputs (HashRequest), so a cached Solution is the exact result an
// identical request would recompute, and concurrent duplicates can
// share one in-flight solve without changing what any caller
// observes. Because sharded estimation (internal/shard, DESIGN.md §7)
// is result-invariant too, the same cache sits unchanged above a
// remote-worker backend (Config.Backend): fleet-computed and local
// solves share cache entries, and HashProblem — the problem-only
// restriction of the digest — doubles as the content address problems
// are uploaded to estimator workers under.
//
// The hash-exclusion rule is therefore about results, not about
// backends per se: anything that cannot change the returned floats
// (Workers, Progress, Backend-as-constructor) stays out of the
// digest, while the (ε, δ) parameters of the approximate
// reverse-reachable sketch backend (internal/sketch, DESIGN.md §9) —
// which change the answer from exact simulation to coverage counting
// — hash into their own lane, gated on Epsilon > 0 so every
// pre-sketch request keeps its exact historical key and sketch
// answers never alias MC results. Requests carrying epsilon are
// echoed with backend "sketch" in job snapshots, and the service
// keeps a second content-addressed cache (sketch.Cache, keyed by
// HashProblem + ε + δ + seed, optionally disk-backed) for the built
// indices themselves.
package service

package service

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"imdpp/internal/core"
	"imdpp/internal/dataset"
	"imdpp/internal/diffusion"
	"imdpp/internal/sketch"
)

func sampleProblem(t *testing.T, budget float64, T int) *diffusion.Problem {
	t.Helper()
	d, err := dataset.AmazonSample()
	if err != nil {
		t.Fatalf("AmazonSample: %v", err)
	}
	return d.Clone(budget, T)
}

// quickReq is a fast-solving request for queue/cache tests.
func quickReq(p *diffusion.Problem) Request {
	return Request{Problem: p, Options: core.Options{MC: 4, MCSI: 2, Seed: 1, CandidateCap: 16}}
}

// slowReq is a request whose solve takes long enough that a test can
// reliably act (cancel, coalesce) while it is in flight.
func slowReq(p *diffusion.Problem) Request {
	return Request{Problem: p, Options: core.Options{MC: 512, MCSI: 64, Seed: 1, CandidateCap: 256}}
}

// checkNoGoroutineLeak polls until the goroutine count returns to
// (about) the baseline — a goleak-style guard against leaked solver
// or worker goroutines.
func checkNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finished goroutines off the scheduler
		n := runtime.NumGoroutine()
		if n <= baseline+2 { // tolerate runtime/test-framework jitter
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHashRequestStableAndSensitive(t *testing.T) {
	p1 := sampleProblem(t, 80, 3)
	p2 := sampleProblem(t, 80, 3) // independently built, identical content
	opt := core.Options{MC: 8, Seed: 7}

	k1 := HashRequest(p1, opt, false)
	k2 := HashRequest(p2, opt, false)
	if k1 != k2 {
		t.Fatalf("identical problems hash differently: %v vs %v", k1, k2)
	}

	// Workers and Progress must not affect the address: the §3
	// contract makes them result-invariant.
	optW := opt
	optW.Workers = 7
	optW.Progress = func(core.ProgressEvent) {}
	if k := HashRequest(p1, optW, false); k != k1 {
		t.Fatalf("Workers/Progress changed the key: %v vs %v", k, k1)
	}

	// zero-valued fields hash as their defaults: a request relying on
	// defaults and one spelling them out run the same solve, so they
	// must share a key
	zero := core.Options{MC: 8, Seed: 7}
	spelled := zero.WithDefaults()
	if k := HashRequest(p1, spelled, false); k != HashRequest(p1, zero, false) {
		t.Fatalf("default-spelling changed the key")
	}
	implicitSeed := core.Options{MC: 8} // Seed 0 → default 1
	explicitSeed := core.Options{MC: 8, Seed: 1}
	if HashRequest(p1, implicitSeed, false) != HashRequest(p1, explicitSeed, false) {
		t.Fatalf("Seed 0 and its default 1 hash differently")
	}

	distinct := map[Key]string{k1: "base"}
	check := func(name string, k Key) {
		if prev, dup := distinct[k]; dup {
			t.Fatalf("%s collides with %s: %v", name, prev, k)
		}
		distinct[k] = name
	}
	optSeed := opt
	optSeed.Seed = 8
	check("seed", HashRequest(p1, optSeed, false))
	optMC := opt
	optMC.MC = 9
	check("mc", HashRequest(p1, optMC, false))
	check("adaptive", HashRequest(p1, opt, true))
	check("budget", HashRequest(sampleProblem(t, 81, 3), opt, false))
	check("T", HashRequest(sampleProblem(t, 80, 4), opt, false))
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	s1, s2, s3 := &core.Solution{Sigma: 1}, &core.Solution{Sigma: 2}, &core.Solution{Sigma: 3}
	k1, k2, k3 := Key{1, 1}, Key{2, 2}, Key{3, 3}
	c.add(k1, s1)
	c.add(k2, s2)
	if _, ok := c.get(k1); !ok { // refresh k1 → k2 becomes LRU
		t.Fatal("k1 missing")
	}
	c.add(k3, s3)
	if _, ok := c.get(k2); ok {
		t.Fatal("k2 should have been evicted")
	}
	if got, ok := c.get(k1); !ok || got.Sigma != 1 {
		t.Fatal("k1 lost")
	}
	if got, ok := c.get(k3); !ok || got.Sigma != 3 {
		t.Fatal("k3 lost")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d want 2", c.len())
	}
}

// TestCacheDeterminism is the §3-contract payoff: two identical
// requests run one solve; the second is a cache hit returning the
// bit-identical σ.
func TestCacheDeterminism(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New(Config{Workers: 1})
	p := sampleProblem(t, 80, 3)

	j1, coalesced, err := s.Submit(quickReq(p))
	if err != nil || coalesced {
		t.Fatalf("submit 1: err=%v coalesced=%v", err, coalesced)
	}
	sol1, err := j1.Wait(context.Background())
	if err != nil {
		t.Fatalf("job 1: %v", err)
	}

	j2, coalesced, err := s.Submit(quickReq(sampleProblem(t, 80, 3)))
	if err != nil || coalesced {
		t.Fatalf("submit 2: err=%v coalesced=%v", err, coalesced)
	}
	sol2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatalf("job 2: %v", err)
	}
	if !j2.Snapshot().CacheHit {
		t.Fatal("identical resubmit was not a cache hit")
	}
	if sol1.Sigma != sol2.Sigma { // bit-identical, not approximately
		t.Fatalf("cached σ differs: %v vs %v", sol1.Sigma, sol2.Sigma)
	}
	if len(sol1.Seeds) == 0 {
		t.Fatal("empty solution")
	}

	m := s.Metrics()
	if m.JobsSubmitted != 2 || m.JobsCompleted != 2 || m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.SamplesPerSec <= 0 {
		t.Fatalf("samples/sec not tracked: %+v", m)
	}

	s.Close()
	checkNoGoroutineLeak(t, baseline)
}

// TestCoalescing: concurrent duplicates share one in-flight solve.
func TestCoalescing(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	p := sampleProblem(t, 80, 3)

	j1, coalesced, err := s.Submit(slowReq(p))
	if err != nil || coalesced {
		t.Fatalf("submit 1: err=%v coalesced=%v", err, coalesced)
	}
	j2, coalesced, err := s.Submit(slowReq(sampleProblem(t, 80, 3)))
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if !coalesced || j2 != j1 {
		t.Fatalf("duplicate was not coalesced onto the in-flight job (coalesced=%v, same=%v)", coalesced, j2 == j1)
	}
	if _, err := j1.Wait(context.Background()); err != nil {
		t.Fatalf("solve: %v", err)
	}
	m := s.Metrics()
	if m.Coalesced != 1 || m.JobsCompleted != 1 {
		t.Fatalf("metrics: %+v", m)
	}

	// after completion the request is no longer in flight: an
	// identical submit now hits the cache instead of coalescing
	j3, coalesced, err := s.Submit(slowReq(p))
	if err != nil || coalesced {
		t.Fatalf("submit 3: err=%v coalesced=%v", err, coalesced)
	}
	if !j3.Snapshot().CacheHit {
		t.Fatal("post-completion duplicate should be a cache hit")
	}
}

// TestCancelRunning: cancelling a running job aborts the solve
// promptly and leaks no goroutines.
func TestCancelRunning(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New(Config{Workers: 1})
	p := sampleProblem(t, 80, 3)

	j, _, err := s.Submit(slowReq(p))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// wait for the job to actually start
	deadline := time.Now().Add(10 * time.Second)
	for j.Snapshot().Status == StatusQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}

	cancelAt := time.Now()
	if !s.Cancel(j.ID()) {
		t.Fatal("cancel: unknown job")
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	latency := time.Since(cancelAt)
	// the engine preempts between (group × sample) units, so the abort
	// should land within about one campaign simulation; the bound is
	// generous for loaded CI machines
	if latency > 500*time.Millisecond {
		t.Fatalf("cancel latency %v, want ≤ 500ms", latency)
	}
	if st := j.Snapshot().Status; st != StatusCancelled {
		t.Fatalf("status = %v want cancelled", st)
	}

	// the slot is free again: a fresh identical request re-solves
	j2, coalesced, err := s.Submit(quickReq(p))
	if err != nil || coalesced {
		t.Fatalf("post-cancel submit: err=%v coalesced=%v", err, coalesced)
	}
	if _, err := j2.Wait(context.Background()); err != nil {
		t.Fatalf("post-cancel solve: %v", err)
	}

	m := s.Metrics()
	if m.JobsCancelled != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	s.Close()
	checkNoGoroutineLeak(t, baseline)
}

// TestCancelQueued: a job cancelled before any worker picks it up
// settles immediately.
func TestCancelQueued(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	p := sampleProblem(t, 80, 3)

	blocker, _, err := s.Submit(slowReq(p))
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	queued, _, err := s.Submit(quickReq(p))
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	queued.Cancel()
	select {
	case <-queued.Done():
	case <-time.After(time.Second):
		t.Fatal("queued job did not settle on cancel")
	}
	if st := queued.Snapshot().Status; st != StatusCancelled {
		t.Fatalf("status = %v want cancelled", st)
	}
	blocker.Cancel()
	<-blocker.Done()
}

func TestQueueFull(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	p := sampleProblem(t, 80, 3)

	blocker, _, err := s.Submit(slowReq(p))
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	// wait until the worker dequeues it, freeing the queue slot
	deadline := time.Now().Add(10 * time.Second)
	for blocker.Snapshot().Status == StatusQueued {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	// distinct requests (different seeds) so coalescing doesn't absorb them
	r2 := slowReq(p)
	r2.Options.Seed = 2
	if _, _, err := s.Submit(r2); err != nil { // fills the queue
		t.Fatalf("submit 2: %v", err)
	}
	r3 := slowReq(p)
	r3.Options.Seed = 3
	if _, _, err := s.Submit(r3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	p := sampleProblem(t, 80, 3)

	var inputErr *core.InputError
	if _, _, err := s.Submit(Request{Problem: nil}); !errors.As(err, &inputErr) {
		t.Fatalf("nil problem: want InputError, got %v", err)
	}
	if _, _, err := s.Submit(Request{Problem: p, Options: core.Options{MC: -1}}); !errors.As(err, &inputErr) || inputErr.Field != "MC" {
		t.Fatalf("negative MC: want InputError{MC}, got %v", err)
	}
	bad := sampleProblem(t, 80, 3)
	bad.Budget = -5
	if _, _, err := s.Submit(Request{Problem: bad}); !errors.As(err, &inputErr) || inputErr.Field != "Budget" {
		t.Fatalf("negative budget: want InputError{Budget}, got %v", err)
	}
	badT := sampleProblem(t, 80, 3)
	badT.T = 0
	if _, _, err := s.Submit(Request{Problem: badT}); !errors.As(err, &inputErr) || inputErr.Field != "T" {
		t.Fatalf("T<1: want InputError{T}, got %v", err)
	}
}

// TestJobRetention: finished jobs are evicted beyond the retention
// window so the job index stays bounded under sustained traffic.
func TestJobRetention(t *testing.T) {
	s := New(Config{Workers: 1, JobRetention: 2})
	defer s.Close()
	p := sampleProblem(t, 80, 3)

	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		r := quickReq(p)
		r.Options.Seed = seed
		j, _, err := s.Submit(r)
		if err != nil {
			t.Fatalf("submit %d: %v", seed, err)
		}
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatalf("job %d: %v", seed, err)
		}
		ids = append(ids, j.ID())
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Fatal("oldest finished job should have been evicted")
	}
	for _, id := range ids[1:] {
		if _, ok := s.Job(id); !ok {
			t.Fatalf("job %s evicted too early", id)
		}
	}
}

func TestSubmitAfterClose(t *testing.T) {
	s := New(Config{})
	s.Close()
	if _, _, err := s.Submit(quickReq(sampleProblem(t, 80, 3))); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestSigma(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	p := sampleProblem(t, 80, 3)

	seeds := []diffusion.Seed{{User: 0, Item: 0, T: 1}}
	e1, _, err := s.Sigma(context.Background(), p, seeds, SigmaOptions{MC: 32, Seed: 42})
	if err != nil {
		t.Fatalf("sigma: %v", err)
	}
	e2, _, err := s.Sigma(context.Background(), p, seeds, SigmaOptions{MC: 32, Seed: 42})
	if err != nil {
		t.Fatalf("sigma 2: %v", err)
	}
	if e1.Sigma != e2.Sigma || e1.Sigma <= 0 {
		t.Fatalf("σ not deterministic: %v vs %v", e1.Sigma, e2.Sigma)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Sigma(cancelled, p, seeds, SigmaOptions{MC: 32, Seed: 42}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	if _, _, err := s.Sigma(context.Background(), p, []diffusion.Seed{{User: -1, Item: 0, T: 1}}, SigmaOptions{MC: 4, Seed: 1}); err == nil {
		t.Fatal("out-of-range seed accepted")
	}

	// Sigma shares the typed request gate with Submit
	var inputErr *core.InputError
	badT := sampleProblem(t, 80, 3)
	badT.T = 0
	if _, _, err := s.Sigma(context.Background(), badT, nil, SigmaOptions{MC: 4, Seed: 1}); !errors.As(err, &inputErr) || inputErr.Field != "T" {
		t.Fatalf("T<1: want InputError{T}, got %v", err)
	}
	if _, _, err := s.Sigma(context.Background(), p, nil, SigmaOptions{MC: -1, Seed: 1}); !errors.As(err, &inputErr) || inputErr.Field != "MC" {
		t.Fatalf("negative mc: want InputError{MC}, got %v", err)
	}
}

// TestHashRequestSketchLane: the (ε, δ) cache lane of DESIGN.md §9.
// Epsilon-absent requests keep their exact pre-sketch content address
// — the golden keys below were captured at the PR-5 HEAD, before the
// sketch backend existed — and sketch answers never alias MC results
// or each other across (ε, δ).
func TestHashRequestSketchLane(t *testing.T) {
	p := sampleProblem(t, 100, 4)
	base := core.Options{MC: 8}

	if got := HashRequest(p, base, false).String(); got != "498753ed8ae6549f3600d75a566d33c1" {
		t.Fatalf("epsilon-absent HashRequest drifted from the pre-sketch golden key: %s", got)
	}
	if got := HashProblem(p).String(); got != "27dff656949cb46f2ce09e07f4f41a95" {
		t.Fatalf("HashProblem drifted from the pre-sketch golden key: %s", got)
	}

	distinct := map[Key]string{HashRequest(p, base, false): "mc"}
	check := func(name string, o core.Options) {
		k := HashRequest(p, o, false)
		if prev, dup := distinct[k]; dup {
			t.Fatalf("%s shares a cache key with %s: %v", name, prev, k)
		}
		distinct[k] = name
	}
	eps := base
	eps.Epsilon = 0.05
	check("epsilon 0.05", eps)
	eps2 := base
	eps2.Epsilon = 0.1
	check("epsilon 0.1", eps2)
	epsD := eps
	epsD.Delta = 0.2
	check("epsilon 0.05 delta 0.2", epsD)

	// Delta canonicalises to its default before hashing: relying on
	// the default and spelling it out run the same build, so they
	// must share one key.
	spelled := eps
	spelled.Delta = sketch.DefaultDelta
	if HashRequest(p, eps, false) != HashRequest(p, spelled, false) {
		t.Fatalf("defaulted and spelled-out delta hash differently")
	}
}

// TestSketchBackendSelection: Submit echoes backend "sketch" on
// epsilon requests and stays silent on the exact path; Sigma labels
// which estimator answered; the shared sketch index cache is built
// once and then hit.
func TestSketchBackendSelection(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	p := sampleProblem(t, 80, 3)
	ctx := context.Background()

	plain, _, err := s.Submit(quickReq(p))
	if err != nil {
		t.Fatalf("submit mc: %v", err)
	}
	if _, err := plain.Wait(ctx); err != nil {
		t.Fatalf("mc solve: %v", err)
	}
	if b := plain.Snapshot().Backend; b != "" {
		t.Fatalf("MC job echoes backend %q, want empty (unchanged pre-sketch bytes)", b)
	}

	r := quickReq(p)
	// ε = 0.05 → θ ≈ 600 RR samples; coarser sketches can
	// legitimately score every candidate zero on this tiny sample
	r.Options.Epsilon = 0.05
	r.Options.Delta = 0.1
	j, _, err := s.Submit(r)
	if err != nil {
		t.Fatalf("submit sketch: %v", err)
	}
	sol, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("sketch solve: %v", err)
	}
	if sol == nil || len(sol.Seeds) == 0 {
		t.Fatal("sketch solve returned no seeds")
	}
	if b := j.Snapshot().Backend; b != BackendSketch {
		t.Fatalf("sketch job echoes backend %q, want %q", b, BackendSketch)
	}
	if j.Key() == plain.Key() {
		t.Fatal("sketch and MC solves share a cache key")
	}

	seeds := []diffusion.Seed{{User: 0, Item: 0, T: 1}}
	_, name, err := s.Sigma(ctx, p, seeds, SigmaOptions{MC: 8, Seed: 1, Epsilon: 0.05, Delta: 0.1})
	if err != nil {
		t.Fatalf("sketch sigma: %v", err)
	}
	if name != BackendSketch {
		t.Fatalf("sigma backend %q, want %q", name, BackendSketch)
	}
	_, name, err = s.Sigma(ctx, p, seeds, SigmaOptions{MC: 8, Seed: 1})
	if err != nil {
		t.Fatalf("mc sigma: %v", err)
	}
	if name != BackendMC {
		t.Fatalf("sigma backend %q, want %q", name, BackendMC)
	}

	// Sigma shares the (ε, δ) gate with Submit.
	var inputErr *core.InputError
	if _, _, err := s.Sigma(ctx, p, seeds, SigmaOptions{MC: 8, Seed: 1, Epsilon: -1}); !errors.As(err, &inputErr) || inputErr.Field != "Epsilon" {
		t.Fatalf("negative epsilon: want InputError{Epsilon}, got %v", err)
	}
	if _, _, err := s.Sigma(ctx, p, seeds, SigmaOptions{MC: 8, Seed: 1, Delta: 0.5}); !errors.As(err, &inputErr) || inputErr.Field != "Delta" {
		t.Fatalf("delta without epsilon: want InputError{Delta}, got %v", err)
	}

	m := s.Metrics()
	if m.Sketch.Requests < 2 {
		t.Fatalf("sketch_requests = %d, want ≥ 2 (solve + sigma)", m.Sketch.Requests)
	}
	if m.Sketch.Builds != 1 {
		t.Fatalf("sketch_builds = %d, want 1 (index shared across solve and sigma)", m.Sketch.Builds)
	}
	if m.Sketch.CacheHits < 1 {
		t.Fatalf("sketch_cache_hits = %d, want ≥ 1", m.Sketch.CacheHits)
	}
}

package service

import (
	"sync"

	"imdpp/internal/core"
	"imdpp/internal/obs"
)

// PhaseTiming is one solver phase's share of a job's wall time, the
// per-phase breakdown surfaced on GET /v1/jobs/{id}. Boundaries come
// from ProgressEvent.ElapsedNS — the solver's own monotonic clock —
// so the attribution survives wall-clock jumps and needs no extra
// solver instrumentation beyond the progress stream.
type PhaseTiming struct {
	Phase   string  `json:"phase"`
	Rounds  int     `json:"rounds"`
	Seconds float64 `json:"seconds"`
}

// phaseTracker folds a solve's progress stream into per-phase
// timings, and — when a trace is live — mirrors each phase as a child
// span under the job's root. It observes only; the solver never sees
// it.
type phaseTracker struct {
	parent *obs.Span // job root; nil when untraced

	mu      sync.Mutex
	phases  []PhaseTiming
	cur     string
	curSpan *obs.Span
	startNS int64 // elapsed_ns at the current phase's boundary
	lastNS  int64 // elapsed_ns of the latest event
	rounds  int
}

// observe ingests one progress event; safe for the solver goroutine.
func (pt *phaseTracker) observe(ev core.ProgressEvent) {
	pt.mu.Lock()
	if ev.Phase != pt.cur {
		pt.closeLocked()
		pt.cur = ev.Phase
		pt.startNS = pt.lastNS
		pt.rounds = 0
		pt.curSpan = pt.parent.StartChild("phase:" + ev.Phase)
	}
	pt.rounds++
	pt.lastNS = ev.ElapsedNS
	pt.mu.Unlock()
}

// closeLocked flushes the current phase; pt.mu must be held.
func (pt *phaseTracker) closeLocked() {
	if pt.cur == "" {
		return
	}
	pt.phases = append(pt.phases, PhaseTiming{
		Phase:   pt.cur,
		Rounds:  pt.rounds,
		Seconds: float64(pt.lastNS-pt.startNS) / 1e9,
	})
	pt.curSpan.SetAttrInt("rounds", int64(pt.rounds))
	pt.curSpan.End()
	pt.curSpan = nil
	pt.cur = ""
}

// finish flushes the in-flight phase and returns the breakdown.
func (pt *phaseTracker) finish() []PhaseTiming {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	pt.closeLocked()
	return pt.phases
}

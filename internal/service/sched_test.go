package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"imdpp/internal/core"
)

// schedFor builds a bare scheduler with a deterministic ring: tenants
// enter the ring in first-admission order, so drain sequences are
// exactly reproducible (newScheduler's up-front materialisation walks
// a map, whose order tests must not depend on).
func schedFor(workers, depth int, quotas map[string]TenantQuota) *scheduler {
	s := newScheduler(Config{Workers: workers, QueueDepth: depth}.withDefaults())
	s.quotas = quotas
	return s
}

func schedJob(tenant string, priority int) *Job {
	return &Job{tenant: tenant, priority: priority, done: make(chan struct{})}
}

// TestSchedulerDRRFairness: with weights 2:1, every full cycle drains
// two of tenant a's jobs per one of b's, and neither tenant starves.
func TestSchedulerDRRFairness(t *testing.T) {
	s := schedFor(8, 64, map[string]TenantQuota{
		"a": {Weight: 2},
		"b": {Weight: 1},
	})
	for i := 0; i < 4; i++ {
		if err := s.admit(schedJob("a", 0)); err != nil {
			t.Fatalf("admit a%d: %v", i, err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := s.admit(schedJob("b", 0)); err != nil {
			t.Fatalf("admit b%d: %v", i, err)
		}
	}
	var order []string
	for i := 0; i < 8; i++ {
		j, ok := s.next()
		if !ok {
			t.Fatalf("next %d: scheduler closed early", i)
		}
		order = append(order, j.tenant)
		s.release(j.tenant, 0, true)
	}
	count := func(upto int, tenant string) int {
		n := 0
		for _, tn := range order[:upto] {
			if tn == tenant {
				n++
			}
		}
		return n
	}
	// both tenants appear in the first DRR cycle (no starvation), in
	// the 2:1 weight ratio; by six dequeues the ratio holds exactly
	if count(3, "a") != 2 || count(3, "b") != 1 {
		t.Fatalf("first cycle %v, want two a's and one b", order[:3])
	}
	if count(6, "a") != 4 || count(6, "b") != 2 {
		t.Fatalf("first two cycles %v, want 4 a's and 2 b's", order[:6])
	}
	if count(8, "a") != 4 || count(8, "b") != 4 {
		t.Fatalf("full drain %v, want all eight jobs", order)
	}
}

// TestSchedulerPriorityOrder: within one tenant, higher priority
// dispatches first and equal priorities stay FIFO.
func TestSchedulerPriorityOrder(t *testing.T) {
	s := schedFor(1, 16, nil)
	jobs := []*Job{
		schedJob("", 0), // j0
		schedJob("", 0), // j1
		schedJob("", 5), // j2
		schedJob("", 1), // j3
		schedJob("", 5), // j4: same priority as j2, admitted later
	}
	for i, j := range jobs {
		if err := s.admit(j); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	want := []*Job{jobs[2], jobs[4], jobs[3], jobs[0], jobs[1]}
	for i, w := range want {
		j, ok := s.next()
		if !ok {
			t.Fatalf("next %d: closed", i)
		}
		if j != w {
			t.Fatalf("dequeue %d: got job %d, want job %d", i, indexOf(jobs, j), indexOf(jobs, w))
		}
		s.release(j.tenant, 0, true)
	}
}

func indexOf(jobs []*Job, j *Job) int {
	for i, cand := range jobs {
		if cand == j {
			return i
		}
	}
	return -1
}

// TestSchedulerMaxInflight: a tenant at its inflight cap is skipped —
// its jobs stay queued, not shed — and becomes dispatchable again the
// moment a slot releases.
func TestSchedulerMaxInflight(t *testing.T) {
	s := schedFor(4, 16, map[string]TenantQuota{"a": {MaxInflight: 1}})
	a1, a2, b1 := schedJob("a", 0), schedJob("a", 0), schedJob("b", 0)
	for _, j := range []*Job{a1, a2, b1} {
		if err := s.admit(j); err != nil {
			t.Fatal(err)
		}
	}
	got := map[*Job]bool{}
	for i := 0; i < 2; i++ {
		j, ok := s.next()
		if !ok {
			t.Fatal("closed early")
		}
		got[j] = true
	}
	if !got[a1] || !got[b1] || got[a2] {
		t.Fatalf("first two dispatches: a1=%v b1=%v a2=%v; want a1 and b1 only", got[a1], got[b1], got[a2])
	}
	// a is at its cap: next() must block rather than hand out a2
	picked := make(chan *Job, 1)
	go func() {
		if j, ok := s.next(); ok {
			picked <- j
		}
	}()
	select {
	case j := <-picked:
		t.Fatalf("dispatched job for capped tenant %q", j.tenant)
	case <-time.After(50 * time.Millisecond):
	}
	s.release("a", 0, true)
	select {
	case j := <-picked:
		if j != a2 {
			t.Fatalf("post-release dispatch: wrong job")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("release did not unblock the capped tenant")
	}
}

// TestTenantQuotaShed: a tenant at its MaxQueue sheds with a typed
// quota_exceeded QuotaError — still errors.Is(…, ErrQueueFull) for
// pre-tenant callers — while other tenants keep admitting.
func TestTenantQuotaShed(t *testing.T) {
	s := schedFor(1, 16, map[string]TenantQuota{"small": {MaxQueue: 1}})
	if err := s.admit(schedJob("small", 0)); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	err := s.admit(schedJob("small", 0))
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("want QuotaError, got %v", err)
	}
	if qe.Code != ShedQuotaExceeded || qe.Tenant != "small" || qe.Limit != 1 {
		t.Fatalf("shed = %+v, want quota_exceeded for small with limit 1", qe)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatal("QuotaError must satisfy errors.Is(err, ErrQueueFull)")
	}
	if qe.RetryAfter < time.Second {
		t.Fatalf("RetryAfter %v below the 1s floor", qe.RetryAfter)
	}
	// the shed is per-tenant: an unrelated tenant still has room
	if err := s.admit(schedJob("other", 0)); err != nil {
		t.Fatalf("other tenant shed alongside: %v", err)
	}
	m := s.metrics()
	if m["small"].ShedQuota != 1 || m["small"].Queued != 1 {
		t.Fatalf("small row %+v, want shed_quota 1 queued 1", m["small"])
	}
}

// TestSchedulerQuotaReload: reload swaps the quota table atomically —
// queued jobs survive, a tenant whose MaxQueue shrank below its
// current depth keeps its backlog and sheds only new admissions, and
// newly configured tenants appear with their quotas.
func TestSchedulerQuotaReload(t *testing.T) {
	s := schedFor(1, 64, map[string]TenantQuota{"pro": {Weight: 4, MaxQueue: 8}})
	for i := 0; i < 4; i++ {
		if err := s.admit(schedJob("pro", 0)); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}

	// shrink pro's MaxQueue to 2 — below its current depth of 4 — and
	// configure a brand-new tenant in the same swap
	s.reload(map[string]TenantQuota{
		"pro": {Weight: 1, MaxQueue: 2},
		"new": {Weight: 2, MaxQueue: 5},
	}, TenantQuota{})

	m := s.metrics()
	if m["pro"].Queued != 4 {
		t.Fatalf("reload dropped queued jobs: %+v", m["pro"])
	}
	if m["pro"].MaxQueue != 2 || m["pro"].Weight != 1 {
		t.Fatalf("pro quota not swapped: %+v", m["pro"])
	}
	if m["new"].MaxQueue != 5 || m["new"].Weight != 2 {
		t.Fatalf("new tenant not materialised: %+v", m["new"])
	}

	// over the shrunk cap: new admissions shed, the backlog is intact
	err := s.admit(schedJob("pro", 0))
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Code != ShedQuotaExceeded || qe.Limit != 2 {
		t.Fatalf("admission over the shrunk cap: %v, want quota_exceeded limit 2", err)
	}
	if got := s.metrics()["pro"].Queued; got != 4 {
		t.Fatalf("shed admission disturbed the backlog: %d queued", got)
	}

	// drain under the new cap; the queued jobs all dispatch
	for i := 0; i < 4; i++ {
		j, ok := s.next()
		if !ok || j.tenant != "pro" {
			t.Fatalf("drain %d: ok=%v tenant=%q", i, ok, j.tenant)
		}
		s.release(j.tenant, 0, true)
	}
	// with the backlog drained below MaxQueue, admission works again
	if err := s.admit(schedJob("pro", 0)); err != nil {
		t.Fatalf("admission after draining under the new cap: %v", err)
	}
	// a tenant dropped from the config falls back to the new default
	s.reload(nil, TenantQuota{MaxQueue: 3})
	if got := s.metrics()["pro"].MaxQueue; got != 3 {
		t.Fatalf("deconfigured tenant kept its old quota: max_queue %d, want default 3", got)
	}
}

// TestGlobalQueueFullTyped: the service-wide bound sheds as queue_full
// regardless of tenant, and is checked before the tenant bound.
func TestGlobalQueueFullTyped(t *testing.T) {
	s := schedFor(1, 2, nil)
	for i := 0; i < 2; i++ {
		if err := s.admit(schedJob(fmt.Sprintf("t%d", i), 0)); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	err := s.admit(schedJob("t9", 0))
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Code != ShedQueueFull {
		t.Fatalf("want queue_full QuotaError, got %v", err)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatal("queue_full must satisfy errors.Is(err, ErrQueueFull)")
	}
}

// TestTenantAliasingBounded: unconfigured tenants beyond the
// maxTenants bound alias to the default queue, so adversarial tenant
// names cannot grow the scheduler without bound.
func TestTenantAliasingBounded(t *testing.T) {
	s := schedFor(1, 1<<20, nil)
	for i := 0; i < maxTenants+16; i++ {
		j := schedJob(fmt.Sprintf("mallory-%d", i), 0)
		if err := s.admit(j); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		if i >= maxTenants && j.tenant != DefaultTenant {
			t.Fatalf("tenant %d not aliased to default: %q", i, j.tenant)
		}
	}
	if n := len(s.metrics()); n > maxTenants+1 {
		t.Fatalf("%d tenant rows, want at most %d", n, maxTenants+1)
	}
}

func TestParseTenantQuotas(t *testing.T) {
	cases := []struct {
		spec    string
		want    map[string]TenantQuota
		wantDef TenantQuota
		wantErr bool
	}{
		{spec: "", want: map[string]TenantQuota{}},
		{
			spec: "pro:4:32:4,free:1:8:1",
			want: map[string]TenantQuota{
				"pro":  {Weight: 4, MaxQueue: 32, MaxInflight: 4},
				"free": {Weight: 1, MaxQueue: 8, MaxInflight: 1},
			},
		},
		{
			spec:    "pro:2,default:1:4",
			want:    map[string]TenantQuota{"pro": {Weight: 2}},
			wantDef: TenantQuota{Weight: 1, MaxQueue: 4},
		},
		{spec: "pro:2::3", want: map[string]TenantQuota{"pro": {Weight: 2, MaxInflight: 3}}},
		{spec: "pro", wantErr: true},
		{spec: ":2", wantErr: true},
		{spec: "pro:x", wantErr: true},
		{spec: "pro:1:2:3:4", wantErr: true},
		{spec: "pro:1:-2", wantErr: true},
	}
	for _, c := range cases {
		got, def, err := ParseTenantQuotas(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseTenantQuotas(%q): want error, got %v", c.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTenantQuotas(%q): %v", c.spec, err)
			continue
		}
		if def != c.wantDef {
			t.Errorf("ParseTenantQuotas(%q) default = %+v, want %+v", c.spec, def, c.wantDef)
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseTenantQuotas(%q) = %+v, want %+v", c.spec, got, c.want)
			continue
		}
		for name, q := range c.want {
			if got[name] != q {
				t.Errorf("ParseTenantQuotas(%q)[%s] = %+v, want %+v", c.spec, name, got[name], q)
			}
		}
	}
}

// TestGoldenSchedulingBitIdentity is the §3 proof for the scheduler:
// the same request set solved FIFO on one worker and interleaved
// across weighted tenants with priorities on several workers returns
// Float64bits-identical solutions. Scheduling reorders work; it never
// touches a result bit.
func TestGoldenSchedulingBitIdentity(t *testing.T) {
	p := sampleProblem(t, 80, 3)
	const n = 4
	reqOf := func(i int) Request {
		return Request{Problem: p, Options: core.Options{
			MC: 4, MCSI: 2, Seed: uint64(i + 1), CandidateCap: 16,
		}}
	}

	// FIFO baseline: single worker, default tenant, strictly sequential
	fifo := New(Config{Workers: 1, CacheSize: -1})
	base := make([]*core.Solution, n)
	for i := 0; i < n; i++ {
		j, _, err := fifo.Submit(reqOf(i))
		if err != nil {
			t.Fatalf("fifo submit %d: %v", i, err)
		}
		sol, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("fifo job %d: %v", i, err)
		}
		base[i] = sol
	}
	fifo.Close()

	// interleaved: two workers, weighted tenants, mixed priorities,
	// all submitted up front so the DRR scan genuinely reorders them
	fair := New(Config{Workers: 2, CacheSize: -1, Tenants: map[string]TenantQuota{
		"gold":   {Weight: 3},
		"bronze": {Weight: 1, MaxInflight: 1},
	}})
	defer fair.Close()
	jobs := make([]*Job, n)
	for i := 0; i < n; i++ {
		r := reqOf(i)
		if i%2 == 0 {
			r.Tenant = "gold"
		} else {
			r.Tenant = "bronze"
		}
		r.Priority = (n - i) % 3
		j, _, err := fair.Submit(r)
		if err != nil {
			t.Fatalf("fair submit %d: %v", i, err)
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		sol, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("fair job %d: %v", i, err)
		}
		if math.Float64bits(sol.Sigma) != math.Float64bits(base[i].Sigma) {
			t.Errorf("job %d: sigma %x under fair scheduling, %x FIFO", i,
				math.Float64bits(sol.Sigma), math.Float64bits(base[i].Sigma))
		}
		if math.Float64bits(sol.Cost) != math.Float64bits(base[i].Cost) {
			t.Errorf("job %d: cost differs: %v vs %v", i, sol.Cost, base[i].Cost)
		}
		if len(sol.Seeds) != len(base[i].Seeds) {
			t.Errorf("job %d: %d seeds under fair scheduling, %d FIFO", i, len(sol.Seeds), len(base[i].Seeds))
			continue
		}
		for k := range sol.Seeds {
			if sol.Seeds[k] != base[i].Seeds[k] {
				t.Errorf("job %d seed %d differs: %+v vs %+v", i, k, sol.Seeds[k], base[i].Seeds[k])
			}
		}
	}
}

// subscribe drains a job's event log the way the daemon's SSE handler
// does — Wake before EventsSince, loop until terminal — and reports
// the terminal events observed (must be exactly one).
func subscribe(j *Job, timeout time.Duration) (terminals []Event, ok bool) {
	deadline := time.After(timeout)
	last := 0
	for {
		wake := j.Wake()
		evs, terminal := j.EventsSince(last)
		for _, ev := range evs {
			last = ev.Seq
			if ev.Type != "progress" {
				terminals = append(terminals, ev)
			}
		}
		if terminal {
			return terminals, true
		}
		select {
		case <-wake:
		case <-deadline:
			return terminals, false
		}
	}
}

// TestRetireDeliversTerminalToSubscribers pins the retirement ordering
// guarantee (DESIGN.md §12): a subscriber attached to a job that gets
// evicted from the retention window still observes the terminal event,
// exactly once — finish publishes it before any retireJob caller can
// evict the id.
func TestRetireDeliversTerminalToSubscribers(t *testing.T) {
	s := New(Config{Workers: 1, JobRetention: 1, CacheSize: -1})
	defer s.Close()
	p := sampleProblem(t, 80, 3)

	r1 := quickReq(p)
	r1.Options.Seed = 1
	j1, _, err := s.Submit(r1)
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	got := make(chan []Event, 1)
	go func() {
		terminals, ok := subscribe(j1, 30*time.Second)
		if !ok {
			terminals = nil
		}
		got <- terminals
	}()
	if _, err := j1.Wait(context.Background()); err != nil {
		t.Fatalf("job 1: %v", err)
	}
	// push j1 out of the retention window (retention 1)
	r2 := quickReq(p)
	r2.Options.Seed = 2
	j2, _, err := s.Submit(r2)
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if _, err := j2.Wait(context.Background()); err != nil {
		t.Fatalf("job 2: %v", err)
	}
	if _, ok := s.Job(j1.ID()); ok {
		t.Fatal("job 1 should have been evicted from the retention window")
	}
	terminals := <-got
	if len(terminals) != 1 {
		t.Fatalf("subscriber saw %d terminal events, want exactly 1", len(terminals))
	}
	term := terminals[0]
	if term.Type != string(StatusDone) || term.Job == nil || term.Job.Solution == nil {
		t.Fatalf("terminal event %+v, want done with the full snapshot", term)
	}
	// the evicted job's log still answers resumes: the terminal event
	// is never evicted from the Job itself
	evs, terminal := j1.EventsSince(0)
	if !terminal || len(evs) == 0 || evs[len(evs)-1].Type != string(StatusDone) {
		t.Fatalf("post-eviction EventsSince = (%d events, terminal=%v)", len(evs), terminal)
	}
}

// TestSchedulerStressConcurrent is the race-tier scheduler stress:
// concurrent submitters across weighted tenants with mixed priorities
// and mid-flight cancellations, SSE-style subscribers on every job,
// then an exact-accounting audit — every admission is matched by a
// terminal outcome, no queue slot or inflight slot leaks, and the
// worker pool and subscribers exit cleanly on Close.
func TestSchedulerStressConcurrent(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New(Config{Workers: 3, QueueDepth: 64, CacheSize: -1, Tenants: map[string]TenantQuota{
		"t0": {Weight: 3},
		"t1": {Weight: 1, MaxQueue: 32},
		"t2": {Weight: 2, MaxInflight: 2},
	}})
	p := sampleProblem(t, 60, 2)

	const tenants, per = 3, 6
	var (
		mu       sync.Mutex
		accepted = map[string][]*Job{}
		shed     atomic.Uint64
	)
	var wg sync.WaitGroup
	for g := 0; g < tenants; g++ {
		for i := 0; i < per; i++ {
			wg.Add(1)
			go func(g, i int) {
				defer wg.Done()
				tenant := fmt.Sprintf("t%d", g)
				j, _, err := s.Submit(Request{
					Problem: p,
					Options: core.Options{
						MC: 2, MCSI: 2, CandidateCap: 8,
						// unique seeds: no coalescing, every submission is
						// its own unit of accounting
						Seed: uint64(g*per + i + 1),
					},
					Tenant:   tenant,
					Priority: i % 3,
				})
				if err != nil {
					var qe *QuotaError
					if !errors.As(err, &qe) {
						t.Errorf("untyped submit error: %v", err)
					}
					shed.Add(1)
					return
				}
				mu.Lock()
				accepted[tenant] = append(accepted[tenant], j)
				mu.Unlock()
				if i%4 == 0 {
					j.Cancel() // races the dispatch on purpose
				}
			}(g, i)
		}
	}
	wg.Wait()

	// one SSE-style subscriber per job; every one must observe exactly
	// one terminal event
	var subs sync.WaitGroup
	for _, jobs := range accepted {
		for _, j := range jobs {
			subs.Add(1)
			go func(j *Job) {
				defer subs.Done()
				terminals, ok := subscribe(j, 60*time.Second)
				if !ok || len(terminals) != 1 {
					t.Errorf("job %s: subscriber saw %d terminals (ok=%v), want 1", j.ID(), len(terminals), ok)
				}
			}(j)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, jobs := range accepted {
		for _, j := range jobs {
			_, _ = j.Wait(ctx) // cancelled jobs surface context.Canceled: fine
			if ctx.Err() != nil {
				t.Fatal("jobs did not settle: possible starvation")
			}
		}
	}
	subs.Wait()

	m := s.Metrics()
	var admitted uint64
	for name, row := range m.Tenants {
		if row.Queued != 0 || row.Inflight != 0 {
			t.Errorf("tenant %s: queued=%d inflight=%d after settle, want 0/0", name, row.Queued, row.Inflight)
		}
		admitted += row.Admitted
		mu.Lock()
		acc := uint64(len(accepted[name]))
		mu.Unlock()
		if row.Admitted != acc {
			t.Errorf("tenant %s: admitted %d, accepted submissions %d", name, row.Admitted, acc)
		}
	}
	var shedRows uint64
	for _, row := range m.Tenants {
		shedRows += row.ShedQuota + row.ShedQueueFull
	}
	if admitted+shedRows != tenants*per {
		t.Errorf("admitted %d + shed %d != %d submissions", admitted, shedRows, tenants*per)
	}
	if shedRows != shed.Load() {
		t.Errorf("shed rows %d != shed errors returned %d", shedRows, shed.Load())
	}

	s.Close()
	checkNoGoroutineLeak(t, baseline)
}

// TestCloseWithSubscribersAttached: Close settles every queued job as
// cancelled and publishes its terminal event, so SSE subscribers
// attached at close time unblock instead of leaking.
func TestCloseWithSubscribersAttached(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New(Config{Workers: 1, QueueDepth: 16, CacheSize: -1})
	p := sampleProblem(t, 80, 3)

	var jobs []*Job
	for seed := uint64(1); seed <= 4; seed++ {
		r := slowReq(p)
		r.Options.Seed = seed
		j, _, err := s.Submit(r)
		if err != nil {
			t.Fatalf("submit %d: %v", seed, err)
		}
		jobs = append(jobs, j)
	}
	var subs sync.WaitGroup
	for _, j := range jobs {
		subs.Add(1)
		go func(j *Job) {
			defer subs.Done()
			terminals, ok := subscribe(j, 30*time.Second)
			if !ok || len(terminals) != 1 {
				t.Errorf("job %s: %d terminals (ok=%v), want exactly 1 on close", j.ID(), len(terminals), ok)
			}
		}(j)
	}
	s.Close()
	subs.Wait()
	checkNoGoroutineLeak(t, baseline)
}

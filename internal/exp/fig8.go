package exp

import "fmt"

// fig8Algos is the algorithm lineup of Fig. 8 (small datasets with the
// brute-force optimum).
var fig8Algos = []string{AlgoOPT, AlgoDysim, AlgoBGRD, AlgoHAG, AlgoPS, AlgoDRHGA}

// Fig8a reproduces Fig. 8(a): σ vs budget b ∈ {50,75,100,125} with
// T = 2 on the 100-user Amazon sample, comparing all approaches with
// OPT. Expected shape: Dysim closest to OPT, all above the baselines.
func Fig8a(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	return fig8(cfg, "Fig8a", "sigma vs budget (T=2, Amazon-100)",
		"b", []float64{50, 75, 100, 125}, func(b float64) (float64, int) { return b, 2 })
}

// Fig8b reproduces Fig. 8(b): σ vs number of promotions T ∈ {1,2,3}
// with b = 100 on the same sample.
func Fig8b(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	return fig8(cfg, "Fig8b", "sigma vs promotions (b=100, Amazon-100)",
		"T", []float64{1, 2, 3}, func(t float64) (float64, int) { return 100, int(t) })
}

func fig8(cfg Config, id, title, xlabel string, xs []float64, point func(x float64) (budget float64, T int)) (*Figure, error) {
	d, err := datasetAmazonSample()
	if err != nil {
		return nil, err
	}
	// All algorithms scan the same bounded universe OPT enumerates, so
	// OPT is the true optimum of the shared search space.
	cfg.CandidateCap = 14
	fig := &Figure{ID: id, Title: title, XLabel: xlabel, YLabel: "sigma"}
	for _, algo := range fig8Algos {
		fig.Series = append(fig.Series, Series{Name: algo})
	}
	for _, x := range xs {
		b, T := point(x)
		p := d.Clone(b, T)
		eval := cfg.evaluator(p)
		for i, algo := range fig8Algos {
			run, err := cfg.runAlgo(algo, p, eval)
			if err != nil {
				return nil, fmt.Errorf("%s at %s=%v: %w", id, xlabel, x, err)
			}
			fig.Series[i].X = append(fig.Series[i].X, x)
			fig.Series[i].Y = append(fig.Series[i].Y, run.Sigma)
		}
	}
	renderFigure(cfg.Out, fig)
	return fig, nil
}

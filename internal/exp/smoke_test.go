package exp

import (
	"os"
	"testing"
)

func TestSmokeFig8a(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := Config{EvalMC: 32, SolverMC: 16, SolverMCSI: 8, CandidateCap: 64, Out: os.Stderr}
	fig, err := Fig8a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = fig
}

func TestSmokeCaseStudies(t *testing.T) {
	cs, err := CaseStudies(Config{Out: os.Stderr})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%d case studies", len(cs))
}

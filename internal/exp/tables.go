package exp

import (
	"fmt"
	"io"

	"imdpp/internal/dataset"
)

// TableII prints the dataset-statistics table (Table II shape at our
// scale) and returns the rows.
func TableII(cfg Config) ([]dataset.Stats, error) {
	cfg = cfg.withDefaults()
	names := []string{"Douban", "Gowalla", "Yelp", "Amazon"}
	var rows []dataset.Stats
	for _, nm := range names {
		d, err := datasetByName(nm, cfg.Scale)
		if err != nil {
			return nil, err
		}
		rows = append(rows, d.Stats())
	}
	renderTableII(cfg.Out, rows)
	return rows, nil
}

func renderTableII(w io.Writer, rows []dataset.Stats) {
	fmt.Fprintf(w, "\n== Table II: dataset statistics ==\n")
	fmt.Fprintf(w, "%-22s", "Dataset")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s", r.Name)
	}
	fmt.Fprintln(w)
	row := func(label string, f func(dataset.Stats) string) {
		fmt.Fprintf(w, "%-22s", label)
		for _, r := range rows {
			fmt.Fprintf(w, "%12s", f(r))
		}
		fmt.Fprintln(w)
	}
	row("# of node types", func(r dataset.Stats) string { return fmt.Sprint(r.NodeTypes) })
	row("# of nodes", func(r dataset.Stats) string { return fmt.Sprint(r.Nodes) })
	row("# of users", func(r dataset.Stats) string { return fmt.Sprint(r.Users) })
	row("# of items", func(r dataset.Stats) string { return fmt.Sprint(r.Items) })
	row("# of edge types", func(r dataset.Stats) string { return fmt.Sprint(r.EdgeTypes) })
	row("# of edges", func(r dataset.Stats) string { return fmt.Sprint(r.Edges) })
	row("# of friendships", func(r dataset.Stats) string { return fmt.Sprint(r.Friendships) })
	row("Directed friendship?", func(r dataset.Stats) string {
		if r.Directed {
			return "Yes"
		}
		return "No"
	})
	row("Avg. influence", func(r dataset.Stats) string { return fmt.Sprintf("%.3f", r.AvgInfluence) })
	row("Avg. importance", func(r dataset.Stats) string { return fmt.Sprintf("%.2f", r.AvgImportance) })
}

// TableIII prints the class-statistics table (Table III, exact sizes)
// and returns the verified rows.
func TableIII(cfg Config) ([]dataset.Stats, error) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(cfg.Out, "\n== Table III: class statistics ==\n")
	fmt.Fprintf(cfg.Out, "%-10s %8s %8s\n", "Class", "users", "edges")
	var rows []dataset.Stats
	for _, spec := range dataset.ClassSpecs() {
		d, err := cached("class-"+spec.ID, func() (*dataset.Dataset, error) {
			return dataset.BuildClass(spec, cfg.Seed)
		})
		if err != nil {
			return nil, err
		}
		st := d.Stats()
		rows = append(rows, st)
		fmt.Fprintf(cfg.Out, "%-10s %8d %8d\n", spec.ID, st.Users, st.Friendships)
	}
	return rows, nil
}

package exp

import (
	"fmt"

	"imdpp/internal/core"
)

// ablation variants of Fig. 10.
var ablationVariants = []struct {
	name string
	mod  func(*core.Options)
}{
	{"Dysim", nil},
	{"w/o TM", func(o *core.Options) { o.DisableTargetMarkets = true }},
	{"w/o IP", func(o *core.Options) { o.DisableItemPriority = true }},
}

// Fig10VsBudget reproduces Fig. 10(a)/(c): Dysim vs its ablations
// across budgets with T = 20. Expected shape: full Dysim on top.
func Fig10VsBudget(cfg Config, dsName string) (*Figure, error) {
	cfg = cfg.withDefaults()
	return ablationFig(cfg, dsName, "Fig10-b-"+dsName,
		"ablation vs budget (T=20, "+dsName+")", "b",
		[]float64{250, 500, 750, 1000}, func(x float64) (float64, int) { return x, 20 })
}

// Fig10VsT reproduces Fig. 10(b)/(d): ablations across T with b=1000.
func Fig10VsT(cfg Config, dsName string) (*Figure, error) {
	cfg = cfg.withDefaults()
	return ablationFig(cfg, dsName, "Fig10-T-"+dsName,
		"ablation vs T (b=1000, "+dsName+")", "T",
		[]float64{5, 10, 20, 40}, func(x float64) (float64, int) { return 1000, int(x) })
}

func ablationFig(cfg Config, dsName, id, title, xlabel string, xs []float64, point func(x float64) (float64, int)) (*Figure, error) {
	d, err := datasetByName(dsName, cfg.Scale)
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: id, Title: title, XLabel: xlabel, YLabel: "sigma"}
	for _, v := range ablationVariants {
		fig.Series = append(fig.Series, Series{Name: v.name})
	}
	for _, x := range xs {
		b, T := point(x)
		p := d.Clone(b, T)
		eval := cfg.evaluator(p)
		for i, v := range ablationVariants {
			seeds, _, err := cfg.dysimWith(p, v.mod)
			if err != nil {
				return nil, fmt.Errorf("%s %s at %v: %w", id, v.name, x, err)
			}
			fig.Series[i].X = append(fig.Series[i].X, x)
			fig.Series[i].Y = append(fig.Series[i].Y, eval.Sigma(seeds))
		}
	}
	renderFigure(cfg.Out, fig)
	return fig, nil
}

// orderVariants of Fig. 11 (Sec. VI-D market orders).
var orderVariants = []struct {
	name  string
	order core.OrderMetric
}{
	{"AE", core.OrderAE},
	{"PF", core.OrderPF},
	{"SZ", core.OrderSZ},
	{"RMS", core.OrderRMS},
	{"RD", core.OrderRD},
}

// Fig11VsBudget reproduces Fig. 11(a)/(c): market-order metrics across
// budgets with T = 40. Expected: AE and PF on top, RD at the bottom.
func Fig11VsBudget(cfg Config, dsName string) (*Figure, error) {
	cfg = cfg.withDefaults()
	return orderFig(cfg, dsName, "Fig11-b-"+dsName,
		"market orders vs budget (T=40, "+dsName+")", "b",
		[]float64{250, 500, 750, 1000}, func(x float64) (float64, int) { return x, 40 })
}

// Fig11VsT reproduces Fig. 11(b)/(d): market orders across T, b=1000.
func Fig11VsT(cfg Config, dsName string) (*Figure, error) {
	cfg = cfg.withDefaults()
	return orderFig(cfg, dsName, "Fig11-T-"+dsName,
		"market orders vs T (b=1000, "+dsName+")", "T",
		[]float64{5, 10, 20, 40}, func(x float64) (float64, int) { return 1000, int(x) })
}

func orderFig(cfg Config, dsName, id, title, xlabel string, xs []float64, point func(x float64) (float64, int)) (*Figure, error) {
	d, err := datasetByName(dsName, cfg.Scale)
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: id, Title: title, XLabel: xlabel, YLabel: "sigma"}
	for _, v := range orderVariants {
		fig.Series = append(fig.Series, Series{Name: v.name})
	}
	for _, x := range xs {
		b, T := point(x)
		p := d.Clone(b, T)
		eval := cfg.evaluator(p)
		for i, v := range orderVariants {
			order := v.order
			seeds, _, err := cfg.dysimWith(p, func(o *core.Options) { o.Order = order })
			if err != nil {
				return nil, fmt.Errorf("%s %s at %v: %w", id, v.name, x, err)
			}
			fig.Series[i].X = append(fig.Series[i].X, x)
			fig.Series[i].Y = append(fig.Series[i].Y, eval.Sigma(seeds))
		}
	}
	renderFigure(cfg.Out, fig)
	return fig, nil
}

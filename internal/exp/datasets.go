package exp

import (
	"sync"

	"imdpp/internal/dataset"
)

// Datasets are deterministic for a given scale, so the harness caches
// them: every figure touching Amazon at scale 1 shares one build.
var (
	dsMu    sync.Mutex
	dsCache = map[string]*dataset.Dataset{}
)

func cached(key string, build func() (*dataset.Dataset, error)) (*dataset.Dataset, error) {
	dsMu.Lock()
	defer dsMu.Unlock()
	if d, ok := dsCache[key]; ok {
		return d, nil
	}
	d, err := build()
	if err != nil {
		return nil, err
	}
	dsCache[key] = d
	return d, nil
}

func datasetAmazonSample() (*dataset.Dataset, error) {
	return cached("amazon-100", dataset.AmazonSample)
}

func datasetByName(name string, s dataset.Scale) (*dataset.Dataset, error) {
	key := name + scaleKey(s)
	switch name {
	case "Yelp":
		return cached(key, func() (*dataset.Dataset, error) { return dataset.Yelp(s) })
	case "Amazon":
		return cached(key, func() (*dataset.Dataset, error) { return dataset.Amazon(s) })
	case "Douban":
		return cached(key, func() (*dataset.Dataset, error) { return dataset.Douban(s) })
	case "Gowalla":
		return cached(key, func() (*dataset.Dataset, error) { return dataset.Gowalla(s) })
	}
	return nil, errUnknownDataset(name)
}

type errUnknownDataset string

func (e errUnknownDataset) Error() string { return "exp: unknown dataset " + string(e) }

func scaleKey(s dataset.Scale) string {
	// two-decimal fixed key without fmt to keep this allocation-free
	v := int(float64(s)*100 + 0.5)
	return string([]byte{'@', byte('0' + v/100%10), byte('0' + v/10%10), byte('0' + v%10)})
}

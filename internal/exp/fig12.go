package exp

import (
	"fmt"

	"imdpp/internal/dataset"
)

// fig12Algos is the empirical-study lineup (Sec. VI-E: Dysim, BGRD,
// HAG, PS).
var fig12Algos = []string{AlgoDysim, AlgoBGRD, AlgoHAG, AlgoPS}

// Fig12 reproduces the course-promotion empirical study (Fig. 12):
// for each of the five classes (Table III sizes), run a campaign with
// b = 50 and T = 3 and count the students selecting elective courses.
// The recruited students are substituted by the simulator (DESIGN.md
// §2); expected shape: Dysim > BGRD > HAG > PS in every class.
func Fig12(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	fig := &Figure{ID: "Fig12", Title: "course selections per class (b=50, T=3)", XLabel: "class", YLabel: "selections"}
	for _, a := range fig12Algos {
		fig.Series = append(fig.Series, Series{Name: a})
	}
	for ci, spec := range dataset.ClassSpecs() {
		d, err := cached("class-"+spec.ID, func() (*dataset.Dataset, error) {
			return dataset.BuildClass(spec, cfg.Seed)
		})
		if err != nil {
			return nil, err
		}
		p := d.Clone(50, 3)
		eval := cfg.evaluator(p)
		x := float64(ci + 1)
		for i, algo := range fig12Algos {
			run, err := cfg.runAlgo(algo, p, eval)
			if err != nil {
				return nil, fmt.Errorf("Fig12 class %s: %w", spec.ID, err)
			}
			// course importance is uniformly 1, so σ *is* the expected
			// number of course selections
			fig.Series[i].X = append(fig.Series[i].X, x)
			fig.Series[i].Y = append(fig.Series[i].Y, run.Sigma)
		}
	}
	renderFigure(cfg.Out, fig)
	return fig, nil
}

package exp

import (
	"strings"
	"testing"
)

// quickCfg is a minimal configuration for harness tests.
func quickCfg() Config {
	return Config{
		Scale:        0.2,
		EvalMC:       16,
		SolverMC:     8,
		SolverMCSI:   4,
		CandidateCap: 48,
		Seed:         1,
	}
}

func TestFigureAt(t *testing.T) {
	f := &Figure{Series: []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
	}}
	if v, ok := f.At("a", 2); !ok || v != 20 {
		t.Fatalf("At = %v/%v", v, ok)
	}
	if _, ok := f.At("a", 3); ok {
		t.Fatal("missing x found")
	}
	if _, ok := f.At("b", 1); ok {
		t.Fatal("missing series found")
	}
}

func TestRenderFigure(t *testing.T) {
	f := &Figure{
		ID: "X", Title: "test", XLabel: "b",
		Series: []Series{
			{Name: "s1", X: []float64{2, 1}, Y: []float64{4, 3}},
			{Name: "s2", X: []float64{1}, Y: []float64{9}},
		},
	}
	var sb strings.Builder
	renderFigure(&sb, f)
	out := sb.String()
	for _, want := range []string{"X: test", "s1", "s2", "9.00", "4.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// x values sorted ascending: "1" row before "2" row
	if strings.Index(out, "3.00") > strings.Index(out, "4.00") {
		t.Fatalf("x rows unsorted:\n%s", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1 || c.EvalMC != 64 || c.SolverMC != 24 || c.SolverMCSI != 8 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.CandidateCap != 384 || c.Seed != 1 || c.Out == nil {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestDatasetCacheByName(t *testing.T) {
	a, err := datasetByName("Yelp", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := datasetByName("Yelp", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache returned different instances")
	}
	if _, err := datasetByName("Nope", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunAlgoUnknown(t *testing.T) {
	cfg := quickCfg().withDefaults()
	d, err := datasetByName("Yelp", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Clone(100, 2)
	if _, err := cfg.runAlgo("nope", p, cfg.evaluator(p)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestTableIIRows(t *testing.T) {
	rows, err := TableII(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	order := []string{"Douban", "Gowalla", "Yelp", "Amazon"}
	for i, r := range rows {
		if r.Name != order[i] {
			t.Fatalf("row %d = %s", i, r.Name)
		}
	}
}

func TestTableIIIRows(t *testing.T) {
	rows, err := TableIII(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Users != 33 {
		t.Fatalf("class A users %d", rows[0].Users)
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fig, err := Fig12(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("%d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != 5 {
			t.Fatalf("series %s has %d classes", s.Name, len(s.X))
		}
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("series %s has non-positive selections", s.Name)
			}
		}
	}
}

func TestFig13SubsetBuilder(t *testing.T) {
	d, err := datasetByName("Yelp", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		p, err := problemWithMetaSubset(d, k, 100, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := map[int]int{1: 1, 2: 2, 3: 3}[k]
		if got := p.PIN.NumMeta(); got != want {
			t.Fatalf("k=%d → %d meta-graphs", k, got)
		}
	}
}

func TestCaseStudiesHold(t *testing.T) {
	cs, err := CaseStudies(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Fatalf("found %d of 3 case studies", len(cs))
	}
	for _, c := range cs {
		if !c.Holds() {
			t.Fatalf("case study %d (%s) fails: %v → %v", c.ID, c.Name, c.Before, c.After)
		}
	}
}

func TestFig8bSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fig, err := Fig8b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// OPT must top or match every algorithm at every point (within MC
	// tolerance): allow 15% slack
	for _, s := range fig.Series {
		if s.Name == AlgoOPT {
			continue
		}
		for i, x := range s.X {
			opt, _ := fig.At(AlgoOPT, x)
			if s.Y[i] > opt*1.25+1 {
				t.Fatalf("%s at T=%v: %v far above OPT %v", s.Name, x, s.Y[i], opt)
			}
		}
	}
}

package exp

import (
	"fmt"
	"io"
	"strings"
	"time"

	"imdpp/internal/baselines"
	"imdpp/internal/core"
	"imdpp/internal/dataset"
	"imdpp/internal/diffusion"
)

// Config tunes the harness. Zero values fall back to quick defaults
// sized for a laptop run of the full suite.
type Config struct {
	// Scale multiplies dataset sizes (default 1.0).
	Scale dataset.Scale
	// EvalMC is the sample count of the shared final evaluator
	// (default 64).
	EvalMC int
	// SolverMC / SolverMCSI are the in-solver sample counts
	// (default 24 / 8).
	SolverMC   int
	SolverMCSI int
	// CandidateCap bounds candidate universes (default 384).
	CandidateCap int
	// MaxSeeds caps the baselines' seed counts (0 = budget-bound only).
	// The bench tier uses it to bound the CR-Greedy scheduling cost.
	MaxSeeds int
	// Seed is the master seed (default 1).
	Seed uint64
	// Out receives the rendered tables; nil discards them.
	Out io.Writer
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.EvalMC <= 0 {
		c.EvalMC = 64
	}
	if c.SolverMC <= 0 {
		c.SolverMC = 24
	}
	if c.SolverMCSI <= 0 {
		c.SolverMCSI = 8
	}
	if c.CandidateCap == 0 {
		c.CandidateCap = 384
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// Series is one line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is one reproduced plot.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// find returns the series with the given name, or nil.
func (f *Figure) find(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// At returns the Y value of series name at x (NaN-free; ok=false when
// missing). Test helpers use it to assert shapes.
func (f *Figure) At(name string, x float64) (float64, bool) {
	s := f.find(name)
	if s == nil {
		return 0, false
	}
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// AlgoRun is one algorithm's outcome at one parameter point.
type AlgoRun struct {
	Algo    string
	Sigma   float64
	Seeds   int
	Cost    float64
	Elapsed time.Duration
}

// Algo names used across figures.
const (
	AlgoOPT   = "OPT"
	AlgoDysim = "Dysim"
	AlgoBGRD  = "BGRD"
	AlgoHAG   = "HAG"
	AlgoPS    = "PS"
	AlgoDRHGA = "DRHGA"
)

// evaluator builds the shared final evaluator for a problem.
func (c Config) evaluator(p *diffusion.Problem) *diffusion.Estimator {
	return diffusion.NewEstimator(p, c.EvalMC, c.Seed+0xEEE)
}

// runAlgo solves the problem with the named algorithm and re-evaluates
// its seed group on the shared estimator.
func (c Config) runAlgo(algo string, p *diffusion.Problem, eval *diffusion.Estimator) (AlgoRun, error) {
	start := time.Now()
	var seeds []diffusion.Seed
	var err error
	switch algo {
	case AlgoDysim:
		var sol core.Solution
		sol, err = core.Solve(p, core.Options{
			MC: c.SolverMC, MCSI: c.SolverMCSI,
			CandidateCap: c.CandidateCap, Seed: c.Seed,
		})
		seeds = sol.Seeds
	case AlgoBGRD:
		var sol baselines.Solution
		sol, err = baselines.BGRD(p, c.baseOpts())
		seeds = sol.Seeds
	case AlgoHAG:
		var sol baselines.Solution
		sol, err = baselines.HAG(p, c.baseOpts())
		seeds = sol.Seeds
	case AlgoPS:
		var sol baselines.Solution
		sol, err = baselines.PS(p, c.baseOpts())
		seeds = sol.Seeds
	case AlgoDRHGA:
		var sol baselines.Solution
		sol, err = baselines.DRHGA(p, c.baseOpts())
		seeds = sol.Seeds
	case AlgoOPT:
		var sol baselines.Solution
		sol, err = baselines.OPT(p, baselines.OPTOptions{
			Options:      c.baseOpts(),
			MaxGroupSize: 6,
			UniverseCap:  14,
		})
		seeds = sol.Seeds
	default:
		err = fmt.Errorf("exp: unknown algorithm %q", algo)
	}
	if err != nil {
		return AlgoRun{}, fmt.Errorf("exp: %s: %w", algo, err)
	}
	elapsed := time.Since(start)
	sigma := eval.Sigma(seeds)
	return AlgoRun{
		Algo:    algo,
		Sigma:   sigma,
		Seeds:   len(seeds),
		Cost:    p.SeedCost(seeds),
		Elapsed: elapsed,
	}, nil
}

func (c Config) baseOpts() baselines.Options {
	return baselines.Options{MC: c.SolverMC, Seed: c.Seed, CandidateCap: c.CandidateCap, MaxSeeds: c.MaxSeeds}
}

// dysimWith runs Dysim with extra option tweaks (ablations, orders, θ).
func (c Config) dysimWith(p *diffusion.Problem, mod func(*core.Options)) ([]diffusion.Seed, time.Duration, error) {
	opt := core.Options{
		MC: c.SolverMC, MCSI: c.SolverMCSI,
		CandidateCap: c.CandidateCap, Seed: c.Seed,
	}
	if mod != nil {
		mod(&opt)
	}
	start := time.Now()
	sol, err := core.Solve(p, opt)
	return sol.Seeds, time.Since(start), err
}

// renderFigure pretty-prints a figure as an ASCII table:
// rows = x values, columns = series.
func renderFigure(w io.Writer, f *Figure) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", f.ID, f.Title)
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	var sorted []float64
	for x := range xs {
		sorted = append(sorted, x)
	}
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	fmt.Fprintf(w, "%-10s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%14s", s.Name)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 10+14*len(f.Series)))
	for _, x := range sorted {
		fmt.Fprintf(w, "%-10.4g", x)
		for i := range f.Series {
			if v, ok := f.At(f.Series[i].Name, x); ok {
				fmt.Fprintf(w, "%14.2f", v)
			} else {
				fmt.Fprintf(w, "%14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

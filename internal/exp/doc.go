// Package exp is the benchmark harness: one driver per table and
// figure of the paper's evaluation (Sec. VI). Each driver builds the
// workload, runs Dysim and the baselines, evaluates every returned
// seed group with one shared high-sample estimator (so algorithms are
// compared on identical footing), and emits the same rows/series the
// paper plots. DESIGN.md §4 maps figure ids to drivers;
// cmd/imdppbench is the CLI front-end.
package exp

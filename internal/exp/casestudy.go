package exp

import (
	"fmt"

	"imdpp/internal/diffusion"
	"imdpp/internal/rng"
)

// CaseStudy is one of the Sec. VI-F qualitative dynamics, shown as a
// before/after measurement of the relevant quantity.
type CaseStudy struct {
	ID          int
	Name        string
	Description string
	Before      float64
	After       float64
}

// Holds reports whether the dynamic moved in the direction the paper
// observes (After > Before).
func (c CaseStudy) Holds() bool { return c.After > c.Before }

// CaseStudies reproduces the three Amazon case studies of Sec. VI-F on
// the synthetic Amazon dataset:
//
//  1. adopting items that share a substitutable meta-graph raises the
//     perceived substitutable relevance between further items of that
//     kind (User #277's lenses: 0.70 → 0.93);
//  2. adopting an item raises the preference for its complements
//     (User #16900's Kindle → Kindle Unlimited: 0.32 → 0.58);
//  3. two friends adopting a common item raises the influence strength
//     between them (User #2236 → #186644: 0.39 → 0.47).
func CaseStudies(cfg Config) ([]CaseStudy, error) {
	cfg = cfg.withDefaults()
	// very small scales may lack the item-pair structure the scenarios
	// search for; the case studies are qualitative, so pin a floor
	scale := cfg.Scale
	if scale < 0.35 {
		scale = 0.35
	}
	d, err := datasetByName("Amazon", scale)
	if err != nil {
		return nil, err
	}
	p := d.Clone(300, 10)
	st := diffusion.NewState(p)
	st.Reset(rng.New(cfg.Seed))

	var out []CaseStudy

	// --- CS1: perception of the substitutable relationship ------------------
	if cs, ok := caseSubstitutablePerception(p, st); ok {
		out = append(out, cs)
	}
	// --- CS2: preference growth from complement adoption ---------------------
	st.Reset(rng.New(cfg.Seed + 1))
	if cs, ok := casePreferenceGrowth(p, st); ok {
		out = append(out, cs)
	}
	// --- CS3: influence learning from a common adoption ----------------------
	st.Reset(rng.New(cfg.Seed + 2))
	if cs, ok := caseInfluenceGrowth(p, st); ok {
		out = append(out, cs)
	}

	for _, cs := range out {
		status := "HOLDS"
		if !cs.Holds() {
			status = "FAILS"
		}
		fmt.Fprintf(cfg.Out, "CaseStudy %d (%s): before=%.3f after=%.3f [%s]\n  %s\n",
			cs.ID, cs.Name, cs.Before, cs.After, status, cs.Description)
	}
	return out, nil
}

// caseSubstitutablePerception finds a user and an item pair with both
// substitutable and other relevance, adopts two items that share the
// substitutable meta-graph, and measures the pair's rS before/after.
func caseSubstitutablePerception(p *diffusion.Problem, st *diffusion.State) (CaseStudy, bool) {
	model := p.PIN
	for x := 0; x < p.NumItems(); x++ {
		row := model.Row(x)
		// need x with ≥2 substitutable partners
		var subs []int
		for _, pr := range row {
			_, rs := model.Rel(model.InitWeights, x, int(pr.Y))
			if rs > 0 {
				subs = append(subs, int(pr.Y))
			}
		}
		if len(subs) < 3 {
			continue
		}
		u := 0
		before, _ := rsOf(st, u, subs[0], subs[1])
		// u adopts x and one substitutable partner: co-adoption the
		// substitutable meta-graph explains, so its weighting grows
		st.ForceAdopt(u, x)
		st.ForceAdopt(u, subs[2])
		after, _ := rsOf(st, u, subs[0], subs[1])
		if after > before {
			return CaseStudy{
				ID:   1,
				Name: "substitutable perception shift",
				Description: fmt.Sprintf("user %d adopted items %d,%d sharing a substitutable meta-graph; rS(%d,%d) rose",
					u, x, subs[2], subs[0], subs[1]),
				Before: before, After: after,
			}, true
		}
	}
	return CaseStudy{}, false
}

func rsOf(st *diffusion.State, u, x, y int) (float64, float64) {
	// rS under u's current weights
	// (Weights is a mutable view; read-only here)
	rc, rs := stModel(st).Rel(st.Weights(u), x, y)
	return rs, rc
}

// casePreferenceGrowth adopts a complement and measures the partner's
// preference before/after.
func casePreferenceGrowth(p *diffusion.Problem, st *diffusion.State) (CaseStudy, bool) {
	model := p.PIN
	for x := 0; x < p.NumItems(); x++ {
		for _, pr := range model.Row(x) {
			rc, rs := model.Rel(model.InitWeights, x, int(pr.Y))
			if rc > 0.2 && rc > rs {
				u := 1
				y := int(pr.Y)
				before := st.Pref(u, y)
				st.ForceAdopt(u, x)
				after := st.Pref(u, y)
				if after > before {
					return CaseStudy{
						ID:   2,
						Name: "preference growth from complement adoption",
						Description: fmt.Sprintf("user %d adopted item %d; preference for its complement %d rose",
							u, x, y),
						Before: before, After: after,
					}, true
				}
			}
		}
	}
	return CaseStudy{}, false
}

// caseInfluenceGrowth adopts a common item on both endpoints of an
// edge and measures Pact before/after.
func caseInfluenceGrowth(p *diffusion.Problem, st *diffusion.State) (CaseStudy, bool) {
	for u := 0; u < p.NumUsers(); u++ {
		arcs := p.G.Out(u)
		for i, to := range arcs.To {
			v := int(to)
			x := 0
			before := st.Act(u, v, arcs.W[i])
			st.ForceAdopt(u, x)
			st.ForceAdopt(v, x)
			after := st.Act(u, v, arcs.W[i])
			if after > before {
				return CaseStudy{
					ID:   3,
					Name: "influence learning from common adoption",
					Description: fmt.Sprintf("users %d and %d both adopted item %d; Pact(%d→%d) rose",
						u, v, x, u, v),
					Before: before, After: after,
				}, true
			}
		}
	}
	return CaseStudy{}, false
}

// stModel extracts the PIN model from the state's problem. Small
// helper so case-study code reads naturally.
func stModel(st *diffusion.State) interface {
	Rel(w []float64, x, y int) (float64, float64)
} {
	return stProblem(st).PIN
}

func stProblem(st *diffusion.State) *diffusion.Problem { return st.Problem() }

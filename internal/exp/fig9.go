package exp

import "fmt"

// fig9Algos is the large-dataset lineup (no OPT).
var fig9Algos = []string{AlgoDysim, AlgoBGRD, AlgoHAG, AlgoPS, AlgoDRHGA}

// fig9Budgets are the Fig. 9(a–d) budget sweep values.
var fig9Budgets = []float64{100, 200, 300, 400, 500}

// fig9Ts is the Fig. 9(e–g) promotion sweep (paper: up to 40,
// following the multi-round IM literature).
var fig9Ts = []float64{1, 5, 10, 20, 40}

// Fig9Influence reproduces Fig. 9(a)/(b)/(c): σ vs budget with T = 10
// on a large dataset. Per footnote 37, HAG is excluded on Douban
// (execution time). It also returns the per-point wall-clock series,
// which is Fig. 9(d) when the dataset is Amazon.
func Fig9Influence(cfg Config, dsName string) (sigmaFig, timeFig *Figure, err error) {
	cfg = cfg.withDefaults()
	algos := fig9Algos
	if dsName == "Douban" {
		algos = []string{AlgoDysim, AlgoBGRD, AlgoPS, AlgoDRHGA}
	}
	d, err := datasetByName(dsName, cfg.Scale)
	if err != nil {
		return nil, nil, err
	}
	sigmaFig = &Figure{ID: "Fig9-sigma-" + dsName, Title: "sigma vs budget (T=10, " + dsName + ")", XLabel: "b", YLabel: "sigma"}
	timeFig = &Figure{ID: "Fig9-time-" + dsName, Title: "time vs budget (T=10, " + dsName + ")", XLabel: "b", YLabel: "seconds"}
	for _, a := range algos {
		sigmaFig.Series = append(sigmaFig.Series, Series{Name: a})
		timeFig.Series = append(timeFig.Series, Series{Name: a})
	}
	for _, b := range fig9Budgets {
		p := d.Clone(b, 10)
		eval := cfg.evaluator(p)
		for i, algo := range algos {
			run, err := cfg.runAlgo(algo, p, eval)
			if err != nil {
				return nil, nil, fmt.Errorf("Fig9 %s b=%v: %w", dsName, b, err)
			}
			sigmaFig.Series[i].X = append(sigmaFig.Series[i].X, b)
			sigmaFig.Series[i].Y = append(sigmaFig.Series[i].Y, run.Sigma)
			timeFig.Series[i].X = append(timeFig.Series[i].X, b)
			timeFig.Series[i].Y = append(timeFig.Series[i].Y, run.Elapsed.Seconds())
		}
	}
	renderFigure(cfg.Out, sigmaFig)
	renderFigure(cfg.Out, timeFig)
	return sigmaFig, timeFig, nil
}

// Fig9VsT reproduces Fig. 9(e)/(f): σ vs T with b = 500, plus the
// wall-clock series (Fig. 9(g) when the dataset is Amazon).
func Fig9VsT(cfg Config, dsName string) (sigmaFig, timeFig *Figure, err error) {
	cfg = cfg.withDefaults()
	d, err := datasetByName(dsName, cfg.Scale)
	if err != nil {
		return nil, nil, err
	}
	sigmaFig = &Figure{ID: "Fig9-sigmaT-" + dsName, Title: "sigma vs T (b=500, " + dsName + ")", XLabel: "T", YLabel: "sigma"}
	timeFig = &Figure{ID: "Fig9-timeT-" + dsName, Title: "time vs T (b=500, " + dsName + ")", XLabel: "T", YLabel: "seconds"}
	for _, a := range fig9Algos {
		sigmaFig.Series = append(sigmaFig.Series, Series{Name: a})
		timeFig.Series = append(timeFig.Series, Series{Name: a})
	}
	for _, tf := range fig9Ts {
		p := d.Clone(500, int(tf))
		eval := cfg.evaluator(p)
		for i, algo := range fig9Algos {
			run, err := cfg.runAlgo(algo, p, eval)
			if err != nil {
				return nil, nil, fmt.Errorf("Fig9 %s T=%v: %w", dsName, tf, err)
			}
			sigmaFig.Series[i].X = append(sigmaFig.Series[i].X, tf)
			sigmaFig.Series[i].Y = append(sigmaFig.Series[i].Y, run.Sigma)
			timeFig.Series[i].X = append(timeFig.Series[i].X, tf)
			timeFig.Series[i].Y = append(timeFig.Series[i].Y, run.Elapsed.Seconds())
		}
	}
	renderFigure(cfg.Out, sigmaFig)
	renderFigure(cfg.Out, timeFig)
	return sigmaFig, timeFig, nil
}

// Fig9h reproduces Fig. 9(h): Dysim execution time across the four
// datasets at b = 500, T = 10, ordered by user count.
func Fig9h(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	fig := &Figure{ID: "Fig9h", Title: "Dysim time across datasets (b=500, T=10)", XLabel: "dataset#", YLabel: "seconds"}
	s := Series{Name: AlgoDysim}
	names := []string{"Yelp", "Gowalla", "Amazon", "Douban"} // ascending users
	for i, nm := range names {
		d, err := datasetByName(nm, cfg.Scale)
		if err != nil {
			return nil, err
		}
		p := d.Clone(500, 10)
		_, elapsed, err := cfg.dysimWith(p, nil)
		if err != nil {
			return nil, fmt.Errorf("Fig9h %s: %w", nm, err)
		}
		s.X = append(s.X, float64(i+1))
		s.Y = append(s.Y, elapsed.Seconds())
		fmt.Fprintf(cfg.Out, "Fig9h %-8s users=%-6d time=%.2fs\n", nm, p.NumUsers(), elapsed.Seconds())
	}
	fig.Series = []Series{s}
	return fig, nil
}

package exp

import (
	"fmt"

	"imdpp/internal/core"
	"imdpp/internal/dataset"
	"imdpp/internal/diffusion"
	"imdpp/internal/kg"
	"imdpp/internal/pin"
)

// Fig13 reproduces the meta-graph sensitivity test (Fig. 13): σ of
// Dysim with 1, 2 and 3 meta-graphs (b=100, T=3) on one dataset.
// With k = 1 only the strongest complementary meta-graph is active;
// k = 2 adds the substitutable meta-graph; k = 3 adds the second
// complementary one. Expected shape: σ grows with the number of
// meta-graphs (better-captured perception).
func Fig13(cfg Config, dsName string) (*Figure, error) {
	cfg = cfg.withDefaults()
	d, err := datasetByName(dsName, cfg.Scale)
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: "Fig13-" + dsName, Title: "sigma vs #meta-graphs (b=100, T=3, " + dsName + ")", XLabel: "#meta-graphs", YLabel: "sigma"}
	s := Series{Name: AlgoDysim}
	for k := 1; k <= 3; k++ {
		p, err := problemWithMetaSubset(d, k, 100, 3)
		if err != nil {
			return nil, fmt.Errorf("Fig13 %s k=%d: %w", dsName, k, err)
		}
		eval := cfg.evaluator(p)
		sol, err := core.Solve(p, core.Options{
			MC: cfg.SolverMC, MCSI: cfg.SolverMCSI,
			CandidateCap: cfg.CandidateCap, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("Fig13 %s k=%d: %w", dsName, k, err)
		}
		s.X = append(s.X, float64(k))
		s.Y = append(s.Y, eval.Sigma(sol.Seeds))
	}
	fig.Series = []Series{s}
	renderFigure(cfg.Out, fig)
	return fig, nil
}

// problemWithMetaSubset rebuilds the dataset's problem with the first
// k meta-graphs active: k=1 → {mC1}; k=2 → {mC1, mS1}; k≥3 → {mC1,
// mC2, mS1}.
func problemWithMetaSubset(d *dataset.Dataset, k int, budget float64, T int) (*diffusion.Problem, error) {
	var metaC, metaS []*kg.MetaGraph
	switch {
	case k <= 1:
		metaC = d.MetaC[:1]
	case k == 2:
		metaC = d.MetaC[:1]
		metaS = d.MetaS[:1]
	default:
		n := 2
		if n > len(d.MetaC) {
			n = len(d.MetaC)
		}
		metaC = d.MetaC[:n]
		metaS = d.MetaS[:1]
	}
	model, err := pin.NewModel(d.Problem.KG, metaC, metaS, nil)
	if err != nil {
		return nil, err
	}
	p := *d.Problem
	p.PIN = model
	p.Budget = budget
	p.T = T
	return &p, nil
}

// Fig14 reproduces the θ sensitivity test (Fig. 14): σ of Dysim as the
// common-user threshold for grouping target markets sweeps (b=1000,
// T=20). The paper observes an interior optimum: very small θ
// over-groups (short promotional durations), very large θ lets
// overlapping markets promote substitutable items to common users.
// θ values are scaled to our dataset sizes.
func Fig14(cfg Config, dsName string, thetas []int) (*Figure, error) {
	cfg = cfg.withDefaults()
	if len(thetas) == 0 {
		thetas = []int{1, 2, 4, 8, 16}
	}
	d, err := datasetByName(dsName, cfg.Scale)
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: "Fig14-" + dsName, Title: "sigma vs theta (b=1000, T=20, " + dsName + ")", XLabel: "theta", YLabel: "sigma"}
	s := Series{Name: AlgoDysim}
	for _, th := range thetas {
		p := d.Clone(1000, 20)
		eval := cfg.evaluator(p)
		theta := th
		seeds, _, err := cfg.dysimWith(p, func(o *core.Options) { o.Theta = theta })
		if err != nil {
			return nil, fmt.Errorf("Fig14 %s θ=%d: %w", dsName, th, err)
		}
		s.X = append(s.X, float64(th))
		s.Y = append(s.Y, eval.Sigma(seeds))
	}
	fig.Series = []Series{s}
	renderFigure(cfg.Out, fig)
	return fig, nil
}

package baselines

import (
	"sort"

	"imdpp/internal/cluster"
	"imdpp/internal/diffusion"
	"imdpp/internal/mioa"
)

// PS is the multi-grade product baseline [35]: it estimates each
// seed's influence in isolation from maximum-influence paths and
// applies a discounting strategy for users already covered by selected
// seeds ("PS requires much time to search for maximum influence paths
// to evaluate the influence of a user ... employs a discounting
// strategy to estimate a seed's influence under the impact of selected
// seeds", Sec. VI-B). It never simulates combinations, which is why it
// cannot exploit cross-promotion item impact. CR-Greedy assigns
// timings.
func PS(p *diffusion.Problem, opt Options) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	r := newRunner(p, opt)

	// Per-user MIP coverage probabilities (the expensive path search).
	type cov struct {
		spread float64
		prob   []float64
	}
	covOf := map[int]*cov{}
	userSet := map[int]bool{}
	universe := candidatePairs(p, r.opt.CandidateCap)
	for _, nm := range universe {
		userSet[nm.User] = true
	}
	for u := range userSet {
		prob := mioa.Probabilities(p.G, []int{u})
		s := 0.0
		for _, pr := range prob {
			if pr >= mioa.DefaultThreshold {
				s += pr
			}
		}
		covOf[u] = &cov{spread: s, prob: prob}
	}

	// residual coverage: discount factors per user, updated as seeds
	// are picked.
	residual := make([]float64, p.NumUsers())
	for i := range residual {
		residual[i] = 1
	}
	score := func(nm cluster.Nominee) float64 {
		c := covOf[nm.User]
		total := 0.0
		for v, pr := range c.prob {
			if pr >= mioa.DefaultThreshold {
				total += pr * residual[v] * p.BasePrefOf(v, nm.Item)
			}
		}
		return total * p.Importance[nm.Item]
	}

	var pairs []cluster.Nominee
	spent := 0.0
	taken := map[cluster.Nominee]bool{}
	for {
		best, bestIdx := 0.0, -1
		for i, nm := range universe {
			if taken[nm] {
				continue
			}
			c := p.CostOf(nm.User, nm.Item)
			if c > p.Budget-spent {
				continue
			}
			if s := score(nm) / (c + 1e-12); s > best {
				best, bestIdx = s, i
			}
		}
		if bestIdx < 0 || best <= 0 {
			break
		}
		nm := universe[bestIdx]
		taken[nm] = true
		pairs = append(pairs, nm)
		spent += p.CostOf(nm.User, nm.Item)
		// discount users the new seed already covers
		c := covOf[nm.User]
		for v, pr := range c.prob {
			if pr >= mioa.DefaultThreshold {
				residual[v] *= 1 - pr
			}
		}
		if r.opt.MaxSeeds > 0 && len(pairs) >= r.opt.MaxSeeds {
			break
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		if pairs[i].User != pairs[j].User {
			return pairs[i].User < pairs[j].User
		}
		return pairs[i].Item < pairs[j].Item
	})
	seeds := r.scheduleCRGreedy(pairs)
	return r.finish(seeds), nil
}

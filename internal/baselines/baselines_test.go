package baselines

import (
	"testing"

	"imdpp/internal/dataset"
	"imdpp/internal/diffusion"
)

func sampleProblem(t *testing.T, budget float64, T int) *diffusion.Problem {
	t.Helper()
	d, err := dataset.AmazonSample()
	if err != nil {
		t.Fatal(err)
	}
	return d.Clone(budget, T)
}

type namedBaseline struct {
	name string
	run  func(*diffusion.Problem, Options) (Solution, error)
}

func allBaselines() []namedBaseline {
	return []namedBaseline{
		{"BGRD", BGRD},
		{"HAG", HAG},
		{"PS", PS},
		{"DRHGA", DRHGA},
	}
}

func TestBaselinesRespectBudgetAndTimings(t *testing.T) {
	p := sampleProblem(t, 120, 3)
	for _, bl := range allBaselines() {
		sol, err := bl.run(p, Options{MC: 8, Seed: 3, CandidateCap: 48})
		if err != nil {
			t.Fatalf("%s: %v", bl.name, err)
		}
		if len(sol.Seeds) == 0 {
			t.Fatalf("%s selected nothing", bl.name)
		}
		if sol.Cost > p.Budget+1e-9 {
			t.Fatalf("%s cost %v over budget", bl.name, sol.Cost)
		}
		if err := p.ValidateSeeds(sol.Seeds); err != nil {
			t.Fatalf("%s: %v", bl.name, err)
		}
		if sol.Sigma <= 0 {
			t.Fatalf("%s sigma %v", bl.name, sol.Sigma)
		}
		for _, s := range sol.Seeds {
			if s.T < 1 || s.T > p.T {
				t.Fatalf("%s timing %d outside campaign", bl.name, s.T)
			}
		}
	}
}

func TestBaselinesDeterministic(t *testing.T) {
	p := sampleProblem(t, 100, 2)
	for _, bl := range allBaselines() {
		a, err := bl.run(p, Options{MC: 8, Seed: 5, CandidateCap: 32})
		if err != nil {
			t.Fatal(err)
		}
		b, err := bl.run(p, Options{MC: 8, Seed: 5, CandidateCap: 32})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Seeds) != len(b.Seeds) {
			t.Fatalf("%s nondeterministic seed count", bl.name)
		}
		for i := range a.Seeds {
			if a.Seeds[i] != b.Seeds[i] {
				t.Fatalf("%s nondeterministic seeds", bl.name)
			}
		}
	}
}

func TestMaxSeedsCap(t *testing.T) {
	p := sampleProblem(t, 500, 2)
	for _, bl := range allBaselines() {
		sol, err := bl.run(p, Options{MC: 8, Seed: 3, CandidateCap: 48, MaxSeeds: 2})
		if err != nil {
			t.Fatal(err)
		}
		// BGRD adds whole bundles, so allow a small overshoot there
		limit := 2
		if bl.name == "BGRD" {
			limit = 6
		}
		if len(sol.Seeds) > limit {
			t.Fatalf("%s ignored MaxSeeds: %d seeds", bl.name, len(sol.Seeds))
		}
	}
}

func TestBGRDBundlesUsers(t *testing.T) {
	p := sampleProblem(t, 300, 2)
	sol, err := BGRD(p, Options{MC: 8, Seed: 3, CandidateCap: 48})
	if err != nil {
		t.Fatal(err)
	}
	// the bundle baseline concentrates multiple items on few users
	users := map[int]int{}
	for _, s := range sol.Seeds {
		users[s.User]++
	}
	multi := 0
	for _, n := range users {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 && len(sol.Seeds) > 2 {
		t.Fatalf("BGRD never bundled: %v", sol.Seeds)
	}
}

func TestDRHGASpreadsItems(t *testing.T) {
	p := sampleProblem(t, 400, 2)
	sol, err := DRHGA(p, Options{MC: 8, Seed: 3, CandidateCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	// per-item selection: distinct items, distinct users
	items := map[int]bool{}
	users := map[int]bool{}
	for _, s := range sol.Seeds {
		if items[s.Item] {
			t.Fatalf("DRHGA repeated item %d", s.Item)
		}
		items[s.Item] = true
		if users[s.User] {
			t.Fatalf("DRHGA repeated user %d", s.User)
		}
		users[s.User] = true
	}
}

func TestOPTBeatsSingleGreedyPick(t *testing.T) {
	p := sampleProblem(t, 125, 2)
	opt, err := OPT(p, OPTOptions{
		Options:      Options{MC: 16, Seed: 3},
		MaxGroupSize: 4,
		UniverseCap:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Seeds) == 0 || opt.Sigma <= 0 {
		t.Fatalf("OPT degenerate: %+v", opt)
	}
	if opt.Cost > p.Budget+1e-9 {
		t.Fatalf("OPT over budget: %v", opt.Cost)
	}
	// OPT over the same universe must match or beat any single seed
	pairs := candidatePairs(p, 8)
	est := diffusion.NewEstimator(p, 16, 3)
	for _, nm := range pairs {
		single := est.Sigma([]diffusion.Seed{{User: nm.User, Item: nm.Item, T: 1}})
		if single > opt.Sigma+1e-9 {
			t.Fatalf("single seed (%d,%d) σ=%v beats OPT %v", nm.User, nm.Item, single, opt.Sigma)
		}
	}
}

func TestOPTGroupSizeBound(t *testing.T) {
	p := sampleProblem(t, 1e6, 1) // effectively unbounded budget
	opt, err := OPT(p, OPTOptions{
		Options:      Options{MC: 4, Seed: 3},
		MaxGroupSize: 2,
		UniverseCap:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Seeds) > 2 {
		t.Fatalf("OPT exceeded group size: %d", len(opt.Seeds))
	}
}

func TestCandidatePairsDiverseAndAffordable(t *testing.T) {
	p := sampleProblem(t, 120, 1)
	pairs := candidatePairs(p, 30)
	if len(pairs) == 0 || len(pairs) > 30 {
		t.Fatalf("%d pairs", len(pairs))
	}
	perUser := map[int]int{}
	for _, nm := range pairs {
		if c := p.CostOf(nm.User, nm.Item); c > p.Budget {
			t.Fatalf("unaffordable candidate cost %v", c)
		}
		perUser[nm.User]++
	}
	if len(perUser) < len(pairs)/3 {
		t.Fatalf("candidate universe not user-diverse: %d users for %d pairs",
			len(perUser), len(pairs))
	}
}

func TestScheduleCRGreedyTimings(t *testing.T) {
	p := sampleProblem(t, 200, 4)
	r := newRunner(p, Options{MC: 8, Seed: 3})
	pairs := candidatePairs(p, 3)
	seeds := r.scheduleCRGreedy(pairs)
	if len(seeds) != len(pairs) {
		t.Fatalf("scheduled %d of %d", len(seeds), len(pairs))
	}
	for _, s := range seeds {
		if s.T < 1 || s.T > p.T {
			t.Fatalf("timing %d", s.T)
		}
	}
}

func TestBaselinesValidateProblem(t *testing.T) {
	p := sampleProblem(t, 100, 2)
	bad := *p
	bad.T = 0
	for _, bl := range allBaselines() {
		if _, err := bl.run(&bad, Options{MC: 4}); err == nil {
			t.Fatalf("%s accepted invalid problem", bl.name)
		}
	}
	if _, err := OPT(&bad, OPTOptions{}); err == nil {
		t.Fatal("OPT accepted invalid problem")
	}
}

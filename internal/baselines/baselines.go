package baselines

import (
	"sort"

	"imdpp/internal/cluster"
	"imdpp/internal/diffusion"
)

// Options configure a baseline run.
type Options struct {
	// MC is the Monte-Carlo sample count for σ evaluations (default 32).
	MC int
	// Seed is the RNG master seed (default 1).
	Seed uint64
	// CandidateCap bounds the candidate universe like Dysim's cap
	// (default 512; ≤0 disables).
	CandidateCap int
	// MaxSeeds caps the number of selected seeds (0 = unlimited;
	// budget usually binds first).
	MaxSeeds int
	// Workers bounds estimator parallelism (0 → GOMAXPROCS).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MC <= 0 {
		o.MC = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.CandidateCap == 0 {
		o.CandidateCap = 512
	}
	return o
}

// Solution is a baseline's output.
type Solution struct {
	Seeds      []diffusion.Seed
	Cost       float64
	Sigma      float64
	SigmaEvals int
}

type runner struct {
	p     *diffusion.Problem
	opt   Options
	est   *diffusion.Estimator
	evals int
}

func newRunner(p *diffusion.Problem, opt Options) *runner {
	opt = opt.withDefaults()
	r := &runner{p: p, opt: opt}
	r.est = diffusion.NewEstimator(p, opt.MC, opt.Seed)
	r.est.Workers = opt.Workers
	return r
}

func (r *runner) sigma(seeds []diffusion.Seed) float64 {
	r.evals++
	return r.est.Sigma(seeds)
}

// sigmaBatch evaluates every candidate seed group of one greedy round
// in a single batch over the estimator's worker pool, with common
// random numbers across candidates.
func (r *runner) sigmaBatch(groups [][]diffusion.Seed) []float64 {
	r.evals += len(groups)
	return r.est.SigmaBatch(groups)
}

// reseedRound re-randomises the estimator between greedy rounds and
// returns a fresh baseline estimate of the current selection, so the
// round winner's positively-biased estimate does not deflate the next
// round's marginals.
func (r *runner) reseedRound(round int, cur []diffusion.Seed) float64 {
	r.est.Reseed(r.opt.Seed + uint64(round+1)*0x9E3779B9)
	return r.sigma(cur)
}

// candidatePairs mirrors Dysim's candidate pruning so every algorithm
// scans a comparable universe.
func candidatePairs(p *diffusion.Problem, cap int) []cluster.Nominee {
	type scored struct {
		nm    cluster.Nominee
		score float64
	}
	var all []scored
	for u := 0; u < p.NumUsers(); u++ {
		deg := float64(p.G.OutDegree(u))
		if deg == 0 {
			continue
		}
		for x := 0; x < p.NumItems(); x++ {
			c := p.CostOf(u, x)
			if c > p.Budget {
				continue
			}
			pr := p.BasePrefOf(u, x)
			if pr <= 0 {
				continue
			}
			all = append(all, scored{cluster.Nominee{User: u, Item: x}, deg * p.Importance[x] * pr / (c + 1e-9)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		if all[i].nm.User != all[j].nm.User {
			return all[i].nm.User < all[j].nm.User
		}
		return all[i].nm.Item < all[j].nm.Item
	})
	if cap > 0 && len(all) > cap {
		// user-diverse cap, mirroring Dysim's candidate pruning
		kept := all[:0]
		perUser := map[int]int{}
		var overflow []scored
		for _, sc := range all {
			if perUser[sc.nm.User] < 3 {
				perUser[sc.nm.User]++
				kept = append(kept, sc)
				if len(kept) == cap {
					break
				}
			} else {
				overflow = append(overflow, sc)
			}
		}
		for _, sc := range overflow {
			if len(kept) == cap {
				break
			}
			kept = append(kept, sc)
		}
		all = kept
	}
	out := make([]cluster.Nominee, len(all))
	for i, s := range all {
		out[i] = s.nm
	}
	return out
}

// scheduleCRGreedy is the CR-Greedy wrapper: given pairs chosen by a
// single-promotion algorithm, assign each pair (in order) the
// promotion t ∈ [1,T] with the largest marginal σ. Its cost grows
// linearly in T, which is why the baselines slow down for large T
// (Fig. 9(g)).
func (r *runner) scheduleCRGreedy(pairs []cluster.Nominee) []diffusion.Seed {
	var seeds []diffusion.Seed
	for i, nm := range pairs {
		r.est.Reseed(r.opt.Seed + 0xC4 + uint64(i)*0x85EB)
		// all T placements of this pair in one batch; shared sample
		// streams make the argmax over t a paired comparison
		groups := make([][]diffusion.Seed, r.p.T)
		for t := 1; t <= r.p.T; t++ {
			groups[t-1] = diffusion.WithSeed(seeds, diffusion.Seed{User: nm.User, Item: nm.Item, T: t})
		}
		bestT, bestSigma := 1, -1.0
		for j, sig := range r.sigmaBatch(groups) {
			if sig > bestSigma {
				bestSigma, bestT = sig, j+1
			}
		}
		seeds = append(seeds, diffusion.Seed{User: nm.User, Item: nm.Item, T: bestT})
	}
	return seeds
}

func (r *runner) finish(seeds []diffusion.Seed) Solution {
	return Solution{
		Seeds:      seeds,
		Cost:       r.p.SeedCost(seeds),
		Sigma:      r.sigma(seeds),
		SigmaEvals: r.evals,
	}
}

package baselines

import (
	"sort"

	"imdpp/internal/cluster"
	"imdpp/internal/diffusion"
)

// DRHGA is the follower's-perspective baseline [19]: it promotes all
// items but runs a separate greedy user-selection pass per item under
// static complementary/substitutable-aware preferences — "DRHGA is
// able to select appropriate users to promote each item, instead of
// regarding all items as a bundle ... However, as DRHGA does not
// choose items to be promoted, it still generates a smaller influence
// spread" and "it takes more time than BGRD since the selection
// process is repeated for each item" (Sec. VI-B). CR-Greedy assigns
// timings.
func DRHGA(p *diffusion.Problem, opt Options) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	r := newRunner(p, opt)

	// items in decreasing importance: DRHGA spreads budget over all of
	// them, important first.
	items := make([]int, p.NumItems())
	for i := range items {
		items[i] = i
	}
	sort.Slice(items, func(a, b int) bool {
		if p.Importance[items[a]] != p.Importance[items[b]] {
			return p.Importance[items[a]] > p.Importance[items[b]]
		}
		return items[a] < items[b]
	})

	perItemCap := r.opt.CandidateCap / (p.NumItems() + 1)
	if perItemCap < 8 {
		perItemCap = 8
	}

	var pairs []cluster.Nominee
	var cur []diffusion.Seed
	spent := 0.0
	base := 0.0
	usedUser := map[int]bool{}
	for _, x := range items {
		// candidate users for item x by degree × static preference
		type cand struct {
			u     int
			score float64
		}
		var cands []cand
		for u := 0; u < p.NumUsers(); u++ {
			if usedUser[u] || p.G.OutDegree(u) == 0 {
				continue
			}
			pr := p.BasePrefOf(u, x)
			if pr <= 0 {
				continue
			}
			cands = append(cands, cand{u, float64(p.G.OutDegree(u)) * pr})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
			return cands[i].u < cands[j].u
		})
		if len(cands) > perItemCap {
			cands = cands[:perItemCap]
		}
		// one greedy pick per item (per-item selection pass), with the
		// item's whole candidate-user slate evaluated in one batch
		var (
			groups [][]diffusion.Seed
			us     []int
		)
		for _, cd := range cands {
			if p.CostOf(cd.u, x) > p.Budget-spent {
				continue
			}
			groups = append(groups, diffusion.WithSeed(cur, diffusion.Seed{User: cd.u, Item: x, T: 1}))
			us = append(us, cd.u)
		}
		bestRatio, bestU := 0.0, -1
		for j, sig := range r.sigmaBatch(groups) {
			c := p.CostOf(us[j], x)
			if ratio := (sig - base) / (c + 1e-12); ratio > bestRatio {
				bestRatio, bestU = ratio, us[j]
			}
		}
		if bestU < 0 || bestRatio <= 0 {
			continue
		}
		usedUser[bestU] = true
		pairs = append(pairs, cluster.Nominee{User: bestU, Item: x})
		cur = append(cur, diffusion.Seed{User: bestU, Item: x, T: 1})
		spent += p.CostOf(bestU, x)
		base = r.reseedRound(len(pairs), cur)
		if r.opt.MaxSeeds > 0 && len(pairs) >= r.opt.MaxSeeds {
			break
		}
	}
	seeds := r.scheduleCRGreedy(pairs)
	return r.finish(seeds), nil
}

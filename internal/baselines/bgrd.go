package baselines

import (
	"sort"

	"imdpp/internal/cluster"
	"imdpp/internal/diffusion"
)

// BGRD is the utility-driven welfare baseline [38]: users are selected
// greedily, and a selected user promotes the items as one bundle —
// BGRD "neglects the substitutable relationship and regards all items
// as a bundle to be promoted" (Sec. VI-B). Per the paper's cost
// extension, a user's bundle is filled with items in decreasing
// utility (w_x · P0pref) for as long as the remaining budget allows.
// CR-Greedy then schedules the resulting pairs across promotions.
func BGRD(p *diffusion.Problem, opt Options) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	r := newRunner(p, opt)

	// rank items once by bundle utility per user lazily
	type userScore struct {
		u     int
		score float64
	}
	users := make([]userScore, 0, p.NumUsers())
	for u := 0; u < p.NumUsers(); u++ {
		if p.G.OutDegree(u) == 0 {
			continue
		}
		users = append(users, userScore{u, float64(p.G.OutDegree(u))})
	}
	sort.Slice(users, func(i, j int) bool {
		if users[i].score != users[j].score {
			return users[i].score > users[j].score
		}
		return users[i].u < users[j].u
	})
	if r.opt.CandidateCap > 0 && len(users) > r.opt.CandidateCap {
		users = users[:r.opt.CandidateCap]
	}

	var pairs []cluster.Nominee
	var cur []diffusion.Seed
	base := 0.0
	spent := 0.0
	picked := make(map[int]bool)
	for {
		bundleCap := 0 // unlimited
		if r.opt.MaxSeeds > 0 {
			bundleCap = r.opt.MaxSeeds - len(pairs)
			if bundleCap <= 0 {
				break
			}
		}
		// one batch per greedy round: every unpicked user's bundle
		var (
			groups  [][]diffusion.Seed
			idxs    []int
			bundles [][]cluster.Nominee
			costs   []float64
		)
		for i, us := range users {
			if picked[us.u] {
				continue
			}
			bundle := bundleFor(p, us.u, p.Budget-spent, bundleCap)
			if len(bundle) == 0 {
				continue
			}
			cand := make([]diffusion.Seed, 0, len(cur)+len(bundle))
			cand = append(cand, cur...)
			cost := 0.0
			for _, nm := range bundle {
				cand = append(cand, diffusion.Seed{User: nm.User, Item: nm.Item, T: 1})
				cost += p.CostOf(nm.User, nm.Item)
			}
			groups = append(groups, cand)
			idxs = append(idxs, i)
			bundles = append(bundles, bundle)
			costs = append(costs, cost)
		}
		bestRatio := 0.0
		bestIdx := -1
		var bestBundle []cluster.Nominee
		for j, sig := range r.sigmaBatch(groups) {
			if ratio := (sig - base) / (costs[j] + 1e-12); ratio > bestRatio {
				bestRatio, bestIdx, bestBundle = ratio, idxs[j], bundles[j]
			}
		}
		if bestIdx < 0 || bestRatio <= 0 {
			break
		}
		u := users[bestIdx].u
		picked[u] = true
		for _, nm := range bestBundle {
			pairs = append(pairs, nm)
			cur = append(cur, diffusion.Seed{User: nm.User, Item: nm.Item, T: 1})
			spent += p.CostOf(nm.User, nm.Item)
		}
		base = r.reseedRound(len(pairs), cur)
		if r.opt.MaxSeeds > 0 && len(pairs) >= r.opt.MaxSeeds {
			break
		}
	}
	seeds := r.scheduleCRGreedy(pairs)
	return r.finish(seeds), nil
}

// bundleFor fills user u's bundle with items in decreasing utility
// w_x·P0pref(u,x) while they fit the remaining budget; maxItems > 0
// bounds the bundle size.
func bundleFor(p *diffusion.Problem, u int, budget float64, maxItems int) []cluster.Nominee {
	type it struct {
		x    int
		util float64
	}
	items := make([]it, 0, p.NumItems())
	for x := 0; x < p.NumItems(); x++ {
		pr := p.BasePrefOf(u, x)
		if pr <= 0 {
			continue
		}
		items = append(items, it{x, p.Importance[x] * pr})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].util != items[j].util {
			return items[i].util > items[j].util
		}
		return items[i].x < items[j].x
	})
	var bundle []cluster.Nominee
	for _, itx := range items {
		if maxItems > 0 && len(bundle) >= maxItems {
			break
		}
		c := p.CostOf(u, itx.x)
		if c <= budget {
			bundle = append(bundle, cluster.Nominee{User: u, Item: itx.x})
			budget -= c
		}
	}
	return bundle
}

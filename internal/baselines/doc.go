// Package baselines implements the comparison algorithms of Sec. VI:
//
//   - BGRD (Banerjee et al., SIGMOD'19): utility-driven welfare
//     maximisation; selects users and promotes items as a bundle.
//   - HAG (Hung et al., KDD'16): greedy over user-item pair
//     combinations with item-inference awareness.
//   - PS (Teng et al., SDM'18): per-seed influence estimated from
//     maximum-influence paths with a discounting strategy.
//   - DRHGA (Huang et al., KBS'20): per-item greedy user selection
//     under static complementary/substitutable preferences.
//   - CR-Greedy (Sun et al., KDD'18): the multi-round scheduling
//     wrapper the paper uses to give every single-promotion baseline
//     promotional timings.
//   - OPT: exact brute force over bounded seed groups for the Fig. 8
//     small-instance comparison.
//
// All baselines honour per-(user,item) costs and the shared budget, as
// the paper's extension prescribes.
package baselines

package baselines

import (
	"imdpp/internal/cluster"
	"imdpp/internal/diffusion"
)

// HAG is the "social influence meets item inference" baseline [37]:
// it greedily selects the most influential combination of user-item
// pairs as seeds (Sec. VI-B). Every greedy round re-evaluates the
// whole remaining pair universe against the current selection — the
// combination search that makes HAG accurate at small budgets but
// expensive at large ones (it is the baseline the paper could not run
// on Douban within 12 hours). CR-Greedy assigns timings.
func HAG(p *diffusion.Problem, opt Options) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	r := newRunner(p, opt)
	universe := candidatePairs(p, r.opt.CandidateCap)

	var pairs []cluster.Nominee
	var cur []diffusion.Seed
	base := 0.0
	spent := 0.0
	taken := make(map[cluster.Nominee]bool)
	for {
		// the whole remaining pair universe is re-evaluated against the
		// current selection — as one batch per greedy round
		var (
			groups [][]diffusion.Seed
			idxs   []int
		)
		for i, nm := range universe {
			if taken[nm] {
				continue
			}
			if p.CostOf(nm.User, nm.Item) > p.Budget-spent {
				continue
			}
			groups = append(groups, diffusion.WithSeed(cur, diffusion.Seed{User: nm.User, Item: nm.Item, T: 1}))
			idxs = append(idxs, i)
		}
		bestRatio, bestIdx := 0.0, -1
		for j, sig := range r.sigmaBatch(groups) {
			nm := universe[idxs[j]]
			c := p.CostOf(nm.User, nm.Item)
			if ratio := (sig - base) / (c + 1e-12); ratio > bestRatio {
				bestRatio, bestIdx = ratio, idxs[j]
			}
		}
		if bestIdx < 0 || bestRatio <= 0 {
			break
		}
		nm := universe[bestIdx]
		taken[nm] = true
		pairs = append(pairs, nm)
		cur = append(cur, diffusion.Seed{User: nm.User, Item: nm.Item, T: 1})
		spent += p.CostOf(nm.User, nm.Item)
		base = r.reseedRound(len(pairs), cur)
		if r.opt.MaxSeeds > 0 && len(pairs) >= r.opt.MaxSeeds {
			break
		}
	}
	seeds := r.scheduleCRGreedy(pairs)
	return r.finish(seeds), nil
}

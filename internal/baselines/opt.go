package baselines

import (
	"imdpp/internal/cluster"
	"imdpp/internal/diffusion"
)

// OPTOptions bound the exact search.
type OPTOptions struct {
	Options
	// MaxGroupSize caps the seed-group cardinality enumerated
	// (default 4).
	MaxGroupSize int
	// UniverseCap caps the candidate (u,x) pairs considered
	// (default 16); combined with T, the search enumerates
	// O((UniverseCap·T)^MaxGroupSize) groups, so keep both small.
	UniverseCap int
}

// OPT enumerates every feasible seed group over a bounded candidate
// universe and all promotion timings, returning the σ-maximising one —
// the brute-force optimum of Fig. 8. Intended for instances of around
// a hundred users.
func OPT(p *diffusion.Problem, opt OPTOptions) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if opt.MaxGroupSize <= 0 {
		opt.MaxGroupSize = 4
	}
	if opt.UniverseCap <= 0 {
		opt.UniverseCap = 16
	}
	opt.Options = opt.Options.withDefaults()
	r := newRunner(p, opt.Options)

	pairs := candidatePairs(p, opt.UniverseCap)
	// expand to (u,x,t) triples
	var triples []diffusion.Seed
	for _, nm := range pairs {
		for t := 1; t <= p.T; t++ {
			triples = append(triples, diffusion.Seed{User: nm.User, Item: nm.Item, T: t})
		}
	}

	best := Solution{Sigma: -1}
	var rec func(start int, cur []diffusion.Seed, cost float64, usedPair map[cluster.Nominee]bool)
	rec = func(start int, cur []diffusion.Seed, cost float64, usedPair map[cluster.Nominee]bool) {
		if len(cur) > 0 {
			sig := r.sigma(cur)
			if sig > best.Sigma {
				best.Sigma = sig
				best.Seeds = append([]diffusion.Seed(nil), cur...)
				best.Cost = cost
			}
		}
		if len(cur) == opt.MaxGroupSize {
			return
		}
		for i := start; i < len(triples); i++ {
			s := triples[i]
			nm := cluster.Nominee{User: s.User, Item: s.Item}
			if usedPair[nm] {
				continue // the same pair at two timings never helps: the first adoption blocks the second
			}
			c := p.CostOf(s.User, s.Item)
			if cost+c > p.Budget {
				continue
			}
			usedPair[nm] = true
			rec(i+1, append(cur, s), cost+c, usedPair)
			delete(usedPair, nm)
		}
	}
	rec(0, nil, 0, map[cluster.Nominee]bool{})
	if best.Sigma < 0 {
		best.Sigma = 0
	}
	best.SigmaEvals = r.evals
	return best, nil
}

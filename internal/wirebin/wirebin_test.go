package wirebin

import (
	"math"
	"math/rand"
	"testing"
)

func TestFloatBitExact(t *testing.T) {
	cases := []float64{
		0, 1, 2, 3, 1000, 1 << 30, (1 << 53) - 1, 1 << 53, // around the integral cutoff
		-0.0, -1, 0.5, 1.0000000000000002, math.Pi,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.Float64frombits(0x7ff8000000000001), // NaN with payload
		math.SmallestNonzeroFloat64, math.MaxFloat64,
	}
	var b []byte
	for _, v := range cases {
		b = AppendFloat(b, v)
	}
	r := NewReader(b)
	for _, want := range cases {
		got := r.Float()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("float %v (%x) decoded as %v (%x)", want, math.Float64bits(want), got, math.Float64bits(got))
		}
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestPrimitivesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		u8 := byte(rng.Intn(256))
		u32 := rng.Uint32()
		u64 := rng.Uint64()
		uv := rng.Uint64() >> uint(rng.Intn(64))
		iv := rng.Int63() - rng.Int63()
		bl := rng.Intn(2) == 1
		str := string(rune('a'+rng.Intn(26))) + "πattr"[:rng.Intn(6)]
		fs := make([]float64, rng.Intn(8))
		for i := range fs {
			if rng.Intn(2) == 0 {
				fs[i] = float64(rng.Intn(100))
			} else {
				fs[i] = rng.NormFloat64()
			}
		}
		asc := make([]int32, rng.Intn(8))
		v := int32(rng.Intn(100)) - 50
		for i := range asc {
			v += int32(rng.Intn(40))
			asc[i] = v
		}

		var b []byte
		b = AppendU8(b, u8)
		b = AppendU32(b, u32)
		b = AppendU64(b, u64)
		b = AppendUvarint(b, uv)
		b = AppendVarint(b, iv)
		b = AppendBool(b, bl)
		b = AppendString(b, str)
		b = AppendFloats(b, fs)
		b = AppendAscInt32s(b, asc)

		r := NewReader(b)
		if got := r.U8(); got != u8 {
			t.Fatalf("u8 %d != %d", got, u8)
		}
		if got := r.U32(); got != u32 {
			t.Fatalf("u32 %d != %d", got, u32)
		}
		if got := r.U64(); got != u64 {
			t.Fatalf("u64 %d != %d", got, u64)
		}
		if got := r.Uvarint(); got != uv {
			t.Fatalf("uvarint %d != %d", got, uv)
		}
		if got := r.Varint(); got != iv {
			t.Fatalf("varint %d != %d", got, iv)
		}
		if got := r.Bool(); got != bl {
			t.Fatalf("bool %v != %v", got, bl)
		}
		if got := r.String(); got != str {
			t.Fatalf("string %q != %q", got, str)
		}
		gfs := r.Floats()
		if len(gfs) != len(fs) {
			t.Fatalf("floats len %d != %d", len(gfs), len(fs))
		}
		for i := range fs {
			if math.Float64bits(gfs[i]) != math.Float64bits(fs[i]) {
				t.Fatalf("float[%d] %v != %v", i, gfs[i], fs[i])
			}
		}
		gasc := r.AscInt32s()
		if len(gasc) != len(asc) {
			t.Fatalf("asc len %d != %d", len(gasc), len(asc))
		}
		for i := range asc {
			if gasc[i] != asc[i] {
				t.Fatalf("asc[%d] %d != %d", i, gasc[i], asc[i])
			}
		}
		if err := r.Done(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReaderRejectsHostileCounts(t *testing.T) {
	// a huge count with a tiny payload must fail, not allocate
	b := AppendUvarint(nil, 1<<40)
	r := NewReader(b)
	if out := r.Floats(); out != nil || r.Err() == nil {
		t.Fatalf("oversized count decoded: %v err %v", out, r.Err())
	}
	// trailing bytes are an error
	r = NewReader([]byte{0, 0})
	_ = r.U8()
	if err := r.Done(); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// non-canonical bool
	r = NewReader([]byte{2})
	if r.Bool(); r.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

// FuzzReader feeds arbitrary bytes through every decode primitive; the
// contract under fuzz is "typed error or success", never a panic or an
// unbounded allocation.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xff, 0x00})
	f.Add(AppendFloats(AppendAscInt32s(nil, []int32{-3, 0, 9}), []float64{1, math.Pi}))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		_ = r.U8()
		_ = r.Uvarint()
		_ = r.Varint()
		_ = r.Float()
		_ = r.Floats()
		_ = r.AscInt32s()
		_ = r.Bool()
		_ = r.String()
		_ = r.U32()
		_ = r.U64()
		_ = r.Err()
	})
}

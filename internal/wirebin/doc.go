// Package wirebin holds the little-endian binary primitives shared by
// every wire codec in the repo: the shard RPC frames (internal/shard)
// and the per-layer payload codecs (graph CSR images, PIN relevance
// rows, KG relevance tables, diffusion sample grids). It is a byte
// appender/reader pair, not a serialisation framework: no reflection,
// no interfaces, no allocation beyond the destination slice — encoders
// are Append* functions growing a caller-owned []byte (pool it), and
// decoding goes through a Reader with a sticky error and hard bounds
// checks so corrupt or hostile input fails typed instead of panicking
// or over-allocating.
//
// Two encodings beyond fixed-width LE words do the heavy lifting:
//
//   - Uvarint/Varint: base-128 varints (Varint zig-zags first), used
//     for lengths, ids and deltas of sorted id lists.
//   - Float: a tagged float64 — values that are exactly small
//     non-negative integers (the common case for adoption counts)
//     encode as tag 0 + uvarint, everything else as tag 1 + raw IEEE
//     bits. The round trip is bit-exact for every float64 including
//     -0, NaN payloads and ±Inf, which is what lets the shard merge
//     stay on the DESIGN.md §7 bit-identity contract.
package wirebin

package wirebin

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Float encoding tags.
const (
	tagInt   = 0 // uvarint follows; value is float64(u), exact
	tagFloat = 1 // 8 raw little-endian IEEE-754 bytes follow
)

// maxExactInt bounds the integers eligible for the compact float
// encoding: below 2^53 every non-negative integer round-trips through
// float64 exactly.
const maxExactInt = 1 << 53

// AppendU8 appends one byte.
func AppendU8(b []byte, v byte) []byte { return append(b, v) }

// AppendU32 appends a fixed-width little-endian uint32.
func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// AppendU64 appends a fixed-width little-endian uint64.
func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendUvarint appends a base-128 varint.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends a zig-zag base-128 varint.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendBool appends a bool as one byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendFloat appends one float64 in the tagged compact encoding. The
// decode is bit-exact for every input.
func AppendFloat(b []byte, v float64) []byte {
	// the integral fast path must reject -0 (signbit) and NaN (v != v),
	// both of which would lose their bit pattern through uint64
	if v == math.Trunc(v) && v >= 0 && v < maxExactInt && !math.Signbit(v) {
		b = append(b, tagInt)
		return binary.AppendUvarint(b, uint64(v))
	}
	b = append(b, tagFloat)
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendFloats appends a uvarint count followed by each value in the
// compact encoding.
func AppendFloats(b []byte, vs []float64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = AppendFloat(b, v)
	}
	return b
}

// AppendString appends a uvarint byte length followed by the raw
// bytes.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendAscInt32s appends a sorted-ascending id list as a uvarint
// count, the first id as a zig-zag varint, and ascending deltas as
// uvarints. The input must be strictly or weakly ascending; violations
// are the encoder's bug and panic.
func AppendAscInt32s(b []byte, vs []int32) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	prev := int32(0)
	for i, v := range vs {
		if i == 0 {
			b = binary.AppendVarint(b, int64(v))
		} else {
			if v < prev {
				panic(fmt.Sprintf("wirebin: AppendAscInt32s input not ascending: %d after %d", v, prev))
			}
			b = binary.AppendUvarint(b, uint64(v-prev))
		}
		prev = v
	}
	return b
}

// Reader decodes a wirebin payload with a sticky error: after the
// first failure every method returns the zero value and Err() reports
// the cause, so decode bodies can be written straight-line and checked
// once.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps a payload for decoding. The Reader borrows b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.b) - r.off }

// Done returns nil iff the payload decoded cleanly and was consumed
// exactly — trailing garbage is an error, so frames cannot smuggle
// extra content past a decoder.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wirebin: %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wirebin: "+format, args...)
	}
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated u8 at %d", r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// U32 reads a fixed-width little-endian uint32.
func (r *Reader) U32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.fail("truncated u32 at %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// U64 reads a fixed-width little-endian uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("truncated u64 at %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// Uvarint reads a base-128 varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zig-zag base-128 varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Bool reads a one-byte bool; any value other than 0 or 1 is an error
// (canonical encodings only, so equal values have equal bytes).
func (r *Reader) Bool() bool {
	v := r.U8()
	if v > 1 {
		r.fail("bad bool byte %d", v)
		return false
	}
	return v == 1
}

// Float reads one tagged compact float64, bit-exactly.
func (r *Reader) Float() float64 {
	switch tag := r.U8(); tag {
	case tagInt:
		return float64(r.Uvarint())
	case tagFloat:
		return math.Float64frombits(r.U64())
	default:
		r.fail("bad float tag %d", tag)
		return 0
	}
}

// Count reads a uvarint element count and validates it against the
// remaining payload, given a minimum encoded size per element — the
// allocation guard that keeps a 4-byte hostile frame from provoking a
// multi-gigabyte make().
func (r *Reader) Count(minBytesPer int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if minBytesPer < 1 {
		minBytesPer = 1
	}
	if n > uint64(r.Len()/minBytesPer) {
		r.fail("count %d exceeds remaining %d bytes (min %d each)", n, r.Len(), minBytesPer)
		return 0
	}
	return int(n)
}

// Floats reads a compact float slice (nil for count 0).
func (r *Reader) Floats() []float64 {
	n := r.Count(2) // tag + at least one varint byte
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float()
	}
	return out
}

// String reads a length-prefixed string written by AppendString.
func (r *Reader) String() string {
	n := r.Count(1)
	if r.err != nil || n == 0 {
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

// AscInt32s reads an ascending id list written by AppendAscInt32s
// (nil for count 0). Overflow past int32 is an error.
func (r *Reader) AscInt32s() []int32 {
	n := r.Count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	prev := int64(0)
	for i := range out {
		if i == 0 {
			prev = r.Varint()
		} else {
			prev += int64(r.Uvarint())
		}
		if prev < math.MinInt32 || prev > math.MaxInt32 {
			r.fail("ascending id %d overflows int32", prev)
			return nil
		}
		out[i] = int32(prev)
	}
	return out
}

// Package diffusion implements the IMDPP diffusion process of Sec. III:
// a campaign of T promotions, each with steps ζ = 0,1,... in which
// users adopting items promote them to friends, extra adoptions are
// triggered by item associations, and the four dynamic factors —
// relevance measurement, preference estimation, influence learning and
// item associations — are updated at the end of every step.
//
// The Monte-Carlo estimator computes the importance-aware influence σ
// (Def. 1) and the future-adoption likelihood π (Eq. 13) through one
// batch engine (batch.go) under the DESIGN.md §3 determinism contract:
// sample i of every seed group draws from the stream Split(i) of the
// master seed and per-group results reduce in sample order, so every
// Estimate is bit-identical across worker counts, GOMAXPROCS — and,
// via the shardable entry points RunBatchSamples/ReduceSampleGrid
// (shardable.go, DESIGN.md §7), across process boundaries.
//
// Hot-path memory layout (flat CSR graph views, sparse pooled
// per-sample State rows) is documented in DESIGN.md §5.
package diffusion

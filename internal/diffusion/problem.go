package diffusion

import (
	"fmt"

	"imdpp/internal/graph"
	"imdpp/internal/kg"
	"imdpp/internal/pin"
)

// Seed is one element (u, x, t) of a seed group: user u is hired to
// promote item x starting at promotion t (1-based). The JSON field
// names are a stable wire contract shared by the imdppd daemon and
// the imdpprun -json output.
type Seed struct {
	User int `json:"user"`
	Item int `json:"item"`
	T    int `json:"t"`
}

// CloneSeeds copies a seed group. Groups handed to one estimator batch
// must own their backing arrays.
func CloneSeeds(seeds []Seed) []Seed {
	return append([]Seed(nil), seeds...)
}

// WithSeed returns a fresh slice of seeds plus one extra element —
// the greedy-candidate shape of every batched selection loop. Unlike
// append, the result never aliases the input's backing array.
func WithSeed(seeds []Seed, extra Seed) []Seed {
	out := make([]Seed, len(seeds)+1)
	copy(out, seeds)
	out[len(seeds)] = extra
	return out
}

// AISModel selects the aggregated-influence form used in Eq. 13.
type AISModel uint8

// AIS variants (footnote 31 of the paper).
const (
	AISIndependentCascade AISModel = iota // 1 − Π(1 − Pact)
	AISLinearThreshold                    // Σ Pact, clamped to 1
)

// Params are the diffusion-model hyper-parameters. The zero value is
// invalid; use DefaultParams. The JSON field names are a stable wire
// contract (shard problem upload).
type Params struct {
	// Eta is the learning rate of the meta-graph weighting update
	// (relevance measurement).
	Eta float64 `json:"eta"`
	// Lambda scales the cross-elasticity preference update: adopting a
	// complement of y raises Ppref(·,y), a substitute lowers it.
	Lambda float64 `json:"lambda"`
	// Gamma scales influence learning: Pact grows by up to Gamma
	// relative to the base strength as similarity reaches 1.
	Gamma float64 `json:"gamma"`
	// Chi scales the extra-adoption probability Pext of item
	// associations.
	Chi float64 `json:"chi"`
	// MaxSteps caps the number of steps per promotion (safety net; the
	// process stops by itself when no new adoptions occur).
	MaxSteps int `json:"max_steps"`
	// AIS selects the aggregated influence form for π (Eq. 13).
	AIS AISModel `json:"ais"`
	// Static freezes Ppref, Pact and Pext at their initial values
	// (Lemma 1 / Theorem 4 regime): no weighting updates, no
	// preference updates, no influence learning. Item associations
	// still fire but with initial relevance.
	Static bool `json:"static,omitempty"`
}

// DefaultParams returns the defaults documented in DESIGN.md §2.
func DefaultParams() Params {
	return Params{Eta: 0.25, Lambda: 0.5, Gamma: 0.5, Chi: 0.5, MaxSteps: 64, AIS: AISIndependentCascade}
}

// Problem is one immutable IMDPP instance.
type Problem struct {
	G   *graph.Graph // social network G_SN; arc weights are P0act
	KG  *kg.KG       // knowledge graph G_KG
	PIN *pin.Model   // meta-graphs + relevance tables

	// Importance is w_x per item (len = KG.NumItems()).
	Importance []float64
	// BasePref is P0(u,y), the initial preference of user u for item
	// y, addressed (user, item).
	BasePref Matrix
	// Cost is c_{u,x}, the cost of hiring user u to promote item x,
	// addressed (user, item).
	Cost Matrix

	// Budget is b; T is the total number of promotions.
	Budget float64
	T      int

	Params Params
}

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	n := p.G.N()
	items := p.KG.NumItems()
	if p.PIN.NumItems() != items {
		return fmt.Errorf("diffusion: PIN items %d != KG items %d", p.PIN.NumItems(), items)
	}
	if len(p.Importance) != items {
		return fmt.Errorf("diffusion: importance len %d != %d items", len(p.Importance), items)
	}
	if p.BasePref.Rows() != n || p.BasePref.Cols() != items {
		return fmt.Errorf("diffusion: basePref %d×%d != %d users × %d items",
			p.BasePref.Rows(), p.BasePref.Cols(), n, items)
	}
	if p.Cost.Rows() != n || p.Cost.Cols() != items {
		return fmt.Errorf("diffusion: cost %d×%d != %d users × %d items",
			p.Cost.Rows(), p.Cost.Cols(), n, items)
	}
	if p.T < 1 {
		return fmt.Errorf("diffusion: T=%d < 1", p.T)
	}
	if p.Budget < 0 {
		return fmt.Errorf("diffusion: negative budget")
	}
	if p.Params.MaxSteps <= 0 {
		return fmt.Errorf("diffusion: MaxSteps must be positive")
	}
	return nil
}

// NumUsers returns |V|.
func (p *Problem) NumUsers() int { return p.G.N() }

// NumItems returns |I|.
func (p *Problem) NumItems() int { return p.KG.NumItems() }

// BasePrefOf returns P0(u, y).
func (p *Problem) BasePrefOf(u, y int) float64 { return p.BasePref.At(u, y) }

// CostOf returns c_{u,x}.
func (p *Problem) CostOf(u, x int) float64 { return p.Cost.At(u, x) }

// SeedCost returns the total cost of a seed group.
func (p *Problem) SeedCost(seeds []Seed) float64 {
	total := 0.0
	for _, s := range seeds {
		total += p.CostOf(s.User, s.Item)
	}
	return total
}

// ValidateSeeds checks ranges, budget and promotion indices.
func (p *Problem) ValidateSeeds(seeds []Seed) error {
	for _, s := range seeds {
		if s.User < 0 || s.User >= p.NumUsers() {
			return fmt.Errorf("diffusion: seed user %d out of range", s.User)
		}
		if s.Item < 0 || s.Item >= p.NumItems() {
			return fmt.Errorf("diffusion: seed item %d out of range", s.Item)
		}
		if s.T < 1 || s.T > p.T {
			return fmt.Errorf("diffusion: seed timing %d outside [1,%d]", s.T, p.T)
		}
	}
	if c := p.SeedCost(seeds); c > p.Budget+1e-9 {
		return fmt.Errorf("diffusion: seed cost %.3f exceeds budget %.3f", c, p.Budget)
	}
	return nil
}

package diffusion

import (
	"math"
	"runtime"
	"testing"

	"imdpp/internal/graph"
	"imdpp/internal/rng"
)

// goldenProblem is a fixed mid-size instance exercising every dynamic
// factor: heavy-tailed undirected graph, full DefaultParams (weighting
// updates, cross-elasticity, influence learning, item associations)
// and a 3-promotion campaign.
func goldenProblem(t testing.TB) *Problem {
	t.Helper()
	r := rng.New(0x60D)
	g := graph.BarabasiAlbert(60, 3, false, graph.WeightModel{Mean: 0.35, Jitter: 0.4}, r)
	imp := []float64{1, 0.5, 2, 1.25}
	return testProblem(t, g, func(u, x int) float64 {
		return 0.15 + 0.07*float64((u*7+x*13)%10)
	}, imp, 3, DefaultParams())
}

// TestRunBatchSigmaGolden pins the estimator output for a fixed
// (seed, M) to exact bit patterns. This is the determinism regression
// gate for the flat-memory hot path: the CSR graph fixes neighbour
// iteration order (sorted by target) and the sparse State must be an
// arithmetic no-op, so any change to these values means the RNG draw
// sequence or the float evaluation order moved — a contract break
// (DESIGN.md §3/§5), not a tuning change.
func TestRunBatchSigmaGolden(t *testing.T) {
	p := goldenProblem(t)
	e := NewEstimator(p, 48, 0xD1CE)
	groups := [][]Seed{
		{{User: 0, Item: 0, T: 1}},
		{{User: 1, Item: 2, T: 1}, {User: 5, Item: 1, T: 2}, {User: 9, Item: 3, T: 3}},
		{{User: 3, Item: 3, T: 2}, {User: 3, Item: 0, T: 1}},
	}
	ests := e.RunBatch(groups, nil)

	// Captured at the CSR graph layout with the dense (pre-sparse)
	// State; the State sparsification and every later PR must keep
	// them bit-identical.
	wantSigma := []uint64{
		0x4033e00000000000, // 19.875
		0x4044f20000000000, // 41.890625
		0x4041fa0000000000, // 35.953125
	}
	wantAdopt := []uint64{
		0x4039100000000000, // 25.0625
		0x40428aaaaaaaaaaa, // 37.08333333333333
		0x4041c80000000000, // 35.5625
	}
	// The bit patterns were captured on amd64. On architectures where
	// the compiler may fuse x*y+z into FMA (arm64, ppc64, ...) the
	// extra precision legally shifts Act/similarity rounding and with
	// it the Bernoulli outcomes, so the per-arch draw path differs;
	// there the values are only checked loosely. The determinism
	// contract (§3/§5) is per-build: same binary, same bits.
	exact := runtime.GOARCH == "amd64"
	for gi, est := range ests {
		t.Logf("group %d: sigma=%v bits=%#016x adoptions=%v bits=%#016x",
			gi, est.Sigma, math.Float64bits(est.Sigma), est.Adoptions, math.Float64bits(est.Adoptions))
		if exact {
			if math.Float64bits(est.Sigma) != wantSigma[gi] {
				t.Errorf("group %d: σ = %v (bits %#016x), want bits %#016x",
					gi, est.Sigma, math.Float64bits(est.Sigma), wantSigma[gi])
			}
			if math.Float64bits(est.Adoptions) != wantAdopt[gi] {
				t.Errorf("group %d: adoptions = %v (bits %#016x), want bits %#016x",
					gi, est.Adoptions, math.Float64bits(est.Adoptions), wantAdopt[gi])
			}
			continue
		}
		if want := math.Float64frombits(wantSigma[gi]); math.Abs(est.Sigma-want) > 0.15*want {
			t.Errorf("group %d: σ = %v far from amd64 golden %v", gi, est.Sigma, want)
		}
		if want := math.Float64frombits(wantAdopt[gi]); math.Abs(est.Adoptions-want) > 0.15*want {
			t.Errorf("group %d: adoptions = %v far from amd64 golden %v", gi, est.Adoptions, want)
		}
	}
}

package diffusion

import (
	"context"
	"testing"
	"time"
)

// TestSlotPoolBoundsRetention pins the slot-pool memory fix: a batch
// whose cascades ballooned the sparse per-item rows must not pin those
// backing arrays in the pool forever. putSlots trims any slot past
// maxRetainedSlotCap, so the retained footprint per slot is bounded no
// matter what the largest-ever cascade was.
func TestSlotPoolBoundsRetention(t *testing.T) {
	e := &Estimator{M: 4}

	s := e.getSlots()
	if len(s) != 4 {
		t.Fatalf("got %d slots, want M=4", len(s))
	}
	// a typical cascade stays pooled…
	s[0].items = make([]int32, 0, maxRetainedSlotCap)
	s[0].counts = make([]float64, 0, maxRetainedSlotCap)
	// …a pathological one is trimmed
	s[1].items = make([]int32, 0, maxRetainedSlotCap+1)
	s[1].counts = make([]float64, 0, 4*maxRetainedSlotCap)
	// oversizing either array drops both (they are parallel)
	s[2].counts = make([]float64, 0, 2*maxRetainedSlotCap)
	e.putSlots(s)

	r := e.getSlots()
	if &r[0] != &s[0] {
		t.Fatal("pool did not return the released slot array")
	}
	if cap(r[0].items) != maxRetainedSlotCap || cap(r[0].counts) != maxRetainedSlotCap {
		t.Fatalf("within-bound rows were trimmed: caps %d/%d", cap(r[0].items), cap(r[0].counts))
	}
	for i := 1; i <= 2; i++ {
		if r[i].items != nil || r[i].counts != nil {
			t.Fatalf("slot %d retained oversized rows: caps %d/%d",
				i, cap(r[i].items), cap(r[i].counts))
		}
	}
	for i := range r {
		if cap(r[i].items) > maxRetainedSlotCap || cap(r[i].counts) > maxRetainedSlotCap {
			t.Fatalf("slot %d retains cap beyond the %d bound", i, maxRetainedSlotCap)
		}
	}
}

// TestRunBatchSamplesPreemptedLazyAlloc pins the raw grid path's
// cancellation latency: rows materialize on first claim, so a batch
// preempted before it starts must return near-instantly with every
// unclaimed row still nil — not after eagerly allocating the full
// k × span grid (gigabytes at production MC counts, with no
// preemption point inside the allocation loop).
func TestRunBatchSamplesPreemptedLazyAlloc(t *testing.T) {
	p := batchProblem(t)
	e := &Estimator{P: p, M: 1 << 16, Seed: 42, Workers: 2}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.Bind(ctx)
	groups := make([][]Seed, 256)
	for g := range groups {
		groups[g] = []Seed{{User: g % p.NumUsers(), Item: g % p.NumItems(), T: 1}}
	}
	start := time.Now()
	out := e.runBatchSamplesRaw(groups, nil, nil, false, 0, e.M)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("preempted raw batch took %v, want near-instant return", elapsed)
	}
	allocated := 0
	for _, rows := range out {
		if rows != nil {
			allocated++
		}
	}
	// pre-cancelled: workers bail before claiming any unit, so no row
	// should have materialized (tolerate a race-window claim or two)
	if allocated > 4 {
		t.Fatalf("preempted batch allocated %d/256 group rows, want ~0 (eager allocation regressed)", allocated)
	}
}

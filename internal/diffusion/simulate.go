package diffusion

// Result accumulates the outcome of one simulated campaign.
type Result struct {
	// Sigma is the importance-weighted adoption count Σ w_x·n_x.
	Sigma float64
	// MarketSigma is Sigma restricted to users of the market mask
	// passed to RunCampaign (equal to Sigma when mask is nil).
	MarketSigma float64
	// PerItem is the unweighted adoption count per item.
	PerItem []float64
	// Adoptions is the total number of (user,item) adoptions.
	Adoptions int
	// Steps is the total number of diffusion steps over all promotions.
	Steps int
}

// RunCampaign simulates one realisation of the full T-promotion
// campaign for the seed group. market, when non-nil, marks the users
// whose adoptions count toward MarketSigma. The state must have been
// Reset with a fresh RNG stream. Results are accumulated into res.
func (st *State) RunCampaign(seeds []Seed, market []bool, res *Result) {
	p := st.p
	if res.PerItem == nil {
		res.PerItem = make([]float64, st.items)
	}
	if cap(st.byPromo) < p.T+1 {
		st.byPromo = make([][]Seed, p.T+1)
	}
	byPromo := st.byPromo[:p.T+1]
	for t := range byPromo {
		byPromo[t] = byPromo[t][:0]
	}
	for _, s := range seeds {
		byPromo[s.T] = append(byPromo[s.T], s)
	}
	for t := 1; t <= p.T; t++ {
		st.runPromotion(t, byPromo[t], market, res)
	}
}

// runPromotion executes promotion t: seed adoptions at ζ=0, then
// propagation steps until no new adoptions.
func (st *State) runPromotion(t int, seeds []Seed, market []bool, res *Result) {
	st.frontier = st.frontier[:0]
	// ζ = 0: seeded users newly adopt the promoted items.
	clearStep(st)
	for _, s := range seeds {
		if st.Adopted(s.User, s.Item) {
			// A re-seeded user promotes the already-adopted item to
			// neighbours again ("these nominees can still try to
			// promote their neighbors in the second promotion since
			// they are chosen as new seeds again", Lemma 1 proof) —
			// no new adoption is counted.
			st.frontier = append(st.frontier, adoptEvent{user: int32(s.User), item: int32(s.Item)})
			continue
		}
		st.adopt(s.User, s.Item, t, 0, TriggerSeed, market, res)
	}
	st.endOfStep()
	res.Steps++
	for step := 1; step <= st.p.Params.MaxSteps && len(st.frontier) > 0; step++ {
		st.nextFront = st.nextFront[:0]
		cur := st.frontier
		clearStep(st)
		for _, ev := range cur {
			st.propagateFrom(ev, t, step, market, res)
		}
		st.endOfStep()
		st.frontier, st.nextFront = st.nextFront, st.frontier
		res.Steps++
	}
}

// propagateFrom lets u′ (who newly adopted x last step) promote x to
// every friend who has not adopted it.
func (st *State) propagateFrom(ev adoptEvent, t, step int, market []bool, res *Result) {
	p := st.p
	uPrime := int(ev.user)
	x := int(ev.item)
	arcs := p.G.Out(uPrime)
	for ai, to := range arcs.To {
		u := int(to)
		if st.Adopted(u, x) {
			continue
		}
		pact := st.Act(uPrime, u, arcs.W[ai])
		prefX := st.Pref(u, x)
		// Purchase decision: influence strength × preference [51].
		if st.rngv.Bernoulli(pact * prefX) {
			st.adopt(u, x, t, step, TriggerPromotion, market, res)
		}
		// Item associations (Sec. V-A(4)): being promoted x may trigger
		// extra adoptions of relevant items regardless of the purchase
		// decision on x itself (footnote 9).
		if p.Params.Chi > 0 {
			base := p.Params.Chi * pact * prefX
			if base > 0 {
				row := p.PIN.Row(x)
				if p.Params.Static || !st.dirty[u] {
					// u's weights are still InitWeights (Reset leaves
					// clean rows initial; Static freezes them): the
					// cached init relevance is bit-identical to the
					// weighted evaluation, so the RNG stream advances
					// exactly as it would on the slow path
					init := p.PIN.InitRow(x)
					for j := range row {
						if st.Adopted(u, int(row[j].Y)) {
							continue
						}
						if rc := init[j].RC; rc > 0 && st.rngv.Bernoulli(base*rc) {
							st.adopt(u, int(row[j].Y), t, step, TriggerAssociation, market, res)
						}
					}
				} else {
					w := st.Weights(u)
					for _, pr := range row {
						if st.Adopted(u, int(pr.Y)) {
							continue
						}
						rc, _ := p.PIN.EvalContribs(w, pr.Contribs)
						if rc > 0 && st.rngv.Bernoulli(base*rc) {
							st.adopt(u, int(pr.Y), t, step, TriggerAssociation, market, res)
						}
					}
				}
			}
		}
	}
}

// adopt finalises an adoption: bookkeeping, σ accounting, frontier and
// per-step update queues, trace hook.
func (st *State) adopt(u, x, t, step int, trig AdoptTrigger, market []bool, res *Result) {
	st.markAdopted(u, x)
	w := st.p.Importance[x]
	res.Sigma += w
	if market == nil || market[u] {
		res.MarketSigma += w
	}
	res.PerItem[x]++
	res.Adoptions++
	if step == 0 {
		st.frontier = append(st.frontier, adoptEvent{user: int32(u), item: int32(x)})
	} else {
		st.nextFront = append(st.nextFront, adoptEvent{user: int32(u), item: int32(x)})
	}
	if st.stepStamp[u] != st.stepEpoch {
		st.stepStamp[u] = st.stepEpoch
		st.stepItems[u] = st.stepItems[u][:0]
		st.stepUsers = append(st.stepUsers, int32(u))
	}
	st.stepItems[u] = append(st.stepItems[u], int32(x))
	if st.OnAdopt != nil {
		st.OnAdopt(u, x, t, step, trig)
	}
}

// endOfStep applies the end-of-step factor updates (Sec. III): for
// every user with new adoptions this step, update the meta-graph
// weightings (relevance measurement) and then recompute preferences
// (preference estimation). Influence learning is evaluated lazily in
// Act from the updated adoption sets and weightings.
func (st *State) endOfStep() {
	if st.p.Params.Static {
		clearStep(st)
		return
	}
	for _, u := range st.stepUsers {
		newItems := st.stepItems[u]
		ints := st.intBuf[:0]
		for _, it := range newItems {
			ints = append(ints, int(it))
		}
		st.intBuf = ints
		w := st.Weights(int(u))
		st.p.PIN.UpdateWeights(w, ints, func(item int) bool {
			return st.Adopted(int(u), item)
		}, st.p.Params.Eta)
		st.recomputePref(int(u))
	}
	clearStep(st)
}

// clearStep retires the current step's new-adoption tracking by
// advancing the stamp epoch — O(users touched this step), no map
// deletes, no |V| sweep.
func clearStep(st *State) {
	st.stepUsers = st.stepUsers[:0]
	st.bumpEpoch()
}

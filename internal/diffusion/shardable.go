package diffusion

import (
	"sync"
	"sync/atomic"

	"imdpp/internal/obs"
	"imdpp/internal/rng"
)

// This file is the shardable face of the batch engine. The (group ×
// sample) grid of DESIGN.md §3 is partitionable by global sample index
// with zero accuracy cost: sample i of every group always draws from
// the stream Split(i) of the master generator, so *which process*
// simulates a sample cannot change its outcome. What is NOT free is
// the reduction: float64 addition is non-associative, so a shard must
// ship its raw per-sample outcomes — not pre-reduced partial sums —
// and the merger must fold them in global sample order 0..M-1 with the
// same accumulation arithmetic the single-process engine uses. That is
// exactly what RunBatchSamples (producer) and ReduceSampleGrid
// (merger) implement; DESIGN.md §7 states the full sharding contract.

// SampleResult is one Monte-Carlo sample's raw campaign outcome — the
// unit shipped between shard workers and the coordinator. Per-item
// adoptions are sparse (Items/Counts parallel, zero entries omitted),
// mirroring the engine's internal sampleSlot so the merged reduction
// is float-exact (x + 0 == x). The JSON field names are a stable wire
// contract of the shard estimator RPC.
type SampleResult struct {
	Sigma       float64   `json:"sigma"`
	MarketSigma float64   `json:"market_sigma"`
	Pi          float64   `json:"pi"`
	Adoptions   float64   `json:"adoptions"`
	Items       []int32   `json:"items,omitempty"`
	Counts      []float64 `json:"counts,omitempty"`
}

// RunBatchSamples simulates the global samples lo..hi-1 of every seed
// group and returns their raw outcomes, outer-indexed by group and
// inner-indexed by sample offset (result[g][i-lo] is sample i of group
// g). market is one shared mask (nil = all users); masks, when
// non-nil, overrides it with a per-group mask (masks[g] may be nil);
// withPi adds the future-adoption likelihood π per sample.
//
// Sample i draws from rng.New(e.Seed).Split(i) regardless of lo/hi, so
// a worker computing [lo,hi) produces bit-identical outcomes to the
// single-process engine's samples lo..hi-1 — the shard-safety half of
// the §3 determinism contract. No reduction happens here; outcomes are
// scheduled onto e.Workers goroutines in any order, which is safe
// precisely because each sample is written to its own slot.
//
// A bound, cancelled context (Bind) makes workers stop claiming units;
// as with the batch engine, the partial result is garbage and callers
// must check their context before trusting it.
//
// With a Grid cache attached, repeated (seed, [lo,hi), group) units
// are served from the cache and only the misses are simulated — the
// returned rows are then shared with the cache and must be treated as
// immutable.
func (e *Estimator) RunBatchSamples(groups [][]Seed, market []bool, masks [][]bool, withPi bool, lo, hi int) [][]SampleResult {
	sp := obs.StartSpan(e.ctx, "sample_batch")
	defer sp.End()
	sp.SetAttrInt("groups", int64(len(groups)))
	sp.SetAttrInt("lo", int64(lo))
	sp.SetAttrInt("hi", int64(hi))
	if e.Grid != nil {
		hits0 := e.gridHits.Load()
		grid := e.cachedSamples(groups, market, masks, withPi, lo, hi)
		sp.SetAttr("engine", "grid")
		sp.SetAttrInt("grid_hits", int64(e.gridHits.Load()-hits0))
		return grid
	}
	sp.SetAttr("engine", "raw")
	return e.runBatchSamplesRaw(groups, market, masks, withPi, lo, hi)
}

// runBatchSamplesRaw is the uncached simulation body of
// RunBatchSamples — the single entry point that actually runs
// campaigns for a sample grid, which is what keeps the cached path
// from ever consulting the cache recursively.
func (e *Estimator) runBatchSamplesRaw(groups [][]Seed, market []bool, masks [][]bool, withPi bool, lo, hi int) [][]SampleResult {
	k := len(groups)
	out := make([][]SampleResult, k)
	if k == 0 || hi <= lo {
		return out
	}
	maskOf := func(int) []bool { return market }
	if masks != nil {
		maskOf = func(g int) []bool { return masks[g] }
	}
	span := hi - lo
	master := rng.New(e.Seed)
	units := k * span

	w := e.workers()
	if w > units {
		w = units
	}
	var (
		next  int64
		rowMu sync.Mutex
	)
	// Rows materialize on first claim, not up front: at large k × span
	// the eager grid is gigabytes of allocation with no preemption
	// point, which is exactly the window a cancelled solve gets stuck
	// in. A preempted batch leaves unclaimed groups nil — the result is
	// declared garbage then anyway (callers must check their context).
	claim := func(g int) []SampleResult {
		rowMu.Lock()
		defer rowMu.Unlock()
		if out[g] == nil {
			out[g] = make([]SampleResult, span)
		}
		return out[g]
	}
	body := func() {
		st := e.getState()
		defer e.putState(st)
		var res Result
		res.PerItem = make([]float64, e.P.NumItems())
		// units are claimed group-major, so consecutive units usually
		// belong to one group; caching the last claim keeps the mutex
		// off the per-sample path
		lastG, lastRows := -1, []SampleResult(nil)
		for {
			if e.preempted() {
				return // cancelled: abandon between units
			}
			u := atomic.AddInt64(&next, 1) - 1
			if u >= int64(units) {
				return
			}
			g := int(u) / span
			i := lo + int(u)%span
			if g != lastG {
				lastG, lastRows = g, claim(g)
			}
			market := maskOf(g)
			e.runSample(st, &res, groups[g], market, i, master)
			slot := &lastRows[i-lo]
			slot.Sigma = res.Sigma
			slot.MarketSigma = res.MarketSigma
			slot.Adoptions = float64(res.Adoptions)
			for j, v := range res.PerItem {
				if v != 0 {
					slot.Items = append(slot.Items, int32(j))
					slot.Counts = append(slot.Counts, v)
				}
			}
			if withPi {
				slot.Pi = st.LikelihoodPi(market)
			}
		}
	}
	if w <= 1 {
		body()
	} else {
		var wg sync.WaitGroup
		for wi := 0; wi < w; wi++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				body()
			}()
		}
		wg.Wait()
	}
	e.samples.Add(uint64(units))
	return out
}

// ReduceSampleGrid folds a fully assembled per-sample grid (grid[g][i]
// is global sample i of group g; every row must hold all M samples in
// index order) into mean Estimates. The fold is the same left-to-right
// sample-order accumulation — Sigma, MarketSigma, Pi, Adoptions, then
// the sparse per-item entries, scaled by 1/M at the end — that the
// batch engine's internal reduction performs, so an Estimate merged
// from any partition of [0,M) into worker-computed ranges is
// bit-identical to the single-process RunBatch result.
func ReduceSampleGrid(grid [][]SampleResult, items int) []Estimate {
	k := len(grid)
	out := make([]Estimate, k)
	if k == 0 {
		return out
	}
	buf := make([]float64, k*items)
	for g := range out {
		acc := &out[g]
		acc.PerItem = buf[g*items : (g+1)*items : (g+1)*items]
		row := grid[g]
		for si := range row {
			s := &row[si]
			acc.Sigma += s.Sigma
			acc.MarketSigma += s.MarketSigma
			acc.Pi += s.Pi
			acc.Adoptions += s.Adoptions
			for jj, it := range s.Items {
				acc.PerItem[it] += s.Counts[jj]
			}
		}
		inv := 1 / float64(len(row))
		acc.Sigma *= inv
		acc.MarketSigma *= inv
		acc.Pi *= inv
		acc.Adoptions *= inv
		for j := range acc.PerItem {
			acc.PerItem[j] *= inv
		}
	}
	return out
}

package diffusion

import (
	"testing"
	"testing/quick"

	"imdpp/internal/graph"
	"imdpp/internal/rng"
)

// deterministicProblem builds an instance where every probability is 0
// or 1 and the dynamics are frozen (Lemma 1's regime), so σ is exact
// with a single sample and the coverage-function properties can be
// checked without Monte-Carlo tolerance.
func deterministicProblem(t *testing.T, seed uint64, T int) *Problem {
	t.Helper()
	r := rng.New(seed)
	n := 5 + r.Intn(4)
	gb := graph.NewBuilder(n, true)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && r.Float64() < 0.25 {
				gb.AddEdge(u, v, 1)
			}
		}
	}
	g := gb.Build()
	params := DefaultParams()
	params.Static = true
	params.Chi = 0
	return testProblem(t, g, func(u, x int) float64 {
		// deterministic per-(u,x) preference from a hash-like rule
		if (uint64(u*131+x*17)^seed)%3 == 0 {
			return 1
		}
		return 0
	}, nil, T, params)
}

func exactSigma(p *Problem, seeds []Seed) float64 {
	st := NewState(p)
	st.Reset(rng.New(1))
	var res Result
	res.PerItem = make([]float64, p.NumItems())
	st.RunCampaign(seeds, nil, &res)
	return res.Sigma
}

// TestSigmaSubmodularFrozen is the property-based check of Lemma 1:
// under probabilities frozen at the start (Static) the importance-
// aware influence function is submodular. On deterministic instances
// the inequality must hold exactly for every realisation.
func TestSigmaSubmodularFrozen(t *testing.T) {
	f := func(seedRaw uint16, pick [6]uint8, tRaw uint8) bool {
		seed := uint64(seedRaw) + 1
		T := 1 + int(tRaw%3)
		p := deterministicProblem(t, seed, T)
		// build a pool of candidate seeds and derive X ⊂ Y and e ∉ Y
		pool := make([]Seed, 0, 6)
		for i, pv := range pick {
			pool = append(pool, Seed{
				User: int(pv) % p.NumUsers(),
				Item: (int(pv) / 7) % p.NumItems(),
				T:    1 + (i % T),
			})
		}
		x := pool[:2]
		y := pool[:4]
		e := pool[5]
		// e must not already be in Y (same user+item+t)
		for _, s := range y {
			if s == e {
				return true // skip degenerate draw
			}
		}
		mX := exactSigma(p, append(append([]Seed(nil), x...), e)) - exactSigma(p, x)
		mY := exactSigma(p, append(append([]Seed(nil), y...), e)) - exactSigma(p, y)
		return mY <= mX+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSigmaMonotoneSinglePromotionFrozen: with a single promotion and
// frozen probabilities, σ is monotone increasing (first paragraph of
// Lemma 1's proof).
func TestSigmaMonotoneSinglePromotionFrozen(t *testing.T) {
	f := func(seedRaw uint16, pick [5]uint8) bool {
		seed := uint64(seedRaw) + 1
		p := deterministicProblem(t, seed, 1)
		var cur []Seed
		prev := 0.0
		for _, pv := range pick {
			cur = append(cur, Seed{
				User: int(pv) % p.NumUsers(),
				Item: (int(pv) / 5) % p.NumItems(),
				T:    1,
			})
			s := exactSigma(p, cur)
			if s < prev-1e-9 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSigmaSeedOrderIrrelevant: σ depends on the seed group, not the
// slice order.
func TestSigmaSeedOrderIrrelevant(t *testing.T) {
	p := deterministicProblem(t, 99, 2)
	seeds := []Seed{
		{User: 0, Item: 0, T: 1},
		{User: 1, Item: 1, T: 2},
		{User: 2, Item: 2, T: 1},
	}
	perm := []Seed{seeds[2], seeds[0], seeds[1]}
	if a, b := exactSigma(p, seeds), exactSigma(p, perm); a != b {
		t.Fatalf("order-dependent σ: %v vs %v", a, b)
	}
}

// TestSigmaNonNegativeBounded: σ of any seed group is within
// [0, Σ_u Σ_x w_x].
func TestSigmaNonNegativeBounded(t *testing.T) {
	f := func(seedRaw uint16, pick [4]uint8) bool {
		p := deterministicProblem(t, uint64(seedRaw)+1, 2)
		var seeds []Seed
		for _, pv := range pick {
			seeds = append(seeds, Seed{
				User: int(pv) % p.NumUsers(),
				Item: (int(pv) / 3) % p.NumItems(),
				T:    1 + int(pv)%2,
			})
		}
		s := exactSigma(p, seeds)
		maxSigma := 0.0
		for _, w := range p.Importance {
			maxSigma += w * float64(p.NumUsers())
		}
		return s >= 0 && s <= maxSigma+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

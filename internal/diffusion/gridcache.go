package diffusion

// This file is the estimator's sample-grid memoization hook
// (DESIGN.md §10). The §3 determinism contract makes every (group ×
// sample-range) grid a pure function of (problem, master seed, sample
// indices, seed group, market mask, withPi) — so a cache keyed by
// exactly those coordinates can substitute stored raw outcomes for
// re-simulation with zero accuracy loss. The estimator stays agnostic
// of the cache's policy (bounds, eviction, disk spill, key encoding):
// it only speaks the Begin/Commit/Abort/Wait protocol below.
// internal/gridcache provides the implementation; the interface lives
// here because gridcache imports diffusion and not vice versa.

// GridCache memoizes raw per-sample outcome grids for evaluation
// groups. Begin resolves one (seed, [lo,hi), group, market, withPi)
// unit: a hit returns the stored rows and a nil ticket; a miss returns
// a ticket that is either owned (this caller must simulate the rows
// and Commit them — or Abort on cancellation) or joined (another
// caller is already simulating the same unit; Wait for its rows).
// (nil, nil) means the cache declined the unit — simulate without
// obligations. Returned rows are shared and must never be mutated.
type GridCache interface {
	Begin(seed uint64, lo, hi int, seeds []Seed, market []bool, withPi bool) ([]SampleResult, GridTicket)
}

// GridTicket is one in-flight cache reservation. Exactly one caller
// per key owns the flight; owners must settle it with Commit or Abort
// (never both), joiners hold no obligations and just Wait.
type GridTicket interface {
	// Owned reports whether this caller must produce the rows.
	Owned() bool
	// Commit publishes the simulated rows (owner only). The rows are
	// retained by the cache and must not be mutated afterwards.
	Commit(rows []SampleResult)
	// Abort cancels an owned flight without publishing (preemption);
	// waiters are released empty-handed and the next Begin retries.
	Abort()
	// Wait blocks until the owning flight settles or stop fires,
	// returning the committed rows, or ok=false when the flight
	// aborted or stop fired first.
	Wait(stop <-chan struct{}) ([]SampleResult, bool)
}

// GridStats reports how many group evaluations this estimator served
// from the attached grid cache and how many campaign simulations that
// avoided — the per-solve view behind core.Stats.GridHits /
// SamplesSaved (the cache's own Stats aggregate across estimators).
func (e *Estimator) GridStats() (hits, samplesSaved uint64) {
	return e.gridHits.Load(), e.gridSaved.Load()
}

// gridServed counts one cache-served group spanning the sample range.
func (e *Estimator) gridServed(span int) {
	e.gridHits.Add(1)
	e.gridSaved.Add(uint64(span))
}

// cachedSamples is the memoizing front of RunBatchSamples. The
// protocol is deadlock-free by construction: phase 1 reserves every
// group non-blocking, phase 2 simulates all owned misses as one raw
// sub-batch and commits them, and only phase 3 waits on flights owned
// by other callers — an owner never blocks on a foreign flight before
// settling its own, so two batches with interleaved ownership cannot
// wait on each other. A joined flight that aborts (its owner was
// preempted) degrades to a local single-group simulation.
func (e *Estimator) cachedSamples(groups [][]Seed, market []bool, masks [][]bool, withPi bool, lo, hi int) [][]SampleResult {
	k := len(groups)
	out := make([][]SampleResult, k)
	if k == 0 || hi <= lo {
		return out
	}
	if e.preempted() {
		// Match the raw path's cancellation latency: without this, a
		// cancelled solve that keeps hitting the cache keeps *making
		// progress* — hits return instantly and never reach the
		// per-unit preemption checks inside the simulation body.
		return out
	}
	maskFor := func(g int) []bool {
		if masks != nil {
			return masks[g]
		}
		return market
	}
	span := hi - lo
	tickets := make([]GridTicket, k)
	var owned, joined []int
	for g := 0; g < k; g++ {
		rows, t := e.Grid.Begin(e.Seed, lo, hi, groups[g], maskFor(g), withPi)
		if rows != nil {
			out[g] = rows
			e.gridServed(span)
			continue
		}
		tickets[g] = t
		if t == nil || t.Owned() {
			owned = append(owned, g)
		} else {
			joined = append(joined, g)
		}
	}
	if len(owned) > 0 {
		sub := make([][]Seed, len(owned))
		subMasks := make([][]bool, len(owned))
		for i, g := range owned {
			sub[i] = groups[g]
			subMasks[i] = maskFor(g)
		}
		rows := e.runBatchSamplesRaw(sub, nil, subMasks, withPi, lo, hi)
		cancelled := e.preempted()
		for i, g := range owned {
			out[g] = rows[i]
			if t := tickets[g]; t != nil {
				if cancelled {
					// never publish garbage: a preempted batch's rows are
					// partial and must not enter the cache
					t.Abort()
				} else {
					t.Commit(rows[i])
				}
			}
		}
	}
	for _, g := range joined {
		if rows, ok := tickets[g].Wait(e.done); ok {
			out[g] = rows
			e.gridServed(span)
			continue
		}
		out[g] = e.runBatchSamplesRaw([][]Seed{groups[g]}, nil, [][]bool{maskFor(g)}, withPi, lo, hi)[0]
	}
	return out
}

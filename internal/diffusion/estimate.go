package diffusion

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"imdpp/internal/rng"
)

// Estimate is the Monte-Carlo estimate of σ and π for a seed group.
// The JSON field names are a stable wire contract (imdppd, -json).
type Estimate struct {
	Sigma       float64   `json:"sigma"`        // importance-aware influence (Def. 1)
	MarketSigma float64   `json:"market_sigma"` // σ restricted to the market mask
	Pi          float64   `json:"pi"`           // future-adoption likelihood (Eq. 13) over the market
	PerItem     []float64 `json:"per_item"`     // mean unweighted adoptions per item
	Adoptions   float64   `json:"adoptions"`    // mean total adoptions
}

// Estimator evaluates σ by Monte-Carlo simulation (footnote 12: σ is
// estimated by simulating the diffusion M times). It is safe for
// sequential reuse; Concurrent evaluation happens internally across
// workers with deterministic per-sample RNG streams. All evaluation —
// single (Run) and batched (RunBatch and friends) — goes through the
// batch engine in batch.go, which shares common random numbers across
// the groups of a batch and reduces samples in a fixed order, so every
// Estimate is a pure function of (Seed, M) regardless of Workers. It
// is the reference implementation of the solver's estimation-backend
// interface (core.Estimator); internal/shard provides the distributed
// one, built on RunBatchSamples/ReduceSampleGrid (shardable.go).
type Estimator struct {
	P       *Problem
	M       int // samples per estimate
	Seed    uint64
	Workers int // 0 → GOMAXPROCS

	// Grid, when non-nil, memoizes raw per-sample outcome grids per
	// evaluation group (DESIGN.md §10): runBatch and RunBatchSamples
	// serve repeated (seed, sample-range, group) units from the cache
	// instead of re-simulating, bit-identically — the reduction of a
	// cached grid is the same canonical sample-order fold. Attach via
	// gridcache.Cache.View; must not change mid-evaluation.
	Grid GridCache

	mu       sync.Mutex
	states   []*State
	slotFree [][]sampleSlot

	samples   atomic.Uint64 // campaigns simulated, for throughput stats
	gridHits  atomic.Uint64 // groups served by Grid instead of simulated
	gridSaved atomic.Uint64 // campaign simulations those hits avoided

	// done, when non-nil, preempts the batch engine: workers stop
	// claiming (group × sample) units once the channel is closed. Set
	// via Bind; see the cancellation note on that method.
	done <-chan struct{}

	// ctx is the bound context, kept for trace-span extraction
	// (obs.SpanFromContext); like done it never influences results.
	ctx context.Context
}

// NewEstimator creates an estimator with M samples and master seed.
func NewEstimator(p *Problem, m int, seed uint64) *Estimator {
	if m < 1 {
		m = 1
	}
	return &Estimator{P: p, M: m, Seed: seed}
}

// Bind attaches a cancellation context to the estimator. Once ctx is
// cancelled, in-flight and future batch evaluations stop claiming new
// (group × sample) work units and return promptly — within about one
// campaign simulation. Results produced after cancellation are
// partial garbage; callers must check ctx.Err() before trusting an
// Estimate. Binding context.Background() (or never binding) disables
// preemption. Bind must not be called concurrently with evaluation.
func (e *Estimator) Bind(ctx context.Context) {
	e.done = ctx.Done()
	e.ctx = ctx
}

// preempted reports whether a bound context has been cancelled. It is
// a non-blocking channel poll, cheap enough for the per-unit hot path.
func (e *Estimator) preempted() bool {
	if e.done == nil {
		return false
	}
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Reseed changes the master seed for subsequent estimates. Greedy
// selection loops reseed between rounds so the positive bias of the
// round's winning (max-over-candidates) estimate does not persist into
// the next round's baseline — the "winner's curse" stall of greedy
// maximisation with a fixed deterministic Monte-Carlo oracle.
func (e *Estimator) Reseed(seed uint64) { e.Seed = seed }

// workers resolves the configured pool size; the batch engine caps it
// further at the number of (group × sample) work units.
func (e *Estimator) workers() int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// getState borrows a pooled state (allocating on demand).
func (e *Estimator) getState() *State {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.states); n > 0 {
		st := e.states[n-1]
		e.states = e.states[:n-1]
		return st
	}
	return NewState(e.P)
}

func (e *Estimator) putState(st *State) {
	e.mu.Lock()
	e.states = append(e.states, st)
	e.mu.Unlock()
}

// StateBytes returns the largest retained memory footprint across the
// estimator's pooled worker states — the per-worker cost of the
// sampling hot path. With the sparse State layout this scales with
// the largest cascade simulated, not with |V|·|I|.
func (e *Estimator) StateBytes() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	var max uint64
	for _, st := range e.states {
		if b := st.MemoryFootprint(); b > max {
			max = b
		}
	}
	return max
}

// Sigma returns the Monte-Carlo estimate of σ(S).
func (e *Estimator) Sigma(seeds []Seed) float64 {
	est := e.Run(seeds, nil, false)
	return est.Sigma
}

// Run estimates σ (and π over market when withPi) for the seed group.
// market may be nil, meaning all users. The estimate is deterministic
// for a fixed Estimator seed and M, and independent of Workers and
// GOMAXPROCS (sample i always uses stream Split(i), and samples are
// reduced in index order). Run is the single-group case of the batch
// engine, so it is bit-identical to RunBatch on a one-element batch.
func (e *Estimator) Run(seeds []Seed, market []bool, withPi bool) Estimate {
	return e.runBatch([][]Seed{seeds}, func(int) []bool { return market }, withPi)[0]
}

// MeanWeights runs the campaign M times and returns the expected
// meta-graph weighting vector averaged over the given users at the end
// of the campaign — the "expectation of the personal item network"
// step of the paper's Example 2 (Fig. 6(c)), aggregated over a target
// market's users. DRE derives r̄C/r̄S from this vector; relevance is
// linear in the weights (up to clamping), so averaging the weights
// first is equivalent to averaging per-user relevance.
func (e *Estimator) MeanWeights(seeds []Seed, users []int) []float64 {
	master := rng.New(e.Seed ^ 0x5bd1e995)
	st := e.getState()
	defer e.putState(st)
	nm := e.P.PIN.NumMeta()
	acc := make([]float64, nm)
	var res Result
	res.PerItem = make([]float64, e.P.NumItems())
	for i := 0; i < e.M; i++ {
		if e.preempted() {
			break // cancelled: the caller checks ctx before trusting acc
		}
		st.Reset(master.Split(uint64(i)))
		res.Sigma, res.MarketSigma, res.Adoptions, res.Steps = 0, 0, 0, 0
		st.RunCampaign(seeds, nil, &res)
		e.samples.Add(1)
		for _, u := range users {
			w := st.Weights(u)
			for j := 0; j < nm; j++ {
				acc[j] += w[j]
			}
		}
	}
	denom := float64(e.M) * float64(len(users))
	if denom == 0 {
		copy(acc, e.P.PIN.InitWeights)
		return acc
	}
	for j := range acc {
		acc[j] /= denom
	}
	return acc
}

// LikelihoodPi evaluates Eq. 13 on the current (post-campaign) state:
// the total likelihood of the market's users adopting their
// not-yet-adopted items in the next promotion,
//
//	π = Σ_{v∈τ} Σ_{y∉A(v)} AIS(v,y) · Ppref(v,y)
//
// AIS aggregates influence from in-neighbours who have adopted y
// (IC: 1−Π(1−Pact); LT: ΣPact clamped).
func (st *State) LikelihoodPi(market []bool) float64 {
	p := st.p
	oneMinus := make([]float64, st.items)
	sum := make([]float64, st.items)
	touched := make([]int32, 0, 32)
	total := 0.0
	for v := 0; v < p.NumUsers(); v++ {
		if market != nil && !market[v] {
			continue
		}
		touched = touched[:0]
		arcs := p.G.In(v)
		for ai, from := range arcs.To {
			vp := int(from)
			lst := st.adoptList[vp]
			if len(lst) == 0 {
				continue
			}
			pact := st.Act(vp, v, arcs.W[ai])
			for _, y := range lst {
				if oneMinus[y] == 0 && sum[y] == 0 {
					oneMinus[y] = 1
					touched = append(touched, y)
				}
				oneMinus[y] *= 1 - pact
				sum[y] += pact
			}
		}
		for _, y := range touched {
			if !st.Adopted(v, int(y)) {
				var ais float64
				if p.Params.AIS == AISLinearThreshold {
					ais = sum[y]
					if ais > 1 {
						ais = 1
					}
				} else {
					ais = 1 - oneMinus[y]
				}
				total += ais * st.Pref(v, int(y))
			}
			oneMinus[y] = 0
			sum[y] = 0
		}
	}
	return total
}

package diffusion

import "fmt"

// Matrix is the per-(user,item) scalar table behind Problem.BasePref
// and Problem.Cost. It is an accessor type: callers address cells by
// (user, item) and never see the storage, so the dense row-major
// backing used today is an implementation detail — a sharded or
// memory-mapped backend can replace it without touching consumers.
//
// The zero Matrix is empty (0×0). Matrix values share their backing
// when copied, like slices.
type Matrix struct {
	cols int
	data []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) Matrix {
	return Matrix{cols: cols, data: make([]float64, rows*cols)}
}

// MatrixFrom wraps an existing row-major slice as a matrix with the
// given number of columns, without copying. It panics when the slice
// does not divide evenly into rows.
func MatrixFrom(data []float64, cols int) Matrix {
	if cols <= 0 {
		panic("diffusion: MatrixFrom needs cols > 0")
	}
	if len(data)%cols != 0 {
		panic(fmt.Sprintf("diffusion: MatrixFrom len %d not divisible by cols %d", len(data), cols))
	}
	return Matrix{cols: cols, data: data}
}

// Rows returns the number of rows.
func (m Matrix) Rows() int {
	if m.cols == 0 {
		return 0
	}
	return len(m.data) / m.cols
}

// Cols returns the number of columns.
func (m Matrix) Cols() int { return m.cols }

// At returns the cell (r, c).
func (m Matrix) At(r, c int) float64 { return m.data[r*m.cols+c] }

// Set stores v into the cell (r, c).
func (m Matrix) Set(r, c int, v float64) { m.data[r*m.cols+c] = v }

// Row returns a mutable view of row r. Dataset generators fill
// matrices through row views; the diffusion engine only reads.
func (m Matrix) Row(r int) []float64 { return m.data[r*m.cols : (r+1)*m.cols] }

// Data returns the row-major backing slice without copying — the wire
// codec of the shard subsystem serialises matrices through it. The
// view must be treated as read-only by anyone other than the matrix's
// creator.
func (m Matrix) Data() []float64 { return m.data }

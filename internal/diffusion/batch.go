package diffusion

import (
	"sync"
	"sync/atomic"

	"imdpp/internal/obs"
	"imdpp/internal/rng"
)

// This file is the batch evaluation engine. Every estimate — single or
// batched — funnels through runBatch, which schedules (group × sample)
// work units onto one worker pool kept alive for the whole batch, so a
// universe of K candidates pays the orchestration cost once instead of
// K times. Sample i of every group draws from the stream Split(i) of
// the same master generator — common random numbers — so marginal-gain
// comparisons across candidates in a greedy round are paired: the
// noise realisation is shared and differences reflect the candidates,
// not the draw. Per-group results are reduced in sample order 0..M-1,
// which makes every Estimate a pure function of (master seed, M),
// independent of worker count and GOMAXPROCS. DESIGN.md §3 states the
// full contract.

// sampleSlot holds one sample's raw campaign outcome until the group's
// deterministic reduction. Per-item adoptions are stored sparsely —
// cascades touch few items, and skipping the zero entries during
// reduction leaves every float64 sum bit-identical (x + 0 == x).
type sampleSlot struct {
	sigma, msigma, pi, adopt float64
	items                    []int32   // items with nonzero adoptions
	counts                   []float64 // parallel adoption counts
}

// groupRun is the in-flight accumulator of one group. Groups are
// claimed group-major, so at most ~workers groups are in flight and
// slot arrays can be pooled instead of allocated per group.
type groupRun struct {
	slots     []sampleSlot
	remaining int32
}

// getSlots borrows a pooled per-sample slot array (len M).
func (e *Estimator) getSlots() []sampleSlot {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.slotFree); n > 0 {
		s := e.slotFree[n-1]
		e.slotFree = e.slotFree[:n-1]
		return s
	}
	return make([]sampleSlot, e.M)
}

// maxRetainedSlotCap bounds the sparse-row capacity a pooled slot may
// keep between batches. Slot backing arrays grow to the largest
// cascade they ever recorded, and the pool lives as long as the
// estimator — without a bound, one pathological batch would pin
// (workers × M × largest-cascade) memory for the estimator's lifetime.
// 1024 entries (~12 KiB per slot) covers typical cascades; rarer giant
// ones just reallocate.
const maxRetainedSlotCap = 1024

func (e *Estimator) putSlots(s []sampleSlot) {
	for i := range s {
		if cap(s[i].items) > maxRetainedSlotCap || cap(s[i].counts) > maxRetainedSlotCap {
			s[i].items = nil
			s[i].counts = nil
		}
	}
	e.mu.Lock()
	e.slotFree = append(e.slotFree, s)
	e.mu.Unlock()
}

// RunBatch estimates σ for every seed group under one shared market
// mask (nil = all users). It is the batched equivalent of calling Run
// per group and returns bit-identical Estimates: sample i of group g
// always uses stream Split(i), and per-group reduction is in sample
// order, so the result is deterministic in (Seed, M) and independent
// of Workers.
func (e *Estimator) RunBatch(groups [][]Seed, market []bool) []Estimate {
	return e.runBatch(groups, func(int) []bool { return market }, false)
}

// RunBatchPi is RunBatch with the future-adoption likelihood π
// (Eq. 13) evaluated over the market for every group.
func (e *Estimator) RunBatchPi(groups [][]Seed, market []bool) []Estimate {
	return e.runBatch(groups, func(int) []bool { return market }, true)
}

// RunBatchMasked estimates each group under its own market mask
// (masks[g] may be nil). withPi adds the π estimate per group.
func (e *Estimator) RunBatchMasked(groups [][]Seed, masks [][]bool, withPi bool) []Estimate {
	return e.runBatch(groups, func(g int) []bool { return masks[g] }, withPi)
}

// SigmaBatch returns the σ estimate of every seed group.
func (e *Estimator) SigmaBatch(groups [][]Seed) []float64 {
	ests := e.RunBatch(groups, nil)
	out := make([]float64, len(ests))
	for i, est := range ests {
		out[i] = est.Sigma
	}
	return out
}

// SamplesDone reports how many Monte-Carlo campaign simulations this
// estimator has run, for throughput (samples/sec) accounting.
func (e *Estimator) SamplesDone() uint64 { return e.samples.Load() }

// runBatch is the engine. maskOf(g) yields group g's market mask.
func (e *Estimator) runBatch(groups [][]Seed, maskOf func(int) []bool, withPi bool) []Estimate {
	k := len(groups)
	out := make([]Estimate, k)
	if k == 0 {
		return out
	}
	// tracing is observation only (DESIGN.md §11): the span records the
	// engine choice and unit counts after the fact, it never picks them
	sp := obs.StartSpan(e.ctx, "sigma_batch")
	defer sp.End()
	sp.SetAttrInt("groups", int64(k))
	sp.SetAttrInt("samples", int64(e.M))
	if e.Grid != nil {
		sp.SetAttr("engine", "grid")
		// memoized path (DESIGN.md §10): resolve the full sample range
		// through the grid cache and reduce with the same canonical
		// sample-order fold the slot path uses — ReduceSampleGrid over
		// RunBatchSamples is golden-pinned bit-identical to the direct
		// engine, so cache-on results equal cache-off results exactly.
		masks := make([][]bool, k)
		for g := range masks {
			masks[g] = maskOf(g)
		}
		grid := e.cachedSamples(groups, nil, masks, withPi, 0, e.M)
		return ReduceSampleGrid(grid, e.P.NumItems())
	}
	m := e.M
	units := k * m
	master := rng.New(e.Seed)
	// one backing array for every group's PerItem keeps a large batch
	// from scattering k small allocations
	items := e.P.NumItems()
	buf := make([]float64, k*items)
	for g := range out {
		out[g].PerItem = buf[g*items : (g+1)*items : (g+1)*items]
	}

	w := e.workers()
	if w > units {
		w = units
	}
	if w <= 1 {
		// Single-worker fast path: units run in exact (group, sample)
		// order, so samples accumulate straight into the output with no
		// slots, atomics or locks. The addition order is identical to
		// the pooled path's per-group reduction, so results stay
		// bit-identical across worker counts.
		sp.SetAttr("engine", "serial")
		e.runSerial(groups, maskOf, withPi, master, out)
		return out
	}
	sp.SetAttr("engine", "slots")
	sp.SetAttrInt("workers", int64(w))

	var (
		next int64
		mu   sync.Mutex
		runs = make([]*groupRun, k)
	)
	claim := func(g int) *groupRun {
		mu.Lock()
		defer mu.Unlock()
		if runs[g] == nil {
			runs[g] = &groupRun{slots: e.getSlots(), remaining: int32(m)}
		}
		return runs[g]
	}
	worker := func() {
		st := e.getState()
		defer e.putState(st)
		var res Result
		res.PerItem = make([]float64, e.P.NumItems())
		// units are claimed group-major, so consecutive units usually
		// belong to one group; caching the last claim keeps the mutex
		// off the per-sample path
		lastG, lastRun := -1, (*groupRun)(nil)
		for {
			if e.preempted() {
				return // cancelled: abandon the batch between units
			}
			u := atomic.AddInt64(&next, 1) - 1
			if u >= int64(units) {
				return
			}
			g := int(u) / m
			i := int(u) % m
			if g != lastG {
				lastG, lastRun = g, claim(g)
			}
			gr := lastRun
			slot := &gr.slots[i]
			market := maskOf(g)
			e.runSample(st, &res, groups[g], market, i, master)
			slot.sigma = res.Sigma
			slot.msigma = res.MarketSigma
			slot.adopt = float64(res.Adoptions)
			slot.items = slot.items[:0]
			slot.counts = slot.counts[:0]
			for j, v := range res.PerItem {
				if v != 0 {
					slot.items = append(slot.items, int32(j))
					slot.counts = append(slot.counts, v)
				}
			}
			if withPi {
				slot.pi = st.LikelihoodPi(market)
			} else {
				slot.pi = 0
			}
			if atomic.AddInt32(&gr.remaining, -1) == 0 {
				e.reduce(gr.slots, &out[g])
				mu.Lock()
				runs[g] = nil
				mu.Unlock()
				e.putSlots(gr.slots)
			}
		}
	}

	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	wg.Wait()
	e.samples.Add(uint64(units))
	return out
}

// runSample simulates sample i of one group into res.
func (e *Estimator) runSample(st *State, res *Result, seeds []Seed, market []bool, i int, master *rng.Rand) {
	st.Reset(master.Split(uint64(i)))
	res.Sigma, res.MarketSigma, res.Adoptions, res.Steps = 0, 0, 0, 0
	for j := range res.PerItem {
		res.PerItem[j] = 0
	}
	st.RunCampaign(seeds, market, res)
}

// runSerial is the lock-free one-worker engine body. out's PerItem
// slices must be preallocated and zeroed.
func (e *Estimator) runSerial(groups [][]Seed, maskOf func(int) []bool, withPi bool, master *rng.Rand, out []Estimate) {
	st := e.getState()
	defer e.putState(st)
	m := e.M
	items := e.P.NumItems()
	var res Result
	res.PerItem = make([]float64, items)
	inv := 1 / float64(m)
	for g := range groups {
		market := maskOf(g)
		acc := &out[g]
		for i := 0; i < m; i++ {
			if e.preempted() {
				return // cancelled: abandon the batch between samples
			}
			e.runSample(st, &res, groups[g], market, i, master)
			acc.Sigma += res.Sigma
			acc.MarketSigma += res.MarketSigma
			acc.Adoptions += float64(res.Adoptions)
			for j, v := range res.PerItem {
				if v != 0 {
					acc.PerItem[j] += v
				}
			}
			if withPi {
				acc.Pi += st.LikelihoodPi(market)
			}
		}
		acc.Sigma *= inv
		acc.MarketSigma *= inv
		acc.Pi *= inv
		acc.Adoptions *= inv
		for j := range acc.PerItem {
			acc.PerItem[j] *= inv
		}
	}
	e.samples.Add(uint64(len(groups) * m))
}

// reduce folds a group's per-sample slots into the mean Estimate, in
// sample order so the float64 rounding is schedule-independent. out's
// PerItem slice must be preallocated and zeroed.
func (e *Estimator) reduce(slots []sampleSlot, out *Estimate) {
	for si := range slots {
		s := &slots[si]
		out.Sigma += s.sigma
		out.MarketSigma += s.msigma
		out.Pi += s.pi
		out.Adoptions += s.adopt
		for jj, it := range s.items {
			out.PerItem[it] += s.counts[jj]
		}
	}
	inv := 1 / float64(e.M)
	out.Sigma *= inv
	out.MarketSigma *= inv
	out.Pi *= inv
	out.Adoptions *= inv
	for j := range out.PerItem {
		out.PerItem[j] *= inv
	}
}

package diffusion

import (
	"fmt"

	"imdpp/internal/wirebin"
)

// Binary codec of the per-sample outcome grid — the hot path of the
// shard estimator RPC (DESIGN.md §8). A SampleResult is mostly small
// integers in float64 clothing (per-item adoption counts of a single
// campaign, the adoption total) plus a handful of genuine floats (σ,
// market σ, π); the wirebin compact float makes the integers 2 bytes
// and keeps the floats bit-exact, and the sparse item ids — appended
// in ascending item order by RunBatchSamples — encode as ascending
// deltas. Shipping the grid binary instead of JSON changes no decoded
// bit, so the §7 merge contract (per-sample shipping + canonical
// fold) is untouched; the golden tests in internal/shard pin that.

// AppendSampleGrid appends the binary image of a (group × sample)
// outcome grid to b. Rows may have differing lengths (each carries its
// own span), matching the EstimateResponse JSON shape exactly.
func AppendSampleGrid(b []byte, grid [][]SampleResult) []byte {
	b = wirebin.AppendUvarint(b, uint64(len(grid)))
	for _, row := range grid {
		b = wirebin.AppendUvarint(b, uint64(len(row)))
		for i := range row {
			s := &row[i]
			b = wirebin.AppendFloat(b, s.Sigma)
			b = wirebin.AppendFloat(b, s.MarketSigma)
			b = wirebin.AppendFloat(b, s.Pi)
			b = wirebin.AppendFloat(b, s.Adoptions)
			b = wirebin.AppendAscInt32s(b, s.Items)
			for _, c := range s.Counts {
				b = wirebin.AppendFloat(b, c)
			}
		}
	}
	return b
}

// DecodeSampleGrid reads a grid written by AppendSampleGrid. Counts
// reuse the Items length (the two slices are parallel by the
// SampleResult contract), so a decoded sample can never carry the
// items/counts length mismatch the coordinator's validateSamples
// guards against on the JSON path.
func DecodeSampleGrid(r *wirebin.Reader) ([][]SampleResult, error) {
	k := r.Count(1)
	if r.Err() != nil {
		return nil, fmt.Errorf("diffusion: decode sample grid: %w", r.Err())
	}
	grid := make([][]SampleResult, k)
	for g := range grid {
		span := r.Count(8) // 4 compact floats + items count ≥ 8 bytes each
		if r.Err() != nil {
			return nil, fmt.Errorf("diffusion: decode sample grid: %w", r.Err())
		}
		row := make([]SampleResult, span)
		for i := range row {
			s := &row[i]
			s.Sigma = r.Float()
			s.MarketSigma = r.Float()
			s.Pi = r.Float()
			s.Adoptions = r.Float()
			s.Items = r.AscInt32s()
			if len(s.Items) > 0 {
				if r.Err() != nil {
					return nil, fmt.Errorf("diffusion: decode sample grid: %w", r.Err())
				}
				s.Counts = make([]float64, len(s.Items))
				for j := range s.Counts {
					s.Counts[j] = r.Float()
				}
			}
		}
		grid[g] = row
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("diffusion: decode sample grid: %w", err)
	}
	return grid, nil
}

package diffusion

import (
	"math"
	"math/bits"

	"imdpp/internal/rng"
)

// State is the mutable per-sample simulation state: adoption sets,
// per-user meta-graph weightings, preference deltas. One State is
// reused across Monte-Carlo samples by each worker; Reset restores
// initial conditions touching only the rows dirtied by the previous
// sample, which keeps per-sample overhead proportional to cascade size
// rather than |V|·|I|.
type State struct {
	p     *Problem
	items int
	words int // bitset words per user

	adopted   []uint64  // [u*words .. ) adoption bitset
	adoptList [][]int32 // per user, adopted items in adoption order
	wmeta     []float64 // [u*numMeta .. ) meta-graph weightings
	prefDelta []float64 // [u*items .. ) Σ λ(rC−rS) contribution
	dirty     []bool    // user rows needing reset
	touched   []int32   // dirty user list
	rngv      rng.Rand  // sample stream, copied in by Reset

	// scratch
	frontier  []adoptEvent
	nextFront []adoptEvent
	stepNew   map[int32][]int32 // user -> items newly adopted this step
	stepUsers []int32
	byPromo   [][]Seed // per-promotion seed partition, reused across samples
	intBuf    []int    // reusable buffer for endOfStep's new-item lists

	// trace hook for case studies; nil on the hot path.
	OnAdopt func(user, item, promo, step int, trigger AdoptTrigger)
}

// AdoptTrigger says why an adoption happened.
type AdoptTrigger uint8

// Adoption causes.
const (
	TriggerSeed        AdoptTrigger = iota // seeded at ζ=0
	TriggerPromotion                       // friend promotion succeeded
	TriggerAssociation                     // item-association extra adoption
)

func (t AdoptTrigger) String() string {
	switch t {
	case TriggerSeed:
		return "seed"
	case TriggerPromotion:
		return "promotion"
	default:
		return "association"
	}
}

type adoptEvent struct {
	user int32
	item int32
}

// NewState allocates a state for problem p.
func NewState(p *Problem) *State {
	n := p.NumUsers()
	items := p.NumItems()
	words := (items + 63) / 64
	st := &State{
		p:         p,
		items:     items,
		words:     words,
		adopted:   make([]uint64, n*words),
		adoptList: make([][]int32, n),
		wmeta:     make([]float64, n*p.PIN.NumMeta()),
		prefDelta: make([]float64, n*items),
		dirty:     make([]bool, n),
		stepNew:   make(map[int32][]int32),
	}
	// weightings start at the shared init vector; rows are lazily reset
	for u := 0; u < n; u++ {
		copy(st.wmeta[u*p.PIN.NumMeta():], p.PIN.InitWeights)
	}
	return st
}

// Reset restores the initial state, clearing only dirty rows. The
// generator is copied by value, so callers may hand in short-lived
// streams (e.g. master.Split(i)) without them escaping to the heap.
func (st *State) Reset(r *rng.Rand) {
	nm := st.p.PIN.NumMeta()
	for _, u := range st.touched {
		base := int(u) * st.words
		for i := 0; i < st.words; i++ {
			st.adopted[base+i] = 0
		}
		st.adoptList[u] = st.adoptList[u][:0]
		copy(st.wmeta[int(u)*nm:(int(u)+1)*nm], st.p.PIN.InitWeights)
		pd := st.prefDelta[int(u)*st.items : (int(u)+1)*st.items]
		for i := range pd {
			pd[i] = 0
		}
		st.dirty[u] = false
	}
	st.touched = st.touched[:0]
	st.frontier = st.frontier[:0]
	st.nextFront = st.nextFront[:0]
	st.rngv = *r
}

// Problem returns the problem this state simulates.
func (st *State) Problem() *Problem { return st.p }

// Adopted reports whether user u has adopted item x.
func (st *State) Adopted(u, x int) bool {
	return st.adopted[u*st.words+x/64]&(1<<(uint(x)%64)) != 0
}

// AdoptedList returns user u's adopted items in adoption order; the
// slice must not be modified.
func (st *State) AdoptedList(u int) []int32 { return st.adoptList[u] }

// markAdopted sets the adoption bit and bookkeeping; callers must have
// checked Adopted first.
func (st *State) markAdopted(u, x int) {
	st.adopted[u*st.words+x/64] |= 1 << (uint(x) % 64)
	st.adoptList[u] = append(st.adoptList[u], int32(x))
	if !st.dirty[u] {
		st.dirty[u] = true
		st.touched = append(st.touched, int32(u))
	}
}

// ForceAdopt makes user u adopt item x outside a campaign (scripted
// scenarios, case studies, examples), applying the end-of-step factor
// updates immediately: weighting update then preference recompute.
func (st *State) ForceAdopt(u, x int) {
	if st.Adopted(u, x) {
		return
	}
	st.markAdopted(u, x)
	if st.p.Params.Static {
		return
	}
	w := st.Weights(u)
	st.p.PIN.UpdateWeights(w, []int{x}, func(item int) bool {
		return st.Adopted(u, item)
	}, st.p.Params.Eta)
	st.recomputePref(u)
}

// Weights returns user u's meta-graph weighting vector (mutable view).
func (st *State) Weights(u int) []float64 {
	nm := st.p.PIN.NumMeta()
	return st.wmeta[u*nm : (u+1)*nm]
}

// Pref returns Ppref(u, y) under the current state: the base
// preference plus the cross-elasticity delta, clamped to [0,1]. Under
// Params.Static the delta is always zero.
func (st *State) Pref(u, y int) float64 {
	v := st.p.BasePref[u*st.items+y] + st.prefDelta[u*st.items+y]
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Act returns Pact(u, v) for the arc with base strength baseW:
// base·(1+γ·sim(u,v)) clamped to 1, where sim blends adoption-set
// Jaccard similarity with weighting-vector cosine (influence
// learning, Sec. V-A(3)). Under Params.Static it returns baseW.
func (st *State) Act(u, v int, baseW float64) float64 {
	if st.p.Params.Static || st.p.Params.Gamma == 0 {
		return baseW
	}
	if !st.dirty[u] && !st.dirty[v] {
		return baseW // nothing adopted on either side: sim would be 0
	}
	sim := st.similarity(u, v)
	if sim == 0 {
		return baseW
	}
	w := baseW * (1 + st.p.Params.Gamma*sim)
	if w > 1 {
		return 1
	}
	return w
}

// similarity is ½·Jaccard(A(u),A(v)) + ½·cos(Wmeta(u),Wmeta(v)) when
// the users share at least one adoption, else just the Jaccard term
// (which is then 0 unless one set is empty — friends with no common
// items have not grown closer).
func (st *State) similarity(u, v int) float64 {
	bu := st.adopted[u*st.words : (u+1)*st.words]
	bv := st.adopted[v*st.words : (v+1)*st.words]
	var inter, union int
	for i := 0; i < st.words; i++ {
		inter += bits.OnesCount64(bu[i] & bv[i])
		union += bits.OnesCount64(bu[i] | bv[i])
	}
	if union == 0 || inter == 0 {
		return 0
	}
	jac := float64(inter) / float64(union)
	nm := st.p.PIN.NumMeta()
	cos := cosRange(st.wmeta[u*nm:(u+1)*nm], st.wmeta[v*nm:(v+1)*nm])
	return 0.5*jac + 0.5*cos
}

func cosRange(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	// normalised dot; both vectors are non-negative so result ∈ [0,1]
	return dot / math.Sqrt(na*nb)
}

// recomputePref rebuilds user u's preference delta from the adoption
// set and current weights:
//
//	Δpref(u,y) = λ · Σ_{a∈A(u)} (rC(u,a,y) − rS(u,a,y))
//
// Only rows of adopted items' neighbours are affected, so the whole
// row is zeroed and re-accumulated (adoption sets stay small).
func (st *State) recomputePref(u int) {
	pd := st.prefDelta[u*st.items : (u+1)*st.items]
	for i := range pd {
		pd[i] = 0
	}
	w := st.Weights(u)
	lam := st.p.Params.Lambda
	for _, a := range st.adoptList[u] {
		for _, pr := range st.p.PIN.Row(int(a)) {
			rc, rs := st.p.PIN.EvalContribs(w, pr.Contribs)
			pd[pr.Y] += lam * (rc - rs)
		}
	}
}

package diffusion

import (
	"math"
	"math/bits"

	"imdpp/internal/rng"
)

// State is the mutable per-sample simulation state: adoption sets,
// per-user meta-graph weightings, preference deltas. One State is
// reused across Monte-Carlo samples by each worker; Reset restores
// initial conditions touching only the rows dirtied by the previous
// sample, which keeps per-sample overhead proportional to cascade size
// rather than |V|·|I|.
//
// Memory layout (DESIGN.md §5): the adoption bitset and the
// preference-delta table are stored as lazily allocated per-user rows
// — a row exists only once the cascade dirties that user, and Reset
// recycles rows through free pools. A worker therefore retains
// O(|V|) slice headers plus O(max cascade) row payload, never the
// dense |V|×|I| tables of the seed layout. Per-step new-adoption
// tracking uses an epoch-stamped array instead of a map, so the
// adopt/endOfStep hot path performs no map operations and no
// per-step clearing proportional to |V|.
type State struct {
	p     *Problem
	items int
	words int // bitset words per user

	adopted   [][]uint64  // per user, lazily allocated adoption bitset row
	adoptList [][]int32   // per user, adopted items in adoption order
	wmeta     []float64   // [u*numMeta .. ) meta-graph weightings
	prefDelta [][]float64 // per user, lazily allocated Σ λ(rC−rS) row
	dirty     []bool      // user rows needing reset
	touched   []int32     // dirty user list
	rngv      rng.Rand    // sample stream, copied in by Reset

	// row free pools, recycled across samples so steady-state sampling
	// allocates nothing
	wordPool [][]uint64  // zeroed bitset rows (len words)
	rowPool  [][]float64 // pref-delta rows (len items), possibly stale

	// scratch
	frontier  []adoptEvent
	nextFront []adoptEvent
	// per-step new-adoption tracking: stepStamp[u] == stepEpoch marks u
	// as already queued this step; stepItems[u] holds u's newly adopted
	// items in adoption order
	stepStamp []uint32
	stepEpoch uint32
	stepItems [][]int32
	stepUsers []int32
	byPromo   [][]Seed // per-promotion seed partition, reused across samples
	intBuf    []int    // reusable buffer for endOfStep's new-item lists

	// trace hook for case studies; nil on the hot path.
	OnAdopt func(user, item, promo, step int, trigger AdoptTrigger)
}

// AdoptTrigger says why an adoption happened.
type AdoptTrigger uint8

// Adoption causes.
const (
	TriggerSeed        AdoptTrigger = iota // seeded at ζ=0
	TriggerPromotion                       // friend promotion succeeded
	TriggerAssociation                     // item-association extra adoption
)

func (t AdoptTrigger) String() string {
	switch t {
	case TriggerSeed:
		return "seed"
	case TriggerPromotion:
		return "promotion"
	default:
		return "association"
	}
}

type adoptEvent struct {
	user int32
	item int32
}

// NewState allocates a state for problem p. Allocation is O(|V|) —
// per-user slice headers and flags — plus O(|V|·numMeta) weighting
// floats; the O(|V|·|I|) adoption and preference tables of the seed
// layout are replaced by rows allocated lazily per dirtied user.
func NewState(p *Problem) *State {
	n := p.NumUsers()
	items := p.NumItems()
	words := (items + 63) / 64
	st := &State{
		p:         p,
		items:     items,
		words:     words,
		adopted:   make([][]uint64, n),
		adoptList: make([][]int32, n),
		wmeta:     make([]float64, n*p.PIN.NumMeta()),
		prefDelta: make([][]float64, n),
		dirty:     make([]bool, n),
		stepStamp: make([]uint32, n),
		stepEpoch: 1,
		stepItems: make([][]int32, n),
	}
	// weightings start at the shared init vector; rows are lazily reset
	for u := 0; u < n; u++ {
		copy(st.wmeta[u*p.PIN.NumMeta():], p.PIN.InitWeights)
	}
	return st
}

// Reset restores the initial state, clearing only dirty rows. The
// generator is copied by value, so callers may hand in short-lived
// streams (e.g. master.Split(i)) without them escaping to the heap.
func (st *State) Reset(r *rng.Rand) {
	nm := st.p.PIN.NumMeta()
	for _, u := range st.touched {
		if row := st.adopted[u]; row != nil {
			for i := range row {
				row[i] = 0
			}
			st.wordPool = append(st.wordPool, row)
			st.adopted[u] = nil
		}
		st.adoptList[u] = st.adoptList[u][:0]
		copy(st.wmeta[int(u)*nm:(int(u)+1)*nm], st.p.PIN.InitWeights)
		if row := st.prefDelta[u]; row != nil {
			// rows go back stale; recomputePref zeroes on reattach
			st.rowPool = append(st.rowPool, row)
			st.prefDelta[u] = nil
		}
		st.dirty[u] = false
	}
	st.touched = st.touched[:0]
	st.frontier = st.frontier[:0]
	st.nextFront = st.nextFront[:0]
	st.stepUsers = st.stepUsers[:0]
	st.bumpEpoch()
	st.rngv = *r
}

// bumpEpoch advances the per-step stamp epoch, handling the (purely
// theoretical) uint32 wraparound by rebasing all stamps.
func (st *State) bumpEpoch() {
	st.stepEpoch++
	if st.stepEpoch == 0 {
		for i := range st.stepStamp {
			st.stepStamp[i] = 0
		}
		st.stepEpoch = 1
	}
}

// Problem returns the problem this state simulates.
func (st *State) Problem() *Problem { return st.p }

// Adopted reports whether user u has adopted item x.
func (st *State) Adopted(u, x int) bool {
	row := st.adopted[u]
	if row == nil {
		return false
	}
	return row[x/64]&(1<<(uint(x)%64)) != 0
}

// AdoptedList returns user u's adopted items in adoption order; the
// slice must not be modified.
func (st *State) AdoptedList(u int) []int32 { return st.adoptList[u] }

// markAdopted sets the adoption bit and bookkeeping; callers must have
// checked Adopted first.
func (st *State) markAdopted(u, x int) {
	row := st.adopted[u]
	if row == nil {
		if n := len(st.wordPool); n > 0 {
			row = st.wordPool[n-1]
			st.wordPool = st.wordPool[:n-1]
		} else {
			row = make([]uint64, st.words)
		}
		st.adopted[u] = row
	}
	row[x/64] |= 1 << (uint(x) % 64)
	st.adoptList[u] = append(st.adoptList[u], int32(x))
	if !st.dirty[u] {
		st.dirty[u] = true
		st.touched = append(st.touched, int32(u))
	}
}

// ForceAdopt makes user u adopt item x outside a campaign (scripted
// scenarios, case studies, examples), applying the end-of-step factor
// updates immediately: weighting update then preference recompute.
func (st *State) ForceAdopt(u, x int) {
	if st.Adopted(u, x) {
		return
	}
	st.markAdopted(u, x)
	if st.p.Params.Static {
		return
	}
	w := st.Weights(u)
	st.p.PIN.UpdateWeights(w, []int{x}, func(item int) bool {
		return st.Adopted(u, item)
	}, st.p.Params.Eta)
	st.recomputePref(u)
}

// Weights returns user u's meta-graph weighting vector (mutable view).
func (st *State) Weights(u int) []float64 {
	nm := st.p.PIN.NumMeta()
	return st.wmeta[u*nm : (u+1)*nm]
}

// Pref returns Ppref(u, y) under the current state: the base
// preference plus the cross-elasticity delta, clamped to [0,1]. Under
// Params.Static the delta is always zero. Users without a materialised
// delta row have delta 0 by construction.
func (st *State) Pref(u, y int) float64 {
	v := st.p.BasePref.At(u, y)
	if row := st.prefDelta[u]; row != nil {
		v += row[y]
	}
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Act returns Pact(u, v) for the arc with base strength baseW:
// base·(1+γ·sim(u,v)) clamped to 1, where sim blends adoption-set
// Jaccard similarity with weighting-vector cosine (influence
// learning, Sec. V-A(3)). Under Params.Static it returns baseW.
func (st *State) Act(u, v int, baseW float64) float64 {
	if st.p.Params.Static || st.p.Params.Gamma == 0 {
		return baseW
	}
	if !st.dirty[u] && !st.dirty[v] {
		return baseW // nothing adopted on either side: sim would be 0
	}
	sim := st.similarity(u, v)
	if sim == 0 {
		return baseW
	}
	w := baseW * (1 + st.p.Params.Gamma*sim)
	if w > 1 {
		return 1
	}
	return w
}

// similarity is ½·Jaccard(A(u),A(v)) + ½·cos(Wmeta(u),Wmeta(v)) when
// the users share at least one adoption, else just the Jaccard term
// (which is then 0 unless one set is empty — friends with no common
// items have not grown closer).
func (st *State) similarity(u, v int) float64 {
	bu, bv := st.adopted[u], st.adopted[v]
	if bu == nil || bv == nil {
		return 0 // an empty adoption set intersects nothing
	}
	var inter, union int
	for i := 0; i < st.words; i++ {
		inter += bits.OnesCount64(bu[i] & bv[i])
		union += bits.OnesCount64(bu[i] | bv[i])
	}
	if union == 0 || inter == 0 {
		return 0
	}
	jac := float64(inter) / float64(union)
	nm := st.p.PIN.NumMeta()
	cos := cosRange(st.wmeta[u*nm:(u+1)*nm], st.wmeta[v*nm:(v+1)*nm])
	return 0.5*jac + 0.5*cos
}

func cosRange(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	// normalised dot; both vectors are non-negative so result ∈ [0,1]
	return dot / math.Sqrt(na*nb)
}

// recomputePref rebuilds user u's preference delta from the adoption
// set and current weights:
//
//	Δpref(u,y) = λ · Σ_{a∈A(u)} (rC(u,a,y) − rS(u,a,y))
//
// The user's delta row is materialised on first recompute (pooled
// rows may be stale, so the whole row is zeroed before accumulation —
// adoption sets stay small, and the accumulation order matches the
// dense layout bit for bit).
func (st *State) recomputePref(u int) {
	pd := st.prefDelta[u]
	if pd == nil {
		if n := len(st.rowPool); n > 0 {
			pd = st.rowPool[n-1]
			st.rowPool = st.rowPool[:n-1]
		} else {
			pd = make([]float64, st.items)
		}
		st.prefDelta[u] = pd
	}
	for i := range pd {
		pd[i] = 0
	}
	w := st.Weights(u)
	lam := st.p.Params.Lambda
	for _, a := range st.adoptList[u] {
		for _, pr := range st.p.PIN.Row(int(a)) {
			rc, rs := st.p.PIN.EvalContribs(w, pr.Contribs)
			pd[pr.Y] += lam * (rc - rs)
		}
	}
}

// MemoryFootprint returns the approximate number of heap bytes the
// state currently retains, counting per-user slice headers, live and
// pooled rows, and scratch buffers. Per-worker memory scales with the
// largest cascade simulated so far, not with |V|·|I|; imdppbench
// records this as state_bytes_per_worker.
func (st *State) MemoryFootprint() uint64 {
	const (
		headerBytes = 24 // slice header
		eventBytes  = 8  // adoptEvent
	)
	b := uint64(0)
	b += uint64(cap(st.adopted)) * headerBytes
	for _, row := range st.adopted {
		b += uint64(cap(row)) * 8
	}
	b += uint64(len(st.wordPool)*st.words) * 8
	b += uint64(cap(st.adoptList)) * headerBytes
	for _, l := range st.adoptList {
		b += uint64(cap(l)) * 4
	}
	b += uint64(cap(st.wmeta)) * 8
	b += uint64(cap(st.prefDelta)) * headerBytes
	for _, row := range st.prefDelta {
		b += uint64(cap(row)) * 8
	}
	b += uint64(len(st.rowPool)*st.items) * 8
	b += uint64(cap(st.dirty))
	b += uint64(cap(st.touched)) * 4
	b += uint64(cap(st.frontier)+cap(st.nextFront)) * eventBytes
	b += uint64(cap(st.stepStamp)) * 4
	b += uint64(cap(st.stepItems)) * headerBytes
	for _, l := range st.stepItems {
		b += uint64(cap(l)) * 4
	}
	b += uint64(cap(st.stepUsers)) * 4
	b += uint64(cap(st.intBuf)) * 8
	return b
}

package diffusion

import (
	"math"
	"testing"

	"imdpp/internal/graph"
	"imdpp/internal/kg"
	"imdpp/internal/pin"
	"imdpp/internal/rng"
)

// testProblem assembles a problem from explicit pieces. Items come
// from a tiny KG with a complementary pair (0,1) via a shared feature
// and a substitutable pair (1,2) via a shared category; item 3 is
// unrelated.
func testProblem(t testing.TB, g *graph.Graph, pref func(u, x int) float64, imp []float64, T int, params Params) *Problem {
	t.Helper()
	b := kg.NewBuilder()
	tItem := b.NodeTypeID("ITEM")
	tFeature := b.NodeTypeID("FEATURE")
	tCategory := b.NodeTypeID("CATEGORY")
	eSup := b.EdgeTypeID("SUPPORTS")
	eCat := b.EdgeTypeID("IN_CATEGORY")
	items := make([]int, 4)
	for i := range items {
		items[i] = b.AddNode(tItem)
	}
	f := b.AddNode(tFeature)
	c := b.AddNode(tCategory)
	b.AddEdge(items[0], f, eSup)
	b.AddEdge(items[1], f, eSup)
	b.AddEdge(items[1], c, eCat)
	b.AddEdge(items[2], c, eCat)
	kgraph := b.Build()
	model, err := pin.NewModel(kgraph,
		[]*kg.MetaGraph{kg.PathMetaGraph("c", kg.Complementary, tItem, tFeature, eSup, eSup)},
		[]*kg.MetaGraph{kg.PathMetaGraph("s", kg.Substitutable, tItem, tCategory, eCat, eCat)},
		[]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	ni := kgraph.NumItems()
	if imp == nil {
		imp = []float64{1, 1, 1, 1}
	}
	basePref := make([]float64, n*ni)
	cost := make([]float64, n*ni)
	for u := 0; u < n; u++ {
		for x := 0; x < ni; x++ {
			basePref[u*ni+x] = pref(u, x)
			cost[u*ni+x] = 1
		}
	}
	p := &Problem{
		G: g, KG: kgraph, PIN: model,
		Importance: imp, BasePref: MatrixFrom(basePref, ni), Cost: MatrixFrom(cost, ni),
		Budget: 1e9, T: T, Params: params,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func lineGraph(n int, w float64) *graph.Graph {
	b := graph.NewBuilder(n, true)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, w)
	}
	return b.Build()
}

func staticParams() Params {
	p := DefaultParams()
	p.Static = true
	p.Chi = 0
	return p
}

func runOnce(t *testing.T, p *Problem, seeds []Seed, seed uint64) Result {
	t.Helper()
	st := NewState(p)
	st.Reset(rng.New(seed))
	var res Result
	res.PerItem = make([]float64, p.NumItems())
	st.RunCampaign(seeds, nil, &res)
	return res
}

// --- deterministic cascades -------------------------------------------

func TestDeterministicLineCascade(t *testing.T) {
	p := testProblem(t, lineGraph(4, 1),
		func(u, x int) float64 {
			if x == 3 {
				return 1
			}
			return 0
		}, nil, 1, staticParams())
	res := runOnce(t, p, []Seed{{User: 0, Item: 3, T: 1}}, 1)
	if res.Adoptions != 4 {
		t.Fatalf("adoptions = %d, want full cascade 4", res.Adoptions)
	}
	if res.Sigma != 4 {
		t.Fatalf("sigma = %v", res.Sigma)
	}
	if res.PerItem[3] != 4 {
		t.Fatalf("per-item: %v", res.PerItem)
	}
}

func TestZeroPreferenceBlocksAdoption(t *testing.T) {
	p := testProblem(t, lineGraph(3, 1),
		func(u, x int) float64 { return 0 }, nil, 1, staticParams())
	res := runOnce(t, p, []Seed{{User: 0, Item: 3, T: 1}}, 1)
	// the seed itself adopts regardless; nobody else does
	if res.Adoptions != 1 {
		t.Fatalf("adoptions = %d", res.Adoptions)
	}
}

func TestImportanceWeighting(t *testing.T) {
	p := testProblem(t, lineGraph(2, 1),
		func(u, x int) float64 { return 1 },
		[]float64{0.25, 1, 1, 1}, 1, staticParams())
	res := runOnce(t, p, []Seed{{User: 0, Item: 0, T: 1}}, 1)
	if res.Adoptions != 2 {
		t.Fatalf("adoptions = %d", res.Adoptions)
	}
	if math.Abs(res.Sigma-0.5) > 1e-12 {
		t.Fatalf("sigma = %v, want importance-weighted 0.5", res.Sigma)
	}
}

func TestMarketMaskRestrictsSigma(t *testing.T) {
	p := testProblem(t, lineGraph(3, 1),
		func(u, x int) float64 { return 1 }, nil, 1, staticParams())
	st := NewState(p)
	st.Reset(rng.New(1))
	var res Result
	res.PerItem = make([]float64, p.NumItems())
	market := []bool{false, true, false}
	st.RunCampaign([]Seed{{User: 0, Item: 0, T: 1}}, market, &res)
	if res.Sigma != 3 {
		t.Fatalf("sigma = %v", res.Sigma)
	}
	if res.MarketSigma != 1 {
		t.Fatalf("market sigma = %v", res.MarketSigma)
	}
}

func TestNoDoubleAdoption(t *testing.T) {
	// cycle 0→1→0: item must be adopted at most once per user
	b := graph.NewBuilder(2, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 0, 1)
	p := testProblem(t, b.Build(),
		func(u, x int) float64 { return 1 }, nil, 3, staticParams())
	res := runOnce(t, p, []Seed{{User: 0, Item: 0, T: 1}, {User: 1, Item: 0, T: 2}}, 1)
	if res.PerItem[0] != 2 {
		t.Fatalf("item adopted %v times across 2 users", res.PerItem[0])
	}
}

func TestReSeededUserRePromotes(t *testing.T) {
	// 0→1 with weight 1 but pref(1)=0 at promo 1... instead: seed the
	// same (user,item) in two promotions; second must re-promote.
	// Make 1's adoption fail at promo 1 impossible (prob 1), so use a
	// 0.0-weight? Simpler: seed (0,x,1) twice with an edge weight such
	// that promo-1 trial fails under one RNG stream and promo-2
	// succeeds — deterministically verified via per-promotion frontier
	// re-entry: pref=1, w=1 cascades at promo 1 already. Here we just
	// assert re-seeding does not double-count adoptions.
	p := testProblem(t, lineGraph(2, 1),
		func(u, x int) float64 { return 1 }, nil, 2, staticParams())
	res := runOnce(t, p, []Seed{{User: 0, Item: 0, T: 1}, {User: 0, Item: 0, T: 2}}, 1)
	if res.PerItem[0] != 2 {
		t.Fatalf("re-seeding double-counted: %v", res.PerItem[0])
	}
}

func TestReSeedingGivesSecondTrial(t *testing.T) {
	// 0→1 with weight 0.5: a single seeding gives user 1 exactly one
	// trial; re-seeding user 0 at promo 2 gives a second trial. Over
	// many samples the two-promotion adoption rate must exceed the
	// single-promotion rate.
	p := testProblem(t, lineGraph(2, 0.5),
		func(u, x int) float64 { return 1 }, nil, 2, staticParams())
	e1 := NewEstimator(p, 800, 7)
	one := e1.Sigma([]Seed{{User: 0, Item: 0, T: 1}})
	e2 := NewEstimator(p, 800, 7)
	two := e2.Sigma([]Seed{{User: 0, Item: 0, T: 1}, {User: 0, Item: 0, T: 2}})
	// expected: 1 + 0.5 = 1.5 vs 1 + 0.75 = 1.75
	if two <= one+0.1 {
		t.Fatalf("re-seeding added no influence: %v vs %v", one, two)
	}
}

// --- dynamics -----------------------------------------------------------

func TestForceAdoptUpdatesPreference(t *testing.T) {
	p := testProblem(t, lineGraph(2, 1),
		func(u, x int) float64 { return 0.2 }, nil, 1, DefaultParams())
	st := NewState(p)
	st.Reset(rng.New(1))
	before := st.Pref(0, 1)
	st.ForceAdopt(0, 0) // item 0 is complementary with item 1
	after := st.Pref(0, 1)
	if after <= before {
		t.Fatalf("complement adoption did not raise preference: %v → %v", before, after)
	}
}

func TestSubstituteAdoptionLowersPreference(t *testing.T) {
	p := testProblem(t, lineGraph(2, 1),
		func(u, x int) float64 { return 0.5 }, nil, 1, DefaultParams())
	st := NewState(p)
	st.Reset(rng.New(1))
	before := st.Pref(0, 2) // item 2 substitutable with item 1
	st.ForceAdopt(0, 1)
	after := st.Pref(0, 2)
	if after >= before {
		t.Fatalf("substitute adoption did not lower preference: %v → %v", before, after)
	}
}

func TestStaticFreezesDynamics(t *testing.T) {
	params := DefaultParams()
	params.Static = true
	p := testProblem(t, lineGraph(2, 1),
		func(u, x int) float64 { return 0.2 }, nil, 1, params)
	st := NewState(p)
	st.Reset(rng.New(1))
	before := st.Pref(0, 1)
	st.ForceAdopt(0, 0)
	if st.Pref(0, 1) != before {
		t.Fatal("Static params still updated preferences")
	}
	w := st.Weights(0)
	for i, v := range w {
		if v != p.PIN.InitWeights[i] {
			t.Fatal("Static params still updated weightings")
		}
	}
}

func TestInfluenceLearning(t *testing.T) {
	p := testProblem(t, lineGraph(2, 0.4),
		func(u, x int) float64 { return 1 }, nil, 1, DefaultParams())
	st := NewState(p)
	st.Reset(rng.New(1))
	if got := st.Act(0, 1, 0.4); got != 0.4 {
		t.Fatalf("pre-adoption Act = %v", got)
	}
	st.ForceAdopt(0, 0)
	st.ForceAdopt(1, 0)
	got := st.Act(0, 1, 0.4)
	if got <= 0.4 {
		t.Fatalf("common adoption did not raise Act: %v", got)
	}
	if got > 1 {
		t.Fatalf("Act exceeds 1: %v", got)
	}
}

func TestActNoCommonAdoptionUnchanged(t *testing.T) {
	p := testProblem(t, lineGraph(2, 0.4),
		func(u, x int) float64 { return 1 }, nil, 1, DefaultParams())
	st := NewState(p)
	st.Reset(rng.New(1))
	st.ForceAdopt(0, 0)
	st.ForceAdopt(1, 3) // disjoint adoptions
	if got := st.Act(0, 1, 0.4); got != 0.4 {
		t.Fatalf("disjoint adoptions changed Act: %v", got)
	}
}

func TestWeightUpdateDuringCampaign(t *testing.T) {
	// seed both complementary items at one user: co-adoption must grow
	// the complementary meta-graph weighting
	p := testProblem(t, lineGraph(2, 1),
		func(u, x int) float64 { return 1 }, nil, 1, DefaultParams())
	st := NewState(p)
	st.Reset(rng.New(1))
	var res Result
	res.PerItem = make([]float64, p.NumItems())
	st.RunCampaign([]Seed{{User: 0, Item: 0, T: 1}, {User: 0, Item: 1, T: 1}}, nil, &res)
	w := st.Weights(0)
	if w[0] <= p.PIN.InitWeights[0] {
		t.Fatalf("complementary weighting did not grow: %v", w)
	}
}

func TestItemAssociationTriggers(t *testing.T) {
	// user 1 will never adopt item 1 directly (pref 0 would zero Pext
	// of item 0's promotion... Pext uses pref of the *promoted* item).
	// Setup: promote item 0 (pref 1) to user 1; association may
	// trigger item 1 without any promotion of item 1.
	params := DefaultParams()
	params.Chi = 1
	p := testProblem(t, lineGraph(2, 1),
		func(u, x int) float64 {
			if x == 0 {
				return 1
			}
			return 0
		}, nil, 1, params)
	e := NewEstimator(p, 2000, 11)
	est := e.Run([]Seed{{User: 0, Item: 0, T: 1}}, nil, false)
	if est.PerItem[1] <= 0 {
		t.Fatal("item association never triggered an extra adoption")
	}
	// extra adoptions only for the complementary partner, not the
	// unrelated item 3
	if est.PerItem[3] != 0 {
		t.Fatalf("unrelated item adopted: %v", est.PerItem)
	}
}

func TestNoAssociationWhenChiZero(t *testing.T) {
	params := DefaultParams()
	params.Chi = 0
	p := testProblem(t, lineGraph(2, 1),
		func(u, x int) float64 {
			if x == 0 {
				return 1
			}
			return 0
		}, nil, 1, params)
	e := NewEstimator(p, 500, 11)
	est := e.Run([]Seed{{User: 0, Item: 0, T: 1}}, nil, false)
	if est.PerItem[1] != 0 {
		t.Fatalf("association fired with Chi=0: %v", est.PerItem)
	}
}

// --- multi-promotion semantics ------------------------------------------

func TestPromotionCarryOver(t *testing.T) {
	// 0→1→2, pref 1, weight 1. Seed (0,x,2): nothing at promo 1, full
	// cascade at promo 2.
	p := testProblem(t, lineGraph(3, 1),
		func(u, x int) float64 { return 1 }, nil, 2, staticParams())
	res := runOnce(t, p, []Seed{{User: 0, Item: 0, T: 2}}, 1)
	if res.Adoptions != 3 {
		t.Fatalf("adoptions = %d", res.Adoptions)
	}
}

func TestSequentialUnlockCascade(t *testing.T) {
	// The hardness-gadget mechanism (Thm 1): adopting item x1 unlocks
	// the preference for its complement x2 (cross-elasticity), so a
	// second promotion of x2 succeeds where a first would have failed.
	params := DefaultParams()
	// rC(item0,item1) = 0.5·0.5 = 0.25; Lambda 4 lifts the unlocked
	// preference to exactly 1, making the second cascade deterministic
	params.Lambda = 4
	params.Chi = 0
	p := testProblem(t, lineGraph(2, 1),
		func(u, x int) float64 {
			if x == 0 {
				return 1
			}
			return 0 // x2 initially undesired
		}, nil, 2, params)
	// promo 1: item 0 cascades; user 1 adopts it and the complementary
	// relation raises Ppref(1, item1) above 0.
	// promo 2: item 1 seeded at user 0; user 1 now adopts it.
	res := runOnce(t, p, []Seed{{User: 0, Item: 0, T: 1}, {User: 0, Item: 1, T: 2}}, 3)
	if res.PerItem[1] < 2 {
		t.Fatalf("unlock cascade failed: item1 adopted %v times (want 2)", res.PerItem[1])
	}
	// and without the first promotion, item 1 never spreads
	res2 := runOnce(t, p, []Seed{{User: 0, Item: 1, T: 2}}, 3)
	if res2.PerItem[1] != 1 {
		t.Fatalf("item1 spread without unlock: %v", res2.PerItem[1])
	}
}

func TestNonMonotoneSigma(t *testing.T) {
	// Lemma 1's non-monotonicity, realised through the substitutable
	// antagonism: seeding (u, x1, 1) makes u adopt the substitute of
	// x2, lowering Ppref(u, x2) before the promotion of x2 at t=2.
	// With w_{x1} = 0, the added seed strictly decreases σ.
	params := DefaultParams()
	params.Chi = 0
	params.Gamma = 0
	imp := []float64{1, 0, 1, 1} // item 1 (the substitute source) worthless
	p := testProblem(t, lineGraph(2, 1),
		func(u, x int) float64 {
			if x == 1 {
				return 1
			}
			if x == 2 {
				return 0.6
			}
			return 0
		}, imp, 2, params)
	base := []Seed{{User: 0, Item: 2, T: 2}}
	more := []Seed{{User: 1, Item: 1, T: 1}, {User: 0, Item: 2, T: 2}}
	e1 := NewEstimator(p, 4000, 5)
	e2 := NewEstimator(p, 4000, 5)
	s1 := e1.Sigma(base)
	s2 := e2.Sigma(more)
	if s2 >= s1 {
		t.Fatalf("expected non-monotonicity: σ(base)=%v σ(base+seed)=%v", s1, s2)
	}
}

// --- estimator -----------------------------------------------------------

func TestEstimatorDeterministic(t *testing.T) {
	p := testProblem(t, lineGraph(4, 0.5),
		func(u, x int) float64 { return 0.8 }, nil, 2, DefaultParams())
	seeds := []Seed{{User: 0, Item: 0, T: 1}, {User: 0, Item: 1, T: 2}}
	a := NewEstimator(p, 100, 42).Sigma(seeds)
	bv := NewEstimator(p, 100, 42).Sigma(seeds)
	if a != bv {
		t.Fatalf("estimator not deterministic: %v vs %v", a, bv)
	}
	c := NewEstimator(p, 100, 43).Sigma(seeds)
	if a == c {
		t.Fatalf("different master seeds gave identical estimates (suspicious): %v", a)
	}
}

func TestEstimatorWorkerInvariance(t *testing.T) {
	p := testProblem(t, lineGraph(4, 0.5),
		func(u, x int) float64 { return 0.8 }, nil, 2, DefaultParams())
	seeds := []Seed{{User: 0, Item: 0, T: 1}}
	e1 := NewEstimator(p, 64, 42)
	e1.Workers = 1
	e2 := NewEstimator(p, 64, 42)
	e2.Workers = 4
	if a, b := e1.Sigma(seeds), e2.Sigma(seeds); math.Abs(a-b) > 1e-9 {
		t.Fatalf("worker count changed estimate: %v vs %v", a, b)
	}
}

func TestEstimatorEmptySeeds(t *testing.T) {
	p := testProblem(t, lineGraph(3, 0.5),
		func(u, x int) float64 { return 1 }, nil, 1, DefaultParams())
	if s := NewEstimator(p, 10, 1).Sigma(nil); s != 0 {
		t.Fatalf("σ(∅) = %v", s)
	}
}

func TestEstimatorMeanAdoptions(t *testing.T) {
	// 0→1 weight 0.5, pref 1: E[adoptions] = 1 + 0.5
	p := testProblem(t, lineGraph(2, 0.5),
		func(u, x int) float64 { return 1 }, nil, 1, staticParams())
	e := NewEstimator(p, 4000, 9)
	est := e.Run([]Seed{{User: 0, Item: 0, T: 1}}, nil, false)
	if math.Abs(est.Adoptions-1.5) > 0.05 {
		t.Fatalf("mean adoptions %v, want ~1.5", est.Adoptions)
	}
}

func TestStateResetEquivalence(t *testing.T) {
	p := testProblem(t, lineGraph(4, 0.7),
		func(u, x int) float64 { return 0.9 }, nil, 2, DefaultParams())
	seeds := []Seed{{User: 0, Item: 0, T: 1}, {User: 1, Item: 1, T: 2}}
	// state reused across samples must match fresh states sample by
	// sample
	reused := NewState(p)
	for i := 0; i < 5; i++ {
		fresh := NewState(p)
		fresh.Reset(rng.New(uint64(100 + i)))
		reused.Reset(rng.New(uint64(100 + i)))
		var a, b Result
		a.PerItem = make([]float64, p.NumItems())
		b.PerItem = make([]float64, p.NumItems())
		fresh.RunCampaign(seeds, nil, &a)
		reused.RunCampaign(seeds, nil, &b)
		if a.Sigma != b.Sigma || a.Adoptions != b.Adoptions {
			t.Fatalf("sample %d: reused state diverged (%v/%d vs %v/%d)",
				i, a.Sigma, a.Adoptions, b.Sigma, b.Adoptions)
		}
	}
}

func TestLikelihoodPiIC(t *testing.T) {
	// 0→1 weight 0.5. After promo: user 0 adopted item 0; user 1 has
	// not. π over {1} = AIS(1,item0)·pref = 0.5·0.8 plus nothing else.
	p := testProblem(t, lineGraph(2, 0.5),
		func(u, x int) float64 {
			if x == 0 {
				return 0.8
			}
			return 0
		}, nil, 1, staticParams())
	st := NewState(p)
	st.Reset(rng.New(1))
	st.ForceAdopt(0, 0)
	market := []bool{false, true}
	pi := st.LikelihoodPi(market)
	if math.Abs(pi-0.4) > 1e-12 {
		t.Fatalf("π = %v, want 0.4", pi)
	}
	// whole-network π includes user 0, who has adopted everything it
	// could be promoted (no in-edges anyway)
	pi = st.LikelihoodPi(nil)
	if math.Abs(pi-0.4) > 1e-12 {
		t.Fatalf("π(all) = %v", pi)
	}
}

func TestLikelihoodPiLT(t *testing.T) {
	// two in-neighbours with weight 0.7 each: IC gives 1−0.09 = 0.91,
	// LT clamps 1.4 → 1.0
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 2, 0.7)
	b.AddEdge(1, 2, 0.7)
	params := staticParams()
	params.AIS = AISLinearThreshold
	p := testProblem(t, b.Build(),
		func(u, x int) float64 { return 1 }, nil, 1, params)
	st := NewState(p)
	st.Reset(rng.New(1))
	st.ForceAdopt(0, 0)
	st.ForceAdopt(1, 0)
	market := []bool{false, false, true}
	// π = AIS·pref summed over not-yet-adopted items of user 2; only
	// item 0 has adopters upstream
	pi := st.LikelihoodPi(market)
	if math.Abs(pi-1.0) > 1e-12 {
		t.Fatalf("LT π = %v, want 1.0", pi)
	}
	params.AIS = AISIndependentCascade
	p2 := testProblem(t, b.Build(),
		func(u, x int) float64 { return 1 }, nil, 1, params)
	st2 := NewState(p2)
	st2.Reset(rng.New(1))
	st2.ForceAdopt(0, 0)
	st2.ForceAdopt(1, 0)
	pi2 := st2.LikelihoodPi(market)
	if math.Abs(pi2-0.91) > 1e-12 {
		t.Fatalf("IC π = %v, want 0.91", pi2)
	}
}

func TestMeanWeights(t *testing.T) {
	p := testProblem(t, lineGraph(2, 1),
		func(u, x int) float64 { return 1 }, nil, 1, DefaultParams())
	e := NewEstimator(p, 50, 3)
	// seeding both complements at user 0 deterministically grows the
	// complementary weighting
	mw := e.MeanWeights([]Seed{{User: 0, Item: 0, T: 1}, {User: 0, Item: 1, T: 1}}, []int{0})
	if mw[0] <= p.PIN.InitWeights[0] {
		t.Fatalf("mean weight did not grow: %v", mw)
	}
	// empty user set falls back to init weights
	mw = e.MeanWeights(nil, nil)
	for i := range mw {
		if mw[i] != p.PIN.InitWeights[i] {
			t.Fatalf("fallback weights %v", mw)
		}
	}
}

// --- validation -----------------------------------------------------------

func TestValidateSeeds(t *testing.T) {
	p := testProblem(t, lineGraph(2, 1),
		func(u, x int) float64 { return 1 }, nil, 2, DefaultParams())
	p.Budget = 2
	cases := []struct {
		name  string
		seeds []Seed
		ok    bool
	}{
		{"valid", []Seed{{User: 0, Item: 0, T: 1}}, true},
		{"bad user", []Seed{{User: 9, Item: 0, T: 1}}, false},
		{"bad item", []Seed{{User: 0, Item: 9, T: 1}}, false},
		{"bad timing low", []Seed{{User: 0, Item: 0, T: 0}}, false},
		{"bad timing high", []Seed{{User: 0, Item: 0, T: 3}}, false},
		{"over budget", []Seed{{User: 0, Item: 0, T: 1}, {User: 1, Item: 0, T: 1}, {User: 0, Item: 1, T: 2}}, false},
	}
	for _, tc := range cases {
		err := p.ValidateSeeds(tc.seeds)
		if tc.ok && err != nil {
			t.Fatalf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Fatalf("%s: error expected", tc.name)
		}
	}
}

func TestProblemValidate(t *testing.T) {
	p := testProblem(t, lineGraph(2, 1),
		func(u, x int) float64 { return 1 }, nil, 1, DefaultParams())
	bad := *p
	bad.T = 0
	if bad.Validate() == nil {
		t.Fatal("T=0 accepted")
	}
	bad = *p
	bad.Importance = bad.Importance[:1]
	if bad.Validate() == nil {
		t.Fatal("short importance accepted")
	}
	bad = *p
	bad.Budget = -1
	if bad.Validate() == nil {
		t.Fatal("negative budget accepted")
	}
	bad = *p
	bad.Params.MaxSteps = 0
	if bad.Validate() == nil {
		t.Fatal("MaxSteps=0 accepted")
	}
}

func TestSeedCost(t *testing.T) {
	p := testProblem(t, lineGraph(2, 1),
		func(u, x int) float64 { return 1 }, nil, 1, DefaultParams())
	if c := p.SeedCost([]Seed{{User: 0, Item: 0, T: 1}, {User: 1, Item: 2, T: 1}}); c != 2 {
		t.Fatalf("cost = %v", c)
	}
}

package diffusion

import (
	"testing"

	"imdpp/internal/graph"
	"imdpp/internal/kg"
	"imdpp/internal/pin"
	"imdpp/internal/rng"
)

// TestHardnessGadgetCascade exercises the mechanics of the Theorem 1
// reduction from Set Cover: set nodes cover element nodes; an element
// adopts item x1 only when a chosen set node promotes it; adopting x1
// unlocks the preference for x2 (the complementary "next" item), which
// a later promotion then spreads. Seeding a cover makes every element
// progress to x2; seeding a non-cover strands the uncovered element.
func TestHardnessGadgetCascade(t *testing.T) {
	// Set Cover instance: U = {e1,e2,e3}, S1={e1,e2}, S2={e2,e3},
	// S3={e3}. {S1,S2} is a cover; {S1,S3} is not (e2 uncovered — no:
	// S1 covers e2; use {S2,S3}, which misses e1).
	const (
		vS1 = 0
		vS2 = 1
		vS3 = 2
		vE1 = 3
		vE2 = 4
		vE3 = 5
		vB  = 6 // the vb node promoting x2 to everyone
	)
	gb := graph.NewBuilder(7, true)
	gb.AddEdge(vS1, vE1, 1)
	gb.AddEdge(vS1, vE2, 1)
	gb.AddEdge(vS2, vE2, 1)
	gb.AddEdge(vS2, vE3, 1)
	gb.AddEdge(vS3, vE3, 1)
	gb.AddEdge(vB, vE1, 1)
	gb.AddEdge(vB, vE2, 1)
	gb.AddEdge(vB, vE3, 1)
	g := gb.Build()

	// KG: x1 PAIRS_WITH x2 (complementary chain)
	b := kg.NewBuilder()
	tItem := b.NodeTypeID("ITEM")
	ePairs := b.EdgeTypeID("PAIRS_WITH")
	x1 := b.AddNode(tItem)
	x2 := b.AddNode(tItem)
	b.AddEdge(x1, x2, ePairs)
	kgraph := b.Build()
	model, err := pin.NewModel(kgraph,
		[]*kg.MetaGraph{kg.DirectMetaGraph("chain", kg.Complementary, tItem, ePairs)},
		nil, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	i1, i2 := kgraph.ItemID(x1), kgraph.ItemID(x2)

	params := DefaultParams()
	params.Chi = 0
	params.Gamma = 0
	// rC(x1,x2) = 0.5 (weight) · 0.5 (saturated count) = 0.25; λ = 4
	// lifts the unlocked preference to exactly 1.
	params.Lambda = 4

	n, ni := g.N(), kgraph.NumItems()
	basePref := make([]float64, n*ni)
	cost := make([]float64, n*ni)
	for u := 0; u < n; u++ {
		for x := 0; x < ni; x++ {
			cost[u*ni+x] = 1
		}
	}
	// elements initially want x1 only; x2 is locked until x1 adopted
	for _, e := range []int{vE1, vE2, vE3} {
		basePref[e*ni+i1] = 1
	}
	p := &Problem{
		G: g, KG: kgraph, PIN: model,
		Importance: []float64{0, 1}, // only x2 adoptions count (w_{x1}=0)
		BasePref:   MatrixFrom(basePref, ni), Cost: MatrixFrom(cost, ni),
		Budget: 100, T: 2, Params: params,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	run := func(seeds []Seed) Result {
		st := NewState(p)
		st.Reset(rng.New(1))
		var res Result
		res.PerItem = make([]float64, ni)
		st.RunCampaign(seeds, nil, &res)
		return res
	}

	// Cover {S1, S2}: promo 1 spreads x1 to all elements; promo 2 has
	// vb promote x2, now unlocked everywhere → 3 element adoptions of
	// x2 (+ vb's own, importance-weighted: w_{x2}=1 each).
	cover := []Seed{
		{User: vS1, Item: i1, T: 1},
		{User: vS2, Item: i1, T: 1},
		{User: vB, Item: i2, T: 2},
	}
	res := run(cover)
	if got := res.PerItem[i2]; got != 4 { // vb + e1 + e2 + e3
		t.Fatalf("cover: x2 adopted by %v users, want 4", got)
	}
	if res.Sigma != 4 {
		t.Fatalf("cover σ = %v", res.Sigma)
	}

	// Non-cover {S2, S3}: e1 never gets x1, so its x2 stays locked.
	nonCover := []Seed{
		{User: vS2, Item: i1, T: 1},
		{User: vS3, Item: i1, T: 1},
		{User: vB, Item: i2, T: 2},
	}
	res = run(nonCover)
	if got := res.PerItem[i2]; got != 3 { // vb + e2 + e3 only
		t.Fatalf("non-cover: x2 adopted by %v users, want 3", got)
	}

	// Ordering matters (challenge (i)): promoting x2 before x1 wastes
	// the promotion entirely for the elements.
	reversed := []Seed{
		{User: vB, Item: i2, T: 1},
		{User: vS1, Item: i1, T: 2},
		{User: vS2, Item: i1, T: 2},
	}
	res = run(reversed)
	if got := res.PerItem[i2]; got != 1 { // only vb itself
		t.Fatalf("reversed order: x2 adopted by %v users, want 1", got)
	}
}

package diffusion

import (
	"math"
	"math/rand"
	"testing"

	"imdpp/internal/wirebin"
)

// randomGrid builds a NaN/Inf-free grid shaped like real engine
// output: integral counts, ascending sparse item ids, float sigmas.
func randomGrid(rng *rand.Rand, groups, span, items int) [][]SampleResult {
	grid := make([][]SampleResult, groups)
	for g := range grid {
		row := make([]SampleResult, span)
		for i := range row {
			s := &row[i]
			s.Sigma = rng.Float64() * 20
			s.MarketSigma = rng.Float64() * 10
			if rng.Intn(2) == 0 {
				s.Pi = rng.Float64()
			}
			total := 0.0
			for j := 0; j < items; j++ {
				if rng.Intn(3) == 0 {
					c := float64(1 + rng.Intn(5))
					s.Items = append(s.Items, int32(j))
					s.Counts = append(s.Counts, c)
					total += c
				}
			}
			s.Adoptions = total
		}
		grid[g] = row
	}
	return grid
}

func gridsEqual(t *testing.T, want, got [][]SampleResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("group count %d != %d", len(got), len(want))
	}
	for g := range want {
		if len(want[g]) != len(got[g]) {
			t.Fatalf("group %d span %d != %d", g, len(got[g]), len(want[g]))
		}
		for i := range want[g] {
			w, gg := &want[g][i], &got[g][i]
			for _, pair := range [][2]float64{
				{w.Sigma, gg.Sigma}, {w.MarketSigma, gg.MarketSigma},
				{w.Pi, gg.Pi}, {w.Adoptions, gg.Adoptions},
			} {
				if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
					t.Fatalf("group %d sample %d scalar differs: %v vs %v", g, i, pair[1], pair[0])
				}
			}
			if len(w.Items) != len(gg.Items) || len(w.Counts) != len(gg.Counts) {
				t.Fatalf("group %d sample %d sparse lengths differ", g, i)
			}
			for j := range w.Items {
				if w.Items[j] != gg.Items[j] || math.Float64bits(w.Counts[j]) != math.Float64bits(gg.Counts[j]) {
					t.Fatalf("group %d sample %d entry %d differs", g, i, j)
				}
			}
		}
	}
}

func TestSampleGridBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := [][][]SampleResult{
		{},                         // empty grid
		{{}},                       // one group, zero samples
		randomGrid(rng, 1, 1, 4),   // single sample
		randomGrid(rng, 4, 13, 9),  // typical shard
		randomGrid(rng, 2, 64, 40), // wider
		{{{Sigma: -0.0, Pi: math.SmallestNonzeroFloat64}}}, // awkward floats
	}
	for ci, grid := range cases {
		b := AppendSampleGrid(nil, grid)
		got, err := DecodeSampleGrid(wirebin.NewReader(b))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		gridsEqual(t, grid, got)
		// the reduction over the decoded grid must match the original's
		if len(grid) > 0 && len(grid[0]) > 0 {
			a := ReduceSampleGrid(grid, 64)
			bb := ReduceSampleGrid(got, 64)
			for g := range a {
				if math.Float64bits(a[g].Sigma) != math.Float64bits(bb[g].Sigma) {
					t.Fatalf("case %d: reduced σ differs after round trip", ci)
				}
			}
		}
	}
}

// TestSampleGridBinaryMatchesEngine round-trips real engine output:
// whatever RunBatchSamples produces must decode to a grid whose
// reduction is bit-identical to reducing the original.
func TestSampleGridBinaryMatchesEngine(t *testing.T) {
	p := testProblem(t, lineGraph(6, 0.6), func(u, x int) float64 { return 0.4 }, nil, 3, DefaultParams())
	est := NewEstimator(p, 9, 77)
	groups := [][]Seed{{{User: 0, Item: 0, T: 1}}, {{User: 1, Item: 1, T: 1}, {User: 2, Item: 0, T: 1}}}
	grid := est.RunBatchSamples(groups, nil, nil, true, 0, 9)
	got, err := DecodeSampleGrid(wirebin.NewReader(AppendSampleGrid(nil, grid)))
	if err != nil {
		t.Fatal(err)
	}
	gridsEqual(t, grid, got)
	want := ReduceSampleGrid(grid, p.NumItems())
	have := ReduceSampleGrid(got, p.NumItems())
	for g := range want {
		if math.Float64bits(want[g].Sigma) != math.Float64bits(have[g].Sigma) ||
			math.Float64bits(want[g].Pi) != math.Float64bits(have[g].Pi) {
			t.Fatalf("group %d: reduction differs after binary round trip", g)
		}
	}
}

// FuzzSampleGridCodec feeds arbitrary bytes to the decoder (no panic,
// no unbounded allocation) and, when they happen to decode, checks the
// re-encode/decode fixpoint.
func FuzzSampleGridCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendSampleGrid(nil, [][]SampleResult{{}}))
	f.Add(AppendSampleGrid(nil, randomGrid(rand.New(rand.NewSource(1)), 2, 3, 5)))
	f.Fuzz(func(t *testing.T, data []byte) {
		grid, err := DecodeSampleGrid(wirebin.NewReader(data))
		if err != nil {
			return
		}
		b := AppendSampleGrid(nil, grid)
		again, err := DecodeSampleGrid(wirebin.NewReader(b))
		if err != nil {
			t.Fatalf("re-decode of re-encoded grid failed: %v", err)
		}
		gridsEqual(t, grid, again)
	})
}

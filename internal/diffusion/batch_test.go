package diffusion

import (
	"math"
	"runtime"
	"testing"

	"imdpp/internal/graph"
	"imdpp/internal/rng"
)

// batchProblem builds a stochastic instance with live dynamics so the
// engine is exercised on the full model, not the frozen regime.
func batchProblem(t *testing.T) *Problem {
	b := graph.NewBuilder(12, true)
	r := rng.New(0xBA7C4)
	for u := 0; u < 12; u++ {
		for v := 0; v < 12; v++ {
			if u != v && r.Float64() < 0.3 {
				b.AddEdge(u, v, 0.2+0.6*r.Float64())
			}
		}
	}
	return testProblem(t, b.Build(), func(u, x int) float64 {
		return 0.2 + 0.15*float64((u+x)%5)
	}, []float64{1, 2, 0.5, 3}, 3, DefaultParams())
}

func batchGroups(p *Problem) [][]Seed {
	var groups [][]Seed
	for u := 0; u < p.NumUsers(); u++ {
		groups = append(groups, []Seed{{User: u, Item: u % p.NumItems(), T: 1 + u%p.T}})
	}
	groups = append(groups,
		nil, // empty group: σ must be 0
		[]Seed{{User: 0, Item: 0, T: 1}, {User: 3, Item: 1, T: 2}, {User: 5, Item: 2, T: 3}},
	)
	return groups
}

// referenceEstimate is a naive single-threaded re-implementation of
// the estimator contract — fresh stream Split(i) per sample, samples
// accumulated in index order — pinning the semantics independently of
// the engine.
func referenceEstimate(p *Problem, m int, seed uint64, seeds []Seed, market []bool, withPi bool) Estimate {
	master := rng.New(seed)
	st := NewState(p)
	out := Estimate{PerItem: make([]float64, p.NumItems())}
	var res Result
	res.PerItem = make([]float64, p.NumItems())
	for i := 0; i < m; i++ {
		st.Reset(master.Split(uint64(i)))
		res.Sigma, res.MarketSigma, res.Adoptions, res.Steps = 0, 0, 0, 0
		for j := range res.PerItem {
			res.PerItem[j] = 0
		}
		st.RunCampaign(seeds, market, &res)
		out.Sigma += res.Sigma
		out.MarketSigma += res.MarketSigma
		out.Adoptions += float64(res.Adoptions)
		for j, v := range res.PerItem {
			out.PerItem[j] += v
		}
		if withPi {
			out.Pi += st.LikelihoodPi(market)
		}
	}
	inv := 1 / float64(m)
	out.Sigma *= inv
	out.MarketSigma *= inv
	out.Pi *= inv
	out.Adoptions *= inv
	for j := range out.PerItem {
		out.PerItem[j] *= inv
	}
	return out
}

func estimatesEqual(a, b Estimate) bool {
	if a.Sigma != b.Sigma || a.MarketSigma != b.MarketSigma ||
		a.Pi != b.Pi || a.Adoptions != b.Adoptions {
		return false
	}
	if len(a.PerItem) != len(b.PerItem) {
		return false
	}
	for i := range a.PerItem {
		if a.PerItem[i] != b.PerItem[i] {
			return false
		}
	}
	return true
}

// TestRunBatchMatchesRun: RunBatch must return bit-identical Estimates
// to per-group Run for the same master seed, for every worker count in
// {1, 4, GOMAXPROCS}, with and without a market mask and π.
func TestRunBatchMatchesRun(t *testing.T) {
	p := batchProblem(t)
	groups := batchGroups(p)
	market := make([]bool, p.NumUsers())
	for u := range market {
		market[u] = u%2 == 0
	}
	const m, seed = 33, 42
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, masked := range []bool{false, true} {
		var mask []bool
		if masked {
			mask = market
		}
		for _, withPi := range []bool{false, true} {
			// per-group sequential Run, one worker (reference schedule)
			seq := NewEstimator(p, m, seed)
			seq.Workers = 1
			want := make([]Estimate, len(groups))
			for g, seeds := range groups {
				want[g] = func() Estimate {
					if withPi {
						return seq.Run(seeds, mask, true)
					}
					return seq.Run(seeds, mask, false)
				}()
			}
			for _, w := range workerCounts {
				e := NewEstimator(p, m, seed)
				e.Workers = w
				var got []Estimate
				if withPi {
					got = e.RunBatchPi(groups, mask)
				} else {
					got = e.RunBatch(groups, mask)
				}
				for g := range groups {
					if !estimatesEqual(got[g], want[g]) {
						t.Fatalf("masked=%v withPi=%v workers=%d group %d: batch %+v != run %+v",
							masked, withPi, w, g, got[g], want[g])
					}
				}
			}
		}
	}
}

// TestRunBatchMatchesReference checks the engine against the naive
// single-threaded re-implementation, so a bug shared by Run and
// RunBatch (they use the same engine) cannot hide.
func TestRunBatchMatchesReference(t *testing.T) {
	p := batchProblem(t)
	groups := batchGroups(p)
	const m, seed = 17, 7
	e := NewEstimator(p, m, seed)
	e.Workers = 3
	got := e.RunBatchPi(groups, nil)
	for g, seeds := range groups {
		want := referenceEstimate(p, m, seed, seeds, nil, true)
		if !estimatesEqual(got[g], want) {
			t.Fatalf("group %d: engine %+v != reference %+v", g, got[g], want)
		}
	}
}

// TestRunBatchMasked: per-group masks must match per-group Run with
// the same mask.
func TestRunBatchMasked(t *testing.T) {
	p := batchProblem(t)
	groups := batchGroups(p)
	masks := make([][]bool, len(groups))
	for g := range masks {
		if g%3 == 0 {
			continue // nil mask
		}
		mask := make([]bool, p.NumUsers())
		for u := range mask {
			mask[u] = (u+g)%3 != 0
		}
		masks[g] = mask
	}
	const m, seed = 21, 1234
	e := NewEstimator(p, m, seed)
	e.Workers = 4
	got := e.RunBatchMasked(groups, masks, true)
	single := NewEstimator(p, m, seed)
	single.Workers = 1
	for g, seeds := range groups {
		want := single.Run(seeds, masks[g], true)
		if !estimatesEqual(got[g], want) {
			t.Fatalf("group %d: masked batch %+v != run %+v", g, got[g], want)
		}
	}
}

// TestSigmaBatchCRN: with common random numbers, identical groups in
// one batch get identical σ, and σ matches Sigma exactly.
func TestSigmaBatchCRN(t *testing.T) {
	p := batchProblem(t)
	seeds := []Seed{{User: 1, Item: 1, T: 1}}
	e := NewEstimator(p, 25, 99)
	sigs := e.SigmaBatch([][]Seed{seeds, seeds, seeds})
	if sigs[0] != sigs[1] || sigs[1] != sigs[2] {
		t.Fatalf("CRN violated: identical groups gave %v", sigs)
	}
	if want := NewEstimator(p, 25, 99).Sigma(seeds); sigs[0] != want {
		t.Fatalf("SigmaBatch %v != Sigma %v", sigs[0], want)
	}
}

// TestRunBatchEmpty: zero groups and zero seeds are well-defined.
func TestRunBatchEmpty(t *testing.T) {
	p := batchProblem(t)
	e := NewEstimator(p, 5, 1)
	if got := e.RunBatch(nil, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d estimates", len(got))
	}
	got := e.RunBatch([][]Seed{nil}, nil)
	if got[0].Sigma != 0 || got[0].Adoptions != 0 {
		t.Fatalf("σ(∅) = %+v", got[0])
	}
}

// TestSamplesDone: the throughput counter advances by K·M per batch.
func TestSamplesDone(t *testing.T) {
	p := batchProblem(t)
	e := NewEstimator(p, 8, 3)
	e.RunBatch(batchGroups(p)[:4], nil)
	if got := e.SamplesDone(); got != 4*8 {
		t.Fatalf("SamplesDone = %d, want 32", got)
	}
	e.Sigma(nil)
	if got := e.SamplesDone(); got != 5*8 {
		t.Fatalf("SamplesDone after Run = %d, want 40", got)
	}
}

// TestBatchEstimateSane: a quick sanity bound — σ estimates stay
// within [0, Σ_u Σ_x w_x] on the stochastic instance.
func TestBatchEstimateSane(t *testing.T) {
	p := batchProblem(t)
	maxSigma := 0.0
	for _, w := range p.Importance {
		maxSigma += w * float64(p.NumUsers())
	}
	e := NewEstimator(p, 16, 5)
	for _, est := range e.RunBatch(batchGroups(p), nil) {
		if est.Sigma < 0 || est.Sigma > maxSigma || math.IsNaN(est.Sigma) {
			t.Fatalf("σ out of bounds: %v", est.Sigma)
		}
	}
}

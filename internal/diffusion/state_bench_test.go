package diffusion

import (
	"testing"

	"imdpp/internal/graph"
	"imdpp/internal/kg"
	"imdpp/internal/pin"
	"imdpp/internal/rng"
)

// benchProblem builds a workload-shaped instance: a heavy-tailed
// social graph over users and a catalogue of items with feature-pair
// complements and 8-item category substitute pools. Unlike the 4-item
// testProblem, the item count here is large enough that dense
// per-worker |V|×|I| state would dominate memory.
func benchProblem(tb testing.TB, users, items int) *Problem {
	tb.Helper()
	b := kg.NewBuilder()
	tItem := b.NodeTypeID("ITEM")
	tFeature := b.NodeTypeID("FEATURE")
	tCategory := b.NodeTypeID("CATEGORY")
	eSup := b.EdgeTypeID("SUPPORTS")
	eCat := b.EdgeTypeID("IN_CATEGORY")
	ids := make([]int, items)
	for i := range ids {
		ids[i] = b.AddNode(tItem)
	}
	for i := 0; i+1 < items; i += 2 {
		f := b.AddNode(tFeature)
		b.AddEdge(ids[i], f, eSup)
		b.AddEdge(ids[i+1], f, eSup)
	}
	for c := 0; c*8 < items; c++ {
		cat := b.AddNode(tCategory)
		for j := c * 8; j < (c+1)*8 && j < items; j++ {
			b.AddEdge(ids[j], cat, eCat)
		}
	}
	kgraph := b.Build()
	model, err := pin.NewModel(kgraph,
		[]*kg.MetaGraph{kg.PathMetaGraph("c", kg.Complementary, tItem, tFeature, eSup, eSup)},
		[]*kg.MetaGraph{kg.PathMetaGraph("s", kg.Substitutable, tItem, tCategory, eCat, eCat)},
		[]float64{0.5, 0.5})
	if err != nil {
		tb.Fatal(err)
	}
	r := rng.New(11)
	g := graph.BarabasiAlbert(users, 3, false, graph.WeightModel{Mean: 0.15, Jitter: 0.5}, r)
	imp := make([]float64, items)
	for i := range imp {
		imp[i] = 1
	}
	basePref := NewMatrix(users, items)
	cost := NewMatrix(users, items)
	for u := 0; u < users; u++ {
		pr := basePref.Row(u)
		cr := cost.Row(u)
		for x := 0; x < items; x++ {
			pr[x] = 0.05 + 0.01*float64((u*7+x*13)%30)
			cr[x] = 1
		}
	}
	p := &Problem{
		G: g, KG: kgraph, PIN: model,
		Importance: imp, BasePref: basePref, Cost: cost,
		Budget: 1e9, T: 3, Params: DefaultParams(),
	}
	if err := p.Validate(); err != nil {
		tb.Fatal(err)
	}
	return p
}

// BenchmarkRunCampaign measures the diffusion hot path — one full
// T-promotion campaign per iteration on a reused state, the unit of
// work every Monte-Carlo sample pays. Allocations per op should be ~0:
// steady-state sampling runs entirely out of the state's row pools.
func BenchmarkRunCampaign(b *testing.B) {
	p := benchProblem(b, 2000, 256)
	seeds := []Seed{
		{User: 0, Item: 0, T: 1},
		{User: 1, Item: 2, T: 1},
		{User: 5, Item: 1, T: 2},
		{User: 9, Item: 3, T: 3},
	}
	st := NewState(p)
	master := rng.New(7)
	var res Result
	res.PerItem = make([]float64, p.NumItems())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset(master.Split(uint64(i)))
		res.Sigma, res.MarketSigma, res.Adoptions, res.Steps = 0, 0, 0, 0
		st.RunCampaign(seeds, nil, &res)
	}
	b.StopTimer()
	b.ReportMetric(float64(st.MemoryFootprint()), "state-bytes")
}

// BenchmarkNewStateSparse measures what one worker pays to materialise
// a fresh State under the sparse layout: O(|V|) headers, no |V|×|I|
// payload.
func BenchmarkNewStateSparse(b *testing.B) {
	p := benchProblem(b, 2000, 256)
	b.ReportAllocs()
	b.ResetTimer()
	var st *State
	for i := 0; i < b.N; i++ {
		st = NewState(p)
	}
	b.StopTimer()
	b.ReportMetric(float64(st.MemoryFootprint()), "state-bytes")
}

// BenchmarkNewStateDenseBaseline allocates the seed layout's dense
// per-worker arrays — a |V|×|I| float64 preference-delta table and a
// |V|×⌈|I|/64⌉ adoption bitset — as the contrast baseline for
// BenchmarkNewStateSparse. Kept as a reference so the alloc gap the
// sparsification bought stays visible in bench output.
func BenchmarkNewStateDenseBaseline(b *testing.B) {
	p := benchProblem(b, 2000, 256)
	n, items := p.NumUsers(), p.NumItems()
	words := (items + 63) / 64
	b.ReportAllocs()
	b.ResetTimer()
	var prefDelta []float64
	var adopted []uint64
	for i := 0; i < b.N; i++ {
		prefDelta = make([]float64, n*items)
		adopted = make([]uint64, n*words)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(prefDelta)*8+len(adopted)*8), "state-bytes")
}

package rng

import "math"

// Rand is a xoshiro256** generator. The zero value is invalid; use New.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next splitmix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the 64-bit seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro256** must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent stream from r. The derived stream is a
// function of r's current state and the stream index i, so workers can
// be created deterministically: Split(0), Split(1), ...
func (r *Rand) Split(i uint64) *Rand {
	x := r.s[0] ^ (r.s[2] * 0x9e3779b97f4a7c15) ^ (i+1)*0xd1342543de82ef95
	return New(x)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli reports true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *Rand) NormFloat64() float64 {
	// Marsaglia polar method; rejection loop terminates with prob 1.
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns exp(N(mu, sigma^2)). Used for price-like item
// importance distributions.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Beta24 returns a Beta(2,4)-ish variate in (0,1) computed as the
// second order statistic trick: min of uniforms skews low, matching
// sparse initial preferences. Exact Beta sampling is unnecessary for
// workload generation; this is cheap and bounded.
func (r *Rand) Beta24() float64 {
	a := r.Float64()
	b := r.Float64()
	c := r.Float64()
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// Zipf returns an integer in [0, n) drawn from a Zipf-like distribution
// with exponent s (s > 0), using inverse-CDF on precomputed weights is
// avoided; this uses rejection-free discrete power-law via the
// cumulative trick on the fly for small n, so it is O(n) worst case but
// callers only use it during dataset generation.
func (r *Rand) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Draw u in (0, H(n)] and invert by linear scan. Dataset-time only.
	h := 0.0
	for i := 1; i <= n; i++ {
		h += math.Pow(float64(i), -s)
	}
	u := r.Float64() * h
	acc := 0.0
	for i := 1; i <= n; i++ {
		acc += math.Pow(float64(i), -s)
		if u <= acc {
			return i - 1
		}
	}
	return n - 1
}

// Perm fills dst with a uniform random permutation of [0, len(dst)).
func (r *Rand) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Shuffle shuffles the first n elements using the provided swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

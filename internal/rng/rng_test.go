package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions across different seeds", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("only %d distinct values of 10", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdgeCases(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(13)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / float64(n)
	if math.Abs(freq-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %v", freq)
	}
}

func TestSplitIndependence(t *testing.T) {
	master := New(99)
	a := master.Split(0)
	b := master.Split(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between split streams", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(5).Split(3)
	b := New(5).Split(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split not deterministic")
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	n := 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(21)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced %v", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(23)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v", v)
		}
	}
}

func TestBeta24Range(t *testing.T) {
	r := New(29)
	sum := 0.0
	n := 50000
	for i := 0; i < n; i++ {
		v := r.Beta24()
		if v < 0 || v > 1 {
			t.Fatalf("Beta24 = %v", v)
		}
		sum += v
	}
	// E[min of 3 uniforms] = 1/4
	mean := sum / float64(n)
	if math.Abs(mean-0.25) > 0.01 {
		t.Fatalf("Beta24 mean %v, want ~0.25", mean)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(31)
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		v := r.Zipf(10, 1.2)
		if v < 0 || v >= 10 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[9] {
		t.Fatalf("Zipf not skewed: first=%d last=%d", counts[0], counts[9])
	}
}

func TestZipfDegenerate(t *testing.T) {
	r := New(1)
	if r.Zipf(1, 1) != 0 {
		t.Fatal("Zipf(1) != 0")
	}
	if r.Zipf(0, 1) != 0 {
		t.Fatal("Zipf(0) != 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		dst := make([]int, n)
		r.Perm(dst)
		seen := make([]bool, n)
		for _, v := range dst {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(41)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, v := range xs {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

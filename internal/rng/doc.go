// Package rng provides fast, splittable pseudo-random number generation
// for Monte-Carlo influence simulation.
//
// The generator is xoshiro256**, seeded through splitmix64 so that any
// 64-bit master seed yields a well-mixed state. Streams derived with
// Split are statistically independent, which lets parallel Monte-Carlo
// workers draw from their own stream while keeping the overall
// experiment deterministic for a fixed master seed.
package rng

package fleettest

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is the proxy's active fault injection.
type Mode int32

const (
	// Pass forwards requests untouched.
	Pass Mode = iota
	// Drop swallows requests: the client blocks until it gives up
	// (context deadline / client timeout) — a hung or partitioned
	// worker.
	Drop
	// Delay forwards after the configured latency — a slow network or
	// an overloaded worker (stragglers, speculation bait).
	Delay
	// Reset closes the TCP connection without writing a response — a
	// kill -9 observed mid-request.
	Reset
	// Truncate writes a response header with the full Content-Length
	// but only half the body, then closes — a worker dying mid-write,
	// exercising the coordinator's frame decoding under short reads.
	Truncate
	// Error500 answers 500 without consulting the worker — a crashing
	// handler.
	Error500
)

func (m Mode) String() string {
	switch m {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	case Error500:
		return "error500"
	}
	return "unknown"
}

// Proxy is a chaos reverse proxy in front of one worker. Mount its
// Handler on an httptest server and point the coordinator at that URL.
// All methods are safe for concurrent use; the mode can change while
// requests are in flight.
type Proxy struct {
	mu     sync.Mutex
	target string // worker base URL ("" = no backend: everything resets)

	mode  atomic.Int32
	delay atomic.Int64 // Delay mode latency, nanoseconds

	// killAfter, when nonzero, forces Reset from request killAfter+1 on
	// — a deterministic kill -9 point mid-solve, independent of timing.
	killAfter atomic.Uint64

	// passHealthz, when set, exempts GET /healthz from fault injection
	// — a flapping worker whose probes pass while dispatches die, the
	// circuit breaker's reason to exist.
	passHealthz atomic.Bool

	client *http.Client

	stopOnce sync.Once
	stop     chan struct{} // releases Drop-blocked requests on Close

	requests atomic.Uint64
	faults   atomic.Uint64
}

// NewProxy builds a chaos proxy forwarding to the worker at target.
func NewProxy(target string) *Proxy {
	return &Proxy{
		target: strings.TrimSuffix(target, "/"),
		client: &http.Client{Timeout: 2 * time.Minute},
		stop:   make(chan struct{}),
	}
}

// SetMode switches the active fault injection.
func (p *Proxy) SetMode(m Mode) { p.mode.Store(int32(m)) }

// CurrentMode reports the active fault injection.
func (p *Proxy) CurrentMode() Mode { return Mode(p.mode.Load()) }

// SetDelay sets the Delay-mode latency.
func (p *Proxy) SetDelay(d time.Duration) { p.delay.Store(int64(d)) }

// KillAfter arms a deterministic kill: the first n requests pass
// normally, every later one gets a connection reset — the worker died
// at a fixed point mid-workload. Zero disarms.
func (p *Proxy) KillAfter(n uint64) { p.killAfter.Store(n) }

// PassHealthz exempts GET /healthz from fault injection (the flapping-
// worker shape: probes fine, dispatches die).
func (p *Proxy) PassHealthz(on bool) { p.passHealthz.Store(on) }

// SetTarget repoints the proxy at a new worker URL — a "restarted on
// the same address" rejoin without rebinding the listener.
func (p *Proxy) SetTarget(target string) {
	p.mu.Lock()
	p.target = strings.TrimSuffix(target, "/")
	p.mu.Unlock()
}

// Requests reports how many requests reached the proxy; Faults how
// many were answered with an injected fault.
func (p *Proxy) Requests() uint64 { return p.requests.Load() }
func (p *Proxy) Faults() uint64   { return p.faults.Load() }

// Close releases any Drop-blocked requests. The proxy stays usable
// (Pass-through) afterwards; Close exists so tests do not leak blocked
// handler goroutines past their own scope.
func (p *Proxy) Close() { p.stopOnce.Do(func() { close(p.stop) }) }

// Handler serves the proxy. Use as the handler of an httptest.Server.
func (p *Proxy) Handler() http.Handler { return http.HandlerFunc(p.serve) }

func (p *Proxy) serve(rw http.ResponseWriter, r *http.Request) {
	n := p.requests.Add(1)
	mode := p.CurrentMode()
	if k := p.killAfter.Load(); k > 0 && n > k {
		mode = Reset
	}
	if p.passHealthz.Load() && r.Method == http.MethodGet && r.URL.Path == "/healthz" {
		mode = Pass
	}
	switch mode {
	case Drop:
		p.faults.Add(1)
		select { // hold the request open until the client gives up
		case <-r.Context().Done():
		case <-p.stop:
		}
		return
	case Reset:
		p.faults.Add(1)
		p.hijackClose(rw, nil, 0)
		return
	case Error500:
		p.faults.Add(1)
		http.Error(rw, "injected fault", http.StatusInternalServerError)
		return
	case Delay:
		p.faults.Add(1)
		t := time.NewTimer(time.Duration(p.delay.Load()))
		defer t.Stop()
		select {
		case <-r.Context().Done():
			return
		case <-p.stop:
			return
		case <-t.C:
		}
	}

	status, header, body, err := p.forward(r)
	if err != nil {
		// no backend (or it died): surface as a connection reset, the
		// closest transport-level analogue
		p.hijackClose(rw, nil, 0)
		return
	}
	if mode == Truncate {
		p.faults.Add(1)
		p.hijackClose(rw, &truncated{status: status, contentType: header.Get("Content-Type"), body: body}, len(body)/2)
		return
	}
	for k, vs := range header {
		for _, v := range vs {
			rw.Header().Add(k, v)
		}
	}
	rw.WriteHeader(status)
	_, _ = rw.Write(body)
}

// forward relays the request to the target worker and buffers the
// response (buffering is what makes Truncate's half-body math exact).
func (p *Proxy) forward(r *http.Request) (int, http.Header, []byte, error) {
	p.mu.Lock()
	target := p.target
	p.mu.Unlock()
	if target == "" {
		return 0, nil, nil, fmt.Errorf("fleettest: proxy has no target")
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	for _, h := range []string{"Content-Type", "Accept"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, out, nil
}

// truncated describes the partial response Truncate fabricates.
type truncated struct {
	status      int
	contentType string
	body        []byte
}

// hijackClose takes over the TCP connection. With t nil it closes
// immediately (Reset); with t set it hand-writes an HTTP/1.1 response
// claiming the full Content-Length, sends only n body bytes, and
// closes — a short read the client cannot mistake for a complete
// frame.
func (p *Proxy) hijackClose(rw http.ResponseWriter, t *truncated, n int) {
	hj, ok := rw.(http.Hijacker)
	if !ok { // e.g. HTTP/2 test server: degrade to an abrupt 500
		rw.WriteHeader(http.StatusInternalServerError)
		return
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	if t == nil {
		return
	}
	fmt.Fprintf(buf, "HTTP/1.1 %d %s\r\n", t.status, http.StatusText(t.status))
	if t.contentType != "" {
		fmt.Fprintf(buf, "Content-Type: %s\r\n", t.contentType)
	}
	fmt.Fprintf(buf, "Content-Length: %d\r\nConnection: close\r\n\r\n", len(t.body))
	_, _ = buf.Write(t.body[:n])
	_ = buf.Flush()
}

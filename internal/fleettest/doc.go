// Package fleettest provides the shard-layer chaos harness (DESIGN.md
// §13): a misbehaving-worker reverse proxy that injects the failure
// modes a real fleet meets — dropped requests, added latency,
// connection resets, truncated response frames, and spurious 500s —
// between a coordinator and an otherwise healthy worker.
//
// The proxy misbehaves at the transport, never at the math: the worker
// behind it computes every sample it is asked for unchanged, so every
// chaos scenario must still converge to a solve bit-identical to a
// single-process run (the §3 determinism contract) — the coordinator's
// failure detector, failover re-dispatch and local fallback absorb the
// faults. Tests flip the fault mode while a solve is in flight to
// reproduce kill -9, flapping and slow-network conditions on demand.
package fleettest

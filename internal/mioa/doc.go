// Package mioa implements the Maximum Influence Out-Arborescence of
// Chen, Wang and Wang (KDD 2010), which TMI uses to expand a cluster of
// nominees into a target market (footnote 17): starting from the
// nominees' users, every user reachable through a maximum-influence
// path whose propagation probability is at least θ belongs to the
// region the nominees can effectively influence.
package mioa

package mioa

import (
	"math"
	"testing"

	"imdpp/internal/graph"
)

func diamond() *graph.Graph {
	// 0→1 (0.8), 0→2 (0.5), 1→3 (0.5), 2→3 (0.9)
	b := graph.NewBuilder(4, true)
	b.AddEdge(0, 1, 0.8)
	b.AddEdge(0, 2, 0.5)
	b.AddEdge(1, 3, 0.5)
	b.AddEdge(2, 3, 0.9)
	return b.Build()
}

func TestProbabilitiesSingleSource(t *testing.T) {
	g := diamond()
	p := Probabilities(g, []int{0})
	want := []float64{1, 0.8, 0.5, 0.45} // best to 3 is 0→2→3
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("p[%d]=%v want %v", i, p[i], want[i])
		}
	}
}

func TestProbabilitiesMultiSource(t *testing.T) {
	g := diamond()
	p := Probabilities(g, []int{1, 2})
	if p[1] != 1 || p[2] != 1 {
		t.Fatalf("sources not 1: %v", p)
	}
	if math.Abs(p[3]-0.9) > 1e-12 {
		t.Fatalf("p[3]=%v", p[3])
	}
	if p[0] != 0 {
		t.Fatalf("unreachable p[0]=%v", p[0])
	}
}

func TestRegionThreshold(t *testing.T) {
	g := diamond()
	region := Region(g, []int{0}, 0.5)
	// includes 0 (1.0), 1 (0.8), 2 (0.5); excludes 3 (0.45)
	if len(region) != 3 || region[0] != 0 || region[1] != 1 || region[2] != 2 {
		t.Fatalf("region %v", region)
	}
	// default threshold keeps everything here
	region = Region(g, []int{0}, 0)
	if len(region) != 4 {
		t.Fatalf("default-threshold region %v", region)
	}
}

func TestRegionInvalidSource(t *testing.T) {
	g := diamond()
	region := Region(g, []int{-3, 99}, 0.5)
	if len(region) != 0 {
		t.Fatalf("region from invalid sources: %v", region)
	}
}

func TestArborescence(t *testing.T) {
	g := diamond()
	parent, prob := Arborescence(g, 0, 0.4)
	if parent[0] != 0 {
		t.Fatalf("root parent %d", parent[0])
	}
	if parent[3] != 2 {
		t.Fatalf("parent[3]=%d, want 2 (via the 0.45 path)", parent[3])
	}
	if math.Abs(prob[3]-0.45) > 1e-12 {
		t.Fatalf("prob[3]=%v", prob[3])
	}
	// tighter threshold prunes node 3
	parent, prob = Arborescence(g, 0, 0.5)
	if parent[3] != -1 || prob[3] != 0 {
		t.Fatalf("threshold did not prune: parent=%d prob=%v", parent[3], prob[3])
	}
}

func TestSpreadEstimate(t *testing.T) {
	g := diamond()
	s := SpreadEstimate(g, 0, 0.4)
	want := 1 + 0.8 + 0.5 + 0.45
	if math.Abs(s-want) > 1e-12 {
		t.Fatalf("spread %v want %v", s, want)
	}
	// isolated node spreads only to itself
	if s := SpreadEstimate(g, 3, 0.4); s != 1 {
		t.Fatalf("sink spread %v", s)
	}
}

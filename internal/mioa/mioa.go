package mioa

import (
	"sort"

	"imdpp/internal/graph"
)

// DefaultThreshold is the classic 1/320 path-probability cutoff used
// in the MIA/PMIA literature.
const DefaultThreshold = 1.0 / 320

// Region computes the influence region of the source users: all users
// whose maximum-influence path probability from any source is at least
// threshold. Sources always belong to their own region.
func Region(g *graph.Graph, sources []int, threshold float64) []int {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	prob := Probabilities(g, sources)
	var region []int
	for v, p := range prob {
		if p >= threshold {
			region = append(region, v)
		}
	}
	sort.Ints(region)
	return region
}

// Probabilities returns, per vertex, the best path probability from
// any of the sources (multi-source Dijkstra on the product metric).
func Probabilities(g *graph.Graph, sources []int) []float64 {
	prob := make([]float64, g.N())
	h := newHeap()
	for _, s := range sources {
		if s >= 0 && s < g.N() && prob[s] < 1 {
			prob[s] = 1
			h.push(int32(s), 1)
		}
	}
	for h.len() > 0 {
		v, p := h.pop()
		if p < prob[v] {
			continue
		}
		arcs := g.Out(int(v))
		for i, to := range arcs.To {
			np := p * arcs.W[i]
			if np > prob[to] {
				prob[to] = np
				h.push(to, np)
			}
		}
	}
	return prob
}

// Arborescence computes the MIOA tree of a single source: parent
// pointers along maximum-influence paths for every vertex with path
// probability ≥ threshold. parent[source] = source; unreached
// vertices have parent -1.
func Arborescence(g *graph.Graph, source int, threshold float64) (parent []int32, prob []float64) {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	prob = make([]float64, g.N())
	parent = make([]int32, g.N())
	g.MaxInfluencePathsInto(source, prob, parent)
	for v := range prob {
		if prob[v] < threshold {
			prob[v] = 0
			parent[v] = -1
		}
	}
	parent[source] = int32(source)
	return parent, prob
}

// SpreadEstimate is the MIA-style closed-form influence estimate of a
// single seed: the sum of maximum-influence path probabilities over
// the region. The PS baseline uses this as its per-seed influence
// score.
func SpreadEstimate(g *graph.Graph, source int, threshold float64) float64 {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	prob := Probabilities(g, []int{source})
	total := 0.0
	for _, p := range prob {
		if p >= threshold {
			total += p
		}
	}
	return total
}

// --- tiny max-heap ----------------------------------------------------

type heapItem struct {
	v int32
	p float64
}

type maxHeap struct{ a []heapItem }

func newHeap() *maxHeap { return &maxHeap{} }

func (h *maxHeap) len() int { return len(h.a) }

func (h *maxHeap) push(v int32, p float64) {
	h.a = append(h.a, heapItem{v, p})
	i := len(h.a) - 1
	for i > 0 {
		par := (i - 1) / 2
		if h.a[par].p >= h.a[i].p {
			break
		}
		h.a[par], h.a[i] = h.a[i], h.a[par]
		i = par
	}
}

func (h *maxHeap) pop() (int32, float64) {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r, big := 2*i+1, 2*i+2, i
		if l < last && h.a[l].p > h.a[big].p {
			big = l
		}
		if r < last && h.a[r].p > h.a[big].p {
			big = r
		}
		if big == i {
			break
		}
		h.a[i], h.a[big] = h.a[big], h.a[i]
		i = big
	}
	return top.v, top.p
}

// Package servicetest provides fault-injection harnesses for testing
// the serving layer under adverse conditions (DESIGN.md §12): an
// estimation backend with controllable per-evaluation stalls, and a
// concurrent burst driver with outcome tallying. The service and
// daemon chaos test tiers share these so slow solvers, mid-job
// cancellation, client disconnects and queue-full bursts are exercised
// against one deterministic fault model.
//
// The fault injections are scheduling-only: a stalled backend delays
// evaluations but delegates them unchanged to the local engine, so
// results remain bit-identical to an unstalled run (the §3 determinism
// contract) and golden comparisons hold across every chaos scenario.
package servicetest

package servicetest

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"imdpp/internal/core"
	"imdpp/internal/diffusion"
)

// Faults is a controllable fault model for the estimation backend.
// Tests adjust it while a service is live; all fields are safe for
// concurrent use.
type Faults struct {
	// delay is the per-evaluation stall in nanoseconds. Every estimator
	// call waits min(delay, context cancellation) before delegating.
	delay atomic.Int64
	// calls counts estimator evaluations that passed the stall.
	calls atomic.Uint64
}

// SetDelay sets the per-evaluation stall. Zero removes it.
func (f *Faults) SetDelay(d time.Duration) { f.delay.Store(int64(d)) }

// Calls reports how many estimator evaluations ran.
func (f *Faults) Calls() uint64 { return f.calls.Load() }

// Backend returns an EstimatorFactory injecting f's faults in front of
// the local engine. The stall honours the estimator's bound context,
// so cancellation stays prompt even mid-stall; the delegated
// evaluation is unchanged, keeping results bit-identical to an
// unstalled local solve (§3).
func (f *Faults) Backend() core.EstimatorFactory {
	return func(p *diffusion.Problem, samples int, seed uint64, workers int) core.Estimator {
		return &slowEstimator{Estimator: core.LocalEstimator(p, samples, seed, workers), f: f}
	}
}

// slowEstimator stalls each evaluation, then delegates to the wrapped
// engine. Only the evaluation entry points are intercepted; Reseed,
// SamplesDone and StateBytes pass straight through via embedding.
type slowEstimator struct {
	core.Estimator
	f *Faults

	mu  sync.Mutex
	ctx context.Context
}

func (e *slowEstimator) Bind(ctx context.Context) {
	e.mu.Lock()
	e.ctx = ctx
	e.mu.Unlock()
	e.Estimator.Bind(ctx)
}

// stall waits the configured delay or until the bound context fires.
func (e *slowEstimator) stall() {
	d := time.Duration(e.f.delay.Load())
	defer e.f.calls.Add(1)
	if d <= 0 {
		return
	}
	e.mu.Lock()
	ctx := e.ctx
	e.mu.Unlock()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}

func (e *slowEstimator) Sigma(seeds []diffusion.Seed) float64 {
	e.stall()
	return e.Estimator.Sigma(seeds)
}

func (e *slowEstimator) Run(seeds []diffusion.Seed, market []bool, withPi bool) diffusion.Estimate {
	e.stall()
	return e.Estimator.Run(seeds, market, withPi)
}

func (e *slowEstimator) RunBatch(groups [][]diffusion.Seed, market []bool) []diffusion.Estimate {
	e.stall()
	return e.Estimator.RunBatch(groups, market)
}

func (e *slowEstimator) RunBatchPi(groups [][]diffusion.Seed, market []bool) []diffusion.Estimate {
	e.stall()
	return e.Estimator.RunBatchPi(groups, market)
}

func (e *slowEstimator) RunBatchMasked(groups [][]diffusion.Seed, masks [][]bool, withPi bool) []diffusion.Estimate {
	e.stall()
	return e.Estimator.RunBatchMasked(groups, masks, withPi)
}

func (e *slowEstimator) SigmaBatch(groups [][]diffusion.Seed) []float64 {
	e.stall()
	return e.Estimator.SigmaBatch(groups)
}

func (e *slowEstimator) MeanWeights(seeds []diffusion.Seed, users []int) []float64 {
	e.stall()
	return e.Estimator.MeanWeights(seeds, users)
}

// Burst runs fn(0..n-1) concurrently and returns each call's error,
// index-aligned — the driver behind queue-full burst scenarios, where
// the interesting signal is the exact mix of accepted and shed
// submissions.
func Burst(n int, fn func(i int) error) []error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errs
}

package cluster

import (
	"testing"

	"imdpp/internal/graph"
	"imdpp/internal/kg"
	"imdpp/internal/pin"
)

// twoCommunityWorld builds two 4-user cliques joined by nothing, and a
// KG with a complementary pair (0,1) and a substitutable pair (2,3).
func twoCommunityWorld(t *testing.T) (*graph.Graph, *pin.Model) {
	t.Helper()
	gb := graph.NewBuilder(8, false)
	for c := 0; c < 2; c++ {
		base := c * 4
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				gb.AddEdge(base+i, base+j, 0.5)
			}
		}
	}
	g := gb.Build()

	b := kg.NewBuilder()
	tItem := b.NodeTypeID("ITEM")
	tFeature := b.NodeTypeID("FEATURE")
	tCategory := b.NodeTypeID("CATEGORY")
	eSup := b.EdgeTypeID("SUPPORTS")
	eCat := b.EdgeTypeID("IN_CATEGORY")
	items := make([]int, 4)
	for i := range items {
		items[i] = b.AddNode(tItem)
	}
	f := b.AddNode(tFeature)
	c := b.AddNode(tCategory)
	b.AddEdge(items[0], f, eSup)
	b.AddEdge(items[1], f, eSup)
	b.AddEdge(items[2], c, eCat)
	b.AddEdge(items[3], c, eCat)
	kgr := b.Build()
	model, err := pin.NewModel(kgr,
		[]*kg.MetaGraph{kg.PathMetaGraph("c", kg.Complementary, tItem, tFeature, eSup, eSup)},
		[]*kg.MetaGraph{kg.PathMetaGraph("s", kg.Substitutable, tItem, tCategory, eCat, eCat)},
		[]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return g, model
}

func TestClusterEmpty(t *testing.T) {
	g, m := twoCommunityWorld(t)
	if got := Cluster(g, m, nil, DefaultOptions()); got != nil {
		t.Fatalf("empty nominees clustered: %v", got)
	}
}

func TestProximitySplitsBySocialDistance(t *testing.T) {
	g, m := twoCommunityWorld(t)
	// same item (always compatible) but users in different communities
	noms := []Nominee{{User: 0, Item: 0}, {User: 1, Item: 0}, {User: 4, Item: 0}}
	clusters := Cluster(g, m, noms, DefaultOptions())
	if len(clusters) != 2 {
		t.Fatalf("clusters: %v", clusters)
	}
	if len(clusters[0]) != 2 || clusters[0][0] != 0 || clusters[0][1] != 1 {
		t.Fatalf("first cluster %v", clusters[0])
	}
	if len(clusters[1]) != 1 || clusters[1][0] != 2 {
		t.Fatalf("second cluster %v", clusters[1])
	}
}

func TestProximitySplitsSubstitutableItems(t *testing.T) {
	g, m := twoCommunityWorld(t)
	// same community, but items 2 and 3 are substitutable: they must
	// not share a target market
	noms := []Nominee{{User: 0, Item: 2}, {User: 1, Item: 3}}
	clusters := Cluster(g, m, noms, DefaultOptions())
	if len(clusters) != 2 {
		t.Fatalf("substitutable items merged: %v", clusters)
	}
	// complementary items cluster together
	noms = []Nominee{{User: 0, Item: 0}, {User: 1, Item: 1}}
	clusters = Cluster(g, m, noms, DefaultOptions())
	if len(clusters) != 1 {
		t.Fatalf("complementary items split: %v", clusters)
	}
}

func TestProximityMaxHops(t *testing.T) {
	// line 0-1-2: users 0 and 2 are 2 hops apart
	gb := graph.NewBuilder(3, false)
	gb.AddEdge(0, 1, 0.5)
	gb.AddEdge(1, 2, 0.5)
	g := gb.Build()
	_, m := twoCommunityWorld(t)
	noms := []Nominee{{User: 0, Item: 0}, {User: 2, Item: 0}}
	if got := Cluster(g, m, noms, Options{MaxHops: 1}); len(got) != 2 {
		t.Fatalf("1-hop clustering merged 2-hop users: %v", got)
	}
	if got := Cluster(g, m, noms, Options{MaxHops: 2}); len(got) != 1 {
		t.Fatalf("2-hop clustering split reachable users: %v", got)
	}
}

func TestCoCluster(t *testing.T) {
	g, m := twoCommunityWorld(t)
	noms := []Nominee{
		{User: 0, Item: 0}, {User: 1, Item: 1}, // community A, complement pair
		{User: 4, Item: 0}, // community B, same item
		{User: 2, Item: 2}, // community A, substitute pool
	}
	clusters := Cluster(g, m, noms, Options{Strategy: CoCluster, MaxHops: 1})
	// user clusters: {0,1,2} and {4}; item clusters: {0,1} and {2}(+{3})
	// → cells: (A,{0,1})={0,1}, (B,{0,1})={2}, (A,{2})={3}
	if len(clusters) != 3 {
		t.Fatalf("co-clusters: %v", clusters)
	}
}

func TestClusterDeterministic(t *testing.T) {
	g, m := twoCommunityWorld(t)
	noms := []Nominee{
		{User: 0, Item: 0}, {User: 1, Item: 1}, {User: 4, Item: 2},
		{User: 5, Item: 3}, {User: 2, Item: 0},
	}
	a := Cluster(g, m, noms, DefaultOptions())
	b := Cluster(g, m, noms, DefaultOptions())
	if len(a) != len(b) {
		t.Fatal("nondeterministic cluster count")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("nondeterministic cluster sizes")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("nondeterministic membership")
			}
		}
	}
}

func TestClustersPartitionNominees(t *testing.T) {
	g, m := twoCommunityWorld(t)
	noms := []Nominee{
		{User: 0, Item: 0}, {User: 1, Item: 1}, {User: 4, Item: 2},
		{User: 5, Item: 3}, {User: 2, Item: 0}, {User: 6, Item: 1},
	}
	for _, strat := range []Strategy{Proximity, CoCluster} {
		clusters := Cluster(g, m, noms, Options{Strategy: strat, MaxHops: 1})
		seen := make([]bool, len(noms))
		total := 0
		for _, cl := range clusters {
			for _, idx := range cl {
				if seen[idx] {
					t.Fatalf("strategy %d: nominee %d in two clusters", strat, idx)
				}
				seen[idx] = true
				total++
			}
		}
		if total != len(noms) {
			t.Fatalf("strategy %d: %d of %d nominees clustered", strat, total, len(noms))
		}
	}
}

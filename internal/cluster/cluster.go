package cluster

import (
	"sort"

	"imdpp/internal/graph"
	"imdpp/internal/pin"
)

// Nominee is a candidate (user, item) pair.
type Nominee struct {
	User int `json:"user"`
	Item int `json:"item"`
}

// Strategy selects the clustering algorithm.
type Strategy uint8

// Available strategies.
const (
	Proximity Strategy = iota // POT-like, the default
	CoCluster                 // FGCC-like
)

// Options tune clustering.
type Options struct {
	Strategy Strategy
	// MaxHops is the social distance within which two nominees' users
	// count as socially close (default 2).
	MaxHops int
	// MinRelGap is the minimum r̄C−r̄S between two nominees' items for
	// them to be clustered together (default 0: complementary must at
	// least balance substitutable). Nominees promoting the same item
	// are always compatible.
	MinRelGap float64
}

// DefaultOptions returns the defaults documented above. MaxHops is 1
// because heavy-tailed social graphs put most users within two hops of
// a hub — two-hop closeness would merge every nominee into one market.
// MinRelGap requires a strictly complementary-leaning pair.
func DefaultOptions() Options { return Options{MaxHops: 1, MinRelGap: 0.02} }

// Cluster partitions nominees into clusters. The result is a list of
// clusters, each a list of indices into the nominees slice, in
// deterministic order.
func Cluster(g *graph.Graph, model *pin.Model, nominees []Nominee, opt Options) [][]int {
	if len(nominees) == 0 {
		return nil
	}
	if opt.MaxHops <= 0 {
		opt.MaxHops = 2
	}
	switch opt.Strategy {
	case CoCluster:
		return coCluster(g, model, nominees, opt)
	default:
		return proximityCluster(g, model, nominees, opt)
	}
}

// itemCompatible reports whether items x,y are complementary enough to
// share a target market under the static (initial-weight) relevance.
func itemCompatible(model *pin.Model, x, y int, minGap float64) bool {
	if x == y {
		return true
	}
	rc, rs := model.RelStatic(x, y)
	return rc-rs > minGap
}

// proximityCluster builds the nominee compatibility graph and returns
// its connected components.
func proximityCluster(g *graph.Graph, model *pin.Model, nominees []Nominee, opt Options) [][]int {
	near := socialNeighborhoods(g, nominees, opt.MaxHops)
	n := len(nominees)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !near(nominees[i].User, nominees[j].User) {
				continue
			}
			if itemCompatible(model, nominees[i].Item, nominees[j].Item, opt.MinRelGap) {
				union(i, j)
			}
		}
	}
	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	return orderedClusters(groups)
}

// coCluster clusters users and items independently, then intersects.
func coCluster(g *graph.Graph, model *pin.Model, nominees []Nominee, opt Options) [][]int {
	near := socialNeighborhoods(g, nominees, opt.MaxHops)
	// user clusters: components of the "socially close" relation over
	// the distinct nominee users
	users := distinctUsers(nominees)
	uComp := components(len(users), func(i, j int) bool {
		return near(users[i], users[j])
	})
	userCluster := map[int]int{}
	for i, u := range users {
		userCluster[u] = uComp[i]
	}
	// item clusters: components of the complementary-relevance relation
	items := distinctItems(nominees)
	iComp := components(len(items), func(i, j int) bool {
		return itemCompatible(model, items[i], items[j], opt.MinRelGap)
	})
	itemCluster := map[int]int{}
	for i, x := range items {
		itemCluster[x] = iComp[i]
	}
	groups := map[int][]int{}
	for idx, nm := range nominees {
		key := userCluster[nm.User]*(len(items)+1) + itemCluster[nm.Item]
		groups[key] = append(groups[key], idx)
	}
	return orderedClusters(groups)
}

// socialNeighborhoods precomputes bounded-hop BFS balls around each
// distinct nominee user and returns a closeness predicate.
func socialNeighborhoods(g *graph.Graph, nominees []Nominee, maxHops int) func(u, v int) bool {
	ball := map[int]map[int]bool{}
	for _, nm := range nominees {
		if _, ok := ball[nm.User]; ok {
			continue
		}
		ball[nm.User] = bfsBall(g, nm.User, maxHops)
	}
	return func(u, v int) bool {
		if u == v {
			return true
		}
		if b, ok := ball[u]; ok && b[v] {
			return true
		}
		if b, ok := ball[v]; ok && b[u] {
			return true
		}
		return false
	}
}

func bfsBall(g *graph.Graph, s, maxHops int) map[int]bool {
	ball := map[int]bool{s: true}
	frontier := []int32{int32(s)}
	for h := 0; h < maxHops; h++ {
		var next []int32
		grow := func(vs []int32) {
			for _, v := range vs {
				if !ball[int(v)] {
					ball[int(v)] = true
					next = append(next, v)
				}
			}
		}
		for _, u := range frontier {
			grow(g.Out(int(u)).To)
			grow(g.In(int(u)).To)
		}
		frontier = next
	}
	return ball
}

func components(n int, related func(i, j int) bool) []int {
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	c := 0
	var stack []int
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = c
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for v := 0; v < n; v++ {
				if comp[v] < 0 && related(u, v) {
					comp[v] = c
					stack = append(stack, v)
				}
			}
		}
		c++
	}
	return comp
}

func distinctUsers(nominees []Nominee) []int {
	seen := map[int]bool{}
	var out []int
	for _, nm := range nominees {
		if !seen[nm.User] {
			seen[nm.User] = true
			out = append(out, nm.User)
		}
	}
	sort.Ints(out)
	return out
}

func distinctItems(nominees []Nominee) []int {
	seen := map[int]bool{}
	var out []int
	for _, nm := range nominees {
		if !seen[nm.Item] {
			seen[nm.Item] = true
			out = append(out, nm.Item)
		}
	}
	sort.Ints(out)
	return out
}

// orderedClusters converts the group map into a deterministic slice:
// clusters sorted by their smallest member index, members ascending.
func orderedClusters(groups map[int][]int) [][]int {
	out := make([][]int, 0, len(groups))
	for _, members := range groups {
		sort.Ints(members)
		out = append(out, members)
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

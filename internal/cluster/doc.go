// Package cluster groups nominees (user,item pairs) into the clusters
// that TMI turns into target markets. The paper delegates this to POT
// (opinion-based user clustering, footnote 15) and FGCC (goal-oriented
// co-clustering); both are stand-ins for "put socially close users
// promoting mutually complementary items together", which is exactly
// what the two strategies here implement:
//
//   - Proximity (POT-like): nominees are connected when their users
//     are within MaxHops in the social network and their items are more
//     complementary than substitutable on average; connected components
//     are the clusters.
//   - CoCluster (FGCC-like): users are clustered by social proximity
//     and items by the complementary-relevance graph independently;
//     each non-empty (user-cluster × item-cluster) cell is a nominee
//     cluster.
package cluster

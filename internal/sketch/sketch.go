package sketch

import (
	"errors"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"imdpp/internal/diffusion"
	"imdpp/internal/rng"
)

// ErrPreempted reports a sketch build aborted by its stop channel
// (typically a cancelled request context). A preempted build returns
// no sketch; nothing partial is cached.
var ErrPreempted = errors.New("sketch: build preempted")

// DefaultDelta is the failure probability of the (ε, δ) contract when
// a request sets epsilon but leaves delta unset.
const DefaultDelta = 0.05

// defaultMaxTheta caps θ so an aggressive ε cannot provoke an
// unbounded build: 2^20 RR samples is already far beyond the sample
// counts the MC engine runs, and past the cap the contract degrades
// gracefully (more residual error, never more memory).
const defaultMaxTheta = 1 << 20

// Params select one sketch: the (ε, δ) accuracy contract plus the
// master seed of the RR sample streams. Two sketches built from equal
// (problem, Params) are byte-identical — the §3 determinism contract
// extended to index construction.
type Params struct {
	// Epsilon is the additive accuracy: |σ̂(S) − σ(S)| ≤ ε·n·W with
	// probability ≥ 1−δ, where n is the user count and W = Σ_x w_x.
	// Must be > 0.
	Epsilon float64
	// Delta is the failure probability δ ∈ (0, 1); 0 selects
	// DefaultDelta.
	Delta float64
	// Seed is the master RNG seed; sample i draws from
	// rng.New(Seed).Split(i).
	Seed uint64
	// MaxTheta caps the RR sample count (0 → 2^20).
	MaxTheta int
}

func (par Params) withDefaults() Params {
	if par.Delta == 0 {
		par.Delta = DefaultDelta
	}
	if par.MaxTheta <= 0 {
		par.MaxTheta = defaultMaxTheta
	}
	return par
}

// Theta returns the RR sample count for an (ε, δ) contract: the
// additive Hoeffding bound θ = ⌈ln(2/δ) / (2ε²)⌉, which makes the
// coverage-mean estimate of σ/(n·W) accurate to ±ε with probability
// ≥ 1−δ for each queried seed group. DESIGN.md §9 discusses why the
// repo uses the additive bound rather than TIM/IMM's relative one.
func Theta(epsilon, delta float64) int {
	// !(x > 0) rather than x <= 0: NaN must also land in the invalid
	// branch instead of flowing into the int conversion below
	if !(epsilon > 0) || !(delta > 0) || delta >= 1 {
		return 0
	}
	t := math.Ceil(math.Log(2/delta) / (2 * epsilon * epsilon))
	if t < 1 {
		return 1
	}
	// float→int conversion is implementation-defined once t exceeds
	// MaxInt (MinInt on amd64) — a tiny ε would then slip past Build's
	// MaxTheta cap as a negative θ. Clamp on the float side first; the
	// comparison bound is exact because float64(MaxInt) is 2⁶³.
	if t >= float64(math.MaxInt) {
		return math.MaxInt
	}
	return int(t)
}

// theta returns the capped sample count Build uses for par
// (withDefaults applied by the caller): Theta(ε, δ) bounded by
// MaxTheta, with 0 still signalling invalid (ε, δ).
func (par Params) theta() int {
	t := Theta(par.Epsilon, par.Delta)
	if t > par.MaxTheta {
		t = par.MaxTheta
	}
	return t
}

// Sketch is one immutable RR-sample index for one problem. Exported
// fields are the serialised identity (codec.go); the coverage index is
// derived and rebuilt after decode.
type Sketch struct {
	Users int
	Items int
	// Seed, Epsilon, Delta identify the build parameters (Theta is
	// derived but stored so a decoded sketch is self-describing).
	Seed    uint64
	Epsilon float64
	Delta   float64
	Theta   int
	// WSum is Σ_x w_x at build time, the σ scale factor.
	WSum float64
	// ItemW is the per-item importance table w_x the target items were
	// drawn against — retained (and serialised) so the unweighted
	// adoption estimates divide by the right weight after a decode.
	ItemW []float64
	// ProblemKey is the content address of the problem the sketch was
	// built for (service.HashProblem form); empty when the builder has
	// no key function. The disk cache refuses to load a sketch whose
	// recorded key disagrees with the requested one.
	ProblemKey string

	// Targets[i] is sample i's target pair key u·Items+x.
	Targets []int64
	// Pairs[Off[i]:Off[i+1]] is sample i's RR set: every product-graph
	// pair whose adoption could have caused the target's, sorted
	// ascending (canonical form; the codec delta-encodes it).
	Off   []int64
	Pairs []int64

	// cov maps a pair key to the ascending sample indices it appears
	// in — the inverted index coverage counting walks.
	cov map[int64][]int32
}

// pairKey flattens a (user, item) pair into the product-graph id the
// RR sets are stored under.
func pairKey(u, x, items int) int64 { return int64(u)*int64(items) + int64(x) }

// SigmaScale returns the per-covered-sample σ increment n·W/θ.
func (sk *Sketch) SigmaScale() float64 {
	if sk.Theta == 0 {
		return 0
	}
	return float64(sk.Users) * sk.WSum / float64(sk.Theta)
}

// Bytes reports the approximate retained footprint of the sketch plus
// its coverage index, for StateBytes accounting.
func (sk *Sketch) Bytes() uint64 {
	b := uint64(8 * (len(sk.Targets) + len(sk.Off) + len(sk.Pairs)))
	// inverted index: one int32 per stored pair plus rough map overhead
	// per distinct key
	b += uint64(4*len(sk.Pairs)) + uint64(48*len(sk.cov))
	return b
}

// buildIndex derives the inverted coverage index. Samples are scanned
// in ascending order, so every posting list is ascending.
func (sk *Sketch) buildIndex() {
	cov := make(map[int64][]int32)
	for i := 0; i < sk.Theta; i++ {
		for _, k := range sk.Pairs[sk.Off[i]:sk.Off[i+1]] {
			cov[k] = append(cov[k], int32(i))
		}
	}
	sk.cov = cov
}

// Build generates the θ RR samples for p under par. workers bounds the
// build parallelism (0 → GOMAXPROCS); the result is byte-identical for
// any worker count because sample i always draws from stream Split(i)
// of the master generator and lands in slot i. stop, when non-nil,
// preempts the build (ErrPreempted).
func Build(p *diffusion.Problem, par Params, workers int, stop <-chan struct{}) (*Sketch, error) {
	par = par.withDefaults()
	theta := par.theta()
	if theta == 0 {
		return nil, errors.New("sketch: need epsilon > 0 and delta in (0,1)")
	}
	n := p.NumUsers()
	items := p.NumItems()
	if n == 0 || items == 0 {
		return nil, errors.New("sketch: empty problem")
	}

	// cumulative importance for the x ∝ w_x inverse-CDF draw
	cum := make([]float64, items)
	wsum := 0.0
	for x, w := range p.Importance {
		if w > 0 {
			wsum += w
		}
		cum[x] = wsum
	}

	sk := &Sketch{
		Users: n, Items: items,
		Seed: par.Seed, Epsilon: par.Epsilon, Delta: par.Delta,
		Theta: theta, WSum: wsum,
		ItemW:   append([]float64(nil), p.Importance...),
		Targets: make([]int64, theta),
	}
	sets := make([][]int64, theta)
	master := rng.New(par.Seed)

	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > theta {
		w = theta
	}
	if w < 1 {
		w = 1
	}

	var (
		next      int64
		preempted atomic.Bool
		wg        sync.WaitGroup
	)
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := newBuilder(p)
			for {
				if stop != nil {
					select {
					case <-stop:
						preempted.Store(true)
						return
					default:
					}
				}
				i := atomic.AddInt64(&next, 1) - 1
				if i >= int64(theta) {
					return
				}
				r := master.Split(uint64(i))
				sk.Targets[i], sets[i] = b.sample(r, cum, wsum)
			}
		}()
	}
	wg.Wait()
	if preempted.Load() {
		return nil, ErrPreempted
	}

	total := 0
	for _, s := range sets {
		total += len(s)
	}
	sk.Off = make([]int64, theta+1)
	sk.Pairs = make([]int64, 0, total)
	for i, s := range sets {
		sk.Pairs = append(sk.Pairs, s...)
		sk.Off[i+1] = int64(len(sk.Pairs))
	}
	sk.buildIndex()
	return sk, nil
}

// builder holds one worker's reusable RR-walk scratch.
type builder struct {
	p       *diffusion.Problem
	visited map[int64]struct{}
	queue   []qent
	out     []int64
	surv    []float64
}

type qent struct {
	key   int64
	depth int32
}

func newBuilder(p *diffusion.Problem) *builder {
	return &builder{p: p, visited: make(map[int64]struct{}, 64)}
}

// sample draws RR sample i from stream r. The draw order is fixed and
// documented (DESIGN.md §9) because it IS the determinism contract:
// target user first (uniform), target item second (inverse-CDF on
// cumulative importance; uniform when W = 0), then a FIFO reverse walk
// popping pairs in discovery order. For a popped (u, y) the in-arcs of
// u are visited in ascending source order (the CSR canonical order);
// per in-arc the direct purchase coin Pact·P0pref(u,y) is flipped
// first, then one association coin χ·Pact·P0pref(u,z)·rc0(z,y) per
// PIN row entry z of y, in row order. rng.Bernoulli consumes no
// randomness for p ≤ 0 or p ≥ 1 — the same convention the forward
// simulator relies on. The returned pair list is sorted ascending.
func (b *builder) sample(r *rng.Rand, cum []float64, wsum float64) (target int64, pairs []int64) {
	p := b.p
	n := p.NumUsers()
	items := p.NumItems()

	v := r.Intn(n)
	var x int
	if wsum > 0 {
		t := r.Float64() * wsum
		x = sort.Search(items, func(i int) bool { return cum[i] > t })
		if x >= items {
			x = items - 1
		}
	} else {
		x = r.Intn(items)
	}

	maxDepth := int32(p.Params.MaxSteps)
	chi := p.Params.Chi

	clear(b.visited)
	b.queue = b.queue[:0]
	b.out = b.out[:0]

	root := pairKey(v, x, items)
	b.visited[root] = struct{}{}
	b.queue = append(b.queue, qent{key: root, depth: 0})
	b.out = append(b.out, root)

	for qi := 0; qi < len(b.queue); qi++ {
		cur := b.queue[qi]
		if cur.depth >= maxDepth {
			continue
		}
		u := int(cur.key / int64(items))
		y := int(cur.key % int64(items))
		prefY := p.BasePrefOf(u, y)
		arcs := p.G.In(u)
		pinRow := p.PIN.Row(y)
		pinInit := p.PIN.InitRow(y)
		// Survival thinning (DESIGN.md §9): the forward simulator skips a
		// promoter's whole event toward u — association coins included —
		// once u has adopted the promoted item z, so u's association
		// chances via cause z stop at u's own z-adoption. A reverse walk
		// cannot observe that temporal gate, so it thins instead: the
		// association coin via z from the i-th in-arc is scaled by the
		// mean-field probability ∏_{earlier arcs}(1 − Pact·P0pref(u,z))
		// that no earlier promoter already sold z to u directly. Without
		// the gate the sketch over-counts association mass badly in
		// saturating regimes; imdppbench -fig sketch holds the residual
		// to the (ε, δ) contract.
		surv := b.surv[:0]
		for range pinRow {
			surv = append(surv, 1)
		}
		b.surv = surv
		for ai, src := range arcs.To {
			up := int(src)
			aw := arcs.W[ai]
			// direct purchase: u′ adopted y and promoted it to u
			if r.Bernoulli(aw * prefY) {
				b.push(pairKey(up, y, items), cur.depth+1)
			}
			// association: u′ adopted a related item z, promoted z to u,
			// and the promotion triggered u's adoption of y — forward
			// probability χ·Pact·P0pref(u,z)·rc0(z,y), with rc0 symmetric
			// so y's merged row carries it
			if chi > 0 {
				base := chi * aw
				for j := range pinRow {
					z := int(pinRow[j].Y)
					prefZ := p.BasePrefOf(u, z)
					if rc := pinInit[j].RC; rc > 0 && r.Bernoulli(base*prefZ*rc*surv[j]) {
						b.push(pairKey(up, z, items), cur.depth+1)
					}
					// same-event association is allowed forward (the
					// adoption check precedes both coins), so the thinning
					// advances after this arc's coin, not before
					surv[j] *= 1 - aw*prefZ
				}
			}
		}
	}

	pairs = append([]int64(nil), b.out...)
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	return root, pairs
}

// push enqueues a discovered cause pair once.
func (b *builder) push(key int64, depth int32) {
	if _, ok := b.visited[key]; ok {
		return
	}
	b.visited[key] = struct{}{}
	b.queue = append(b.queue, qent{key: key, depth: depth})
	b.out = append(b.out, key)
}

// Scratch is reusable coverage-query state (one per estimator; not
// safe for concurrent use).
type Scratch struct {
	stamp   []uint32
	epoch   uint32
	covered []int32
}

// Estimate answers one σ query by coverage counting: which of the θ RR
// samples contain a seed pair. Covered samples are accumulated in
// ascending sample order, so the result is deterministic and
// independent of seed ordering. market restricts MarketSigma to
// samples whose target user it marks; perItem, when non-nil, receives
// the per-item adoption estimate (len Items, caller-zeroed). Pi is
// always 0 — π needs post-campaign state and stays with the MC engine.
func (sk *Sketch) Estimate(seeds []diffusion.Seed, market []bool, perItem []float64, sc *Scratch) diffusion.Estimate {
	if len(sc.stamp) < sk.Theta {
		sc.stamp = make([]uint32, sk.Theta)
		sc.epoch = 0
	}
	sc.epoch++
	sc.covered = sc.covered[:0]
	for _, s := range seeds {
		if s.User < 0 || s.User >= sk.Users || s.Item < 0 || s.Item >= sk.Items {
			continue
		}
		for _, i := range sk.cov[pairKey(s.User, s.Item, sk.Items)] {
			if sc.stamp[i] != sc.epoch {
				sc.stamp[i] = sc.epoch
				sc.covered = append(sc.covered, i)
			}
		}
	}
	sort.Slice(sc.covered, func(i, j int) bool { return sc.covered[i] < sc.covered[j] })

	var est diffusion.Estimate
	est.PerItem = perItem
	sigmaScale := sk.SigmaScale()
	// unweighted-count scale: E[adoptions] = n·W·E[I/w_x] under the
	// importance-proportional item draw; n·Items·E[I] under the uniform
	// fallback (W = 0, where σ itself is identically 0)
	uniformScale := 0.0
	if sk.WSum <= 0 && sk.Theta > 0 {
		uniformScale = float64(sk.Users) * float64(sk.Items) / float64(sk.Theta)
	}
	for _, i := range sc.covered {
		tu := int(sk.Targets[i] / int64(sk.Items))
		tx := int(sk.Targets[i] % int64(sk.Items))
		est.Sigma += sigmaScale
		if market == nil || (tu < len(market) && market[tu]) {
			est.MarketSigma += sigmaScale
		}
		count := uniformScale
		if sk.WSum > 0 {
			if w := sk.ItemW[tx]; w > 0 {
				count = sigmaScale / w
			}
		}
		est.Adoptions += count
		if perItem != nil {
			perItem[tx] += count
		}
	}
	return est
}

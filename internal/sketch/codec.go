package sketch

import (
	"fmt"

	"imdpp/internal/wirebin"
)

// Wire format of a sketch index (internal/wirebin primitives, §8
// conventions: varint ids, delta-coded ascending lists, tagged
// floats, allocation guards on every count, and an exact-consumption
// check so trailing garbage is rejected). The encoding is canonical —
// equal sketches produce equal bytes — because every list is stored
// in its sorted canonical order; that is what lets the disk cache
// address files by content key and tests compare builds bytewise.
//
//	magic "RRS1"
//	u32 users · u32 items · u64 seed
//	float epsilon · float delta · uvarint theta
//	float wsum · floats itemW[items]
//	uvarint len(problemKey) · raw bytes
//	θ × ( varint target ·
//	      uvarint pairCount · varint first · uvarint deltas... )
//
// Pair keys are strictly ascending within a sample (RR sets are
// de-duplicated), so every delta is ≥ 1; the decoder enforces that,
// keeping the encoding bijective.

const magic = "RRS1"

// AppendBinary encodes the sketch in the canonical wire form.
func (sk *Sketch) AppendBinary(b []byte) []byte {
	b = append(b, magic...)
	b = wirebin.AppendU32(b, uint32(sk.Users))
	b = wirebin.AppendU32(b, uint32(sk.Items))
	b = wirebin.AppendU64(b, sk.Seed)
	b = wirebin.AppendFloat(b, sk.Epsilon)
	b = wirebin.AppendFloat(b, sk.Delta)
	b = wirebin.AppendUvarint(b, uint64(sk.Theta))
	b = wirebin.AppendFloat(b, sk.WSum)
	b = wirebin.AppendFloats(b, sk.ItemW)
	b = wirebin.AppendUvarint(b, uint64(len(sk.ProblemKey)))
	b = append(b, sk.ProblemKey...)
	for i := 0; i < sk.Theta; i++ {
		b = wirebin.AppendVarint(b, sk.Targets[i])
		pairs := sk.Pairs[sk.Off[i]:sk.Off[i+1]]
		b = wirebin.AppendUvarint(b, uint64(len(pairs)))
		prev := int64(0)
		for j, k := range pairs {
			if j == 0 {
				b = wirebin.AppendVarint(b, k)
			} else {
				b = wirebin.AppendUvarint(b, uint64(k-prev))
			}
			prev = k
		}
	}
	return b
}

// Decode parses a sketch image, validating structure and ranges, and
// rebuilds the coverage index. Corrupt or hostile input fails with a
// typed error; it never panics or over-allocates.
func Decode(b []byte) (*Sketch, error) {
	if len(b) < len(magic) || string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("sketch: bad magic")
	}
	r := wirebin.NewReader(b[len(magic):])
	sk := &Sketch{
		Users:   int(r.U32()),
		Items:   int(r.U32()),
		Seed:    r.U64(),
		Epsilon: r.Float(),
		Delta:   r.Float(),
		Theta:   int(r.Uvarint()),
		WSum:    r.Float(),
		ItemW:   r.Floats(),
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if sk.Users <= 0 || sk.Items <= 0 {
		return nil, fmt.Errorf("sketch: bad dimensions %d×%d", sk.Users, sk.Items)
	}
	if sk.Theta < 1 {
		return nil, fmt.Errorf("sketch: theta %d < 1", sk.Theta)
	}
	if len(sk.ItemW) != sk.Items {
		return nil, fmt.Errorf("sketch: itemW len %d != %d items", len(sk.ItemW), sk.Items)
	}
	keyLen := r.Count(1)
	key := make([]byte, 0, keyLen)
	for i := 0; i < keyLen; i++ {
		key = append(key, r.U8())
	}
	sk.ProblemKey = string(key)

	maxKey := int64(sk.Users) * int64(sk.Items)
	// per sample at least 2 bytes remain (target varint + count byte)
	if uint64(sk.Theta) > uint64(r.Len()/2) {
		return nil, fmt.Errorf("sketch: theta %d exceeds remaining %d bytes", sk.Theta, r.Len())
	}
	sk.Targets = make([]int64, sk.Theta)
	sk.Off = make([]int64, sk.Theta+1)
	for i := 0; i < sk.Theta; i++ {
		t := r.Varint()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if t < 0 || t >= maxKey {
			return nil, fmt.Errorf("sketch: sample %d target %d out of range", i, t)
		}
		sk.Targets[i] = t
		n := r.Count(1)
		if r.Err() != nil {
			return nil, r.Err()
		}
		prev := int64(0)
		for j := 0; j < n; j++ {
			if j == 0 {
				prev = r.Varint()
			} else {
				d := r.Uvarint()
				if d == 0 && r.Err() == nil {
					return nil, fmt.Errorf("sketch: sample %d has non-ascending pair delta", i)
				}
				prev += int64(d)
			}
			if r.Err() != nil {
				return nil, r.Err()
			}
			if prev < 0 || prev >= maxKey {
				return nil, fmt.Errorf("sketch: sample %d pair %d out of range", i, prev)
			}
			sk.Pairs = append(sk.Pairs, prev)
		}
		sk.Off[i+1] = int64(len(sk.Pairs))
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	sk.buildIndex()
	return sk, nil
}

package sketch

import (
	"bytes"
	"math"
	"os"
	"testing"

	"imdpp/internal/dataset"
	"imdpp/internal/diffusion"
)

func sampleProblem(t *testing.T, budget float64, T int) *diffusion.Problem {
	t.Helper()
	d, err := dataset.AmazonSample()
	if err != nil {
		t.Fatalf("AmazonSample: %v", err)
	}
	return d.Clone(budget, T)
}

func TestTheta(t *testing.T) {
	// θ = ⌈ln(2/δ)/(2ε²)⌉ — the Hoeffding bound from DESIGN.md §9.
	if got := Theta(0.05, 0.05); got != 738 {
		t.Fatalf("Theta(0.05, 0.05) = %d, want 738", got)
	}
	for _, bad := range [][2]float64{{0, 0.05}, {-0.1, 0.05}, {0.1, 0}, {0.1, 1}, {0.1, -0.5}, {math.NaN(), 0.05}, {0.1, math.NaN()}} {
		if got := Theta(bad[0], bad[1]); got != 0 {
			t.Fatalf("Theta(%v, %v) = %d, want 0 for invalid input", bad[0], bad[1], got)
		}
	}
	// Tiny (but valid) ε must clamp, not overflow the int conversion:
	// an unclamped float→int is MinInt on amd64, which skipped Build's
	// MaxTheta cap and panicked in make.
	for _, eps := range []float64{1e-12, math.SmallestNonzeroFloat64} {
		if got := Theta(eps, 0.05); got != math.MaxInt {
			t.Fatalf("Theta(%v, 0.05) = %d, want MaxInt clamp", eps, got)
		}
	}
}

func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	p := sampleProblem(t, 100, 4)
	par := Params{Epsilon: 0.1, Delta: 0.1, Seed: 7}

	sk1, err := Build(p, par, 1, nil)
	if err != nil {
		t.Fatalf("build w=1: %v", err)
	}
	sk4, err := Build(p, par, 4, nil)
	if err != nil {
		t.Fatalf("build w=4: %v", err)
	}
	b1 := sk1.AppendBinary(nil)
	if b4 := sk4.AppendBinary(nil); !bytes.Equal(b1, b4) {
		t.Fatal("sketch bytes differ across worker counts — the §3 stream discipline is broken")
	}
	skAgain, err := Build(p, par, 4, nil)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if !bytes.Equal(b1, skAgain.AppendBinary(nil)) {
		t.Fatal("sketch bytes differ across rebuilds")
	}
	if sk1.Theta != Theta(par.Epsilon, par.Delta) {
		t.Fatalf("built θ = %d, want %d", sk1.Theta, Theta(par.Epsilon, par.Delta))
	}
}

func TestBuildValidation(t *testing.T) {
	p := sampleProblem(t, 100, 4)
	if _, err := Build(p, Params{Epsilon: 0, Delta: 0.1}, 1, nil); err == nil {
		t.Fatal("ε = 0 accepted")
	}
	if _, err := Build(p, Params{Epsilon: 0.1, Delta: 2}, 1, nil); err == nil {
		t.Fatal("δ = 2 accepted")
	}
	sk, err := Build(p, Params{Epsilon: 0.001, Delta: 0.05, Seed: 1, MaxTheta: 64}, 2, nil)
	if err != nil {
		t.Fatalf("capped build: %v", err)
	}
	if sk.Theta != 64 {
		t.Fatalf("MaxTheta cap ignored: θ = %d, want 64", sk.Theta)
	}
	// ε small enough to overflow Theta's int conversion must still land
	// on the cap instead of panicking in make([]int64, θ).
	sk, err = Build(p, Params{Epsilon: 1e-12, Delta: 0.05, Seed: 1, MaxTheta: 16}, 2, nil)
	if err != nil {
		t.Fatalf("overflow-ε build: %v", err)
	}
	if sk.Theta != 16 {
		t.Fatalf("overflow-ε θ = %d, want 16", sk.Theta)
	}
}

func TestBuildPreempted(t *testing.T) {
	p := sampleProblem(t, 100, 4)
	stop := make(chan struct{})
	close(stop)
	if _, err := Build(p, Params{Epsilon: 0.05, Delta: 0.05, Seed: 1}, 2, stop); err != ErrPreempted {
		t.Fatalf("want ErrPreempted, got %v", err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	p := sampleProblem(t, 100, 4)
	sk, err := Build(p, Params{Epsilon: 0.08, Delta: 0.1, Seed: 11}, 2, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sk.ProblemKey = "deadbeefdeadbeefdeadbeefdeadbeef"
	enc := sk.AppendBinary(nil)

	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(enc, dec.AppendBinary(nil)) {
		t.Fatal("re-encode of decoded sketch is not byte-identical")
	}
	if dec.ProblemKey != sk.ProblemKey || dec.Seed != sk.Seed || dec.Theta != sk.Theta ||
		dec.Epsilon != sk.Epsilon || dec.Delta != sk.Delta || dec.Users != sk.Users || dec.Items != sk.Items {
		t.Fatal("decoded identity fields differ")
	}

	// A decoded sketch must answer queries identically.
	seeds := []diffusion.Seed{{User: 1, Item: 0, T: 1}, {User: 3, Item: 2, T: 2}}
	var sc1, sc2 Scratch
	if a, b := sk.Estimate(seeds, nil, nil, &sc1), dec.Estimate(seeds, nil, nil, &sc2); a.Sigma != b.Sigma {
		t.Fatalf("decoded sketch σ = %v, want %v", b.Sigma, a.Sigma)
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	p := sampleProblem(t, 100, 4)
	sk, err := Build(p, Params{Epsilon: 0.1, Delta: 0.1, Seed: 3}, 1, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	enc := sk.AppendBinary(nil)

	if _, err := Decode(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated input accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xff
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	trailing := append(append([]byte(nil), enc...), 0x00)
	if _, err := Decode(trailing); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestEstimateMatchesStoredSets recomputes coverage by brute force
// over the serialized sample sets and checks Estimate agrees — the
// coverage-counting query path against its own ground truth.
func TestEstimateMatchesStoredSets(t *testing.T) {
	p := sampleProblem(t, 100, 4)
	sk, err := Build(p, Params{Epsilon: 0.05, Delta: 0.1, Seed: 5}, 3, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}

	seeds := []diffusion.Seed{{User: 2, Item: 1, T: 1}, {User: 9, Item: 0, T: 2}}
	keys := make(map[int64]bool, len(seeds))
	for _, s := range seeds {
		keys[int64(s.User)*int64(sk.Items)+int64(s.Item)] = true
	}
	covered := 0
	for i := 0; i < sk.Theta; i++ {
		set := sk.Pairs[sk.Off[i]:sk.Off[i+1]]
		for _, k := range set {
			if keys[k] {
				covered++
				break
			}
		}
	}
	want := float64(covered) * sk.SigmaScale()

	var sc Scratch
	got := sk.Estimate(seeds, nil, nil, &sc)
	if got.Sigma != want {
		t.Fatalf("Estimate σ = %v, brute force = %v", got.Sigma, want)
	}
	// Reusing the scratch must not change the answer.
	if again := sk.Estimate(seeds, nil, nil, &sc); again.Sigma != want {
		t.Fatalf("scratch reuse changed σ: %v vs %v", again.Sigma, want)
	}
}

// TestStaticSigmaWithinContract is the unit-sized version of the
// imdppbench -fig sketch harness: under the static regime, sketch σ
// stays within the additive ε·n·W bound of an MC ground truth.
func TestStaticSigmaWithinContract(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical agreement check; run without -short")
	}
	p := sampleProblem(t, 100, 4)
	p.Params.Static = true

	const eps, delta = 0.05, 0.05
	sk, err := Build(p, Params{Epsilon: eps, Delta: delta, Seed: 2}, 0, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var wsum float64
	for _, w := range p.Importance {
		wsum += w
	}
	bound := eps * float64(p.NumUsers()) * wsum

	mc := diffusion.NewEstimator(p, 256, 99)
	groups := make([][]diffusion.Seed, 8)
	for i := range groups {
		groups[i] = []diffusion.Seed{
			{User: (i * 11) % p.NumUsers(), Item: i % p.NumItems(), T: 1},
			{User: (i * 17) % p.NumUsers(), Item: (i + 3) % p.NumItems(), T: 1 + i%p.T},
		}
	}
	truth := mc.SigmaBatch(groups)
	var sc Scratch
	for gi, g := range groups {
		got := sk.Estimate(g, nil, nil, &sc).Sigma
		if diff := math.Abs(got - truth[gi]); diff > bound {
			t.Fatalf("group %d: |σ_sketch − σ_mc| = %v exceeds ε·n·W = %v (sketch %v, mc %v)",
				gi, diff, bound, got, truth[gi])
		}
	}
}

func TestCacheSingleflightAndDistinctKeys(t *testing.T) {
	p := sampleProblem(t, 100, 4)
	keyFn := func(*diffusion.Problem) string { return "problemkey" }
	c := NewCache(4, "", keyFn)

	par := Params{Epsilon: 0.1, Delta: 0.1, Seed: 1}
	sk1, err := c.GetOrBuild(p, par, 1, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sk2, err := c.GetOrBuild(p, par, 1, nil)
	if err != nil {
		t.Fatalf("hit: %v", err)
	}
	if sk1 != sk2 {
		t.Fatal("identical parameters did not share one sketch")
	}
	if builds, hits, _ := c.Stats(); builds != 1 || hits != 1 {
		t.Fatalf("stats = (%d builds, %d hits), want (1, 1)", builds, hits)
	}

	// Every (ε, δ, seed, MaxTheta) perturbation is its own cache
	// identity — including the cap, which changes θ once it binds.
	for _, par2 := range []Params{
		{Epsilon: 0.2, Delta: 0.1, Seed: 1},
		{Epsilon: 0.1, Delta: 0.2, Seed: 1},
		{Epsilon: 0.1, Delta: 0.1, Seed: 2},
		{Epsilon: 0.1, Delta: 0.1, Seed: 1, MaxTheta: 32},
	} {
		skN, err := c.GetOrBuild(p, par2, 1, nil)
		if err != nil {
			t.Fatalf("build %+v: %v", par2, err)
		}
		if skN == sk1 {
			t.Fatalf("%+v aliased the (0.1, 0.1, 1) sketch", par2)
		}
	}
	if builds, _, _ := c.Stats(); builds != 5 {
		t.Fatalf("builds = %d, want 5", builds)
	}
}

func TestCacheDiskRoundTrip(t *testing.T) {
	p := sampleProblem(t, 100, 4)
	dir := t.TempDir()
	keyFn := func(*diffusion.Problem) string { return "pk" }
	par := Params{Epsilon: 0.1, Delta: 0.1, Seed: 9}

	c1 := NewCache(2, dir, keyFn)
	sk1, err := c1.GetOrBuild(p, par, 1, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}

	// A fresh cache over the same directory reloads instead of building.
	c2 := NewCache(2, dir, keyFn)
	sk2, err := c2.GetOrBuild(p, par, 1, nil)
	if err != nil {
		t.Fatalf("disk load: %v", err)
	}
	if builds, _, diskHits := c2.Stats(); builds != 0 || diskHits != 1 {
		t.Fatalf("disk reload stats = (%d builds, %d diskHits), want (0, 1)", builds, diskHits)
	}
	if !bytes.Equal(sk1.AppendBinary(nil), sk2.AppendBinary(nil)) {
		t.Fatal("disk round-trip changed sketch bytes")
	}

	// A cache with a different problem key must NOT accept the file:
	// .rrsk loads are self-verifying.
	c3 := NewCache(2, dir, func(*diffusion.Problem) string { return "otherpk" })
	if _, err := c3.GetOrBuild(p, par, 1, nil); err != nil {
		t.Fatalf("build under other key: %v", err)
	}
	if builds, _, _ := c3.Stats(); builds != 1 {
		t.Fatalf("foreign key should rebuild, builds = %d", builds)
	}

	// A file renamed onto a different-cap key must fail the θ
	// self-verify and rebuild: its sample count satisfies a different
	// contract than the one being asked for.
	capped := Params{Epsilon: 0.1, Delta: 0.1, Seed: 9, MaxTheta: 32}
	c4 := NewCache(2, dir, keyFn)
	if err := os.Rename(
		c4.path(c4.key("pk", par.withDefaults())),
		c4.path(c4.key("pk", capped.withDefaults())),
	); err != nil {
		t.Fatalf("rename: %v", err)
	}
	sk4, err := c4.GetOrBuild(p, capped, 1, nil)
	if err != nil {
		t.Fatalf("capped build: %v", err)
	}
	if sk4.Theta != 32 {
		t.Fatalf("capped θ = %d, want 32 (stale uncapped image accepted?)", sk4.Theta)
	}
	if builds, _, diskHits := c4.Stats(); builds != 1 || diskHits != 0 {
		t.Fatalf("mismatched-θ image stats = (%d builds, %d diskHits), want (1, 0)", builds, diskHits)
	}
}

// TestEstimatorDelegation pins the hybrid split: σ-only queries come
// from coverage counting, while the MC fallback (invalid sketch
// parameters) and the π-bearing paths answer exactly like the plain
// MC engine.
func TestEstimatorDelegation(t *testing.T) {
	p := sampleProblem(t, 100, 4)
	p.Params.Static = true
	seeds := []diffusion.Seed{{User: 1, Item: 1, T: 1}}

	e := New(p, Config{Epsilon: 0.1, Delta: 0.1}, 16, 42, 0)
	if err := e.Warm(); err != nil {
		t.Fatalf("warm: %v", err)
	}
	sk, err := Build(p, Params{Epsilon: 0.1, Delta: 0.1, Seed: 42}, 1, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var sc Scratch
	if got, want := e.Sigma(seeds), sk.Estimate(seeds, nil, nil, &sc).Sigma; got != want {
		t.Fatalf("estimator σ = %v, direct sketch σ = %v", got, want)
	}
	if got := e.SigmaBatch([][]diffusion.Seed{seeds}); got[0] != e.Sigma(seeds) {
		t.Fatalf("SigmaBatch diverges from Sigma: %v vs %v", got[0], e.Sigma(seeds))
	}

	// π-bearing evaluation delegates to the embedded MC engine.
	mc := diffusion.NewEstimator(p, 16, 42)
	if got, want := e.RunBatchPi([][]diffusion.Seed{seeds}, nil)[0], mc.RunBatchPi([][]diffusion.Seed{seeds}, nil)[0]; got.Sigma != want.Sigma || got.Pi != want.Pi {
		t.Fatalf("RunBatchPi not bit-identical to MC: %+v vs %+v", got, want)
	}

	// Broken sketch parameters degrade to the exact engine.
	bad := New(p, Config{Epsilon: -1, Delta: 0.1}, 16, 42, 0)
	if err := bad.Warm(); err == nil {
		t.Fatal("Warm accepted ε = -1")
	}
	mc2 := diffusion.NewEstimator(p, 16, 42)
	if got, want := bad.Sigma(seeds), mc2.Sigma(seeds); got != want {
		t.Fatalf("MC fallback σ = %v, plain MC σ = %v", got, want)
	}
}

package sketch

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"imdpp/internal/diffusion"
)

// Cache shares built sketches across estimators and requests. Entries
// are keyed by the problem's content address plus the sketch
// parameters (ε, δ, seed, MaxTheta) — the same content-addressing discipline as
// the serving layer's result cache, but a separate lane: a sketch is
// an approximation artefact and must never alias an exact MC result
// (DESIGN.md §9). With a directory configured, built sketches are also
// persisted in the canonical wire form and reloaded on miss, so a
// daemon restart (or a worker receiving a shipped index) skips the
// build.
type Cache struct {
	max   int
	dir   string
	keyFn func(*diffusion.Problem) string

	mu      sync.Mutex
	entries map[string]*cacheEntry
	order   []string // LRU order, oldest first

	builds   atomic.Uint64
	hits     atomic.Uint64
	diskHits atomic.Uint64
}

type cacheEntry struct {
	once sync.Once
	sk   *Sketch
	err  error
}

// NewCache creates a cache holding up to max sketches in memory
// (max ≤ 0 → 4). dir, when non-empty, enables disk persistence (it is
// created on first write). keyFn maps a problem to its content
// address; a nil keyFn disables caching entirely (GetOrBuild just
// builds), because without a content key two distinct problems could
// alias.
func NewCache(max int, dir string, keyFn func(*diffusion.Problem) string) *Cache {
	if max <= 0 {
		max = 4
	}
	return &Cache{max: max, dir: dir, keyFn: keyFn, entries: make(map[string]*cacheEntry)}
}

// Stats reports cumulative builds, in-memory hits, and disk reloads.
// A disk reload avoids a build but counts as neither a build nor an
// in-memory hit — diskHits is the only trace it leaves.
func (c *Cache) Stats() (builds, hits, diskHits uint64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.builds.Load(), c.hits.Load(), c.diskHits.Load()
}

// key renders the cache identity of one (problem, Params) pair. Float
// parameters are keyed by their exact bit patterns, so "close" ε
// values are distinct sketches — approximation parameters are
// result-relevant and must never alias. MaxTheta participates too
// (post-withDefaults): once the cap binds it changes θ, and a sketch
// built under a lower cap must not satisfy a higher-cap contract.
func (c *Cache) key(problemKey string, par Params) string {
	return fmt.Sprintf("%s-e%016x-d%016x-s%016x-t%x",
		problemKey, math.Float64bits(par.Epsilon), math.Float64bits(par.Delta), par.Seed, par.MaxTheta)
}

// GetOrBuild returns the sketch for (p, par), building it at most once
// per key across concurrent callers. A nil cache (or nil keyFn) builds
// directly. Build failures — including preemption via stop — are not
// cached: the entry is removed so the next caller retries.
func (c *Cache) GetOrBuild(p *diffusion.Problem, par Params, workers int, stop <-chan struct{}) (*Sketch, error) {
	if c == nil || c.keyFn == nil {
		return Build(p, par, workers, stop)
	}
	par = par.withDefaults()
	problemKey := c.keyFn(p)
	key := c.key(problemKey, par)

	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
		c.order = append(c.order, key)
		c.evictLocked()
	} else {
		c.hits.Add(1)
		c.touchLocked(key)
	}
	c.mu.Unlock()

	e.once.Do(func() {
		if sk := c.loadDisk(key, problemKey, par); sk != nil {
			e.sk = sk
			c.diskHits.Add(1)
			return
		}
		e.sk, e.err = Build(p, par, workers, stop)
		if e.err != nil {
			return
		}
		c.builds.Add(1)
		e.sk.ProblemKey = problemKey
		c.saveDisk(key, e.sk)
	})
	if e.err != nil {
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
			for i, k := range c.order {
				if k == key {
					c.order = append(c.order[:i], c.order[i+1:]...)
					break
				}
			}
		}
		c.mu.Unlock()
	}
	return e.sk, e.err
}

// touchLocked moves key to the most-recently-used end.
func (c *Cache) touchLocked(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i], c.order[i+1:]...), key)
			return
		}
	}
}

// evictLocked drops oldest entries past the size bound. In-flight
// builds (once not yet completed) are skipped — evicting them would
// strand waiters on a deleted entry.
func (c *Cache) evictLocked() {
	for len(c.entries) > c.max {
		evicted := false
		for i, k := range c.order {
			e := c.entries[k]
			if e == nil {
				c.order = append(c.order[:i], c.order[i+1:]...)
				evicted = true
				break
			}
			if e.sk != nil || e.err != nil {
				delete(c.entries, k)
				c.order = append(c.order[:i], c.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// path returns the disk image location of one cache key.
func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".rrsk") }

// loadDisk attempts a disk reload; any failure (missing, corrupt,
// mismatched identity) degrades to a rebuild.
func (c *Cache) loadDisk(key, problemKey string, par Params) *Sketch {
	if c.dir == "" {
		return nil
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil
	}
	sk, err := Decode(b)
	if err != nil {
		return nil
	}
	// self-verify: the decoded identity must match what was asked for,
	// so a renamed or stale file cannot alias another sketch. θ is
	// checked against the capped bound because MaxTheta is not stored
	// in the image — a file built under a different cap must rebuild.
	if sk.ProblemKey != problemKey || sk.Seed != par.Seed ||
		sk.Epsilon != par.Epsilon || sk.Delta != par.Delta ||
		sk.Theta != par.theta() {
		return nil
	}
	return sk
}

// saveDisk persists a built sketch best-effort (write-then-rename so a
// crashed write never leaves a truncated image behind). Persistence
// failures are ignored: the cache is an accelerator, not a store of
// record.
func (c *Cache) saveDisk(key string, sk *Sketch) {
	if c.dir == "" {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	tmp := c.path(key) + ".tmp"
	if err := os.WriteFile(tmp, sk.AppendBinary(nil), 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, c.path(key))
}

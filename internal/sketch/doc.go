// Package sketch is the reverse-reachable-sketch estimation backend:
// a TIM/IMM-style (ε, δ)-approximate σ oracle for the IMDPP diffusion,
// trading the Monte-Carlo engine's forward simulation cost for a
// one-time index build plus near-constant-time coverage counting per
// σ query. DESIGN.md §9 states the full accuracy contract; this
// comment is the short form.
//
// A sketch is θ reverse-reachable (RR) samples over the product graph
// V×I: sample i picks a target user uniformly and a target item
// proportionally to importance, then walks the social graph's in-arcs
// backwards, flipping the same Bernoulli coins the forward simulator
// would (purchase: Pact·P0pref; association: χ·Pact·P0pref·rc0),
// collecting every (user, item) pair whose adoption could have caused
// the target's. σ(S) is then estimated as n·W/θ times the number of
// samples whose RR set intersects S, where W = Σ_x w_x. Under
// Params.Static the diffusion is exactly an independent-cascade
// process on the product graph, making the estimate unbiased; for
// dynamic presets the (ε, δ) contract is validated empirically by
// imdppbench -fig sketch.
//
// Sample i draws from stream rng.New(seed).Split(i) — the same §3
// common-random-numbers discipline as the MC engine — so sketch
// construction is deterministic: same (problem, ε, δ, seed) ⇒
// byte-identical index, across worker counts and machines. That is
// what makes a sketch content-addressable (cache.go keys it by the
// problem's content hash plus the sketch parameters) and shippable
// (codec.go serialises it with internal/wirebin primitives).
//
// Estimator adapts a sketch to the solver's backend interface
// (core.Estimator): σ-only evaluations are answered by coverage
// counting; π-bearing evaluations and MeanWeights — which need real
// post-campaign state — delegate to an embedded Monte-Carlo engine.
package sketch

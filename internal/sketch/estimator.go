package sketch

import (
	"context"
	"sync"

	"imdpp/internal/diffusion"
)

// Config selects the sketch backend's behaviour for one estimator.
type Config struct {
	// Epsilon, Delta are the (ε, δ) accuracy contract (see Params).
	Epsilon float64
	Delta   float64
	// MaxTheta caps the RR sample count (0 → 2^20).
	MaxTheta int
	// Cache, when non-nil, shares built sketches across estimators and
	// requests, keyed by problem content address + parameters. Nil
	// builds a private sketch per estimator.
	Cache *Cache
}

// Estimator adapts a Sketch to the solver's estimation-backend
// interface (core.Estimator). σ-only evaluations — Sigma, SigmaBatch,
// RunBatch, and RunBatchMasked without π — are answered by coverage
// counting over the RR index; π-bearing evaluations and MeanWeights
// need real post-campaign state and delegate to an embedded
// Monte-Carlo engine with the same seed discipline. The sketch is
// built lazily on first σ use (or fetched from Config.Cache) and then
// fixed for the estimator's lifetime: Reseed re-seeds only the
// embedded MC engine, which is the standard TIM/IMM greedy-coverage
// semantics — greedy rounds maximise coverage over one fixed sample
// set, so the winner's-curse reseed the MC engine needs does not apply
// to the coverage oracle (DESIGN.md §9).
type Estimator struct {
	p       *diffusion.Problem
	cfg     Config
	seed    uint64
	workers int
	mc      *diffusion.Estimator

	done <-chan struct{}

	mu sync.Mutex
	sk *Sketch
	sc Scratch
}

// New creates a sketch-backed estimator. mcSamples and seed configure
// the embedded MC engine exactly as the local backend would (so the
// delegated π/MeanWeights paths stay bit-identical to the MC backend);
// the sketch itself is keyed by (problem, Epsilon, Delta, seed).
func New(p *diffusion.Problem, cfg Config, mcSamples int, seed uint64, workers int) *Estimator {
	mc := diffusion.NewEstimator(p, mcSamples, seed)
	mc.Workers = workers
	return &Estimator{p: p, cfg: cfg, seed: seed, workers: workers, mc: mc}
}

// Bind attaches a cancellation context: it preempts both a sketch
// build in flight and the embedded MC engine. Results produced after
// cancellation are partial garbage the caller must discard.
func (e *Estimator) Bind(ctx context.Context) {
	e.done = ctx.Done()
	e.mc.Bind(ctx)
}

// Reseed re-seeds the embedded MC engine only; the RR index stays
// fixed (see the type comment).
func (e *Estimator) Reseed(seed uint64) { e.mc.Reseed(seed) }

func (e *Estimator) preempted() bool {
	if e.done == nil {
		return false
	}
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Warm forces the sketch build (or cache fetch) and reports its error;
// queries after a successful Warm pay only coverage-counting cost. The
// query paths call it implicitly and degrade to the exact MC engine if
// the build fails.
func (e *Estimator) Warm() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, err := e.sketchLocked()
	return err
}

func (e *Estimator) sketchLocked() (*Sketch, error) {
	if e.sk != nil {
		return e.sk, nil
	}
	par := Params{Epsilon: e.cfg.Epsilon, Delta: e.cfg.Delta, Seed: e.seed, MaxTheta: e.cfg.MaxTheta}
	sk, err := e.cfg.Cache.GetOrBuild(e.p, par, e.workers, e.done)
	if err != nil {
		return nil, err
	}
	e.sk = sk
	return sk, nil
}

// estimate answers one group by coverage counting, or falls back to
// the MC engine when no sketch is available (build failure — the
// preempted case returns garbage the caller discards anyway).
func (e *Estimator) estimate(seeds []diffusion.Seed, market []bool, withPerItem bool) diffusion.Estimate {
	e.mu.Lock()
	sk, err := e.sketchLocked()
	if err != nil {
		e.mu.Unlock()
		return e.mc.Run(seeds, market, false)
	}
	var perItem []float64
	if withPerItem {
		perItem = make([]float64, sk.Items)
	}
	est := sk.Estimate(seeds, market, perItem, &e.sc)
	e.mu.Unlock()
	return est
}

// Sigma returns the coverage estimate of σ(seeds).
func (e *Estimator) Sigma(seeds []diffusion.Seed) float64 {
	return e.estimate(seeds, nil, false).Sigma
}

// Run estimates one seed group. withPi delegates to the MC engine.
func (e *Estimator) Run(seeds []diffusion.Seed, market []bool, withPi bool) diffusion.Estimate {
	if withPi {
		return e.mc.Run(seeds, market, true)
	}
	return e.estimate(seeds, market, true)
}

// RunBatch estimates every group under one shared market mask by
// coverage counting.
func (e *Estimator) RunBatch(groups [][]diffusion.Seed, market []bool) []diffusion.Estimate {
	out := make([]diffusion.Estimate, len(groups))
	for g, seeds := range groups {
		if e.preempted() {
			break
		}
		out[g] = e.estimate(seeds, market, true)
	}
	return out
}

// RunBatchPi needs π and delegates to the MC engine.
func (e *Estimator) RunBatchPi(groups [][]diffusion.Seed, market []bool) []diffusion.Estimate {
	return e.mc.RunBatchPi(groups, market)
}

// RunBatchMasked estimates each group under its own mask; withPi
// delegates to the MC engine.
func (e *Estimator) RunBatchMasked(groups [][]diffusion.Seed, masks [][]bool, withPi bool) []diffusion.Estimate {
	if withPi {
		return e.mc.RunBatchMasked(groups, masks, withPi)
	}
	out := make([]diffusion.Estimate, len(groups))
	for g, seeds := range groups {
		if e.preempted() {
			break
		}
		out[g] = e.estimate(seeds, masks[g], true)
	}
	return out
}

// SigmaBatch returns just σ per group — the solver's CELF hot path,
// and the sketch's reason to exist: one map probe per seed pair plus a
// covered-sample count, independent of cascade size.
func (e *Estimator) SigmaBatch(groups [][]diffusion.Seed) []float64 {
	out := make([]float64, len(groups))
	for g, seeds := range groups {
		if e.preempted() {
			break
		}
		out[g] = e.estimate(seeds, nil, false).Sigma
	}
	return out
}

// MeanWeights delegates to the MC engine (DRE's expectation step needs
// the end-of-campaign weighting vectors, which coverage cannot see).
func (e *Estimator) MeanWeights(seeds []diffusion.Seed, users []int) []float64 {
	return e.mc.MeanWeights(seeds, users)
}

// AttachGrid wires a sample-grid memoization view (DESIGN.md §10)
// into the embedded MC engine — the delegated π/MeanWeights/MCSI
// paths simulate real campaigns and memoize like the exact backend;
// the sketch's own coverage-counting answers never touch the grid
// cache (they are approximate and keyed in their own §9 lane).
func (e *Estimator) AttachGrid(v diffusion.GridCache) { e.mc.Grid = v }

// GridStats reports the embedded MC engine's cache-served work.
func (e *Estimator) GridStats() (hits, samplesSaved uint64) { return e.mc.GridStats() }

// SamplesDone reports the RR samples generated for this estimator's
// sketch (counted once) plus the embedded MC engine's campaigns — the
// work figure throughput accounting divides by.
func (e *Estimator) SamplesDone() uint64 {
	e.mu.Lock()
	var built uint64
	if e.sk != nil {
		built = uint64(e.sk.Theta)
	}
	e.mu.Unlock()
	return built + e.mc.SamplesDone()
}

// StateBytes reports the larger of the sketch index footprint and the
// MC engine's pooled state.
func (e *Estimator) StateBytes() uint64 {
	e.mu.Lock()
	var b uint64
	if e.sk != nil {
		b = e.sk.Bytes()
	}
	e.mu.Unlock()
	if mcb := e.mc.StateBytes(); mcb > b {
		b = mcb
	}
	return b
}

package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

func TestIDJSONRoundTrip(t *testing.T) {
	for _, id := range []ID{0, 1, 0xdeadbeefcafe1234, ^ID(0)} {
		b, err := json.Marshal(id)
		if err != nil {
			t.Fatalf("marshal %v: %v", id, err)
		}
		want := fmt.Sprintf("%q", id.String())
		if string(b) != want {
			t.Fatalf("marshal %v = %s, want %s", id, b, want)
		}
		var back ID
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != id {
			t.Fatalf("round trip %v -> %v", id, back)
		}
	}
	// lenient bare-number form
	var n ID
	if err := json.Unmarshal([]byte("42"), &n); err != nil || n != 42 {
		t.Fatalf("bare number: %v %v", n, err)
	}
	if err := json.Unmarshal([]byte(`"zzz"`), &n); err == nil {
		t.Fatal("bad hex accepted")
	}
}

func TestNewIDNonZeroUnique(t *testing.T) {
	seen := make(map[ID]bool)
	for i := 0; i < 10000; i++ {
		id := newID()
		if id == 0 {
			t.Fatal("zero id")
		}
		if seen[id] {
			t.Fatalf("duplicate id %v", id)
		}
		seen[id] = true
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("job")
	root.SetAttr("job_id", "j1")
	child := root.StartChild("solve")
	grand := child.StartChild("batch")
	grand.SetAttrInt("samples", 100)
	grand.End()
	child.End()
	root.RecordChild("queue_wait", time.Now().Add(-time.Millisecond), time.Now())
	root.End()

	traces := tr.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	got := traces[0]
	if got.Root != "job" {
		t.Fatalf("root = %q", got.Root)
	}
	if len(got.Spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(got.Spans))
	}
	byName := make(map[string]SpanRec)
	for _, s := range got.Spans {
		if s.TraceID != got.TraceID {
			t.Fatalf("span %q trace id mismatch", s.Name)
		}
		byName[s.Name] = s
	}
	if byName["solve"].Parent != byName["job"].SpanID {
		t.Fatal("solve not parented to job")
	}
	if byName["batch"].Parent != byName["solve"].SpanID {
		t.Fatal("batch not parented to solve")
	}
	if byName["queue_wait"].Parent != byName["job"].SpanID {
		t.Fatal("queue_wait not parented to job")
	}
	if byName["batch"].Attrs["samples"] != "100" {
		t.Fatalf("attrs = %v", byName["batch"].Attrs)
	}
	if byName["job"].Parent != 0 {
		t.Fatal("root has a parent")
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < maxTraces+10; i++ {
		s := tr.Start("t")
		s.SetAttrInt("i", int64(i))
		s.End()
	}
	traces := tr.Snapshot()
	if len(traces) != maxTraces {
		t.Fatalf("ring = %d, want %d", len(traces), maxTraces)
	}
	// newest first: the last-committed trace leads
	if traces[0].Spans[0].Attrs["i"] != fmt.Sprint(maxTraces+9) {
		t.Fatalf("newest = %v", traces[0].Spans[0].Attrs)
	}
}

func TestSpanPerTraceBound(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("big")
	for i := 0; i < maxSpansPerTrace+50; i++ {
		root.StartChild("c").End()
	}
	root.End()
	got := tr.Snapshot()[0]
	if len(got.Spans) != maxSpansPerTrace {
		t.Fatalf("spans = %d, want %d", len(got.Spans), maxSpansPerTrace)
	}
	if got.Dropped != 51 { // 50 extra children + the root itself
		t.Fatalf("dropped = %d, want 51", got.Dropped)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil tracer produced a span")
	}
	// every method on a nil span must be a no-op
	s.SetAttr("k", "v")
	s.SetAttrInt("k", 1)
	s.RecordChild("q", time.Now(), time.Now())
	s.Adopt([]SpanRec{{TraceID: 1}})
	s.End()
	if c := s.StartChild("y"); c != nil {
		t.Fatal("nil span produced a child")
	}
	if s.TraceID() != 0 || s.SpanID() != 0 {
		t.Fatal("nil span has ids")
	}
	if s.EndCollect() != nil {
		t.Fatal("nil EndCollect returned spans")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer snapshot")
	}
	if StartSpan(nil, "z") != nil {
		t.Fatal("StartSpan on nil ctx")
	}
	if NewTracer().StartRemote(0, 0, "w") != nil {
		t.Fatal("StartRemote with zero trace id")
	}
}

func TestRemoteAdoptJoinsTrace(t *testing.T) {
	coord := NewTracer()
	worker := NewTracer()

	root := coord.Start("job")
	rpc := root.StartChild("shard_rpc")

	// worker side: join the propagated trace, do some work, collect
	wroot := worker.StartRemote(rpc.TraceID(), rpc.SpanID(), "worker_estimate")
	wroot.StartChild("batch").End()
	recs := wroot.EndCollect()
	if len(recs) != 2 {
		t.Fatalf("collected %d recs, want 2", len(recs))
	}
	if recs[len(recs)-1].Name != "worker_estimate" {
		t.Fatalf("root rec not last: %v", recs)
	}
	for _, r := range recs {
		if r.TraceID != root.TraceID() {
			t.Fatal("worker rec has wrong trace id")
		}
	}
	// worker's own ring also holds the trace
	if wt := worker.Snapshot(); len(wt) != 1 || wt[0].TraceID != root.TraceID() {
		t.Fatalf("worker ring = %+v", wt)
	}

	// coordinator adopts, plus a mismatched record that must be dropped
	rpc.Adopt(append(recs, SpanRec{TraceID: 12345, Name: "stale"}))
	rpc.End()
	root.End()

	got := coord.Snapshot()[0]
	names := make(map[string]bool)
	for _, s := range got.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"job", "shard_rpc", "worker_estimate", "batch"} {
		if !names[want] {
			t.Fatalf("joined trace missing %q: %v", want, names)
		}
	}
	if names["stale"] {
		t.Fatal("mismatched trace id adopted")
	}
}

func TestEndCollectBound(t *testing.T) {
	tr := NewTracer()
	root := tr.StartRemote(7, 0, "w")
	for i := 0; i < maxRemoteSpans+10; i++ {
		root.StartChild("c").End()
	}
	recs := root.EndCollect()
	if len(recs) != maxRemoteSpans {
		t.Fatalf("collected %d, want %d", len(recs), maxRemoteSpans)
	}
	if recs[len(recs)-1].Name != "w" {
		t.Fatal("root rec not last after truncation")
	}
}

func TestHandlerJSON(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("job")
	root.StartChild("solve").End()
	root.End()

	rr := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var body struct {
		Traces []Trace `json:"traces"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad body: %v\n%s", err, rr.Body.String())
	}
	if len(body.Traces) != 1 || body.Traces[0].Root != "job" {
		t.Fatalf("body = %+v", body)
	}
	// spans sorted by start: root began first
	if body.Traces[0].Spans[0].Name != "job" {
		t.Fatalf("span order = %+v", body.Traces[0].Spans)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if st := h.Stats(); st.Count != 0 || st.P50Ms != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
	// 100 samples at 1ms, 100 at 10ms: p50 within the 1ms bucket's
	// range, p95/p99 within the 10ms bucket's range
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
		h.Observe(10 * time.Millisecond)
	}
	st := h.Stats()
	if st.Count != 200 {
		t.Fatalf("count = %d", st.Count)
	}
	if st.MeanMs < 5.4 || st.MeanMs > 5.6 {
		t.Fatalf("mean = %v, want ~5.5", st.MeanMs)
	}
	// 1ms lands in bucket (512µs, 1024µs]; 10ms in (8.192ms, 16.384ms]
	if st.P50Ms < 0.5 || st.P50Ms > 1.03 {
		t.Fatalf("p50 = %v, want in (0.512, 1.024]", st.P50Ms)
	}
	if st.P95Ms < 8.1 || st.P95Ms > 16.4 {
		t.Fatalf("p95 = %v, want in (8.192, 16.384]", st.P95Ms)
	}
	if st.P99Ms < 8.1 || st.P99Ms > 16.4 {
		t.Fatalf("p99 = %v, want in (8.192, 16.384]", st.P99Ms)
	}
	if st.P50Ms > st.P95Ms || st.P95Ms > st.P99Ms {
		t.Fatalf("quantiles not monotone: %+v", st)
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram()
	h.Observe(-time.Second) // clamped to zero
	h.Observe(0)
	h.Observe(time.Nanosecond)
	h.Observe(100 * time.Hour) // overflow bucket
	st := h.Stats()
	if st.Count != 4 {
		t.Fatalf("count = %d", st.Count)
	}
	var nilH *Histogram
	nilH.Observe(time.Second)
	if st := nilH.Stats(); st.Count != 0 {
		t.Fatal("nil histogram recorded")
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{1024 * time.Microsecond, 10},
		{1025 * time.Microsecond, 11},
		{200 * time.Hour, numBuckets},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Fatalf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

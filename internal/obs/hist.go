package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is the fixed bucket count of every latency histogram:
// bucket i spans (2^(i-1), 2^i] microseconds (bucket 0 is [0, 1µs]),
// so 36 doubling buckets cover 1µs to ~19h — the whole plausible
// range from a grid-cache hit to a pathological solve — at a constant
// ~300 bytes per histogram. Fixed exponential buckets keep Observe
// lock-free (one atomic add) and make quantile extraction a cheap
// cumulative walk with linear interpolation inside the hit bucket,
// accurate to within the bucket's 2× width — plenty for p50/p95/p99
// dashboards, by design not a percentile-exact digest.
const numBuckets = 36

// Histogram is a fixed-bucket latency histogram. The zero value is
// ready to use; all methods are safe for concurrent use.
type Histogram struct {
	counts [numBuckets + 1]atomic.Uint64 // last bucket: overflow
	total  atomic.Uint64
	sumNS  atomic.Int64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	if us <= 1 {
		return 0
	}
	i := bits.Len64(us - 1) // smallest i with us <= 2^i
	if i > numBuckets {
		return numBuckets
	}
	return i
}

// Observe records one latency sample. Negative durations are clamped
// to zero; a nil histogram ignores the call.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// HistStats is a histogram snapshot: the /metrics "latency" block
// entry shape. JSON field names are a stable wire contract.
type HistStats struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// Stats snapshots the histogram's count, mean and p50/p95/p99. A
// concurrent Observe may or may not be included; the snapshot is
// internally consistent enough for monitoring (counts are read once
// into a local copy before the quantile walk).
func (h *Histogram) Stats() HistStats {
	if h == nil {
		return HistStats{}
	}
	var counts [numBuckets + 1]uint64
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	st := HistStats{Count: total}
	if total == 0 {
		return st
	}
	st.MeanMs = float64(h.sumNS.Load()) / float64(total) / 1e6
	st.P50Ms = quantile(&counts, total, 0.50)
	st.P95Ms = quantile(&counts, total, 0.95)
	st.P99Ms = quantile(&counts, total, 0.99)
	return st
}

// quantile walks the cumulative counts to the bucket holding rank
// q·total and interpolates linearly within it, returning
// milliseconds.
func quantile(counts *[numBuckets + 1]uint64, total uint64, q float64) float64 {
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return (lo + (hi-lo)*frac) / 1e3 // µs → ms
		}
		cum = next
	}
	_, hi := bucketBounds(numBuckets)
	return hi / 1e3
}

// bucketBounds returns bucket i's (lo, hi] range in microseconds.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return float64(uint64(1) << (i - 1)), float64(uint64(1) << i)
}

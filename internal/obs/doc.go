// Package obs is the zero-dependency observability layer behind the
// daemon's /debug/traces endpoint and the /metrics "latency" block
// (DESIGN.md §11): span-based tracing with trace/span ids, parent
// links, phase labels and durations collected into a bounded ring of
// recent traces, plus fixed-bucket latency histograms with p50/p95/p99
// extraction.
//
// Everything here is result-invariant by construction — spans and
// histogram observations only record wall-clock facts about work that
// already happened; they never schedule, reorder or parameterise it —
// so instrumented and uninstrumented solves are bit-identical under
// the §3 determinism contract. All types are safe for concurrent use,
// and every Span method is nil-receiver safe: code paths with no live
// trace pay a nil check, not an allocation.
package obs

package obs

import "context"

// Trace context rides on context.Context — the same channel the
// solver pipeline already threads for cancellation — so tracing
// reaches the diffusion engine and the shard dispatcher without any
// estimator interface change, and code paths with no live trace see a
// nil span everywhere.

type ctxKey struct{}

// ContextWithSpan returns ctx carrying s as the current span. A nil
// span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the current span, or nil (also for nil
// ctx).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan begins a child of ctx's current span, or returns nil when
// no trace is live — the one-line instrumentation entry point for the
// batch engine and shard dispatch paths.
func StartSpan(ctx context.Context, name string) *Span {
	return SpanFromContext(ctx).StartChild(name)
}

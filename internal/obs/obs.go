package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ID is a trace or span identifier. It serializes as a 16-digit hex
// string — JSON numbers lose precision past 2^53, and trace ids must
// survive a round trip through any JSON client bit-exactly.
type ID uint64

// String returns the canonical 16-digit lower-hex form.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON encodes the id as its hex-string form.
func (id ID) MarshalJSON() ([]byte, error) { return []byte(`"` + id.String() + `"`), nil }

// UnmarshalJSON accepts the hex-string form (and, leniently, a bare
// number from hand-written clients).
func (id *ID) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		var n uint64
		if nerr := json.Unmarshal(data, &n); nerr == nil {
			*id = ID(n)
			return nil
		}
		return err
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return fmt.Errorf("obs: bad id %q: %w", s, err)
	}
	*id = ID(v)
	return nil
}

// idState seeds id generation once per process; ids are unique within
// a process and collide across processes with splitmix64's ~2^-64
// odds, which is plenty for joining coordinator and worker spans.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

// newID returns a fresh non-zero id (splitmix64 over a shared
// counter; zero is reserved to mean "no id").
func newID() ID {
	for {
		z := idState.Add(0x9e3779b97f4a7c15)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 {
			return ID(z)
		}
	}
}

// SpanRec is one finished span — the snapshot form served by
// /debug/traces and the wire form shipped from shard workers back to
// the coordinator. JSON field names are a stable contract.
type SpanRec struct {
	TraceID ID     `json:"trace_id"`
	SpanID  ID     `json:"span_id"`
	Parent  ID     `json:"parent_id,omitempty"` // zero for a trace root
	Name    string `json:"name"`
	Start   int64  `json:"start_unix_ns"`
	DurNS   int64  `json:"duration_ns"`
	// Attrs are small string facts about the span (counts, urls,
	// ranges); values are strings so the set stays schema-free.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Trace is one completed trace: every span that finished under one
// trace id, in end order (children before parents).
type Trace struct {
	TraceID ID        `json:"trace_id"`
	Root    string    `json:"root"` // the root span's name
	Spans   []SpanRec `json:"spans"`
	// Dropped counts spans discarded beyond the per-trace bound.
	Dropped int `json:"dropped,omitempty"`
}

// Bounds of the recent-trace ring: how many completed traces are kept
// and how many spans one trace may accumulate before dropping (a CELF
// solve can emit thousands of batch spans; the cap keeps one heavy
// job from pinning unbounded memory while still recording how much
// was dropped).
const (
	maxTraces        = 64
	maxSpansPerTrace = 512
)

// Tracer collects finished spans into a bounded ring of recent
// traces. The zero value is not usable; create with NewTracer.
type Tracer struct {
	mu     sync.Mutex
	traces []Trace // ring, oldest first
}

// NewTracer creates an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// collector accumulates one live trace's finished spans.
type collector struct {
	mu      sync.Mutex
	spans   []SpanRec
	dropped int
}

func (c *collector) add(rec SpanRec) {
	c.mu.Lock()
	if len(c.spans) >= maxSpansPerTrace {
		c.dropped++
	} else {
		c.spans = append(c.spans, rec)
	}
	c.mu.Unlock()
}

// Span is a live span handle. A nil *Span is a valid no-op: every
// method (including StartChild, which returns nil) is nil-receiver
// safe, so uninstrumented paths need no branching at call sites.
type Span struct {
	tracer  *Tracer
	col     *collector
	traceID ID
	spanID  ID
	parent  ID
	name    string
	start   time.Time
	root    bool

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

// Start begins a new trace rooted at a span with the given name.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tracer:  t,
		col:     &collector{},
		traceID: newID(),
		spanID:  newID(),
		name:    name,
		start:   time.Now(),
		root:    true,
	}
}

// StartRemote begins a local root span that joins a trace started
// elsewhere (a shard worker joining the coordinator's trace): the
// span carries the propagated trace id and parent span id, and its
// EndCollect ships the worker-side records back over the RPC response
// while also committing them to this tracer's own ring.
func (t *Tracer) StartRemote(traceID, parent ID, name string) *Span {
	if t == nil || traceID == 0 {
		return nil
	}
	return &Span{
		tracer:  t,
		col:     &collector{},
		traceID: traceID,
		spanID:  newID(),
		parent:  parent,
		name:    name,
		start:   time.Now(),
		root:    true,
	}
}

// StartChild begins a child span under s (nil in, nil out).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer:  s.tracer,
		col:     s.col,
		traceID: s.traceID,
		spanID:  newID(),
		parent:  s.spanID,
		name:    name,
		start:   time.Now(),
	}
}

// TraceID returns the span's trace id (zero for nil).
func (s *Span) TraceID() ID {
	if s == nil {
		return 0
	}
	return s.traceID
}

// SpanID returns the span's own id (zero for nil).
func (s *Span) SpanID() ID {
	if s == nil {
		return 0
	}
	return s.spanID
}

// SetAttr records one string fact on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// SetAttrInt records one integer fact on the span.
func (s *Span) SetAttrInt(key string, value int64) {
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// rec snapshots the span as a finished record ending now.
func (s *Span) rec() SpanRec {
	s.mu.Lock()
	var attrs map[string]string
	if len(s.attrs) > 0 {
		attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			attrs[k] = v
		}
	}
	s.mu.Unlock()
	return SpanRec{
		TraceID: s.traceID,
		SpanID:  s.spanID,
		Parent:  s.parent,
		Name:    s.name,
		Start:   s.start.UnixNano(),
		DurNS:   time.Since(s.start).Nanoseconds(),
		Attrs:   attrs,
	}
}

// End finishes the span, recording its duration. Ending the trace's
// root span commits the whole trace to the tracer's ring; repeated
// End calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.mu.Unlock()
	s.col.add(s.rec())
	if s.root {
		s.commit()
	}
}

// EndCollect finishes a root span and returns every span collected
// under it (the root record last), bounded at maxRemoteSpans — the
// form a shard worker ships back in its RPC response. The trace is
// also committed to the worker's own tracer ring, so worker-side
// /debug/traces shows the same spans the coordinator adopts.
func (s *Span) EndCollect() []SpanRec {
	if s == nil {
		return nil
	}
	s.End()
	s.col.mu.Lock()
	spans := append([]SpanRec(nil), s.col.spans...)
	s.col.mu.Unlock()
	if len(spans) > maxRemoteSpans {
		// keep the newest records: the root (appended by End above) and
		// the spans nearest to it
		spans = spans[len(spans)-maxRemoteSpans:]
	}
	return spans
}

// maxRemoteSpans bounds how many span records one RPC response may
// carry (and how many an Adopt call will accept): enough for a worker
// root plus its batch spans, small enough that spans never dominate
// the sample payload they ride along with.
const maxRemoteSpans = 16

// Adopt merges remotely produced span records (a worker's EndCollect
// output) into s's trace. Records whose trace id does not match are
// discarded — a confused or stale worker cannot graft spans onto the
// wrong trace — and at most maxRemoteSpans records are accepted.
func (s *Span) Adopt(recs []SpanRec) {
	if s == nil || len(recs) == 0 {
		return
	}
	if len(recs) > maxRemoteSpans {
		recs = recs[:maxRemoteSpans]
	}
	for _, rec := range recs {
		if rec.TraceID != s.traceID {
			continue
		}
		s.col.add(rec)
	}
}

// RecordChild records an already-elapsed interval as a finished child
// span — e.g. a job's queue wait, whose start predates the trace.
func (s *Span) RecordChild(name string, start, end time.Time) {
	if s == nil || end.Before(start) {
		return
	}
	s.col.add(SpanRec{
		TraceID: s.traceID,
		SpanID:  newID(),
		Parent:  s.spanID,
		Name:    name,
		Start:   start.UnixNano(),
		DurNS:   end.Sub(start).Nanoseconds(),
	})
}

// commit moves the finished trace into the tracer's bounded ring.
func (s *Span) commit() {
	s.col.mu.Lock()
	tr := Trace{
		TraceID: s.traceID,
		Root:    s.name,
		Spans:   append([]SpanRec(nil), s.col.spans...),
		Dropped: s.col.dropped,
	}
	s.col.mu.Unlock()
	t := s.tracer
	t.mu.Lock()
	t.traces = append(t.traces, tr)
	if len(t.traces) > maxTraces {
		t.traces = t.traces[len(t.traces)-maxTraces:]
	}
	t.mu.Unlock()
}

// Snapshot returns the completed traces, newest first.
func (t *Tracer) Snapshot() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Trace, len(t.traces))
	for i, tr := range t.traces {
		out[len(t.traces)-1-i] = tr
	}
	t.mu.Unlock()
	return out
}

// Handler serves the recent traces as JSON — the GET /debug/traces
// body: {"traces": [...]}, newest first, spans in end order with
// children before their parents.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		traces := t.Snapshot()
		for i := range traces {
			spans := traces[i].Spans
			// stable by start time for readability; end order is an
			// artifact of goroutine scheduling, not meaning
			sort.SliceStable(spans, func(a, b int) bool { return spans[a].Start < spans[b].Start })
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Traces []Trace `json:"traces"`
		}{Traces: traces})
	})
}

package gridcache

import (
	"bytes"
	"testing"

	"imdpp/internal/diffusion"
)

// FuzzGroupKeyCodec feeds arbitrary bytes to the group-key decoder (no
// panic, no unbounded allocation) and pins the canonical-encoding
// invariant: any accepted key re-encodes, via GroupKey.Append, to
// exactly the input bytes. That bijection is what makes raw key bytes
// safe as the cache's map key — two byte strings are equal iff they
// name the same evaluation unit.
func FuzzGroupKeyCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendGroupKey(nil, 42, 0, 8, nil, nil, false))
	f.Add(AppendGroupKey(nil, 7, 3, 16, []diffusion.Seed{
		{User: 1, Item: 0, T: 1}, {User: 4, Item: 2, T: 1}, {User: 2, Item: 1, T: 3},
	}, nil, true))
	mask := make([]bool, 12)
	mask[0], mask[5], mask[11] = true, true, true
	f.Add(AppendGroupKey(nil, 99, 5, 6, []diffusion.Seed{{User: 3, Item: 1, T: 2}}, mask, false))
	f.Add(AppendGroupKey(nil, 1, 0, 1, nil, make([]bool, 4), true))
	f.Fuzz(func(t *testing.T, data []byte) {
		k, err := DecodeGroupKey(data)
		if err != nil {
			return
		}
		if !bytes.Equal(k.Append(nil), data) {
			t.Fatalf("accepted key does not re-encode to itself:\n in %x\nout %x", data, k.Append(nil))
		}
		again, err := DecodeGroupKey(k.Append(nil))
		if err != nil {
			t.Fatalf("re-decode of accepted key failed: %v", err)
		}
		if again.Seed != k.Seed || again.Lo != k.Lo || again.Hi != k.Hi ||
			again.WithPi != k.WithPi || again.HasMarket != k.HasMarket ||
			len(again.Seeds) != len(k.Seeds) || len(again.Market) != len(k.Market) {
			t.Fatalf("decode/re-decode disagree: %+v vs %+v", k, again)
		}
	})
}

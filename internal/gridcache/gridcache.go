package gridcache

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"imdpp/internal/diffusion"
	"imdpp/internal/wirebin"
)

// defaultMaxBytes is the in-memory bound when Config leaves it unset.
const defaultMaxBytes = 64 << 20

// Config sizes a Cache. The zero value is NOT usable on its own: a
// nil KeyFn disables caching entirely (View returns nil), because
// without a content address two distinct problems could alias.
type Config struct {
	// MaxBytes bounds retained grid bytes in memory (≤0 → 64 MiB).
	// Committed entries beyond it are evicted oldest-first; in-flight
	// reservations are never evicted.
	MaxBytes int64
	// Dir, when non-empty, spills every committed grid to disk in the
	// canonical AppendSampleGrid wire form and reloads it on a later
	// miss — so eviction (or a daemon restart) downgrades a repeat from
	// a memory hit to a disk hit instead of a re-simulation.
	Dir string
	// KeyFn maps a problem to its content address (the serving layer
	// passes HashProblem). nil disables the cache.
	KeyFn func(*diffusion.Problem) string
}

// Cache is a bounded, byte-accounted, singleflight LRU of raw
// per-sample outcome grids, keyed by (problem content address, master
// seed, sample range, canonical group key) — DESIGN.md §10. One Cache
// is safe for concurrent use by any number of estimators across jobs;
// per-problem views (View) implement diffusion.GridCache.
type Cache struct {
	maxBytes int64
	dir      string
	keyFn    func(*diffusion.Problem) string

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // committed entries, oldest at Front
	bytes   int64

	pmu      sync.Mutex
	problems map[*diffusion.Problem]string // memoized content addresses

	lookups       atomic.Uint64
	hits          atomic.Uint64
	diskHits      atomic.Uint64
	singleflights atomic.Uint64
	evictions     atomic.Uint64
	samplesSaved  atomic.Uint64
}

// entry is one cache slot. Until committed it represents an in-flight
// singleflight reservation (rows nil, done open); Commit publishes the
// rows and enrols the entry in the LRU, Abort removes it so the next
// Begin retries. done is closed exactly once, by whichever settles it.
type entry struct {
	key       string
	rows      []diffusion.SampleResult
	bytes     int64
	done      chan struct{}
	committed bool
	elem      *list.Element
}

// New creates a cache. A nil KeyFn yields a cache whose views are nil
// — every caller simulates directly, which keeps "cache disabled" a
// configuration state rather than a code path.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = defaultMaxBytes
	}
	return &Cache{
		maxBytes: cfg.MaxBytes,
		dir:      cfg.Dir,
		keyFn:    cfg.KeyFn,
		entries:  make(map[string]*entry),
		lru:      list.New(),
		problems: make(map[*diffusion.Problem]string),
	}
}

// Stats is a point-in-time snapshot of the cache counters — the
// "grid" object of the daemon's /metrics document.
type Stats struct {
	// Lookups counts Begin calls; Hits the ones answered from memory.
	Lookups uint64 `json:"lookups"`
	Hits    uint64 `json:"hits"`
	// DiskHits counts grids reloaded from the spill directory instead
	// of re-simulated (neither a memory hit nor a miss-simulate).
	DiskHits uint64 `json:"disk_hits"`
	// Singleflights counts callers that joined an in-flight
	// simulation of the same key instead of duplicating it.
	Singleflights uint64 `json:"singleflights"`
	// Evictions counts committed entries dropped past MaxBytes.
	Evictions uint64 `json:"evictions"`
	// Bytes/Entries describe current residency.
	Bytes   int64 `json:"bytes"`
	Entries int   `json:"entries"`
	// SamplesSaved totals the campaign simulations that hits (memory,
	// disk and joined flights) avoided.
	SamplesSaved uint64 `json:"samples_saved"`
}

// Stats snapshots the counters; a nil cache reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	bytes, entries := c.bytes, len(c.entries)
	c.mu.Unlock()
	return Stats{
		Lookups:       c.lookups.Load(),
		Hits:          c.hits.Load(),
		DiskHits:      c.diskHits.Load(),
		Singleflights: c.singleflights.Load(),
		Evictions:     c.evictions.Load(),
		Bytes:         bytes,
		Entries:       entries,
		SamplesSaved:  c.samplesSaved.Load(),
	}
}

// View returns the diffusion.GridCache for one problem — the cache
// scoped to that problem's content address, the thing an estimator's
// Grid field holds. It returns nil (caching disabled) on a nil cache
// or nil KeyFn. The content address is memoized per problem pointer,
// so attaching views to the per-solve estimator pair hashes the
// problem once, not once per estimator.
func (c *Cache) View(p *diffusion.Problem) diffusion.GridCache {
	if c == nil || c.keyFn == nil || p == nil {
		return nil
	}
	c.pmu.Lock()
	pk, ok := c.problems[p]
	c.pmu.Unlock()
	if !ok {
		pk = c.keyFn(p)
		c.pmu.Lock()
		if len(c.problems) >= 128 {
			// bounded memo: problem pointers are not weakly referenced,
			// so reset rather than grow without bound
			c.problems = make(map[*diffusion.Problem]string)
		}
		c.problems[p] = pk
		c.pmu.Unlock()
	}
	return &view{c: c, problemKey: pk}
}

// view is the per-problem face of the cache.
type view struct {
	c          *Cache
	problemKey string
}

// Begin implements diffusion.GridCache: resolve one (seed, [lo,hi),
// group, market, withPi) unit to stored rows (hit), an owned ticket
// (first miss — caller simulates and settles), or a joined ticket
// (the same unit is in flight elsewhere — caller Waits).
func (v *view) Begin(seed uint64, lo, hi int, seeds []diffusion.Seed, market []bool, withPi bool) ([]diffusion.SampleResult, diffusion.GridTicket) {
	c := v.c
	c.lookups.Add(1)
	key := v.problemKey + string(AppendGroupKey(nil, seed, lo, hi, seeds, market, withPi))

	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		if e.committed {
			c.lru.MoveToBack(e.elem)
			rows := e.rows
			c.mu.Unlock()
			c.hits.Add(1)
			c.samplesSaved.Add(uint64(hi - lo))
			return rows, nil
		}
		c.mu.Unlock()
		c.singleflights.Add(1)
		return nil, &ticket{c: c, e: e}
	}
	e := &entry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	if rows := c.loadDisk(key, hi-lo); rows != nil {
		c.commit(e, rows, false)
		c.diskHits.Add(1)
		c.samplesSaved.Add(uint64(hi - lo))
		return rows, nil
	}
	return nil, &ticket{c: c, e: e, owned: true}
}

// ticket is one reservation; see diffusion.GridTicket for the
// protocol. settled guards the owner against double settlement.
type ticket struct {
	c       *Cache
	e       *entry
	owned   bool
	settled bool
}

func (t *ticket) Owned() bool { return t.owned }

func (t *ticket) Commit(rows []diffusion.SampleResult) {
	if !t.owned || t.settled {
		return
	}
	t.settled = true
	t.c.commit(t.e, rows, true)
}

func (t *ticket) Abort() {
	if !t.owned || t.settled {
		return
	}
	t.settled = true
	c, e := t.c, t.e
	c.mu.Lock()
	if c.entries[e.key] == e {
		delete(c.entries, e.key)
	}
	c.mu.Unlock()
	close(e.done)
}

func (t *ticket) Wait(stop <-chan struct{}) ([]diffusion.SampleResult, bool) {
	select {
	case <-t.e.done:
	case <-stop: // nil stop never fires, which is the intended "no preemption"
		return nil, false
	}
	c, e := t.c, t.e
	c.mu.Lock()
	defer c.mu.Unlock()
	if !e.committed {
		return nil, false // the owner aborted
	}
	if e.elem != nil && c.entries[e.key] == e {
		c.lru.MoveToBack(e.elem)
	}
	c.samplesSaved.Add(uint64(e.span()))
	return e.rows, true
}

// span recovers the sample count of a committed entry's rows.
func (e *entry) span() int { return len(e.rows) }

// commit publishes rows into an in-flight entry, accounts its bytes,
// enrols it in the LRU and wakes waiters. persist controls the disk
// spill (false when the rows just came FROM disk).
func (c *Cache) commit(e *entry, rows []diffusion.SampleResult, persist bool) {
	e.rows = rows
	e.bytes = int64(len(e.key)) + rowsBytes(rows)
	c.mu.Lock()
	if c.entries[e.key] == e {
		e.committed = true
		c.bytes += e.bytes
		e.elem = c.lru.PushBack(e)
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.done)
	if persist {
		c.saveDisk(e.key, rows)
	}
}

// evictLocked drops committed entries oldest-first past MaxBytes.
// In-flight reservations are not in the LRU, so they cannot be
// evicted; waiters holding a settled entry keep it alive through the
// ticket even after eviction drops it from the index.
func (c *Cache) evictLocked() {
	for c.bytes > c.maxBytes && c.lru.Len() > 0 {
		ev := c.lru.Remove(c.lru.Front()).(*entry)
		ev.elem = nil
		if c.entries[ev.key] == ev {
			delete(c.entries, ev.key)
		}
		c.bytes -= ev.bytes
		c.evictions.Add(1)
	}
}

// sampleResultBytes approximates the fixed per-row footprint of one
// diffusion.SampleResult (four float64s plus two slice headers).
const sampleResultBytes = 80

// rowsBytes accounts the retained footprint of one committed row set:
// struct overhead plus the sparse per-item backing arrays.
func rowsBytes(rows []diffusion.SampleResult) int64 {
	b := int64(len(rows)) * sampleResultBytes
	for i := range rows {
		b += int64(cap(rows[i].Items))*4 + int64(cap(rows[i].Counts))*8
	}
	return b
}

// fileName renders a key's spill location: the key bytes are not
// filename-safe, so the name is a 128-bit FNV-1a of them; the full key
// is stored inside the image and verified on load, so a hash collision
// (or a renamed file) degrades to a re-simulation, never an alias.
func fileName(key string) string {
	const offset, prime = 14695981039346656037, 1099511628211
	a, b := uint64(offset), uint64(offset)^0x9e3779b97f4a7c15
	for i := 0; i < len(key); i++ {
		a = (a ^ uint64(key[i])) * prime
		b = (b ^ uint64(key[i])) * prime
	}
	return fmt.Sprintf("%016x%016x.grid", a, b)
}

func (c *Cache) path(key string) string { return filepath.Join(c.dir, fileName(key)) }

// loadDisk attempts a spill reload; any failure (missing, corrupt,
// key mismatch, wrong span) degrades to a miss.
func (c *Cache) loadDisk(key string, span int) []diffusion.SampleResult {
	if c.dir == "" {
		return nil
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil
	}
	r := wirebin.NewReader(b)
	n := r.Count(1)
	if r.Err() != nil || n != len(key) {
		return nil
	}
	stored := make([]byte, n)
	for i := range stored {
		stored[i] = r.U8()
	}
	if r.Err() != nil || string(stored) != key {
		return nil
	}
	grid, err := diffusion.DecodeSampleGrid(r)
	if err != nil || len(grid) != 1 || len(grid[0]) != span {
		return nil
	}
	if err := r.Done(); err != nil {
		return nil
	}
	return grid[0]
}

// saveDisk persists a committed grid best-effort (write-then-rename so
// a crashed write never leaves a truncated image). The image carries
// the full key for self-verification; persistence failures are
// ignored — the cache is an accelerator, not a store of record.
func (c *Cache) saveDisk(key string, rows []diffusion.SampleResult) {
	if c.dir == "" {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	b := wirebin.AppendUvarint(nil, uint64(len(key)))
	b = append(b, key...)
	b = diffusion.AppendSampleGrid(b, [][]diffusion.SampleResult{rows})
	tmp := c.path(key) + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, c.path(key))
}

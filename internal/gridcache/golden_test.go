package gridcache_test

import (
	"math"
	"testing"

	"imdpp/internal/core"
	"imdpp/internal/dataset"
	"imdpp/internal/diffusion"
	"imdpp/internal/gridcache"
	"imdpp/internal/service"
)

// These goldens pin the acceptance bar of DESIGN.md §10: with a grid
// cache attached, every estimate and every solve is bit-identical to
// the cache-off engine — cold (populating) and warm (served) alike.

func sampleProblem(t testing.TB) *diffusion.Problem {
	t.Helper()
	d, err := dataset.AmazonSample()
	if err != nil {
		t.Fatal(err)
	}
	return d.Clone(120, 3)
}

func newCache(t testing.TB) *gridcache.Cache {
	t.Helper()
	return gridcache.New(gridcache.Config{
		KeyFn: func(p *diffusion.Problem) string { return service.HashProblem(p).String() },
	})
}

func requireSameEstimates(t *testing.T, label string, want, got []diffusion.Estimate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d estimates", label, len(want), len(got))
	}
	for g := range want {
		w, gg := want[g], got[g]
		same := func(name string, a, b float64) {
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("%s: group %d %s differs: %v vs %v", label, g, name, a, b)
			}
		}
		same("sigma", w.Sigma, gg.Sigma)
		same("market_sigma", w.MarketSigma, gg.MarketSigma)
		same("pi", w.Pi, gg.Pi)
		same("adoptions", w.Adoptions, gg.Adoptions)
		if len(w.PerItem) != len(gg.PerItem) {
			t.Fatalf("%s: group %d PerItem lengths differ", label, g)
		}
		for j := range w.PerItem {
			same("per_item", w.PerItem[j], gg.PerItem[j])
		}
	}
}

// TestCachedEstimatesBitIdentical runs every batch entry point against
// the slot-based engine: a cold cached estimator (simulate + commit), a
// warm one sharing the cache (pure hits), and a third after within-T
// canonical reordering of the groups across promotions.
func TestCachedEstimatesBitIdentical(t *testing.T) {
	p := sampleProblem(t)
	groups := [][]diffusion.Seed{
		{{User: 1, Item: 0, T: 1}},
		{{User: 2, Item: 1, T: 1}, {User: 5, Item: 0, T: 2}},
		{{User: 9, Item: 2, T: 1}},
		{},
	}
	mask := make([]bool, p.NumUsers())
	for u := 0; u < p.NumUsers()/2; u++ {
		mask[u] = true
	}
	const m, seed = 13, 99
	plainEst := diffusion.NewEstimator(p, m, seed)
	plain := plainEst.RunBatch(groups, nil)
	withPi := plainEst.RunBatchPi(groups, mask)
	masked := plainEst.RunBatchMasked(groups, [][]bool{mask, nil, mask, nil}, true)

	c := newCache(t)
	cold := diffusion.NewEstimator(p, m, seed)
	cold.Grid = c.View(p)
	requireSameEstimates(t, "cold RunBatch", plain, cold.RunBatch(groups, nil))
	requireSameEstimates(t, "cold RunBatchPi", withPi, cold.RunBatchPi(groups, mask))
	requireSameEstimates(t, "cold RunBatchMasked", masked, cold.RunBatchMasked(groups, [][]bool{mask, nil, mask, nil}, true))
	if st := c.Stats(); st.Entries == 0 {
		t.Fatalf("cold pass committed nothing: %+v", st)
	}

	warm := diffusion.NewEstimator(p, m, seed)
	warm.Grid = c.View(p)
	before := c.Stats()
	requireSameEstimates(t, "warm RunBatch", plain, warm.RunBatch(groups, nil))
	requireSameEstimates(t, "warm RunBatchPi", withPi, warm.RunBatchPi(groups, mask))
	requireSameEstimates(t, "warm RunBatchMasked", masked, warm.RunBatchMasked(groups, [][]bool{mask, nil, mask, nil}, true))
	after := c.Stats()
	if after.Hits <= before.Hits {
		t.Fatalf("warm pass hit nothing: %+v → %+v", before, after)
	}
	if hits, saved := warm.GridStats(); hits == 0 || saved == 0 {
		t.Fatalf("warm estimator reports no cache-served work: hits=%d saved=%d", hits, saved)
	}
	if hits, _ := plainEst.GridStats(); hits != 0 {
		t.Fatalf("cache-less estimator reports grid hits: %d", hits)
	}

	// cross-promotion interleaving shares the warm entries (the engine
	// buckets by T, so the canonical key proves these bit-equal)
	reordered := [][]diffusion.Seed{
		groups[0],
		{{User: 5, Item: 0, T: 2}, {User: 2, Item: 1, T: 1}},
		groups[2],
		groups[3],
	}
	canon := diffusion.NewEstimator(p, m, seed)
	canon.Grid = c.View(p)
	preHits := c.Stats().Hits
	requireSameEstimates(t, "canonical reorder", plain, canon.RunBatch(reordered, nil))
	if c.Stats().Hits <= preHits {
		t.Fatal("cross-promotion reordering missed the canonical entries")
	}
}

// TestCachedSolveGolden pins cache-on == cache-off at the solver level,
// cold and warm, for both Solve and SolveAdaptive, and checks the
// solver's Stats surface the cache-served work.
func TestCachedSolveGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full solves; skipped under -short")
	}
	p := sampleProblem(t)
	opt := core.Options{MC: 8, MCSI: 4, CandidateCap: 32, Seed: 7}

	requireSameSolution := func(label string, want, got core.Solution) {
		t.Helper()
		if math.Float64bits(want.Sigma) != math.Float64bits(got.Sigma) {
			t.Fatalf("%s: σ %v != %v", label, got.Sigma, want.Sigma)
		}
		if len(want.Seeds) != len(got.Seeds) {
			t.Fatalf("%s: %d seeds vs %d", label, len(got.Seeds), len(want.Seeds))
		}
		for i := range want.Seeds {
			if want.Seeds[i] != got.Seeds[i] {
				t.Fatalf("%s: seed %d differs: %+v vs %+v", label, i, got.Seeds[i], want.Seeds[i])
			}
		}
	}

	for _, tc := range []struct {
		name  string
		solve func(*diffusion.Problem, core.Options) (core.Solution, error)
	}{
		{"solve", core.Solve},
		{"adaptive", core.SolveAdaptive},
	} {
		want, err := tc.solve(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if want.Stats.GridHits != 0 || want.Stats.SamplesSaved != 0 {
			t.Fatalf("%s: cache-less solve reports grid stats: %+v", tc.name, want.Stats)
		}

		cachedOpt := opt
		cachedOpt.GridCache = newCache(t)
		cold, err := tc.solve(p, cachedOpt)
		if err != nil {
			t.Fatal(err)
		}
		requireSameSolution(tc.name+" cold", want, cold)

		warm, err := tc.solve(p, cachedOpt)
		if err != nil {
			t.Fatal(err)
		}
		requireSameSolution(tc.name+" warm", want, warm)
		if warm.Stats.GridHits == 0 || warm.Stats.SamplesSaved == 0 {
			t.Fatalf("%s warm: no cache-served work in Stats: %+v", tc.name, warm.Stats)
		}
		st := cachedOpt.GridCache.Stats()
		if st.Hits == 0 || st.SamplesSaved == 0 {
			t.Fatalf("%s: cache counters flat after a warm solve: %+v", tc.name, st)
		}
	}
}

// TestCachedSolveContentHash checks GridCache stays outside the solve
// content address — requests differing only in the cache share a key,
// which is what lets the serving layer's result cache keep working
// unchanged with the grid cache on.
func TestCachedSolveContentHash(t *testing.T) {
	p := sampleProblem(t)
	opt := core.Options{MC: 8, Seed: 7}
	withCache := opt
	withCache.GridCache = newCache(t)
	if service.HashRequest(p, opt, false) != service.HashRequest(p, withCache, false) {
		t.Fatal("GridCache leaked into the solve content hash")
	}
}

package gridcache

import (
	"bytes"
	"fmt"
	"sort"

	"imdpp/internal/diffusion"
	"imdpp/internal/wirebin"
)

// GroupKey is the decoded form of one canonical cache key — the exact
// coordinates that, together with the problem content address,
// determine a sample grid under the §3 determinism contract.
type GroupKey struct {
	Seed   uint64
	Lo, Hi int
	WithPi bool
	// HasMarket distinguishes an explicit mask from "all users" (a nil
	// mask); Market lists the mask's true user ids, ascending.
	HasMarket bool
	Market    []int32
	// Seeds is the group in canonical order: bucketed by promotion T
	// ascending, input order preserved within one T (see AppendGroupKey
	// for why within-T order must NOT be sorted away).
	Seeds []diffusion.Seed
}

// AppendGroupKey appends the canonical identity of one evaluation
// unit: master seed, global sample range [lo,hi), the withPi flag, the
// market mask (as ascending true-user ids, with an explicit
// present/absent flag so an empty mask never aliases "all users") and
// the seed group.
//
// The group is canonicalised by stable-sorting on promotion T only.
// That is exactly the reordering the engine itself performs
// (RunCampaign buckets seeds by T, preserving input order within a
// bucket), so two groups that differ only in cross-promotion
// interleaving provably simulate identically and may share an entry.
// Within one promotion the order is significant and is preserved:
// seeds enter the initial frontier in input order and the campaign
// consumes a sequential RNG stream in frontier order, so permuting
// within-T seeds can change outcomes bit-for-bit. Sorting those away
// would alias bit-different grids — the one thing a bit-identity
// cache must never do (DESIGN.md §10).
func AppendGroupKey(b []byte, seed uint64, lo, hi int, seeds []diffusion.Seed, market []bool, withPi bool) []byte {
	b = wirebin.AppendU64(b, seed)
	b = wirebin.AppendUvarint(b, uint64(lo))
	b = wirebin.AppendUvarint(b, uint64(hi))
	b = wirebin.AppendBool(b, withPi)
	if market == nil {
		b = wirebin.AppendU8(b, 0)
	} else {
		b = wirebin.AppendU8(b, 1)
		n := 0
		for _, in := range market {
			if in {
				n++
			}
		}
		ids := make([]int32, 0, n)
		for u, in := range market {
			if in {
				ids = append(ids, int32(u))
			}
		}
		b = wirebin.AppendAscInt32s(b, ids)
	}
	b = wirebin.AppendUvarint(b, uint64(len(seeds)))
	for _, s := range canonicalSeeds(seeds) {
		b = wirebin.AppendVarint(b, int64(s.User))
		b = wirebin.AppendVarint(b, int64(s.Item))
		b = wirebin.AppendUvarint(b, uint64(s.T))
	}
	return b
}

// Append re-encodes a decoded key. For any key DecodeGroupKey
// accepts, Append reproduces the original bytes exactly — decoding is
// injective over canonical encodings, which is what lets the decoder
// double as the codec's correctness oracle under fuzzing.
func (k GroupKey) Append(b []byte) []byte {
	b = wirebin.AppendU64(b, k.Seed)
	b = wirebin.AppendUvarint(b, uint64(k.Lo))
	b = wirebin.AppendUvarint(b, uint64(k.Hi))
	b = wirebin.AppendBool(b, k.WithPi)
	if !k.HasMarket {
		b = wirebin.AppendU8(b, 0)
	} else {
		b = wirebin.AppendU8(b, 1)
		b = wirebin.AppendAscInt32s(b, k.Market)
	}
	b = wirebin.AppendUvarint(b, uint64(len(k.Seeds)))
	for _, s := range canonicalSeeds(k.Seeds) {
		b = wirebin.AppendVarint(b, int64(s.User))
		b = wirebin.AppendVarint(b, int64(s.Item))
		b = wirebin.AppendUvarint(b, uint64(s.T))
	}
	return b
}

// canonicalSeeds returns the group bucketed by T ascending with
// within-T input order preserved, copying only when a reorder is
// needed.
func canonicalSeeds(seeds []diffusion.Seed) []diffusion.Seed {
	for i := 1; i < len(seeds); i++ {
		if seeds[i].T < seeds[i-1].T {
			c := make([]diffusion.Seed, len(seeds))
			copy(c, seeds)
			sort.SliceStable(c, func(a, b int) bool { return c[a].T < c[b].T })
			return c
		}
	}
	return seeds
}

// DecodeGroupKey decodes a canonical group key, rejecting truncated or
// non-canonical encodings (descending promotion order, an inverted
// sample range, trailing bytes) so every accepted key re-encodes to
// the same bytes — the round-trip property the fuzz target pins.
func DecodeGroupKey(b []byte) (GroupKey, error) {
	var k GroupKey
	r := wirebin.NewReader(b)
	k.Seed = r.U64()
	lo := r.Uvarint()
	hi := r.Uvarint()
	k.WithPi = r.Bool()
	switch flag := r.U8(); flag {
	case 0:
	case 1:
		k.HasMarket = true
		k.Market = r.AscInt32s()
		for i := 1; i < len(k.Market); i++ {
			if k.Market[i] == k.Market[i-1] {
				return GroupKey{}, fmt.Errorf("gridcache: duplicate market user %d", k.Market[i])
			}
		}
		if len(k.Market) > 0 && k.Market[0] < 0 {
			return GroupKey{}, fmt.Errorf("gridcache: negative market user %d", k.Market[0])
		}
	default:
		return GroupKey{}, fmt.Errorf("gridcache: bad market flag %d", flag)
	}
	n := r.Count(3) // two varints + one uvarint ≥ 3 bytes per seed
	if r.Err() == nil && n > 0 {
		k.Seeds = make([]diffusion.Seed, n)
		prevT := 0
		for i := range k.Seeds {
			k.Seeds[i].User = int(r.Varint())
			k.Seeds[i].Item = int(r.Varint())
			t := r.Uvarint()
			if r.Err() != nil {
				break
			}
			if t > 1<<20 {
				return GroupKey{}, fmt.Errorf("gridcache: promotion %d out of range", t)
			}
			if int(t) < prevT {
				return GroupKey{}, fmt.Errorf("gridcache: non-canonical promotion order (%d after %d)", t, prevT)
			}
			k.Seeds[i].T = int(t)
			prevT = int(t)
		}
	}
	if err := r.Done(); err != nil {
		return GroupKey{}, err
	}
	if lo > 1<<40 || hi > 1<<40 || hi <= lo {
		return GroupKey{}, fmt.Errorf("gridcache: bad sample range [%d,%d)", lo, hi)
	}
	k.Lo, k.Hi = int(lo), int(hi)
	// Canonicality backstop: the structural checks above reject the
	// semantically dangerous reorderings, but the varint layer accepts
	// non-minimal spellings (0x80 0x00 for zero). Re-encoding and
	// comparing rejects every remaining alias in one stroke, making
	// "accepted" synonymous with "canonical".
	if !bytes.Equal(k.Append(nil), b) {
		return GroupKey{}, fmt.Errorf("gridcache: non-canonical key encoding")
	}
	return k, nil
}

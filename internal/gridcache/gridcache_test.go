package gridcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"imdpp/internal/diffusion"
)

// testCache builds a cache whose problem key is a constant — key-space
// behaviour is exercised through the group-key coordinates.
func testCache(maxBytes int64, dir string) (*Cache, diffusion.GridCache) {
	c := New(Config{
		MaxBytes: maxBytes,
		Dir:      dir,
		KeyFn:    func(*diffusion.Problem) string { return "problem-A" },
	})
	return c, c.View(&diffusion.Problem{})
}

func rowsFor(tag int, span int) []diffusion.SampleResult {
	rows := make([]diffusion.SampleResult, span)
	for i := range rows {
		rows[i] = diffusion.SampleResult{
			Sigma:     float64(tag*1000 + i),
			Pi:        float64(tag) / 7,
			Adoptions: float64(i),
			Items:     []int32{int32(i % 3)},
			Counts:    []float64{float64(tag)},
		}
	}
	return rows
}

func sameRows(a, b []diffusion.SampleResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Sigma != b[i].Sigma || a[i].Pi != b[i].Pi {
			return false
		}
	}
	return true
}

func TestGroupKeyRoundTrip(t *testing.T) {
	market := make([]bool, 10)
	market[2], market[7] = true, true
	cases := []struct {
		name   string
		seed   uint64
		lo, hi int
		seeds  []diffusion.Seed
		market []bool
		withPi bool
	}{
		{"empty group", 42, 0, 8, nil, nil, false},
		{"one seed", 1, 3, 5, []diffusion.Seed{{User: 4, Item: 1, T: 2}}, nil, true},
		{"masked", 99, 0, 16, []diffusion.Seed{{User: 0, Item: 0, T: 1}, {User: 3, Item: 2, T: 1}}, market, false},
		{"empty mask is not nil mask", 7, 0, 4, nil, make([]bool, 10), false},
		{"multi-promotion", 5, 2, 9, []diffusion.Seed{
			{User: 9, Item: 0, T: 1}, {User: 1, Item: 1, T: 2}, {User: 6, Item: 2, T: 3},
		}, nil, true},
	}
	for _, tc := range cases {
		b := AppendGroupKey(nil, tc.seed, tc.lo, tc.hi, tc.seeds, tc.market, tc.withPi)
		k, err := DecodeGroupKey(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if k.Seed != tc.seed || k.Lo != tc.lo || k.Hi != tc.hi || k.WithPi != tc.withPi {
			t.Fatalf("%s: decoded header %+v", tc.name, k)
		}
		if k.HasMarket != (tc.market != nil) {
			t.Fatalf("%s: HasMarket %v, mask nil-ness %v", tc.name, k.HasMarket, tc.market == nil)
		}
		if !bytes.Equal(k.Append(nil), b) {
			t.Fatalf("%s: re-encode differs from original", tc.name)
		}
	}
}

// TestGroupKeyCanonicalization pins the aliasing contract: reorderings
// the engine itself performs (cross-promotion interleaving) share a
// key; reorderings that can change bits (within one promotion) do not.
func TestGroupKeyCanonicalization(t *testing.T) {
	base := []diffusion.Seed{
		{User: 1, Item: 0, T: 1}, {User: 2, Item: 1, T: 1}, {User: 3, Item: 0, T: 2},
	}
	key := func(seeds []diffusion.Seed) string {
		return string(AppendGroupKey(nil, 9, 0, 4, seeds, nil, false))
	}
	crossT := []diffusion.Seed{
		{User: 3, Item: 0, T: 2}, {User: 1, Item: 0, T: 1}, {User: 2, Item: 1, T: 1},
	}
	if key(base) != key(crossT) {
		t.Fatal("cross-promotion interleaving must share one key (the engine buckets by T)")
	}
	withinT := []diffusion.Seed{
		{User: 2, Item: 1, T: 1}, {User: 1, Item: 0, T: 1}, {User: 3, Item: 0, T: 2},
	}
	if key(base) == key(withinT) {
		t.Fatal("within-promotion order is RNG-significant and must not alias")
	}

	// the other coordinates all separate the key space
	distinct := []string{
		key(base),
		string(AppendGroupKey(nil, 10, 0, 4, base, nil, false)),            // seed
		string(AppendGroupKey(nil, 9, 1, 4, base, nil, false)),             // lo
		string(AppendGroupKey(nil, 9, 0, 5, base, nil, false)),             // hi
		string(AppendGroupKey(nil, 9, 0, 4, base, nil, true)),              // withPi
		string(AppendGroupKey(nil, 9, 0, 4, base, make([]bool, 4), false)), // empty mask ≠ nil
	}
	seen := map[string]int{}
	for i, k := range distinct {
		if j, dup := seen[k]; dup {
			t.Fatalf("key variants %d and %d alias", i, j)
		}
		seen[k] = i
	}
}

func TestDecodeGroupKeyRejects(t *testing.T) {
	good := AppendGroupKey(nil, 3, 0, 4, []diffusion.Seed{{User: 1, Item: 0, T: 1}, {User: 2, Item: 1, T: 2}}, nil, false)
	if _, err := DecodeGroupKey(good); err != nil {
		t.Fatalf("canonical key rejected: %v", err)
	}
	// AppendGroupKey canonicalises, so a descending-T image must be
	// forged by hand: the canonical two-seed encoding with its seed
	// records swapped (the records are 3 bytes each here).
	forged := append([]byte{}, good...)
	rec := forged[len(forged)-6:]
	rec[0], rec[1], rec[2], rec[3], rec[4], rec[5] = rec[3], rec[4], rec[5], rec[0], rec[1], rec[2]

	bad := map[string][]byte{
		"empty":          nil,
		"truncated":      good[:len(good)-1],
		"trailing byte":  append(append([]byte{}, good...), 0),
		"descending T":   forged,
		"inverted range": AppendGroupKey(nil, 3, 4, 4, nil, nil, false),
	}
	for name, b := range bad {
		if _, err := DecodeGroupKey(b); err == nil {
			t.Errorf("%s: decode accepted a non-canonical key", name)
		}
	}
}

func TestCacheHitMissCommit(t *testing.T) {
	c, v := testCache(1<<20, "")
	seeds := []diffusion.Seed{{User: 1, Item: 0, T: 1}}

	rows, tk := v.Begin(7, 0, 4, seeds, nil, false)
	if rows != nil || tk == nil || !tk.Owned() {
		t.Fatalf("first Begin: rows=%v ticket=%v — want an owned miss", rows, tk)
	}
	want := rowsFor(1, 4)
	tk.Commit(want)

	got, tk2 := v.Begin(7, 0, 4, seeds, nil, false)
	if tk2 != nil || !sameRows(got, want) {
		t.Fatalf("second Begin: not a hit (rows=%v ticket=%v)", got, tk2)
	}
	// a different coordinate misses
	if rows, tk := v.Begin(8, 0, 4, seeds, nil, false); rows != nil || !tk.Owned() {
		t.Fatal("different seed must miss")
	} else {
		tk.Abort()
	}

	st := c.Stats()
	if st.Lookups != 3 || st.Hits != 1 || st.Entries != 1 || st.SamplesSaved != 4 {
		t.Fatalf("stats %+v", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("committed entry accounts no bytes: %+v", st)
	}
}

func TestCacheSingleflightJoinAndAbort(t *testing.T) {
	c, v := testCache(1<<20, "")
	seeds := []diffusion.Seed{{User: 2, Item: 1, T: 1}}

	_, owner := v.Begin(1, 0, 2, seeds, nil, false)
	_, joiner := v.Begin(1, 0, 2, seeds, nil, false)
	if !owner.Owned() || joiner == nil || joiner.Owned() {
		t.Fatalf("second concurrent Begin must join, not own (owner=%v joiner=%v)", owner, joiner)
	}

	want := rowsFor(2, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rows, ok := joiner.Wait(nil)
		if !ok || !sameRows(rows, want) {
			t.Errorf("joiner: ok=%v rows=%v", ok, rows)
		}
	}()
	owner.Commit(want)
	<-done
	if st := c.Stats(); st.Singleflights != 1 {
		t.Fatalf("stats %+v: want 1 singleflight", st)
	}

	// abort path: the waiter is released empty-handed and the key retries
	_, owner2 := v.Begin(2, 0, 2, seeds, nil, false)
	_, joiner2 := v.Begin(2, 0, 2, seeds, nil, false)
	owner2.Abort()
	if _, ok := joiner2.Wait(nil); ok {
		t.Fatal("waiter on an aborted flight must get ok=false")
	}
	if _, retry := v.Begin(2, 0, 2, seeds, nil, false); retry == nil || !retry.Owned() {
		t.Fatal("aborted key must be ownable again")
	}

	// stop channel preempts a Wait
	_, owner3 := v.Begin(3, 0, 2, seeds, nil, false)
	_, joiner3 := v.Begin(3, 0, 2, seeds, nil, false)
	stop := make(chan struct{})
	close(stop)
	if _, ok := joiner3.Wait(stop); ok {
		t.Fatal("fired stop channel must preempt Wait")
	}
	owner3.Abort()
}

// retainedBytes recomputes the byte ledger from first principles.
func retainedBytes(c *Cache) (sum int64, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if e.committed {
			sum += e.bytes
			n++
		}
	}
	return sum, n
}

func TestCacheEvictionByteAccounting(t *testing.T) {
	// each committed entry is ~keyBytes + 8 rows × (80 + 4 + 8) ≈ 780 B;
	// a 4000-byte bound holds only a handful
	c, v := testCache(4000, "")
	const span = 8
	for i := 0; i < 32; i++ {
		seeds := []diffusion.Seed{{User: i, Item: 0, T: 1}}
		rows, tk := v.Begin(1, 0, span, seeds, nil, false)
		if rows != nil {
			t.Fatalf("key %d: unexpected hit", i)
		}
		tk.Commit(rowsFor(i, span))

		sum, n := retainedBytes(c)
		st := c.Stats()
		if st.Bytes != sum {
			t.Fatalf("after insert %d: ledger %d != recomputed %d", i, st.Bytes, sum)
		}
		if st.Entries != n {
			t.Fatalf("after insert %d: %d entries vs %d committed", i, st.Entries, n)
		}
		if st.Bytes > 4000 {
			t.Fatalf("after insert %d: %d bytes exceeds the 4000-byte bound", i, st.Bytes)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("32 inserts under a 4000-byte bound evicted nothing: %+v", st)
	}
	// oldest keys are gone: re-Begin owns a fresh flight
	if rows, tk := v.Begin(1, 0, span, []diffusion.Seed{{User: 0, Item: 0, T: 1}}, nil, false); rows != nil || !tk.Owned() {
		t.Fatal("evicted key still answers from memory")
	} else {
		tk.Abort()
	}
	// newest key survives (LRU evicts oldest-first)
	if rows, _ := v.Begin(1, 0, span, []diffusion.Seed{{User: 31, Item: 0, T: 1}}, nil, false); rows == nil {
		t.Fatal("newest key was evicted before older ones")
	}
}

func TestCacheDiskSpill(t *testing.T) {
	dir := t.TempDir()
	seeds := []diffusion.Seed{{User: 5, Item: 1, T: 2}}
	want := rowsFor(9, 6)

	c1, v1 := testCache(1<<20, dir)
	_, tk := v1.Begin(4, 0, 6, seeds, nil, true)
	tk.Commit(want)
	if st := c1.Stats(); st.DiskHits != 0 {
		t.Fatalf("writer claims disk hits: %+v", st)
	}

	// a fresh cache over the same directory reloads instead of missing
	c2, v2 := testCache(1<<20, dir)
	got, tk2 := v2.Begin(4, 0, 6, seeds, nil, true)
	if tk2 != nil || !sameRows(got, want) {
		t.Fatalf("spill reload failed: rows=%v ticket=%v", got, tk2)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.SamplesSaved != 6 {
		t.Fatalf("stats %+v: want one 6-sample disk hit", st)
	}
	// and the reloaded entry now answers from memory
	if rows, _ := v2.Begin(4, 0, 6, seeds, nil, true); rows == nil {
		t.Fatal("reloaded entry not resident")
	}
	if st := c2.Stats(); st.Hits != 1 {
		t.Fatalf("stats %+v: want a memory hit after reload", st)
	}

	// corrupting the image degrades to a miss, never a bad alias
	files, err := filepath.Glob(filepath.Join(dir, "*.grid"))
	if err != nil || len(files) != 1 {
		t.Fatalf("spill files: %v, %v", files, err)
	}
	if err := os.WriteFile(files[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, v3 := testCache(1<<20, dir)
	if rows, tk := v3.Begin(4, 0, 6, seeds, nil, true); rows != nil {
		t.Fatal("corrupt spill image served rows")
	} else {
		tk.Abort()
	}
}

// TestCacheConcurrentStress hammers one cache from many goroutines
// over a small key space, checking the two invariants the -race run is
// for: every key is simulated by exactly one owner (singleflight), and
// the byte ledger matches the retained entries when the dust settles.
// A second phase repeats under an eviction-heavy bound.
func TestCacheConcurrentStress(t *testing.T) {
	const (
		workers = 8
		keys    = 24
		rounds  = 30
		span    = 4
	)
	c, v := testCache(1<<20, "") // no eviction: committed keys stay
	var owners [keys]atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				kid := (w + r) % keys
				seeds := []diffusion.Seed{{User: kid, Item: 0, T: 1}}
				rows, tk := v.Begin(1, 0, span, seeds, nil, false)
				switch {
				case rows != nil:
				case tk.Owned():
					owners[kid].Add(1)
					tk.Commit(rowsFor(kid, span))
					rows = rowsFor(kid, span)
				default:
					var ok bool
					if rows, ok = tk.Wait(nil); !ok {
						t.Errorf("key %d: joined flight aborted without an aborter", kid)
						return
					}
				}
				if len(rows) != span || rows[0].Sigma != float64(kid*1000) {
					t.Errorf("key %d: wrong rows %+v", kid, rows[0])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for kid := range owners {
		if n := owners[kid].Load(); n != 1 {
			t.Fatalf("key %d simulated %d times, want exactly 1 (singleflight)", kid, n)
		}
	}
	sum, _ := retainedBytes(c)
	if st := c.Stats(); st.Bytes != sum {
		t.Fatalf("ledger %d != recomputed %d", st.Bytes, sum)
	}

	// eviction-heavy phase: correctness of the ledger under churn
	c2, v2 := testCache(3000, "")
	var wg2 sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg2.Add(1)
		go func(w int) {
			defer wg2.Done()
			for r := 0; r < rounds; r++ {
				kid := (w*rounds + r) % (keys * 2)
				seeds := []diffusion.Seed{{User: kid, Item: 1, T: 1}}
				rows, tk := v2.Begin(2, 0, span, seeds, nil, false)
				if rows != nil || tk == nil {
					continue
				}
				if tk.Owned() {
					if r%5 == 0 {
						tk.Abort() // exercise abort under contention
					} else {
						tk.Commit(rowsFor(kid, span))
					}
				} else {
					tk.Wait(nil)
				}
			}
		}(w)
	}
	wg2.Wait()
	sum2, n2 := retainedBytes(c2)
	st := c2.Stats()
	if st.Bytes != sum2 || st.Entries < n2 {
		t.Fatalf("churn ledger: stats %+v vs recomputed (%d bytes, %d committed)", st, sum2, n2)
	}
	if st.Bytes > 3000 {
		t.Fatalf("churn left %d bytes resident past the 3000-byte bound", st.Bytes)
	}
}

func TestViewNilSafety(t *testing.T) {
	var nilCache *Cache
	if v := nilCache.View(&diffusion.Problem{}); v != nil {
		t.Fatal("nil cache must yield a nil view")
	}
	if st := nilCache.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
	noKey := New(Config{})
	if v := noKey.View(&diffusion.Problem{}); v != nil {
		t.Fatal("nil KeyFn must yield a nil view")
	}
	withKey, _ := testCache(0, "")
	if v := withKey.View(nil); v != nil {
		t.Fatal("nil problem must yield a nil view")
	}
}

// TestProblemKeySeparation checks two problems with distinct content
// addresses never share entries even at identical group coordinates.
func TestProblemKeySeparation(t *testing.T) {
	n := 0
	c := New(Config{KeyFn: func(*diffusion.Problem) string {
		n++
		return fmt.Sprintf("problem-%d", n)
	}})
	pA, pB := &diffusion.Problem{}, &diffusion.Problem{}
	vA := c.View(pA)
	vB := c.View(pB)
	seeds := []diffusion.Seed{{User: 0, Item: 0, T: 1}}
	_, tk := vA.Begin(1, 0, 2, seeds, nil, false)
	tk.Commit(rowsFor(1, 2))
	if rows, tk := vB.Begin(1, 0, 2, seeds, nil, false); rows != nil {
		t.Fatal("problem B answered from problem A's entry")
	} else {
		tk.Abort()
	}
	// content addresses are memoized per problem pointer: a repeat View
	// of pA must not re-run KeyFn
	_ = c.View(pA)
	if n != 2 {
		t.Fatalf("KeyFn ran %d times, want 2", n)
	}
}

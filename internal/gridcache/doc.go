// Package gridcache memoizes raw per-sample outcome grids across
// CELF waves, solver jobs and shard workers — the second cache level
// of the serving stack (DESIGN.md §10), between the whole-solve LRU
// and the approximate sketch lane.
//
// The §3 determinism contract makes every (group × sample-range) grid
// a pure function of the problem content, the master seed, the global
// sample indices, the seed group, the market mask and the withPi
// flag. The cache keys entries by exactly those coordinates —
// problem content address plus the canonical wirebin group key of
// key.go — and stores the raw diffusion.SampleResult rows, so serving
// a hit and reducing it with the canonical sample-order fold
// (diffusion.ReduceSampleGrid) is bit-identical to re-simulating.
// Memoization is therefore free speed with zero accuracy loss, unlike
// the §9 sketch backend, which trades ε for it.
//
// Group keys are canonicalised only as far as the engine provably
// ignores: seeds are bucketed by promotion T ascending with within-T
// input order preserved (the exact reordering RunCampaign itself
// performs). Within-promotion order is significant — the campaign
// consumes a sequential RNG stream in frontier order — so it is kept,
// never sorted away; aliasing bit-different grids is the one failure
// a bit-identity cache must not have.
//
// The cache is a byte-accounted singleflight LRU: concurrent misses
// on one key simulate once (Begin hands ownership to the first
// caller; the rest Wait), committed entries are evicted oldest-first
// past MaxBytes, and an optional spill directory persists grids in
// the canonical AppendSampleGrid wire form so eviction or a restart
// degrades repeats to disk hits instead of re-simulation. Estimators
// attach per-problem views (Cache.View) through the
// diffusion.GridCache interface.
package gridcache

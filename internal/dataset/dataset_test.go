package dataset

import (
	"math"
	"testing"

	"imdpp/internal/diffusion"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{Name: "tiny", Users: 2, Items: 2}); err == nil {
		t.Fatal("tiny spec accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{
		Name: "det", Users: 60, Items: 12, AttachM: 3,
		AvgInfluence: 0.1, Features: 8, Brands: 3, Categories: 3,
		Ecosystems: 3, AvgImportance: 1.5, Seed: 42,
	}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Problem.G.M() != b.Problem.G.M() {
		t.Fatal("social graphs differ across identical specs")
	}
	for u := 0; u < a.Problem.NumUsers(); u++ {
		for x := 0; x < a.Problem.NumItems(); x++ {
			if a.Problem.BasePrefOf(u, x) != b.Problem.BasePrefOf(u, x) {
				t.Fatal("preferences differ")
			}
			if a.Problem.CostOf(u, x) != b.Problem.CostOf(u, x) {
				t.Fatal("costs differ")
			}
		}
	}
}

func TestGeneratedProblemValid(t *testing.T) {
	for _, build := range []func(Scale) (*Dataset, error){Douban, Gowalla, Yelp, Amazon} {
		d, err := build(0.2)
		if err != nil {
			t.Fatal(err)
		}
		p := d.Clone(100, 3)
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Spec.Name, err)
		}
	}
}

func TestTableIIShape(t *testing.T) {
	cases := []struct {
		build     func(Scale) (*Dataset, error)
		nodeTypes int
		edgeTypes int
		directed  bool
		avgInf    float64
		avgImp    float64
	}{
		{Douban, 3, 4, false, 0.03, 2.1},
		{Gowalla, 3, 4, false, 0.092, 0.5},
		{Yelp, 6, 6, false, 0.121, 1.6},
		{Amazon, 6, 6, true, 0.05, 1.8},
	}
	for _, tc := range cases {
		d, err := tc.build(0.25)
		if err != nil {
			t.Fatal(err)
		}
		st := d.Stats()
		if st.NodeTypes != tc.nodeTypes {
			t.Errorf("%s node types = %d want %d", st.Name, st.NodeTypes, tc.nodeTypes)
		}
		if st.EdgeTypes != tc.edgeTypes {
			t.Errorf("%s edge types = %d want %d", st.Name, st.EdgeTypes, tc.edgeTypes)
		}
		if st.Directed != tc.directed {
			t.Errorf("%s directed = %v", st.Name, st.Directed)
		}
		if math.Abs(st.AvgInfluence-tc.avgInf) > tc.avgInf*0.25 {
			t.Errorf("%s avg influence %v want ~%v", st.Name, st.AvgInfluence, tc.avgInf)
		}
		if math.Abs(st.AvgImportance-tc.avgImp) > tc.avgImp*0.2 {
			t.Errorf("%s avg importance %v want ~%v", st.Name, st.AvgImportance, tc.avgImp)
		}
		if st.Users <= 0 || st.Items <= 0 || st.Friendships <= 0 {
			t.Errorf("%s degenerate: %+v", st.Name, st)
		}
	}
}

func TestUserItemRatioOrdering(t *testing.T) {
	// Douban has the most users of the four presets, Yelp the fewest
	// (Table II ordering by user count: Yelp < Gowalla < Amazon < Douban).
	names := []func(Scale) (*Dataset, error){Yelp, Gowalla, Amazon, Douban}
	prev := 0
	for _, build := range names {
		d, err := build(0.25)
		if err != nil {
			t.Fatal(err)
		}
		if u := d.Problem.G.N(); u < prev {
			t.Fatalf("user-count ordering broken at %s (%d < %d)", d.Spec.Name, u, prev)
		} else {
			prev = u
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	d, err := Yelp(0.2)
	if err != nil {
		t.Fatal(err)
	}
	p1 := d.Clone(100, 2)
	p2 := d.Clone(500, 10)
	if p1.Budget != 100 || p1.T != 2 || p2.Budget != 500 || p2.T != 10 {
		t.Fatal("clone budgets/T wrong")
	}
	if d.Problem.Budget != 0 {
		t.Fatal("clone mutated the shared problem")
	}
	// shares the expensive immutable parts
	if p1.G != p2.G || p1.PIN != p2.PIN {
		t.Fatal("clones rebuilt immutable substrates")
	}
}

func TestCostsPositiveAndCalibrated(t *testing.T) {
	d, err := Amazon(0.25)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Problem
	sum := 0.0
	for u := 0; u < p.NumUsers(); u++ {
		for _, c := range p.Cost.Row(u) {
			if c < 1 {
				t.Fatalf("cost below floor: %v", c)
			}
			sum += c
		}
	}
	mean := sum / float64(p.Cost.Rows()*p.Cost.Cols())
	want := Scale(0.25).avgCost()
	if mean < want*0.6 || mean > want*1.6 {
		t.Fatalf("mean cost %v, want ~%v", mean, want)
	}
}

func TestPreferencesInRange(t *testing.T) {
	d, err := Gowalla(0.2)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.Problem.NumUsers(); u++ {
		for _, v := range d.Problem.BasePref.Row(u) {
			if v < 0 || v > 1 {
				t.Fatalf("preference out of range: %v", v)
			}
		}
	}
}

func TestMetaGraphListsUsable(t *testing.T) {
	d, err := Yelp(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.MetaC) < 2 || len(d.MetaS) < 1 {
		t.Fatalf("meta lists: C=%d S=%d", len(d.MetaC), len(d.MetaS))
	}
	// the PIN must actually contain relevant pairs of both kinds
	model := d.Problem.PIN
	var anyC, anyS bool
	for x := 0; x < model.NumItems() && !(anyC && anyS); x++ {
		for _, y := range model.Neighbors(x) {
			rc, rs := model.RelStatic(x, int(y))
			if rc > 0 {
				anyC = true
			}
			if rs > 0 {
				anyS = true
			}
		}
	}
	if !anyC || !anyS {
		t.Fatalf("missing relationships: complementary=%v substitutable=%v", anyC, anyS)
	}
}

func TestAmazonSampleScale(t *testing.T) {
	d, err := AmazonSample()
	if err != nil {
		t.Fatal(err)
	}
	if d.Problem.G.N() != 100 {
		t.Fatalf("sample users = %d", d.Problem.G.N())
	}
	// seeds must be expensive enough that OPT's bounded enumeration is
	// the true optimum: budget 125 buys at most ~6 seeds
	minCost := math.Inf(1)
	for u := 0; u < d.Problem.NumUsers(); u++ {
		for _, c := range d.Problem.Cost.Row(u) {
			if c < minCost {
				minCost = c
			}
		}
	}
	if 125/minCost > 7 {
		t.Fatalf("sample seeds too cheap: min cost %v", minCost)
	}
}

func TestClassSpecsTableIII(t *testing.T) {
	specs := ClassSpecs()
	want := map[string][2]int{
		"A": {33, 293}, "B": {26, 420}, "C": {22, 387}, "D": {20, 227}, "E": {20, 308},
	}
	if len(specs) != 5 {
		t.Fatalf("%d classes", len(specs))
	}
	for _, s := range specs {
		w := want[s.ID]
		if s.Users != w[0] || s.Edges != w[1] {
			t.Fatalf("class %s: %d/%d want %v", s.ID, s.Users, s.Edges, w)
		}
	}
}

func TestBuildClassShape(t *testing.T) {
	for _, spec := range ClassSpecs() {
		d, err := BuildClass(spec, 7)
		if err != nil {
			t.Fatal(err)
		}
		p := d.Problem
		if p.G.N() != spec.Users {
			t.Fatalf("class %s users = %d", spec.ID, p.G.N())
		}
		if p.KG.NumItems() != 30 {
			t.Fatalf("class %s courses = %d", spec.ID, p.KG.NumItems())
		}
		// edge count within 20% of Table III
		if m := p.G.M(); math.Abs(float64(m-spec.Edges)) > 0.2*float64(spec.Edges) {
			t.Fatalf("class %s edges = %d want ~%d", spec.ID, m, spec.Edges)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("class %s: %v", spec.ID, err)
		}
		// uniform importance: σ equals expected selections
		for _, w := range p.Importance {
			if w != 1 {
				t.Fatalf("class %s importance %v", spec.ID, w)
			}
		}
	}
}

func TestBuildClassTooSmall(t *testing.T) {
	if _, err := BuildClass(ClassSpec{ID: "X", Users: 2, Edges: 1}, 1); err == nil {
		t.Fatal("degenerate class accepted")
	}
}

func TestCourseNames(t *testing.T) {
	if CourseName(0) != "AI" {
		t.Fatalf("course 0 = %s", CourseName(0))
	}
	if CourseName(999) == "" {
		t.Fatal("out-of-range course name empty")
	}
	seen := map[string]bool{}
	for i := 0; i < 30; i++ {
		n := CourseName(i)
		if seen[n] {
			t.Fatalf("duplicate course name %s", n)
		}
		seen[n] = true
	}
}

func TestAllPresets(t *testing.T) {
	ds, err := All(0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 4 {
		t.Fatalf("%d datasets", len(ds))
	}
	names := []string{"Douban", "Gowalla", "Yelp", "Amazon"}
	for i, d := range ds {
		if d.Spec.Name != names[i] {
			t.Fatalf("order: %s at %d", d.Spec.Name, i)
		}
	}
}

func TestScaleAvgCost(t *testing.T) {
	if got := Scale(1).avgCost(); got != 12 {
		t.Fatalf("scale 1 cost %v", got)
	}
	if got := Scale(0.5).avgCost(); got != 24 {
		t.Fatalf("scale 0.5 cost %v", got)
	}
	if got := Scale(2).avgCost(); got != 12 {
		t.Fatalf("scale 2 cost %v", got)
	}
	if got := Scale(0).avgCost(); got != 12 {
		t.Fatalf("scale 0 cost %v", got)
	}
}

// smoke: a campaign on a generated dataset actually spreads influence.
func TestGeneratedDatasetDiffuses(t *testing.T) {
	d, err := Yelp(0.2)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Clone(1e9, 2)
	est := diffusion.NewEstimator(p, 50, 3)
	// seed the highest-degree user with its best item
	best, bestDeg := 0, -1
	for u := 0; u < p.NumUsers(); u++ {
		if deg := p.G.OutDegree(u); deg > bestDeg {
			best, bestDeg = u, deg
		}
	}
	bestItem := 0
	for x := 1; x < p.NumItems(); x++ {
		if p.BasePrefOf(best, x) > p.BasePrefOf(best, bestItem) {
			bestItem = x
		}
	}
	res := est.Run([]diffusion.Seed{{User: best, Item: bestItem, T: 1}}, nil, false)
	if res.Adoptions <= 1 {
		t.Fatalf("hub seed never spreads: %v mean adoptions", res.Adoptions)
	}
}

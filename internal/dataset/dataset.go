package dataset

import (
	"fmt"
	"math"

	"imdpp/internal/diffusion"
	"imdpp/internal/graph"
	"imdpp/internal/kg"
	"imdpp/internal/pin"
	"imdpp/internal/rng"
)

// Spec parameterises a synthetic dataset.
type Spec struct {
	Name     string
	Users    int
	Items    int
	Directed bool

	// social network shape
	AttachM      int     // Barabási–Albert attachment degree
	AvgInfluence float64 // target mean P0act (Table II row)

	// KG shape
	Features   int  // FEATURE nodes
	Brands     int  // BRAND nodes
	Categories int  // CATEGORY nodes
	Extended   bool // six node/edge types (Yelp/Amazon) vs three (Douban/Gowalla)
	Ecosystems int  // cross-category complement clusters

	// item economics
	AvgImportance     float64 // target mean w_x (Table II row)
	UniformImportance bool    // Gowalla: random instead of price-like

	// seeding economics: costs are ∝ out-degree / preference [3],[67],
	// rescaled to mean AvgCost (default 12) with a floor of
	// MinCostFrac·AvgCost (default 1/12, i.e. absolute floor 1).
	AvgCost     float64
	MinCostFrac float64

	// diffusion params
	Params diffusion.Params

	Seed uint64
}

// Dataset bundles a generated problem with its spec. Budget and T on
// the Problem are zero; experiments set them per run.
type Dataset struct {
	Spec    Spec
	Problem *diffusion.Problem
	// MetaC / MetaS are the generated meta-graph lists, retained so
	// experiments can rebuild the PIN with a subset (Fig. 13).
	MetaC []*kg.MetaGraph
	MetaS []*kg.MetaGraph
}

// Generate builds a dataset from the spec.
func Generate(spec Spec) (*Dataset, error) {
	if spec.Users < 8 || spec.Items < 4 {
		return nil, fmt.Errorf("dataset %q: too small (users=%d items=%d)", spec.Name, spec.Users, spec.Items)
	}
	if spec.Params.MaxSteps == 0 {
		spec.Params = diffusion.DefaultParams()
	}
	r := rng.New(spec.Seed ^ 0x1234567)

	// --- social network ---------------------------------------------------
	wm := graph.WeightModel{Mean: spec.AvgInfluence, Jitter: 0.6}
	g := graph.BarabasiAlbert(spec.Users, spec.AttachM, spec.Directed, wm, r.Split(1))

	// --- knowledge graph ---------------------------------------------------
	kgraph, metaC, metaS, itemCat := buildKG(spec, r.Split(2))

	model, err := pin.NewModel(kgraph, metaC, metaS, nil)
	if err != nil {
		return nil, fmt.Errorf("dataset %q: %w", spec.Name, err)
	}

	// --- importance ---------------------------------------------------------
	imp := make([]float64, spec.Items)
	if spec.UniformImportance {
		for i := range imp {
			imp[i] = r.Uniform(0, 2*spec.AvgImportance)
		}
	} else {
		// price-like lognormal, rescaled to the target mean
		total := 0.0
		for i := range imp {
			imp[i] = r.LogNormal(0, 0.8)
			total += imp[i]
		}
		f := spec.AvgImportance * float64(spec.Items) / total
		for i := range imp {
			imp[i] *= f
		}
	}

	// --- preferences: users have 1-2 interest categories --------------------
	nCat := spec.Categories
	if nCat < 1 {
		nCat = 1
	}
	basePref := diffusion.NewMatrix(spec.Users, spec.Items)
	for u := 0; u < spec.Users; u++ {
		c1 := r.Intn(nCat)
		c2 := r.Intn(nCat)
		row := basePref.Row(u)
		for x := 0; x < spec.Items; x++ {
			p := 0.6 * r.Beta24()
			if itemCat[x] == c1 || itemCat[x] == c2 {
				p += 0.15 + 0.25*r.Float64()
			}
			if p > 1 {
				p = 1
			}
			row[x] = p
		}
	}

	// --- costs: ∝ out-degree / preference, calibrated mean -------------------
	avgCost := spec.AvgCost
	if avgCost <= 0 {
		avgCost = 12
	}
	minCost := spec.MinCostFrac * avgCost
	if minCost < 1 {
		minCost = 1
	}
	cost := diffusion.NewMatrix(spec.Users, spec.Items)
	var costSum float64
	var costN int
	for u := 0; u < spec.Users; u++ {
		deg := float64(g.OutDegree(u))
		pref := basePref.Row(u)
		row := cost.Row(u)
		for x := 0; x < spec.Items; x++ {
			c := (1 + deg) / (0.2 + pref[x])
			row[x] = c
			costSum += c
			costN++
		}
	}
	scale := avgCost * float64(costN) / costSum
	for u := 0; u < spec.Users; u++ {
		row := cost.Row(u)
		for x := range row {
			row[x] *= scale
			if row[x] < minCost {
				row[x] = minCost
			}
		}
	}

	p := &diffusion.Problem{
		G: g, KG: kgraph, PIN: model,
		Importance: imp,
		BasePref:   basePref,
		Cost:       cost,
		Budget:     0, T: 1,
		Params: spec.Params,
	}
	return &Dataset{Spec: spec, Problem: p, MetaC: metaC, MetaS: metaS}, nil
}

// buildKG generates the heterogeneous information network and its
// meta-graphs. Items are organised in ecosystems (cross-category
// complement clusters, the "iPhone/AirPods/charger" pattern) and
// categories (substitute pools). Extended datasets add SHOP and CITY
// types so Yelp/Amazon report six node and edge types.
func buildKG(spec Spec, r *rng.Rand) (*kg.KG, []*kg.MetaGraph, []*kg.MetaGraph, []int) {
	b := kg.NewBuilder()
	tItem := b.NodeTypeID("ITEM")
	tFeature := b.NodeTypeID("FEATURE")
	tBrand := b.NodeTypeID("BRAND")
	tCategory := kg.NodeType(0)
	tShop, tCity, tTag := kg.NodeType(0), kg.NodeType(0), kg.NodeType(0)
	eSupports := b.EdgeTypeID("SUPPORTS")
	eMadeBy := b.EdgeTypeID("MADE_BY")
	ePairsWith := b.EdgeTypeID("PAIRS_WITH")
	var eInCategory, eSameFunc, eSoldBy kg.EdgeType
	if spec.Extended {
		tCategory = b.NodeTypeID("CATEGORY")
		tShop = b.NodeTypeID("SHOP")
		tCity = b.NodeTypeID("CITY")
		eInCategory = b.EdgeTypeID("IN_CATEGORY")
		eSameFunc = b.EdgeTypeID("SAME_FUNCTION")
		eSoldBy = b.EdgeTypeID("SOLD_BY")
	} else {
		// three node types (ITEM, FEATURE, BRAND) and three edge types
		tTag = tFeature
		_ = tTag
	}

	items := make([]int, spec.Items)
	for i := range items {
		items[i] = b.AddNode(tItem)
	}
	features := make([]int, max(spec.Features, 4))
	for i := range features {
		features[i] = b.AddNode(tFeature)
	}
	brands := make([]int, max(spec.Brands, 2))
	for i := range brands {
		brands[i] = b.AddNode(tBrand)
	}
	var categories, shops, cities []int
	nCat := max(spec.Categories, 2)
	if spec.Extended {
		categories = make([]int, nCat)
		for i := range categories {
			categories[i] = b.AddNode(tCategory)
		}
		shops = make([]int, max(spec.Items/10, 2))
		for i := range shops {
			shops[i] = b.AddNode(tShop)
		}
		cities = make([]int, 3)
		for i := range cities {
			cities[i] = b.AddNode(tCity)
		}
		for _, s := range shops {
			b.AddEdge(s, cities[r.Intn(len(cities))], eSoldBy)
		}
	}

	nEco := max(spec.Ecosystems, 2)
	itemCat := make([]int, spec.Items)
	itemEco := make([]int, spec.Items)
	for i := 0; i < spec.Items; i++ {
		cat := r.Intn(nCat)
		eco := r.Intn(nEco)
		itemCat[i] = cat
		itemEco[i] = eco
		// brand: ecosystems concentrate on a brand
		brand := brands[eco%len(brands)]
		if r.Float64() < 0.2 {
			brand = brands[r.Intn(len(brands))]
		}
		b.AddEdge(items[i], brand, eMadeBy)
		// features: a couple shared within the ecosystem + noise
		ecoFeat := features[eco%len(features)]
		b.AddEdge(items[i], ecoFeat, eSupports)
		for k := 0; k < 2; k++ {
			b.AddEdge(items[i], features[r.Intn(len(features))], eSupports)
		}
		if spec.Extended {
			b.AddEdge(items[i], categories[cat], eInCategory)
			b.AddEdge(items[i], shops[r.Intn(len(shops))], eSoldBy)
		}
	}
	// direct complement edges inside ecosystems, across categories
	for i := 0; i < spec.Items; i++ {
		for tries := 0; tries < 3; tries++ {
			j := r.Intn(spec.Items)
			if j != i && itemEco[j] == itemEco[i] && itemCat[j] != itemCat[i] {
				b.AddEdge(items[i], items[j], ePairsWith)
			}
		}
	}
	// direct substitute edges within categories (extended only has the
	// explicit SAME_FUNCTION type; the basic datasets express
	// substitutability through a category-like FEATURE hub below)
	var catHub []int
	if spec.Extended {
		for i := 0; i < spec.Items; i++ {
			for tries := 0; tries < 3; tries++ {
				j := r.Intn(spec.Items)
				if j != i && itemCat[j] == itemCat[i] && itemEco[j] != itemEco[i] {
					b.AddEdge(items[i], items[j], eSameFunc)
				}
			}
		}
	} else {
		// three-type datasets: one FEATURE hub per category; items of a
		// category support it, giving the substitutable meta-graph a
		// path shape over the same node types.
		catHub = make([]int, nCat)
		for c := range catHub {
			catHub[c] = b.AddNode(tFeature)
		}
		eCatOf := b.EdgeTypeID("CATEGORY_OF")
		_ = eCatOf
		for i := 0; i < spec.Items; i++ {
			b.AddEdge(items[i], catHub[itemCat[i]], eCatOf)
		}
	}

	g := b.Build()

	// --- meta-graphs --------------------------------------------------------
	var metaC, metaS []*kg.MetaGraph
	metaC = append(metaC,
		kg.PathMetaGraph("m1:common-feature", kg.Complementary, tItem, tFeature, eSupports, eSupports),
		kg.PathMetaGraph("m2:same-brand", kg.Complementary, tItem, tBrand, eMadeBy, eMadeBy),
		kg.DirectMetaGraph("m3:pairs-with", kg.Complementary, tItem, ePairsWith),
	)
	if spec.Extended {
		metaS = append(metaS,
			kg.PathMetaGraph("s1:same-category", kg.Substitutable, tItem, tCategory, eInCategory, eInCategory),
			kg.DirectMetaGraph("s2:same-function", kg.Substitutable, tItem, eSameFunc),
		)
	} else {
		eCatOf, _ := g.LookupEdgeType("CATEGORY_OF")
		metaS = append(metaS,
			kg.PathMetaGraph("s1:same-category-hub", kg.Substitutable, tItem, tFeature, eCatOf, eCatOf),
		)
	}
	return g, metaC, metaS, itemCat
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Clone returns a shallow copy of the problem with fresh Budget/T so
// experiments can vary them without mutating shared state.
func (d *Dataset) Clone(budget float64, T int) *diffusion.Problem {
	p := *d.Problem
	p.Budget = budget
	p.T = T
	return &p
}

// Stats summarises the dataset for Table II.
type Stats struct {
	Name          string
	NodeTypes     int
	Nodes         int
	Users         int
	Items         int
	EdgeTypes     int
	Edges         int
	Friendships   int
	Directed      bool
	AvgInfluence  float64
	AvgImportance float64
}

// Stats computes the Table II row of the dataset.
func (d *Dataset) Stats() Stats {
	p := d.Problem
	imp := 0.0
	for _, w := range p.Importance {
		imp += w
	}
	imp /= float64(len(p.Importance))
	friend := p.G.M()
	if !p.G.Directed() {
		friend /= 2
	}
	return Stats{
		Name:          d.Spec.Name,
		NodeTypes:     p.KG.NumNodeTypes(),
		Nodes:         p.KG.N() + p.G.N(),
		Users:         p.G.N(),
		Items:         p.KG.NumItems(),
		EdgeTypes:     p.KG.NumEdgeTypes(),
		Edges:         p.KG.M() + p.G.M(),
		Friendships:   friend,
		Directed:      p.G.Directed(),
		AvgInfluence:  math.Round(p.G.AvgInfluence()*1000) / 1000,
		AvgImportance: math.Round(imp*100) / 100,
	}
}

package dataset

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig, err := Yelp(0.2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Spec != orig.Spec {
		t.Fatalf("spec mismatch:\n%+v\n%+v", loaded.Spec, orig.Spec)
	}
	// regeneration is deterministic: identical graph and economics
	if loaded.Problem.G.M() != orig.Problem.G.M() {
		t.Fatal("graph differs after round-trip")
	}
	for u := 0; u < orig.Problem.NumUsers(); u++ {
		for x := 0; x < orig.Problem.NumItems(); x++ {
			if loaded.Problem.BasePrefOf(u, x) != orig.Problem.BasePrefOf(u, x) {
				t.Fatal("preferences differ after round-trip")
			}
		}
	}
	for i := range orig.Problem.Importance {
		if loaded.Problem.Importance[i] != orig.Problem.Importance[i] {
			t.Fatal("importance differs after round-trip")
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	orig, err := Gowalla(0.2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gowalla.imdpp")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Spec.Name != "Gowalla" || loaded.Problem.G.N() != orig.Problem.G.N() {
		t.Fatalf("loaded %s with %d users", loaded.Spec.Name, loaded.Problem.G.N())
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/path.imdpp"); err == nil {
		t.Fatal("missing file accepted")
	}
}

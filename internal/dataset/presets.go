package dataset

import "imdpp/internal/diffusion"

// Scale multiplies the preset sizes; 1.0 is the laptop default. The
// paper's corpora are 10^2–10^4 times larger (Table II); relative
// shapes are preserved under scaling, absolute σ values are not.
type Scale float64

func (s Scale) apply(n int) int {
	if s <= 0 {
		s = 1
	}
	v := int(float64(n) * float64(s))
	if v < 16 {
		v = 16
	}
	return v
}

// avgCost keeps the paper's budget sweeps meaningful across scales:
// seed costs inflate as the graph shrinks so a given budget buys a
// scale-proportional number of seeds instead of saturating a small
// network with dozens of cheap seeds.
func (s Scale) avgCost() float64 {
	if s <= 0 || s >= 1 {
		return 12
	}
	return 12 / float64(s)
}

// Douban builds the Douban-shaped dataset: three node/edge types,
// undirected friendships, the largest user base, avg influence
// strength the weakest of the four (paper: 0.011; we use 0.03 to keep
// near-critical cascades at 1/4000 of the original scale — recorded in
// DESIGN.md), avg item importance 2.1.
func Douban(s Scale) (*Dataset, error) {
	return Generate(Spec{
		Name: "Douban", Users: s.apply(1200), Items: s.apply(120),
		Directed: false, AttachM: 5, AvgInfluence: 0.03,
		Features: s.apply(40), Brands: 10, Categories: 8, Ecosystems: 12,
		AvgImportance: 2.1, AvgCost: s.avgCost(),
		Params: diffusion.DefaultParams(),
		Seed:   0xD0,
	})
}

// Gowalla builds the Gowalla-shaped dataset: three node/edge types,
// undirected, avg influence 0.092, random (uniform) importance
// averaging 0.5 since the original site is offline.
func Gowalla(s Scale) (*Dataset, error) {
	return Generate(Spec{
		Name: "Gowalla", Users: s.apply(700), Items: s.apply(100),
		Directed: false, AttachM: 5, AvgInfluence: 0.092,
		Features: s.apply(30), Brands: 8, Categories: 6, Ecosystems: 10,
		AvgImportance: 0.5, UniformImportance: true, AvgCost: s.avgCost(),
		Params: diffusion.DefaultParams(),
		Seed:   0x60,
	})
}

// Yelp builds the Yelp-shaped dataset: six node/edge types, undirected,
// the strongest ties (avg influence 0.121), importance 1.6.
func Yelp(s Scale) (*Dataset, error) {
	return Generate(Spec{
		Name: "Yelp", Users: s.apply(500), Items: s.apply(60),
		Directed: false, AttachM: 4, AvgInfluence: 0.121,
		Features: s.apply(24), Brands: 8, Categories: 6, Ecosystems: 8,
		Extended:      true,
		AvgImportance: 1.6, AvgCost: s.avgCost(),
		Params: diffusion.DefaultParams(),
		Seed:   0x7E,
	})
}

// Amazon builds the Amazon(-with-Pokec)-shaped dataset: six node/edge
// types, the only directed friendship graph, avg influence 0.050,
// importance 1.8.
func Amazon(s Scale) (*Dataset, error) {
	return Generate(Spec{
		Name: "Amazon", Users: s.apply(800), Items: s.apply(80),
		Directed: true, AttachM: 8, AvgInfluence: 0.05,
		Features: s.apply(32), Brands: 12, Categories: 8, Ecosystems: 12,
		Extended:      true,
		AvgImportance: 1.8, AvgCost: s.avgCost(),
		Params: diffusion.DefaultParams(),
		Seed:   0xA2,
	})
}

// AmazonSample builds the 100-user Amazon sample used for the
// comparison with OPT (Fig. 8).
func AmazonSample() (*Dataset, error) {
	return Generate(Spec{
		Name: "Amazon-100", Users: 100, Items: 16,
		Directed: true, AttachM: 4, AvgInfluence: 0.08,
		Features: 10, Brands: 4, Categories: 4, Ecosystems: 4,
		Extended:      true,
		AvgImportance: 1.8,
		// expensive seeds keep feasible groups small enough for the
		// brute-force OPT of Fig. 8 to be the true optimum
		AvgCost: 35, MinCostFrac: 0.6,
		Params: diffusion.DefaultParams(),
		Seed:   0xA100,
	})
}

// All builds the four large datasets at the given scale, in the
// paper's Table II column order.
func All(s Scale) ([]*Dataset, error) {
	var out []*Dataset
	for _, f := range []func(Scale) (*Dataset, error){Douban, Gowalla, Yelp, Amazon} {
		d, err := f(s)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

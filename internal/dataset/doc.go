// Package dataset builds the evaluation workloads. The paper evaluates
// on four real social networks with real KGs — Douban, Gowalla, Yelp
// and Amazon (supplemented with Pokec friendships) — plus five
// recruited classes for the course-promotion empirical study. Those
// corpora are proprietary crawls; per the substitution rule we generate
// synthetic datasets that preserve the *shape* reported in Table II and
// Table III: node/edge type counts, user:item ratios, friendship
// density and directedness, average initial influence strength, and
// average item importance, with heavy-tailed (Barabási–Albert) social
// degrees and ecosystem-structured KGs that exercise complementary and
// substitutable meta-graphs. Absolute sizes are scaled to laptop
// budgets; DESIGN.md §2 records the substitution.
package dataset

package dataset

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Save writes the dataset spec to w. Datasets are fully determined by
// their spec (generation is deterministic), so persisting the spec is
// both compact and future-proof; Load regenerates the dataset.
func (d *Dataset) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(d.Spec); err != nil {
		return fmt.Errorf("dataset: encode: %w", err)
	}
	return nil
}

// Load reads a spec written by Save and regenerates the dataset.
func Load(r io.Reader) (*Dataset, error) {
	dec := gob.NewDecoder(r)
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	return Generate(spec)
}

// SaveFile writes the dataset spec to path.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := d.Save(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset spec from path and regenerates the dataset.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}

package dataset

import (
	"fmt"

	"imdpp/internal/diffusion"
	"imdpp/internal/graph"
	"imdpp/internal/kg"
	"imdpp/internal/pin"
	"imdpp/internal/rng"
)

// ClassSpec matches Table III: the five recruited classes of the
// course-promotion empirical study (Sec. VI-E).
type ClassSpec struct {
	ID    string
	Users int
	Edges int
}

// ClassSpecs returns the exact Table III sizes.
func ClassSpecs() []ClassSpec {
	return []ClassSpec{
		{"A", 33, 293},
		{"B", 26, 420},
		{"C", 22, 387},
		{"D", 20, 227},
		{"E", 20, 308},
	}
}

// courseNames are the 30 elective courses of the study; the paper
// names several explicitly (AI, OOP, big data, SDCC, cloud computing,
// IoT, DL, NLP, python, C++).
var courseNames = []string{
	"AI", "OOP", "BigData", "SDCC", "CloudComputing", "IoT",
	"DeepLearning", "NLP", "Python", "Cpp", "Databases", "OS",
	"Networks", "Compilers", "Security", "CompVision", "Robotics",
	"HCI", "Graphics", "Algorithms", "DistributedSystems", "MobileDev",
	"WebDev", "GameDesign", "DataMining", "Bioinformatics",
	"QuantumComputing", "Cryptography", "EmbeddedSystems", "DevOps",
}

// BuildClass generates one class: a dense directed social graph of the
// Table III size over a shared 30-course knowledge graph built from
// syllabus-like keywords, prerequisite links and research fields
// (substituting the crawled Taiwan University syllabi).
func BuildClass(spec ClassSpec, seed uint64) (*Dataset, error) {
	n := spec.Users
	if n < 4 {
		return nil, fmt.Errorf("dataset: class %s too small", spec.ID)
	}
	r := rng.New(seed ^ 0xC1A55)

	// social graph: directed ER calibrated to the edge count
	p := float64(spec.Edges) / float64(n*(n-1))
	if p > 1 {
		p = 1
	}
	wm := graph.WeightModel{Mean: 0.25, Jitter: 0.6}
	g := graph.ErdosRenyi(n, p, true, wm, r.Split(1))

	// course KG
	b := kg.NewBuilder()
	tItem := b.NodeTypeID("ITEM")
	tKeyword := b.NodeTypeID("KEYWORD")
	tField := b.NodeTypeID("FIELD")
	eCovers := b.EdgeTypeID("COVERS")
	ePrereq := b.EdgeTypeID("PREREQ_OF")
	eInField := b.EdgeTypeID("IN_FIELD")

	nCourses := len(courseNames)
	courses := make([]int, nCourses)
	for i := range courses {
		courses[i] = b.AddNode(tItem)
	}
	nKw := 18
	keywords := make([]int, nKw)
	for i := range keywords {
		keywords[i] = b.AddNode(tKeyword)
	}
	nFields := 6
	fields := make([]int, nFields)
	for i := range fields {
		fields[i] = b.AddNode(tField)
	}
	kr := r.Split(2)
	courseField := make([]int, nCourses)
	for i := 0; i < nCourses; i++ {
		f := i % nFields
		courseField[i] = f
		b.AddEdge(courses[i], fields[f], eInField)
		// 2-3 keywords; courses in the same field share a core keyword
		b.AddEdge(courses[i], keywords[f%nKw], eCovers)
		for k := 0; k < 2; k++ {
			b.AddEdge(courses[i], keywords[kr.Intn(nKw)], eCovers)
		}
	}
	// prerequisite chains within fields (complementary sequences)
	for i := 0; i < nCourses; i++ {
		j := (i + nFields) % nCourses
		if courseField[i] == courseField[j] && i != j {
			b.AddEdge(courses[i], courses[j], ePrereq)
		}
	}
	kgraph := b.Build()

	metaC := []*kg.MetaGraph{
		kg.PathMetaGraph("c1:shared-keyword", kg.Complementary, tItem, tKeyword, eCovers, eCovers),
		kg.DirectMetaGraph("c2:prerequisite", kg.Complementary, tItem, ePrereq),
	}
	metaS := []*kg.MetaGraph{
		kg.PathMetaGraph("s1:same-field-slot", kg.Substitutable, tItem, tField, eInField, eInField),
	}
	model, err := pin.NewModel(kgraph, metaC, metaS, nil)
	if err != nil {
		return nil, err
	}

	imp := make([]float64, nCourses)
	for i := range imp {
		imp[i] = 1 // every course selection counts equally in Fig. 12
	}
	pr := r.Split(3)
	basePref := diffusion.NewMatrix(n, nCourses)
	for u := 0; u < n; u++ {
		f1 := pr.Intn(nFields)
		row := basePref.Row(u)
		for x := 0; x < nCourses; x++ {
			v := 0.5 * pr.Beta24()
			if courseField[x] == f1 {
				v += 0.2 + 0.3*pr.Float64()
			}
			if v > 1 {
				v = 1
			}
			row[x] = v
		}
	}
	// costs: out-degree over initial preference (Sec. VI-E, following [3])
	cost := diffusion.NewMatrix(n, nCourses)
	for u := 0; u < n; u++ {
		deg := float64(g.OutDegree(u))
		pref := basePref.Row(u)
		row := cost.Row(u)
		for x := 0; x < nCourses; x++ {
			c := (1 + deg) / (0.2 + pref[x]) * 0.5
			if c < 1 {
				c = 1
			}
			row[x] = c
		}
	}

	prob := &diffusion.Problem{
		G: g, KG: kgraph, PIN: model,
		Importance: imp, BasePref: basePref, Cost: cost,
		Budget: 0, T: 1,
		Params: diffusion.DefaultParams(),
	}
	spec2 := Spec{Name: "Class-" + spec.ID, Users: n, Items: nCourses, Directed: true}
	return &Dataset{Spec: spec2, Problem: prob, MetaC: metaC, MetaS: metaS}, nil
}

// CourseName returns the human-readable name of course x.
func CourseName(x int) string {
	if x >= 0 && x < len(courseNames) {
		return courseNames[x]
	}
	return fmt.Sprintf("Course-%d", x)
}

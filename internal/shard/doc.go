// Package shard scales σ/π estimation across worker processes — the
// distributed face of the batch engine (DESIGN.md §7).
//
// The Monte-Carlo (group × sample) grid of DESIGN.md §3 is
// partitionable by global sample index at zero accuracy cost: sample i
// of every candidate draws from the stream Split(i) of the master
// seed, so which process simulates a sample cannot change its outcome,
// and the coordinator can re-assemble per-sample outcomes from any
// partition of [0,M) and reduce them in global sample order with the
// single-process engine's own arithmetic. Sharded estimation is
// therefore bit-identical to local estimation — pinned by golden
// tests — which in turn makes shard dispatch idempotent: a failed or
// slow shard can be re-dispatched to any other worker (or computed
// locally) without a coordination protocol.
//
// The package provides:
//
//   - Plan: the contiguous sample-range planner.
//   - Worker: the HTTP server side (mounted by `imdppd -worker`) —
//     content-addressed problem upload (a problem ships once and is
//     referenced by its service.HashProblem key thereafter) and the
//     estimate RPC computing one shard's raw per-sample outcomes.
//   - Pool: the coordinator-side worker registry — health checks,
//     per-shard retry, failover re-dispatch and local fallback.
//   - Estimator: a core.Estimator backend that fans batches out over
//     the pool, so Solve/SolveAdaptiveCtx/TDSI and the serving layer
//     run unchanged over local or sharded estimation.
package shard

package shard

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"imdpp/internal/diffusion"
	"imdpp/internal/obs"
)

// newTracedFleet boots n shard workers that each carry their own
// tracer, so traced estimate requests produce worker spans.
func newTracedFleet(t testing.TB, n int) (*Pool, []*Worker, []*obs.Tracer) {
	t.Helper()
	urls := make([]string, n)
	workers := make([]*Worker, n)
	tracers := make([]*obs.Tracer, n)
	for i := 0; i < n; i++ {
		tracers[i] = obs.NewTracer()
		w := NewWorker(WorkerConfig{Workers: 2, Tracer: tracers[i]})
		mux := http.NewServeMux()
		w.Mount(mux)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
		workers[i] = w
	}
	pool := NewPool(urls, nil)
	t.Cleanup(pool.Close)
	return pool, workers, tracers
}

// spanNames collects the span-name set of a trace.
func spanNames(tr obs.Trace) map[string]int {
	names := make(map[string]int)
	for _, s := range tr.Spans {
		names[s.Name]++
	}
	return names
}

// TestTracePropagation is the tentpole acceptance test: a sharded
// batch under a live trace yields ONE joined trace holding the
// coordinator's batch and RPC spans plus the worker-side spans shipped
// back over the wire — all sharing the coordinator's trace id.
func TestTracePropagation(t *testing.T) {
	p := sampleProblem(t, 60, 2)
	const m, seed = 8, uint64(7)
	pool, _, workerTracers := newTracedFleet(t, 2)
	groups := groupsFor(p)

	want := diffusion.NewEstimator(p, m, seed).RunBatch(groups, nil)

	tracer := obs.NewTracer()
	root := tracer.Start("solve_test")
	ctx := obs.ContextWithSpan(context.Background(), root)
	est := NewEstimator(pool, p, m, seed, 2)
	est.Bind(ctx)
	got := est.RunBatch(groups, nil)
	root.End()

	// tracing left the samples bit-identical
	requireSameEstimates(t, "traced shard batch", want, got)

	traces := tracer.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("coordinator traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	names := spanNames(tr)
	for _, wantName := range []string{"solve_test", "shard_batch", "shard_rpc", "worker_estimate"} {
		if names[wantName] == 0 {
			t.Fatalf("joined trace missing %q spans: %v", wantName, names)
		}
	}
	for _, s := range tr.Spans {
		if s.TraceID != tr.TraceID {
			t.Fatalf("span %q carries trace %v, want %v", s.Name, s.TraceID, tr.TraceID)
		}
	}
	// at least one worker recorded the remote trace under the SAME id
	joined := false
	for _, wt := range workerTracers {
		for _, wtr := range wt.Snapshot() {
			if wtr.TraceID == tr.TraceID {
				joined = true
			}
		}
	}
	if !joined {
		t.Fatal("no worker tracer recorded the coordinator's trace id")
	}
}

// rejectTracedFrames emulates an old-binary worker build: its decoder
// predates flagTraced, so a traced frame decodes with trailing payload
// bytes and is rejected 400 — here short-circuited by the flags bit.
func rejectTracedFrames(next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if isBinaryContentType(r.Header.Get("Content-Type")) {
			body, err := readRequestBody(r)
			if err != nil {
				http.Error(rw, err.Error(), http.StatusBadRequest)
				return
			}
			data := append([]byte(nil), body.Bytes()...)
			putBuf(body)
			if len(data) >= frameHeaderLen && data[5]&flagTraced != 0 {
				writeShardError(rw, http.StatusBadRequest, CodeBadRequest,
					errTrailing{})
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(data))
			r.ContentLength = int64(len(data))
		}
		next.ServeHTTP(rw, r)
	})
}

type errTrailing struct{}

func (errTrailing) Error() string { return "wirebin: 16 trailing bytes" }

// TestTraceMixedVersionFallback pins graceful degradation: an
// old-binary worker that rejects flagTraced frames keeps serving the
// fleet bit-identically — the pool strips trace propagation for that
// worker and retries on the binary codec, rather than demoting the
// codec or failing the shard. No trace from the worker, no error.
func TestTraceMixedVersionFallback(t *testing.T) {
	p := sampleProblem(t, 60, 2)
	const m, seed = 8, uint64(7)

	w := NewWorker(WorkerConfig{Workers: 2})
	mux := http.NewServeMux()
	w.Mount(mux)
	srv := httptest.NewServer(rejectTracedFrames(mux))
	t.Cleanup(srv.Close)
	pool := NewPool([]string{srv.URL}, nil)
	t.Cleanup(pool.Close)

	groups := groupsFor(p)
	want := diffusion.NewEstimator(p, m, seed).RunBatch(groups, nil)

	tracer := obs.NewTracer()
	root := tracer.Start("solve_test")
	ctx := obs.ContextWithSpan(context.Background(), root)
	est := NewEstimator(pool, p, m, seed, 2)
	est.Bind(ctx)
	got := est.RunBatch(groups, nil)
	root.End()

	requireSameEstimates(t, "mixed-version batch", want, got)

	st := pool.Snapshot()
	if len(st.Remotes) != 1 {
		t.Fatalf("remotes = %d", len(st.Remotes))
	}
	if st.Remotes[0].Shards == 0 {
		t.Fatalf("old-binary worker served no shards: %+v", st.Remotes[0])
	}
	if mode := pool.remotes[0].binMode.Load(); mode == codecJSONOnly {
		t.Fatalf("trace rejection demoted the codec to JSON (binMode=%d)", mode)
	}
	if got := pool.remotes[0].traceMode.Load(); got != traceUnsupported {
		t.Fatalf("traceMode = %d, want traceUnsupported", got)
	}
	// the coordinator trace still exists, just without worker spans
	traces := tracer.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("coordinator traces = %d, want 1", len(traces))
	}
	names := spanNames(traces[0])
	if names["shard_rpc"] == 0 || names["shard_batch"] == 0 {
		t.Fatalf("coordinator spans missing: %v", names)
	}
	if names["worker_estimate"] != 0 {
		t.Fatalf("old worker cannot have produced spans: %v", names)
	}
	// RPC latency histogram observed the successful retries
	if lat := pool.RPCLatency(); lat.Count == 0 {
		t.Fatal("rpc latency histogram empty after successful shards")
	}
}

// TestEstimateRequestTraceBinaryRoundTrip pins the flagTraced frame:
// trace ids survive the binary codec, and untraced requests produce
// byte-identical frames to a pre-tracing encoder (no flag, no fields).
func TestEstimateRequestTraceBinaryRoundTrip(t *testing.T) {
	req := EstimateRequest{
		Problem: "0123456789abcdef0123456789abcdef",
		Seed:    7,
		Lo:      2,
		Hi:      10,
		Groups:  [][]diffusion.Seed{{{User: 1, Item: 0, T: 1}}},
		TraceID: 0xabc123,
		SpanID:  0xdef456,
	}
	b, err := req.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if b[5]&flagTraced == 0 {
		t.Fatal("traced request frame missing flagTraced")
	}
	back, err := DecodeEstimateRequestBinary(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.TraceID != req.TraceID || back.SpanID != req.SpanID {
		t.Fatalf("trace ids lost: %v/%v", back.TraceID, back.SpanID)
	}

	req.TraceID, req.SpanID = 0, 0
	plain, err := req.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain[5]&flagTraced != 0 {
		t.Fatal("untraced request frame carries flagTraced")
	}
	back, err = DecodeEstimateRequestBinary(plain)
	if err != nil {
		t.Fatal(err)
	}
	if back.TraceID != 0 || back.SpanID != 0 {
		t.Fatalf("untraced decode produced ids: %v/%v", back.TraceID, back.SpanID)
	}
}

// TestEstimateResponseSpanBinaryRoundTrip pins the span-record wire
// encoding on the response frame.
func TestEstimateResponseSpanBinaryRoundTrip(t *testing.T) {
	resp := EstimateResponse{
		Samples: [][]diffusion.SampleResult{{{Items: []int32{0}, Counts: []float64{1}}}},
		Spans: []obs.SpanRec{
			{TraceID: 5, SpanID: 6, Parent: 7, Name: "worker_estimate",
				Start: 123456789, DurNS: 42,
				Attrs: map[string]string{"groups": "4", "lo": "0"}},
			{TraceID: 5, SpanID: 8, Parent: 6, Name: "sample_batch", Start: 1, DurNS: 2},
		},
	}
	b := resp.AppendBinary(nil)
	if b[5]&flagTraced == 0 {
		t.Fatal("span-carrying response frame missing flagTraced")
	}
	back, err := DecodeEstimateResponseBinary(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(back.Spans))
	}
	for i := range resp.Spans {
		w, g := resp.Spans[i], back.Spans[i]
		if w.TraceID != g.TraceID || w.SpanID != g.SpanID || w.Parent != g.Parent ||
			w.Name != g.Name || w.Start != g.Start || w.DurNS != g.DurNS {
			t.Fatalf("span %d differs:\nwant %+v\ngot  %+v", i, w, g)
		}
		if len(w.Attrs) != len(g.Attrs) {
			t.Fatalf("span %d attrs differ: %v vs %v", i, w.Attrs, g.Attrs)
		}
		for k, v := range w.Attrs {
			if g.Attrs[k] != v {
				t.Fatalf("span %d attr %q: %q vs %q", i, k, v, g.Attrs[k])
			}
		}
	}

	// a span-free response stays a pre-tracing frame byte-for-byte
	resp.Spans = nil
	plain := resp.AppendBinary(nil)
	if plain[5]&flagTraced != 0 {
		t.Fatal("span-free response carries flagTraced")
	}
	back, err = DecodeEstimateResponseBinary(plain)
	if err != nil || back.Spans != nil {
		t.Fatalf("span-free decode: spans %v err %v", back.Spans, err)
	}
}

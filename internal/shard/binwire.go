package shard

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"imdpp/internal/diffusion"
	"imdpp/internal/graph"
	"imdpp/internal/obs"
	"imdpp/internal/pin"
	"imdpp/internal/service"
	"imdpp/internal/wirebin"
)

// Binary wire format of the shard RPC (DESIGN.md §8). Every binary
// request/response body is one frame:
//
//	magic   [3]byte  "IMB"
//	version byte     1
//	kind    byte     frameProblem | frameEstimateReq | frameEstimateResp
//	flags   byte     bit 0: payload is DEFLATE-compressed
//	length  u32 LE   payload byte count (after compression)
//	payload [length]byte
//
// The payload is a wirebin stream (little-endian, length-prefixed
// slices, tagged compact floats — see internal/wirebin). Frames are
// self-describing enough to reject version or kind drift with a typed
// error before any payload decoding; semantic compatibility between
// coordinator and worker builds is still gated by the content hash,
// exactly as on the JSON path — a worker whose decoder disagrees with
// the coordinator's encoder lands on a different hash and the upload
// fails loudly with hash_mismatch.
//
// Negotiation is plain HTTP: a binary-capable coordinator sends
// Content-Type: application/x-imdpp-shard and advertises the same
// type in Accept; a binary-capable worker decodes by Content-Type and
// answers estimate responses binary iff Accept asks. JSON remains the
// fallback in both directions, so mixed-version fleets degrade to the
// PR 4 wire format instead of failing (README "Deploying a worker
// fleet").

// ContentTypeBinary negotiates the binary shard codec; JSON bodies
// keep application/json.
const ContentTypeBinary = "application/x-imdpp-shard"

// Frame kind bytes.
const (
	frameProblem      = 1
	frameEstimateReq  = 2
	frameEstimateResp = 3
)

const (
	frameVersion = 1
	flagDeflate  = 1 << 0
	// flagTraced marks a frame whose payload ends with trace-context
	// fields (request: trace + parent span id; response: worker span
	// records). A pre-tracing decoder ignores the unknown flag, decodes
	// the base payload and then fails r.Done() on the trailing bytes
	// with a 400 — which is exactly the negotiation signal the pool's
	// trace demotion listens for (DESIGN.md §11), mirroring the PR 5
	// codec fallback.
	flagTraced = 1 << 1
	// compressMin is the payload size below which DEFLATE is skipped:
	// tiny frames (estimate requests, acks) gain nothing and would pay
	// the flate setup latency on every RPC. Mid-size sample grids —
	// a few hundred bytes per shard on small problems — still carry
	// enough float-run redundancy to be worth it, so the bar is low.
	compressMin = 256
	// maxFramePayload bounds a declared payload (and its decompressed
	// form) so a hostile length field cannot provoke an absurd
	// allocation. 1 GiB is orders of magnitude above any real grid.
	maxFramePayload = 1 << 30
)

var frameMagic = [3]byte{'I', 'M', 'B'}

var flateWriters = sync.Pool{New: func() any {
	// BestSpeed: the wire win over JSON is already structural; flate
	// exists to strip the residual entropy of float runs, and the hot
	// path cannot afford higher levels
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

// appendFrame wraps payload (b[start:]) in place: the caller appends
// the frame header via beginFrame, then the payload, then calls
// finishFrame to patch the length and optionally compress.
func beginFrame(b []byte, kind byte) []byte {
	b = append(b, frameMagic[0], frameMagic[1], frameMagic[2], frameVersion, kind, 0)
	b = wirebin.AppendU32(b, 0) // length, patched by finishFrame
	return b
}

const frameHeaderLen = 10

// finishFrame completes the frame begun at offset start in b: when the
// payload crosses compressMin it is DEFLATE-compressed in place (the
// flags bit records it), and the length word is patched either way.
func finishFrame(b []byte, start int) []byte {
	payload := b[start+frameHeaderLen:]
	if len(payload) >= compressMin {
		var buf bytes.Buffer
		buf.Grow(len(payload) / 2)
		fw := flateWriters.Get().(*flate.Writer)
		fw.Reset(&buf)
		_, werr := fw.Write(payload)
		cerr := fw.Close()
		flateWriters.Put(fw)
		if werr == nil && cerr == nil && buf.Len() < len(payload) {
			b = append(b[:start+frameHeaderLen], buf.Bytes()...)
			b[start+5] |= flagDeflate
		}
	}
	n := len(b) - start - frameHeaderLen
	b[start+6] = byte(n)
	b[start+7] = byte(n >> 8)
	b[start+8] = byte(n >> 16)
	b[start+9] = byte(n >> 24)
	return b
}

// openFrame validates a frame's header and returns its decoded (and,
// when flagged, decompressed) payload.
func openFrame(data []byte, wantKind byte) ([]byte, error) {
	payload, _, err := openFrameFlags(data, wantKind)
	return payload, err
}

// openFrameFlags is openFrame plus the frame's flags byte, for
// decoders whose payload shape depends on a flag (flagTraced).
func openFrameFlags(data []byte, wantKind byte) ([]byte, byte, error) {
	if len(data) < frameHeaderLen {
		return nil, 0, fmt.Errorf("shard: binary frame truncated at %d bytes", len(data))
	}
	if data[0] != frameMagic[0] || data[1] != frameMagic[1] || data[2] != frameMagic[2] {
		return nil, 0, fmt.Errorf("shard: bad frame magic %q", data[:3])
	}
	if data[3] != frameVersion {
		return nil, 0, fmt.Errorf("shard: unsupported frame version %d (want %d)", data[3], frameVersion)
	}
	if data[4] != wantKind {
		return nil, 0, fmt.Errorf("shard: frame kind %d, want %d", data[4], wantKind)
	}
	flags := data[5]
	n := int(uint32(data[6]) | uint32(data[7])<<8 | uint32(data[8])<<16 | uint32(data[9])<<24)
	if n > maxFramePayload {
		return nil, 0, fmt.Errorf("shard: frame payload %d exceeds %d-byte bound", n, maxFramePayload)
	}
	if len(data) != frameHeaderLen+n {
		return nil, 0, fmt.Errorf("shard: frame length %d != header-declared %d", len(data)-frameHeaderLen, n)
	}
	payload := data[frameHeaderLen:]
	if flags&flagDeflate != 0 {
		fr := flate.NewReader(bytes.NewReader(payload))
		out, err := io.ReadAll(io.LimitReader(fr, maxFramePayload+1))
		if err != nil {
			return nil, 0, fmt.Errorf("shard: inflate frame: %w", err)
		}
		if len(out) > maxFramePayload {
			return nil, 0, fmt.Errorf("shard: inflated payload exceeds %d-byte bound", maxFramePayload)
		}
		payload = out
	}
	return payload, flags, nil
}

// AppendBinary appends the problem upload's binary frame to b.
func (u ProblemUpload) AppendBinary(b []byte) []byte {
	start := len(b)
	b = beginFrame(b, frameProblem)
	b = wirebin.AppendUvarint(b, uint64(u.Users))
	b = wirebin.AppendUvarint(b, uint64(u.Items))
	b = u.Graph.AppendBinary(b)
	b = wirebin.AppendUvarint(b, uint64(u.NumC))
	b = wirebin.AppendFloats(b, u.InitWeights)
	b = pin.AppendRowsBinary(b, u.Rows)
	b = wirebin.AppendFloats(b, u.Importance)
	b = wirebin.AppendFloats(b, u.BasePref)
	b = wirebin.AppendFloats(b, u.Cost)
	b = wirebin.AppendFloat(b, u.Budget)
	b = wirebin.AppendUvarint(b, uint64(u.T))
	b = wirebin.AppendFloat(b, u.Params.Eta)
	b = wirebin.AppendFloat(b, u.Params.Lambda)
	b = wirebin.AppendFloat(b, u.Params.Gamma)
	b = wirebin.AppendFloat(b, u.Params.Chi)
	b = wirebin.AppendUvarint(b, uint64(u.Params.MaxSteps))
	b = wirebin.AppendU8(b, byte(u.Params.AIS))
	b = wirebin.AppendBool(b, u.Params.Static)
	return finishFrame(b, start)
}

// DecodeProblemUploadBinary reads one binary problem-upload frame. The
// result is as untrusted as a JSON-decoded one: DecodeProblem performs
// the same structural validation either way.
func DecodeProblemUploadBinary(data []byte) (ProblemUpload, error) {
	var u ProblemUpload
	payload, err := openFrame(data, frameProblem)
	if err != nil {
		return u, err
	}
	r := wirebin.NewReader(payload)
	users, items := r.Uvarint(), r.Uvarint()
	if users > math.MaxInt32 || items > math.MaxInt32 {
		return u, fmt.Errorf("shard: binary upload users/items %d/%d out of range", users, items)
	}
	u.Users, u.Items = int(users), int(items)
	if u.Graph, err = graph.DecodeBinaryExport(r); err != nil {
		return u, err
	}
	numC := r.Uvarint()
	if numC > math.MaxInt32 {
		return u, fmt.Errorf("shard: binary upload numC %d out of range", numC)
	}
	u.NumC = int(numC)
	u.InitWeights = r.Floats()
	if u.Rows, err = pin.DecodeRowsBinary(r); err != nil {
		return u, err
	}
	u.Importance = r.Floats()
	u.BasePref = r.Floats()
	u.Cost = r.Floats()
	u.Budget = r.Float()
	tt := r.Uvarint()
	if tt > math.MaxInt32 {
		return u, fmt.Errorf("shard: binary upload T %d out of range", tt)
	}
	u.T = int(tt)
	u.Params.Eta = r.Float()
	u.Params.Lambda = r.Float()
	u.Params.Gamma = r.Float()
	u.Params.Chi = r.Float()
	steps := r.Uvarint()
	if steps > math.MaxInt32 {
		return u, fmt.Errorf("shard: binary upload max_steps %d out of range", steps)
	}
	u.Params.MaxSteps = int(steps)
	u.Params.AIS = diffusion.AISModel(r.U8())
	u.Params.Static = r.Bool()
	if err := r.Done(); err != nil {
		return u, fmt.Errorf("shard: binary upload: %w", err)
	}
	return u, nil
}

// appendSeedGroups encodes seed groups; seeds are small non-negative
// triples in every valid request, but the codec passes any int through
// zig-zag varints so the worker-side range validation sees exactly
// what was sent.
func appendSeedGroups(b []byte, groups [][]diffusion.Seed) []byte {
	b = wirebin.AppendUvarint(b, uint64(len(groups)))
	for _, g := range groups {
		b = wirebin.AppendUvarint(b, uint64(len(g)))
		for _, s := range g {
			b = wirebin.AppendVarint(b, int64(s.User))
			b = wirebin.AppendVarint(b, int64(s.Item))
			b = wirebin.AppendVarint(b, int64(s.T))
		}
	}
	return b
}

func decodeSeedGroups(r *wirebin.Reader) ([][]diffusion.Seed, error) {
	k := r.Count(1)
	if r.Err() != nil {
		return nil, r.Err()
	}
	groups := make([][]diffusion.Seed, k)
	for g := range groups {
		n := r.Count(3)
		if r.Err() != nil {
			return nil, r.Err()
		}
		seeds := make([]diffusion.Seed, n)
		for i := range seeds {
			seeds[i].User = int(r.Varint())
			seeds[i].Item = int(r.Varint())
			seeds[i].T = int(r.Varint())
		}
		groups[g] = seeds
	}
	return groups, r.Err()
}

// appendOptInt32s encodes a possibly-nil id list: absence and an empty
// non-nil list stay distinguishable, matching the JSON contract for
// masks (nil = all users, empty = all-false).
func appendOptInt32s(b []byte, vs []int32) []byte {
	if vs == nil {
		return wirebin.AppendBool(b, false)
	}
	b = wirebin.AppendBool(b, true)
	return wirebin.AppendAscInt32s(b, vs)
}

func decodeOptInt32s(r *wirebin.Reader) []int32 {
	if !r.Bool() {
		return nil
	}
	vs := r.AscInt32s()
	if vs == nil && r.Err() == nil {
		vs = []int32{} // present-but-empty survives the round trip
	}
	return vs
}

// AppendBinary appends the estimate request's binary frame to b.
func (req *EstimateRequest) AppendBinary(b []byte) ([]byte, error) {
	key, err := service.ParseKey(req.Problem)
	if err != nil {
		return nil, fmt.Errorf("shard: encode estimate request: %w", err)
	}
	start := len(b)
	b = beginFrame(b, frameEstimateReq)
	b = wirebin.AppendU64(b, key.Hi)
	b = wirebin.AppendU64(b, key.Lo)
	b = wirebin.AppendU64(b, req.Seed)
	b = wirebin.AppendVarint(b, int64(req.Lo))
	b = wirebin.AppendVarint(b, int64(req.Hi))
	b = wirebin.AppendBool(b, req.WithPi)
	b = appendSeedGroups(b, req.Groups)
	b = appendOptInt32s(b, req.Market)
	if req.PerGroupMasks == nil {
		b = wirebin.AppendBool(b, false)
	} else {
		b = wirebin.AppendBool(b, true)
		b = wirebin.AppendUvarint(b, uint64(len(req.PerGroupMasks)))
		for _, mask := range req.PerGroupMasks {
			b = appendOptInt32s(b, mask)
		}
	}
	if req.TraceID != 0 {
		b = wirebin.AppendU64(b, uint64(req.TraceID))
		b = wirebin.AppendU64(b, uint64(req.SpanID))
	}
	b = finishFrame(b, start)
	if req.TraceID != 0 {
		// flagged after finishFrame so the bit is never clobbered by the
		// flagDeflate patch (compression covers the trace fields too)
		b[start+5] |= flagTraced
	}
	return b, nil
}

// DecodeEstimateRequestBinary reads one binary estimate-request frame.
func DecodeEstimateRequestBinary(data []byte) (EstimateRequest, error) {
	var req EstimateRequest
	payload, flags, err := openFrameFlags(data, frameEstimateReq)
	if err != nil {
		return req, err
	}
	r := wirebin.NewReader(payload)
	key := service.Key{Hi: r.U64(), Lo: r.U64()}
	req.Problem = key.String()
	req.Seed = r.U64()
	req.Lo = int(r.Varint())
	req.Hi = int(r.Varint())
	req.WithPi = r.Bool()
	if req.Groups, err = decodeSeedGroups(r); err != nil {
		return req, fmt.Errorf("shard: binary estimate request: %w", err)
	}
	req.Market = decodeOptInt32s(r)
	if r.Bool() {
		n := r.Count(1)
		if r.Err() != nil {
			return req, fmt.Errorf("shard: binary estimate request: %w", r.Err())
		}
		req.PerGroupMasks = make([][]int32, n)
		for i := range req.PerGroupMasks {
			req.PerGroupMasks[i] = decodeOptInt32s(r)
		}
	}
	if flags&flagTraced != 0 {
		req.TraceID = obs.ID(r.U64())
		req.SpanID = obs.ID(r.U64())
	}
	if err := r.Done(); err != nil {
		return req, fmt.Errorf("shard: binary estimate request: %w", err)
	}
	return req, nil
}

// AppendBinary appends the estimate response's binary frame — the hot
// path, one frame per computed shard — to b.
func (resp *EstimateResponse) AppendBinary(b []byte) []byte {
	start := len(b)
	b = beginFrame(b, frameEstimateResp)
	b = diffusion.AppendSampleGrid(b, resp.Samples)
	if len(resp.Spans) > 0 {
		b = appendSpanRecs(b, resp.Spans)
	}
	b = finishFrame(b, start)
	if len(resp.Spans) > 0 {
		b[start+5] |= flagTraced
	}
	return b
}

// appendSpanRecs encodes worker span records. Attr keys are sorted so
// equal records produce equal bytes — the canonical-encoding rule the
// rest of the codec follows.
func appendSpanRecs(b []byte, spans []obs.SpanRec) []byte {
	b = wirebin.AppendUvarint(b, uint64(len(spans)))
	for _, s := range spans {
		b = wirebin.AppendU64(b, uint64(s.TraceID))
		b = wirebin.AppendU64(b, uint64(s.SpanID))
		b = wirebin.AppendU64(b, uint64(s.Parent))
		b = wirebin.AppendString(b, s.Name)
		b = wirebin.AppendVarint(b, s.Start)
		b = wirebin.AppendVarint(b, s.DurNS)
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = wirebin.AppendUvarint(b, uint64(len(keys)))
		for _, k := range keys {
			b = wirebin.AppendString(b, k)
			b = wirebin.AppendString(b, s.Attrs[k])
		}
	}
	return b
}

func decodeSpanRecs(r *wirebin.Reader) []obs.SpanRec {
	// 3 u64 ids + name len + start + dur + attr count ≥ 28 bytes each
	n := r.Count(28)
	if r.Err() != nil || n == 0 {
		return nil
	}
	spans := make([]obs.SpanRec, n)
	for i := range spans {
		spans[i].TraceID = obs.ID(r.U64())
		spans[i].SpanID = obs.ID(r.U64())
		spans[i].Parent = obs.ID(r.U64())
		spans[i].Name = r.String()
		spans[i].Start = r.Varint()
		spans[i].DurNS = r.Varint()
		if na := r.Count(2); na > 0 {
			attrs := make(map[string]string, na)
			for j := 0; j < na; j++ {
				k := r.String()
				attrs[k] = r.String()
			}
			spans[i].Attrs = attrs
		}
	}
	return spans
}

// DecodeEstimateResponseBinary reads one binary estimate-response
// frame. The coordinator's validateSamples still runs on the result,
// exactly as on the JSON path.
func DecodeEstimateResponseBinary(data []byte) (EstimateResponse, error) {
	var resp EstimateResponse
	payload, flags, err := openFrameFlags(data, frameEstimateResp)
	if err != nil {
		return resp, err
	}
	r := wirebin.NewReader(payload)
	if resp.Samples, err = diffusion.DecodeSampleGrid(r); err != nil {
		return resp, err
	}
	if flags&flagTraced != 0 {
		resp.Spans = decodeSpanRecs(r)
	}
	if err := r.Done(); err != nil {
		return resp, fmt.Errorf("shard: binary estimate response: %w", err)
	}
	return resp, nil
}

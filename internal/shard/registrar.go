package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registrar is the worker side of the lifecycle protocol (DESIGN.md
// §13): it registers the worker with the coordinator (retrying on a
// jittered exponential backoff until the coordinator exists), then
// heartbeats at the cadence the coordinator dictated. A heartbeat
// answered with unknown_worker — the signature of a restarted
// coordinator — triggers immediate re-registration, so a bounced
// coordinator re-learns its fleet within one beat without operator
// action.
type Registrar struct {
	coordinator string // coordinator base URL
	self        string // this worker's advertised base URL
	caps        WorkerCaps
	client      *http.Client
	logger      *slog.Logger

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	registered atomic.Bool
	beats      atomic.Uint64
}

// RegistrarConfig configures a Registrar. Coordinator and SelfURL are
// required; zero Caps means DefaultWorkerCaps, nil Client a default
// with a 10-second timeout, nil Logger discard.
type RegistrarConfig struct {
	Coordinator string
	SelfURL     string
	Caps        WorkerCaps
	Client      *http.Client
	Logger      *slog.Logger
}

// NewRegistrar validates cfg and builds a Registrar; call Start to
// begin the register/heartbeat loop.
func NewRegistrar(cfg RegistrarConfig) (*Registrar, error) {
	coord, err := normalizeWorkerURL(cfg.Coordinator)
	if err != nil {
		return nil, fmt.Errorf("shard: registrar coordinator: %w", err)
	}
	self, err := normalizeWorkerURL(cfg.SelfURL)
	if err != nil {
		return nil, fmt.Errorf("shard: registrar self url: %w", err)
	}
	if cfg.Caps == (WorkerCaps{}) {
		cfg.Caps = DefaultWorkerCaps()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	return &Registrar{
		coordinator: coord,
		self:        self,
		caps:        cfg.Caps,
		client:      cfg.Client,
		logger:      cfg.Logger,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}, nil
}

// Start launches the register/heartbeat loop; Stop ends it.
func (g *Registrar) Start() { go g.loop() }

// Stop ends the loop and waits for it to exit. It does not deregister
// — a drain calls Deregister explicitly; a crash relies on the
// coordinator's heartbeat timeout.
func (g *Registrar) Stop() {
	g.stopOnce.Do(func() { close(g.stop) })
	<-g.done
}

// Registered reports whether the last register/heartbeat round-trip
// succeeded.
func (g *Registrar) Registered() bool { return g.registered.Load() }

// Beats returns the number of heartbeats acknowledged.
func (g *Registrar) Beats() uint64 { return g.beats.Load() }

// Deregister tells the coordinator this worker is leaving — the tail
// of a graceful drain.
func (g *Registrar) Deregister(ctx context.Context) error {
	g.registered.Store(false)
	return g.postJSON(ctx, g.coordinator+PathDeregister, DeregisterRequest{URL: g.self}, nil)
}

// registerBackoff bounds the register retry schedule: a worker booted
// before its coordinator keeps trying on a jittered exponential
// backoff so a rack of workers never stampedes a starting coordinator.
const (
	registerBackoffBase = 250 * time.Millisecond
	registerBackoffCap  = 8 * time.Second
)

func (g *Registrar) loop() {
	defer close(g.done)
	beat := 2 * time.Second // overwritten by the coordinator's answer
	fails := 0
	for {
		if !g.registered.Load() {
			d, err := g.register()
			if err != nil {
				delay := registerBackoffBase << min(fails, 10)
				if delay > registerBackoffCap {
					delay = registerBackoffCap
				}
				fails++
				g.logger.Warn("shard register failed", "coordinator", g.coordinator, "err", err)
				if !g.sleep(jitterHalf(delay)) {
					return
				}
				continue
			}
			fails = 0
			if d > 0 {
				beat = d
			}
			g.registered.Store(true)
			g.logger.Info("shard worker registered", "coordinator", g.coordinator, "heartbeat", beat)
		}
		if !g.sleep(beat) {
			return
		}
		if err := g.heartbeat(); err != nil {
			var se *shardError
			if errors.As(err, &se) && se.code == CodeUnknownWorker {
				// restarted coordinator: re-register right away
				g.registered.Store(false)
				continue
			}
			g.logger.Warn("shard heartbeat failed", "coordinator", g.coordinator, "err", err)
			continue // transient: keep beating, the coordinator probes us meanwhile
		}
		g.beats.Add(1)
	}
}

// sleep waits d or until Stop; it reports whether the loop continues.
func (g *Registrar) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-g.stop:
		return false
	case <-t.C:
		return true
	}
}

func (g *Registrar) register() (time.Duration, error) {
	ctx, cancel := g.callCtx()
	defer cancel()
	var resp RegisterResponse
	err := g.postJSON(ctx, g.coordinator+PathRegister, RegisterRequest{URL: g.self, Caps: g.caps}, &resp)
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, errors.New("shard: coordinator rejected registration")
	}
	return time.Duration(resp.HeartbeatMillis) * time.Millisecond, nil
}

func (g *Registrar) heartbeat() error {
	ctx, cancel := g.callCtx()
	defer cancel()
	return g.postJSON(ctx, g.coordinator+PathHeartbeat, HeartbeatRequest{URL: g.self}, nil)
}

// callCtx bounds one lifecycle RPC and aborts it on Stop, so a hung
// coordinator never wedges the loop (or a drain) past the timeout.
func (g *Registrar) callCtx() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	go func() {
		select {
		case <-g.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}

// readAll64K drains a small lifecycle response body, bounded so a
// misbehaving peer cannot balloon the worker.
func readAll64K(r io.Reader) ([]byte, error) {
	return io.ReadAll(io.LimitReader(r, 1<<16))
}

// postJSON sends one lifecycle RPC, decoding the error body into a
// typed *shardError on non-200 and the response into out when non-nil.
func (g *Registrar) postJSON(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := readAll64K(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var eb ErrorBody
		_ = json.Unmarshal(data, &eb)
		if eb.Error == "" {
			eb.Error = strings.TrimSpace(string(data))
		}
		return &shardError{status: resp.StatusCode, code: eb.Code, msg: eb.Error}
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"imdpp/internal/core"
	"imdpp/internal/dataset"
	"imdpp/internal/diffusion"
	"imdpp/internal/graph"
	"imdpp/internal/pin"
	"imdpp/internal/service"
)

func sampleProblem(t testing.TB, budget float64, T int) *diffusion.Problem {
	t.Helper()
	d, err := dataset.AmazonSample()
	if err != nil {
		t.Fatal(err)
	}
	return d.Clone(budget, T)
}

// newFleet boots n in-process shard workers and returns a pool over
// them plus the workers for white-box inspection.
func newFleet(t testing.TB, n int) (*Pool, []*Worker, []*httptest.Server) {
	t.Helper()
	urls := make([]string, n)
	workers := make([]*Worker, n)
	servers := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		w := NewWorker(WorkerConfig{Workers: 2})
		mux := http.NewServeMux()
		w.Mount(mux)
		mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
			if w.Draining() { // a draining worker must not look probe-healthy
				writeShardJSON(rw, http.StatusServiceUnavailable, map[string]any{"ok": false, "draining": true})
				return
			}
			writeShardJSON(rw, http.StatusOK, map[string]bool{"ok": true})
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
		workers[i] = w
		servers[i] = srv
	}
	pool := NewPool(urls, nil)
	t.Cleanup(pool.Close)
	return pool, workers, servers
}

func groupsFor(p *diffusion.Problem) [][]diffusion.Seed {
	return [][]diffusion.Seed{
		{{User: 1, Item: 0, T: 1}},
		{{User: 2, Item: 1, T: 1}, {User: 5, Item: 0, T: 2}},
		{{User: 9, Item: 2, T: 1}},
		{},
	}
}

func requireSameEstimates(t *testing.T, label string, want, got []diffusion.Estimate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d estimates", label, len(want), len(got))
	}
	for g := range want {
		w, gg := want[g], got[g]
		same := func(name string, a, b float64) {
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("%s: group %d %s differs: %v (%x) vs %v (%x)",
					label, g, name, a, math.Float64bits(a), b, math.Float64bits(b))
			}
		}
		same("sigma", w.Sigma, gg.Sigma)
		same("market_sigma", w.MarketSigma, gg.MarketSigma)
		same("pi", w.Pi, gg.Pi)
		same("adoptions", w.Adoptions, gg.Adoptions)
		if len(w.PerItem) != len(gg.PerItem) {
			t.Fatalf("%s: group %d PerItem lengths %d vs %d", label, g, len(w.PerItem), len(gg.PerItem))
		}
		for j := range w.PerItem {
			same("per_item", w.PerItem[j], gg.PerItem[j])
		}
	}
}

func TestPlan(t *testing.T) {
	cases := []struct{ m, shards, want int }{
		{10, 1, 1}, {10, 2, 2}, {10, 7, 7}, {3, 7, 3}, {1, 4, 1}, {0, 3, 0},
	}
	for _, c := range cases {
		ranges := Plan(c.m, c.shards)
		if len(ranges) != c.want {
			t.Fatalf("Plan(%d,%d) returned %d ranges, want %d", c.m, c.shards, len(ranges), c.want)
		}
		next := 0
		for _, r := range ranges {
			if r.Lo != next || r.Hi <= r.Lo {
				t.Fatalf("Plan(%d,%d): range %+v breaks contiguity at %d", c.m, c.shards, r, next)
			}
			next = r.Hi
		}
		if c.m > 0 && next != c.m {
			t.Fatalf("Plan(%d,%d) covers [0,%d), want [0,%d)", c.m, c.shards, next, c.m)
		}
		// even split: spans differ by at most one
		if len(ranges) > 0 {
			minS, maxS := ranges[0].Span(), ranges[0].Span()
			for _, r := range ranges {
				if s := r.Span(); s < minS {
					minS = s
				} else if s > maxS {
					maxS = s
				}
			}
			if maxS-minS > 1 {
				t.Fatalf("Plan(%d,%d) uneven spans %d..%d", c.m, c.shards, minS, maxS)
			}
		}
	}
}

func TestProblemCodecRoundTrip(t *testing.T) {
	p := sampleProblem(t, 120, 3)
	decoded, err := DecodeProblem(EncodeProblem(p))
	if err != nil {
		t.Fatal(err)
	}
	// the content address is self-verifying: encode→decode must land on
	// the same key
	if h1, h2 := service.HashProblem(p), service.HashProblem(decoded); h1 != h2 {
		t.Fatalf("codec changed the content address: %s vs %s", h1, h2)
	}
	// and the decoded problem must drive the engine bit-identically
	groups := groupsFor(p)
	a := diffusion.NewEstimator(p, 16, 42)
	b := diffusion.NewEstimator(decoded, 16, 42)
	requireSameEstimates(t, "codec", a.RunBatchPi(groups, nil), b.RunBatchPi(groups, nil))
}

// TestShardedBitIdenticalGolden is the acceptance pin: sharded σ/π
// over 1, 2 and 7 workers is bit-for-bit the single-process result in
// every codec (JSON, binary) × planning (static, weighted) mode. The
// weighted passes run a warm-up batch first so the remotes hold real
// throughput EWMAs and the proportional planner actually engages.
func TestShardedBitIdenticalGolden(t *testing.T) {
	p := sampleProblem(t, 120, 3)
	groups := groupsFor(p)
	mask := make([]bool, p.NumUsers())
	for u := 0; u < p.NumUsers()/2; u++ {
		mask[u] = true
	}
	const m, seed = 13, 99
	localEst := diffusion.NewEstimator(p, m, seed)
	plain := localEst.RunBatch(groups, nil)
	withPi := localEst.RunBatchPi(groups, mask)
	masked := localEst.RunBatchMasked(groups, [][]bool{mask, nil, mask, nil}, true)

	for _, codec := range []string{"json", "binary"} {
		for _, weighted := range []bool{false, true} {
			for _, shards := range []int{1, 2, 7} {
				pool, _, _ := newFleet(t, shards)
				if err := pool.SetCodec(codec); err != nil {
					t.Fatal(err)
				}
				pool.SetWeighted(weighted)
				est := NewEstimator(pool, p, m, seed, 2)
				label := fmt.Sprintf("codec=%s weighted=%v shards=%d", codec, weighted, shards)
				if weighted {
					// warm the throughput EWMAs so the weighted plan departs
					// from the static split
					est.RunBatch(groups, nil)
				}
				requireSameEstimates(t, label+" RunBatch", plain, est.RunBatch(groups, nil))
				requireSameEstimates(t, label+" RunBatchPi", withPi, est.RunBatchPi(groups, mask))
				requireSameEstimates(t, label+" RunBatchMasked", masked, est.RunBatchMasked(groups, [][]bool{mask, nil, mask, nil}, true))
				st := pool.Snapshot()
				if st.Healthy != shards || st.LocalFallbacks != 0 {
					t.Fatalf("%s: pool snapshot %+v expected all-healthy, no fallback", label, st)
				}
				if st.Codec != codec || st.Weighted != weighted {
					t.Fatalf("%s: snapshot reports codec=%s weighted=%v", label, st.Codec, st.Weighted)
				}
				if st.BytesTx == 0 || st.BytesRx == 0 {
					t.Fatalf("%s: wire byte counters empty: %+v", label, st)
				}
				for _, rs := range st.Remotes {
					if rs.Shards > 0 && rs.EWMASamplesPerSec <= 0 {
						t.Fatalf("%s: remote %s served %d shards but reports no throughput EWMA", label, rs.URL, rs.Shards)
					}
				}
			}
		}
	}
}

// TestBinaryCodecCutsBytes runs a solve-shaped workload — one problem
// upload amortized over several many-group estimate batches, the CELF
// traffic pattern — over a JSON pool and a binary pool against
// identical fleets, and asserts the ≥3× wire-byte win the smoke then
// re-checks end to end.
func TestBinaryCodecCutsBytes(t *testing.T) {
	p := sampleProblem(t, 120, 3)
	var groups [][]diffusion.Seed
	for i := 0; i < 16; i++ {
		groups = append(groups, []diffusion.Seed{
			{User: i % p.NumUsers(), Item: i % p.NumItems(), T: 1},
			{User: (i * 3) % p.NumUsers(), Item: (i + 1) % p.NumItems(), T: 1 + i%p.T},
		})
	}
	const m, seed, batches = 24, 7, 4

	run := func(codec string) uint64 {
		pool, _, _ := newFleet(t, 2)
		if err := pool.SetCodec(codec); err != nil {
			t.Fatal(err)
		}
		est := NewEstimator(pool, p, m, seed, 2)
		for i := 0; i < batches; i++ {
			est.RunBatchPi(groups, nil)
		}
		st := pool.Snapshot()
		if st.LocalFallbacks != 0 {
			t.Fatalf("%s run fell back locally: %+v", codec, st)
		}
		return st.BytesTx + st.BytesRx
	}
	jsonBytes, binBytes := run("json"), run("binary")
	if binBytes == 0 || jsonBytes == 0 {
		t.Fatalf("byte counters empty: json=%d binary=%d", jsonBytes, binBytes)
	}
	if float64(jsonBytes) < 3*float64(binBytes) {
		t.Fatalf("binary codec saves too little: json=%d binary=%d (%.2fx < 3x)",
			jsonBytes, binBytes, float64(jsonBytes)/float64(binBytes))
	}
	t.Logf("wire bytes: json=%d binary=%d (%.1fx)", jsonBytes, binBytes, float64(jsonBytes)/float64(binBytes))
}

// TestMixedVersionFallback fronts a worker with a proxy that mimics a
// pre-binary build (it treats every body as JSON and never offers the
// binary response type): a binary-default pool must demote that remote
// to JSON after one rejected request and still produce bit-identical
// estimates.
func TestMixedVersionFallback(t *testing.T) {
	p := sampleProblem(t, 120, 3)
	groups := groupsFor(p)
	const m, seed = 9, 21
	want := diffusion.NewEstimator(p, m, seed).RunBatch(groups, nil)

	w := NewWorker(WorkerConfig{Workers: 2})
	mux := http.NewServeMux()
	w.Mount(mux)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		writeShardJSON(rw, http.StatusOK, map[string]bool{"ok": true})
	})
	legacy := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		// a legacy worker knows nothing of the binary media type: it
		// parses every body as JSON and answers JSON
		r.Header.Set("Content-Type", "application/json")
		r.Header.Del("Accept")
		mux.ServeHTTP(rw, r)
	}))
	t.Cleanup(legacy.Close)

	pool := NewPool([]string{legacy.URL}, nil)
	t.Cleanup(pool.Close)
	if pool.Codec() != "binary" {
		t.Fatalf("pool default codec %q, want binary", pool.Codec())
	}
	est := NewEstimator(pool, p, m, seed, 2)
	requireSameEstimates(t, "legacy worker", want, est.RunBatch(groups, nil))

	st := pool.Snapshot()
	if st.Healthy != 1 || st.LocalFallbacks != 0 {
		t.Fatalf("legacy fallback degraded the fleet: %+v", st)
	}
	if got := pool.healthyRemotes()[0].binMode.Load(); got != codecJSONOnly {
		t.Fatalf("remote codec mode %d, want pinned to JSON (%d)", got, codecJSONOnly)
	}
	// and it stays on JSON: a second batch must not re-attempt binary
	requireSameEstimates(t, "legacy worker again", want, est.RunBatch(groups, nil))
}

// TestSpeculativeRedispatch pairs a deliberately slow worker with a
// fast one: the fast worker finishes its range, the slow one's range
// crosses the 2×-median straggler threshold, and the coordinator's
// speculative duplicate on the idle fast worker must win — results
// bit-identical, speculative_hits incremented, nobody marked failed.
func TestSpeculativeRedispatch(t *testing.T) {
	p := sampleProblem(t, 120, 3)
	groups := groupsFor(p)
	const m, seed = 8, 17
	want := diffusion.NewEstimator(p, m, seed).RunBatch(groups, nil)

	newWorkerServer := func(delay time.Duration) *httptest.Server {
		w := NewWorker(WorkerConfig{Workers: 2})
		mux := http.NewServeMux()
		w.Mount(mux)
		mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
			writeShardJSON(rw, http.StatusOK, map[string]bool{"ok": true})
		})
		handler := http.Handler(mux)
		if delay > 0 {
			handler = http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
				if r.Method == http.MethodPost && r.URL.Path == PathEstimate {
					select {
					case <-time.After(delay):
					case <-r.Context().Done():
						return
					}
				}
				mux.ServeHTTP(rw, r)
			})
		}
		srv := httptest.NewServer(handler)
		t.Cleanup(srv.Close)
		return srv
	}
	fast := newWorkerServer(0)
	slow := newWorkerServer(800 * time.Millisecond)

	pool := NewPool([]string{fast.URL, slow.URL}, nil)
	t.Cleanup(pool.Close)
	pool.SetWeighted(false) // keep both ranges non-empty regardless of EWMAs
	pool.specMin = 5 * time.Millisecond
	pool.specTick = 2 * time.Millisecond

	est := NewEstimator(pool, p, m, seed, 2)
	start := time.Now()
	requireSameEstimates(t, "speculated batch", want, est.RunBatch(groups, nil))
	elapsed := time.Since(start)

	st := pool.Snapshot()
	if st.SpeculativeHits == 0 {
		t.Fatalf("straggler never speculated: %+v (batch took %v)", st, elapsed)
	}
	if st.Healthy != 2 {
		t.Fatalf("speculation blamed a worker: %+v", st)
	}
	if st.LocalFallbacks != 0 {
		t.Fatalf("speculation fell back locally: %+v", st)
	}
	if elapsed >= 800*time.Millisecond {
		t.Fatalf("batch waited out the straggler (%v) — speculation bought nothing", elapsed)
	}
}

func TestPlanWeighted(t *testing.T) {
	cases := []struct {
		m       int
		weights []float64
	}{
		{10, []float64{1, 1}},
		{10, []float64{3, 1}},
		{7, []float64{1, 2, 4}},
		{3, []float64{5, 1, 1, 1, 1}},
		{1, []float64{0.5, 0.5}},
		{100, []float64{1000, 1}},
		{5, []float64{0, 0, 0}},                    // all-unknown → even
		{5, []float64{math.NaN(), math.Inf(1), 2}}, // garbage weights ignored
		{64, []float64{1.5, 2.5, 3.5, 0.5}},
	}
	for _, c := range cases {
		ranges := PlanWeighted(c.m, c.weights)
		if len(ranges) != len(c.weights) {
			t.Fatalf("PlanWeighted(%d,%v): %d ranges, want %d", c.m, c.weights, len(ranges), len(c.weights))
		}
		next, total := 0, 0
		for _, r := range ranges {
			if r.Lo != next || r.Hi < r.Lo {
				t.Fatalf("PlanWeighted(%d,%v): range %+v breaks contiguity at %d", c.m, c.weights, r, next)
			}
			next = r.Hi
			total += r.Span()
		}
		if total != c.m || next != c.m {
			t.Fatalf("PlanWeighted(%d,%v) covers %d samples, want %d", c.m, c.weights, total, c.m)
		}
		// determinism: the same inputs replan identically
		again := PlanWeighted(c.m, c.weights)
		for i := range ranges {
			if ranges[i] != again[i] {
				t.Fatalf("PlanWeighted(%d,%v) not deterministic: %+v vs %+v", c.m, c.weights, ranges[i], again[i])
			}
		}
	}
	// proportionality: a 3:1 split of 100 samples lands on 75/25
	r := PlanWeighted(100, []float64{3, 1})
	if r[0].Span() != 75 || r[1].Span() != 25 {
		t.Fatalf("PlanWeighted(100,[3 1]) spans %d/%d, want 75/25", r[0].Span(), r[1].Span())
	}
	// a starved weight may get zero samples — and callers skip it
	r = PlanWeighted(2, []float64{1000, 1000, 1})
	if r[2].Span() != 0 {
		t.Fatalf("PlanWeighted(2,[1000 1000 1]) gave the starved worker %d samples", r[2].Span())
	}
}

// TestShardedSolveGolden runs the full Dysim pipeline over sharded
// backends in every codec × planning combination and across 1/2/7
// workers, pinning each Solution against the plain in-process solve.
func TestShardedSolveGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full solve; skipped under -short")
	}
	p := sampleProblem(t, 100, 2)
	opt := core.Options{MC: 8, MCSI: 4, CandidateCap: 32, Seed: 7}
	want, err := core.Solve(p, opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, codec := range []string{"json", "binary"} {
		for _, weighted := range []bool{false, true} {
			for _, shards := range []int{1, 2, 7} {
				label := fmt.Sprintf("codec=%s weighted=%v shards=%d", codec, weighted, shards)
				pool, workers, _ := newFleet(t, shards)
				if err := pool.SetCodec(codec); err != nil {
					t.Fatal(err)
				}
				pool.SetWeighted(weighted)
				opt.Backend = Backend(pool)
				got, err := core.Solve(p, opt)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(want.Sigma) != math.Float64bits(got.Sigma) {
					t.Fatalf("%s: sharded solve σ %v != local %v", label, got.Sigma, want.Sigma)
				}
				if len(want.Seeds) != len(got.Seeds) {
					t.Fatalf("%s: seed counts differ: %d vs %d", label, len(got.Seeds), len(want.Seeds))
				}
				for i := range want.Seeds {
					if want.Seeds[i] != got.Seeds[i] {
						t.Fatalf("%s: seed %d differs: %+v vs %+v", label, i, got.Seeds[i], want.Seeds[i])
					}
				}
				var served uint64
				for _, w := range workers {
					served += w.Stats().ShardsServed
				}
				if served == 0 {
					t.Fatalf("%s: no shards reached the workers — the solve ran locally", label)
				}
			}
		}
	}
}

// TestFailoverWorkerDeath kills one of two workers mid-fleet and
// checks the batch still completes bit-identically via re-dispatch.
func TestFailoverWorkerDeath(t *testing.T) {
	p := sampleProblem(t, 120, 3)
	groups := groupsFor(p)
	const m, seed = 12, 5
	want := diffusion.NewEstimator(p, m, seed).RunBatch(groups, nil)

	pool, _, servers := newFleet(t, 2)
	est := NewEstimator(pool, p, m, seed, 2)
	// warm both workers, then kill one
	requireSameEstimates(t, "warm", want, est.RunBatch(groups, nil))
	servers[1].Close()
	requireSameEstimates(t, "after death", want, est.RunBatch(groups, nil))

	st := pool.Snapshot()
	if st.Healthy != 1 {
		t.Fatalf("dead worker still in rotation: %+v", st)
	}
	if st.Redispatches == 0 && st.LocalFallbacks == 0 {
		t.Fatalf("death produced neither redispatch nor fallback: %+v", st)
	}
	// with the whole fleet dead the estimator degrades to local compute
	servers[0].Close()
	requireSameEstimates(t, "fleet dead", want, est.RunBatch(groups, nil))
}

// TestWorkerRestartReupload drops a worker's problem store (the
// observable effect of a restart) and checks the unknown_problem
// re-upload path recovers transparently.
func TestWorkerRestartReupload(t *testing.T) {
	p := sampleProblem(t, 120, 3)
	groups := groupsFor(p)
	const m, seed = 6, 11
	want := diffusion.NewEstimator(p, m, seed).RunBatch(groups, nil)

	pool, workers, _ := newFleet(t, 1)
	est := NewEstimator(pool, p, m, seed, 2)
	requireSameEstimates(t, "first", want, est.RunBatch(groups, nil))
	workers[0].DropProblems()
	requireSameEstimates(t, "after restart", want, est.RunBatch(groups, nil))
	if st := pool.Snapshot(); st.Healthy != 1 {
		t.Fatalf("restart marked the worker unhealthy: %+v", st)
	}
}

// TestWorkerRejectsHostileRequests pins the worker's input guards: a
// zero-vertex graph payload smuggling arcs must fail decoding (not
// panic in CSR rebuild), and an estimate whose groups × span work
// bound is absurd must be rejected before allocation.
func TestWorkerRejectsHostileRequests(t *testing.T) {
	// corrupt graph: n=0 with a dangling arc
	_, err := DecodeProblem(ProblemUpload{
		Users: 0, Items: 0,
		Graph: graph.Export{N: 0, OutOff: []int32{0}, OutTo: []int32{3}, OutW: []float64{0.5}},
	})
	if err == nil {
		t.Fatal("zero-vertex graph with arcs decoded without error")
	}
	// NaN weight: both w <= 0 and w > 1 are false for NaN, so a naive
	// range check would wave it through into the diffusion engine
	if _, err := graph.Import(graph.Export{
		N: 2, OutOff: []int32{0, 1, 1}, OutTo: []int32{1}, OutW: []float64{math.NaN()},
	}); err == nil {
		t.Fatal("NaN arc weight imported without error")
	}
	// out-of-range meta index in a relevance row: must fail typed, not
	// panic inside EvalContribs
	good := EncodeProblem(sampleProblem(t, 120, 3))
	bad := good
	bad.Rows = append([][]pin.PairRel(nil), good.Rows...)
	bad.Rows[0] = []pin.PairRel{{Y: 1, Contribs: []pin.Contrib{{Meta: 200, S: 0.5}}}}
	if _, err := DecodeProblem(bad); err == nil {
		t.Fatal("out-of-range meta index decoded without error")
	}
	// non-canonical content keys (embedded whitespace) must not alias
	if _, err := service.ParseKey("0000000000000001 000000000000002"); err == nil {
		t.Fatal("whitespace-laced key parsed without error")
	}

	pool, workers, servers := newFleet(t, 1)
	p := sampleProblem(t, 120, 3)
	blob, err := NewProblemBlob(p)
	if err != nil {
		t.Fatal(err)
	}
	r := pool.healthyRemotes()[0]
	if err := pool.ensureProblem(context.Background(), r, blob); err != nil {
		t.Fatal(err)
	}
	req := &EstimateRequest{
		Problem: blob.Key.String(),
		Lo:      0,
		Hi:      1 << 40,
		Groups:  [][]diffusion.Seed{{}},
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(servers[0].URL+PathEstimate, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized estimate: status %d want 400", resp.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Code != CodeBadRequest {
		t.Fatalf("oversized estimate: body %+v err %v", eb, err)
	}
	if got := workers[0].Stats().ShardsServed; got != 0 {
		t.Fatalf("hostile request counted as served: %d", got)
	}
}

// TestCancellationPropagates cancels a sharded solve whose only worker
// hangs, and expects the coordinator to unwind promptly with ctx.Err().
func TestCancellationPropagates(t *testing.T) {
	p := sampleProblem(t, 100, 2)

	var inFlight atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		writeShardJSON(rw, http.StatusOK, map[string]bool{"ok": true})
	})
	// uploads must succeed (via a real worker) so the estimate is the
	// call that hangs
	real := NewWorker(WorkerConfig{})
	realMux := http.NewServeMux()
	real.Mount(realMux)
	mux.Handle("POST "+PathProblems, realMux)
	mux.HandleFunc("POST "+PathEstimate, func(rw http.ResponseWriter, r *http.Request) {
		// drain the body so the server's background read can observe the
		// coordinator abandoning the connection
		_, _ = io.Copy(io.Discard, r.Body)
		inFlight.Add(1)
		<-r.Context().Done() // hang until the coordinator goes away
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	pool := NewPool([]string{srv.URL}, nil)
	t.Cleanup(pool.Close)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for i := 0; i < 200 && inFlight.Load() == 0; i++ {
			time.Sleep(5 * time.Millisecond)
		}
		cancel()
	}()
	opt := core.Options{MC: 8, MCSI: 4, CandidateCap: 16, Seed: 3, Backend: Backend(pool)}
	start := time.Now()
	_, err := core.SolveCtx(ctx, p, opt)
	if err == nil {
		t.Fatal("cancelled sharded solve returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v to propagate through the coordinator", elapsed)
	}
	if inFlight.Load() == 0 {
		t.Fatal("the hanging worker was never reached; the test proved nothing")
	}
}

package shard

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"imdpp/internal/diffusion"
	"imdpp/internal/service"
)

// TestProblemUploadBinaryRoundTrip pins the tentpole compatibility
// gate: the binary-decoded problem must land on the same content
// address — and drive the engine bit-identically — as the JSON one.
func TestProblemUploadBinaryRoundTrip(t *testing.T) {
	p := sampleProblem(t, 120, 3)
	u := EncodeProblem(p)

	frame := u.AppendBinary(nil)
	decodedU, err := DecodeProblemUploadBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := DecodeProblem(decodedU)
	if err != nil {
		t.Fatal(err)
	}
	jsonBytes, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	var jsonU ProblemUpload
	if err := json.Unmarshal(jsonBytes, &jsonU); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := DecodeProblem(jsonU)
	if err != nil {
		t.Fatal(err)
	}
	h0, hb, hj := service.HashProblem(p), service.HashProblem(fromBin), service.HashProblem(fromJSON)
	if h0 != hb || h0 != hj {
		t.Fatalf("content address drift: original %s binary %s json %s", h0, hb, hj)
	}
	groups := groupsFor(p)
	requireSameEstimates(t, "binary-decoded problem",
		diffusion.NewEstimator(p, 8, 5).RunBatchPi(groups, nil),
		diffusion.NewEstimator(fromBin, 8, 5).RunBatchPi(groups, nil))
}

// TestProblemUploadBinarySmaller quantifies the wire win on a real
// problem: the binary frame must be well under half the JSON bytes
// (the smoke asserts the full-RPC ≥3× bound end to end).
func TestProblemUploadBinarySmaller(t *testing.T) {
	u := EncodeProblem(sampleProblem(t, 120, 3))
	jsonBytes, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	bin := u.AppendBinary(nil)
	if len(bin)*2 >= len(jsonBytes) {
		t.Fatalf("binary upload %d bytes not < half of JSON %d", len(bin), len(jsonBytes))
	}
	t.Logf("problem upload: json=%d binary=%d (%.1fx)", len(jsonBytes), len(bin), float64(len(jsonBytes))/float64(len(bin)))
}

func TestEstimateRequestBinaryRoundTrip(t *testing.T) {
	key := service.Key{Hi: 0xdeadbeefcafef00d, Lo: 0x0123456789abcdef}
	cases := []EstimateRequest{
		{Problem: key.String(), Seed: 42, Lo: 3, Hi: 17, WithPi: true,
			Groups: [][]diffusion.Seed{{{User: 1, Item: 2, T: 3}}, {}},
			Market: []int32{0, 4, 9}},
		{Problem: key.String(), Groups: [][]diffusion.Seed{{}},
			Market: []int32{}, // empty non-nil: the all-false mask
			Lo:     0, Hi: 1},
		{Problem: key.String(), Groups: [][]diffusion.Seed{{}, {{User: 0, Item: 0, T: 1}}},
			PerGroupMasks: [][]int32{nil, {2, 5}},
			Lo:            0, Hi: 4},
	}
	for ci, req := range cases {
		frame, err := req.AppendBinary(nil)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		got, err := DecodeEstimateRequestBinary(frame)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		// the JSON round trip is the reference semantics: both codecs
		// must preserve nil-vs-empty on every mask field
		jb, _ := json.Marshal(req)
		var viaJSON EstimateRequest
		_ = json.Unmarshal(jb, &viaJSON)
		gb, _ := json.Marshal(got)
		if !bytes.Equal(jb, gb) {
			t.Fatalf("case %d: binary round trip drifted:\n json: %s\n  got: %s", ci, jb, gb)
		}
		if (req.Market == nil) != (got.Market == nil) {
			t.Fatalf("case %d: market nil-ness lost", ci)
		}
		if (req.PerGroupMasks == nil) != (got.PerGroupMasks == nil) {
			t.Fatalf("case %d: masks nil-ness lost", ci)
		}
		for g := range req.PerGroupMasks {
			if (req.PerGroupMasks[g] == nil) != (got.PerGroupMasks[g] == nil) {
				t.Fatalf("case %d: mask %d nil-ness lost", ci, g)
			}
		}
	}
}

func TestEstimateResponseBinaryRoundTrip(t *testing.T) {
	p := sampleProblem(t, 120, 3)
	est := diffusion.NewEstimator(p, 6, 13)
	resp := EstimateResponse{Samples: est.RunBatchSamples(groupsFor(p), nil, nil, true, 0, 6)}
	frame := resp.AppendBinary(nil)
	got, err := DecodeEstimateResponseBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	want := diffusion.ReduceSampleGrid(resp.Samples, p.NumItems())
	have := diffusion.ReduceSampleGrid(got.Samples, p.NumItems())
	requireSameEstimates(t, "binary response", want, have)
}

// TestFrameCompression forces a payload over the DEFLATE threshold and
// checks the round trip plus the size win.
func TestFrameCompression(t *testing.T) {
	grid := make([][]diffusion.SampleResult, 4)
	for g := range grid {
		grid[g] = make([]diffusion.SampleResult, 512)
		for i := range grid[g] {
			grid[g][i] = diffusion.SampleResult{
				Sigma: float64(i) * 1.000000001, Adoptions: float64(i % 7),
				Items: []int32{1, 5, 9}, Counts: []float64{1, 2, 1},
			}
		}
	}
	resp := EstimateResponse{Samples: grid}
	frame := resp.AppendBinary(nil)
	if frame[5]&flagDeflate == 0 {
		t.Fatalf("large frame (%d bytes) was not compressed", len(frame))
	}
	got, err := DecodeEstimateResponseBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != 4 || len(got.Samples[0]) != 512 {
		t.Fatalf("compressed round trip lost shape: %dx%d", len(got.Samples), len(got.Samples[0]))
	}
	for g := range grid {
		for i := range grid[g] {
			if math.Float64bits(grid[g][i].Sigma) != math.Float64bits(got.Samples[g][i].Sigma) {
				t.Fatalf("sample (%d,%d) sigma drifted through compression", g, i)
			}
		}
	}
}

// TestFrameRejectsDrift pins the typed failures: wrong magic, wrong
// version, wrong kind, truncation, and length-field lies all error
// before any payload decoding.
func TestFrameRejectsDrift(t *testing.T) {
	good := (&EstimateResponse{Samples: [][]diffusion.SampleResult{{}}}).AppendBinary(nil)
	mutations := map[string]func([]byte) []byte{
		"magic":     func(b []byte) []byte { b[0] = 'X'; return b },
		"version":   func(b []byte) []byte { b[3] = 99; return b },
		"kind":      func(b []byte) []byte { b[4] = frameProblem; return b },
		"truncated": func(b []byte) []byte { return b[:len(b)-1] },
		"length":    func(b []byte) []byte { b[6]++; return b },
		"short":     func(b []byte) []byte { return b[:4] },
	}
	for name, mutate := range mutations {
		b := mutate(append([]byte(nil), good...))
		if _, err := DecodeEstimateResponseBinary(b); err == nil {
			t.Fatalf("%s mutation decoded without error", name)
		}
	}
}

func FuzzDecodeProblemUploadBinary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("IMB\x01\x01\x00\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeProblemUploadBinary(data)
		if err != nil {
			return
		}
		// a decodable frame must re-encode decodably (not necessarily
		// byte-identically: DEFLATE and varint widths may differ)
		if _, err := DecodeProblemUploadBinary(u.AppendBinary(nil)); err != nil {
			t.Fatalf("re-encode of decoded upload failed: %v", err)
		}
	})
}

func FuzzDecodeEstimateRequestBinary(f *testing.F) {
	f.Add([]byte{})
	seed, _ := (&EstimateRequest{Problem: service.Key{}.String(), Hi: 1,
		Groups: [][]diffusion.Seed{{}}}).AppendBinary(nil)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeEstimateRequestBinary(data)
		if err != nil {
			return
		}
		again, err := req.AppendBinary(nil)
		if err != nil {
			t.Fatalf("re-encode of decoded request failed: %v", err)
		}
		if _, err := DecodeEstimateRequestBinary(again); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

func FuzzDecodeEstimateResponseBinary(f *testing.F) {
	f.Add([]byte{})
	f.Add((&EstimateResponse{Samples: [][]diffusion.SampleResult{{{Sigma: 1.5, Items: []int32{2}, Counts: []float64{1}}}}}).AppendBinary(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeEstimateResponseBinary(data)
		if err != nil {
			return
		}
		if _, err := DecodeEstimateResponseBinary(resp.AppendBinary(nil)); err != nil {
			t.Fatalf("re-encode of decoded response failed: %v", err)
		}
	})
}

package shard

// Range is one shard's half-open global sample interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Span returns the number of samples in the range.
func (r Range) Span() int { return r.Hi - r.Lo }

// Plan partitions the global sample indices 0..m-1 into at most shards
// contiguous ranges, as evenly as possible (the first m%shards ranges
// hold one extra sample). Contiguity is what keeps the merge trivially
// ordered: concatenating the ranges' per-sample outcomes in plan order
// reconstructs the full sample sequence 0..m-1, so the coordinator's
// reduction visits samples in exactly the single-process order. Plan
// never returns an empty range; fewer than shards ranges come back
// when m < shards.
func Plan(m, shards int) []Range {
	if m <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > m {
		shards = m
	}
	base, extra := m/shards, m%shards
	out := make([]Range, shards)
	lo := 0
	for i := range out {
		span := base
		if i < extra {
			span++
		}
		out[i] = Range{Lo: lo, Hi: lo + span}
		lo += span
	}
	return out
}

package shard

import (
	"math"
	"sort"
)

// Range is one shard's half-open global sample interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Span returns the number of samples in the range.
func (r Range) Span() int { return r.Hi - r.Lo }

// Plan partitions the global sample indices 0..m-1 into at most shards
// contiguous ranges, as evenly as possible (the first m%shards ranges
// hold one extra sample). Contiguity is what keeps the merge trivially
// ordered: concatenating the ranges' per-sample outcomes in plan order
// reconstructs the full sample sequence 0..m-1, so the coordinator's
// reduction visits samples in exactly the single-process order. Plan
// never returns an empty range; fewer than shards ranges come back
// when m < shards.
func Plan(m, shards int) []Range {
	if m <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > m {
		shards = m
	}
	base, extra := m/shards, m%shards
	out := make([]Range, shards)
	lo := 0
	for i := range out {
		span := base
		if i < extra {
			span++
		}
		out[i] = Range{Lo: lo, Hi: lo + span}
		lo += span
	}
	return out
}

// PlanWeighted partitions the global sample indices 0..m-1 into
// len(weights) contiguous ranges whose spans are proportional to the
// weights — the throughput-proportional planner: weight i is worker
// i's measured samples/sec, so every worker finishes its range at
// about the same time instead of the fleet waiting on the slowest.
//
// Unlike Plan it preserves positional alignment: out[i] is worker i's
// range and may be empty (Span 0) when its weight rounds to nothing —
// callers skip empty ranges rather than dispatch them. Spans follow
// the largest-remainder method with index order as the tie-break, so
// the plan is a deterministic function of (m, weights). Non-finite or
// negative weights count as zero; if every weight is zero the plan
// degenerates to Plan's even split. Contiguity (and therefore the §7
// merge order) is preserved by construction: concatenating the ranges
// in index order covers [0, m) exactly.
func PlanWeighted(m int, weights []float64) []Range {
	n := len(weights)
	if m <= 0 || n == 0 {
		return nil
	}
	w := make([]float64, n)
	sum := 0.0
	for i, v := range weights {
		if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
			w[i] = v
			sum += v
		}
	}
	if sum <= 0 {
		for i := range w {
			w[i] = 1
		}
		sum = float64(n)
	}
	spans := make([]int, n)
	fracs := make([]float64, n)
	assigned := 0
	for i := range w {
		exact := float64(m) * w[i] / sum
		spans[i] = int(exact)
		fracs[i] = exact - float64(spans[i])
		assigned += spans[i]
	}
	// distribute the rounding remainder by largest fractional part,
	// ties broken by lower index — deterministic for equal weights
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return fracs[order[a]] > fracs[order[b]] })
	for r := 0; r < m-assigned; r++ {
		spans[order[r%n]]++
	}
	out := make([]Range, n)
	lo := 0
	for i, span := range spans {
		out[i] = Range{Lo: lo, Hi: lo + span}
		lo += span
	}
	return out
}

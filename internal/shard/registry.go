package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"time"

	"imdpp/internal/service"
)

// Coordinator side of the worker lifecycle protocol (DESIGN.md §13):
// workers announce themselves with a capability advertisement, prove
// liveness with heartbeats, and say goodbye with a deregister. The
// protocol rides plain JSON — registration is a once-per-process
// handshake, not a hot path, so the binary codec buys nothing here.

// maxRemotes bounds the dynamic registry so a hostile or buggy client
// cannot grow the coordinator's probe/planning state without bound.
const maxRemotes = 256

// WorkerCaps is a worker's capability advertisement, sent once at
// registration. It settles the codec and trace negotiation up front:
// a registered worker never pays the per-request fallback probe that
// static-list workers of unknown build vintage go through.
type WorkerCaps struct {
	// CodecVersion is the highest binary frame version the worker
	// decodes (0 = JSON only); at least the coordinator's frameVersion
	// pins the remote to the binary codec immediately.
	CodecVersion int `json:"codec_version"`
	// TracedFrames reports flagTraced support (DESIGN.md §11).
	TracedFrames bool `json:"traced_frames"`
	// Capacity is a concurrency hint (typically GOMAXPROCS), surfaced
	// in /metrics for operators; the throughput-weighted planner still
	// sizes ranges by measured EWMA, not by this claim.
	Capacity int `json:"capacity"`
}

// DefaultWorkerCaps advertises this build's actual capabilities.
func DefaultWorkerCaps() WorkerCaps {
	return WorkerCaps{
		CodecVersion: frameVersion,
		TracedFrames: true,
		Capacity:     runtime.GOMAXPROCS(0),
	}
}

// RegisterRequest announces a worker at URL with caps.
type RegisterRequest struct {
	URL  string     `json:"url"`
	Caps WorkerCaps `json:"caps"`
}

// RegisterResponse acknowledges a registration and dictates the
// heartbeat cadence; silence for ~3 beats marks the worker suspect.
type RegisterResponse struct {
	OK              bool  `json:"ok"`
	HeartbeatMillis int64 `json:"heartbeat_millis"`
}

// HeartbeatRequest is one liveness beat from a registered worker.
type HeartbeatRequest struct {
	URL string `json:"url"`
}

// DeregisterRequest removes a worker from the registry — the tail of
// a graceful drain.
type DeregisterRequest struct {
	URL string `json:"url"`
}

// normalizeWorkerURL validates and canonicalises a worker base URL.
func normalizeWorkerURL(raw string) (string, error) {
	raw = strings.TrimSuffix(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("shard: bad worker url %q: %w", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("shard: bad worker url %q (want http(s)://host[:port])", raw)
	}
	return raw, nil
}

// Register adds (or re-animates) the worker at rawURL. Registration is
// idempotent and doubles as crash recovery: a worker that restarts
// re-registers under the same URL, which resets its lifecycle state,
// forgets its acknowledged uploads (the new process holds none — the
// unknown_problem path would also heal this, lazily), and re-seeds the
// codec/trace negotiation from caps, so no RPC to a registered worker
// ever needs the mixed-version fallback probe.
func (p *Pool) Register(rawURL string, caps WorkerCaps) error {
	u, err := normalizeWorkerURL(rawURL)
	if err != nil {
		return err
	}
	p.mu.Lock()
	var r *Remote
	for _, have := range p.remotes {
		if have.url == u {
			r = have
			break
		}
	}
	if r == nil {
		if len(p.remotes) >= maxRemotes {
			p.mu.Unlock()
			return fmt.Errorf("shard: registry full (%d workers)", maxRemotes)
		}
		r = &Remote{url: u, problems: make(map[service.Key]bool)}
		p.remotes = append(p.remotes, r)
	}
	p.mu.Unlock()

	now := time.Now()
	r.mu.Lock()
	rejoined := r.registered && r.state != stateAlive
	r.registered = true
	r.caps = caps
	r.state = stateAlive
	r.lastBeat = now
	r.lastErr = ""
	r.probeFails = 0
	r.nextProbe = time.Time{}
	r.strikes = 0
	r.breakerUntil = time.Time{}
	r.problems = make(map[service.Key]bool)
	r.mu.Unlock()

	// settle the wire negotiation from the advertisement
	if caps.CodecVersion >= frameVersion {
		r.binMode.Store(codecBinaryOK)
	} else {
		r.binMode.Store(codecJSONOnly)
	}
	if caps.TracedFrames {
		r.traceMode.Store(traceSupported)
	} else {
		r.traceMode.Store(traceUnsupported)
	}
	if rejoined {
		p.rejoins.Add(1)
	}
	p.logger.Info("shard worker registered", "worker", u,
		"codec_version", caps.CodecVersion, "capacity", caps.Capacity, "rejoined", rejoined)
	return nil
}

// Heartbeat records a liveness beat from a registered worker; a beat
// from a suspect/probing/dead worker brings it straight back into
// rotation (the worker itself is the best probe there is). Draining
// workers stay draining — only re-registration revives those. It
// returns false when the URL has no live registration, which tells the
// worker to re-register (the coordinator may have restarted).
func (p *Pool) Heartbeat(rawURL string) bool {
	u, err := normalizeWorkerURL(rawURL)
	if err != nil {
		return false
	}
	p.mu.Lock()
	var r *Remote
	for _, have := range p.remotes {
		if have.url == u {
			r = have
			break
		}
	}
	p.mu.Unlock()
	if r == nil {
		return false
	}
	r.mu.Lock()
	if !r.registered {
		r.mu.Unlock()
		return false
	}
	r.lastBeat = time.Now()
	rejoined := false
	switch r.state {
	case stateSuspect, stateProbing, stateDead:
		r.state = stateAlive
		r.probeFails = 0
		r.lastErr = ""
		rejoined = true
	}
	r.mu.Unlock()
	p.heartbeats.Add(1)
	if rejoined {
		p.rejoins.Add(1)
	}
	return true
}

// Deregister removes the worker at rawURL from the registry entirely —
// the tail of a graceful drain (idempotent: removing an unknown URL is
// a no-op). Any in-flight dispatch to it finishes or fails over as
// usual; either way the result is unchanged (§3/§7).
func (p *Pool) Deregister(rawURL string) {
	u, err := normalizeWorkerURL(rawURL)
	if err != nil {
		return
	}
	p.mu.Lock()
	for i, have := range p.remotes {
		if have.url == u {
			p.remotes = append(p.remotes[:i], p.remotes[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	p.logger.Info("shard worker deregistered", "worker", u)
}

// HandleRegister is the POST /v1/shard/register handler.
func (p *Pool) HandleRegister(rw http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<16)).Decode(&req); err != nil {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad register request: %w", err))
		return
	}
	if err := p.Register(req.URL, req.Caps); err != nil {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	writeShardJSON(rw, http.StatusOK, RegisterResponse{
		OK:              true,
		HeartbeatMillis: p.hbInterval.Milliseconds(),
	})
}

// HandleHeartbeat is the POST /v1/shard/heartbeat handler. An unknown
// URL answers 404 unknown_worker, telling the worker to re-register.
func (p *Pool) HandleHeartbeat(rw http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<16)).Decode(&req); err != nil {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad heartbeat: %w", err))
		return
	}
	if !p.Heartbeat(req.URL) {
		writeShardError(rw, http.StatusNotFound, CodeUnknownWorker,
			fmt.Errorf("no registration for %q", req.URL))
		return
	}
	writeShardJSON(rw, http.StatusOK, map[string]bool{"ok": true})
}

// HandleDeregister is the POST /v1/shard/deregister handler.
func (p *Pool) HandleDeregister(rw http.ResponseWriter, r *http.Request) {
	var req DeregisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<16)).Decode(&req); err != nil {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad deregister: %w", err))
		return
	}
	p.Deregister(req.URL)
	writeShardJSON(rw, http.StatusOK, map[string]bool{"ok": true})
}

// MountRegistry mounts the lifecycle endpoints on mux (the coordinator
// side of dynamic fleets; static-list deployments skip it).
func (p *Pool) MountRegistry(mux *http.ServeMux) {
	mux.HandleFunc("POST "+PathRegister, p.HandleRegister)
	mux.HandleFunc("POST "+PathHeartbeat, p.HandleHeartbeat)
	mux.HandleFunc("POST "+PathDeregister, p.HandleDeregister)
}

package shard

import (
	"math/rand/v2"
	"time"
)

// Worker lifecycle states (DESIGN.md §13). A remote is dispatchable
// only while alive (and its circuit breaker is closed); every other
// state keeps it out of rotation while the failure detector decides
// its fate. None of the transitions can affect results: membership
// only moves work between workers, and every shard is bit-identical
// wherever it runs (§3/§7), so the state machine is pure ops surface.
//
//	alive ──dispatch failure / heartbeat timeout──▶ suspect
//	suspect ──failure-detector probe fails──▶ probing (backoff grows)
//	probing ──deadAfter consecutive failures──▶ dead (probed at the cap)
//	suspect|probing|dead ──probe ok / heartbeat / re-register──▶ alive
//	any ──typed draining response / deregister──▶ draining
type remoteState int32

const (
	stateAlive remoteState = iota
	stateSuspect
	stateProbing
	stateDead
	stateDraining
)

func (s remoteState) String() string {
	switch s {
	case stateAlive:
		return "alive"
	case stateSuspect:
		return "suspect"
	case stateProbing:
		return "probing"
	case stateDead:
		return "dead"
	case stateDraining:
		return "draining"
	}
	return "unknown"
}

// backoffFor returns the jittered exponential delay before the probe
// after fails consecutive failures: probeBase doubling per failure,
// capped at probeCap, drawn uniformly from [d/2, d] so a fleet of
// coordinators (or one coordinator probing a rack that died together)
// never hammers a recovering worker in lockstep.
func (p *Pool) backoffFor(fails int) time.Duration {
	d := p.probeBase
	for i := 0; i < fails && d < p.probeCap; i++ {
		d *= 2
	}
	if d > p.probeCap {
		d = p.probeCap
	}
	if d <= 0 {
		return 0
	}
	return jitterHalf(d)
}

// jitterHalf draws uniformly from [d/2, d] — the jitter shape shared
// by the failure detector's backoff, its steady-state probe cadence,
// and the worker-side registrar's register retries.
func jitterHalf(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

// markFailed records a dispatch failure on r: the worker leaves
// rotation as suspect pending a probe, and breakerTrip consecutive
// dispatch failures open its circuit breaker — a flapping worker
// (probes fine, dispatches die) is shed for a full breakerCooldown
// instead of being re-admitted by the next lucky probe.
func (p *Pool) markFailed(r *Remote, err error) {
	r.failures.Add(1)
	now := time.Now()
	r.mu.Lock()
	r.strikes++
	if r.strikes >= p.breakerTrip && !now.Before(r.breakerUntil) {
		r.breakerUntil = now.Add(p.breakerCooldown)
	}
	if r.state == stateAlive || r.state == stateProbing {
		r.state = stateSuspect
		r.probeFails = 0
		r.nextProbe = now.Add(p.backoffFor(0))
	}
	r.lastErr = err.Error()
	r.mu.Unlock()
}

// markDraining records a typed draining response: the worker asked to
// leave rotation gracefully. Not a failure — no strike, no breaker —
// but no new dispatches either; a probe notices if it restarts.
func (p *Pool) markDraining(r *Remote) {
	r.mu.Lock()
	if r.state != stateDraining {
		r.state = stateDraining
		r.lastErr = ""
		r.probeFails = 0
		r.nextProbe = time.Now().Add(p.backoffFor(0))
	}
	r.mu.Unlock()
}

// dispatchOK resets the breaker strike count: strikes count
// *consecutive* dispatch failures, and deliberately survive probe
// successes — a flapping worker's probes pass while its dispatches
// fail, which is exactly the pattern the breaker exists to catch.
func (r *Remote) dispatchOK() {
	r.mu.Lock()
	r.strikes = 0
	r.mu.Unlock()
}

// dispatchable reports whether r should receive new shard dispatches:
// in rotation and not shed by its circuit breaker.
func (r *Remote) dispatchable() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state == stateAlive && !time.Now().Before(r.breakerUntil)
}

// detectLoop is the failure detector: a cheap periodic scan that turns
// missed heartbeats into suspicion, fires due probes (jittered
// exponential backoff for suspects, routine jittered cadence for
// static-list alive workers), and lets probe outcomes drive the state
// machine. Registered workers are not probed while alive — their
// heartbeats are the liveness signal, which is the point of
// registration: no per-worker probe traffic at fleet scale.
func (p *Pool) detectLoop() {
	tick := p.probeBase / 2
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.detectOnce(time.Now())
		}
	}
}

// detectOnce runs one failure-detector scan. At most one probe per
// remote is in flight (r.probing); probes run concurrently so one
// unresponsive worker never delays verdicts on the rest.
func (p *Pool) detectOnce(now time.Time) {
	p.mu.Lock()
	remotes := append([]*Remote(nil), p.remotes...)
	p.mu.Unlock()
	for _, r := range remotes {
		r.mu.Lock()
		if r.probing {
			r.mu.Unlock()
			continue
		}
		due := false
		switch r.state {
		case stateAlive:
			if r.registered {
				if now.Sub(r.lastBeat) > p.hbTimeout {
					r.state = stateSuspect
					r.probeFails = 0
					r.lastErr = "heartbeat timeout"
					r.nextProbe = now
					due = true
				}
			} else {
				due = r.nextProbe.IsZero() || !now.Before(r.nextProbe)
			}
		default:
			due = !now.Before(r.nextProbe)
		}
		if due {
			r.probing = true
		}
		r.mu.Unlock()
		if due {
			go func(r *Remote) {
				p.onProbe(r, p.probe(p.loopCtx, r))
			}(r)
		}
	}
}

// onProbe folds one probe verdict into r's lifecycle state.
func (p *Pool) onProbe(r *Remote, err error) {
	now := time.Now()
	rejoined := false
	r.mu.Lock()
	r.probing = false
	switch {
	case err == nil && now.Before(r.breakerUntil):
		// the worker answers but its breaker is still open: hold it out
		// of rotation until the cooldown elapses, then re-probe
		if r.state == stateSuspect || r.state == stateDead {
			r.state = stateProbing
		}
		r.nextProbe = r.breakerUntil
	case err == nil:
		rejoined = r.state != stateAlive
		r.state = stateAlive
		r.probeFails = 0
		r.lastErr = ""
		r.nextProbe = now.Add(jitterHalf(p.probeInterval))
		if r.registered {
			// a reachable registered worker counts as heard from, so a
			// recovered heartbeat path doesn't immediately re-suspect it
			r.lastBeat = now
		}
	default:
		r.probeFails++
		if r.state != stateDraining && r.state != stateDead {
			if r.probeFails >= p.deadAfter {
				r.state = stateDead
			} else {
				r.state = stateProbing
			}
		}
		r.lastErr = err.Error()
		r.nextProbe = now.Add(p.backoffFor(r.probeFails))
	}
	r.mu.Unlock()
	if rejoined {
		p.rejoins.Add(1)
	}
}

package shard

import (
	"fmt"

	"imdpp/internal/diffusion"
	"imdpp/internal/graph"
	"imdpp/internal/kg"
	"imdpp/internal/obs"
	"imdpp/internal/pin"
)

// Wire contract of the estimator RPC. The problem upload is the JSON
// image of everything the diffusion dynamics can observe — exactly the
// inputs service.HashProblem walks — so the content address is
// self-verifying: a worker recomputes the hash over its decoded copy
// and a mismatch (codec drift, corruption) is detected before a single
// sample is simulated. Seed groups, estimates and per-sample outcomes
// reuse the PR 3 wire types (diffusion.Seed, diffusion.SampleResult).

// RPC endpoint paths, mounted by Worker.Mount and dialled by Pool.
// The lifecycle paths (register/heartbeat/deregister, DESIGN.md §13)
// are mounted by the coordinator and dialled by workers — the reverse
// direction of the estimate RPCs.
const (
	PathProblems   = "/v1/shard/problems"
	PathEstimate   = "/v1/shard/estimate"
	PathRegister   = "/v1/shard/register"
	PathHeartbeat  = "/v1/shard/heartbeat"
	PathDeregister = "/v1/shard/deregister"
)

// Typed error codes carried in ErrorBody.Code.
const (
	// CodeUnknownProblem: the estimate referenced a problem hash the
	// worker does not hold (never uploaded, evicted, or the worker
	// restarted). The coordinator re-uploads and retries.
	CodeUnknownProblem = "unknown_problem"
	// CodeBadRequest: malformed payload or out-of-range fields.
	CodeBadRequest = "bad_request"
	// CodeHashMismatch: the uploaded problem decoded to a different
	// content address than the bytes imply — codec drift between
	// coordinator and worker builds.
	CodeHashMismatch = "hash_mismatch"
	// CodeDraining: the worker received SIGTERM and is finishing its
	// in-flight ranges; the coordinator re-plans without a strike.
	CodeDraining = "draining"
	// CodeUnknownWorker: a heartbeat or deregister named a URL the
	// coordinator has no registration for (e.g. the coordinator
	// restarted); the worker re-registers.
	CodeUnknownWorker = "unknown_worker"
)

// ErrorBody is the JSON error payload of every shard RPC failure.
type ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// ProblemUpload is the wire image of one diffusion.Problem.
type ProblemUpload struct {
	Users       int              `json:"users"`
	Items       int              `json:"items"`
	Graph       graph.Export     `json:"graph"`
	NumC        int              `json:"num_c"`
	InitWeights []float64        `json:"init_weights"`
	Rows        [][]pin.PairRel  `json:"rows"`
	Importance  []float64        `json:"importance"`
	BasePref    []float64        `json:"base_pref"` // row-major users×items
	Cost        []float64        `json:"cost"`      // row-major users×items
	Budget      float64          `json:"budget"`
	T           int              `json:"t"`
	Params      diffusion.Params `json:"params"`
}

// EncodeProblem builds the wire image of a problem. The slices are
// views of the problem's own storage (zero-copy); the image must be
// marshalled before the problem is mutated — which, for the immutable
// Problem, means never.
func EncodeProblem(p *diffusion.Problem) ProblemUpload {
	return ProblemUpload{
		Users:       p.NumUsers(),
		Items:       p.NumItems(),
		Graph:       p.G.Export(),
		NumC:        p.PIN.NumC(),
		InitWeights: p.PIN.InitWeights,
		Rows:        p.PIN.Rows(),
		Importance:  p.Importance,
		BasePref:    p.BasePref.Data(),
		Cost:        p.Cost.Data(),
		Budget:      p.Budget,
		T:           p.T,
		Params:      p.Params,
	}
}

// DecodeProblem reconstructs a Problem from its wire image. The social
// graph is imported CSR-exact; the PIN model is rebuilt from the
// merged relevance rows over a minimal items-only knowledge graph (the
// diffusion engine reads the KG only through |I|); the matrices wrap
// the decoded row-major data without copying. The result estimates —
// and content-hashes — bit-identically to the original problem; the
// caller should verify that with service.HashProblem.
func DecodeProblem(u ProblemUpload) (*diffusion.Problem, error) {
	if u.Users < 0 || u.Items < 0 {
		return nil, fmt.Errorf("shard: negative users/items %d/%d", u.Users, u.Items)
	}
	g, err := graph.Import(u.Graph)
	if err != nil {
		return nil, fmt.Errorf("shard: decode problem: %w", err)
	}
	if g.N() != u.Users {
		return nil, fmt.Errorf("shard: graph has %d vertices, upload says %d users", g.N(), u.Users)
	}
	kb := kg.NewBuilder()
	itemType := kb.NodeTypeID("ITEM")
	for i := 0; i < u.Items; i++ {
		kb.AddNode(itemType)
	}
	stub := kb.Build()
	model, err := pin.ModelFromRows(stub, u.NumC, u.InitWeights, u.Rows)
	if err != nil {
		return nil, fmt.Errorf("shard: decode problem: %w", err)
	}
	if len(u.BasePref) != u.Users*u.Items || len(u.Cost) != u.Users*u.Items {
		return nil, fmt.Errorf("shard: matrix data %d/%d != %d users × %d items",
			len(u.BasePref), len(u.Cost), u.Users, u.Items)
	}
	cols := u.Items
	if cols == 0 {
		cols = 1 // MatrixFrom needs cols > 0; the matrices are empty anyway
	}
	p := &diffusion.Problem{
		G:          g,
		KG:         stub,
		PIN:        model,
		Importance: u.Importance,
		BasePref:   diffusion.MatrixFrom(u.BasePref, cols),
		Cost:       diffusion.MatrixFrom(u.Cost, cols),
		Budget:     u.Budget,
		T:          u.T,
		Params:     u.Params,
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("shard: decoded problem invalid: %w", err)
	}
	return p, nil
}

// UploadResponse acknowledges a problem upload with the content
// address the worker computed over its decoded copy.
type UploadResponse struct {
	Hash string `json:"hash"`
}

// EstimateRequest asks a worker for the raw outcomes of the global
// samples [Lo, Hi) of every group, under the referenced problem.
// Masks are shipped as sorted user-id lists: nil means all users, an
// explicit list means exactly those users (an empty non-nil list is a
// legal all-false mask). PerGroupMasks, when non-nil, overrides Market
// entry-by-entry.
type EstimateRequest struct {
	Problem string `json:"problem"` // service.Key hex form
	Seed    uint64 `json:"seed"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	WithPi  bool   `json:"with_pi,omitempty"`
	// No omitempty on the mask fields: an empty non-nil mask (legal,
	// all-false) must stay distinguishable from nil (all users) across
	// the wire — omitempty would collapse both to absent.
	Groups        [][]diffusion.Seed `json:"groups"`
	Market        []int32            `json:"market"`
	PerGroupMasks [][]int32          `json:"masks"`
	// TraceID/SpanID propagate the coordinator's trace context
	// (DESIGN.md §11) so worker spans join the coordinator's trace.
	// Zero means untraced, and omitempty keeps pre-tracing JSON bodies
	// byte-identical; on the binary frame the pair rides behind the
	// flagTraced bit. Tracing never affects sample content — an old
	// worker may ignore these fields entirely.
	TraceID obs.ID `json:"trace_id,omitempty"`
	SpanID  obs.ID `json:"span_id,omitempty"`
}

// EstimateResponse carries the per-sample outcomes: Samples[g][i-Lo]
// is global sample i of group g.
type EstimateResponse struct {
	Samples [][]diffusion.SampleResult `json:"samples"`
	// Spans are the worker-side span records for a traced request,
	// adopted into the coordinator's trace. Only populated when the
	// request carried a trace id, so old coordinators never see them.
	Spans []obs.SpanRec `json:"spans,omitempty"`
}

// maskToUsers flattens a membership mask into a sorted user-id list
// (nil in, nil out).
func maskToUsers(mask []bool) []int32 {
	if mask == nil {
		return nil
	}
	out := make([]int32, 0, 32)
	for u, in := range mask {
		if in {
			out = append(out, int32(u))
		}
	}
	return out
}

// usersToMask rebuilds a membership mask over n users (nil in, nil
// out), rejecting out-of-range ids.
func usersToMask(users []int32, n int) ([]bool, error) {
	if users == nil {
		return nil, nil
	}
	mask := make([]bool, n)
	for _, u := range users {
		if int(u) < 0 || int(u) >= n {
			return nil, fmt.Errorf("shard: mask user %d out of range n=%d", u, n)
		}
		mask[u] = true
	}
	return mask, nil
}

package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"imdpp/internal/diffusion"
	"imdpp/internal/obs"
	"imdpp/internal/service"
)

// Pool is the coordinator-side worker registry: the set of remote
// estimator workers, their health and measured throughput, which
// problems each has been sent, the wire-codec negotiation state, and
// the dispatch/retry/failover logic. All methods are safe for
// concurrent use.
//
// Failure handling leans entirely on determinism: a shard is a pure
// function of (problem hash, seed, range, groups), so re-dispatching
// it to any other worker — or computing it locally, or racing a
// speculative duplicate against a straggler — after a failure is
// idempotent by construction. No shard needs fencing, draining or
// exactly-once delivery.
type Pool struct {
	client *http.Client

	mu      sync.Mutex
	remotes []*Remote
	blobs   map[*diffusion.Problem]*ProblemBlob // bounded memo, see blobFor
	blobLRU []*diffusion.Problem

	stopOnce sync.Once
	stop     chan struct{}
	loopCtx  context.Context // cancelled by Close; bounds detector probes
	loopStop context.CancelFunc

	// Failure-detector and lifecycle knobs (DESIGN.md §13; fixed after
	// NewPool/StartHealthLoop except in tests).
	probeInterval   time.Duration // routine probe cadence for alive static-list workers
	probeBase       time.Duration // first backoff step after a failure
	probeCap        time.Duration // backoff ceiling (dead workers retry at most this often)
	deadAfter       int           // consecutive probe failures before suspect → dead
	hbInterval      time.Duration // heartbeat cadence dictated to registering workers
	hbTimeout       time.Duration // silence beyond this marks a registered worker suspect
	breakerTrip     int           // consecutive dispatch failures that open the breaker
	breakerCooldown time.Duration // dispatch shed window once the breaker opens

	heartbeats atomic.Uint64
	rejoins    atomic.Uint64

	// binary selects the DESIGN.md §8 wire codec (default true; JSON
	// when false). weighted enables throughput-proportional planning,
	// speculate the straggler re-dispatch; both default true and are
	// result-invariant (§7), so flipping them is an ops decision, not
	// a correctness one.
	binary    atomic.Bool
	weighted  atomic.Bool
	speculate atomic.Bool

	// Straggler detection knobs (fixed after NewPool except in tests):
	// a shard is a straggler once its elapsed time exceeds
	// specFactor × the median latency of completed shards (floored at
	// specMin), checked every specTick.
	specFactor float64
	specMin    time.Duration
	specTick   time.Duration

	redispatches    atomic.Uint64
	localFallbacks  atomic.Uint64
	speculativeHits atomic.Uint64
	bytesTx         atomic.Uint64
	bytesRx         atomic.Uint64

	// rpcHist records successful shard-RPC round-trip latency, the
	// latency.shard_rpc block of the daemon's /metrics (DESIGN.md §11).
	rpcHist *obs.Histogram
	logger  *slog.Logger
}

// Remote codec-negotiation states: a remote starts codecUnknown, is
// confirmed binary-capable by its first successful binary RPC, and is
// pinned to JSON (until re-registration) when a binary request comes
// back undecodable — the mixed-version fleet fallback.
const (
	codecUnknown int32 = iota
	codecBinaryOK
	codecJSONOnly
)

// Remote trace-propagation states, the flagTraced analogue of the
// codec negotiation: a remote starts traceUnknown, is confirmed by its
// first successful traced binary RPC, and is pinned to untraced
// dispatch when it rejects a traced frame as undecodable — an
// old-binary worker build keeps serving samples, it just contributes
// no spans (graceful mixed-version degradation, DESIGN.md §11).
const (
	traceUnknown int32 = iota
	traceSupported
	traceUnsupported
)

// Remote is one registered worker: its lifecycle state (lifecycle.go),
// negotiated wire capabilities, acknowledged problem uploads and
// dispatch accounting.
type Remote struct {
	url string

	mu       sync.Mutex
	state    remoteState
	lastErr  string
	problems map[service.Key]bool // uploads acknowledged by this worker

	// Lifecycle bookkeeping (guarded by mu; see lifecycle.go).
	registered   bool       // announced itself via the register RPC
	caps         WorkerCaps // capability advertisement at registration
	lastBeat     time.Time  // last heartbeat (or successful probe) seen
	probeFails   int        // consecutive failure-detector probe failures
	nextProbe    time.Time  // when the failure detector probes next
	probing      bool       // a probe is in flight
	strikes      int        // consecutive dispatch failures (breaker input)
	breakerUntil time.Time  // circuit breaker open until (zero = closed)

	shards    atomic.Uint64
	failures  atomic.Uint64
	binMode   atomic.Int32  // codecUnknown | codecBinaryOK | codecJSONOnly
	traceMode atomic.Int32  // traceUnknown | traceSupported | traceUnsupported
	inflight  atomic.Int32  // shard RPCs currently outstanding
	ewmaBits  atomic.Uint64 // float64 bits of the samples/sec EWMA (0 = no data)
}

// URL returns the worker's base URL.
func (r *Remote) URL() string { return r.url }

// Healthy reports whether the worker is in rotation (lifecycle state
// alive). Suspect, probing, dead and draining workers all report
// unhealthy; dispatch additionally requires a closed circuit breaker
// (dispatchable, lifecycle.go).
func (r *Remote) Healthy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state == stateAlive
}

// knowsProblem reports whether this worker acknowledged an upload of
// key.
func (r *Remote) knowsProblem(key service.Key) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.problems[key]
}

func (r *Remote) setProblem(key service.Key, known bool) {
	r.mu.Lock()
	if known {
		r.problems[key] = true
	} else {
		delete(r.problems, key)
	}
	r.mu.Unlock()
}

// ewmaAlpha weights the newest shard's observed rate; ~0.3 reacts to
// real speed changes within a few shards without thrashing the plan on
// one noisy measurement.
const ewmaAlpha = 0.3

// observeRate folds one completed shard's throughput into the remote's
// samples/sec EWMA.
func (r *Remote) observeRate(samples int, elapsed time.Duration) {
	if samples <= 0 || elapsed <= 0 {
		return
	}
	rate := float64(samples) / elapsed.Seconds()
	if math.IsInf(rate, 0) || math.IsNaN(rate) {
		return
	}
	for {
		oldBits := r.ewmaBits.Load()
		next := rate
		if oldBits != 0 {
			next = ewmaAlpha*rate + (1-ewmaAlpha)*math.Float64frombits(oldBits)
		}
		if r.ewmaBits.CompareAndSwap(oldBits, math.Float64bits(next)) {
			return
		}
	}
}

// EWMASamplesPerSec returns the remote's measured throughput EWMA, or
// 0 when no shard has completed on it yet.
func (r *Remote) EWMASamplesPerSec() float64 {
	return math.Float64frombits(r.ewmaBits.Load())
}

// NewPool registers the workers at the given base URLs (e.g.
// "http://10.0.0.7:8081"). Workers start optimistically healthy; the
// first failed dispatch or health probe takes a dead one out of
// rotation, and later probes bring recovered workers back. Call Check
// once at startup to verify the fleet, and StartHealthLoop for
// continuous probing.
//
// The pool defaults to the binary wire codec, throughput-weighted
// planning and speculative straggler re-dispatch — all three are
// result-invariant (DESIGN.md §7/§8); SetCodec, SetWeighted and
// SetSpeculation opt out.
//
// client nil selects a default with a 10-minute per-request ceiling —
// a liveness guard so a worker that accepts a shard and then hangs
// forever is eventually classified as failed and its range
// re-dispatched, rather than stalling the solve. Deployments whose
// individual shard estimates legitimately run longer must pass their
// own client with a larger (or zero) Timeout, or estimates will be
// misclassified as worker failures and the batch will fall back to
// local compute (visible as local_fallbacks in PoolStats).
func NewPool(urls []string, client *http.Client) *Pool {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Minute}
	}
	p := &Pool{
		client:     client,
		blobs:      make(map[*diffusion.Problem]*ProblemBlob),
		stop:       make(chan struct{}),
		specFactor: 2.0,
		specMin:    25 * time.Millisecond,
		specTick:   5 * time.Millisecond,

		probeInterval:   5 * time.Second,
		probeBase:       250 * time.Millisecond,
		probeCap:        5 * time.Second,
		deadAfter:       4,
		hbInterval:      2 * time.Second,
		hbTimeout:       6 * time.Second,
		breakerTrip:     3,
		breakerCooldown: 10 * time.Second,

		rpcHist: obs.NewHistogram(),
		logger:  slog.New(slog.DiscardHandler),
	}
	p.loopCtx, p.loopStop = context.WithCancel(context.Background())
	p.binary.Store(true)
	p.weighted.Store(true)
	p.speculate.Store(true)
	for _, u := range urls {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		p.remotes = append(p.remotes, &Remote{
			url:      u, // static-list workers start alive (zero state)
			problems: make(map[service.Key]bool),
		})
	}
	return p
}

// SetHeartbeat sets the heartbeat cadence dictated to registering
// workers; a registered worker silent for three beats is suspected.
// Call during setup, before StartHealthLoop.
func (p *Pool) SetHeartbeat(d time.Duration) {
	if d <= 0 {
		return
	}
	p.hbInterval = d
	p.hbTimeout = 3 * d
}

// SetCodec selects the shard wire codec: "binary" (default) or "json".
func (p *Pool) SetCodec(name string) error {
	switch name {
	case "binary":
		p.binary.Store(true)
	case "json":
		p.binary.Store(false)
	default:
		return fmt.Errorf("shard: unknown codec %q (want binary|json)", name)
	}
	return nil
}

// Codec reports the configured wire codec name.
func (p *Pool) Codec() string {
	if p.binary.Load() {
		return "binary"
	}
	return "json"
}

// SetLogger routes the pool's structured dispatch logs (worker
// failures, codec and trace demotions) to l; nil restores discard.
// Call during setup, before any dispatch.
func (p *Pool) SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.DiscardHandler)
	}
	p.logger = l
}

// RPCLatency snapshots the shard-RPC latency histogram.
func (p *Pool) RPCLatency() obs.HistStats { return p.rpcHist.Stats() }

// SetWeighted toggles throughput-proportional shard planning.
func (p *Pool) SetWeighted(on bool) { p.weighted.Store(on) }

// SetSpeculation toggles speculative straggler re-dispatch.
func (p *Pool) SetSpeculation(on bool) { p.speculate.Store(on) }

// Size returns the number of registered workers.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.remotes)
}

// healthyRemotes snapshots the workers currently accepting dispatches:
// alive with a closed circuit breaker.
func (p *Pool) healthyRemotes() []*Remote {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Remote, 0, len(p.remotes))
	for _, r := range p.remotes {
		if r.dispatchable() {
			out = append(out, r)
		}
	}
	return out
}

// Check probes every worker's /healthz concurrently (one slow or dead
// worker must not delay the rest — a fleet-wide check costs one probe
// timeout, not one per casualty), feeding each verdict through the
// lifecycle state machine: dead workers leave rotation, recovered ones
// rejoin. It returns the healthy count.
func (p *Pool) Check(ctx context.Context) int {
	p.mu.Lock()
	remotes := append([]*Remote(nil), p.remotes...)
	p.mu.Unlock()
	var wg sync.WaitGroup
	for _, r := range remotes {
		r.mu.Lock()
		if r.probing {
			r.mu.Unlock()
			continue // the failure detector already has a verdict coming
		}
		r.probing = true
		r.mu.Unlock()
		wg.Add(1)
		go func(r *Remote) {
			defer wg.Done()
			p.onProbe(r, p.probe(ctx, r))
		}(r)
	}
	wg.Wait()
	healthy := 0
	for _, r := range remotes {
		if r.Healthy() {
			healthy++
		}
	}
	return healthy
}

func (p *Pool) probe(ctx context.Context, r *Remote) error {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

// StartHealthLoop starts the failure detector (lifecycle.go) until
// Close. interval is the routine probe cadence for alive static-list
// workers and the backoff ceiling for down ones: a worker that died
// mid-batch is already out of rotation (markFailed) and is re-probed
// on a jittered exponential backoff — fast first retries, bounded by
// interval — so restarted workers rejoin without operator action
// (their problem store is re-filled lazily through the unknown_problem
// path) and a recovering worker is never hammered in lockstep.
// Registered workers are watched through their heartbeats instead.
func (p *Pool) StartHealthLoop(interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	p.probeInterval = interval
	p.probeCap = interval
	if p.probeBase > p.probeCap {
		p.probeBase = p.probeCap
	}
	go p.detectLoop()
}

// Close stops the failure detector and cancels its in-flight probes.
// In-flight dispatches are unaffected.
func (p *Pool) Close() {
	p.stopOnce.Do(func() {
		close(p.stop)
		p.loopStop()
	})
}

// RemoteStats is one worker's registry entry in PoolStats.
type RemoteStats struct {
	URL string `json:"url"`
	// State is the lifecycle state (alive|suspect|probing|dead|
	// draining, DESIGN.md §13); Healthy is its state == "alive"
	// projection, kept for pre-fleet scrapers.
	State   string `json:"state"`
	Healthy bool   `json:"healthy"`
	// Registered marks workers that announced themselves via the
	// register RPC (vs the static -shard-workers list); Capacity echoes
	// their advertised concurrency hint.
	Registered bool `json:"registered,omitempty"`
	Capacity   int  `json:"capacity,omitempty"`
	// Codec is the per-remote negotiated wire codec: "binary" or
	// "json" once settled (at registration, or by the first RPC for
	// static-list workers), "unknown" before.
	Codec string `json:"codec"`
	// BreakerOpen reports an open circuit breaker: the worker is shed
	// from dispatch for the cooldown even if probes pass.
	BreakerOpen bool   `json:"breaker_open,omitempty"`
	LastErr     string `json:"last_err,omitempty"`
	Shards      uint64 `json:"shards"`
	// EWMASamplesPerSec is the measured per-worker throughput the
	// weighted planner sizes ranges by; 0 until a shard completes.
	EWMASamplesPerSec float64 `json:"ewma_samples_per_sec"`
	Failures          uint64  `json:"failures"`
	Problems          int     `json:"problems"`
}

// FleetStats aggregates the lifecycle registry (DESIGN.md §13): the
// /metrics shard.fleet block.
type FleetStats struct {
	// Registered counts workers that announced themselves via the
	// register RPC (static-list workers are in Workers but not here).
	Registered int `json:"registered"`
	// Draining/Suspect/Dead count remotes per lifecycle state (suspect
	// includes actively-probed suspects).
	Draining int `json:"draining"`
	Suspect  int `json:"suspect"`
	Dead     int `json:"dead"`
	// Heartbeats counts beats accepted; RejoinCount counts transitions
	// back into rotation (probe recovery, heartbeat recovery, or
	// re-registration after a restart).
	Heartbeats  uint64 `json:"heartbeats"`
	BreakerOpen int    `json:"breaker_open"`
	RejoinCount uint64 `json:"rejoin_count"`
}

// PoolStats is the registry snapshot the coordinator daemon reports
// under /metrics ("worker-pool depth": Workers registered, Healthy in
// rotation).
type PoolStats struct {
	Workers int `json:"workers"`
	Healthy int `json:"healthy"`
	// Codec/Weighted/Speculation echo the pool's configuration so a
	// metrics scrape (and the bench trajectory built from it) records
	// which wire and planning mode produced the numbers.
	Codec           string        `json:"codec"`
	Weighted        bool          `json:"weighted"`
	Speculation     bool          `json:"speculation"`
	Redispatches    uint64        `json:"redispatches"`
	LocalFallbacks  uint64        `json:"local_fallbacks"`
	SpeculativeHits uint64        `json:"speculative_hits"`
	BytesTx         uint64        `json:"bytes_tx"`
	BytesRx         uint64        `json:"bytes_rx"`
	Fleet           FleetStats    `json:"fleet"`
	Remotes         []RemoteStats `json:"remotes"`
}

// Snapshot reports the pool's registry state and dispatch counters.
func (p *Pool) Snapshot() PoolStats {
	p.mu.Lock()
	remotes := append([]*Remote(nil), p.remotes...)
	p.mu.Unlock()
	st := PoolStats{
		Workers:         len(remotes),
		Codec:           p.Codec(),
		Weighted:        p.weighted.Load(),
		Speculation:     p.speculate.Load(),
		Redispatches:    p.redispatches.Load(),
		LocalFallbacks:  p.localFallbacks.Load(),
		SpeculativeHits: p.speculativeHits.Load(),
		BytesTx:         p.bytesTx.Load(),
		BytesRx:         p.bytesRx.Load(),
	}
	st.Fleet.Heartbeats = p.heartbeats.Load()
	st.Fleet.RejoinCount = p.rejoins.Load()
	now := time.Now()
	for _, r := range remotes {
		r.mu.Lock()
		rs := RemoteStats{
			URL:         r.url,
			State:       r.state.String(),
			Healthy:     r.state == stateAlive,
			Registered:  r.registered,
			Capacity:    r.caps.Capacity,
			BreakerOpen: now.Before(r.breakerUntil),
			LastErr:     r.lastErr,
			Problems:    len(r.problems),
		}
		switch r.state {
		case stateDraining:
			st.Fleet.Draining++
		case stateSuspect, stateProbing:
			st.Fleet.Suspect++
		case stateDead:
			st.Fleet.Dead++
		}
		if r.registered {
			st.Fleet.Registered++
		}
		r.mu.Unlock()
		switch r.binMode.Load() {
		case codecBinaryOK:
			rs.Codec = "binary"
		case codecJSONOnly:
			rs.Codec = "json"
		default:
			rs.Codec = "unknown"
		}
		if rs.BreakerOpen {
			st.Fleet.BreakerOpen++
		}
		rs.Shards = r.shards.Load()
		rs.Failures = r.failures.Load()
		rs.EWMASamplesPerSec = r.EWMASamplesPerSec()
		if rs.Healthy {
			st.Healthy++
		}
		st.Remotes = append(st.Remotes, rs)
	}
	return st
}

// ProblemBlob is a problem encoded once per codec, with its content
// address. Uploading the same blob to every worker (and re-uploading
// after worker restarts) reuses the bytes; the JSON and binary images
// are built lazily so a single-codec fleet never pays for the other.
type ProblemBlob struct {
	Key    service.Key
	upload ProblemUpload

	jsonOnce sync.Once
	jsonBody []byte
	jsonErr  error

	binOnce sync.Once
	binBody []byte
}

// NewProblemBlob captures a problem's wire image and content address.
func NewProblemBlob(p *diffusion.Problem) (*ProblemBlob, error) {
	return &ProblemBlob{Key: service.HashProblem(p), upload: EncodeProblem(p)}, nil
}

// body returns the upload bytes in the requested codec plus their
// content type.
func (b *ProblemBlob) body(binary bool) ([]byte, string, error) {
	if binary {
		b.binOnce.Do(func() { b.binBody = b.upload.AppendBinary(nil) })
		return b.binBody, ContentTypeBinary, nil
	}
	b.jsonOnce.Do(func() { b.jsonBody, b.jsonErr = json.Marshal(b.upload) })
	if b.jsonErr != nil {
		return nil, "", fmt.Errorf("shard: encode problem: %w", b.jsonErr)
	}
	return b.jsonBody, "application/json", nil
}

// blobFor memoizes NewProblemBlob per problem pointer. A solver run
// creates two estimators (MC and MCSI) over one problem; the memo
// makes them share one encoding. The memo is bounded: problems are
// immutable but short-lived (one per solve request), so a small
// FIFO window suffices.
func (p *Pool) blobFor(prob *diffusion.Problem) (*ProblemBlob, error) {
	p.mu.Lock()
	if b, ok := p.blobs[prob]; ok {
		p.mu.Unlock()
		return b, nil
	}
	p.mu.Unlock()
	b, err := NewProblemBlob(prob)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if _, ok := p.blobs[prob]; !ok {
		p.blobs[prob] = b
		p.blobLRU = append(p.blobLRU, prob)
		for len(p.blobLRU) > 4 {
			delete(p.blobs, p.blobLRU[0])
			p.blobLRU = p.blobLRU[1:]
		}
	}
	p.mu.Unlock()
	return b, nil
}

// shardError is a dispatch failure with the worker's typed code.
type shardError struct {
	status int
	code   string
	msg    string
}

func (e *shardError) Error() string {
	return fmt.Sprintf("shard rpc: status %d code %q: %s", e.status, e.code, e.msg)
}

// Pooled scratch for RPC bodies (requests encoded, responses read).
// Buffers above recycleMax are dropped instead of pooled so one huge
// grid does not pin its footprint forever.
const recycleMax = 4 << 20

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b == nil || b.Cap() > recycleMax {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

var scratchPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getScratch() *[]byte { return scratchPool.Get().(*[]byte) }

func putScratch(b *[]byte, used []byte) {
	// keep a grown backing array for reuse, unless it ballooned
	if cap(used) > cap(*b) {
		*b = used[:0]
	}
	if cap(*b) > recycleMax {
		return
	}
	scratchPool.Put(b)
}

// post sends one RPC and returns the full response body (in a pooled
// buffer the caller must release with putBuf) plus its content type.
// The body is always drained to EOF — on error paths too — so the
// transport can reuse the connection instead of tearing it down and
// re-dialling under retry; tx/rx bytes feed the pool counters.
func (p *Pool) post(ctx context.Context, url, contentType string, body []byte, acceptBinary bool) (*bytes.Buffer, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", contentType)
	if acceptBinary {
		req.Header.Set("Accept", ContentTypeBinary)
	}
	p.bytesTx.Add(uint64(len(body)))
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, "", err
	}
	// the largest legal response is one max-payload frame plus its
	// header; reading one byte past that distinguishes "right at the
	// bound" from "too large" without ever buffering more
	const maxResp = maxFramePayload + frameHeaderLen
	buf := getBuf()
	n, readErr := io.Copy(buf, io.LimitReader(resp.Body, maxResp+1))
	if n <= maxResp {
		// drain the (empty or tiny) remainder so the transport reuses
		// the connection; an oversized body skips this — discarding the
		// connection is cheaper than swallowing gigabytes
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	}
	resp.Body.Close()
	p.bytesRx.Add(uint64(n))
	if readErr != nil {
		putBuf(buf)
		return nil, "", readErr
	}
	if n > maxResp {
		putBuf(buf)
		return nil, "", fmt.Errorf("shard: response exceeds the %d-byte frame bound", maxResp)
	}
	if resp.StatusCode != http.StatusOK {
		var eb ErrorBody
		data := buf.Bytes()
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		_ = json.Unmarshal(data, &eb)
		if eb.Error == "" {
			eb.Error = strings.TrimSpace(string(data))
		}
		putBuf(buf)
		return nil, "", &shardError{status: resp.StatusCode, code: eb.Code, msg: eb.Error}
	}
	return buf, resp.Header.Get("Content-Type"), nil
}

// isBinaryContentType matches the shard binary media type, ignoring
// parameters.
func isBinaryContentType(ct string) bool {
	return strings.HasPrefix(strings.TrimSpace(ct), ContentTypeBinary)
}

// codecFallback reports whether err from a binary-encoded RPC to r
// should demote the remote to JSON and retry: the remote never
// confirmed binary support and rejected the request as undecodable —
// the signature of a pre-§8 worker build.
func codecFallback(r *Remote, err error) bool {
	if r.binMode.Load() != codecUnknown {
		return false
	}
	return undecodableErr(err)
}

// traceFallback reports whether err from a traced binary RPC to r
// should strip trace propagation and retry: the remote never confirmed
// flagTraced support and rejected the frame as undecodable — the
// signature of an old-binary worker build that predates tracing. It is
// checked before codecFallback, so a mixed-version fleet first loses
// the spans, then (if still rejected) the binary codec.
func traceFallback(r *Remote, err error) bool {
	if r.traceMode.Load() != traceUnknown {
		return false
	}
	return undecodableErr(err)
}

// undecodableErr matches the two statuses a worker returns for a
// request body it cannot decode.
func undecodableErr(err error) bool {
	var se *shardError
	if !errors.As(err, &se) {
		return false
	}
	return se.status == http.StatusBadRequest || se.status == http.StatusUnsupportedMediaType
}

// ensureProblem uploads blob to r unless r already acknowledged it,
// verifying the worker-computed content address against the local one.
// The upload codec follows the pool setting with the mixed-version
// JSON fallback.
func (p *Pool) ensureProblem(ctx context.Context, r *Remote, blob *ProblemBlob) error {
	if r.knowsProblem(blob.Key) {
		return nil
	}
	for {
		useBin := p.binary.Load() && r.binMode.Load() != codecJSONOnly
		body, ct, err := blob.body(useBin)
		if err != nil {
			return err
		}
		buf, _, err := p.post(ctx, r.url+PathProblems, ct, body, false)
		if err != nil {
			if useBin && codecFallback(r, err) {
				r.binMode.Store(codecJSONOnly)
				continue
			}
			return err
		}
		var ack UploadResponse
		err = json.Unmarshal(buf.Bytes(), &ack)
		putBuf(buf)
		if err != nil {
			return fmt.Errorf("shard: decode upload ack: %w", err)
		}
		if ack.Hash != blob.Key.String() {
			// the worker decoded different content than we encoded — a
			// build-skew bug, not a transient fault; surface it loudly
			return &shardError{status: http.StatusConflict, code: CodeHashMismatch,
				msg: fmt.Sprintf("worker hashed %s, coordinator %s", ack.Hash, blob.Key)}
		}
		if useBin {
			r.binMode.Store(codecBinaryOK)
		}
		r.setProblem(blob.Key, true)
		return nil
	}
}

// estimateOn runs one shard request on one worker, handling the
// lazy-upload, evicted/restarted-worker (unknown_problem) and
// mixed-version codec-fallback paths, and folds the observed
// throughput into the remote's EWMA.
func (p *Pool) estimateOn(ctx context.Context, r *Remote, blob *ProblemBlob, req *EstimateRequest) (*EstimateResponse, error) {
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	// one span per RPC attempt chain, joined to the batch span riding
	// ctx; nil when untraced. req is shared across failover and
	// speculative dispatch, so the trace ids go on a private copy.
	sp := obs.StartSpan(ctx, "shard_rpc")
	defer sp.End()
	sp.SetAttr("worker", r.url)
	sp.SetAttrInt("lo", int64(req.Lo))
	sp.SetAttrInt("hi", int64(req.Hi))
	reuploaded, demoted, traceDemoted := false, false, false
	for {
		if err := p.ensureProblem(ctx, r, blob); err != nil {
			return nil, err
		}
		useBin := p.binary.Load() && r.binMode.Load() != codecJSONOnly
		use := *req
		if sp != nil && !(useBin && r.traceMode.Load() == traceUnsupported) {
			// JSON carries the trace ids harmlessly — unknown fields to an
			// old worker — so only the binary flagTraced path needs the
			// negotiated opt-out
			use.TraceID = sp.TraceID()
			use.SpanID = sp.SpanID()
		}
		var body []byte
		var ct string
		var scratch *[]byte
		if useBin {
			scratch = getScratch()
			var err error
			body, err = use.AppendBinary((*scratch)[:0])
			if err != nil {
				putScratch(scratch, body)
				return nil, err
			}
			ct = ContentTypeBinary
		} else {
			var err error
			if body, err = json.Marshal(&use); err != nil {
				return nil, err
			}
			ct = "application/json"
		}
		start := time.Now()
		buf, respCT, err := p.post(ctx, r.url+PathEstimate, ct, body, useBin)
		if scratch != nil {
			putScratch(scratch, body)
		}
		if err == nil {
			var resp EstimateResponse
			if isBinaryContentType(respCT) {
				resp, err = DecodeEstimateResponseBinary(buf.Bytes())
			} else {
				err = json.Unmarshal(buf.Bytes(), &resp)
			}
			putBuf(buf)
			if err != nil {
				return nil, fmt.Errorf("shard: decode estimate response: %w", err)
			}
			if useBin {
				r.binMode.Store(codecBinaryOK)
				if use.TraceID != 0 {
					r.traceMode.Store(traceSupported)
				}
			}
			r.shards.Add(1)
			r.dispatchOK()
			p.rpcHist.Observe(time.Since(start))
			sp.Adopt(resp.Spans)
			r.observeRate(len(req.Groups)*(req.Hi-req.Lo), time.Since(start))
			return &resp, nil
		}
		var se *shardError
		switch {
		case !reuploaded && errors.As(err, &se) && se.code == CodeUnknownProblem:
			// the worker evicted or lost the problem (e.g. restart):
			// forget the acknowledgement and re-upload once
			reuploaded = true
			r.setProblem(blob.Key, false)
			continue
		case useBin && use.TraceID != 0 && !traceDemoted && traceFallback(r, err):
			// old-binary worker build that predates flagTraced: keep the
			// binary codec, stop propagating trace ids to this worker
			traceDemoted = true
			r.traceMode.Store(traceUnsupported)
			p.logger.Info("shard trace propagation disabled for worker", "worker", r.url)
			continue
		case useBin && !demoted && codecFallback(r, err):
			// pre-binary worker build: pin it to JSON and retry once
			demoted = true
			r.binMode.Store(codecJSONOnly)
			p.logger.Info("shard codec demoted to json for worker", "worker", r.url)
			continue
		}
		sp.SetAttr("error", err.Error())
		return nil, err
	}
}

// runShard computes one sample range, trying the preferred worker
// first and failing over across the rest of the given rotation. A
// worker failure marks it unhealthy (a health probe restores it
// later); cancellation aborts without blaming any worker. It returns
// nil when every worker failed — the caller falls back to computing
// the range locally.
func (p *Pool) runShard(ctx context.Context, remotes []*Remote, preferred int, blob *ProblemBlob, req *EstimateRequest, items int) [][]diffusion.SampleResult {
	n := len(remotes)
	for i := 0; i < n; i++ {
		r := remotes[(preferred+i)%n]
		if ctx.Err() != nil {
			return nil
		}
		if !r.dispatchable() {
			continue
		}
		rows := p.tryShardOn(ctx, r, blob, req, items)
		if rows != nil {
			return rows
		}
		if ctx.Err() != nil {
			return nil
		}
		if i < n-1 {
			p.redispatches.Add(1)
		}
	}
	return nil
}

// tryShardOn runs one shard request against one specific worker,
// marking it failed (and returning nil) on any non-cancellation error.
// The speculative re-dispatch path uses it directly: a duplicate is a
// single extra attempt on a chosen idle worker, never a failover chain
// of its own — the primary dispatch remains the range's guarantor.
func (p *Pool) tryShardOn(ctx context.Context, r *Remote, blob *ProblemBlob, req *EstimateRequest, items int) [][]diffusion.SampleResult {
	resp, err := p.estimateOn(ctx, r, blob, req)
	if err == nil {
		err = validateSamples(resp.Samples, req, items)
		if err == nil {
			return resp.Samples
		}
	}
	if ctx.Err() != nil {
		return nil // cancelled mid-request: not the worker's fault
	}
	var se *shardError
	if errors.As(err, &se) && se.code == CodeDraining {
		// a graceful goodbye, not a failure: take the worker out of
		// rotation without a strike and let failover re-plan the range
		p.markDraining(r)
		p.logger.Info("shard worker draining", "worker", r.url)
		return nil
	}
	p.markFailed(r, err)
	p.logger.Warn("shard worker failed", "worker", r.url, "err", err)
	return nil
}

// validateSamples sanity-checks a worker response shape so a buggy or
// hostile worker cannot panic the coordinator's reduction.
func validateSamples(samples [][]diffusion.SampleResult, req *EstimateRequest, items int) error {
	if len(samples) != len(req.Groups) {
		return fmt.Errorf("shard: %d sample rows for %d groups", len(samples), len(req.Groups))
	}
	span := req.Hi - req.Lo
	for g, row := range samples {
		if len(row) != span {
			return fmt.Errorf("shard: group %d: %d samples for range span %d", g, len(row), span)
		}
		for i := range row {
			if len(row[i].Items) != len(row[i].Counts) {
				return fmt.Errorf("shard: group %d sample %d: items/counts length mismatch", g, i)
			}
			for _, it := range row[i].Items {
				if int(it) < 0 || int(it) >= items {
					return fmt.Errorf("shard: group %d sample %d: item %d out of range", g, i, it)
				}
			}
		}
	}
	return nil
}

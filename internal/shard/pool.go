package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"imdpp/internal/diffusion"
	"imdpp/internal/service"
)

// Pool is the coordinator-side worker registry: the set of remote
// estimator workers, their health, which problems each has been sent,
// and the dispatch/retry/failover logic. All methods are safe for
// concurrent use.
//
// Failure handling leans entirely on determinism: a shard is a pure
// function of (problem hash, seed, range, groups), so re-dispatching
// it to any other worker — or computing it locally — after a failure
// is idempotent by construction. No shard needs fencing, draining or
// exactly-once delivery.
type Pool struct {
	client *http.Client

	mu      sync.Mutex
	remotes []*Remote
	blobs   map[*diffusion.Problem]*ProblemBlob // bounded memo, see blobFor
	blobLRU []*diffusion.Problem

	stopOnce sync.Once
	stop     chan struct{}

	redispatches   atomic.Uint64
	localFallbacks atomic.Uint64
}

// Remote is one registered worker.
type Remote struct {
	url string

	mu       sync.Mutex
	healthy  bool
	lastErr  string
	problems map[service.Key]bool // uploads acknowledged by this worker

	shards   atomic.Uint64
	failures atomic.Uint64
}

// URL returns the worker's base URL.
func (r *Remote) URL() string { return r.url }

// Healthy reports the worker's last known health.
func (r *Remote) Healthy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthy
}

func (r *Remote) setHealth(ok bool, err error) {
	r.mu.Lock()
	r.healthy = ok
	if err != nil {
		r.lastErr = err.Error()
	} else if ok {
		r.lastErr = ""
	}
	r.mu.Unlock()
}

// markFailed records a dispatch failure and takes the worker out of
// rotation until a health probe restores it.
func (r *Remote) markFailed(err error) {
	r.failures.Add(1)
	r.setHealth(false, err)
}

// knowsProblem reports whether this worker acknowledged an upload of
// key.
func (r *Remote) knowsProblem(key service.Key) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.problems[key]
}

func (r *Remote) setProblem(key service.Key, known bool) {
	r.mu.Lock()
	if known {
		r.problems[key] = true
	} else {
		delete(r.problems, key)
	}
	r.mu.Unlock()
}

// NewPool registers the workers at the given base URLs (e.g.
// "http://10.0.0.7:8081"). Workers start optimistically healthy; the
// first failed dispatch or health probe takes a dead one out of
// rotation, and later probes bring recovered workers back. Call Check
// once at startup to verify the fleet, and StartHealthLoop for
// continuous probing.
//
// client nil selects a default with a 10-minute per-request ceiling —
// a liveness guard so a worker that accepts a shard and then hangs
// forever is eventually classified as failed and its range
// re-dispatched, rather than stalling the solve. Deployments whose
// individual shard estimates legitimately run longer must pass their
// own client with a larger (or zero) Timeout, or estimates will be
// misclassified as worker failures and the batch will fall back to
// local compute (visible as local_fallbacks in PoolStats).
func NewPool(urls []string, client *http.Client) *Pool {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Minute}
	}
	p := &Pool{
		client: client,
		blobs:  make(map[*diffusion.Problem]*ProblemBlob),
		stop:   make(chan struct{}),
	}
	for _, u := range urls {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		p.remotes = append(p.remotes, &Remote{
			url:      u,
			healthy:  true,
			problems: make(map[service.Key]bool),
		})
	}
	return p
}

// Size returns the number of registered workers.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.remotes)
}

// healthyRemotes snapshots the workers currently in rotation.
func (p *Pool) healthyRemotes() []*Remote {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Remote, 0, len(p.remotes))
	for _, r := range p.remotes {
		if r.Healthy() {
			out = append(out, r)
		}
	}
	return out
}

// Check probes every worker's /healthz concurrently (one slow or dead
// worker must not delay the rest — a fleet-wide check costs one probe
// timeout, not one per casualty), updating health both ways: dead
// workers leave rotation, recovered ones rejoin. It returns the
// healthy count.
func (p *Pool) Check(ctx context.Context) int {
	p.mu.Lock()
	remotes := append([]*Remote(nil), p.remotes...)
	p.mu.Unlock()
	var (
		wg      sync.WaitGroup
		healthy atomic.Int64
	)
	for _, r := range remotes {
		wg.Add(1)
		go func(r *Remote) {
			defer wg.Done()
			if err := p.probe(ctx, r); err != nil {
				r.setHealth(false, err)
			} else {
				r.setHealth(true, nil)
				healthy.Add(1)
			}
		}(r)
	}
	wg.Wait()
	return int(healthy.Load())
}

func (p *Pool) probe(ctx context.Context, r *Remote) error {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

// StartHealthLoop probes the fleet every interval until Close. A
// worker that died mid-batch is already out of rotation (markFailed);
// the loop's job is recovery — restarted workers rejoin without
// operator action (their problem store is re-filled lazily through the
// unknown_problem path).
func (p *Pool) StartHealthLoop(interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.Check(context.Background())
			}
		}
	}()
}

// Close stops the health loop. In-flight dispatches are unaffected.
func (p *Pool) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
}

// RemoteStats is one worker's registry entry in PoolStats.
type RemoteStats struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	LastErr  string `json:"last_err,omitempty"`
	Shards   uint64 `json:"shards"`
	Failures uint64 `json:"failures"`
	Problems int    `json:"problems"`
}

// PoolStats is the registry snapshot the coordinator daemon reports
// under /metrics ("worker-pool depth": Workers registered, Healthy in
// rotation).
type PoolStats struct {
	Workers        int           `json:"workers"`
	Healthy        int           `json:"healthy"`
	Redispatches   uint64        `json:"redispatches"`
	LocalFallbacks uint64        `json:"local_fallbacks"`
	Remotes        []RemoteStats `json:"remotes"`
}

// Snapshot reports the pool's registry state and dispatch counters.
func (p *Pool) Snapshot() PoolStats {
	p.mu.Lock()
	remotes := append([]*Remote(nil), p.remotes...)
	p.mu.Unlock()
	st := PoolStats{
		Workers:        len(remotes),
		Redispatches:   p.redispatches.Load(),
		LocalFallbacks: p.localFallbacks.Load(),
	}
	for _, r := range remotes {
		r.mu.Lock()
		rs := RemoteStats{
			URL:      r.url,
			Healthy:  r.healthy,
			LastErr:  r.lastErr,
			Problems: len(r.problems),
		}
		r.mu.Unlock()
		rs.Shards = r.shards.Load()
		rs.Failures = r.failures.Load()
		if rs.Healthy {
			st.Healthy++
		}
		st.Remotes = append(st.Remotes, rs)
	}
	return st
}

// ProblemBlob is a problem encoded once for the wire, with its content
// address. Uploading the same blob to every worker (and re-uploading
// after worker restarts) reuses the bytes.
type ProblemBlob struct {
	Key  service.Key
	body []byte
}

// NewProblemBlob encodes a problem and computes its content address.
func NewProblemBlob(p *diffusion.Problem) (*ProblemBlob, error) {
	body, err := json.Marshal(EncodeProblem(p))
	if err != nil {
		return nil, fmt.Errorf("shard: encode problem: %w", err)
	}
	return &ProblemBlob{Key: service.HashProblem(p), body: body}, nil
}

// blobFor memoizes NewProblemBlob per problem pointer. A solver run
// creates two estimators (MC and MCSI) over one problem; the memo
// makes them share one encoding. The memo is bounded: problems are
// immutable but short-lived (one per solve request), so a small
// FIFO window suffices.
func (p *Pool) blobFor(prob *diffusion.Problem) (*ProblemBlob, error) {
	p.mu.Lock()
	if b, ok := p.blobs[prob]; ok {
		p.mu.Unlock()
		return b, nil
	}
	p.mu.Unlock()
	b, err := NewProblemBlob(prob)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if _, ok := p.blobs[prob]; !ok {
		p.blobs[prob] = b
		p.blobLRU = append(p.blobLRU, prob)
		for len(p.blobLRU) > 4 {
			delete(p.blobs, p.blobLRU[0])
			p.blobLRU = p.blobLRU[1:]
		}
	}
	p.mu.Unlock()
	return b, nil
}

// shardError is a dispatch failure with the worker's typed code.
type shardError struct {
	status int
	code   string
	msg    string
}

func (e *shardError) Error() string {
	return fmt.Sprintf("shard rpc: status %d code %q: %s", e.status, e.code, e.msg)
}

// post sends one JSON RPC and decodes the response into out.
func (p *Pool) post(ctx context.Context, url string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb ErrorBody
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		_ = json.Unmarshal(data, &eb)
		if eb.Error == "" {
			eb.Error = strings.TrimSpace(string(data))
		}
		return &shardError{status: resp.StatusCode, code: eb.Code, msg: eb.Error}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// ensureProblem uploads blob to r unless r already acknowledged it,
// verifying the worker-computed content address against the local one.
func (p *Pool) ensureProblem(ctx context.Context, r *Remote, blob *ProblemBlob) error {
	if r.knowsProblem(blob.Key) {
		return nil
	}
	var ack UploadResponse
	if err := p.post(ctx, r.url+PathProblems, blob.body, &ack); err != nil {
		return err
	}
	if ack.Hash != blob.Key.String() {
		// the worker decoded different content than we encoded — a
		// build-skew bug, not a transient fault; surface it loudly
		return &shardError{status: http.StatusConflict, code: CodeHashMismatch,
			msg: fmt.Sprintf("worker hashed %s, coordinator %s", ack.Hash, blob.Key)}
	}
	r.setProblem(blob.Key, true)
	return nil
}

// estimateOn runs one shard request on one worker, handling the
// lazy-upload and evicted/restarted-worker (unknown_problem) paths.
func (p *Pool) estimateOn(ctx context.Context, r *Remote, blob *ProblemBlob, req *EstimateRequest) (*EstimateResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		if err := p.ensureProblem(ctx, r, blob); err != nil {
			return nil, err
		}
		var resp EstimateResponse
		err = p.post(ctx, r.url+PathEstimate, body, &resp)
		if err == nil {
			r.shards.Add(1)
			return &resp, nil
		}
		var se *shardError
		if attempt == 0 && errors.As(err, &se) && se.code == CodeUnknownProblem {
			// the worker evicted or lost the problem (e.g. restart):
			// forget the acknowledgement and re-upload once
			r.setProblem(blob.Key, false)
			continue
		}
		return nil, err
	}
}

// runShard computes one sample range, trying the preferred worker
// first and failing over across the rest of the given rotation. A
// worker failure marks it unhealthy (a health probe restores it
// later); cancellation aborts without blaming any worker. It returns
// nil when every worker failed — the caller falls back to computing
// the range locally.
func (p *Pool) runShard(ctx context.Context, remotes []*Remote, preferred int, blob *ProblemBlob, req *EstimateRequest, items int) [][]diffusion.SampleResult {
	n := len(remotes)
	for i := 0; i < n; i++ {
		r := remotes[(preferred+i)%n]
		if ctx.Err() != nil {
			return nil
		}
		if !r.Healthy() {
			continue
		}
		resp, err := p.estimateOn(ctx, r, blob, req)
		if err == nil {
			err = validateSamples(resp.Samples, req, items)
			if err == nil {
				return resp.Samples
			}
		}
		if ctx.Err() != nil {
			return nil // cancelled mid-request: not the worker's fault
		}
		r.markFailed(err)
		if i < n-1 {
			p.redispatches.Add(1)
		}
	}
	return nil
}

// validateSamples sanity-checks a worker response shape so a buggy or
// hostile worker cannot panic the coordinator's reduction.
func validateSamples(samples [][]diffusion.SampleResult, req *EstimateRequest, items int) error {
	if len(samples) != len(req.Groups) {
		return fmt.Errorf("shard: %d sample rows for %d groups", len(samples), len(req.Groups))
	}
	span := req.Hi - req.Lo
	for g, row := range samples {
		if len(row) != span {
			return fmt.Errorf("shard: group %d: %d samples for range span %d", g, len(row), span)
		}
		for i := range row {
			if len(row[i].Items) != len(row[i].Counts) {
				return fmt.Errorf("shard: group %d sample %d: items/counts length mismatch", g, i)
			}
			for _, it := range row[i].Items {
				if int(it) < 0 || int(it) >= items {
					return fmt.Errorf("shard: group %d sample %d: item %d out of range", g, i, it)
				}
			}
		}
	}
	return nil
}

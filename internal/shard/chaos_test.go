package shard

import (
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"imdpp/internal/core"
	"imdpp/internal/diffusion"
	"imdpp/internal/fleettest"
)

// Chaos tier (DESIGN.md §13): every scenario injects transport-level
// faults through the fleettest proxy while asserting the solve stays
// bit-identical to a single-process run with zero surfaced errors —
// the §3 churn-invariance contract, exercised end to end.

// newChaosFleet boots n direct workers plus one worker behind a
// fleettest proxy, all in one pool (the proxied worker is the last
// remote). client nil selects the pool default.
func newChaosFleet(t *testing.T, n int, client *http.Client) (*Pool, []*Worker, *fleettest.Proxy) {
	t.Helper()
	urls := make([]string, 0, n+1)
	workers := make([]*Worker, 0, n+1)
	boot := func() (*Worker, *httptest.Server) {
		w := NewWorker(WorkerConfig{Workers: 2})
		mux := http.NewServeMux()
		w.Mount(mux)
		mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
			if w.Draining() {
				writeShardJSON(rw, http.StatusServiceUnavailable, map[string]any{"ok": false, "draining": true})
				return
			}
			writeShardJSON(rw, http.StatusOK, map[string]bool{"ok": true})
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return w, srv
	}
	for i := 0; i < n; i++ {
		w, srv := boot()
		workers = append(workers, w)
		urls = append(urls, srv.URL)
	}
	w, srv := boot()
	workers = append(workers, w)
	proxy := fleettest.NewProxy(srv.URL)
	front := httptest.NewServer(proxy.Handler())
	t.Cleanup(front.Close)
	// LIFO: release Drop-blocked handlers before front.Close waits on them
	t.Cleanup(proxy.Close)
	urls = append(urls, front.URL)

	pool := NewPool(urls, client)
	t.Cleanup(pool.Close)
	return pool, workers, proxy
}

// waitUntil polls cond with a 10s deadline.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosKillMidSolve hard-kills a worker (connection resets, the
// kill -9 shape) while a full solve is dispatching to it, and expects
// the solve to complete with σ bit-identical to the local run and no
// surfaced error.
func TestChaosKillMidSolve(t *testing.T) {
	leakCheck(t)
	p := sampleProblem(t, 100, 2)
	opt := core.Options{MC: 8, MCSI: 4, CandidateCap: 32, Seed: 7}
	want, err := core.Solve(p, opt)
	if err != nil {
		t.Fatal(err)
	}

	pool, _, proxy := newChaosFleet(t, 2, nil)
	pool.SetWeighted(false) // every remote gets a range every batch

	// the worker serves the upload and its first dispatches, then dies
	// — a deterministic kill -9 point mid-solve
	proxy.KillAfter(3)
	opt.Backend = Backend(pool)
	got, err := core.Solve(p, opt)
	if err != nil {
		t.Fatalf("solve surfaced the kill: %v", err)
	}
	if math.Float64bits(want.Sigma) != math.Float64bits(got.Sigma) {
		t.Fatalf("kill mid-solve changed σ: %v vs %v", got.Sigma, want.Sigma)
	}
	st := pool.Snapshot()
	if proxy.Faults() == 0 {
		t.Fatal("the kill never bit: no injected faults")
	}
	if st.Redispatches == 0 && st.LocalFallbacks == 0 {
		t.Fatalf("no failover recorded: %+v", st)
	}
	if st.Healthy != 2 {
		t.Fatalf("fleet after kill: %d healthy, want the 2 direct workers", st.Healthy)
	}
}

// TestChaosDrainMidSolve SIGTERMs (BeginDrain) a worker while a solve
// is running: in-flight shards finish, new dispatches get the typed
// draining rejection, the coordinator re-plans without a strike, and σ
// is bit-identical.
func TestChaosDrainMidSolve(t *testing.T) {
	leakCheck(t)
	p := sampleProblem(t, 100, 2)
	opt := core.Options{MC: 8, MCSI: 4, CandidateCap: 32, Seed: 7}
	want, err := core.Solve(p, opt)
	if err != nil {
		t.Fatal(err)
	}

	pool, workers, _ := newFleet(t, 3)
	pool.SetWeighted(false)
	victim := workers[2]

	done := make(chan struct{})
	go func() {
		defer close(done)
		waitUntil(t, "victim traffic", func() bool { return victim.Stats().ShardsServed >= 1 })
		drained := victim.BeginDrain()
		select {
		case <-drained:
		case <-time.After(10 * time.Second):
			t.Error("drain never completed")
		}
	}()
	opt.Backend = Backend(pool)
	got, err := core.Solve(p, opt)
	<-done
	if err != nil {
		t.Fatalf("solve surfaced the drain: %v", err)
	}
	if math.Float64bits(want.Sigma) != math.Float64bits(got.Sigma) {
		t.Fatalf("drain mid-solve changed σ: %v vs %v", got.Sigma, want.Sigma)
	}
	st := pool.Snapshot()
	if st.Fleet.Draining != 1 {
		t.Fatalf("coordinator fleet state: %+v, want 1 draining", st.Fleet)
	}
	for _, rs := range st.Remotes {
		if rs.State == "draining" && rs.Failures != 0 {
			t.Fatalf("drain cost the worker %d failure strikes: %+v", rs.Failures, rs)
		}
	}
}

// TestChaosRejoin kills a worker, lets the failure detector walk it
// suspect → probing → dead on jittered backoff, revives it, and
// expects it back in rotation (rejoin_count) serving bit-identical
// work.
func TestChaosRejoin(t *testing.T) {
	leakCheck(t)
	p := sampleProblem(t, 120, 3)
	groups := groupsFor(p)
	const m, seed = 10, 3
	want := diffusion.NewEstimator(p, m, seed).RunBatch(groups, nil)

	pool, _, proxy := newChaosFleet(t, 1, nil)
	pool.SetWeighted(false)
	pool.probeBase = 5 * time.Millisecond
	pool.deadAfter = 2
	pool.StartHealthLoop(50 * time.Millisecond)
	est := NewEstimator(pool, p, m, seed, 2)

	requireSameEstimates(t, "healthy fleet", want, est.RunBatch(groups, nil))

	proxy.SetMode(fleettest.Reset) // kill -9
	requireSameEstimates(t, "after kill", want, est.RunBatch(groups, nil))
	waitUntil(t, "death verdict", func() bool {
		st := pool.Snapshot()
		return st.Fleet.Dead+st.Fleet.Suspect == 1
	})

	proxy.SetMode(fleettest.Pass) // restart on the same address
	waitUntil(t, "rejoin", func() bool {
		st := pool.Snapshot()
		return st.Healthy == 2 && st.Fleet.RejoinCount >= 1
	})
	requireSameEstimates(t, "after rejoin", want, est.RunBatch(groups, nil))
	if st := pool.Snapshot(); st.LocalFallbacks != 0 {
		t.Fatalf("rejoin scenario fell back locally: %+v", st)
	}
}

// TestChaosFlappingBreaker shapes the flapping worker — health probes
// pass while every dispatch dies — and expects the per-remote circuit
// breaker to shed it (breaker_open) instead of letting the next lucky
// probe feed it more doomed dispatches; results stay bit-identical
// throughout.
func TestChaosFlappingBreaker(t *testing.T) {
	leakCheck(t)
	p := sampleProblem(t, 120, 3)
	groups := groupsFor(p)
	const m, seed = 10, 13
	want := diffusion.NewEstimator(p, m, seed).RunBatch(groups, nil)

	pool, _, proxy := newChaosFleet(t, 2, nil)
	pool.SetWeighted(false)
	pool.probeBase = 5 * time.Millisecond
	pool.breakerTrip = 2
	pool.breakerCooldown = time.Minute // hold it open past the test
	pool.StartHealthLoop(20 * time.Millisecond)
	est := NewEstimator(pool, p, m, seed, 2)

	proxy.PassHealthz(true)
	proxy.SetMode(fleettest.Error500)

	// each batch that catches the flapper alive adds a strike; the
	// probes between batches keep reviving it until the breaker trips
	waitUntil(t, "breaker open", func() bool {
		requireSameEstimates(t, "flapping", want, est.RunBatch(groups, nil))
		return pool.Snapshot().Fleet.BreakerOpen >= 1
	})
	// with the breaker open the flapper is not dispatchable even if a
	// probe marks it alive — healthyRemotes excludes it
	for _, r := range pool.healthyRemotes() {
		if !r.dispatchable() {
			t.Fatal("healthyRemotes returned a breaker-shed worker")
		}
	}
	requireSameEstimates(t, "post-breaker", want, est.RunBatch(groups, nil))
	if st := pool.Snapshot(); st.LocalFallbacks != 0 {
		t.Fatalf("flapping forced a local fallback with 2 good workers: %+v", st)
	}
}

// TestChaosFaultTable sweeps the remaining proxy fault modes —
// truncated response frames, spurious 500s, dropped (hung) requests —
// and asserts each converges bit-identically via failover.
func TestChaosFaultTable(t *testing.T) {
	leakCheck(t)
	p := sampleProblem(t, 120, 3)
	groups := groupsFor(p)
	const m, seed = 8, 29
	want := diffusion.NewEstimator(p, m, seed).RunBatch(groups, nil)

	modes := []fleettest.Mode{fleettest.Truncate, fleettest.Error500, fleettest.Drop}
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			var client *http.Client
			if mode == fleettest.Drop {
				// a dropped request only resolves by timeout; keep it short
				client = &http.Client{Timeout: 500 * time.Millisecond}
			}
			pool, _, proxy := newChaosFleet(t, 1, client)
			pool.SetWeighted(false)
			est := NewEstimator(pool, p, m, seed, 2)
			requireSameEstimates(t, "warm "+mode.String(), want, est.RunBatch(groups, nil))
			proxy.SetMode(mode)
			requireSameEstimates(t, "faulted "+mode.String(), want, est.RunBatch(groups, nil))
			if proxy.Faults() == 0 {
				t.Fatalf("%s: fault mode never engaged", mode)
			}
			// the range was rescued by failover, local fallback, or a
			// speculative duplicate outrunning the faulted dispatch — any
			// of the three is a valid §7 convergence path
			st := pool.Snapshot()
			if st.Redispatches == 0 && st.LocalFallbacks == 0 && st.SpeculativeHits == 0 {
				t.Fatalf("%s: no rescue recorded: %+v", mode, st)
			}
		})
	}
}

// TestChaosDelayTriggersSpeculation injects pure latency (no failure)
// and expects the speculative duplicate to win without blaming the
// slow worker — delay is not death.
func TestChaosDelayTriggersSpeculation(t *testing.T) {
	leakCheck(t)
	p := sampleProblem(t, 120, 3)
	groups := groupsFor(p)
	const m, seed = 8, 17
	want := diffusion.NewEstimator(p, m, seed).RunBatch(groups, nil)

	pool, _, proxy := newChaosFleet(t, 1, nil)
	pool.SetWeighted(false)
	pool.specMin = 5 * time.Millisecond
	pool.specTick = 2 * time.Millisecond
	est := NewEstimator(pool, p, m, seed, 2)

	requireSameEstimates(t, "warm", want, est.RunBatch(groups, nil))
	proxy.SetDelay(800 * time.Millisecond)
	proxy.SetMode(fleettest.Delay)
	start := time.Now()
	requireSameEstimates(t, "delayed", want, est.RunBatch(groups, nil))
	if elapsed := time.Since(start); elapsed >= 800*time.Millisecond {
		t.Fatalf("batch waited out the injected delay (%v)", elapsed)
	}
	if st := pool.Snapshot(); st.SpeculativeHits == 0 {
		t.Fatalf("delay never speculated: %+v", st)
	}
}

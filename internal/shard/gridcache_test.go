package shard

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"imdpp/internal/core"
	"imdpp/internal/diffusion"
	"imdpp/internal/gridcache"
	"imdpp/internal/service"
)

// newCachedFleet is newFleet with a private grid cache per worker —
// the deployment shape of DESIGN.md §10: grids are cached where they
// are computed, never shipped warm.
func newCachedFleet(t testing.TB, n int) (*Pool, []*Worker) {
	t.Helper()
	urls := make([]string, n)
	workers := make([]*Worker, n)
	for i := 0; i < n; i++ {
		w := NewWorker(WorkerConfig{
			Workers: 2,
			Grid: gridcache.New(gridcache.Config{
				KeyFn: func(p *diffusion.Problem) string { return service.HashProblem(p).String() },
			}),
		})
		mux := http.NewServeMux()
		w.Mount(mux)
		mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
			writeShardJSON(rw, http.StatusOK, map[string]bool{"ok": true})
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
		workers[i] = w
	}
	pool := NewPool(urls, nil)
	t.Cleanup(pool.Close)
	return pool, workers
}

// TestShardedCachedSolveGolden pins the §10 acceptance bar across the
// fleet sizes the §7 goldens use: with worker-side grid caches AND a
// coordinator-side cache on the solve, cold and warm solves stay
// bit-identical to the plain local solve, and the second (warm) solve
// is served from the worker caches.
func TestShardedCachedSolveGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full solves; skipped under -short")
	}
	p := sampleProblem(t, 100, 2)
	opt := core.Options{MC: 8, MCSI: 4, CandidateCap: 32, Seed: 7}
	want, err := core.Solve(p, opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 7} {
		label := fmt.Sprintf("shards=%d", shards)
		pool, workers := newCachedFleet(t, shards)
		cachedOpt := opt
		cachedOpt.Backend = Backend(pool)
		cachedOpt.GridCache = gridcache.New(gridcache.Config{
			KeyFn: func(p *diffusion.Problem) string { return service.HashProblem(p).String() },
		})

		for pass, name := range []string{"cold", "warm"} {
			got, err := core.Solve(p, cachedOpt)
			if err != nil {
				t.Fatalf("%s %s: %v", label, name, err)
			}
			if math.Float64bits(want.Sigma) != math.Float64bits(got.Sigma) {
				t.Fatalf("%s %s: σ %v != local %v", label, name, got.Sigma, want.Sigma)
			}
			if len(want.Seeds) != len(got.Seeds) {
				t.Fatalf("%s %s: %d seeds vs %d", label, name, len(got.Seeds), len(want.Seeds))
			}
			for i := range want.Seeds {
				if want.Seeds[i] != got.Seeds[i] {
					t.Fatalf("%s %s: seed %d differs: %+v vs %+v", label, name, i, got.Seeds[i], want.Seeds[i])
				}
			}
			if pass == 1 {
				var hits uint64
				for _, w := range workers {
					if g := w.Stats().Grid; g != nil {
						hits += g.Hits
					}
				}
				if hits == 0 {
					t.Fatalf("%s warm: worker grid caches served nothing", label)
				}
			}
		}
	}
}

// TestShardedCachedBatchGolden is the estimator-level variant: a warm
// sharded RunBatch against cached workers stays bit-identical and the
// repeat dispatch is answered from worker caches, visible in the
// worker /metrics counter surface (WorkerStats.Grid).
func TestShardedCachedBatchGolden(t *testing.T) {
	p := sampleProblem(t, 120, 3)
	groups := groupsFor(p)
	const m, seed = 13, 99
	want := diffusion.NewEstimator(p, m, seed).RunBatch(groups, nil)

	pool, workers := newCachedFleet(t, 2)
	// static split: weighted planning re-sizes ranges as throughput
	// EWMAs move, which changes the [lo,hi) key coordinates between
	// batches — grids are still reused within a batch (CELF waves) but
	// cross-batch reuse needs stable ranges (see WorkerConfig.Grid)
	pool.SetWeighted(false)
	est := NewEstimator(pool, p, m, seed, 2)
	requireSameEstimates(t, "cold", want, est.RunBatch(groups, nil))
	requireSameEstimates(t, "warm", want, est.RunBatch(groups, nil))

	var hits, lookups uint64
	for _, w := range workers {
		g := w.Stats().Grid
		if g == nil {
			t.Fatal("cached worker reports no grid stats")
		}
		hits += g.Hits
		lookups += g.Lookups
	}
	if lookups == 0 || hits == 0 {
		t.Fatalf("worker caches untouched after a repeat batch: lookups=%d hits=%d", lookups, hits)
	}
}

package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"imdpp/internal/diffusion"
	"imdpp/internal/service"
)

// checkNoGoroutineLeak polls until the goroutine count returns to
// (about) the baseline — the goleak-style guard shared with the
// service tests, here watching probe goroutines, registrar loops and
// speculative-dispatch losers.
func checkNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finished goroutines off the scheduler
		n := runtime.NumGoroutine()
		if n <= baseline+2 { // tolerate runtime/test-framework jitter
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// leakCheck registers the goroutine-leak assertion *first*, so the
// LIFO cleanup order runs it *last* — after the pool, servers and
// registrars the test registers afterwards have shut down.
func leakCheck(t *testing.T) {
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() { checkNoGoroutineLeak(t, baseline) })
}

func TestBackoffJitterBounds(t *testing.T) {
	p := NewPool(nil, nil)
	defer p.Close()
	p.probeBase = 100 * time.Millisecond
	p.probeCap = 800 * time.Millisecond
	for fails := 0; fails < 8; fails++ {
		want := p.probeBase << min(fails, 10)
		if want > p.probeCap {
			want = p.probeCap
		}
		for i := 0; i < 50; i++ {
			d := p.backoffFor(fails)
			if d < want/2 || d > want {
				t.Fatalf("backoffFor(%d) = %v outside [%v, %v]", fails, d, want/2, want)
			}
		}
	}
	// and the cap really caps: far past the doubling range it stays put
	if d := p.backoffFor(40); d > p.probeCap {
		t.Fatalf("backoffFor(40) = %v exceeds cap %v", d, p.probeCap)
	}
}

// TestRegisterNegotiatesCaps pins the tentpole's negotiation claim: a
// registered worker's codec and trace modes are settled by its
// advertisement, so the first RPC already runs the final codec — no
// per-request fallback probe, no demotion round-trip.
func TestRegisterNegotiatesCaps(t *testing.T) {
	leakCheck(t)
	pool, _, servers := newFleet(t, 0) // empty static list
	_ = servers

	w := NewWorker(WorkerConfig{Workers: 2})
	mux := http.NewServeMux()
	w.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	// a current-build advertisement settles binary + traced immediately
	if err := pool.Register(srv.URL, DefaultWorkerCaps()); err != nil {
		t.Fatal(err)
	}
	rs := pool.healthyRemotes()
	if len(rs) != 1 {
		t.Fatalf("registered worker not in rotation: %d remotes", len(rs))
	}
	if got := rs[0].binMode.Load(); got != codecBinaryOK {
		t.Fatalf("registered remote binMode %d, want codecBinaryOK", got)
	}
	if got := rs[0].traceMode.Load(); got != traceSupported {
		t.Fatalf("registered remote traceMode %d, want traceSupported", got)
	}

	// the settled codec carries a real workload bit-identically
	p := sampleProblem(t, 120, 3)
	groups := groupsFor(p)
	const m, seed = 9, 33
	want := diffusion.NewEstimator(p, m, seed).RunBatch(groups, nil)
	est := NewEstimator(pool, p, m, seed, 2)
	requireSameEstimates(t, "registered worker", want, est.RunBatch(groups, nil))

	// a legacy advertisement pins JSON/untraced up front
	if err := pool.Register(srv.URL, WorkerCaps{CodecVersion: 0, TracedFrames: false}); err != nil {
		t.Fatal(err)
	}
	r := pool.healthyRemotes()[0]
	if got := r.binMode.Load(); got != codecJSONOnly {
		t.Fatalf("legacy registration binMode %d, want codecJSONOnly", got)
	}
	if got := r.traceMode.Load(); got != traceUnsupported {
		t.Fatalf("legacy registration traceMode %d, want traceUnsupported", got)
	}
	// re-registration forgot the acknowledged uploads (fresh process)
	if r.knowsProblem(service.HashProblem(p)) {
		t.Fatal("re-registration kept the stale upload acknowledgement")
	}
	requireSameEstimates(t, "legacy re-registration", want, est.RunBatch(groups, nil))

	st := pool.Snapshot()
	if st.Fleet.Registered != 1 || st.LocalFallbacks != 0 {
		t.Fatalf("fleet stats after registration: %+v", st.Fleet)
	}
	if st.Remotes[0].Codec != "json" || !st.Remotes[0].Registered {
		t.Fatalf("remote stats %+v want registered json remote", st.Remotes[0])
	}
}

func TestRegisterValidatesAndBounds(t *testing.T) {
	pool := NewPool(nil, nil)
	defer pool.Close()
	for _, bad := range []string{"", "not-a-url", "ftp://x", "http://"} {
		if err := pool.Register(bad, WorkerCaps{}); err == nil {
			t.Fatalf("Register(%q) accepted a bad URL", bad)
		}
	}
	// the registry is bounded: one past maxRemotes distinct URLs fails
	for i := 0; i < maxRemotes; i++ {
		if err := pool.Register(fmt.Sprintf("http://10.0.0.1:%d", 1000+i), WorkerCaps{}); err != nil {
			t.Fatalf("registration %d rejected below the bound: %v", i, err)
		}
	}
	if err := pool.Register("http://10.0.0.1:9", WorkerCaps{}); err == nil {
		t.Fatal("registration past the bound accepted")
	}
	// re-registering an existing URL still works at the bound
	if err := pool.Register("http://10.0.0.1:1000", WorkerCaps{}); err != nil {
		t.Fatalf("re-registration at the bound rejected: %v", err)
	}
}

// TestHeartbeatTimeoutSuspectsWorker starves a registered worker of
// heartbeats and expects the failure detector to suspect it, then a
// heartbeat to bring it straight back (and count a rejoin).
func TestHeartbeatTimeoutSuspectsWorker(t *testing.T) {
	leakCheck(t)
	pool, _, _ := newFleet(t, 0)
	pool.hbTimeout = 30 * time.Millisecond
	pool.probeBase = 5 * time.Millisecond
	pool.probeCap = 20 * time.Millisecond

	// register a URL nothing listens on: probes fail too, so the worker
	// must stay out of rotation until a heartbeat arrives
	const u = "http://127.0.0.1:1" // reserved port, connection refused
	if err := pool.Register(u, DefaultWorkerCaps()); err != nil {
		t.Fatal(err)
	}
	pool.StartHealthLoop(20 * time.Millisecond)

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := pool.Snapshot()
		if st.Fleet.Suspect+st.Fleet.Dead == 1 && st.Healthy == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("silent worker never suspected: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !pool.Heartbeat(u) {
		t.Fatal("heartbeat for a registered worker rejected")
	}
	st := pool.Snapshot()
	if st.Healthy != 1 {
		t.Fatalf("heartbeat did not revive the worker: %+v", st)
	}
	if st.Fleet.RejoinCount == 0 || st.Fleet.Heartbeats == 0 {
		t.Fatalf("rejoin/heartbeat counters flat: %+v", st.Fleet)
	}
}

// TestRegistryHTTPRoundTrip drives the lifecycle protocol over real
// HTTP: register, heartbeat, deregister, and the unknown_worker answer
// that tells a worker its coordinator restarted.
func TestRegistryHTTPRoundTrip(t *testing.T) {
	leakCheck(t)
	pool := NewPool(nil, nil)
	t.Cleanup(pool.Close)
	mux := http.NewServeMux()
	pool.MountRegistry(mux)
	coord := httptest.NewServer(mux)
	t.Cleanup(coord.Close)

	post := func(path string, v any) (*http.Response, []byte) {
		t.Helper()
		body, _ := json.Marshal(v)
		resp, err := http.Post(coord.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// heartbeat before registration: typed unknown_worker
	resp, body := post(PathHeartbeat, HeartbeatRequest{URL: "http://10.9.9.9:1234"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-registration heartbeat: status %d want 404", resp.StatusCode)
	}
	var eb ErrorBody
	if json.Unmarshal(body, &eb); eb.Code != CodeUnknownWorker {
		t.Fatalf("pre-registration heartbeat code %q want %q", eb.Code, CodeUnknownWorker)
	}

	resp, body = post(PathRegister, RegisterRequest{URL: "http://10.9.9.9:1234", Caps: DefaultWorkerCaps()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d body %s", resp.StatusCode, body)
	}
	var reg RegisterResponse
	if err := json.Unmarshal(body, &reg); err != nil || !reg.OK || reg.HeartbeatMillis <= 0 {
		t.Fatalf("register response %s err %v", body, err)
	}

	if resp, _ = post(PathHeartbeat, HeartbeatRequest{URL: "http://10.9.9.9:1234"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat: status %d", resp.StatusCode)
	}
	if resp, _ = post(PathDeregister, DeregisterRequest{URL: "http://10.9.9.9:1234"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("deregister: status %d", resp.StatusCode)
	}
	if pool.Size() != 0 {
		t.Fatalf("deregister left %d remotes", pool.Size())
	}
	// malformed body: typed bad_request
	r2, err := http.Post(coord.URL+PathRegister, "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated register body: status %d want 400", r2.StatusCode)
	}
}

// TestRegistrarLoop runs the worker-side registrar against a live
// coordinator: it registers, heartbeats at the dictated cadence, and
// re-registers by itself after the coordinator forgets it (restart).
func TestRegistrarLoop(t *testing.T) {
	leakCheck(t)
	pool := NewPool(nil, nil)
	t.Cleanup(pool.Close)
	pool.SetHeartbeat(20 * time.Millisecond)
	mux := http.NewServeMux()
	pool.MountRegistry(mux)
	coord := httptest.NewServer(mux)
	t.Cleanup(coord.Close)

	reg, err := NewRegistrar(RegistrarConfig{Coordinator: coord.URL, SelfURL: "http://127.0.0.1:19999"})
	if err != nil {
		t.Fatal(err)
	}
	reg.Start()
	t.Cleanup(reg.Stop)

	waitFor := func(what string, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("registration", func() bool { return pool.Snapshot().Fleet.Registered == 1 })
	waitFor("heartbeats", func() bool { return reg.Beats() >= 2 })

	// coordinator "restart": forget the fleet; the next heartbeat's
	// unknown_worker answer must drive re-registration
	pool.Deregister("http://127.0.0.1:19999")
	waitFor("re-registration", func() bool { return pool.Snapshot().Fleet.Registered == 1 })

	// graceful goodbye
	if err := reg.Deregister(context.Background()); err != nil {
		t.Fatal(err)
	}
	reg.Stop()
	if got := pool.Snapshot().Fleet.Registered; got != 0 {
		t.Fatalf("deregister left %d registered", got)
	}
}

// TestWorkerDrain pins the drain contract: in-flight requests finish,
// new ones get the typed draining rejection, and the drained channel
// closes exactly when the last in-flight request ends.
func TestWorkerDrain(t *testing.T) {
	leakCheck(t)
	p := sampleProblem(t, 120, 3)
	groups := groupsFor(p)
	const m, seed = 6, 44
	want := diffusion.NewEstimator(p, m, seed).RunBatch(groups, nil)

	pool, workers, servers := newFleet(t, 1)
	est := NewEstimator(pool, p, m, seed, 2)
	requireSameEstimates(t, "pre-drain", want, est.RunBatch(groups, nil))

	// idle worker: drain completes immediately
	drained := workers[0].BeginDrain()
	select {
	case <-drained:
	case <-time.After(2 * time.Second):
		t.Fatal("idle worker's drain never completed")
	}
	if !workers[0].Stats().Draining {
		t.Fatal("WorkerStats does not report draining")
	}

	// new dispatches are rejected with the typed code...
	body, _ := json.Marshal(&EstimateRequest{Problem: service.HashProblem(p).String(), Lo: 0, Hi: 1, Groups: [][]diffusion.Seed{{}}})
	resp, err := http.Post(servers[0].URL+PathEstimate, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var eb ErrorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Code != CodeDraining {
		t.Fatalf("dispatch to draining worker: status %d code %q, want 503 %q", resp.StatusCode, eb.Code, CodeDraining)
	}

	// ...and the coordinator absorbs that as drain, not failure: the
	// solve falls back without surfacing an error or a strike
	requireSameEstimates(t, "during drain", want, est.RunBatch(groups, nil))
	st := pool.Snapshot()
	if st.Fleet.Draining != 1 {
		t.Fatalf("coordinator did not mark the remote draining: %+v", st.Fleet)
	}
	if st.Remotes[0].Failures != 0 {
		t.Fatalf("drain counted as a failure: %+v", st.Remotes[0])
	}
}

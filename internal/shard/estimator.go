package shard

import (
	"context"
	"sync"
	"sync/atomic"

	"imdpp/internal/core"
	"imdpp/internal/diffusion"
)

// Estimator is the sharded σ/π estimation backend: a core.Estimator
// that partitions every batch's global sample indices [0,M) into
// contiguous ranges (Plan), fans the ranges out over the pool's
// healthy workers, re-assembles the raw per-sample outcomes into the
// full (group × sample) grid, and reduces it in global sample order
// (diffusion.ReduceSampleGrid). Because sample i always draws from
// Split(i) wherever it runs and the merge uses the single-process
// accumulation arithmetic, every estimate is bit-identical to the
// in-process engine's — DESIGN.md §7 gives the argument, the package
// golden tests pin it across 1/2/7 shards.
//
// Failures degrade, never corrupt: a shard whose worker dies is
// re-dispatched to the next healthy worker, and when none remain it is
// computed locally by the embedded fallback engine. With an empty or
// fully dead pool the Estimator is exactly the local engine.
//
// Like diffusion.Estimator, it is safe for sequential reuse by one
// solver; Bind must not race an in-flight evaluation.
type Estimator struct {
	pool *Pool
	p    *diffusion.Problem
	m    int
	seed uint64

	// local is the fallback engine; it also serves MeanWeights (a
	// cheap single-group expectation not worth a round-trip) and keeps
	// the Reseed/Bind state mirrored so fallback results are identical
	// to what a remote worker would have produced.
	local *diffusion.Estimator
	ctx   context.Context

	remoteSamples atomic.Uint64
}

// NewEstimator creates a sharded estimator over the pool. samples and
// seed mirror diffusion.NewEstimator; workers bounds the *local*
// engine's parallelism for fallback ranges (0 → GOMAXPROCS) — remote
// workers size themselves.
func NewEstimator(pool *Pool, p *diffusion.Problem, samples int, seed uint64, workers int) *Estimator {
	if samples < 1 {
		samples = 1
	}
	local := diffusion.NewEstimator(p, samples, seed)
	local.Workers = workers
	return &Estimator{
		pool:  pool,
		p:     p,
		m:     samples,
		seed:  seed,
		local: local,
		ctx:   context.Background(),
	}
}

// Backend returns a core.EstimatorFactory dispatching over pool — the
// Options.Backend / service Config.Backend value that runs the whole
// solver pipeline over the worker fleet.
func Backend(pool *Pool) core.EstimatorFactory {
	return func(p *diffusion.Problem, samples int, seed uint64, workers int) core.Estimator {
		return NewEstimator(pool, p, samples, seed, workers)
	}
}

var _ core.Estimator = (*Estimator)(nil)

// Bind attaches a cancellation context: shard RPCs are issued with it
// (cancelling aborts the HTTP requests, which preempts the remote
// engines), and the local fallback engine is bound to it. As with the
// local engine, a cancelled batch returns garbage the caller must
// discard after checking the context.
func (e *Estimator) Bind(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
	e.local.Bind(ctx)
}

// Reseed replaces the master seed for subsequent estimates.
func (e *Estimator) Reseed(seed uint64) {
	e.seed = seed
	e.local.Reseed(seed)
}

// SamplesDone reports cumulative Monte-Carlo campaigns simulated on
// behalf of this estimator, locally and remotely.
func (e *Estimator) SamplesDone() uint64 {
	return e.remoteSamples.Load() + e.local.SamplesDone()
}

// StateBytes reports the local fallback engine's retained state
// footprint (remote workers' state lives in their own processes).
func (e *Estimator) StateBytes() uint64 { return e.local.StateBytes() }

// Sigma returns the Monte-Carlo estimate of σ(seeds).
func (e *Estimator) Sigma(seeds []diffusion.Seed) float64 {
	return e.Run(seeds, nil, false).Sigma
}

// Run estimates one seed group; it is the single-group case of the
// sharded batch path.
func (e *Estimator) Run(seeds []diffusion.Seed, market []bool, withPi bool) diffusion.Estimate {
	return e.runBatch([][]diffusion.Seed{seeds}, market, nil, withPi)[0]
}

// RunBatch estimates every group under one shared market mask.
func (e *Estimator) RunBatch(groups [][]diffusion.Seed, market []bool) []diffusion.Estimate {
	return e.runBatch(groups, market, nil, false)
}

// RunBatchPi is RunBatch with π evaluated per group.
func (e *Estimator) RunBatchPi(groups [][]diffusion.Seed, market []bool) []diffusion.Estimate {
	return e.runBatch(groups, market, nil, true)
}

// RunBatchMasked estimates each group under its own mask.
func (e *Estimator) RunBatchMasked(groups [][]diffusion.Seed, masks [][]bool, withPi bool) []diffusion.Estimate {
	return e.runBatch(groups, nil, masks, withPi)
}

// SigmaBatch returns the σ estimate of every seed group.
func (e *Estimator) SigmaBatch(groups [][]diffusion.Seed) []float64 {
	ests := e.RunBatch(groups, nil)
	out := make([]float64, len(ests))
	for i, est := range ests {
		out[i] = est.Sigma
	}
	return out
}

// MeanWeights delegates to the local engine: it is one group's worth
// of simulation, and the local engine computes it bit-identically to
// any worker (same seed derivation, same streams).
func (e *Estimator) MeanWeights(seeds []diffusion.Seed, users []int) []float64 {
	return e.local.MeanWeights(seeds, users)
}

// runBatch is the sharded engine body.
func (e *Estimator) runBatch(groups [][]diffusion.Seed, market []bool, masks [][]bool, withPi bool) []diffusion.Estimate {
	k := len(groups)
	if k == 0 {
		return make([]diffusion.Estimate, 0)
	}
	remotes := e.pool.healthyRemotes()
	if len(remotes) == 0 {
		// dead or empty fleet: the whole batch runs locally, and the
		// counter must say so — operators watch local_fallbacks to spot
		// a coordinator that has silently stopped using its workers
		e.pool.localFallbacks.Add(1)
		return e.localBatch(groups, market, masks, withPi)
	}
	blob, err := e.pool.blobFor(e.p)
	if err != nil {
		// un-encodable problem: nothing remote can be done
		e.pool.localFallbacks.Add(1)
		return e.localBatch(groups, market, masks, withPi)
	}

	ranges := Plan(e.m, len(remotes))
	tmpl := EstimateRequest{
		Problem: blob.Key.String(),
		Seed:    e.seed,
		WithPi:  withPi,
		Groups:  groups,
		Market:  maskToUsers(market),
	}
	if masks != nil {
		tmpl.PerGroupMasks = make([][]int32, len(masks))
		for g, mk := range masks {
			tmpl.PerGroupMasks[g] = maskToUsers(mk)
		}
	}

	grid := make([][]diffusion.SampleResult, k)
	for g := range grid {
		grid[g] = make([]diffusion.SampleResult, e.m)
	}
	var wg sync.WaitGroup
	for ri, rg := range ranges {
		wg.Add(1)
		go func(ri int, rg Range) {
			defer wg.Done()
			req := tmpl
			req.Lo, req.Hi = rg.Lo, rg.Hi
			rows := e.pool.runShard(e.ctx, remotes, ri%len(remotes), blob, &req, e.p.NumItems())
			if rows == nil {
				if e.ctx.Err() != nil {
					return // cancelled: the whole batch result is garbage
				}
				// every worker failed for this range: compute it locally
				// — identical outcomes, since sample streams depend only
				// on the global index
				e.pool.localFallbacks.Add(1)
				rows = e.local.RunBatchSamples(groups, market, masks, withPi, rg.Lo, rg.Hi)
			} else {
				e.remoteSamples.Add(uint64(k * rg.Span()))
			}
			for g := range rows {
				copy(grid[g][rg.Lo:rg.Hi], rows[g])
			}
		}(ri, rg)
	}
	wg.Wait()
	if e.ctx.Err() != nil {
		// match the local engine's cancellation contract: return
		// promptly with placeholder estimates the caller must discard
		out := make([]diffusion.Estimate, k)
		items := e.p.NumItems()
		buf := make([]float64, k*items)
		for g := range out {
			out[g].PerItem = buf[g*items : (g+1)*items : (g+1)*items]
		}
		return out
	}
	return diffusion.ReduceSampleGrid(grid, e.p.NumItems())
}

// localBatch runs the whole batch on the embedded engine — the
// empty-pool / dead-fleet degradation path, bit-identical to a
// non-sharded solve.
func (e *Estimator) localBatch(groups [][]diffusion.Seed, market []bool, masks [][]bool, withPi bool) []diffusion.Estimate {
	if masks != nil {
		return e.local.RunBatchMasked(groups, masks, withPi)
	}
	if withPi {
		return e.local.RunBatchPi(groups, market)
	}
	return e.local.RunBatch(groups, market)
}

package shard

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"imdpp/internal/core"
	"imdpp/internal/diffusion"
	"imdpp/internal/obs"
)

// Estimator is the sharded σ/π estimation backend: a core.Estimator
// that partitions every batch's global sample indices [0,M) into
// contiguous ranges (Plan), fans the ranges out over the pool's
// healthy workers, re-assembles the raw per-sample outcomes into the
// full (group × sample) grid, and reduces it in global sample order
// (diffusion.ReduceSampleGrid). Because sample i always draws from
// Split(i) wherever it runs and the merge uses the single-process
// accumulation arithmetic, every estimate is bit-identical to the
// in-process engine's — DESIGN.md §7 gives the argument, the package
// golden tests pin it across 1/2/7 shards.
//
// Failures degrade, never corrupt: a shard whose worker dies is
// re-dispatched to the next healthy worker, and when none remain it is
// computed locally by the embedded fallback engine. With an empty or
// fully dead pool the Estimator is exactly the local engine.
//
// Like diffusion.Estimator, it is safe for sequential reuse by one
// solver; Bind must not race an in-flight evaluation.
type Estimator struct {
	pool *Pool
	p    *diffusion.Problem
	m    int
	seed uint64

	// local is the fallback engine; it also serves MeanWeights (a
	// cheap single-group expectation not worth a round-trip) and keeps
	// the Reseed/Bind state mirrored so fallback results are identical
	// to what a remote worker would have produced.
	local *diffusion.Estimator
	ctx   context.Context

	remoteSamples atomic.Uint64
}

// NewEstimator creates a sharded estimator over the pool. samples and
// seed mirror diffusion.NewEstimator; workers bounds the *local*
// engine's parallelism for fallback ranges (0 → GOMAXPROCS) — remote
// workers size themselves.
func NewEstimator(pool *Pool, p *diffusion.Problem, samples int, seed uint64, workers int) *Estimator {
	if samples < 1 {
		samples = 1
	}
	local := diffusion.NewEstimator(p, samples, seed)
	local.Workers = workers
	return &Estimator{
		pool:  pool,
		p:     p,
		m:     samples,
		seed:  seed,
		local: local,
		ctx:   context.Background(),
	}
}

// Backend returns a core.EstimatorFactory dispatching over pool — the
// Options.Backend / service Config.Backend value that runs the whole
// solver pipeline over the worker fleet.
func Backend(pool *Pool) core.EstimatorFactory {
	return func(p *diffusion.Problem, samples int, seed uint64, workers int) core.Estimator {
		return NewEstimator(pool, p, samples, seed, workers)
	}
}

var _ core.Estimator = (*Estimator)(nil)

// Bind attaches a cancellation context: shard RPCs are issued with it
// (cancelling aborts the HTTP requests, which preempts the remote
// engines), and the local fallback engine is bound to it. As with the
// local engine, a cancelled batch returns garbage the caller must
// discard after checking the context.
func (e *Estimator) Bind(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
	e.local.Bind(ctx)
}

// Reseed replaces the master seed for subsequent estimates.
func (e *Estimator) Reseed(seed uint64) {
	e.seed = seed
	e.local.Reseed(seed)
}

// SamplesDone reports cumulative Monte-Carlo campaigns simulated on
// behalf of this estimator, locally and remotely.
func (e *Estimator) SamplesDone() uint64 {
	return e.remoteSamples.Load() + e.local.SamplesDone()
}

// StateBytes reports the local fallback engine's retained state
// footprint (remote workers' state lives in their own processes).
func (e *Estimator) StateBytes() uint64 { return e.local.StateBytes() }

// AttachGrid wires a sample-grid memoization view (DESIGN.md §10)
// into the local fallback engine, so coordinator-side evaluations —
// fallback ranges with a dead pool, MeanWeights — share grids with
// other solves on this process. Remote workers host their own cache
// instances (WorkerConfig.Grid); attaching here does not affect what
// they simulate.
func (e *Estimator) AttachGrid(v diffusion.GridCache) { e.local.Grid = v }

// GridStats reports the local engine's cache-served work, the
// per-solve counters behind core.Stats.GridHits/SamplesSaved.
// Worker-side hits are visible in the workers' own /metrics, not
// here: a coordinator cannot tell a warm remote grid from a cold one
// by looking at the bit-identical bytes it receives.
func (e *Estimator) GridStats() (hits, samplesSaved uint64) { return e.local.GridStats() }

// Sigma returns the Monte-Carlo estimate of σ(seeds).
func (e *Estimator) Sigma(seeds []diffusion.Seed) float64 {
	return e.Run(seeds, nil, false).Sigma
}

// Run estimates one seed group; it is the single-group case of the
// sharded batch path.
func (e *Estimator) Run(seeds []diffusion.Seed, market []bool, withPi bool) diffusion.Estimate {
	return e.runBatch([][]diffusion.Seed{seeds}, market, nil, withPi)[0]
}

// RunBatch estimates every group under one shared market mask.
func (e *Estimator) RunBatch(groups [][]diffusion.Seed, market []bool) []diffusion.Estimate {
	return e.runBatch(groups, market, nil, false)
}

// RunBatchPi is RunBatch with π evaluated per group.
func (e *Estimator) RunBatchPi(groups [][]diffusion.Seed, market []bool) []diffusion.Estimate {
	return e.runBatch(groups, market, nil, true)
}

// RunBatchMasked estimates each group under its own mask.
func (e *Estimator) RunBatchMasked(groups [][]diffusion.Seed, masks [][]bool, withPi bool) []diffusion.Estimate {
	return e.runBatch(groups, nil, masks, withPi)
}

// SigmaBatch returns the σ estimate of every seed group.
func (e *Estimator) SigmaBatch(groups [][]diffusion.Seed) []float64 {
	ests := e.RunBatch(groups, nil)
	out := make([]float64, len(ests))
	for i, est := range ests {
		out[i] = est.Sigma
	}
	return out
}

// MeanWeights delegates to the local engine: it is one group's worth
// of simulation, and the local engine computes it bit-identically to
// any worker (same seed derivation, same streams).
func (e *Estimator) MeanWeights(seeds []diffusion.Seed, users []int) []float64 {
	return e.local.MeanWeights(seeds, users)
}

// shardAssign pairs a planned sample range with the remote preferred
// to compute it.
type shardAssign struct {
	rg        Range
	preferred int
}

// assignments plans the batch's sample ranges over the healthy
// remotes. With weighted planning enabled and at least one measured
// throughput EWMA, ranges are sized proportionally to each remote's
// samples/sec (remotes without data yet get the mean of the measured
// ones); otherwise the plan is the even static split. Either way the
// ranges are contiguous in index order, so the §7 merge is untouched —
// the plan moves work, never results.
func (e *Estimator) assignments(remotes []*Remote) []shardAssign {
	if e.pool.weighted.Load() && len(remotes) > 1 {
		weights := make([]float64, len(remotes))
		measured, sum := 0, 0.0
		for i, r := range remotes {
			w := r.EWMASamplesPerSec()
			if w > 0 {
				measured++
				sum += w
			}
			weights[i] = w
		}
		if measured > 0 {
			mean := sum / float64(measured)
			for i, w := range weights {
				if w <= 0 {
					weights[i] = mean
				}
			}
			ranges := PlanWeighted(e.m, weights)
			out := make([]shardAssign, 0, len(ranges))
			for i, rg := range ranges {
				if rg.Span() > 0 {
					out = append(out, shardAssign{rg: rg, preferred: i})
				}
			}
			return out
		}
	}
	ranges := Plan(e.m, len(remotes))
	out := make([]shardAssign, len(ranges))
	for i, rg := range ranges {
		out[i] = shardAssign{rg: rg, preferred: i % len(remotes)}
	}
	return out
}

// shardState tracks one in-flight range: the first finisher (primary
// dispatch, speculative duplicate, or local fallback) wins the CAS and
// writes the grid; everyone else discards. cancel aborts the losers'
// outstanding RPCs so stragglers stop burning worker time once their
// range is settled.
type shardState struct {
	shardAssign
	done       atomic.Bool
	speculated atomic.Bool
	ctx        context.Context
	cancel     context.CancelFunc
}

// runBatch is the sharded engine body.
func (e *Estimator) runBatch(groups [][]diffusion.Seed, market []bool, masks [][]bool, withPi bool) []diffusion.Estimate {
	k := len(groups)
	if k == 0 {
		return make([]diffusion.Estimate, 0)
	}
	remotes := e.pool.healthyRemotes()
	if len(remotes) == 0 {
		// dead or empty fleet: the whole batch runs locally, and the
		// counter must say so — operators watch local_fallbacks to spot
		// a coordinator that has silently stopped using its workers
		e.pool.localFallbacks.Add(1)
		return e.localBatch(groups, market, masks, withPi)
	}
	blob, err := e.pool.blobFor(e.p)
	if err != nil {
		// un-encodable problem: nothing remote can be done
		e.pool.localFallbacks.Add(1)
		return e.localBatch(groups, market, masks, withPi)
	}

	tmpl := EstimateRequest{
		Problem: blob.Key.String(),
		Seed:    e.seed,
		WithPi:  withPi,
		Groups:  groups,
		Market:  maskToUsers(market),
	}
	if masks != nil {
		tmpl.PerGroupMasks = make([][]int32, len(masks))
		for g, mk := range masks {
			tmpl.PerGroupMasks[g] = maskToUsers(mk)
		}
	}

	grid := make([][]diffusion.SampleResult, k)
	for g := range grid {
		grid[g] = make([]diffusion.SampleResult, e.m)
	}

	// batch span parenting every shard_rpc span below; shard contexts
	// derive from bctx so the trace rides the same cancellation tree
	batchSpan := obs.StartSpan(e.ctx, "shard_batch")
	defer batchSpan.End()
	batchSpan.SetAttrInt("groups", int64(k))
	batchSpan.SetAttrInt("samples", int64(e.m))
	bctx := obs.ContextWithSpan(e.ctx, batchSpan)

	assigns := e.assignments(remotes)
	batchSpan.SetAttrInt("shards", int64(len(assigns)))
	states := make([]*shardState, len(assigns))
	for i, a := range assigns {
		sctx, cancel := context.WithCancel(bctx)
		states[i] = &shardState{shardAssign: a, ctx: sctx, cancel: cancel}
	}
	defer func() {
		for _, st := range states {
			st.cancel()
		}
	}()

	batchStart := time.Now()
	var (
		latMu     sync.Mutex
		latencies []time.Duration
	)
	var doneCount atomic.Int32
	allDone := make(chan struct{})
	// finish settles one range exactly once (CAS on done): copy the
	// rows into the grid, count the win under the right counter, record
	// the latency for straggler detection, and abort any duplicate
	// still in flight. Idempotence makes the race benign — a primary
	// and its speculative duplicate compute bit-identical rows, so
	// which one wins is invisible downstream; counters are bumped only
	// by the winner so local_fallbacks/speculative_hits record what
	// actually produced the result, not what was merely attempted.
	finish := func(st *shardState, rows [][]diffusion.SampleResult, remote, speculative bool) {
		if !st.done.CompareAndSwap(false, true) {
			return
		}
		for g := range rows {
			copy(grid[g][st.rg.Lo:st.rg.Hi], rows[g])
		}
		if remote {
			e.remoteSamples.Add(uint64(k * st.rg.Span()))
		} else {
			e.pool.localFallbacks.Add(1)
		}
		if speculative {
			e.pool.speculativeHits.Add(1)
		}
		latMu.Lock()
		latencies = append(latencies, time.Since(batchStart))
		latMu.Unlock()
		st.cancel()
		if int(doneCount.Add(1)) == len(states) {
			close(allDone)
		}
	}

	var wg sync.WaitGroup
	for _, st := range states {
		wg.Add(1)
		go func(st *shardState) {
			defer wg.Done()
			req := tmpl
			req.Lo, req.Hi = st.rg.Lo, st.rg.Hi
			rows := e.pool.runShard(st.ctx, remotes, st.preferred, blob, &req, e.p.NumItems())
			remote := rows != nil
			if rows == nil {
				if e.ctx.Err() != nil || st.done.Load() {
					return // cancelled, or a speculative duplicate won
				}
				// every worker failed for this range: compute it locally
				// — identical outcomes, since sample streams depend only
				// on the global index (finish counts the fallback iff
				// these rows win; a speculative duplicate may still beat
				// them with a remote result)
				rows = e.local.RunBatchSamples(groups, market, masks, withPi, st.rg.Lo, st.rg.Hi)
				if e.ctx.Err() != nil {
					return
				}
			}
			finish(st, rows, remote, false)
		}(st)
	}
	// Speculative straggler re-dispatch: once more than half the
	// ranges have completed, any range still running past
	// specFactor × the median completed latency gets one duplicate
	// dispatch on an idle healthy worker. Safe by idempotence — the
	// duplicate computes the same bytes, finish()'s CAS picks a winner
	// by range identity, and the loser's RPC is cancelled. The monitor
	// parks on allDone, so fast batches pay one channel-select, not a
	// ticker tick.
	if e.pool.speculate.Load() && len(remotes) > 1 && len(states) > 1 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(e.pool.specTick)
			defer tick.Stop()
			for {
				select {
				case <-allDone:
					return
				case <-e.ctx.Done():
					return
				case <-tick.C:
				}
				latMu.Lock()
				completed := append([]time.Duration(nil), latencies...)
				latMu.Unlock()
				// wait for at least half the ranges before trusting the
				// median (with two shards, one completion is the half)
				if len(completed) == 0 || 2*len(completed) < len(states) {
					continue
				}
				sort.Slice(completed, func(a, b int) bool { return completed[a] < completed[b] })
				threshold := time.Duration(e.pool.specFactor * float64(completed[len(completed)/2]))
				if threshold < e.pool.specMin {
					threshold = e.pool.specMin
				}
				if time.Since(batchStart) <= threshold {
					continue
				}
				for _, st := range states {
					if st.done.Load() || st.speculated.Load() {
						continue
					}
					spare := pickIdleRemote(remotes, st.preferred)
					if spare < 0 {
						continue
					}
					st.speculated.Store(true)
					wg.Add(1)
					go func(st *shardState, r *Remote) {
						defer wg.Done()
						req := tmpl
						req.Lo, req.Hi = st.rg.Lo, st.rg.Hi
						rows := e.pool.tryShardOn(st.ctx, r, blob, &req, e.p.NumItems())
						if rows != nil && e.ctx.Err() == nil {
							finish(st, rows, true, true)
						}
					}(st, remotes[spare])
				}
			}
		}()
	}
	wg.Wait()
	if e.ctx.Err() != nil {
		// match the local engine's cancellation contract: return
		// promptly with placeholder estimates the caller must discard
		out := make([]diffusion.Estimate, k)
		items := e.p.NumItems()
		buf := make([]float64, k*items)
		for g := range out {
			out[g].PerItem = buf[g*items : (g+1)*items : (g+1)*items]
		}
		return out
	}
	return diffusion.ReduceSampleGrid(grid, e.p.NumItems())
}

// pickIdleRemote returns the index of a healthy remote with no shard
// RPC in flight, skipping the straggler's own preferred worker, or -1
// when the fleet is saturated — speculation must never queue behind
// busy workers, only soak up genuinely idle capacity.
func pickIdleRemote(remotes []*Remote, avoid int) int {
	for i, r := range remotes {
		if i == avoid {
			continue
		}
		if r.dispatchable() && r.inflight.Load() == 0 {
			return i
		}
	}
	return -1
}

// localBatch runs the whole batch on the embedded engine — the
// empty-pool / dead-fleet degradation path, bit-identical to a
// non-sharded solve.
func (e *Estimator) localBatch(groups [][]diffusion.Seed, market []bool, masks [][]bool, withPi bool) []diffusion.Estimate {
	if masks != nil {
		return e.local.RunBatchMasked(groups, masks, withPi)
	}
	if withPi {
		return e.local.RunBatchPi(groups, market)
	}
	return e.local.RunBatch(groups, market)
}

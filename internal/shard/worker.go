package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"imdpp/internal/diffusion"
	"imdpp/internal/service"
)

// WorkerConfig sizes a shard worker. The zero value selects defaults.
type WorkerConfig struct {
	// MaxProblems bounds the content-addressed problem store (default
	// 8; the oldest problem is evicted beyond it). Evicted problems
	// are transparently re-uploaded by coordinators on the next
	// unknown_problem response.
	MaxProblems int
	// Workers bounds estimator goroutines per shard request
	// (0 → GOMAXPROCS).
	Workers int
	// MaxUnits bounds one estimate request's total work — groups ×
	// sample-range span, each unit one campaign simulation — so a
	// buggy or hostile coordinator cannot OOM or pin the worker with
	// one request (default 1<<24; requests beyond it are rejected
	// with a typed bad_request).
	MaxUnits int
}

// Worker is the server side of the estimator RPC: a content-addressed
// store of decoded problems plus the estimate handler that simulates
// one shard's sample range. It holds one pooled batch-engine estimator
// per problem; requests against the same problem serialise on that
// estimator (one coordinator dispatches at most one shard per worker
// per batch, so the lock is uncontended in the intended topology).
type Worker struct {
	cfg WorkerConfig

	mu       sync.Mutex
	problems map[service.Key]*workerProblem
	order    []service.Key // insertion order, oldest first, for eviction

	shardsServed atomic.Uint64
	samplesDone  atomic.Uint64
}

type workerProblem struct {
	mu  sync.Mutex
	p   *diffusion.Problem
	est *diffusion.Estimator
}

// NewWorker creates a shard worker.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.MaxProblems <= 0 {
		cfg.MaxProblems = 8
	}
	if cfg.MaxUnits <= 0 {
		cfg.MaxUnits = 1 << 24
	}
	return &Worker{cfg: cfg, problems: make(map[service.Key]*workerProblem)}
}

// Mount registers the shard RPC endpoints on mux.
func (w *Worker) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST "+PathProblems, w.handleUpload)
	mux.HandleFunc("POST "+PathEstimate, w.handleEstimate)
}

// WorkerStats is the worker-side counter snapshot, reported by the
// worker daemon's /metrics.
type WorkerStats struct {
	ProblemsCached   int    `json:"problems_cached"`
	ShardsServed     uint64 `json:"shards_served"`
	SamplesSimulated uint64 `json:"samples_simulated"`
}

// Stats snapshots the worker counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	n := len(w.problems)
	w.mu.Unlock()
	return WorkerStats{
		ProblemsCached:   n,
		ShardsServed:     w.shardsServed.Load(),
		SamplesSimulated: w.samplesDone.Load(),
	}
}

// DropProblems empties the problem store — the observable effect of a
// worker restart. Coordinators recover through the unknown_problem
// re-upload path; tests use it to exercise exactly that.
func (w *Worker) DropProblems() {
	w.mu.Lock()
	w.problems = make(map[service.Key]*workerProblem)
	w.order = nil
	w.mu.Unlock()
}

// handleUpload decodes a problem image, verifies its content address
// by recomputation, and stores it under that key.
func (w *Worker) handleUpload(rw http.ResponseWriter, r *http.Request) {
	var u ProblemUpload
	if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad problem upload: %w", err))
		return
	}
	p, err := DecodeProblem(u)
	if err != nil {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	key := service.HashProblem(p)
	wp := &workerProblem{p: p, est: diffusion.NewEstimator(p, 1, 0)}
	wp.est.Workers = w.cfg.Workers

	w.mu.Lock()
	if _, ok := w.problems[key]; !ok {
		w.problems[key] = wp
		w.order = append(w.order, key)
		for len(w.order) > w.cfg.MaxProblems {
			delete(w.problems, w.order[0])
			w.order = w.order[1:]
		}
	}
	w.mu.Unlock()
	writeShardJSON(rw, http.StatusOK, UploadResponse{Hash: key.String()})
}

// handleEstimate simulates samples [Lo,Hi) of every group and returns
// their raw outcomes. The estimator is bound to the request context,
// so a coordinator abandoning the request (cancellation, failover
// timeout) preempts the simulation within about one campaign.
func (w *Worker) handleEstimate(rw http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad estimate request: %w", err))
		return
	}
	key, err := service.ParseKey(req.Problem)
	if err != nil {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	w.mu.Lock()
	wp := w.problems[key]
	w.mu.Unlock()
	if wp == nil {
		writeShardError(rw, http.StatusNotFound, CodeUnknownProblem,
			fmt.Errorf("problem %s not loaded on this worker", req.Problem))
		return
	}
	p := wp.p
	if req.Lo < 0 || req.Hi <= req.Lo {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("bad sample range [%d,%d)", req.Lo, req.Hi))
		return
	}
	span := req.Hi - req.Lo
	groups := len(req.Groups)
	if groups == 0 {
		groups = 1
	}
	if span > w.cfg.MaxUnits/groups {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("request of %d groups × %d samples exceeds the worker's %d-unit bound", len(req.Groups), span, w.cfg.MaxUnits))
		return
	}
	for g, seeds := range req.Groups {
		for _, s := range seeds {
			if s.User < 0 || s.User >= p.NumUsers() || s.Item < 0 || s.Item >= p.NumItems() || s.T < 1 || s.T > p.T {
				writeShardError(rw, http.StatusBadRequest, CodeBadRequest,
					fmt.Errorf("group %d: seed (%d,%d,%d) out of range", g, s.User, s.Item, s.T))
				return
			}
		}
	}
	market, err := usersToMask(req.Market, p.NumUsers())
	if err != nil {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	var masks [][]bool
	if req.PerGroupMasks != nil {
		if len(req.PerGroupMasks) != len(req.Groups) {
			writeShardError(rw, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("%d masks for %d groups", len(req.PerGroupMasks), len(req.Groups)))
			return
		}
		masks = make([][]bool, len(req.PerGroupMasks))
		for g, users := range req.PerGroupMasks {
			if masks[g], err = usersToMask(users, p.NumUsers()); err != nil {
				writeShardError(rw, http.StatusBadRequest, CodeBadRequest, err)
				return
			}
		}
	}

	wp.mu.Lock()
	wp.est.Seed = req.Seed
	wp.est.Bind(r.Context())
	samples := wp.est.RunBatchSamples(req.Groups, market, masks, req.WithPi, req.Lo, req.Hi)
	wp.mu.Unlock()

	if r.Context().Err() != nil {
		// the coordinator is gone; the partial result is garbage
		return
	}
	w.shardsServed.Add(1)
	w.samplesDone.Add(uint64(len(req.Groups) * (req.Hi - req.Lo)))
	writeShardJSON(rw, http.StatusOK, EstimateResponse{Samples: samples})
}

func writeShardJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}

func writeShardError(rw http.ResponseWriter, status int, code string, err error) {
	writeShardJSON(rw, status, ErrorBody{Error: err.Error(), Code: code})
}

package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"imdpp/internal/diffusion"
	"imdpp/internal/gridcache"
	"imdpp/internal/obs"
	"imdpp/internal/service"
)

// WorkerConfig sizes a shard worker. The zero value selects defaults.
type WorkerConfig struct {
	// MaxProblems bounds the content-addressed problem store (default
	// 8; the oldest problem is evicted beyond it). Evicted problems
	// are transparently re-uploaded by coordinators on the next
	// unknown_problem response.
	MaxProblems int
	// Workers bounds estimator goroutines per shard request
	// (0 → GOMAXPROCS).
	Workers int
	// MaxUnits bounds one estimate request's total work — groups ×
	// sample-range span, each unit one campaign simulation — so a
	// buggy or hostile coordinator cannot OOM or pin the worker with
	// one request (default 1<<24; requests beyond it are rejected
	// with a typed bad_request).
	MaxUnits int
	// Grid, when non-nil, memoizes raw sample grids across estimate
	// requests (DESIGN.md §10): coordinator re-dispatch, speculative
	// duplicates and repeated CELF waves over the same (problem, seed,
	// range, group) coordinates are served from the cache instead of
	// re-simulated, bit-identically. Workers host their own instance —
	// grids are cached where they are computed, never shipped warm.
	// Note the key includes the sample range [lo,hi): under the pool's
	// default throughput-weighted planning, ranges drift with the EWMAs
	// between batches, so cross-batch reuse is best with the static
	// split (Pool.SetWeighted(false)); within-batch reuse (repeated
	// CELF waves, coordinator re-dispatch) is unaffected.
	Grid *gridcache.Cache
	// Tracer, when non-nil, lets the worker join traced estimate
	// requests (DESIGN.md §11): its spans are recorded locally and
	// shipped back in the response for the coordinator to adopt.
	// Untraced requests — and a nil Tracer — change nothing.
	Tracer *obs.Tracer
}

// Worker is the server side of the estimator RPC: a content-addressed
// store of decoded problems plus the estimate handler that simulates
// one shard's sample range. It holds one pooled batch-engine estimator
// per problem; requests against the same problem serialise on that
// estimator (one coordinator dispatches at most one shard per worker
// per batch, so the lock is uncontended in the intended topology).
type Worker struct {
	cfg WorkerConfig

	mu       sync.Mutex
	problems map[service.Key]*workerProblem
	order    []service.Key // insertion order, oldest first, for eviction

	// Drain state (DESIGN.md §13): once draining, new RPCs are rejected
	// with a typed draining response while in-flight ones finish;
	// drained closes when the last one does.
	lifeMu        sync.Mutex
	draining      bool
	inflightN     int
	drained       chan struct{}
	drainedClosed bool

	shardsServed atomic.Uint64
	samplesDone  atomic.Uint64
}

type workerProblem struct {
	mu  sync.Mutex
	p   *diffusion.Problem
	est *diffusion.Estimator
}

// NewWorker creates a shard worker.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.MaxProblems <= 0 {
		cfg.MaxProblems = 8
	}
	if cfg.MaxUnits <= 0 {
		cfg.MaxUnits = 1 << 24
	}
	return &Worker{
		cfg:      cfg,
		problems: make(map[service.Key]*workerProblem),
		drained:  make(chan struct{}),
	}
}

// beginRequest admits one shard RPC unless the worker is draining.
func (w *Worker) beginRequest() bool {
	w.lifeMu.Lock()
	defer w.lifeMu.Unlock()
	if w.draining {
		return false
	}
	w.inflightN++
	return true
}

func (w *Worker) endRequest() {
	w.lifeMu.Lock()
	w.inflightN--
	if w.draining && w.inflightN == 0 && !w.drainedClosed {
		w.drainedClosed = true
		close(w.drained)
	}
	w.lifeMu.Unlock()
}

// BeginDrain puts the worker into drain (DESIGN.md §13): in-flight
// shard RPCs run to completion, new ones are rejected with the typed
// draining response (the coordinator re-plans those ranges elsewhere
// without a strike — bit-identically, §3/§7). The returned channel
// closes when the last in-flight request finishes; it is closed
// already if the worker is idle. Draining is one-way and idempotent.
func (w *Worker) BeginDrain() <-chan struct{} {
	w.lifeMu.Lock()
	w.draining = true
	if w.inflightN == 0 && !w.drainedClosed {
		w.drainedClosed = true
		close(w.drained)
	}
	w.lifeMu.Unlock()
	return w.drained
}

// Draining reports whether BeginDrain was called.
func (w *Worker) Draining() bool {
	w.lifeMu.Lock()
	defer w.lifeMu.Unlock()
	return w.draining
}

// Mount registers the shard RPC endpoints on mux.
func (w *Worker) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST "+PathProblems, w.handleUpload)
	mux.HandleFunc("POST "+PathEstimate, w.handleEstimate)
}

// WorkerStats is the worker-side counter snapshot, reported by the
// worker daemon's /metrics.
type WorkerStats struct {
	ProblemsCached   int    `json:"problems_cached"`
	ShardsServed     uint64 `json:"shards_served"`
	SamplesSimulated uint64 `json:"samples_simulated"`
	Draining         bool   `json:"draining"`
	// Grid nests the worker's sample-grid cache counters, mirroring
	// the coordinator /metrics shape; nil without a cache.
	Grid *gridcache.Stats `json:"grid,omitempty"`
}

// Stats snapshots the worker counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	n := len(w.problems)
	w.mu.Unlock()
	st := WorkerStats{
		ProblemsCached:   n,
		ShardsServed:     w.shardsServed.Load(),
		SamplesSimulated: w.samplesDone.Load(),
		Draining:         w.Draining(),
	}
	if w.cfg.Grid != nil {
		g := w.cfg.Grid.Stats()
		st.Grid = &g
	}
	return st
}

// DropProblems empties the problem store — the observable effect of a
// worker restart. Coordinators recover through the unknown_problem
// re-upload path; tests use it to exercise exactly that.
func (w *Worker) DropProblems() {
	w.mu.Lock()
	w.problems = make(map[service.Key]*workerProblem)
	w.order = nil
	w.mu.Unlock()
}

// readRequestBody drains a request body into a pooled buffer,
// rejecting bodies past the frame bound explicitly (rather than
// truncating them into confusing decode errors). The caller owns the
// returned buffer and must release it with putBuf.
func readRequestBody(r *http.Request) (*bytes.Buffer, error) {
	const maxBody = maxFramePayload + frameHeaderLen
	buf := getBuf()
	n, err := io.Copy(buf, io.LimitReader(r.Body, maxBody+1))
	if err == nil && n > maxBody {
		err = fmt.Errorf("request body exceeds the %d-byte frame bound", maxBody)
	}
	if err != nil {
		putBuf(buf)
		return nil, err
	}
	return buf, nil
}

// wantsBinary reports whether the request negotiated the binary codec
// for its body (Content-Type) or its response (Accept).
func wantsBinary(header string) bool {
	for _, part := range strings.Split(header, ",") {
		if isBinaryContentType(part) {
			return true
		}
	}
	return false
}

// handleUpload decodes a problem image (binary frame or JSON, by
// Content-Type), verifies its content address by recomputation, and
// stores it under that key. The ack is always JSON — it is a few
// dozen bytes either way.
func (w *Worker) handleUpload(rw http.ResponseWriter, r *http.Request) {
	if !w.beginRequest() {
		writeShardError(rw, http.StatusServiceUnavailable, CodeDraining, errDraining)
		return
	}
	defer w.endRequest()
	body, err := readRequestBody(r)
	if err != nil {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad problem upload: %w", err))
		return
	}
	var u ProblemUpload
	if wantsBinary(r.Header.Get("Content-Type")) {
		u, err = DecodeProblemUploadBinary(body.Bytes())
	} else {
		err = json.Unmarshal(body.Bytes(), &u)
	}
	putBuf(body)
	if err != nil {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad problem upload: %w", err))
		return
	}
	p, err := DecodeProblem(u)
	if err != nil {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	key := service.HashProblem(p)
	wp := &workerProblem{p: p, est: diffusion.NewEstimator(p, 1, 0)}
	wp.est.Workers = w.cfg.Workers
	wp.est.Grid = w.cfg.Grid.View(p)

	w.mu.Lock()
	if _, ok := w.problems[key]; !ok {
		w.problems[key] = wp
		w.order = append(w.order, key)
		for len(w.order) > w.cfg.MaxProblems {
			delete(w.problems, w.order[0])
			w.order = w.order[1:]
		}
	}
	w.mu.Unlock()
	writeShardJSON(rw, http.StatusOK, UploadResponse{Hash: key.String()})
}

// handleEstimate simulates samples [Lo,Hi) of every group and returns
// their raw outcomes — binary-framed when the Accept header asks for
// it, JSON otherwise. The estimator is bound to the request context,
// so a coordinator abandoning the request (cancellation, failover
// timeout) preempts the simulation within about one campaign.
func (w *Worker) handleEstimate(rw http.ResponseWriter, r *http.Request) {
	if !w.beginRequest() {
		writeShardError(rw, http.StatusServiceUnavailable, CodeDraining, errDraining)
		return
	}
	defer w.endRequest()
	body, err := readRequestBody(r)
	if err != nil {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad estimate request: %w", err))
		return
	}
	var req EstimateRequest
	if wantsBinary(r.Header.Get("Content-Type")) {
		req, err = DecodeEstimateRequestBinary(body.Bytes())
	} else {
		err = json.Unmarshal(body.Bytes(), &req)
	}
	putBuf(body)
	if err != nil {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad estimate request: %w", err))
		return
	}
	key, err := service.ParseKey(req.Problem)
	if err != nil {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	w.mu.Lock()
	wp := w.problems[key]
	w.mu.Unlock()
	if wp == nil {
		writeShardError(rw, http.StatusNotFound, CodeUnknownProblem,
			fmt.Errorf("problem %s not loaded on this worker", req.Problem))
		return
	}
	p := wp.p
	if req.Lo < 0 || req.Hi <= req.Lo {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("bad sample range [%d,%d)", req.Lo, req.Hi))
		return
	}
	span := req.Hi - req.Lo
	groups := len(req.Groups)
	if groups == 0 {
		groups = 1
	}
	if span > w.cfg.MaxUnits/groups {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("request of %d groups × %d samples exceeds the worker's %d-unit bound", len(req.Groups), span, w.cfg.MaxUnits))
		return
	}
	for g, seeds := range req.Groups {
		for _, s := range seeds {
			if s.User < 0 || s.User >= p.NumUsers() || s.Item < 0 || s.Item >= p.NumItems() || s.T < 1 || s.T > p.T {
				writeShardError(rw, http.StatusBadRequest, CodeBadRequest,
					fmt.Errorf("group %d: seed (%d,%d,%d) out of range", g, s.User, s.Item, s.T))
				return
			}
		}
	}
	market, err := usersToMask(req.Market, p.NumUsers())
	if err != nil {
		writeShardError(rw, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	var masks [][]bool
	if req.PerGroupMasks != nil {
		if len(req.PerGroupMasks) != len(req.Groups) {
			writeShardError(rw, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("%d masks for %d groups", len(req.PerGroupMasks), len(req.Groups)))
			return
		}
		masks = make([][]bool, len(req.PerGroupMasks))
		for g, users := range req.PerGroupMasks {
			if masks[g], err = usersToMask(users, p.NumUsers()); err != nil {
				writeShardError(rw, http.StatusBadRequest, CodeBadRequest, err)
				return
			}
		}
	}

	// join the coordinator's trace when the request carries one and a
	// tracer is configured; StartRemote returns nil otherwise and every
	// span call below is a no-op
	wspan := w.cfg.Tracer.StartRemote(req.TraceID, req.SpanID, "worker_estimate")
	wspan.SetAttrInt("groups", int64(len(req.Groups)))
	wspan.SetAttrInt("lo", int64(req.Lo))
	wspan.SetAttrInt("hi", int64(req.Hi))
	ctx := obs.ContextWithSpan(r.Context(), wspan)

	wp.mu.Lock()
	wp.est.Seed = req.Seed
	wp.est.Bind(ctx)
	samples := wp.est.RunBatchSamples(req.Groups, market, masks, req.WithPi, req.Lo, req.Hi)
	wp.mu.Unlock()

	if r.Context().Err() != nil {
		// the coordinator is gone; the partial result is garbage
		wspan.End()
		return
	}
	w.shardsServed.Add(1)
	w.samplesDone.Add(uint64(len(req.Groups) * (req.Hi - req.Lo)))
	resp := EstimateResponse{Samples: samples, Spans: wspan.EndCollect()}
	if wantsBinary(r.Header.Get("Accept")) {
		scratch := getScratch()
		out := resp.AppendBinary((*scratch)[:0])
		rw.Header().Set("Content-Type", ContentTypeBinary)
		rw.WriteHeader(http.StatusOK)
		_, _ = rw.Write(out)
		putScratch(scratch, out)
		return
	}
	writeShardJSON(rw, http.StatusOK, resp)
}

// errDraining is the body of every typed draining rejection.
var errDraining = errors.New("worker draining: finishing in-flight shards, not accepting new ones")

func writeShardJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}

func writeShardError(rw http.ResponseWriter, status int, code string, err error) {
	writeShardJSON(rw, status, ErrorBody{Error: err.Error(), Code: code})
}

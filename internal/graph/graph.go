// Package graph implements the social-network substrate for IMDPP:
// a compact directed weighted graph with CSR-style adjacency, plus the
// traversals (BFS, Dijkstra on influence probabilities) and statistics
// the Dysim pipeline needs.
//
// Edge weights carry the *initial* social influence strength
// P0act(u,v) in (0,1]. The diffusion engine layers a dynamic
// multiplier on top of these base weights (influence learning), so the
// graph itself is immutable after construction.
package graph

import (
	"fmt"
	"math"
)

// Edge is an outgoing (or incoming) arc with its base influence strength.
type Edge struct {
	To int32   // neighbour vertex id
	W  float64 // base influence strength P0act in (0,1]
}

// Graph is a directed weighted graph over vertices 0..N-1. Undirected
// social networks are represented by storing both arc directions.
type Graph struct {
	n        int
	directed bool
	out      [][]Edge
	in       [][]Edge
	m        int // number of stored arcs
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n        int
	directed bool
	from     []int32
	to       []int32
	w        []float64
}

// NewBuilder creates a builder for a graph with n vertices. If directed
// is false, AddEdge stores both directions with the same weight.
func NewBuilder(n int, directed bool) *Builder {
	return &Builder{n: n, directed: directed}
}

// AddEdge records an arc u->v with base influence strength w. For
// undirected graphs the reverse arc v->u is implied. It panics on
// out-of-range vertices; weight is clamped to (0,1].
func (b *Builder) AddEdge(u, v int, w float64) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, b.n))
	}
	if u == v {
		return // self-influence is meaningless in the diffusion model
	}
	if w <= 0 {
		w = 1e-9
	}
	if w > 1 {
		w = 1
	}
	b.from = append(b.from, int32(u))
	b.to = append(b.to, int32(v))
	b.w = append(b.w, w)
}

// Build finalises the graph. Duplicate arcs are kept (the generators
// never emit them); adjacency is grouped per vertex.
func (b *Builder) Build() *Graph {
	g := &Graph{n: b.n, directed: b.directed}
	g.out = make([][]Edge, b.n)
	g.in = make([][]Edge, b.n)
	outDeg := make([]int, b.n)
	inDeg := make([]int, b.n)
	count := func(u, v int32) {
		outDeg[u]++
		inDeg[v]++
	}
	for i := range b.from {
		count(b.from[i], b.to[i])
		if !b.directed {
			count(b.to[i], b.from[i])
		}
	}
	for v := 0; v < b.n; v++ {
		if outDeg[v] > 0 {
			g.out[v] = make([]Edge, 0, outDeg[v])
		}
		if inDeg[v] > 0 {
			g.in[v] = make([]Edge, 0, inDeg[v])
		}
	}
	add := func(u, v int32, w float64) {
		g.out[u] = append(g.out[u], Edge{To: v, W: w})
		g.in[v] = append(g.in[v], Edge{To: u, W: w})
		g.m++
	}
	for i := range b.from {
		add(b.from[i], b.to[i], b.w[i])
		if !b.directed {
			add(b.to[i], b.from[i], b.w[i])
		}
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of stored arcs (an undirected edge counts twice).
func (g *Graph) M() int { return g.m }

// Directed reports whether the graph was built as directed.
func (g *Graph) Directed() bool { return g.directed }

// Out returns the outgoing arcs of u. The slice must not be modified.
func (g *Graph) Out(u int) []Edge { return g.out[u] }

// In returns the incoming arcs of u. The slice must not be modified.
func (g *Graph) In(u int) []Edge { return g.in[u] }

// OutDegree returns len(Out(u)).
func (g *Graph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns len(In(u)).
func (g *Graph) InDegree(u int) int { return len(g.in[u]) }

// AvgInfluence returns the mean base influence strength over all arcs,
// the "Avg. initial influence strength" row of Table II.
func (g *Graph) AvgInfluence() float64 {
	if g.m == 0 {
		return 0
	}
	sum := 0.0
	for u := 0; u < g.n; u++ {
		for _, e := range g.out[u] {
			sum += e.W
		}
	}
	return sum / float64(g.m)
}

// BFSDepths runs a breadth-first search from each source over outgoing
// arcs and returns hop distances (-1 when unreachable).
func (g *Graph) BFSDepths(sources []int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, len(sources))
	for _, s := range sources {
		if s >= 0 && s < g.n && dist[s] < 0 {
			dist[s] = 0
			queue = append(queue, int32(s))
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for _, e := range g.out[u] {
			if dist[e.To] < 0 {
				dist[e.To] = du + 1
				queue = append(queue, e.To)
			}
		}
	}
	return dist
}

// HopDistance returns the minimum hop count from u to v over outgoing
// arcs, or -1 when unreachable.
func (g *Graph) HopDistance(u, v int) int {
	if u == v {
		return 0
	}
	return g.BFSDepths([]int{u})[v]
}

// EccentricityFrom returns the maximum finite BFS depth from the
// sources, i.e. the radius of the region they reach. Target-market
// diameters d_tau are estimated this way.
func (g *Graph) EccentricityFrom(sources []int) int {
	dist := g.BFSDepths(sources)
	max := 0
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	return max
}

// Components returns a component id per vertex, ignoring direction.
func (g *Graph) Components() (comp []int, count int) {
	comp = make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int32
	for s := 0; s < g.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = count
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.out[u] {
				if comp[e.To] < 0 {
					comp[e.To] = count
					stack = append(stack, e.To)
				}
			}
			for _, e := range g.in[u] {
				if comp[e.To] < 0 {
					comp[e.To] = count
					stack = append(stack, e.To)
				}
			}
		}
		count++
	}
	return comp, count
}

// MaxInfluencePaths runs Dijkstra from source on lengths -log(w) and
// returns, per vertex, the probability of the maximum-influence path
// (product of arc strengths along the best path; 0 when unreachable,
// 1 for the source itself). This is the MIP machinery of Chen et al.
// used by MIOA and by the PS baseline.
func (g *Graph) MaxInfluencePaths(source int) []float64 {
	prob := make([]float64, g.n)
	g.MaxInfluencePathsInto(source, prob, nil)
	return prob
}

// MaxInfluencePathsInto is the allocation-free form of
// MaxInfluencePaths. prob must have length N; parent, when non-nil,
// receives the Dijkstra tree (parent[source] = source, -1 when
// unreachable).
func (g *Graph) MaxInfluencePathsInto(source int, prob []float64, parent []int32) {
	for i := range prob {
		prob[i] = 0
	}
	if parent != nil {
		for i := range parent {
			parent[i] = -1
		}
		parent[source] = int32(source)
	}
	prob[source] = 1
	h := &probHeap{items: []probItem{{v: int32(source), p: 1}}}
	for h.Len() > 0 {
		it := h.pop()
		if it.p < prob[it.v] {
			continue // stale entry
		}
		for _, e := range g.out[it.v] {
			np := it.p * e.W
			if np > prob[e.To] {
				prob[e.To] = np
				if parent != nil {
					parent[e.To] = it.v
				}
				h.push(probItem{v: e.To, p: np})
			}
		}
	}
}

// probHeap is a max-heap on path probability (equivalently a min-heap
// on -log p, but products avoid the log calls on the hot path).
type probItem struct {
	v int32
	p float64
}

type probHeap struct{ items []probItem }

func (h *probHeap) Len() int { return len(h.items) }

func (h *probHeap) push(it probItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].p >= h.items[i].p {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *probHeap) pop() probItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && h.items[l].p > h.items[big].p {
			big = l
		}
		if r < last && h.items[r].p > h.items[big].p {
			big = r
		}
		if big == i {
			break
		}
		h.items[i], h.items[big] = h.items[big], h.items[i]
		i = big
	}
	return top
}

// DegreeStats summarises the degree distribution.
type DegreeStats struct {
	MinOut, MaxOut int
	MeanOut        float64
}

// Degrees computes out-degree statistics.
func (g *Graph) Degrees() DegreeStats {
	st := DegreeStats{MinOut: math.MaxInt}
	total := 0
	for v := 0; v < g.n; v++ {
		d := len(g.out[v])
		total += d
		if d < st.MinOut {
			st.MinOut = d
		}
		if d > st.MaxOut {
			st.MaxOut = d
		}
	}
	if g.n > 0 {
		st.MeanOut = float64(total) / float64(g.n)
	} else {
		st.MinOut = 0
	}
	return st
}

package graph

import (
	"fmt"
	"math"
	"sort"
)

// Arcs is a zero-copy view of one vertex's adjacency: parallel target
// and weight slices into the graph's packed CSR arrays. Neither slice
// may be modified. Iterate as
//
//	arcs := g.Out(u)
//	for i, v := range arcs.To {
//		w := arcs.W[i]
//		...
//	}
type Arcs struct {
	To []int32   // neighbour vertex ids, sorted ascending
	W  []float64 // parallel base influence strengths P0act in (0,1]
}

// Len returns the number of arcs in the view.
func (a Arcs) Len() int { return len(a.To) }

// Graph is a directed weighted graph over vertices 0..N-1. Undirected
// social networks are represented by storing both arc directions.
type Graph struct {
	n        int
	directed bool
	m        int // number of stored arcs after duplicate merging

	// out-adjacency CSR: arcs of u are outTo/outW[outOff[u]:outOff[u+1]]
	outOff []int32
	outTo  []int32
	outW   []float64
	// in-adjacency CSR, same layout keyed by target vertex
	inOff []int32
	inTo  []int32
	inW   []float64
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n        int
	directed bool
	from     []int32
	to       []int32
	w        []float64
}

// NewBuilder creates a builder for a graph with n vertices. If directed
// is false, AddEdge stores both directions with the same weight.
func NewBuilder(n int, directed bool) *Builder {
	return &Builder{n: n, directed: directed}
}

// AddEdge records an arc u->v with base influence strength w. For
// undirected graphs the reverse arc v->u is implied. It panics on
// out-of-range vertices; weight is clamped to (0,1].
func (b *Builder) AddEdge(u, v int, w float64) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, b.n))
	}
	if u == v {
		return // self-influence is meaningless in the diffusion model
	}
	if w <= 0 {
		w = 1e-9
	}
	if w > 1 {
		w = 1
	}
	b.from = append(b.from, int32(u))
	b.to = append(b.to, int32(v))
	b.w = append(b.w, w)
}

// Build finalises the graph into CSR form. Per-vertex adjacency is
// sorted by target id (the determinism contract — see the package
// doc), and duplicate arcs are merged keeping the maximum weight.
func (b *Builder) Build() *Graph {
	g := &Graph{n: b.n, directed: b.directed}

	// expand undirected edges into explicit arcs
	arcs := len(b.from)
	if !b.directed {
		arcs *= 2
	}
	if int64(arcs) > math.MaxInt32 {
		// the CSR offsets/cursors are int32; fail loudly instead of
		// wrapping into corrupt adjacency
		panic(fmt.Sprintf("graph: %d arcs exceed the int32 CSR offset range", arcs))
	}

	// counting sort by source into provisional out arrays
	deg := make([]int32, b.n+1)
	for i := range b.from {
		deg[b.from[i]+1]++
		if !b.directed {
			deg[b.to[i]+1]++
		}
	}
	off := make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		off[v+1] = off[v] + deg[v+1]
	}
	to := make([]int32, arcs)
	w := make([]float64, arcs)
	cursor := append([]int32(nil), off...)
	place := func(u, v int32, wt float64) {
		c := cursor[u]
		to[c] = v
		w[c] = wt
		cursor[u] = c + 1
	}
	for i := range b.from {
		place(b.from[i], b.to[i], b.w[i])
		if !b.directed {
			place(b.to[i], b.from[i], b.w[i])
		}
	}

	// per-vertex: sort by target, merge duplicates keeping max weight,
	// compacting in place
	outOff := make([]int32, b.n+1)
	write := int32(0)
	for v := 0; v < b.n; v++ {
		s, e := off[v], off[v+1]
		seg := arcSeg{to: to[s:e], w: w[s:e]}
		sort.Sort(seg)
		for i := s; i < e; i++ {
			if write > outOff[v] && to[write-1] == to[i] {
				if w[i] > w[write-1] {
					w[write-1] = w[i]
				}
				continue
			}
			to[write] = to[i]
			w[write] = w[i]
			write++
		}
		outOff[v+1] = write
	}
	g.outOff = outOff
	g.outTo = to[:write:write]
	g.outW = w[:write:write]
	g.m = int(write)
	g.buildIn()
	return g
}

// buildIn derives the in-adjacency CSR from the merged out-arcs:
// counting sort by target. Iterating sources in ascending order fills
// each in-segment in ascending source order, so in-lists come out
// sorted for free, and the out-merge already removed duplicates. It is
// shared by Build and Import so an imported graph reproduces the
// in-arrays of the original bit for bit.
func (g *Graph) buildIn() {
	inOff := make([]int32, g.n+1)
	for _, v := range g.outTo {
		inOff[v+1]++
	}
	for v := 0; v < g.n; v++ {
		inOff[v+1] += inOff[v]
	}
	g.inOff = inOff
	g.inTo = make([]int32, g.m)
	g.inW = make([]float64, g.m)
	cursor := append([]int32(nil), inOff...)
	for u := 0; u < g.n; u++ {
		for i := g.outOff[u]; i < g.outOff[u+1]; i++ {
			v := g.outTo[i]
			c := cursor[v]
			g.inTo[c] = int32(u)
			g.inW[c] = g.outW[i]
			cursor[v] = c + 1
		}
	}
}

// arcSeg sorts one vertex's (to, w) segment by target id. Duplicate
// targets stay adjacent in any relative order; the merge keeps the max
// weight, so the result does not depend on their ordering.
type arcSeg struct {
	to []int32
	w  []float64
}

func (s arcSeg) Len() int           { return len(s.to) }
func (s arcSeg) Less(i, j int) bool { return s.to[i] < s.to[j] }
func (s arcSeg) Swap(i, j int) {
	s.to[i], s.to[j] = s.to[j], s.to[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of stored arcs (an undirected edge counts twice).
func (g *Graph) M() int { return g.m }

// Directed reports whether the graph was built as directed.
func (g *Graph) Directed() bool { return g.directed }

// Out returns a view of the outgoing arcs of u, sorted by target. The
// view must not be modified.
func (g *Graph) Out(u int) Arcs {
	s, e := g.outOff[u], g.outOff[u+1]
	return Arcs{To: g.outTo[s:e], W: g.outW[s:e]}
}

// In returns a view of the incoming arcs of u, sorted by source. The
// view must not be modified.
func (g *Graph) In(u int) Arcs {
	s, e := g.inOff[u], g.inOff[u+1]
	return Arcs{To: g.inTo[s:e], W: g.inW[s:e]}
}

// OutDegree returns Out(u).Len().
func (g *Graph) OutDegree(u int) int { return int(g.outOff[u+1] - g.outOff[u]) }

// InDegree returns In(u).Len().
func (g *Graph) InDegree(u int) int { return int(g.inOff[u+1] - g.inOff[u]) }

// AvgInfluence returns the mean base influence strength over all arcs,
// the "Avg. initial influence strength" row of Table II.
func (g *Graph) AvgInfluence() float64 {
	if g.m == 0 {
		return 0
	}
	sum := 0.0
	for _, w := range g.outW {
		sum += w
	}
	return sum / float64(g.m)
}

// BFSDepths runs a breadth-first search from each source over outgoing
// arcs and returns hop distances (-1 when unreachable).
func (g *Graph) BFSDepths(sources []int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, len(sources))
	for _, s := range sources {
		if s >= 0 && s < g.n && dist[s] < 0 {
			dist[s] = 0
			queue = append(queue, int32(s))
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for _, v := range g.outTo[g.outOff[u]:g.outOff[u+1]] {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// HopDistance returns the minimum hop count from u to v over outgoing
// arcs, or -1 when unreachable.
func (g *Graph) HopDistance(u, v int) int {
	if u == v {
		return 0
	}
	return g.BFSDepths([]int{u})[v]
}

// EccentricityFrom returns the maximum finite BFS depth from the
// sources, i.e. the radius of the region they reach. Target-market
// diameters d_tau are estimated this way.
func (g *Graph) EccentricityFrom(sources []int) int {
	dist := g.BFSDepths(sources)
	max := 0
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	return max
}

// Components returns a component id per vertex, ignoring direction.
func (g *Graph) Components() (comp []int, count int) {
	comp = make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int32
	for s := 0; s < g.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = count
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.outTo[g.outOff[u]:g.outOff[u+1]] {
				if comp[v] < 0 {
					comp[v] = count
					stack = append(stack, v)
				}
			}
			for _, v := range g.inTo[g.inOff[u]:g.inOff[u+1]] {
				if comp[v] < 0 {
					comp[v] = count
					stack = append(stack, v)
				}
			}
		}
		count++
	}
	return comp, count
}

// MaxInfluencePaths runs Dijkstra from source on lengths -log(w) and
// returns, per vertex, the probability of the maximum-influence path
// (product of arc strengths along the best path; 0 when unreachable,
// 1 for the source itself). This is the MIP machinery of Chen et al.
// used by MIOA and by the PS baseline.
func (g *Graph) MaxInfluencePaths(source int) []float64 {
	prob := make([]float64, g.n)
	g.MaxInfluencePathsInto(source, prob, nil)
	return prob
}

// MaxInfluencePathsInto is the allocation-free form of
// MaxInfluencePaths. prob must have length N; parent, when non-nil,
// receives the Dijkstra tree (parent[source] = source, -1 when
// unreachable).
func (g *Graph) MaxInfluencePathsInto(source int, prob []float64, parent []int32) {
	for i := range prob {
		prob[i] = 0
	}
	if parent != nil {
		for i := range parent {
			parent[i] = -1
		}
		parent[source] = int32(source)
	}
	prob[source] = 1
	h := &probHeap{items: []probItem{{v: int32(source), p: 1}}}
	for h.Len() > 0 {
		it := h.pop()
		if it.p < prob[it.v] {
			continue // stale entry
		}
		s, e := g.outOff[it.v], g.outOff[it.v+1]
		for i := s; i < e; i++ {
			v := g.outTo[i]
			np := it.p * g.outW[i]
			if np > prob[v] {
				prob[v] = np
				if parent != nil {
					parent[v] = it.v
				}
				h.push(probItem{v: v, p: np})
			}
		}
	}
}

// probHeap is a max-heap on path probability (equivalently a min-heap
// on -log p, but products avoid the log calls on the hot path).
type probItem struct {
	v int32
	p float64
}

type probHeap struct{ items []probItem }

func (h *probHeap) Len() int { return len(h.items) }

func (h *probHeap) push(it probItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].p >= h.items[i].p {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *probHeap) pop() probItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && h.items[l].p > h.items[big].p {
			big = l
		}
		if r < last && h.items[r].p > h.items[big].p {
			big = r
		}
		if big == i {
			break
		}
		h.items[i], h.items[big] = h.items[big], h.items[i]
		i = big
	}
	return top
}

// DegreeStats summarises the degree distribution.
type DegreeStats struct {
	MinOut, MaxOut int
	MeanOut        float64
}

// Degrees computes out-degree statistics.
func (g *Graph) Degrees() DegreeStats {
	st := DegreeStats{MinOut: math.MaxInt}
	total := 0
	for v := 0; v < g.n; v++ {
		d := g.OutDegree(v)
		total += d
		if d < st.MinOut {
			st.MinOut = d
		}
		if d > st.MaxOut {
			st.MaxOut = d
		}
	}
	if g.n > 0 {
		st.MeanOut = float64(total) / float64(g.n)
	} else {
		st.MinOut = 0
	}
	return st
}

package graph

import (
	"math"
	"math/rand"
	"testing"

	"imdpp/internal/wirebin"
)

// randomCSR builds a canonical graph (through Build, so adjacency is
// sorted and deduplicated) with random arcs.
func randomCSR(rng *rand.Rand, n, arcs int, directed bool) *Graph {
	b := NewBuilder(n, directed)
	for i := 0; i < arcs; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.AddEdge(u, v, 0.05+0.9*rng.Float64())
	}
	return b.Build()
}

func TestExportBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []*Graph{
		NewBuilder(0, true).Build(),
		NewBuilder(3, true).Build(), // vertices, no arcs
		randomCSR(rng, 1, 0, true),
		randomCSR(rng, 12, 40, true),
		randomCSR(rng, 12, 40, false),
		randomCSR(rng, 200, 1500, true),
	}
	for ci, g := range cases {
		e := g.Export()
		b := e.AppendBinary(nil)
		got, err := DecodeBinaryExport(wirebin.NewReader(b))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if got.N != e.N || got.Directed != e.Directed ||
			len(got.OutOff) != len(e.OutOff) || len(got.OutTo) != len(e.OutTo) || len(got.OutW) != len(e.OutW) {
			t.Fatalf("case %d: shape drifted: %+v vs %+v", ci, got, e)
		}
		for i := range e.OutOff {
			if got.OutOff[i] != e.OutOff[i] {
				t.Fatalf("case %d: offset %d differs", ci, i)
			}
		}
		for i := range e.OutTo {
			if got.OutTo[i] != e.OutTo[i] {
				t.Fatalf("case %d: target %d differs", ci, i)
			}
			if math.Float64bits(got.OutW[i]) != math.Float64bits(e.OutW[i]) {
				t.Fatalf("case %d: weight %d differs bitwise", ci, i)
			}
		}
		// and the image must Import back to an identical graph
		gg, err := Import(got)
		if err != nil {
			t.Fatalf("case %d: import of binary round trip: %v", ci, err)
		}
		if gg.N() != g.N() || gg.M() != g.M() {
			t.Fatalf("case %d: imported graph shape drifted", ci)
		}
	}
}

// FuzzDecodeBinaryExport: arbitrary bytes must produce a typed error
// or an Export whose re-encode decodes again — never a panic.
func FuzzDecodeBinaryExport(f *testing.F) {
	f.Add([]byte{})
	f.Add(randomCSR(rand.New(rand.NewSource(2)), 6, 14, true).Export().AppendBinary(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeBinaryExport(wirebin.NewReader(data))
		if err != nil {
			return
		}
		b := e.AppendBinary(nil)
		if _, err := DecodeBinaryExport(wirebin.NewReader(b)); err != nil {
			t.Fatalf("re-encode of decoded export failed: %v", err)
		}
	})
}

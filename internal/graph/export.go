package graph

import "fmt"

// Export is the serialisable image of a Graph: the out-adjacency CSR
// arrays exactly as stored. Because Build canonicalises adjacency
// (sorted by target, duplicates merged), the exported arrays are a
// canonical function of the edge multiset, and Import reproduces the
// original Graph — including the derived in-adjacency — bit for bit.
// The JSON field names are a stable wire contract of the shard
// subsystem's problem upload.
type Export struct {
	N        int       `json:"n"`
	Directed bool      `json:"directed"`
	OutOff   []int32   `json:"out_off"`
	OutTo    []int32   `json:"out_to"`
	OutW     []float64 `json:"out_w"`
}

// Export returns the graph's CSR image. The slices are views of the
// graph's own arrays (zero-copy); callers must not modify them.
func (g *Graph) Export() Export {
	return Export{N: g.n, Directed: g.directed, OutOff: g.outOff, OutTo: g.outTo, OutW: g.outW}
}

// Import rebuilds a Graph from a CSR image, validating the structural
// invariants Build guarantees — monotone offsets, per-vertex targets
// strictly ascending and in range, no self-loops, weights in (0,1] —
// so a corrupt or hand-rolled payload cannot smuggle an adjacency the
// determinism contract (sorted-by-target iteration, DESIGN.md §5)
// does not cover. The in-adjacency is re-derived with the same
// counting sort Build uses, so the imported graph is indistinguishable
// from the original.
func Import(e Export) (*Graph, error) {
	if e.N < 0 {
		return nil, fmt.Errorf("graph: import: negative vertex count %d", e.N)
	}
	if len(e.OutOff) != e.N+1 {
		return nil, fmt.Errorf("graph: import: offsets len %d != n+1 = %d", len(e.OutOff), e.N+1)
	}
	m := len(e.OutTo)
	if len(e.OutW) != m {
		return nil, fmt.Errorf("graph: import: %d targets vs %d weights", m, len(e.OutW))
	}
	if e.OutOff[0] != 0 || int(e.OutOff[e.N]) != m {
		// unconditional (also for N==0, where it forces m==0): a
		// mismatched span would otherwise index out of range in buildIn
		return nil, fmt.Errorf("graph: import: offsets span [%d,%d], want [0,%d]", e.OutOff[0], e.OutOff[e.N], m)
	}
	for u := 0; u < e.N; u++ {
		s, t := e.OutOff[u], e.OutOff[u+1]
		if t < s {
			return nil, fmt.Errorf("graph: import: offsets not monotone at vertex %d", u)
		}
		for i := s; i < t; i++ {
			v := e.OutTo[i]
			if int(v) < 0 || int(v) >= e.N {
				return nil, fmt.Errorf("graph: import: arc target %d out of range n=%d", v, e.N)
			}
			if int(v) == u {
				return nil, fmt.Errorf("graph: import: self-loop at vertex %d", u)
			}
			if i > s && e.OutTo[i-1] >= v {
				return nil, fmt.Errorf("graph: import: vertex %d adjacency not strictly ascending", u)
			}
			// the inverted form also rejects NaN, for which both w <= 0
			// and w > 1 are false
			if w := e.OutW[i]; !(w > 0 && w <= 1) {
				return nil, fmt.Errorf("graph: import: arc weight %v outside (0,1]", w)
			}
		}
	}
	g := &Graph{
		n:        e.N,
		directed: e.Directed,
		m:        m,
		outOff:   append([]int32(nil), e.OutOff...),
		outTo:    append([]int32(nil), e.OutTo...),
		outW:     append([]float64(nil), e.OutW...),
	}
	g.buildIn()
	return g, nil
}

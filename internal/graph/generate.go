package graph

import (
	"imdpp/internal/rng"
)

// WeightModel controls how base influence strengths are assigned by the
// generators.
type WeightModel struct {
	// Mean is the target average influence strength (Table II row).
	Mean float64
	// Jitter is the relative spread: weights are drawn uniformly from
	// [Mean*(1-Jitter), Mean*(1+Jitter)] and clamped to (0,1].
	Jitter float64
	// WeightedCascade, when true, overrides Mean with 1/inDegree(v)
	// per arc u->v (the classic WC model), then rescales so the average
	// matches Mean.
	WeightedCascade bool
}

func (wm WeightModel) draw(r *rng.Rand) float64 {
	j := wm.Jitter
	if j < 0 {
		j = 0
	}
	w := wm.Mean * (1 - j + 2*j*r.Float64())
	if w <= 0 {
		w = 1e-6
	}
	if w > 1 {
		w = 1
	}
	return w
}

// BarabasiAlbert generates a preferential-attachment graph with n
// vertices, each new vertex attaching m edges. Social networks in the
// paper's datasets are heavy-tailed; BA reproduces that shape.
func BarabasiAlbert(n, m int, directed bool, wm WeightModel, r *rng.Rand) *Graph {
	if m < 1 {
		m = 1
	}
	if n < m+1 {
		n = m + 1
	}
	b := NewBuilder(n, directed)
	// repeated-endpoint list implements preferential attachment in O(1)
	targets := make([]int32, 0, 2*n*m)
	// seed clique over the first m+1 vertices
	for u := 0; u <= m; u++ {
		for v := 0; v < u; v++ {
			b.AddEdge(u, v, wm.draw(r))
			targets = append(targets, int32(u), int32(v))
		}
	}
	seen := make(map[int32]bool, m)
	for u := m + 1; u < n; u++ {
		for k := range seen {
			delete(seen, k)
		}
		for len(seen) < m {
			v := targets[r.Intn(len(targets))]
			if int(v) == u || seen[v] {
				continue
			}
			seen[v] = true
			b.AddEdge(u, int(v), wm.draw(r))
			targets = append(targets, int32(u), v)
		}
	}
	g := b.Build()
	if wm.WeightedCascade {
		g.rescaleWeightedCascade(wm.Mean)
	}
	return g
}

// WattsStrogatz generates a small-world ring lattice with n vertices,
// k nearest neighbours (k even) and rewiring probability beta.
func WattsStrogatz(n, k int, beta float64, directed bool, wm WeightModel, r *rng.Rand) *Graph {
	if k < 2 {
		k = 2
	}
	if k%2 == 1 {
		k++
	}
	if n <= k {
		n = k + 1
	}
	b := NewBuilder(n, directed)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if r.Float64() < beta {
				// rewire to a uniform non-self target
				for {
					v = r.Intn(n)
					if v != u {
						break
					}
				}
			}
			b.AddEdge(u, v, wm.draw(r))
		}
	}
	return b.Build()
}

// ErdosRenyi generates G(n, p) with the given weight model. Intended
// for small test instances; it is O(n^2).
func ErdosRenyi(n int, p float64, directed bool, wm WeightModel, r *rng.Rand) *Graph {
	b := NewBuilder(n, directed)
	for u := 0; u < n; u++ {
		lo := u + 1
		if directed {
			lo = 0
		}
		for v := lo; v < n; v++ {
			if v == u {
				continue
			}
			if r.Float64() < p {
				b.AddEdge(u, v, wm.draw(r))
			}
		}
	}
	return b.Build()
}

// PlantedCommunities generates c communities of size n/c with intra-
// community edge probability pIn and inter-community probability pOut.
// Target-market identification is exercised on this shape: socially
// close users end up in the same community.
func PlantedCommunities(n, c int, pIn, pOut float64, directed bool, wm WeightModel, r *rng.Rand) (*Graph, []int) {
	if c < 1 {
		c = 1
	}
	member := make([]int, n)
	for i := range member {
		member[i] = i * c / n
	}
	b := NewBuilder(n, directed)
	for u := 0; u < n; u++ {
		lo := u + 1
		if directed {
			lo = 0
		}
		for v := lo; v < n; v++ {
			if v == u {
				continue
			}
			p := pOut
			if member[u] == member[v] {
				p = pIn
			}
			if r.Float64() < p {
				b.AddEdge(u, v, wm.draw(r))
			}
		}
	}
	return b.Build(), member
}

// rescaleWeightedCascade sets each arc u->v to 1/inDegree(v), then
// rescales all weights so the global mean equals mean.
func (g *Graph) rescaleWeightedCascade(mean float64) {
	for v := 0; v < g.n; v++ {
		s, e := g.inOff[v], g.inOff[v+1]
		if s == e {
			continue
		}
		w := 1.0 / float64(e-s)
		for i := s; i < e; i++ {
			g.inW[i] = w
		}
	}
	// mirror into the out-arrays: arc u->v carries 1/inDegree(v)
	for i, v := range g.outTo {
		g.outW[i] = 1.0 / float64(g.inOff[v+1]-g.inOff[v])
	}
	if mean <= 0 {
		return
	}
	cur := g.AvgInfluence()
	if cur == 0 {
		return
	}
	f := mean / cur
	scale := func(ws []float64) {
		for i, w := range ws {
			w *= f
			if w > 1 {
				w = 1
			}
			ws[i] = w
		}
	}
	scale(g.outW)
	scale(g.inW)
}

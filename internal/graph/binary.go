package graph

import (
	"fmt"
	"math"

	"imdpp/internal/wirebin"
)

// Binary codec of the CSR image, the graph's half of the shard
// subsystem's binary problem upload (DESIGN.md §8). The layout
// exploits the canonical form Build guarantees: offsets are monotone
// (encoded as per-vertex degrees) and each vertex's targets are
// strictly ascending (encoded as first-id + deltas), so a typical arc
// costs ~1 varint byte plus its weight instead of the ~10 JSON bytes
// of the Export field form. Weights use the wirebin compact float,
// bit-exact by construction.
//
// AppendBinary/DecodeBinaryExport move the *image* only; structural
// validation stays where it always was, in Import — a decoded Export
// is as untrusted as a JSON one.

// AppendBinary appends the Export's binary image to b.
func (e Export) AppendBinary(b []byte) []byte {
	b = wirebin.AppendUvarint(b, uint64(e.N))
	b = wirebin.AppendBool(b, e.Directed)
	for u := 0; u < e.N; u++ {
		b = wirebin.AppendAscInt32s(b, e.OutTo[e.OutOff[u]:e.OutOff[u+1]])
	}
	b = wirebin.AppendUvarint(b, uint64(len(e.OutW)))
	for _, w := range e.OutW {
		b = wirebin.AppendFloat(b, w)
	}
	return b
}

// DecodeBinaryExport reads one Export image from r. The result carries
// whatever the bytes said; run it through Import for validation.
func DecodeBinaryExport(r *wirebin.Reader) (Export, error) {
	var e Export
	n := r.Count(1)
	if err := r.Err(); err != nil {
		return e, fmt.Errorf("graph: decode binary: %w", err)
	}
	e.N = n
	e.Directed = r.Bool()
	e.OutOff = make([]int32, n+1)
	for u := 0; u < n; u++ {
		row := r.AscInt32s()
		if r.Err() != nil {
			return e, fmt.Errorf("graph: decode binary: %w", r.Err())
		}
		if total := int64(len(e.OutTo)) + int64(len(row)); total > math.MaxInt32 {
			return e, fmt.Errorf("graph: decode binary: arc count overflow at vertex %d", u)
		}
		e.OutTo = append(e.OutTo, row...)
		e.OutOff[u+1] = int32(len(e.OutTo))
	}
	m := len(e.OutTo)
	wn := r.Count(2)
	if r.Err() != nil {
		return e, fmt.Errorf("graph: decode binary: %w", r.Err())
	}
	if wn != m {
		return e, fmt.Errorf("graph: decode binary: %d weights for %d arcs", wn, m)
	}
	e.OutW = make([]float64, m)
	for i := range e.OutW {
		e.OutW[i] = r.Float()
	}
	if err := r.Err(); err != nil {
		return e, fmt.Errorf("graph: decode binary: %w", err)
	}
	return e, nil
}

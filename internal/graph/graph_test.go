package graph

import (
	"math"
	"testing"
	"testing/quick"

	"imdpp/internal/rng"
)

// line builds the directed path 0→1→…→n-1 with weight w.
func line(n int, w float64) *Graph {
	b := NewBuilder(n, true)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, w)
	}
	return b.Build()
}

func TestBuilderDirected(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.25)
	g := b.Build()
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if g.OutDegree(0) != 1 || g.InDegree(0) != 0 {
		t.Fatalf("deg(0) out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	if out := g.Out(0); out.To[0] != 1 || out.W[0] != 0.5 {
		t.Fatalf("edge 0: %+v", out)
	}
	if in := g.In(2); in.To[0] != 1 {
		t.Fatalf("in(2): %+v", in)
	}
}

func TestBuilderUndirectedMirrors(t *testing.T) {
	b := NewBuilder(2, false)
	b.AddEdge(0, 1, 0.7)
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("undirected edge stored %d arcs", g.M())
	}
	if out := g.Out(1); out.To[0] != 0 || out.W[0] != 0.7 {
		t.Fatalf("reverse arc: %+v", out)
	}
}

func TestBuilderSelfLoopIgnored(t *testing.T) {
	b := NewBuilder(2, true)
	b.AddEdge(0, 0, 1)
	if g := b.Build(); g.M() != 0 {
		t.Fatal("self loop stored")
	}
}

func TestBuilderClampsWeights(t *testing.T) {
	b := NewBuilder(2, true)
	b.AddEdge(0, 1, 5)
	g := b.Build()
	if out := g.Out(0); out.W[0] != 1 {
		t.Fatalf("weight not clamped: %v", out.W[0])
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewBuilder(2, true).AddEdge(0, 5, 1)
}

func TestAvgInfluence(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1, 0.2)
	b.AddEdge(1, 2, 0.4)
	g := b.Build()
	if got := g.AvgInfluence(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("avg influence %v", got)
	}
}

func TestBFSDepths(t *testing.T) {
	g := line(5, 0.5)
	d := g.BFSDepths([]int{0})
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("depth[%d]=%d want %d", i, d[i], want)
		}
	}
	// unreachable direction
	d = g.BFSDepths([]int{4})
	if d[0] != -1 {
		t.Fatalf("expected unreachable, got %d", d[0])
	}
}

func TestBFSMultiSource(t *testing.T) {
	g := line(6, 0.5)
	d := g.BFSDepths([]int{0, 3})
	if d[4] != 1 || d[2] != 2 {
		t.Fatalf("multi-source depths: %v", d)
	}
}

func TestHopDistance(t *testing.T) {
	g := line(4, 0.5)
	if got := g.HopDistance(0, 3); got != 3 {
		t.Fatalf("hop 0→3 = %d", got)
	}
	if got := g.HopDistance(3, 0); got != -1 {
		t.Fatalf("hop 3→0 = %d", got)
	}
	if got := g.HopDistance(2, 2); got != 0 {
		t.Fatalf("hop self = %d", got)
	}
}

func TestEccentricity(t *testing.T) {
	g := line(5, 0.5)
	if got := g.EccentricityFrom([]int{0}); got != 4 {
		t.Fatalf("ecc = %d", got)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(5, true)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(2, 3, 0.5)
	g := b.Build()
	comp, n := g.Components()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] || comp[4] == comp[0] {
		t.Fatalf("component labels: %v", comp)
	}
}

func TestMaxInfluencePathsLine(t *testing.T) {
	g := line(4, 0.5)
	p := g.MaxInfluencePaths(0)
	want := []float64{1, 0.5, 0.25, 0.125}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("p[%d]=%v want %v", i, p[i], want[i])
		}
	}
}

func TestMaxInfluencePathsPicksBestRoute(t *testing.T) {
	// 0→1→3 (0.9·0.9 = 0.81) beats 0→2→3 (0.99·0.5)
	b := NewBuilder(4, true)
	b.AddEdge(0, 1, 0.9)
	b.AddEdge(1, 3, 0.9)
	b.AddEdge(0, 2, 0.99)
	b.AddEdge(2, 3, 0.5)
	g := b.Build()
	prob := make([]float64, 4)
	parent := make([]int32, 4)
	g.MaxInfluencePathsInto(0, prob, parent)
	if math.Abs(prob[3]-0.81) > 1e-12 {
		t.Fatalf("prob[3]=%v", prob[3])
	}
	if parent[3] != 1 {
		t.Fatalf("parent[3]=%d want 1", parent[3])
	}
	if parent[0] != 0 {
		t.Fatalf("parent[source]=%d", parent[0])
	}
}

func TestMaxInfluencePathsUnreachable(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1, 0.5)
	g := b.Build()
	p := g.MaxInfluencePaths(0)
	if p[2] != 0 {
		t.Fatalf("unreachable prob %v", p[2])
	}
}

func TestMIPProbabilitiesBounded(t *testing.T) {
	r := rng.New(5)
	f := func(seed uint64) bool {
		rr := r.Split(seed)
		g := ErdosRenyi(20, 0.2, true, WeightModel{Mean: 0.5, Jitter: 0.5}, rr)
		p := g.MaxInfluencePaths(0)
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
		}
		return p[0] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreesStats(t *testing.T) {
	g := line(4, 0.5)
	st := g.Degrees()
	if st.MinOut != 0 || st.MaxOut != 1 {
		t.Fatalf("stats %+v", st)
	}
	if math.Abs(st.MeanOut-0.75) > 1e-12 {
		t.Fatalf("mean %v", st.MeanOut)
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	r := rng.New(1)
	g := BarabasiAlbert(200, 3, false, WeightModel{Mean: 0.1, Jitter: 0.5}, r)
	if g.N() != 200 {
		t.Fatalf("n=%d", g.N())
	}
	_, nComp := g.Components()
	if nComp != 1 {
		t.Fatalf("BA graph has %d components", nComp)
	}
	st := g.Degrees()
	if st.MaxOut < 10 {
		t.Fatalf("no hub emerged: max degree %d", st.MaxOut)
	}
	avg := g.AvgInfluence()
	if math.Abs(avg-0.1) > 0.02 {
		t.Fatalf("avg influence %v, want ~0.1", avg)
	}
}

func TestBarabasiAlbertDirected(t *testing.T) {
	r := rng.New(2)
	g := BarabasiAlbert(100, 2, true, WeightModel{Mean: 0.2, Jitter: 0}, r)
	if !g.Directed() {
		t.Fatal("not directed")
	}
	// directed BA stores one arc per attachment
	if g.M() >= 2*(100*2) {
		t.Fatalf("too many arcs: %d", g.M())
	}
}

func TestWattsStrogatz(t *testing.T) {
	r := rng.New(3)
	g := WattsStrogatz(100, 4, 0.1, false, WeightModel{Mean: 0.3, Jitter: 0.2}, r)
	if g.N() != 100 {
		t.Fatalf("n=%d", g.N())
	}
	st := g.Degrees()
	if st.MeanOut < 3.5 || st.MeanOut > 4.5 {
		t.Fatalf("mean degree %v, want ~4", st.MeanOut)
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	r := rng.New(4)
	g := ErdosRenyi(100, 0.1, true, WeightModel{Mean: 0.5, Jitter: 0}, r)
	expected := 0.1 * 100 * 99
	if float64(g.M()) < expected*0.7 || float64(g.M()) > expected*1.3 {
		t.Fatalf("M=%d, expected ~%v", g.M(), expected)
	}
}

func TestPlantedCommunities(t *testing.T) {
	r := rng.New(6)
	g, member := PlantedCommunities(60, 3, 0.5, 0.01, false, WeightModel{Mean: 0.2, Jitter: 0}, r)
	if g.N() != 60 || len(member) != 60 {
		t.Fatal("sizes wrong")
	}
	counts := map[int]int{}
	for _, m := range member {
		counts[m]++
	}
	if len(counts) != 3 {
		t.Fatalf("got %d communities", len(counts))
	}
	for c, n := range counts {
		if n != 20 {
			t.Fatalf("community %d has %d members", c, n)
		}
	}
}

func TestWeightedCascadeRescale(t *testing.T) {
	r := rng.New(7)
	g := BarabasiAlbert(100, 3, false, WeightModel{Mean: 0.1, Jitter: 0, WeightedCascade: true}, r)
	avg := g.AvgInfluence()
	if math.Abs(avg-0.1) > 0.03 {
		t.Fatalf("WC rescaled avg %v", avg)
	}
	for u := 0; u < g.N(); u++ {
		for _, w := range g.Out(u).W {
			if w <= 0 || w > 1 {
				t.Fatalf("weight out of range: %v", w)
			}
		}
	}
}

// Package graph implements the social-network substrate for IMDPP:
// a compact directed weighted graph in true CSR (compressed sparse
// row) form, plus the traversals (BFS, Dijkstra on influence
// probabilities) and statistics the Dysim pipeline needs.
//
// Adjacency is stored as flat offset + packed parallel arrays — one
// `offsets []int32` and parallel `to []int32` / `w []float64` per
// direction — so neighbour iteration is a linear scan over contiguous
// memory with no per-vertex heap objects to pointer-chase.
//
// Determinism contract: within every vertex's adjacency, arcs are
// sorted by target id, fixed once at Build(). The diffusion engine
// draws one RNG variate per neighbour while iterating Out(u), so
// neighbour order is part of the reproducibility contract (DESIGN.md
// §3, §5): two graphs built from the same edge multiset — in any
// insertion order — propagate bit-identically. Duplicate arcs are
// merged at Build(), keeping the maximum weight.
//
// Edge weights carry the *initial* social influence strength
// P0act(u,v) in (0,1]. The diffusion engine layers a dynamic
// multiplier on top of these base weights (influence learning), so the
// graph itself is immutable after construction.
package graph

package graph

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"imdpp/internal/rng"
)

// naiveEdge / naiveGraph retain the pre-CSR slice-of-slices layout as
// an executable reference for the flat representation: adjacency as
// one heap-allocated edge slice per vertex, with the same semantic
// contract (per-vertex arcs sorted by target, duplicates merged
// keeping the maximum weight).
type naiveEdge struct {
	to int32
	w  float64
}

type naiveGraph struct {
	n   int
	out [][]naiveEdge
	in  [][]naiveEdge
}

func buildNaive(n int, directed bool, from, to []int32, w []float64) *naiveGraph {
	ng := &naiveGraph{n: n, out: make([][]naiveEdge, n), in: make([][]naiveEdge, n)}
	add := func(u, v int32, wt float64) {
		ng.out[u] = append(ng.out[u], naiveEdge{to: v, w: wt})
		ng.in[v] = append(ng.in[v], naiveEdge{to: u, w: wt})
	}
	for i := range from {
		add(from[i], to[i], w[i])
		if !directed {
			add(to[i], from[i], w[i])
		}
	}
	canon := func(adj []naiveEdge) []naiveEdge {
		sort.Slice(adj, func(a, b int) bool { return adj[a].to < adj[b].to })
		var outAdj []naiveEdge
		for _, e := range adj {
			if k := len(outAdj); k > 0 && outAdj[k-1].to == e.to {
				if e.w > outAdj[k-1].w {
					outAdj[k-1].w = e.w
				}
				continue
			}
			outAdj = append(outAdj, e)
		}
		return outAdj
	}
	for v := 0; v < n; v++ {
		ng.out[v] = canon(ng.out[v])
		ng.in[v] = canon(ng.in[v])
	}
	return ng
}

func (ng *naiveGraph) bfsDepths(sources []int) []int {
	dist := make([]int, ng.n)
	for i := range dist {
		dist[i] = -1
	}
	var queue []int
	for _, s := range sources {
		if s >= 0 && s < ng.n && dist[s] < 0 {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range ng.out[u] {
			if dist[e.to] < 0 {
				dist[e.to] = dist[u] + 1
				queue = append(queue, int(e.to))
			}
		}
	}
	return dist
}

// maxInfluencePaths is a quadratic Dijkstra — no heap, so it shares no
// code with the implementation under test.
func (ng *naiveGraph) maxInfluencePaths(source int) []float64 {
	prob := make([]float64, ng.n)
	done := make([]bool, ng.n)
	prob[source] = 1
	for {
		best, bu := 0.0, -1
		for v := 0; v < ng.n; v++ {
			if !done[v] && prob[v] > best {
				best, bu = prob[v], v
			}
		}
		if bu < 0 {
			return prob
		}
		done[bu] = true
		for _, e := range ng.out[bu] {
			if np := best * e.w; np > prob[e.to] {
				prob[e.to] = np
			}
		}
	}
}

// randomEdges draws a random multigraph, deliberately including
// duplicate arcs and scrambled insertion order so the property test
// exercises the sort+merge path.
func randomEdges(r *rng.Rand, n int) (from, to []int32, w []float64) {
	m := 1 + r.Intn(4*n)
	for i := 0; i < m; i++ {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v {
			continue
		}
		from = append(from, u)
		to = append(to, v)
		w = append(w, 0.05+0.9*r.Float64())
		if r.Float64() < 0.2 { // duplicate arc with a different weight
			from = append(from, u)
			to = append(to, v)
			w = append(w, 0.05+0.9*r.Float64())
		}
	}
	return from, to, w
}

// TestCSRMatchesNaiveReference pins the CSR graph — adjacency views,
// BFS and maximum-influence paths — to the naive slice-of-slices
// reference on random directed and undirected multigraphs.
func TestCSRMatchesNaiveReference(t *testing.T) {
	master := rng.New(0xC5)
	f := func(seed uint64, dirRaw bool) bool {
		r := master.Split(seed)
		n := 2 + r.Intn(24)
		from, to, w := randomEdges(r, n)

		b := NewBuilder(n, dirRaw)
		for i := range from {
			b.AddEdge(int(from[i]), int(to[i]), w[i])
		}
		g := b.Build()
		ng := buildNaive(n, dirRaw, from, to, w)

		arcsEqual := func(a Arcs, ref []naiveEdge) bool {
			if len(a.To) != len(ref) {
				return false
			}
			for i, e := range ref {
				if a.To[i] != e.to || a.W[i] != e.w {
					return false
				}
			}
			return true
		}
		total := 0
		for v := 0; v < n; v++ {
			if !arcsEqual(g.Out(v), ng.out[v]) {
				t.Logf("out(%d): got %+v want %+v", v, g.Out(v), ng.out[v])
				return false
			}
			if !arcsEqual(g.In(v), ng.in[v]) {
				t.Logf("in(%d): got %+v want %+v", v, g.In(v), ng.in[v])
				return false
			}
			if g.OutDegree(v) != len(ng.out[v]) || g.InDegree(v) != len(ng.in[v]) {
				return false
			}
			total += len(ng.out[v])
		}
		if g.M() != total {
			t.Logf("M=%d want %d", g.M(), total)
			return false
		}

		src := int(seed) % n
		if src < 0 {
			src += n
		}
		gotD, wantD := g.BFSDepths([]int{src}), ng.bfsDepths([]int{src})
		for v := range wantD {
			if gotD[v] != wantD[v] {
				t.Logf("bfs depth[%d]: got %d want %d", v, gotD[v], wantD[v])
				return false
			}
		}
		gotP, wantP := g.MaxInfluencePaths(src), ng.maxInfluencePaths(src)
		for v := range wantP {
			if math.Abs(gotP[v]-wantP[v]) > 1e-12 {
				t.Logf("mip[%d]: got %v want %v", v, gotP[v], wantP[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSortsNeighborsByTarget(t *testing.T) {
	b := NewBuilder(5, true)
	// inserted deliberately out of order
	b.AddEdge(0, 4, 0.4)
	b.AddEdge(0, 1, 0.1)
	b.AddEdge(0, 3, 0.3)
	b.AddEdge(0, 2, 0.2)
	g := b.Build()
	out := g.Out(0)
	wantTo := []int32{1, 2, 3, 4}
	wantW := []float64{0.1, 0.2, 0.3, 0.4}
	for i := range wantTo {
		if out.To[i] != wantTo[i] || out.W[i] != wantW[i] {
			t.Fatalf("out(0) not sorted by target: %+v", out)
		}
	}
}

func TestBuildMergesDuplicateArcs(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1, 0.3)
	b.AddEdge(0, 2, 0.5)
	b.AddEdge(0, 1, 0.8) // duplicate, higher weight wins
	b.AddEdge(0, 1, 0.1) // duplicate, lower weight loses
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("duplicates kept: M=%d want 2", g.M())
	}
	if g.OutDegree(0) != 2 {
		t.Fatalf("out-degree %d want 2", g.OutDegree(0))
	}
	out := g.Out(0)
	if out.To[0] != 1 || out.W[0] != 0.8 {
		t.Fatalf("merged arc wrong: %+v", out)
	}
	if in := g.In(1); in.Len() != 1 || in.W[0] != 0.8 {
		t.Fatalf("in-adjacency did not merge: %+v", in)
	}
}

func TestBuildMergesDuplicateArcsUndirected(t *testing.T) {
	b := NewBuilder(2, false)
	b.AddEdge(0, 1, 0.2)
	b.AddEdge(1, 0, 0.6) // same undirected edge, other orientation
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M=%d want 2 (one merged arc per direction)", g.M())
	}
	if w := g.Out(0).W[0]; w != 0.6 {
		t.Fatalf("merge did not keep max: %v", w)
	}
	if w := g.Out(1).W[0]; w != 0.6 {
		t.Fatalf("reverse direction inconsistent: %v", w)
	}
}

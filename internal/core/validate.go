package core

import (
	"fmt"

	"imdpp/internal/diffusion"
)

// InputError is a typed rejection of a solve request: one field of the
// Problem or Options is out of range. It is shared by the CLI
// front-ends and the serving layer so every entry point rejects bad
// input the same way (check with errors.As, or errors.Is against
// another InputError with the same Field).
type InputError struct {
	Field  string // offending field, e.g. "Budget", "T", "MC"
	Reason string // human-readable constraint, e.g. "must be ≥ 1"
}

func (e *InputError) Error() string {
	return fmt.Sprintf("imdpp: invalid %s: %s", e.Field, e.Reason)
}

// Is matches any InputError for the same field, so callers can test
// errors.Is(err, &core.InputError{Field: "MC"}) without replicating
// the reason text.
func (e *InputError) Is(target error) bool {
	t, ok := target.(*InputError)
	return ok && t.Field == e.Field && (t.Reason == "" || t.Reason == e.Reason)
}

// Validate rejects out-of-range Options with typed errors. Zero values
// remain valid — they select the documented defaults — so only
// negative (or otherwise unsatisfiable) settings fail.
func (o Options) Validate() error {
	switch {
	case o.MC < 0:
		return &InputError{Field: "MC", Reason: fmt.Sprintf("sample count %d is negative; need ≥ 1 (0 selects the default)", o.MC)}
	case o.MCSI < 0:
		return &InputError{Field: "MCSI", Reason: fmt.Sprintf("sample count %d is negative; need ≥ 1 (0 selects the default)", o.MCSI)}
	case o.Workers < 0:
		return &InputError{Field: "Workers", Reason: fmt.Sprintf("worker count %d is negative; need ≥ 0 (0 means GOMAXPROCS)", o.Workers)}
	case o.Theta < 0:
		return &InputError{Field: "Theta", Reason: fmt.Sprintf("common-user threshold %d is negative", o.Theta)}
	case o.MIOAThreshold < 0 || o.MIOAThreshold > 1:
		return &InputError{Field: "MIOAThreshold", Reason: fmt.Sprintf("path-probability cutoff %g outside [0,1]", o.MIOAThreshold)}
	case o.Epsilon < 0 || (o.Epsilon != o.Epsilon):
		return &InputError{Field: "Epsilon", Reason: fmt.Sprintf("sketch accuracy %g must be > 0 (0 selects the exact MC backend)", o.Epsilon)}
	case o.Delta < 0 || o.Delta >= 1 || (o.Delta != o.Delta):
		return &InputError{Field: "Delta", Reason: fmt.Sprintf("sketch failure probability %g outside (0,1)", o.Delta)}
	case o.Delta > 0 && o.Epsilon == 0:
		return &InputError{Field: "Delta", Reason: "delta set without epsilon; the (ε, δ) contract needs both"}
	}
	return nil
}

// ValidateRequest is the single request gate shared by Solve,
// SolveAdaptive, the CLI front-ends and the serving layer: it rejects
// a nil problem, a negative budget, T < 1 and bad Options with typed
// InputErrors before any solver state is allocated. Structural
// consistency of the problem (matrix shapes, item counts) stays with
// Problem.Validate.
func ValidateRequest(p *diffusion.Problem, opt Options) error {
	if p == nil {
		return &InputError{Field: "Problem", Reason: "nil problem"}
	}
	if p.Budget < 0 {
		return &InputError{Field: "Budget", Reason: fmt.Sprintf("budget %g is negative", p.Budget)}
	}
	if p.T < 1 {
		return &InputError{Field: "T", Reason: fmt.Sprintf("promotion count %d < 1", p.T)}
	}
	return opt.Validate()
}

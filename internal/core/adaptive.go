package core

import (
	"context"
	"sort"

	"imdpp/internal/cluster"
	"imdpp/internal/diffusion"
)

// SolveAdaptive runs the adaptive variant of Sec. V-D: no predefined
// budget allocation across promotions. Before each promotion t < T,
// TMI is exploited repeatedly, selecting one nominee with the largest
// MCP at a time, until an overlapping target market would promote
// substitutable items; the latest antagonism-causing nominee is
// rejected. DRE + TDSI then schedule the accepted nominees into
// timings {t, t+1}; once a candidate lands on t+1, the search for S_t
// stops and the remaining budget rolls forward. At t = T the best
// nominees under the remaining budget are all seeded at T.
//
// The function simulates the observe-then-select loop: after choosing
// S_t the diffusion of promotions 1..t is considered observed (the σ
// estimator replays all seeds chosen so far, which conditions the
// later selections on the earlier promotions exactly as Def. 1's
// conditional expectation requires).
func SolveAdaptive(p *diffusion.Problem, opt Options) (Solution, error) {
	return SolveAdaptiveCtx(context.Background(), p, opt)
}

// SolveAdaptiveCtx is SolveAdaptive with cancellation, under the same
// contract as SolveCtx: prompt abort returning ctx.Err(), and
// bit-identical results when the context never fires.
func SolveAdaptiveCtx(ctx context.Context, p *diffusion.Problem, opt Options) (Solution, error) {
	if err := ValidateRequest(p, opt); err != nil {
		return Solution{}, err
	}
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	s := newSolver(ctx, p, opt)
	remaining := p.Budget
	var all []diffusion.Seed

	universe := s.candidateUniverse()
	used := make(map[cluster.Nominee]bool)

	for t := 1; t <= p.T && remaining > 0; t++ {
		if err := s.err(); err != nil {
			return Solution{}, err
		}
		s.progress("adaptive", t, p.Budget-remaining, 0)
		if t == p.T {
			// final promotion: spend what is left greedily at T
			picked, err := s.greedyUnderBudget(universe, used, all, remaining, p.T)
			if err != nil {
				return Solution{}, err
			}
			for _, nm := range picked {
				all = append(all, diffusion.Seed{User: nm.User, Item: nm.Item, T: p.T})
				remaining -= p.CostOf(nm.User, nm.Item)
				used[nm] = true
			}
			break
		}
		accepted, err := s.adaptiveAccept(universe, used, all, remaining)
		if err != nil {
			return Solution{}, err
		}
		if len(accepted) == 0 {
			continue
		}
		// schedule accepted nominees into {t, t+1} by SI over the full
		// user set (the adaptive variant does not precompute markets)
		mask := make([]bool, p.NumUsers())
		for i := range mask {
			mask[i] = true
		}
		fullMarket := &Market{Users: allUsers(p.NumUsers()), Mask: mask, Diameter: 3}
		pool := accepted
		stop := false
		for len(pool) > 0 && !stop {
			if err := s.err(); err != nil {
				return Solution{}, err
			}
			// one batch per SI round: baseline + every (nominee, t/t+1)
			// candidate under shared sample streams
			type candRef struct {
				idx, t int
			}
			groups := [][]diffusion.Seed{diffusion.CloneSeeds(all)}
			refs := []candRef{{-1, 0}}
			for i, nm := range pool {
				for _, tt := range []int{t, t + 1} {
					if tt > p.T {
						continue
					}
					groups = append(groups, diffusion.WithSeed(all, diffusion.Seed{User: nm.User, Item: nm.Item, T: tt}))
					refs = append(refs, candRef{i, tt})
				}
			}
			ests := s.estSI.RunBatchPi(groups, nil)
			s.stats.SIEvals += len(groups)
			base := ests[0]
			bestSI, bestIdx, bestT := -1e18, -1, t
			for j := 1; j < len(ests); j++ {
				si := ests[j].Sigma - base.Sigma + float64(p.T-refs[j].t+1)/float64(p.T)*(ests[j].Pi-base.Pi)
				if si > bestSI {
					bestSI, bestIdx, bestT = si, refs[j].idx, refs[j].t
				}
			}
			if bestIdx < 0 {
				break
			}
			nm := pool[bestIdx]
			if bestT > t {
				// Sec. V-D: once the best candidate prefers t+1, the
				// remaining nominees suit later promotions too.
				stop = true
				break
			}
			all = append(all, diffusion.Seed{User: nm.User, Item: nm.Item, T: bestT})
			remaining -= p.CostOf(nm.User, nm.Item)
			used[nm] = true
			pool = append(pool[:bestIdx], pool[bestIdx+1:]...)
		}
		_ = fullMarket
	}

	sigma := s.sigma(all)
	if err := s.err(); err != nil {
		return Solution{}, err
	}
	s.stats.SamplesSimulated = s.est.SamplesDone() + s.estSI.SamplesDone()
	s.collectGridStats()
	s.stats.StateBytesPerWorker = max(s.est.StateBytes(), s.estSI.StateBytes())
	sol := Solution{Seeds: all, Cost: p.SeedCost(all), Sigma: sigma, Stats: s.stats}
	return sol, nil
}

// adaptiveAccept grows a nominee set one-highest-MCP-at-a-time until
// adding one would make overlapping markets promote substitutable
// items; that nominee is rejected and growth stops.
func (s *solver) adaptiveAccept(universe []cluster.Nominee, used map[cluster.Nominee]bool, cur []diffusion.Seed, budget float64) ([]cluster.Nominee, error) {
	p := s.p
	var accepted []cluster.Nominee
	spent := 0.0
	base := s.sigma(cur)
	for {
		if err := s.err(); err != nil {
			return nil, err
		}
		// batch the whole eligible universe for this growth step
		var (
			groups [][]diffusion.Seed
			idxs   []int
		)
		for i, nm := range universe {
			if used[nm] {
				continue
			}
			c := p.CostOf(nm.User, nm.Item)
			if c > budget-spent {
				continue
			}
			dup := false
			for _, a := range accepted {
				if a == nm {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			cand := make([]diffusion.Seed, 0, len(cur)+1+len(accepted))
			cand = append(cand, cur...)
			cand = append(cand, diffusion.Seed{User: nm.User, Item: nm.Item, T: 1})
			for _, a := range accepted {
				cand = append(cand, diffusion.Seed{User: a.User, Item: a.Item, T: 1})
			}
			groups = append(groups, cand)
			idxs = append(idxs, i)
		}
		bestRatio, bestIdx := 0.0, -1
		for j, sig := range s.sigmaBatch(groups) {
			nm := universe[idxs[j]]
			gain := sig - base
			if r := gain / (p.CostOf(nm.User, nm.Item) + 1e-12); r > bestRatio {
				bestRatio, bestIdx = r, idxs[j]
			}
		}
		if bestIdx < 0 || bestRatio <= 0 {
			break
		}
		nm := universe[bestIdx]
		if s.causesAntagonism(accepted, nm) {
			break // reject the antagonism-causing nominee and stop
		}
		accepted = append(accepted, nm)
		spent += p.CostOf(nm.User, nm.Item)
		if len(accepted) >= 8 {
			break // per-promotion cap keeps the adaptive loop tractable
		}
	}
	return accepted, nil
}

// causesAntagonism reports whether adding nm would let socially
// overlapping nominees promote substitutable items.
func (s *solver) causesAntagonism(accepted []cluster.Nominee, nm cluster.Nominee) bool {
	for _, a := range accepted {
		if a.Item == nm.Item {
			continue
		}
		rc, rs := s.p.PIN.RelStatic(a.Item, nm.Item)
		if rs > rc && s.p.G.HopDistance(a.User, nm.User) >= 0 && s.p.G.HopDistance(a.User, nm.User) <= 2 {
			return true
		}
	}
	return false
}

// greedyUnderBudget picks nominees by MCP with all timings fixed at
// promotion tFix until the budget runs out.
func (s *solver) greedyUnderBudget(universe []cluster.Nominee, used map[cluster.Nominee]bool, cur []diffusion.Seed, budget float64, tFix int) ([]cluster.Nominee, error) {
	p := s.p
	var picked []cluster.Nominee
	seeds := append([]diffusion.Seed(nil), cur...)
	base := s.sigma(seeds)
	spent := 0.0
	for {
		if err := s.err(); err != nil {
			return nil, err
		}
		// batch every eligible candidate of this greedy round
		var (
			groups [][]diffusion.Seed
			idxs   []int
		)
		for i, nm := range universe {
			if used[nm] {
				continue
			}
			skip := false
			for _, pk := range picked {
				if pk == nm {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			c := p.CostOf(nm.User, nm.Item)
			if c > budget-spent {
				continue
			}
			groups = append(groups, diffusion.WithSeed(seeds, diffusion.Seed{User: nm.User, Item: nm.Item, T: tFix}))
			idxs = append(idxs, i)
		}
		bestRatio, bestIdx := 0.0, -1
		var bestSigma float64
		for j, sig := range s.sigmaBatch(groups) {
			nm := universe[idxs[j]]
			if r := (sig - base) / (p.CostOf(nm.User, nm.Item) + 1e-12); r > bestRatio {
				bestRatio, bestIdx, bestSigma = r, idxs[j], sig
			}
		}
		if bestIdx < 0 || bestRatio <= 0 {
			break
		}
		nm := universe[bestIdx]
		picked = append(picked, nm)
		seeds = append(seeds, diffusion.Seed{User: nm.User, Item: nm.Item, T: tFix})
		spent += p.CostOf(nm.User, nm.Item)
		base = bestSigma
	}
	return picked, nil
}

func allUsers(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	sort.Ints(out)
	return out
}

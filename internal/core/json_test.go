package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"imdpp/internal/cluster"
	"imdpp/internal/diffusion"
)

// TestSolutionJSONRoundTrip pins the wire contract shared by the
// imdppd daemon and imdpprun -json: stable snake_case field names,
// and a lossless round trip (the derivable Mask excepted).
func TestSolutionJSONRoundTrip(t *testing.T) {
	sol := Solution{
		Seeds: []diffusion.Seed{{User: 3, Item: 1, T: 2}, {User: 9, Item: 0, T: 1}},
		Cost:  42.5,
		Sigma: 17.25,
		Markets: []Market{{
			ID:       1,
			Nominees: []cluster.Nominee{{User: 3, Item: 1}},
			Users:    []int{1, 3, 7},
			Mask:     []bool{false, true, false, true}, // excluded from JSON
			Diameter: 2,
			Items:    []int{1},
			Ttau:     3,
			Group:    0,
			OrderKey: 0.5,
		}},
		Stats: Stats{
			SigmaEvals:          11,
			SIEvals:             5,
			NomineeCount:        2,
			MarketCount:         1,
			GroupCount:          1,
			SelectTime:          3 * time.Millisecond,
			TotalTime:           9 * time.Millisecond,
			SamplesSimulated:    1234,
			StateBytesPerWorker: 4096,
		},
	}

	data, err := json.Marshal(sol)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, field := range []string{
		`"seeds"`, `"user"`, `"item"`, `"t"`, `"cost"`, `"sigma"`,
		`"markets"`, `"nominees"`, `"users"`, `"diameter"`, `"t_tau"`,
		`"stats"`, `"sigma_evals"`, `"samples_simulated"`,
		`"select_time_ns"`, `"state_bytes_per_worker"`,
	} {
		if !strings.Contains(string(data), field) {
			t.Errorf("wire contract broken: %s missing from %s", field, data)
		}
	}
	if strings.Contains(string(data), `"Mask"`) || strings.Contains(string(data), `"mask"`) {
		t.Errorf("|V|-sized mask leaked into JSON: %s", data)
	}

	var back Solution
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	want := sol
	want.Markets[0].Mask = nil // not serialized by design
	if !reflect.DeepEqual(want, back) {
		t.Fatalf("round trip lost data:\nwant %+v\ngot  %+v", want, back)
	}
}

// TestProgressEventJSONRoundTrip pins the progress-stream wire
// contract surfaced through the daemon's job-status JSON, including
// the monotonic elapsed_ns ordering field.
func TestProgressEventJSONRoundTrip(t *testing.T) {
	ev := ProgressEvent{
		Phase:     "select",
		Round:     3,
		Spent:     12.5,
		Sigma:     7.25,
		ElapsedNS: 1500000,
	}
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, field := range []string{`"phase"`, `"round"`, `"spent"`, `"sigma"`, `"elapsed_ns"`} {
		if !strings.Contains(string(data), field) {
			t.Errorf("wire contract broken: %s missing from %s", field, data)
		}
	}
	var back ProgressEvent
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(ev, back) {
		t.Fatalf("round trip lost data:\nwant %+v\ngot  %+v", ev, back)
	}
}

func TestEstimateJSONRoundTrip(t *testing.T) {
	est := diffusion.Estimate{
		Sigma:       3.75,
		MarketSigma: 1.5,
		Pi:          0.25,
		PerItem:     []float64{0, 1.5, 0.125},
		Adoptions:   4.5,
	}
	data, err := json.Marshal(est)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, field := range []string{`"sigma"`, `"market_sigma"`, `"pi"`, `"per_item"`, `"adoptions"`} {
		if !strings.Contains(string(data), field) {
			t.Errorf("wire contract broken: %s missing from %s", field, data)
		}
	}
	var back diffusion.Estimate
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(est, back) {
		t.Fatalf("round trip lost data:\nwant %+v\ngot  %+v", est, back)
	}
}

package core

import (
	"context"

	"imdpp/internal/diffusion"
	"imdpp/internal/sketch"
)

// Estimator is the σ/π estimation surface the Dysim solver consumes —
// everything Solve, SolveAdaptiveCtx and TDSI ask of a Monte-Carlo
// backend, and nothing more. *diffusion.Estimator (in-process batch
// engine) is the canonical implementation; internal/shard provides a
// remote-fanout implementation that partitions the (group × sample)
// grid across worker processes. Any implementation MUST honour the
// DESIGN.md §3 determinism contract: results are a pure function of
// (the problem, the current master seed, the sample count), and Bind's
// context may abort an evaluation but never reorder it — that is what
// lets the solver, the serving layer's content-addressed cache and the
// golden tests treat local and sharded backends interchangeably.
type Estimator interface {
	// Bind attaches a cancellation context; in-flight and future
	// evaluations stop promptly once it fires, returning garbage the
	// caller must discard after checking the context.
	Bind(ctx context.Context)
	// Reseed replaces the master seed for subsequent estimates (the
	// winner's-curse reseed between greedy rounds).
	Reseed(seed uint64)
	// Sigma returns the Monte-Carlo estimate of σ(seeds).
	Sigma(seeds []diffusion.Seed) float64
	// Run estimates one seed group (market nil = all users; withPi
	// adds the future-adoption likelihood π).
	Run(seeds []diffusion.Seed, market []bool, withPi bool) diffusion.Estimate
	// RunBatch estimates every group under one shared market mask with
	// common random numbers across groups.
	RunBatch(groups [][]diffusion.Seed, market []bool) []diffusion.Estimate
	// RunBatchPi is RunBatch with π evaluated per group.
	RunBatchPi(groups [][]diffusion.Seed, market []bool) []diffusion.Estimate
	// RunBatchMasked estimates each group under its own market mask
	// (masks[g] may be nil), optionally with π.
	RunBatchMasked(groups [][]diffusion.Seed, masks [][]bool, withPi bool) []diffusion.Estimate
	// SigmaBatch returns just the σ of every group.
	SigmaBatch(groups [][]diffusion.Seed) []float64
	// MeanWeights returns the expected end-of-campaign meta-graph
	// weighting vector averaged over users (the DRE expectation step).
	MeanWeights(seeds []diffusion.Seed, users []int) []float64
	// SamplesDone reports cumulative Monte-Carlo campaigns simulated,
	// for throughput accounting.
	SamplesDone() uint64
	// StateBytes reports the largest retained per-worker simulation
	// state footprint (0 is fine for backends that cannot observe it).
	StateBytes() uint64
}

// The in-process batch engine is the reference Estimator; the
// RR-sketch hybrid is the approximate second implementation.
var (
	_ Estimator = (*diffusion.Estimator)(nil)
	_ Estimator = (*sketch.Estimator)(nil)
)

// EstimatorFactory constructs the estimation backend for one solver
// run: the problem, the per-estimate sample count, the master seed and
// the worker bound (0 → GOMAXPROCS) a local engine would use. A solver
// run constructs two backends (the MC selection estimator and the MCSI
// scheduling estimator) through the same factory.
type EstimatorFactory func(p *diffusion.Problem, samples int, seed uint64, workers int) Estimator

// LocalEstimator is the default EstimatorFactory: the in-process batch
// engine of internal/diffusion.
func LocalEstimator(p *diffusion.Problem, samples int, seed uint64, workers int) Estimator {
	e := diffusion.NewEstimator(p, samples, seed)
	e.Workers = workers
	return e
}

// SketchBackend returns an EstimatorFactory over the RR-sketch hybrid
// estimator (internal/sketch): σ-only evaluations answered by coverage
// counting under cfg's (ε, δ) contract, π/MeanWeights delegated to an
// embedded MC engine. The serving layer passes a shared sketch cache
// through cfg; library callers may leave it nil.
func SketchBackend(cfg sketch.Config) EstimatorFactory {
	return func(p *diffusion.Problem, samples int, seed uint64, workers int) Estimator {
		return sketch.New(p, cfg, samples, seed, workers)
	}
}

// backend resolves the configured factory: an explicit Backend wins,
// then Epsilon > 0 selects the sketch hybrid, then the local engine.
func (o Options) backend() EstimatorFactory {
	if o.Backend != nil {
		return o.Backend
	}
	if o.Epsilon > 0 {
		return SketchBackend(sketch.Config{Epsilon: o.Epsilon, Delta: o.Delta})
	}
	return LocalEstimator
}

package core

import (
	"context"
	"math"
	"testing"

	"imdpp/internal/obs"
)

// TestSolveTracingBitIdentity is the observability acceptance golden:
// a solve run under a live trace span with a progress callback must be
// bit-identical (Float64bits) to the same solve with no
// instrumentation at all, because spans and progress events only
// observe work — they never schedule, reorder or parameterise it
// (DESIGN.md §3, §11).
func TestSolveTracingBitIdentity(t *testing.T) {
	p := sampleProblem(t, 100, 2)

	plain, err := Solve(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}

	tracer := obs.NewTracer()
	root := tracer.Start("solve_test")
	ctx := obs.ContextWithSpan(context.Background(), root)
	opt := quickOpts()
	var events []ProgressEvent
	opt.Progress = func(ev ProgressEvent) { events = append(events, ev) }
	traced, err := SolveCtx(ctx, p, opt)
	root.End()
	if err != nil {
		t.Fatal(err)
	}

	if math.Float64bits(plain.Sigma) != math.Float64bits(traced.Sigma) {
		t.Fatalf("sigma differs under tracing: %x vs %x",
			math.Float64bits(plain.Sigma), math.Float64bits(traced.Sigma))
	}
	if math.Float64bits(plain.Cost) != math.Float64bits(traced.Cost) {
		t.Fatalf("cost differs under tracing: %v vs %v", plain.Cost, traced.Cost)
	}
	if len(plain.Seeds) != len(traced.Seeds) {
		t.Fatalf("seed count differs under tracing: %d vs %d", len(plain.Seeds), len(traced.Seeds))
	}
	for i := range plain.Seeds {
		if plain.Seeds[i] != traced.Seeds[i] {
			t.Fatalf("seed %d differs under tracing: %+v vs %+v", i, plain.Seeds[i], traced.Seeds[i])
		}
	}

	// the instrumentation itself must have fired: progress events carry
	// monotonically non-decreasing elapsed_ns
	if len(events) == 0 {
		t.Fatal("no progress events observed")
	}
	prev := int64(-1)
	for i, ev := range events {
		if ev.ElapsedNS < prev {
			t.Fatalf("elapsed_ns not monotone at event %d: %d after %d", i, ev.ElapsedNS, prev)
		}
		prev = ev.ElapsedNS
	}
}

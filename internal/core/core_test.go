package core

import (
	"context"
	"testing"

	"imdpp/internal/cluster"
	"imdpp/internal/dataset"
	"imdpp/internal/diffusion"
)

func sampleProblem(t *testing.T, budget float64, T int) *diffusion.Problem {
	t.Helper()
	d, err := dataset.AmazonSample()
	if err != nil {
		t.Fatal(err)
	}
	return d.Clone(budget, T)
}

func quickOpts() Options {
	return Options{MC: 8, MCSI: 4, CandidateCap: 48, Seed: 7}
}

func TestSolveRejectsInvalidProblem(t *testing.T) {
	p := sampleProblem(t, 100, 2)
	bad := *p
	bad.T = 0
	if _, err := Solve(&bad, quickOpts()); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

// TestSolveWorkerInvariance: the whole solver output — not just the
// estimates — must be independent of the worker count, since the batch
// engine reduces in sample order and the CELF wave size is a constant.
func TestSolveWorkerInvariance(t *testing.T) {
	p := sampleProblem(t, 100, 2)
	var ref Solution
	for i, w := range []int{1, 3, 8} {
		opt := quickOpts()
		opt.Workers = w
		sol, err := Solve(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = sol
			continue
		}
		if sol.Sigma != ref.Sigma || len(sol.Seeds) != len(ref.Seeds) {
			t.Fatalf("workers=%d changed solve: σ %v vs %v, %d vs %d seeds",
				w, sol.Sigma, ref.Sigma, len(sol.Seeds), len(ref.Seeds))
		}
		for j := range sol.Seeds {
			if sol.Seeds[j] != ref.Seeds[j] {
				t.Fatalf("workers=%d seed %d: %+v vs %+v", w, j, sol.Seeds[j], ref.Seeds[j])
			}
		}
	}
}

func TestSolveDeterministic(t *testing.T) {
	p := sampleProblem(t, 100, 2)
	a, err := Solve(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Seeds) != len(b.Seeds) {
		t.Fatalf("nondeterministic: %d vs %d seeds", len(a.Seeds), len(b.Seeds))
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seed %d differs", i)
		}
	}
}

func TestSolveTimingsWithinCampaign(t *testing.T) {
	p := sampleProblem(t, 150, 4)
	sol, err := Solve(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sol.Seeds {
		if s.T < 1 || s.T > p.T {
			t.Fatalf("timing %d outside [1,%d]", s.T, p.T)
		}
	}
}

func TestSolveStatsPopulated(t *testing.T) {
	p := sampleProblem(t, 100, 2)
	sol, err := Solve(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	st := sol.Stats
	if st.SigmaEvals == 0 || st.NomineeCount == 0 || st.MarketCount == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.TotalTime <= 0 {
		t.Fatal("no total time")
	}
	if len(sol.Markets) != st.MarketCount {
		t.Fatalf("markets slice %d vs count %d", len(sol.Markets), st.MarketCount)
	}
}

func TestAblationSwitchesRun(t *testing.T) {
	p := sampleProblem(t, 100, 3)
	for _, mod := range []func(*Options){
		func(o *Options) { o.DisableTargetMarkets = true },
		func(o *Options) { o.DisableItemPriority = true },
	} {
		opt := quickOpts()
		mod(&opt)
		sol, err := Solve(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(sol.Seeds) == 0 || sol.Cost > p.Budget+1e-9 {
			t.Fatalf("ablation run degenerate: %+v", sol)
		}
	}
	// w/o TM forces a single market
	opt := quickOpts()
	opt.DisableTargetMarkets = true
	sol, err := Solve(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.MarketCount != 1 {
		t.Fatalf("w/o TM produced %d markets", sol.Stats.MarketCount)
	}
}

func TestOrderMetricsRun(t *testing.T) {
	p := sampleProblem(t, 100, 3)
	for _, order := range []OrderMetric{OrderAE, OrderPF, OrderSZ, OrderRMS, OrderRD} {
		opt := quickOpts()
		opt.Order = order
		sol, err := Solve(p, opt)
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		if len(sol.Seeds) == 0 {
			t.Fatalf("%v selected nothing", order)
		}
	}
}

func TestOrderMetricStrings(t *testing.T) {
	names := map[OrderMetric]string{
		OrderAE: "AE", OrderPF: "PF", OrderSZ: "SZ", OrderRMS: "RMS", OrderRD: "RD",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%d → %s", m, m.String())
		}
	}
}

func TestThetaChangesGrouping(t *testing.T) {
	p := sampleProblem(t, 150, 3)
	opt := quickOpts()
	opt.Theta = 1
	a, err := Solve(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Theta = 1000 // nothing overlaps by 1000 users on a 100-user graph
	b, err := Solve(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if b.Stats.GroupCount < a.Stats.GroupCount {
		t.Fatalf("raising θ reduced groups: %d vs %d", a.Stats.GroupCount, b.Stats.GroupCount)
	}
	if b.Stats.GroupCount != b.Stats.MarketCount {
		t.Fatalf("θ=1000 still grouped markets: %d groups for %d markets",
			b.Stats.GroupCount, b.Stats.MarketCount)
	}
}

func TestSolveAdaptive(t *testing.T) {
	p := sampleProblem(t, 120, 3)
	opt := quickOpts()
	opt.CandidateCap = 24
	sol, err := SolveAdaptive(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Seeds) == 0 {
		t.Fatal("adaptive selected nothing")
	}
	if sol.Cost > p.Budget+1e-9 {
		t.Fatalf("adaptive over budget: %v", sol.Cost)
	}
	if err := p.ValidateSeeds(sol.Seeds); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveRejectsInvalidProblem(t *testing.T) {
	p := sampleProblem(t, 100, 2)
	bad := *p
	bad.T = 0
	if _, err := SolveAdaptive(&bad, quickOpts()); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestCandidateUniverseDiversity(t *testing.T) {
	p := sampleProblem(t, 150, 2)
	s := newSolver(context.Background(), p, Options{CandidateCap: 30, Seed: 1})
	u := s.candidateUniverse()
	if len(u) == 0 || len(u) > 30 {
		t.Fatalf("universe size %d", len(u))
	}
	perUser := map[int]int{}
	for _, nm := range u {
		perUser[nm.User]++
		if c := p.CostOf(nm.User, nm.Item); c > p.Budget {
			t.Fatal("unaffordable candidate")
		}
	}
	if len(perUser) < 10 {
		t.Fatalf("only %d distinct users in the universe", len(perUser))
	}
}

func TestSelectNomineesBudget(t *testing.T) {
	p := sampleProblem(t, 80, 2)
	s := newSolver(context.Background(), p, quickOpts())
	universe := s.candidateUniverse()
	selected, emax, emaxSigma, spent, err := s.selectNominees(universe, p.Budget)
	if err != nil {
		t.Fatalf("selectNominees: %v", err)
	}
	if spent > p.Budget+1e-9 {
		t.Fatalf("spent %v over budget", spent)
	}
	if len(selected) == 0 {
		t.Fatal("nothing selected")
	}
	if emax.User < 0 || emaxSigma <= 0 {
		t.Fatalf("emax not tracked: %+v σ=%v", emax, emaxSigma)
	}
}

func TestIdentifyMarkets(t *testing.T) {
	p := sampleProblem(t, 150, 2)
	s := newSolver(context.Background(), p, quickOpts())
	noms := []cluster.Nominee{{User: 0, Item: 0}, {User: 1, Item: 1}, {User: 50, Item: 2}}
	markets := s.identifyMarkets(noms)
	if len(markets) == 0 {
		t.Fatal("no markets")
	}
	total := 0
	for _, m := range markets {
		total += len(m.Nominees)
		if len(m.Users) == 0 {
			t.Fatal("market without users")
		}
		if m.Diameter < 1 {
			t.Fatalf("diameter %d", m.Diameter)
		}
		// mask must agree with the user list
		cnt := 0
		for _, v := range m.Mask {
			if v {
				cnt++
			}
		}
		if cnt != len(m.Users) {
			t.Fatalf("mask %d vs users %d", cnt, len(m.Users))
		}
		// nominee users must belong to their market
		for _, nm := range m.Nominees {
			if !m.Mask[nm.User] {
				t.Fatalf("nominee user %d outside market", nm.User)
			}
		}
	}
	if total != len(noms) {
		t.Fatalf("markets cover %d of %d nominees", total, len(noms))
	}
}

func TestGroupMarketsTheta(t *testing.T) {
	p := sampleProblem(t, 150, 2)
	s := newSolver(context.Background(), p, quickOpts())
	mkA := &Market{ID: 0, Users: []int{1, 2, 3, 4}}
	mkB := &Market{ID: 1, Users: []int{3, 4, 5, 6}}
	mkC := &Market{ID: 2, Users: []int{90, 91}}
	s.opt.Theta = 1 // A and B share 2 users > 1 → grouped
	groups := s.groupMarkets([]*Market{mkA, mkB, mkC})
	if len(groups) != 2 {
		t.Fatalf("groups: %v", groups)
	}
	s.opt.Theta = 2 // overlap of exactly 2 is no longer enough
	groups = s.groupMarkets([]*Market{mkA, mkB, mkC})
	if len(groups) != 3 {
		t.Fatalf("θ=2 groups: %v", groups)
	}
}

func TestAntagonisticExtent(t *testing.T) {
	p := sampleProblem(t, 150, 2)
	s := newSolver(context.Background(), p, quickOpts())
	// find a substitutable pair in the sample's PIN
	var x, y int = -1, -1
	for i := 0; i < p.NumItems() && x < 0; i++ {
		for _, nb := range p.PIN.Neighbors(i) {
			if _, rs := p.PIN.RelStatic(i, int(nb)); rs > 0 {
				x, y = i, int(nb)
				break
			}
		}
	}
	if x < 0 {
		t.Skip("no substitutable pair in sample")
	}
	mkA := &Market{ID: 0, Items: []int{x}}
	mkB := &Market{ID: 1, Items: []int{y}}
	group := []int{0, 1}
	markets := []*Market{mkA, mkB}
	ae := s.antagonisticExtent(markets, mkA, group)
	if ae <= 0 {
		t.Fatalf("AE of substitutable markets = %v", ae)
	}
	// a market with no substitutable rivals has AE 0
	mkC := &Market{ID: 2, Items: []int{}}
	if got := s.antagonisticExtent([]*Market{mkA, mkC}, mkC, []int{0, 1}); got != 0 {
		t.Fatalf("empty market AE %v", got)
	}
}

func TestAllocateDurations(t *testing.T) {
	markets := []*Market{
		{ID: 0, Nominees: make([]cluster.Nominee, 6)},
		{ID: 1, Nominees: make([]cluster.Nominee, 2)},
		{ID: 2, Nominees: make([]cluster.Nominee, 1)},
	}
	allocateDurations(markets, []int{0, 1, 2}, 9)
	if markets[0].Ttau != 6 || markets[1].Ttau != 2 || markets[2].Ttau != 1 {
		t.Fatalf("durations %d/%d/%d", markets[0].Ttau, markets[1].Ttau, markets[2].Ttau)
	}
	// floor of 1
	allocateDurations(markets, []int{0, 1, 2}, 2)
	for _, m := range markets {
		if m.Ttau < 1 {
			t.Fatalf("duration floor broken: %d", m.Ttau)
		}
	}
}

func TestDynamicReachabilityPrefersComplementHubs(t *testing.T) {
	p := sampleProblem(t, 150, 3)
	s := newSolver(context.Background(), p, quickOpts())
	mask := make([]bool, p.NumUsers())
	users := make([]int, 0, 20)
	for u := 0; u < 20; u++ {
		mask[u] = true
		users = append(users, u)
	}
	m := &Market{Users: users, Mask: mask, Diameter: 3}
	items := make([]int, p.NumItems())
	for i := range items {
		items[i] = i
	}
	dr := s.dynamicReachability(m, nil, items)
	if len(dr) != len(items) {
		t.Fatalf("DR for %d items", len(dr))
	}
	// an item with no PIN neighbours must have DR 0
	for _, x := range items {
		if len(p.PIN.Neighbors(x)) == 0 && dr[x] != 0 {
			t.Fatalf("isolated item %d has DR %v", x, dr[x])
		}
	}
	best := s.bestItemByDR(m, nil, items)
	for _, x := range items {
		if dr[x] > dr[best] {
			t.Fatalf("bestItemByDR missed %d (%v > %v)", x, dr[x], dr[best])
		}
	}
}

func TestMarketSharesAndRMS(t *testing.T) {
	p := sampleProblem(t, 150, 2)
	s := newSolver(context.Background(), p, quickOpts())
	shares := s.marketShares()
	total := 0
	for _, n := range shares {
		total += n
	}
	if total != p.NumUsers() {
		t.Fatalf("shares sum %d != %d users", total, p.NumUsers())
	}
	m := &Market{Items: []int{0, 1}}
	if rms := s.relativeMarketShare(m, shares); rms < 0 {
		t.Fatalf("negative RMS %v", rms)
	}
	if rms := s.relativeMarketShare(&Market{}, shares); rms != 0 {
		t.Fatalf("empty market RMS %v", rms)
	}
}

package core

import (
	"testing"
	"time"

	"imdpp/internal/dataset"
)

func TestPerfLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale Amazon solve; skipped in -short (race) runs")
	}
	start := time.Now()
	d, err := dataset.Amazon(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("dataset gen: %v users=%d items=%d", time.Since(start), d.Problem.NumUsers(), d.Problem.NumItems())
	p := d.Clone(500, 10)
	start = time.Now()
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("solve: %v seeds=%d sigma=%.1f markets=%d evals=%d si=%d", time.Since(start), len(sol.Seeds), sol.Sigma, sol.Stats.MarketCount, sol.Stats.SigmaEvals, sol.Stats.SIEvals)
}

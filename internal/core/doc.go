// Package core implements Dysim — Dynamic perception for seeding in
// target markets — the approximation algorithm for IMDPP (Sec. IV of
// the paper), with its three phases:
//
//   - TMI (Target Market Identification): selects nominees by marginal
//     cost-performance ratio (MCP, Procedure 2), clusters them
//     (Procedure 3), expands clusters into target markets via MIOA,
//     and prioritises overlapping markets by Antagonistic Extent
//     (Procedure 4).
//   - DRE (Dynamic Reachability Evaluation): ranks each market's items
//     by DR = PI + RI (Eq. 1, 9, 10) under the post-promotion expected
//     perception.
//   - TDSI (Timing Determination by Substantial Inﬂuence): assigns each
//     nominee the promotional timing in [t̂, min(t̂+1, ΣTτ)] with the
//     largest SI = MA + (T−t+1)/T·ML (Eq. 2, 11, 12).
//
// Options expose the ablations of Sec. VI-C (w/o TM, w/o IP), the
// market-order metrics of Sec. VI-D (AE/PF/SZ/RMS/RD), the θ
// sensitivity of Sec. VI-G, and the adaptive mode of Sec. V-D.
//
// All σ/π evaluation flows through the Estimator backend interface
// (estimator.go): the in-process batch engine by default, or — via
// Options.Backend — the sharded remote-worker estimator of
// internal/shard, with bit-identical results either way (DESIGN.md
// §3, §7). SolveCtx/SolveAdaptiveCtx thread cancellation through
// every selection loop and the backend.
package core

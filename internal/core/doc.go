// Package core implements Dysim — Dynamic perception for seeding in
// target markets — the approximation algorithm for IMDPP (Sec. IV of
// the paper), with its three phases:
//
//   - TMI (Target Market Identification): selects nominees by marginal
//     cost-performance ratio (MCP, Procedure 2), clusters them
//     (Procedure 3), expands clusters into target markets via MIOA,
//     and prioritises overlapping markets by Antagonistic Extent
//     (Procedure 4).
//   - DRE (Dynamic Reachability Evaluation): ranks each market's items
//     by DR = PI + RI (Eq. 1, 9, 10) under the post-promotion expected
//     perception.
//   - TDSI (Timing Determination by Substantial Inﬂuence): assigns each
//     nominee the promotional timing in [t̂, min(t̂+1, ΣTτ)] with the
//     largest SI = MA + (T−t+1)/T·ML (Eq. 2, 11, 12).
//
// Options expose the ablations of Sec. VI-C (w/o TM, w/o IP), the
// market-order metrics of Sec. VI-D (AE/PF/SZ/RMS/RD), the θ
// sensitivity of Sec. VI-G, and the adaptive mode of Sec. V-D.
//
// All σ/π evaluation flows through the Estimator backend interface
// (estimator.go). Two result classes exist behind it. The exact class
// — the in-process batch engine by default, or the sharded
// remote-worker estimator of internal/shard via Options.Backend — is
// bit-identical whichever member serves it (DESIGN.md §3, §7), which
// is why Backend-as-constructor stays out of the request hash. The
// approximate class is the reverse-reachable sketch estimator of
// internal/sketch, selected by Options.Epsilon > 0 (or explicitly via
// SketchBackend): it answers σ within ε·n·W with probability 1 − δ
// from a precomputed coverage index (DESIGN.md §9). Epsilon and Delta
// change the answer itself, so — unlike Backend — they ARE
// result-relevant and hash into their own cache lane; Validate
// rejects ε ≤ 0, δ ∉ (0,1) and δ without ε, so an absent epsilon
// always means exact. SolveCtx/SolveAdaptiveCtx thread cancellation
// through every selection loop and the backend.
package core

package core

import (
	"sort"

	"imdpp/internal/cluster"
	"imdpp/internal/diffusion"
	"imdpp/internal/mioa"
	"imdpp/internal/rng"
)

// identifyMarkets is the middle of TMI: cluster the selected nominees
// (Procedure 3), expand each cluster into a target market through MIOA
// (footnote 17), and measure each market's diameter d_τ.
func (s *solver) identifyMarkets(nominees []cluster.Nominee) []*Market {
	p := s.p
	var clusters [][]int
	if s.opt.DisableTargetMarkets {
		// w/o TM ablation: one market holding every nominee
		all := make([]int, len(nominees))
		for i := range all {
			all[i] = i
		}
		clusters = [][]int{all}
	} else {
		clusters = cluster.Cluster(p.G, p.PIN, nominees, s.opt.Cluster)
	}
	markets := make([]*Market, 0, len(clusters))
	for ci, members := range clusters {
		m := &Market{ID: ci}
		userSet := map[int]bool{}
		itemSet := map[int]bool{}
		for _, idx := range members {
			m.Nominees = append(m.Nominees, nominees[idx])
			userSet[nominees[idx].User] = true
			itemSet[nominees[idx].Item] = true
		}
		srcs := make([]int, 0, len(userSet))
		for u := range userSet {
			srcs = append(srcs, u)
		}
		sort.Ints(srcs)
		m.Users = mioa.Region(p.G, srcs, s.opt.MIOAThreshold)
		m.Mask = make([]bool, p.NumUsers())
		for _, u := range m.Users {
			m.Mask[u] = true
		}
		m.Diameter = p.G.EccentricityFrom(srcs)
		if m.Diameter < 1 {
			m.Diameter = 1
		}
		for x := range itemSet {
			m.Items = append(m.Items, x)
		}
		sort.Ints(m.Items)
		markets = append(markets, m)
	}
	return markets
}

// groupMarkets is Procedure 4's first half: markets sharing more than
// θ common users land in the same group G (transitively, via
// union-find). Returns groups as ordered market-index lists.
func (s *solver) groupMarkets(markets []*Market) [][]int {
	n := len(markets)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if commonUsers(markets[i], markets[j]) > s.opt.Theta {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	byRoot := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	groups := make([][]int, 0, len(byRoot))
	for _, g := range byRoot {
		sort.Ints(g)
		groups = append(groups, g)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
	for gi, g := range groups {
		for _, mi := range g {
			markets[mi].Group = gi
		}
	}
	return groups
}

func commonUsers(a, b *Market) int {
	// both Users slices are sorted
	i, j, c := 0, 0, 0
	for i < len(a.Users) && j < len(b.Users) {
		switch {
		case a.Users[i] < b.Users[j]:
			i++
		case a.Users[i] > b.Users[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// orderGroup is Procedure 4's second half: arrange the markets of one
// group by the configured metric. AE ascending is the paper's default;
// PF/SZ/RMS order descending; RD shuffles (Sec. VI-D).
func (s *solver) orderGroup(markets []*Market, group []int) []int {
	ordered := append([]int(nil), group...)
	switch s.opt.Order {
	case OrderPF:
		for j, pf := range s.profitabilityBatch(markets, group) {
			markets[group[j]].OrderKey = pf
		}
		sortByKey(ordered, markets, false)
	case OrderSZ:
		for _, mi := range group {
			markets[mi].OrderKey = float64(len(markets[mi].Users))
		}
		sortByKey(ordered, markets, false)
	case OrderRMS:
		shares := s.marketShares()
		for _, mi := range group {
			markets[mi].OrderKey = s.relativeMarketShare(markets[mi], shares)
		}
		sortByKey(ordered, markets, false)
	case OrderRD:
		r := rng.New(s.opt.Seed ^ 0xabcdef)
		r.Shuffle(len(ordered), func(i, j int) {
			ordered[i], ordered[j] = ordered[j], ordered[i]
		})
	default: // OrderAE
		for _, mi := range group {
			markets[mi].OrderKey = s.antagonisticExtent(markets, markets[mi], group)
		}
		sortByKey(ordered, markets, true)
	}
	return ordered
}

func sortByKey(idx []int, markets []*Market, ascending bool) {
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := markets[idx[a]].OrderKey, markets[idx[b]].OrderKey
		if ka != kb {
			if ascending {
				return ka < kb
			}
			return ka > kb
		}
		return idx[a] < idx[b]
	})
}

// antagonisticExtent computes AE(τi) = Σ_{x∈τi, y∈τj, j≠i} r̄S_{x,y}
// over the other markets of the same group, under the static
// (pre-campaign) perception.
func (s *solver) antagonisticExtent(markets []*Market, mi *Market, group []int) float64 {
	ae := 0.0
	for _, oj := range group {
		mj := markets[oj]
		if mj == mi {
			continue
		}
		for _, x := range mi.Items {
			for _, y := range mj.Items {
				_, rs := s.p.PIN.RelStatic(x, y)
				ae += rs
			}
		}
	}
	return ae
}

// profitabilityBatch (PF, Sec. VI-D): expected adoptions under each
// market's own nominees seeded at t=1, minus the nominees' cost. The
// group's markets are evaluated in one batch, each under its own
// market mask, sharing sample streams. Returns PF values parallel to
// group.
func (s *solver) profitabilityBatch(markets []*Market, group []int) []float64 {
	groups := make([][]diffusion.Seed, len(group))
	masks := make([][]bool, len(group))
	costs := make([]float64, len(group))
	for j, mi := range group {
		m := markets[mi]
		seeds := make([]diffusion.Seed, len(m.Nominees))
		for i, nm := range m.Nominees {
			seeds[i] = diffusion.Seed{User: nm.User, Item: nm.Item, T: 1}
			costs[j] += s.p.CostOf(nm.User, nm.Item)
		}
		groups[j] = seeds
		masks[j] = m.Mask
	}
	ests := s.estSI.RunBatchMasked(groups, masks, false)
	out := make([]float64, len(group))
	for j := range group {
		out[j] = ests[j].MarketSigma - costs[j]
	}
	return out
}

// marketShares returns, per item, the number of users whose highest
// base preference is that item ("users preferring the item most").
func (s *solver) marketShares() []int {
	p := s.p
	shares := make([]int, p.NumItems())
	for u := 0; u < p.NumUsers(); u++ {
		best, bestPref := -1, 0.0
		for x := 0; x < p.NumItems(); x++ {
			if pr := p.BasePrefOf(u, x); pr > bestPref {
				bestPref = pr
				best = x
			}
		}
		if best >= 0 {
			shares[best]++
		}
	}
	return shares
}

// relativeMarketShare (RMS, Sec. VI-D): per promoted item, the ratio
// of its share to the largest share among its substitutable items;
// the market's key is the mean over its items.
func (s *solver) relativeMarketShare(m *Market, shares []int) float64 {
	if len(m.Items) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range m.Items {
		maxSub := 0
		for _, y := range s.p.PIN.Neighbors(x) {
			if _, rs := s.p.PIN.RelStatic(x, int(y)); rs > 0 && shares[y] > maxSub {
				maxSub = shares[y]
			}
		}
		if maxSub == 0 {
			total += float64(shares[x]) + 1 // no substitutable rival: dominant
		} else {
			total += float64(shares[x]) / float64(maxSub)
		}
	}
	return total / float64(len(m.Items))
}

// allocateDurations splits the T promotions of one group across its
// markets proportionally to nominee counts: T_τk = ⌊|Nτk|·T / Σ|Nτi|⌋,
// with a floor of 1 (Algorithm 1 line 10).
func allocateDurations(markets []*Market, ordered []int, T int) {
	total := 0
	for _, mi := range ordered {
		total += len(markets[mi].Nominees)
	}
	if total == 0 {
		return
	}
	for _, mi := range ordered {
		tt := len(markets[mi].Nominees) * T / total
		if tt < 1 {
			tt = 1
		}
		markets[mi].Ttau = tt
	}
}

package core

import (
	"imdpp/internal/diffusion"
)

// maxDRDepth caps the PI/RI recursion depth. Markets are usually
// shallow; the cap keeps the recursion from amplifying relevance
// cycles on dense item graphs while still honouring d_τ for the
// realistic diameters.
const maxDRDepth = 8

// dynamicReachability evaluates DR (Eq. 1) for every item in items:
//
//	DR(x) = PI(SG,x,d) + RI_{w_x}(SG,x,d)
//
// where the proactive impact PI and the reactive impact RI follow the
// recursions of Eq. 9/10. Because the likelihood terms satisfy
// LC·r̄C − LS·r̄S = (r̄C² − r̄S²)/(r̄C+r̄S) = r̄C − r̄S, each recursion
// level adds (r̄C_{x,y} − r̄S_{x,y})·w for every related pair, which is
// how Example 4's arithmetic unfolds. The relevance averages r̄ are
// taken over the market's users under the Monte-Carlo expectation of
// the post-SG personal item networks (Example 2's expectation step).
func (s *solver) dynamicReachability(m *Market, sg []diffusion.Seed, items []int) map[int]float64 {
	p := s.p
	meanW := s.estSI.MeanWeights(sg, m.Users)
	d := m.Diameter
	if d > maxDRDepth {
		d = maxDRDepth
	}
	if d < 1 {
		d = 1
	}
	n := p.NumItems()
	// edge terms under the expected perception
	type rel struct {
		y   int32
		gap float64 // r̄C − r̄S
	}
	adj := make([][]rel, n)
	for x := 0; x < n; x++ {
		for _, y := range p.PIN.Neighbors(x) {
			rc, rs := p.PIN.Rel(meanW, x, int(y))
			if rc == 0 && rs == 0 {
				continue
			}
			adj[x] = append(adj[x], rel{y: y, gap: rc - rs})
		}
	}
	pi := make([]float64, n) // PI at current depth
	bb := make([]float64, n) // RI/w_x at current depth
	npi := make([]float64, n)
	nbb := make([]float64, n)
	for depth := 1; depth <= d; depth++ {
		for x := 0; x < n; x++ {
			var sp, sb float64
			for _, r := range adj[x] {
				sp += r.gap*p.Importance[r.y] + pi[r.y]
				sb += r.gap + bb[r.y]
			}
			npi[x] = sp
			nbb[x] = sb
		}
		pi, npi = npi, pi
		bb, nbb = nbb, bb
	}
	out := make(map[int]float64, len(items))
	for _, x := range items {
		out[x] = pi[x] + p.Importance[x]*bb[x]
	}
	return out
}

// bestItemByDR returns the item of items with the highest DR given SG
// (DRE's argmax on Algorithm 1 line 13), with a deterministic
// tie-break on item id.
func (s *solver) bestItemByDR(m *Market, sg []diffusion.Seed, items []int) int {
	dr := s.dynamicReachability(m, sg, items)
	best, bestDR := -1, 0.0
	for _, x := range items {
		v := dr[x]
		if best == -1 || v > bestDR || (v == bestDR && x < best) {
			best, bestDR = x, v
		}
	}
	return best
}

package core

import (
	"context"
	"time"

	"imdpp/internal/diffusion"
)

// Solve runs Dysim (Algorithm 1) on the problem and returns the seed
// group, its cost and the final σ estimate.
func Solve(p *diffusion.Problem, opt Options) (Solution, error) {
	return SolveCtx(context.Background(), p, opt)
}

// SolveCtx is Solve with cancellation: when ctx is cancelled the
// solver aborts within about one campaign simulation — the estimator
// preempts between (group × sample) units and every selection loop
// checks the context at round boundaries — releasing its worker
// goroutines and returning ctx.Err(). A completed (non-cancelled)
// solve is bit-identical to Solve: the context never influences
// sampling or selection.
func SolveCtx(ctx context.Context, p *diffusion.Problem, opt Options) (Solution, error) {
	if err := ValidateRequest(p, opt); err != nil {
		return Solution{}, err
	}
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	s := newSolver(ctx, p, opt)
	start := time.Now()

	// --- TMI: nominee selection ----------------------------------------
	t0 := time.Now()
	universe := s.candidateUniverse()
	selected, emax, emaxSigma, _, err := s.selectNominees(universe, p.Budget)
	if err != nil {
		return Solution{}, err
	}
	s.stats.NomineeCount = len(selected)
	s.stats.SelectTime = time.Since(t0)

	// --- TMI: markets, groups, order ------------------------------------
	t0 = time.Now()
	markets := s.identifyMarkets(selected)
	groups := s.groupMarkets(markets)
	s.stats.MarketCount = len(markets)
	s.stats.GroupCount = len(groups)
	s.stats.MarketTime = time.Since(t0)

	// --- DRE + TDSI per group -------------------------------------------
	t0 = time.Now()
	var all []diffusion.Seed
	for _, group := range groups {
		ordered := s.orderGroup(markets, group)
		allocateDurations(markets, ordered, p.T)
		var sg []diffusion.Seed
		cum := 0
		for _, mi := range ordered {
			cum += markets[mi].Ttau
			if cum > p.T {
				cum = p.T
			}
			if err := s.scheduleMarket(markets[mi], &sg, cum); err != nil {
				return Solution{}, err
			}
		}
		all = append(all, sg...)
	}
	s.stats.ScheduleTime = time.Since(t0)

	// --- Theorem 3/5 safeguard: compare with the best single seed --------
	// emaxSigma is a max over many noisy evaluations and therefore
	// positively biased; cross-validate the comparison on the SI
	// estimator (independent master seed) before replacing the full
	// plan with a single seed.
	sigAll := s.sigma(all)
	if err := s.err(); err != nil {
		return Solution{}, err
	}
	if emax.User >= 0 && emaxSigma > sigAll && p.CostOf(emax.User, emax.Item) <= p.Budget {
		emaxSeeds := []diffusion.Seed{{User: emax.User, Item: emax.Item, T: 1}}
		// one paired batch: the shared sample streams make this a
		// common-random-numbers comparison rather than two independent
		// noisy draws
		ests := s.estSI.RunBatch([][]diffusion.Seed{all, emaxSeeds}, nil)
		if err := s.err(); err != nil {
			return Solution{}, err
		}
		if ests[1].Sigma > ests[0].Sigma {
			all = emaxSeeds
			sigAll = emaxSigma
		}
	}

	s.stats.TotalTime = time.Since(start)
	s.stats.SamplesSimulated = s.est.SamplesDone() + s.estSI.SamplesDone()
	s.collectGridStats()
	s.stats.StateBytesPerWorker = max(s.est.StateBytes(), s.estSI.StateBytes())
	sol := Solution{
		Seeds: all,
		Cost:  p.SeedCost(all),
		Sigma: sigAll,
		Stats: s.stats,
	}
	for _, m := range markets {
		sol.Markets = append(sol.Markets, *m)
	}
	return sol, nil
}

package core

import (
	"testing"

	"imdpp/internal/dataset"
)

// TestSolveSmoke runs Dysim end-to-end on the small Amazon sample.
func TestSolveSmoke(t *testing.T) {
	d, err := dataset.AmazonSample()
	if err != nil {
		t.Fatal(err)
	}
	p := d.Clone(100, 2)
	sol, err := Solve(p, Options{MC: 16, MCSI: 8, CandidateCap: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Seeds) == 0 {
		t.Fatal("no seeds selected")
	}
	if sol.Cost > p.Budget+1e-9 {
		t.Fatalf("cost %.2f over budget %.2f", sol.Cost, p.Budget)
	}
	if sol.Sigma <= 0 {
		t.Fatalf("sigma %.3f not positive", sol.Sigma)
	}
	if err := p.ValidateSeeds(sol.Seeds); err != nil {
		t.Fatalf("invalid seeds: %v", err)
	}
	t.Logf("seeds=%d cost=%.1f sigma=%.2f markets=%d evals=%d time=%v",
		len(sol.Seeds), sol.Cost, sol.Sigma, sol.Stats.MarketCount,
		sol.Stats.SigmaEvals, sol.Stats.TotalTime)
}

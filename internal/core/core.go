// Package core implements Dysim — Dynamic perception for seeding in
// target markets — the approximation algorithm for IMDPP (Sec. IV of
// the paper), with its three phases:
//
//   - TMI (Target Market Identification): selects nominees by marginal
//     cost-performance ratio (MCP, Procedure 2), clusters them
//     (Procedure 3), expands clusters into target markets via MIOA,
//     and prioritises overlapping markets by Antagonistic Extent
//     (Procedure 4).
//   - DRE (Dynamic Reachability Evaluation): ranks each market's items
//     by DR = PI + RI (Eq. 1, 9, 10) under the post-promotion expected
//     perception.
//   - TDSI (Timing Determination by Substantial Inﬂuence): assigns each
//     nominee the promotional timing in [t̂, min(t̂+1, ΣTτ)] with the
//     largest SI = MA + (T−t+1)/T·ML (Eq. 2, 11, 12).
//
// Options expose the ablations of Sec. VI-C (w/o TM, w/o IP), the
// market-order metrics of Sec. VI-D (AE/PF/SZ/RMS/RD), the θ
// sensitivity of Sec. VI-G, and the adaptive mode of Sec. V-D.
package core

import (
	"time"

	"imdpp/internal/cluster"
	"imdpp/internal/diffusion"
)

// OrderMetric selects how target markets within an overlap group G are
// ordered (Sec. VI-D).
type OrderMetric uint8

// Market ordering metrics.
const (
	OrderAE  OrderMetric = iota // antagonistic extent, ascending (default)
	OrderPF                     // profitability, descending
	OrderSZ                     // market size, descending
	OrderRMS                    // relative market share, descending
	OrderRD                     // random
)

func (m OrderMetric) String() string {
	switch m {
	case OrderAE:
		return "AE"
	case OrderPF:
		return "PF"
	case OrderSZ:
		return "SZ"
	case OrderRMS:
		return "RMS"
	default:
		return "RD"
	}
}

// Options configure a Dysim run. The zero value is usable; unset
// fields fall back to the defaults noted per field.
type Options struct {
	// MC is the Monte-Carlo sample count for σ evaluations during
	// nominee selection (default 32).
	MC int
	// MCSI is the sample count for SI evaluations in TDSI and for the
	// expected-perception estimate in DRE (default 16).
	MCSI int
	// Seed is the master RNG seed (default 1).
	Seed uint64
	// Theta is the common-user threshold θ for grouping overlapping
	// target markets (default 1).
	Theta int
	// MIOAThreshold is the path-probability cutoff when expanding
	// nominees into a target market (default 1/320).
	MIOAThreshold float64
	// CandidateCap bounds the nominee universe scanned by MCP
	// selection; the top candidates by outdeg·w_x·P0pref are kept
	// (default 512, ≤0 means no cap).
	CandidateCap int
	// Cluster configures nominee clustering.
	Cluster cluster.Options
	// Order selects the market-order metric (default AE).
	Order OrderMetric
	// DisableTargetMarkets runs the w/o TM ablation: all nominees form
	// a single target market.
	DisableTargetMarkets bool
	// DisableItemPriority runs the w/o IP ablation: DRE is skipped and
	// a market's items enter TDSI as one merged pool.
	DisableItemPriority bool
	// Workers bounds estimator parallelism (0 → GOMAXPROCS).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MC <= 0 {
		o.MC = 32
	}
	if o.MCSI <= 0 {
		o.MCSI = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Theta <= 0 {
		o.Theta = 1
	}
	if o.CandidateCap == 0 {
		o.CandidateCap = 512
	}
	if o.Cluster.MaxHops == 0 {
		o.Cluster = cluster.DefaultOptions()
	}
	return o
}

// Market is one identified target market τ.
type Market struct {
	ID       int
	Nominees []cluster.Nominee
	Users    []int  // MIOA region
	Mask     []bool // len |V| membership mask
	Diameter int    // d_τ: eccentricity from the nominee users
	Items    []int  // distinct items promoted by the nominees
	Ttau     int    // promotional duration T_τ
	Group    int    // overlap-group id
	OrderKey float64
}

// Stats reports solver effort, for the execution-time figures.
type Stats struct {
	SigmaEvals   int
	SIEvals      int
	NomineeCount int
	MarketCount  int
	GroupCount   int
	SelectTime   time.Duration
	MarketTime   time.Duration
	ScheduleTime time.Duration
	TotalTime    time.Duration
	// SamplesSimulated is the total number of Monte-Carlo campaign
	// simulations run across both estimators; with TotalTime it yields
	// the estimator throughput (samples/sec) reported by imdppbench.
	SamplesSimulated uint64
	// StateBytesPerWorker is the largest per-worker simulation-state
	// footprint observed across the solver's estimators (sparse State
	// layout: scales with cascade size, not |V|·|I|).
	StateBytesPerWorker uint64
}

// Solution is the output of a solver run.
type Solution struct {
	Seeds   []diffusion.Seed
	Cost    float64
	Sigma   float64 // final MC estimate of σ(Seeds)
	Markets []Market
	Stats   Stats
}

// solver carries shared run state.
type solver struct {
	p     *diffusion.Problem
	opt   Options
	est   *diffusion.Estimator // MC-sample estimator for selection
	estSI *diffusion.Estimator // MCSI-sample estimator for DRE/TDSI
	stats Stats
}

func newSolver(p *diffusion.Problem, opt Options) *solver {
	opt = opt.withDefaults()
	s := &solver{p: p, opt: opt}
	s.est = diffusion.NewEstimator(p, opt.MC, opt.Seed)
	s.est.Workers = opt.Workers
	s.estSI = diffusion.NewEstimator(p, opt.MCSI, opt.Seed+0x9e37)
	s.estSI.Workers = opt.Workers
	return s
}

// sigma evaluates σ with the selection estimator, counting the call.
func (s *solver) sigma(seeds []diffusion.Seed) float64 {
	s.stats.SigmaEvals++
	return s.est.Sigma(seeds)
}

// sigmaBatch evaluates σ for every group in one batch over the shared
// worker pool, with common random numbers across groups.
func (s *solver) sigmaBatch(groups [][]diffusion.Seed) []float64 {
	s.stats.SigmaEvals += len(groups)
	return s.est.SigmaBatch(groups)
}

// celfWaveSize is how many stale CELF entries a re-evaluation wave
// refreshes in one batch. A wave of w candidates yields w·M work
// units, plenty to keep any pool busy, while the extra refreshes
// beyond the true top stay cheap (a refreshed gain is reused as a
// tighter upper bound in later rounds either way). It is a constant —
// not a function of Workers or GOMAXPROCS — so the refresh pattern,
// and with it the whole solver output, is identical on any machine.
const celfWaveSize = 8

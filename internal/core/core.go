package core

import (
	"context"
	"time"

	"imdpp/internal/cluster"
	"imdpp/internal/diffusion"
	"imdpp/internal/gridcache"
	"imdpp/internal/sketch"
)

// OrderMetric selects how target markets within an overlap group G are
// ordered (Sec. VI-D).
type OrderMetric uint8

// Market ordering metrics.
const (
	OrderAE  OrderMetric = iota // antagonistic extent, ascending (default)
	OrderPF                     // profitability, descending
	OrderSZ                     // market size, descending
	OrderRMS                    // relative market share, descending
	OrderRD                     // random
)

func (m OrderMetric) String() string {
	switch m {
	case OrderAE:
		return "AE"
	case OrderPF:
		return "PF"
	case OrderSZ:
		return "SZ"
	case OrderRMS:
		return "RMS"
	default:
		return "RD"
	}
}

// Options configure a Dysim run. The zero value is usable; unset
// fields fall back to the defaults noted per field.
type Options struct {
	// MC is the Monte-Carlo sample count for σ evaluations during
	// nominee selection (default 32).
	MC int
	// MCSI is the sample count for SI evaluations in TDSI and for the
	// expected-perception estimate in DRE (default 16).
	MCSI int
	// Seed is the master RNG seed (default 1).
	Seed uint64
	// Theta is the common-user threshold θ for grouping overlapping
	// target markets (default 1).
	Theta int
	// MIOAThreshold is the path-probability cutoff when expanding
	// nominees into a target market (default 1/320).
	MIOAThreshold float64
	// CandidateCap bounds the nominee universe scanned by MCP
	// selection; the top candidates by outdeg·w_x·P0pref are kept
	// (default 512, ≤0 means no cap).
	CandidateCap int
	// Cluster configures nominee clustering.
	Cluster cluster.Options
	// Order selects the market-order metric (default AE).
	Order OrderMetric
	// DisableTargetMarkets runs the w/o TM ablation: all nominees form
	// a single target market.
	DisableTargetMarkets bool
	// DisableItemPriority runs the w/o IP ablation: DRE is skipped and
	// a market's items enter TDSI as one merged pool.
	DisableItemPriority bool
	// Workers bounds estimator parallelism (0 → GOMAXPROCS).
	Workers int
	// Epsilon, when > 0, selects the reverse-reachable sketch backend
	// (internal/sketch) for σ-only evaluations: answers are within
	// ε·n·W of the exact value with probability ≥ 1−Delta, where W is
	// the summed item importance. Unlike Backend, Epsilon IS
	// result-relevant — approximate answers are keyed separately by
	// the serving layer's content-address hash and never alias exact
	// MC results (DESIGN.md §9). 0 (the default) keeps the exact
	// Monte-Carlo engine and today's bit-identical behaviour. An
	// explicit Backend takes precedence over Epsilon.
	Epsilon float64
	// Delta is the failure probability of the (ε, δ) contract,
	// in (0, 1); 0 with Epsilon set selects the default 0.05. Only
	// meaningful alongside Epsilon.
	Delta float64
	// GridCache, when non-nil, memoizes raw per-sample outcome grids
	// across CELF waves and solver runs (internal/gridcache,
	// DESIGN.md §10): repeated (problem, seed, sample-range, group)
	// evaluations are served from the cache instead of re-simulated.
	// Memoization is exact under the §3 determinism contract —
	// cache-on and cache-off solves are bit-identical — so, like
	// Workers and Backend, GridCache is result-invariant and excluded
	// from the serving layer's content-address hash. The serving layer
	// wires one shared cache per daemon; library callers may pass
	// their own or leave it nil.
	GridCache *gridcache.Cache
	// Backend, when non-nil, constructs the σ/π estimation backend the
	// solver runs over — e.g. a sharded remote-worker estimator
	// (internal/shard) instead of the in-process batch engine. Every
	// conforming backend is result-invariant under the §3 determinism
	// contract (same problem, seed and sample count ⇒ bit-identical
	// estimates), so, like Workers and Progress, Backend is excluded
	// from the serving layer's content-address hash.
	Backend EstimatorFactory
	// Progress, when non-nil, receives solver progress events: one per
	// nominee selection, per TDSI assignment and per adaptive
	// promotion. Events are emitted synchronously from the solver
	// goroutine; the callback must be fast and must not call back into
	// the solver. Progress never affects the solve result — two runs
	// differing only in Progress return bit-identical Solutions — so
	// the serving layer excludes it from the content-address hash.
	Progress func(ProgressEvent)
}

// ProgressEvent is one solver progress report, for job-status
// streaming in the serving layer.
type ProgressEvent struct {
	// Phase is the solver stage: "select", "schedule" or "adaptive".
	Phase string `json:"phase"`
	// Round counts completed units within the phase: nominees selected,
	// seeds scheduled, or the current promotion index.
	Round int `json:"round"`
	// Spent is the budget consumed so far, where the phase tracks it.
	Spent float64 `json:"spent"`
	// Sigma is the best σ estimate observed so far (0 until known).
	Sigma float64 `json:"sigma"`
	// ElapsedNS is the monotonic time since the solve began, so
	// consumers can order and latency-attribute streamed events without
	// trusting wall clocks.
	ElapsedNS int64 `json:"elapsed_ns"`
}

// WithDefaults returns the options with every zero-valued field
// replaced by its documented default — the canonical form a solver
// run actually executes with. The serving layer hashes this form so
// that, e.g., Seed 0 and Seed 1 (its default) share one cache entry.
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.MC <= 0 {
		o.MC = 32
	}
	if o.MCSI <= 0 {
		o.MCSI = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Theta <= 0 {
		o.Theta = 1
	}
	if o.CandidateCap == 0 {
		o.CandidateCap = 512
	}
	if o.Cluster.MaxHops == 0 {
		o.Cluster = cluster.DefaultOptions()
	}
	if o.Epsilon > 0 && o.Delta == 0 {
		o.Delta = sketch.DefaultDelta
	}
	return o
}

// Market is one identified target market τ. JSON field names are a
// stable wire contract; the |V|-sized membership mask is derivable
// from Users and is excluded from serialization.
type Market struct {
	ID       int               `json:"id"`
	Nominees []cluster.Nominee `json:"nominees"`
	Users    []int             `json:"users"`    // MIOA region
	Mask     []bool            `json:"-"`        // len |V| membership mask
	Diameter int               `json:"diameter"` // d_τ: eccentricity from the nominee users
	Items    []int             `json:"items"`    // distinct items promoted by the nominees
	Ttau     int               `json:"t_tau"`    // promotional duration T_τ
	Group    int               `json:"group"`    // overlap-group id
	OrderKey float64           `json:"order_key"`
}

// Stats reports solver effort, for the execution-time figures. JSON
// field names are a stable wire contract; durations serialize as
// nanoseconds (Go time.Duration).
type Stats struct {
	SigmaEvals   int           `json:"sigma_evals"`
	SIEvals      int           `json:"si_evals"`
	NomineeCount int           `json:"nominee_count"`
	MarketCount  int           `json:"market_count"`
	GroupCount   int           `json:"group_count"`
	SelectTime   time.Duration `json:"select_time_ns"`
	MarketTime   time.Duration `json:"market_time_ns"`
	ScheduleTime time.Duration `json:"schedule_time_ns"`
	TotalTime    time.Duration `json:"total_time_ns"`
	// SamplesSimulated is the total number of Monte-Carlo campaign
	// simulations run across both estimators; with TotalTime it yields
	// the estimator throughput (samples/sec) reported by imdppbench.
	SamplesSimulated uint64 `json:"samples_simulated"`
	// StateBytesPerWorker is the largest per-worker simulation-state
	// footprint observed across the solver's estimators (sparse State
	// layout: scales with cascade size, not |V|·|I|).
	StateBytesPerWorker uint64 `json:"state_bytes_per_worker"`
	// GridHits counts group evaluations served from the sample-grid
	// memoization cache (Options.GridCache) instead of simulated;
	// SamplesSaved is the campaign simulations those hits avoided.
	// Both are zero without a cache. They describe effort, not the
	// answer: cache-on and cache-off solves are bit-identical apart
	// from these counters and the timings.
	GridHits     uint64 `json:"grid_hits,omitempty"`
	SamplesSaved uint64 `json:"samples_saved,omitempty"`
}

// Solution is the output of a solver run. JSON field names are a
// stable wire contract shared by imdppd responses and imdpprun -json.
type Solution struct {
	Seeds   []diffusion.Seed `json:"seeds"`
	Cost    float64          `json:"cost"`
	Sigma   float64          `json:"sigma"` // final MC estimate of σ(Seeds)
	Markets []Market         `json:"markets,omitempty"`
	Stats   Stats            `json:"stats"`
}

// solver carries shared run state. Both estimators are held through
// the backend interface, so the whole pipeline — Solve, TDSI, the
// adaptive variant — runs unchanged over the in-process engine or a
// sharded remote backend (Options.Backend).
type solver struct {
	ctx   context.Context
	p     *diffusion.Problem
	opt   Options
	est   Estimator // MC-sample estimator for selection
	estSI Estimator // MCSI-sample estimator for DRE/TDSI
	stats Stats
	start time.Time // monotonic solve start, for ProgressEvent.ElapsedNS
}

func newSolver(ctx context.Context, p *diffusion.Problem, opt Options) *solver {
	opt = opt.withDefaults()
	s := &solver{ctx: ctx, p: p, opt: opt, start: time.Now()}
	backend := opt.backend()
	s.est = backend(p, opt.MC, opt.Seed, opt.Workers)
	s.est.Bind(ctx)
	s.estSI = backend(p, opt.MCSI, opt.Seed+0x9e37, opt.Workers)
	s.estSI.Bind(ctx)
	AttachGridCache(s.est, p, opt.GridCache)
	AttachGridCache(s.estSI, p, opt.GridCache)
	return s
}

// gridStatser is the optional estimator face reporting cache-served
// work, implemented by every backend that can host a grid view.
type gridStatser interface {
	GridStats() (hits, samplesSaved uint64)
}

// AttachGridCache wires a sample-grid memoization view for p into an
// estimator: directly for the in-process engine, via the optional
// AttachGrid face for wrapping backends (sharded, sketch) that host
// an embedded engine. A nil cache, a cache without a key function, or
// a backend with no attachment surface all leave est untouched.
func AttachGridCache(est Estimator, p *diffusion.Problem, c *gridcache.Cache) {
	v := c.View(p)
	if v == nil {
		return
	}
	switch t := est.(type) {
	case *diffusion.Estimator:
		t.Grid = v
	case interface{ AttachGrid(diffusion.GridCache) }:
		t.AttachGrid(v)
	}
}

// collectGridStats folds the estimators' cache-served counters into
// the run's Stats, tolerating backends without the optional face.
func (s *solver) collectGridStats() {
	for _, est := range []Estimator{s.est, s.estSI} {
		if gs, ok := est.(gridStatser); ok {
			h, sv := gs.GridStats()
			s.stats.GridHits += h
			s.stats.SamplesSaved += sv
		}
	}
}

// err reports the solver's cancellation state. Every selection /
// scheduling loop checks it at round boundaries; the estimators abort
// in-flight batches on the same context, so a cancelled solve returns
// within about one campaign simulation.
func (s *solver) err() error { return s.ctx.Err() }

// progress emits a solver progress event when a callback is set.
func (s *solver) progress(phase string, round int, spent, sigma float64) {
	if s.opt.Progress != nil {
		s.opt.Progress(ProgressEvent{
			Phase: phase, Round: round, Spent: spent, Sigma: sigma,
			ElapsedNS: time.Since(s.start).Nanoseconds(),
		})
	}
}

// sigma evaluates σ with the selection estimator, counting the call.
func (s *solver) sigma(seeds []diffusion.Seed) float64 {
	s.stats.SigmaEvals++
	return s.est.Sigma(seeds)
}

// sigmaBatch evaluates σ for every group in one batch over the shared
// worker pool, with common random numbers across groups.
func (s *solver) sigmaBatch(groups [][]diffusion.Seed) []float64 {
	s.stats.SigmaEvals += len(groups)
	return s.est.SigmaBatch(groups)
}

// celfWaveSize is how many stale CELF entries a re-evaluation wave
// refreshes in one batch. A wave of w candidates yields w·M work
// units, plenty to keep any pool busy, while the extra refreshes
// beyond the true top stay cheap (a refreshed gain is reused as a
// tighter upper bound in later rounds either way). It is a constant —
// not a function of Workers or GOMAXPROCS — so the refresh pattern,
// and with it the whole solver output, is identical on any machine.
const celfWaveSize = 8

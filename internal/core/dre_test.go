package core

import (
	"context"
	"math"
	"testing"

	"imdpp/internal/diffusion"
	"imdpp/internal/graph"
	"imdpp/internal/kg"
	"imdpp/internal/pin"
)

// drProblem builds a two-item world where the DR recursion can be
// hand-computed: items A and B share one feature (s = 1/2) under a
// single complementary meta-graph with initial weighting 0.5, so the
// per-level edge term is g = LC·r̄C − LS·r̄S = r̄C − r̄S = 0.25.
func drProblem(t *testing.T, wA, wB float64) *diffusion.Problem {
	t.Helper()
	b := kg.NewBuilder()
	tItem := b.NodeTypeID("ITEM")
	tFeature := b.NodeTypeID("FEATURE")
	eSup := b.EdgeTypeID("SUPPORTS")
	a := b.AddNode(tItem)
	bb := b.AddNode(tItem)
	f := b.AddNode(tFeature)
	b.AddEdge(a, f, eSup)
	b.AddEdge(bb, f, eSup)
	kgraph := b.Build()
	model, err := pin.NewModel(kgraph,
		[]*kg.MetaGraph{kg.PathMetaGraph("c", kg.Complementary, tItem, tFeature, eSup, eSup)},
		nil, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	gb := graph.NewBuilder(3, true)
	gb.AddEdge(0, 1, 0.5)
	gb.AddEdge(1, 2, 0.5)
	g := gb.Build()
	n, ni := g.N(), kgraph.NumItems()
	basePref := make([]float64, n*ni)
	cost := make([]float64, n*ni)
	for i := range cost {
		cost[i] = 1
		basePref[i] = 0.5
	}
	p := &diffusion.Problem{
		G: g, KG: kgraph, PIN: model,
		Importance: []float64{wA, wB},
		BasePref:   diffusion.MatrixFrom(basePref, ni), Cost: diffusion.MatrixFrom(cost, ni),
		Budget: 100, T: 2, Params: diffusion.DefaultParams(),
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDynamicReachabilityHandComputed verifies the Eq. 9/10 recursion
// against manual arithmetic for depths 1 and 2 (Example 4's pattern:
// each level adds (r̄C−r̄S)·w per related pair plus the previous level).
func TestDynamicReachabilityHandComputed(t *testing.T) {
	const wA, wB, g = 2.0, 1.0, 0.25
	p := drProblem(t, wA, wB)
	s := newSolver(context.Background(), p, Options{MC: 4, MCSI: 4, Seed: 1})
	users := []int{0, 1, 2}
	mask := []bool{true, true, true}

	// depth 1: DR(A) = g·wB + wA·g ; DR(B) = g·wA + wB·g
	m := &Market{Users: users, Mask: mask, Diameter: 1}
	dr := s.dynamicReachability(m, nil, []int{0, 1})
	wantA := g*wB + wA*g
	wantB := g*wA + wB*g
	if math.Abs(dr[0]-wantA) > 1e-9 || math.Abs(dr[1]-wantB) > 1e-9 {
		t.Fatalf("depth 1: DR = %v/%v want %v/%v", dr[0], dr[1], wantA, wantB)
	}

	// depth 2: PI2(A) = g·wB + PI1(B) = g·wB + g·wA ; B2(A) = 2g
	m.Diameter = 2
	dr = s.dynamicReachability(m, nil, []int{0, 1})
	wantA = (g*wB + g*wA) + wA*2*g
	wantB = (g*wA + g*wB) + wB*2*g
	if math.Abs(dr[0]-wantA) > 1e-9 || math.Abs(dr[1]-wantB) > 1e-9 {
		t.Fatalf("depth 2: DR = %v/%v want %v/%v", dr[0], dr[1], wantA, wantB)
	}

	// the more important item wins DRE's argmax
	if best := s.bestItemByDR(m, nil, []int{0, 1}); best != 0 {
		t.Fatalf("bestItemByDR = %d, want the high-importance item", best)
	}
}

// TestDynamicReachabilityDepthCap: the recursion is capped at
// maxDRDepth even for huge market diameters.
func TestDynamicReachabilityDepthCap(t *testing.T) {
	p := drProblem(t, 1, 1)
	s := newSolver(context.Background(), p, Options{MC: 4, MCSI: 4, Seed: 1})
	m := &Market{Users: []int{0}, Mask: []bool{true, false, false}, Diameter: 10000}
	dr := s.dynamicReachability(m, nil, []int{0, 1})
	// capped depth keeps DR finite and equal to the maxDRDepth value
	m2 := &Market{Users: []int{0}, Mask: []bool{true, false, false}, Diameter: maxDRDepth}
	dr2 := s.dynamicReachability(m2, nil, []int{0, 1})
	if dr[0] != dr2[0] || dr[1] != dr2[1] {
		t.Fatalf("depth cap not applied: %v vs %v", dr, dr2)
	}
}

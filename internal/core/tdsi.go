package core

import (
	"math"

	"imdpp/internal/cluster"
	"imdpp/internal/diffusion"
)

// scheduleMarket runs DRE + TDSI for market τk of a group: pick the
// unpromoted item with the highest DR, assign its nominees timings by
// SI, repeat until the market's nominees are all seeded (Algorithm 1
// lines 9–28). lastT is Σ_{i≤k} T_{τi}, the last promotional timing
// this market may use.
func (s *solver) scheduleMarket(m *Market, sg *[]diffusion.Seed, lastT int) error {
	if s.opt.DisableItemPriority {
		// w/o IP ablation: no DR ordering; all the market's nominees
		// enter TDSI as one merged pool.
		pool := append([]cluster.Nominee(nil), m.Nominees...)
		return s.tdsiAssign(m, pool, sg, lastT)
	}
	remaining := append([]int(nil), m.Items...)
	taken := make(map[int]bool)
	for len(remaining) > 0 {
		if err := s.err(); err != nil {
			return err
		}
		xp := s.bestItemByDR(m, *sg, remaining)
		// drop xp from remaining
		out := remaining[:0]
		for _, x := range remaining {
			if x != xp {
				out = append(out, x)
			}
		}
		remaining = out
		taken[xp] = true
		var pool []cluster.Nominee
		for _, nm := range m.Nominees {
			if nm.Item == xp {
				pool = append(pool, nm)
			}
		}
		if err := s.tdsiAssign(m, pool, sg, lastT); err != nil {
			return err
		}
	}
	return nil
}

// tdsiAssign assigns every nominee of the pool a promotional timing:
// at each iteration the candidate set is C = pool × [t̂, min(t̂+1,
// lastT)] (the bounded search window justified in Sec. IV-B.3) and the
// candidate with the highest substantial influence
//
//	SI = MA + (T−t+1)/T · ML            (Eq. 2)
//
// joins the seed group, where MA = σ_τ(SG∪{s}) − σ_τ(SG) (Eq. 11) and
// ML = π_τ(SG∪{s}) − π_τ(SG) (Eq. 12) are Monte-Carlo estimates
// restricted to the market.
func (s *solver) tdsiAssign(m *Market, pool []cluster.Nominee, sg *[]diffusion.Seed, lastT int) error {
	p := s.p
	for len(pool) > 0 {
		if err := s.err(); err != nil {
			return err
		}
		// fresh sample streams per assignment round (winner's curse)
		s.estSI.Reseed(s.opt.Seed + 0x9e37 + uint64(len(*sg))*0x85EB)
		tHat := 1
		for _, sd := range *sg {
			if sd.T > tHat {
				tHat = sd.T
			}
		}
		lo := tHat
		hi := tHat + 1
		if hi > lastT {
			hi = lastT
		}
		if hi < lo {
			hi = lo
		}
		if lo > p.T {
			lo = p.T
		}
		if hi > p.T {
			hi = p.T
		}
		// one batch: group 0 is the SG baseline, then every (nominee,
		// t) candidate — all under the market mask with shared sample
		// streams, so MA and ML are paired differences
		type candRef struct{ idx, t int }
		groups := [][]diffusion.Seed{diffusion.CloneSeeds(*sg)}
		refs := []candRef{{-1, 0}}
		for i, nm := range pool {
			for t := lo; t <= hi; t++ {
				groups = append(groups, diffusion.WithSeed(*sg, diffusion.Seed{User: nm.User, Item: nm.Item, T: t}))
				refs = append(refs, candRef{i, t})
			}
		}
		ests := s.estSI.RunBatchPi(groups, m.Mask)
		s.stats.SIEvals += len(groups)
		if err := s.err(); err != nil {
			return err
		}
		base := ests[0]
		bestSI := math.Inf(-1)
		bestIdx, bestT := -1, lo
		for j := 1; j < len(ests); j++ {
			i, t := refs[j].idx, refs[j].t
			ma := ests[j].MarketSigma - base.MarketSigma
			ml := ests[j].Pi - base.Pi
			si := ma + float64(p.T-t+1)/float64(p.T)*ml
			if si > bestSI || (si == bestSI && (bestIdx == -1 || pool[i].User < pool[bestIdx].User)) {
				bestSI = si
				bestIdx = i
				bestT = t
			}
		}
		nm := pool[bestIdx]
		*sg = append(*sg, diffusion.Seed{User: nm.User, Item: nm.Item, T: bestT})
		pool = append(pool[:bestIdx], pool[bestIdx+1:]...)
		s.progress("schedule", len(*sg), 0, base.MarketSigma+bestSI)
	}
	return nil
}

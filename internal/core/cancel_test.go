package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"imdpp/internal/diffusion"
)

func cancelOpts() Options {
	// big enough that the solve runs long past the cancellation point
	return Options{MC: 512, MCSI: 64, Seed: 1, CandidateCap: 256}
}

func TestSolveCtxPreCancelled(t *testing.T) {
	p := sampleProblem(t, 80, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := SolveCtx(ctx, p, cancelOpts()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("pre-cancelled solve took %v", el)
	}
}

// TestSolveCtxCancelMidSolve: cancelling a running solve returns
// ctx.Err() within about one campaign simulation and leaks no
// goroutines from the estimator pool.
func TestSolveCtxCancelMidSolve(t *testing.T) {
	p := sampleProblem(t, 80, 3)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		sol Solution
		err error
	}
	res := make(chan result, 1)
	go func() {
		sol, err := SolveCtx(ctx, p, cancelOpts())
		res <- result{sol, err}
	}()
	time.Sleep(20 * time.Millisecond) // let the solve get going
	cancelAt := time.Now()
	cancel()
	select {
	case r := <-res:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v (sol σ=%v)", r.err, r.sol.Sigma)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("solve did not return after cancel")
	}
	if latency := time.Since(cancelAt); latency > 500*time.Millisecond {
		t.Fatalf("cancel latency %v, want ≤ 500ms", latency)
	}

	// estimator worker goroutines must all have exited
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancel: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSolveAdaptiveCtxPreCancelled(t *testing.T) {
	p := sampleProblem(t, 80, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveAdaptiveCtx(ctx, p, Options{MC: 8, CandidateCap: 32}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestSolveCtxDeterministicWithProgress: a context and a Progress
// callback must not change the result — the property the serving
// layer's cache keys rely on.
func TestSolveCtxDeterministicWithProgress(t *testing.T) {
	p := sampleProblem(t, 80, 3)
	opt := Options{MC: 8, MCSI: 4, Seed: 3, CandidateCap: 24}
	plain, err := Solve(p, opt)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}

	events := 0
	opt.Progress = func(ev ProgressEvent) {
		events++
		if ev.Phase == "" {
			t.Errorf("empty progress phase")
		}
	}
	opt.Workers = 3 // also vary the pool: §3 says result-invariant
	withCtx, err := SolveCtx(context.Background(), p, opt)
	if err != nil {
		t.Fatalf("SolveCtx: %v", err)
	}

	if plain.Sigma != withCtx.Sigma {
		t.Fatalf("σ differs: %v vs %v", plain.Sigma, withCtx.Sigma)
	}
	if len(plain.Seeds) != len(withCtx.Seeds) {
		t.Fatalf("seed counts differ: %d vs %d", len(plain.Seeds), len(withCtx.Seeds))
	}
	for i := range plain.Seeds {
		if plain.Seeds[i] != withCtx.Seeds[i] {
			t.Fatalf("seed %d differs: %+v vs %+v", i, plain.Seeds[i], withCtx.Seeds[i])
		}
	}
	if events == 0 {
		t.Fatal("no progress events emitted")
	}
}

func TestValidateRequestTypedErrors(t *testing.T) {
	p := sampleProblem(t, 80, 3)

	cases := []struct {
		name  string
		p     *diffusion.Problem
		opt   Options
		field string
	}{
		{"nil problem", nil, Options{}, "Problem"},
		{"negative MC", p, Options{MC: -1}, "MC"},
		{"negative MCSI", p, Options{MCSI: -2}, "MCSI"},
		{"negative workers", p, Options{Workers: -1}, "Workers"},
		{"bad MIOA threshold", p, Options{MIOAThreshold: 1.5}, "MIOAThreshold"},
		// (ε, δ) gate for the sketch backend: ε must be > 0 when set,
		// δ must lie in (0,1), and δ alone is meaningless.
		{"negative epsilon", p, Options{Epsilon: -0.1}, "Epsilon"},
		{"NaN epsilon", p, Options{Epsilon: math.NaN()}, "Epsilon"},
		{"negative delta", p, Options{Epsilon: 0.1, Delta: -0.5}, "Delta"},
		{"delta at one", p, Options{Epsilon: 0.1, Delta: 1}, "Delta"},
		{"NaN delta", p, Options{Epsilon: 0.1, Delta: math.NaN()}, "Delta"},
		{"delta without epsilon", p, Options{Delta: 0.05}, "Delta"},
	}
	for _, tc := range cases {
		err := ValidateRequest(tc.p, tc.opt)
		var inputErr *InputError
		if !errors.As(err, &inputErr) || inputErr.Field != tc.field {
			t.Errorf("%s: want InputError{%s}, got %v", tc.name, tc.field, err)
		}
	}

	if err := ValidateRequest(p, Options{}); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
	// Valid sketch parameterisations pass the gate: δ defaults when
	// only ε is given (applied later in withDefaults).
	if err := ValidateRequest(p, Options{Epsilon: 0.05, Delta: 0.05}); err != nil {
		t.Errorf("valid (ε, δ) rejected: %v", err)
	}
	if err := ValidateRequest(p, Options{Epsilon: 0.05}); err != nil {
		t.Errorf("epsilon with defaulted delta rejected: %v", err)
	}

	bad := sampleProblem(t, 80, 3)
	bad.Budget = -1
	if err := ValidateRequest(bad, Options{}); !errors.Is(err, &InputError{Field: "Budget"}) {
		t.Errorf("negative budget: want InputError{Budget}, got %v", err)
	}
	// both Solve entry points share the gate
	if _, err := Solve(bad, Options{}); !errors.Is(err, &InputError{Field: "Budget"}) {
		t.Errorf("Solve: want InputError{Budget}, got %v", err)
	}
	if _, err := SolveAdaptive(bad, Options{}); !errors.Is(err, &InputError{Field: "Budget"}) {
		t.Errorf("SolveAdaptive: want InputError{Budget}, got %v", err)
	}
}

package core

import (
	"container/heap"
	"sort"

	"imdpp/internal/cluster"
	"imdpp/internal/diffusion"
)

// candidateUniverse builds the nominee universe U = {(u,x)}; when
// CandidateCap > 0 it keeps the top candidates by the cheap prior
// outdeg(u)·w_x·P0pref(u,x)/c_{u,x}, mirroring how the authors' code
// prunes the |V|·|I| grid before the expensive MCP pass.
func (s *solver) candidateUniverse() []cluster.Nominee {
	p := s.p
	type scored struct {
		nm    cluster.Nominee
		score float64
	}
	var all []scored
	for u := 0; u < p.NumUsers(); u++ {
		deg := float64(p.G.OutDegree(u))
		if deg == 0 {
			continue
		}
		for x := 0; x < p.NumItems(); x++ {
			c := p.CostOf(u, x)
			if c > p.Budget {
				continue // never affordable
			}
			pr := p.BasePrefOf(u, x)
			if pr <= 0 {
				continue
			}
			score := deg * p.Importance[x] * pr / (c + 1e-9)
			all = append(all, scored{cluster.Nominee{User: u, Item: x}, score})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		if all[i].nm.User != all[j].nm.User {
			return all[i].nm.User < all[j].nm.User
		}
		return all[i].nm.Item < all[j].nm.Item
	})
	cap := s.opt.CandidateCap
	if cap > 0 && len(all) > cap {
		// Keep the universe user-diverse: at most 3 items per user, so
		// the cap does not fill up with one hub's entire catalogue.
		kept := all[:0]
		perUser := map[int]int{}
		var overflow []scored
		for _, sc := range all {
			if perUser[sc.nm.User] < 3 {
				perUser[sc.nm.User]++
				kept = append(kept, sc)
				if len(kept) == cap {
					break
				}
			} else {
				overflow = append(overflow, sc)
			}
		}
		for _, sc := range overflow {
			if len(kept) == cap {
				break
			}
			kept = append(kept, sc)
		}
		all = kept
	}
	out := make([]cluster.Nominee, len(all))
	for i, sc := range all {
		out[i] = sc.nm
	}
	return out
}

// celfEntry is a lazily-evaluated candidate in the MCP heap.
type celfEntry struct {
	nm       cluster.Nominee
	gain     float64 // marginal σ at last evaluation
	ratio    float64 // gain / cost
	lastEval int     // |N| when gain was computed
	index    int
}

type celfHeap []*celfEntry

func (h celfHeap) Len() int { return len(h) }
func (h celfHeap) Less(i, j int) bool {
	if h[i].ratio != h[j].ratio {
		return h[i].ratio > h[j].ratio
	}
	// deterministic tie-break
	if h[i].nm.User != h[j].nm.User {
		return h[i].nm.User < h[j].nm.User
	}
	return h[i].nm.Item < h[j].nm.Item
}
func (h celfHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *celfHeap) Push(x any) {
	e := x.(*celfEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *celfHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// selectNominees is Procedure 2: iteratively extract the affordable
// nominee with the highest marginal cost-performance ratio
// (f(N∪{(u,x)}) − f(N)) / c_{u,x}, where f places the nominees in the
// first promotion. CELF laziness (Goyal et al., exploited by the
// paper's implementation, Sec. VI-A) avoids re-evaluating every
// candidate per round: σ is submodular in this frozen-probability
// regime, so a stale gain is an upper bound.
//
// Evaluation is batched through the estimator's worker pool: the
// initial-gains pass scores the whole universe in one RunBatch with
// common random numbers (every candidate sees the same sample
// streams, so the gains are directly comparable), and stale entries
// are refreshed in waves instead of one heap-pop at a time. A wave may
// refresh a few entries beyond the true top; those refreshes are not
// wasted — they become tighter upper bounds for later rounds.
//
// Selection stops when the budget is exhausted, the universe is empty,
// or the best marginal gain is non-positive (the negative-marginal
// stop of Lemma 3, case 2). It returns the selected nominees and the
// best single nominee seen (the emax of Theorem 3). A cancelled
// context aborts between rounds with the context's error.
func (s *solver) selectNominees(universe []cluster.Nominee, budget float64) (selected []cluster.Nominee, emax cluster.Nominee, emaxSigma float64, spent float64, err error) {
	p := s.p
	h := make(celfHeap, 0, len(universe))
	emaxSigma = -1
	emax = cluster.Nominee{User: -1, Item: -1}
	for _, nm := range universe {
		e := &celfEntry{nm: nm, lastEval: -1}
		h = append(h, e)
	}
	// initial gains: σ({(u,x,1)}) for every candidate, one batch
	groups := make([][]diffusion.Seed, len(h))
	for i, e := range h {
		groups[i] = []diffusion.Seed{{User: e.nm.User, Item: e.nm.Item, T: 1}}
	}
	initial := s.sigmaBatch(groups)
	if err = s.err(); err != nil {
		return nil, emax, emaxSigma, 0, err
	}
	for i, sig := range initial {
		e := h[i]
		e.gain = sig
		e.ratio = e.gain / (p.CostOf(e.nm.User, e.nm.Item) + 1e-12)
		e.lastEval = 0
		if e.gain > emaxSigma {
			emaxSigma = e.gain
			emax = e.nm
		}
	}
	heap.Init(&h)
	base := 0.0
	var seeds []diffusion.Seed
	wave := make([]*celfEntry, 0, celfWaveSize)
	for h.Len() > 0 {
		if err = s.err(); err != nil {
			return nil, emax, emaxSigma, spent, err
		}
		top := h[0]
		cost := p.CostOf(top.nm.User, top.nm.Item)
		if cost > budget-spent {
			heap.Pop(&h) // unaffordable now; it will never fit again
			continue
		}
		if top.lastEval == len(selected) {
			if top.gain <= 0 {
				// Non-positive marginal under the current estimate:
				// discard this candidate and keep scanning the rest of
				// the universe (Procedure 2 stops only when U empties;
				// with a Monte-Carlo oracle a hard stop here would let
				// one noisy evaluation truncate the whole selection).
				heap.Pop(&h)
				continue
			}
			heap.Pop(&h)
			selected = append(selected, top.nm)
			seeds = append(seeds, diffusion.Seed{User: top.nm.User, Item: top.nm.Item, T: 1})
			spent += cost
			// Reseed and re-baseline: the winning gain is a max over
			// noisy evaluations and would otherwise deflate the next
			// round's marginals (winner's curse).
			s.est.Reseed(s.opt.Seed + uint64(len(selected))*0x9E3779B9)
			base = s.sigma(seeds)
			s.progress("select", len(selected), spent, base)
			continue
		}
		// stale: pop a wave of stale affordable entries off the top and
		// refresh their marginals against the current selection in one
		// batch (stopping at the first fresh entry — everything below
		// it may not need refreshing at all)
		wave = wave[:0]
		for len(wave) < cap(wave) && h.Len() > 0 {
			e := h[0]
			if e.lastEval == len(selected) {
				break
			}
			if p.CostOf(e.nm.User, e.nm.Item) > budget-spent {
				heap.Pop(&h)
				continue
			}
			heap.Pop(&h)
			wave = append(wave, e)
		}
		groups := make([][]diffusion.Seed, len(wave))
		for j, e := range wave {
			groups[j] = diffusion.WithSeed(seeds, diffusion.Seed{User: e.nm.User, Item: e.nm.Item, T: 1})
		}
		for j, sig := range s.sigmaBatch(groups) {
			e := wave[j]
			e.gain = sig - base
			e.ratio = e.gain / (p.CostOf(e.nm.User, e.nm.Item) + 1e-12)
			e.lastEval = len(selected)
			heap.Push(&h, e)
		}
	}
	return selected, emax, emaxSigma, spent, nil
}

package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"imdpp"
	"imdpp/internal/servicetest"
)

// chaosBody is a solve request unique per index so bursts never
// coalesce: every submission is its own accounting unit.
func chaosBody(seed int) string {
	return fmt.Sprintf(`{"dataset":"sample","budget":80,"t":3,"mc":4,"mcsi":2,"candidate_cap":16,"seed":%d}`, seed)
}

// postRaw posts a body with optional headers and decodes the response
// into out, returning the status code and the Retry-After header.
func postRaw(t *testing.T, url, body, tenant string, out any) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-IMDPP-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode, resp.Header.Get("Retry-After")
}

// TestChaosShedBursts drives admission-control faults table-style: a
// saturated service sheds a concurrent burst with typed 429 bodies —
// the right code, the right tenant, a usable Retry-After — and the
// shed counters account for every rejection exactly.
func TestChaosShedBursts(t *testing.T) {
	cases := []struct {
		name       string
		cfg        imdpp.ServiceConfig
		tenant     string // header on the burst submissions
		burst      int
		wantOK     int
		wantCode   string
		wantTenant string
	}{
		{
			// the global queue (depth 2) fills: one job runs, two queue,
			// the rest shed service-wide
			name:       "queue_full",
			cfg:        imdpp.ServiceConfig{Workers: 1, QueueDepth: 2, CacheSize: -1},
			burst:      6,
			wantOK:     2,
			wantCode:   imdpp.ShedQueueFull,
			wantTenant: imdpp.DefaultTenant,
		},
		{
			// tenant "free" holds MaxQueue 1 while the global queue has
			// room: the shed is the tenant's own, typed quota_exceeded
			name: "quota_exceeded",
			cfg: imdpp.ServiceConfig{Workers: 1, QueueDepth: 16, CacheSize: -1,
				Tenants: map[string]imdpp.TenantQuota{"free": {MaxQueue: 1}}},
			tenant:     "free",
			burst:      4,
			wantOK:     1,
			wantCode:   imdpp.ShedQuotaExceeded,
			wantTenant: "free",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, srv := newDaemonWith(t, tc.cfg, 0)

			// saturate the single worker so burst submissions must queue
			slow := `{"dataset":"sample","budget":80,"t":3,"mc":4096,"mcsi":512,"candidate_cap":256,"seed":99}`
			var blocker solveResponse
			if code := postJSON(t, srv.URL+"/v1/solve", slow, &blocker); code != http.StatusAccepted {
				t.Fatalf("blocker: status %d", code)
			}
			pollUntil(t, srv.URL+"/v1/jobs/"+blocker.JobID, func(v imdpp.JobView) bool {
				return v.Status == imdpp.JobRunning
			})

			type outcome struct {
				code  int
				body  errorBody
				retry string
			}
			outcomes := make([]outcome, tc.burst)
			errs := servicetest.Burst(tc.burst, func(i int) error {
				var body errorBody
				code, retry := postRaw(t, srv.URL+"/v1/solve", chaosBody(i+1), tc.tenant, &body)
				outcomes[i] = outcome{code: code, body: body, retry: retry}
				return nil
			})
			for _, err := range errs {
				if err != nil {
					t.Fatalf("burst: %v", err)
				}
			}

			accepted, shed := 0, 0
			for i, o := range outcomes {
				switch o.code {
				case http.StatusAccepted:
					accepted++
				case http.StatusTooManyRequests:
					shed++
					if o.body.Code != tc.wantCode {
						t.Errorf("shed %d: code %q, want %q", i, o.body.Code, tc.wantCode)
					}
					if o.body.Tenant != tc.wantTenant {
						t.Errorf("shed %d: tenant %q, want %q", i, o.body.Tenant, tc.wantTenant)
					}
					if o.body.RetryAfterSeconds < 1 || o.retry == "" {
						t.Errorf("shed %d: Retry-After missing (header %q, body %d)", i, o.retry, o.body.RetryAfterSeconds)
					}
				default:
					t.Errorf("burst %d: unexpected status %d (%+v)", i, o.code, o.body)
				}
			}
			if accepted != tc.wantOK || shed != tc.burst-tc.wantOK {
				t.Fatalf("burst split %d accepted / %d shed, want %d/%d", accepted, shed, tc.wantOK, tc.burst-tc.wantOK)
			}

			// shed accounting is exact: the tenant row counted every 429
			var m struct {
				Tenants map[string]imdpp.TenantMetrics `json:"tenants"`
			}
			if code := getJSON(t, srv.URL+"/metrics", &m); code != http.StatusOK {
				t.Fatalf("metrics: status %d", code)
			}
			row := m.Tenants[tc.wantTenant]
			got := row.ShedQueueFull
			if tc.wantCode == imdpp.ShedQuotaExceeded {
				got = row.ShedQuota
			}
			if got != uint64(shed) {
				t.Errorf("tenant %s counted %d sheds, burst produced %d", tc.wantTenant, got, shed)
			}
		})
	}
}

// TestChaosSlowSolverCancel: with a stalling estimation backend, a
// running job still cancels promptly mid-stall, and its SSE stream
// closes on the cancelled terminal.
func TestChaosSlowSolverCancel(t *testing.T) {
	var faults servicetest.Faults
	faults.SetDelay(100 * time.Millisecond)
	_, srv := newDaemonWith(t, imdpp.ServiceConfig{
		Workers: 1, QueueDepth: 8, CacheSize: -1, Backend: faults.Backend(),
	}, 0)

	var sub solveResponse
	if code := postJSON(t, srv.URL+"/v1/solve", chaosBody(7), &sub); code != http.StatusAccepted {
		t.Fatalf("solve: status %d", code)
	}
	pollUntil(t, srv.URL+"/v1/jobs/"+sub.JobID, func(v imdpp.JobView) bool {
		return v.Status == imdpp.JobRunning
	})
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+sub.JobID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	start := time.Now()
	pollUntil(t, srv.URL+"/v1/jobs/"+sub.JobID, func(v imdpp.JobView) bool {
		return v.Status == imdpp.JobCancelled
	})
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("cancellation took %v against a stalling backend", waited)
	}
	evs := events(sseGet(t, srv.URL, sub.JobID, ""))
	if len(evs) == 0 || evs[len(evs)-1].event != "cancelled" {
		t.Fatalf("SSE after cancel ended with %+v, want cancelled terminal", evs)
	}
	if faults.Calls() == 0 {
		t.Fatal("fault-injected backend was never exercised")
	}
}

// TestChaosSSEDisconnect: a subscriber vanishing mid-stream must not
// wedge the job or the daemon — the solve completes, metrics stay
// serviceable, and a fresh subscriber replays the full log.
func TestChaosSSEDisconnect(t *testing.T) {
	_, srv := newDaemonWith(t, imdpp.ServiceConfig{Workers: 1, QueueDepth: 8, CacheSize: -1}, 0)

	var sub solveResponse
	if code := postJSON(t, srv.URL+"/v1/solve", chaosBody(21), &sub); code != http.StatusAccepted {
		t.Fatalf("solve: status %d", code)
	}
	// attach and immediately drop two subscribers while the job works
	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + sub.JobID + "/events")
		if err != nil {
			t.Fatalf("GET events: %v", err)
		}
		resp.Body.Close() // disconnect without reading the stream
	}
	done := pollUntil(t, srv.URL+"/v1/jobs/"+sub.JobID, func(v imdpp.JobView) bool {
		return v.Status == imdpp.JobDone || v.Status == imdpp.JobFailed
	})
	if done.Status != imdpp.JobDone {
		t.Fatalf("job after disconnects: %+v", done)
	}
	evs := events(sseGet(t, srv.URL, sub.JobID, ""))
	if len(evs) == 0 || evs[len(evs)-1].event != "done" {
		t.Fatalf("post-disconnect stream ended with %+v, want done terminal", evs)
	}
	if code := getJSON(t, srv.URL+"/metrics", &struct{}{}); code != http.StatusOK {
		t.Fatalf("metrics after disconnects: status %d", code)
	}
}

// TestChaosTenantHeaderRouting: the X-IMDPP-Tenant header routes
// admission (body field wins when both are set), and the snapshot
// reports the accounting tenant.
func TestChaosTenantHeaderRouting(t *testing.T) {
	_, srv := newDaemonWith(t, imdpp.ServiceConfig{Workers: 1, QueueDepth: 8, CacheSize: -1}, 0)

	var sub solveResponse
	code, _ := postRaw(t, srv.URL+"/v1/solve", chaosBody(31), "header-tenant", &sub)
	if code != http.StatusAccepted {
		t.Fatalf("header solve: status %d", code)
	}
	view := pollUntil(t, srv.URL+"/v1/jobs/"+sub.JobID, func(v imdpp.JobView) bool {
		return v.Status == imdpp.JobDone
	})
	if view.Tenant != "header-tenant" {
		t.Fatalf("snapshot tenant %q, want header-tenant", view.Tenant)
	}

	body := `{"dataset":"sample","budget":80,"t":3,"mc":4,"mcsi":2,"candidate_cap":16,"seed":32,"tenant":"body-tenant","priority":2}`
	code, _ = postRaw(t, srv.URL+"/v1/solve", body, "header-tenant", &sub)
	if code != http.StatusAccepted {
		t.Fatalf("body solve: status %d", code)
	}
	view = pollUntil(t, srv.URL+"/v1/jobs/"+sub.JobID, func(v imdpp.JobView) bool {
		return v.Status == imdpp.JobDone
	})
	if view.Tenant != "body-tenant" || view.Priority != 2 {
		t.Fatalf("snapshot tenant/priority %q/%d, want body-tenant/2", view.Tenant, view.Priority)
	}
}

package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"imdpp"
)

func jsonUnmarshal(s string, v any) error { return json.Unmarshal([]byte(s), v) }

// newDaemonWith builds a test daemon over a custom service config and
// SSE heartbeat — the chaos and SSE tiers need slow backends, tiny
// queues and fast heartbeats the default fixture doesn't have.
func newDaemonWith(t *testing.T, cfg imdpp.ServiceConfig, heartbeat time.Duration) (*daemon, *httptest.Server) {
	t.Helper()
	d := newDaemon(cfg, nil)
	if heartbeat > 0 {
		d.heartbeat = heartbeat
	}
	srv := httptest.NewServer(d.handler())
	t.Cleanup(func() {
		srv.Close()
		d.svc.Close()
	})
	return d, srv
}

// sseFrame is one parsed Server-Sent Event (or keep-alive comment).
type sseFrame struct {
	id      int
	event   string
	data    string
	comment bool
}

// readSSE consumes an event stream to EOF and returns its frames in
// order, heartbeat comments included.
func readSSE(t *testing.T, r io.Reader) []sseFrame {
	t.Helper()
	var (
		frames []sseFrame
		cur    sseFrame
		dirty  bool
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if dirty {
				frames = append(frames, cur)
				cur, dirty = sseFrame{}, false
			}
		case strings.HasPrefix(line, ":"):
			frames = append(frames, sseFrame{comment: true, data: strings.TrimSpace(line[1:])})
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.Atoi(line[4:])
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			cur.id, dirty = id, true
		case strings.HasPrefix(line, "event: "):
			cur.event, dirty = line[7:], true
		case strings.HasPrefix(line, "data: "):
			cur.data, dirty = line[6:], true
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read SSE stream: %v", err)
	}
	if dirty {
		frames = append(frames, cur)
	}
	return frames
}

// events filters out heartbeat comments.
func events(frames []sseFrame) []sseFrame {
	var out []sseFrame
	for _, f := range frames {
		if !f.comment {
			out = append(out, f)
		}
	}
	return out
}

// TestSSEStreamRoundTrip pins the wire contract of
// GET /v1/jobs/{id}/events: monotonically increasing ids, progress
// frames carrying ProgressEvent JSON, exactly one terminal frame
// carrying the full JobView (solution included), then EOF.
func TestSSEStreamRoundTrip(t *testing.T) {
	_, srv := newTestDaemon(t)

	var sub solveResponse
	if code := postJSON(t, srv.URL+"/v1/solve", quickSolve, &sub); code != http.StatusAccepted {
		t.Fatalf("solve: status %d", code)
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/" + sub.JobID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	evs := events(readSSE(t, resp.Body))
	if len(evs) < 2 {
		t.Fatalf("stream carried %d events, want progress + terminal", len(evs))
	}
	lastID := 0
	terminals := 0
	for i, f := range evs {
		if f.id <= lastID {
			t.Fatalf("event %d: id %d not increasing past %d", i, f.id, lastID)
		}
		lastID = f.id
		switch f.event {
		case "progress":
			var pe imdpp.ProgressEvent
			if err := jsonUnmarshal(f.data, &pe); err != nil || pe.Phase == "" {
				t.Fatalf("progress frame %d undecodable (%v): %q", i, err, f.data)
			}
			if terminals > 0 {
				t.Fatalf("progress frame %d after the terminal event", i)
			}
		case "done":
			terminals++
			var view imdpp.JobView
			if err := jsonUnmarshal(f.data, &view); err != nil {
				t.Fatalf("terminal frame undecodable: %v", err)
			}
			if view.Status != imdpp.JobDone || view.Solution == nil || len(view.Solution.Seeds) == 0 {
				t.Fatalf("terminal view incomplete: %+v", view)
			}
		default:
			t.Fatalf("unexpected event type %q", f.event)
		}
	}
	if terminals != 1 {
		t.Fatalf("%d terminal frames, want exactly 1", terminals)
	}
}

// TestSSELastEventIDResume: a resumed stream replays only events past
// the given sequence number, delivers the terminal exactly once, and a
// resume from at-or-past the terminal closes immediately with no
// frames rather than re-sending the outcome.
func TestSSELastEventIDResume(t *testing.T) {
	_, srv := newTestDaemon(t)

	var sub solveResponse
	if code := postJSON(t, srv.URL+"/v1/solve", quickSolve, &sub); code != http.StatusAccepted {
		t.Fatalf("solve: status %d", code)
	}
	pollUntil(t, srv.URL+"/v1/jobs/"+sub.JobID, func(v imdpp.JobView) bool {
		return v.Status == imdpp.JobDone
	})
	full := events(sseGet(t, srv.URL, sub.JobID, ""))
	if len(full) < 2 {
		t.Fatalf("full stream carried %d events, want at least 2", len(full))
	}
	mid := full[0].id
	resumed := events(sseGet(t, srv.URL, sub.JobID, fmt.Sprint(mid)))
	if len(resumed) != len(full)-1 {
		t.Fatalf("resume after %d replayed %d events, want %d", mid, len(resumed), len(full)-1)
	}
	for i, f := range resumed {
		if f.id != full[i+1].id || f.event != full[i+1].event || f.data != full[i+1].data {
			t.Fatalf("resumed frame %d differs from original: %+v vs %+v", i, f, full[i+1])
		}
	}
	terminalSeq := full[len(full)-1].id
	after := events(sseGet(t, srv.URL, sub.JobID, fmt.Sprint(terminalSeq)))
	if len(after) != 0 {
		t.Fatalf("resume past the terminal replayed %d events, want 0", len(after))
	}

	// query-parameter resume (for EventSource polyfills that cannot set
	// headers) behaves identically
	resp, err := http.Get(srv.URL + "/v1/jobs/" + sub.JobID + "/events?last_event_id=" + fmt.Sprint(mid))
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	qp := events(readSSE(t, resp.Body))
	resp.Body.Close()
	if len(qp) != len(resumed) {
		t.Fatalf("query-param resume replayed %d events, want %d", len(qp), len(resumed))
	}

	if code := sseStatus(t, srv.URL+"/v1/jobs/"+sub.JobID+"/events", "not-a-number"); code != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID: status %d, want 400", code)
	}
	if code := sseStatus(t, srv.URL+"/v1/jobs/nope/events", ""); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", code)
	}
}

// TestSSEHeartbeat: a stream with no events (queued job behind a
// blocker) carries keep-alive comments at the configured interval, and
// cancelling the job delivers its cancelled terminal through the same
// stream.
func TestSSEHeartbeat(t *testing.T) {
	_, srv := newDaemonWith(t, imdpp.ServiceConfig{Workers: 1, QueueDepth: 8, CacheSize: -1}, 20*time.Millisecond)

	slow := `{"dataset":"sample","budget":80,"t":3,"mc":4096,"mcsi":512,"candidate_cap":256,"seed":11}`
	var blocker solveResponse
	if code := postJSON(t, srv.URL+"/v1/solve", slow, &blocker); code != http.StatusAccepted {
		t.Fatalf("blocker: status %d", code)
	}
	var queued solveResponse
	if code := postJSON(t, srv.URL+"/v1/solve", quickSolve, &queued); code != http.StatusAccepted {
		t.Fatalf("queued solve: status %d", code)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + queued.JobID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	go func() {
		// let several heartbeat intervals elapse on the idle stream, then
		// settle the queued job so the stream terminates
		time.Sleep(150 * time.Millisecond)
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+queued.JobID, nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		// and release the worker
		req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+blocker.JobID, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	frames := readSSE(t, resp.Body)
	beats := 0
	for _, f := range frames {
		if f.comment {
			beats++
		}
	}
	if beats < 2 {
		t.Fatalf("idle stream carried %d heartbeats over 150ms at 20ms interval, want at least 2", beats)
	}
	evs := events(frames)
	if len(evs) != 1 || evs[0].event != "cancelled" {
		t.Fatalf("stream events %+v, want exactly the cancelled terminal", evs)
	}
}

// TestSolveWaitLongPoll: ?wait= blocks submission until the job
// settles (200 with the full snapshot) or the deadline lapses (the
// usual 202 ticket), and malformed deadlines are rejected.
func TestSolveWaitLongPoll(t *testing.T) {
	_, srv := newTestDaemon(t)

	var view imdpp.JobView
	if code := postJSON(t, srv.URL+"/v1/solve?wait=30s", quickSolve, &view); code != http.StatusOK {
		t.Fatalf("wait solve: status %d", code)
	}
	if view.Status != imdpp.JobDone || view.Solution == nil {
		t.Fatalf("wait solve returned %+v, want done with solution", view)
	}

	slow := `{"dataset":"sample","budget":80,"t":3,"mc":4096,"mcsi":512,"candidate_cap":256,"seed":12}`
	var sub solveResponse
	if code := postJSON(t, srv.URL+"/v1/solve?wait=20ms", slow, &sub); code != http.StatusAccepted {
		t.Fatalf("expired wait: status %d, want 202", code)
	}
	if sub.JobID == "" {
		t.Fatalf("expired wait lost the job ticket: %+v", sub)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+sub.JobID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}

	if code := postJSON(t, srv.URL+"/v1/solve?wait=never", quickSolve, nil); code != http.StatusBadRequest {
		t.Fatalf("bad wait: status %d, want 400", code)
	}
}

// sseGet fetches a job's full event stream with an optional
// Last-Event-ID and returns its frames.
func sseGet(t *testing.T, base, jobID, lastEventID string) []sseFrame {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	return readSSE(t, resp.Body)
}

// sseStatus returns just the status code of an events request.
func sseStatus(t *testing.T, url, lastEventID string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"imdpp"
)

func newTestDaemon(t *testing.T) (*daemon, *httptest.Server) {
	t.Helper()
	d := newDaemon(imdpp.ServiceConfig{Workers: 1, QueueDepth: 8, CacheSize: 32}, nil)
	srv := httptest.NewServer(d.handler())
	t.Cleanup(func() {
		srv.Close()
		d.svc.Close()
	})
	return d, srv
}

func postJSON(t *testing.T, url string, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func pollUntil(t *testing.T, url string, want func(imdpp.JobView) bool) imdpp.JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var view imdpp.JobView
		if code := getJSON(t, url, &view); code != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, code)
		}
		if want(view) {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", view)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

const quickSolve = `{"dataset":"sample","budget":80,"t":3,"mc":4,"mcsi":2,"candidate_cap":16,"seed":1}`

// TestDaemonEndToEnd walks the acceptance path: async solve to
// completion, identical resubmit is a cache hit with bit-identical σ,
// and a running solve aborts promptly on DELETE.
func TestDaemonEndToEnd(t *testing.T) {
	_, srv := newTestDaemon(t)

	// healthz
	var health map[string]any
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK || health["ok"] != true {
		t.Fatalf("healthz: %d %v", code, health)
	}

	// async solve
	var sub solveResponse
	if code := postJSON(t, srv.URL+"/v1/solve", quickSolve, &sub); code != http.StatusAccepted {
		t.Fatalf("solve: status %d", code)
	}
	if sub.JobID == "" || sub.CacheHit || sub.Coalesced {
		t.Fatalf("unexpected submit response: %+v", sub)
	}
	done := pollUntil(t, srv.URL+"/v1/jobs/"+sub.JobID, func(v imdpp.JobView) bool {
		return v.Status == imdpp.JobDone
	})
	if done.Solution == nil || len(done.Solution.Seeds) == 0 {
		t.Fatalf("done without solution: %+v", done)
	}
	if done.ProgressEvents == 0 {
		t.Fatalf("no progress streamed: %+v", done)
	}

	// identical resubmit: O(1) cache hit, bit-identical σ
	var sub2 solveResponse
	if code := postJSON(t, srv.URL+"/v1/solve", quickSolve, &sub2); code != http.StatusAccepted {
		t.Fatalf("resolve: status %d", code)
	}
	if !sub2.CacheHit || sub2.JobID == sub.JobID || sub2.Key != sub.Key {
		t.Fatalf("resubmit not a cache hit: %+v (first %+v)", sub2, sub)
	}
	hit := pollUntil(t, srv.URL+"/v1/jobs/"+sub2.JobID, func(v imdpp.JobView) bool {
		return v.Status == imdpp.JobDone
	})
	if hit.Solution == nil || hit.Solution.Sigma != done.Solution.Sigma {
		t.Fatalf("cached σ differs: %+v vs %+v", hit.Solution, done.Solution)
	}

	// cancel a running solve. The sample count makes the uncancelled
	// solve take seconds — HTTP round trips must fit inside the window
	// between start and DELETE.
	slow := `{"dataset":"sample","budget":80,"t":3,"mc":4096,"mcsi":512,"candidate_cap":256,"seed":9}`
	var sub3 solveResponse
	if code := postJSON(t, srv.URL+"/v1/solve", slow, &sub3); code != http.StatusAccepted {
		t.Fatalf("slow solve: status %d", code)
	}
	pollUntil(t, srv.URL+"/v1/jobs/"+sub3.JobID, func(v imdpp.JobView) bool {
		return v.Status != imdpp.JobQueued
	})
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+sub3.JobID, nil)
	cancelAt := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	cancelled := pollUntil(t, srv.URL+"/v1/jobs/"+sub3.JobID, func(v imdpp.JobView) bool {
		return v.Status == imdpp.JobCancelled || v.Status == imdpp.JobDone
	})
	if cancelled.Status != imdpp.JobCancelled {
		t.Fatalf("job finished before cancel took effect: %+v", cancelled)
	}
	if latency := time.Since(cancelAt); latency > time.Second {
		t.Fatalf("cancel round trip %v, want ≤ 1s", latency)
	}

	// metrics reflect all of the above
	var m struct {
		imdpp.ServiceMetrics
		DatasetsCached int `json:"datasets_cached"`
	}
	if code := getJSON(t, srv.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if m.CacheHits != 1 || m.JobsCancelled != 1 || m.JobsCompleted != 2 || m.DatasetsCached != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.SamplesPerSec <= 0 {
		t.Fatalf("throughput not tracked: %+v", m)
	}
}

func TestDaemonSigma(t *testing.T) {
	_, srv := newTestDaemon(t)

	body := `{"dataset":"sample","budget":80,"t":3,"mc":32,"seed":5,"seeds":[{"user":0,"item":0,"t":1}]}`
	var e1, e2 imdpp.Estimate
	if code := postJSON(t, srv.URL+"/v1/sigma", body, &e1); code != http.StatusOK {
		t.Fatalf("sigma: status %d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/sigma", body, &e2); code != http.StatusOK {
		t.Fatalf("sigma 2: status %d", code)
	}
	if e1.Sigma <= 0 || e1.Sigma != e2.Sigma {
		t.Fatalf("σ not deterministic over HTTP: %v vs %v", e1.Sigma, e2.Sigma)
	}

	// out-of-budget seed group → typed 400
	huge := `{"dataset":"sample","budget":0.001,"t":3,"mc":4,"seeds":[{"user":0,"item":0,"t":1}]}`
	var errBody map[string]string
	if code := postJSON(t, srv.URL+"/v1/sigma", huge, &errBody); code != http.StatusBadRequest {
		t.Fatalf("over-budget seeds: status %d (%v)", code, errBody)
	}
}

func TestDaemonRejectsBadInput(t *testing.T) {
	_, srv := newTestDaemon(t)

	cases := []struct {
		name, body string
	}{
		{"negative mc", `{"dataset":"sample","budget":80,"t":3,"mc":-1}`},
		{"T<1", `{"dataset":"sample","budget":80,"t":0,"mc":4}`},
		{"negative budget", `{"dataset":"sample","budget":-5,"t":3,"mc":4}`},
		{"unknown dataset", `{"dataset":"nope","budget":80,"t":3}`},
		{"unknown algo", `{"dataset":"sample","budget":80,"t":3,"algo":"magic"}`},
		{"unknown order", `{"dataset":"sample","budget":80,"t":3,"order":"XX"}`},
		{"garbage body", `{"dataset":`},
	}
	for _, tc := range cases {
		var errBody map[string]string
		code := postJSON(t, srv.URL+"/v1/solve", tc.body, &errBody)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d want 400 (%v)", tc.name, code, errBody)
		}
		if errBody["error"] == "" {
			t.Errorf("%s: no error message", tc.name)
		}
	}

	if code := getJSON(t, srv.URL+"/v1/jobs/nosuch", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/nosuch", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown job: status %d want 404", resp.StatusCode)
	}
}

// TestDaemonCancelFinishedJobConflict pins the DELETE contract: a job
// that already settled returns 409 with a typed error body, not 200.
func TestDaemonCancelFinishedJobConflict(t *testing.T) {
	_, srv := newTestDaemon(t)

	var sub solveResponse
	if code := postJSON(t, srv.URL+"/v1/solve", quickSolve, &sub); code != http.StatusAccepted {
		t.Fatalf("solve: status %d", code)
	}
	pollUntil(t, srv.URL+"/v1/jobs/"+sub.JobID, func(v imdpp.JobView) bool {
		return v.Status == imdpp.JobDone
	})

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+sub.JobID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE finished job: status %d want 409", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if eb.Code != "job_finished" || eb.Status != imdpp.JobDone || eb.Error == "" {
		t.Fatalf("error body not typed: %+v", eb)
	}

	// the job itself is untouched: still done, solution still there
	done := pollUntil(t, srv.URL+"/v1/jobs/"+sub.JobID, func(v imdpp.JobView) bool { return true })
	if done.Status != imdpp.JobDone || done.Solution == nil {
		t.Fatalf("conflict mutated the job: %+v", done)
	}
}

// TestDaemonShardedCoordinator boots two worker-mode daemons and a
// coordinator over them, and checks the coordinator's sharded /v1/sigma
// is bit-identical to a plain local daemon's — the shard-smoke contract
// in-process.
func TestDaemonShardedCoordinator(t *testing.T) {
	w1 := httptest.NewServer(newWorkerDaemon(2, 16, "", nil).handler())
	w2 := httptest.NewServer(newWorkerDaemon(2, 16, "", nil).handler())
	t.Cleanup(w1.Close)
	t.Cleanup(w2.Close)

	pool := imdpp.NewShardPool([]string{w1.URL, w2.URL}, nil)
	t.Cleanup(pool.Close)
	coord := newDaemon(imdpp.ServiceConfig{
		Workers: 1, QueueDepth: 8, CacheSize: 32,
		Backend: imdpp.ShardBackend(pool),
	}, pool)
	coordSrv := httptest.NewServer(coord.handler())
	t.Cleanup(func() {
		coordSrv.Close()
		coord.svc.Close()
	})
	_, localSrv := newTestDaemon(t)

	body := `{"dataset":"sample","budget":80,"t":3,"mc":64,"seed":5,"seeds":[{"user":0,"item":0,"t":1},{"user":3,"item":1,"t":2}]}`
	var sharded, local imdpp.Estimate
	if code := postJSON(t, coordSrv.URL+"/v1/sigma", body, &sharded); code != http.StatusOK {
		t.Fatalf("sharded sigma: status %d", code)
	}
	if code := postJSON(t, localSrv.URL+"/v1/sigma", body, &local); code != http.StatusOK {
		t.Fatalf("local sigma: status %d", code)
	}
	if sharded.Sigma != local.Sigma || sharded.Pi != local.Pi || sharded.Adoptions != local.Adoptions {
		t.Fatalf("sharded σ differs from local: %+v vs %+v", sharded, local)
	}

	// the coordinator's metrics expose the worker-pool depth
	var m struct {
		Shard *imdpp.ShardPoolStats `json:"shard"`
	}
	if code := getJSON(t, coordSrv.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if m.Shard == nil || m.Shard.Workers != 2 || m.Shard.Healthy != 2 {
		t.Fatalf("shard pool depth not reported: %+v", m.Shard)
	}
}

func TestDaemonQueueFull(t *testing.T) {
	d := newDaemon(imdpp.ServiceConfig{Workers: 1, QueueDepth: 1}, nil)
	srv := httptest.NewServer(d.handler())
	defer func() {
		srv.Close()
		d.svc.Close()
	}()

	// sample counts big enough that the blocker outlives several HTTP
	// round trips; nobody waits for these jobs — Close aborts them
	slow := func(seed int) string {
		return fmt.Sprintf(`{"dataset":"sample","budget":80,"t":3,"mc":4096,"mcsi":512,"candidate_cap":256,"seed":%d}`, seed)
	}
	var first solveResponse
	if code := postJSON(t, srv.URL+"/v1/solve", slow(1), &first); code != http.StatusAccepted {
		t.Fatalf("first: status %d", code)
	}
	pollUntil(t, srv.URL+"/v1/jobs/"+first.JobID, func(v imdpp.JobView) bool {
		return v.Status != imdpp.JobQueued
	})
	if code := postJSON(t, srv.URL+"/v1/solve", slow(2), nil); code != http.StatusAccepted {
		t.Fatalf("second: status %d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/solve", slow(3), nil); code != http.StatusTooManyRequests {
		t.Fatalf("third: status %d want 429", code)
	}
}

// TestDaemonSketchBackend covers the optional epsilon/delta fields of
// POST /v1/solve and POST /v1/sigma: unusable (ε, δ) pairs are typed
// 400s; an absent epsilon keeps the exact pre-sketch wire — no
// "backend" key in the response and σ bit-identical to a direct
// in-process evaluation of the same request; a present epsilon is
// echoed with backend "sketch" end to end.
func TestDaemonSketchBackend(t *testing.T) {
	_, srv := newTestDaemon(t)

	bad := []struct{ name, path, body string }{
		{"solve epsilon 0", "/v1/solve", `{"dataset":"sample","budget":80,"t":3,"mc":4,"epsilon":0}`},
		{"solve negative epsilon", "/v1/solve", `{"dataset":"sample","budget":80,"t":3,"mc":4,"epsilon":-0.1}`},
		{"solve delta without epsilon", "/v1/solve", `{"dataset":"sample","budget":80,"t":3,"mc":4,"delta":0.05}`},
		{"solve delta at one", "/v1/solve", `{"dataset":"sample","budget":80,"t":3,"mc":4,"epsilon":0.05,"delta":1}`},
		{"sigma epsilon 0", "/v1/sigma", `{"dataset":"sample","budget":80,"t":3,"mc":4,"epsilon":0,"seeds":[{"user":0,"item":0,"t":1}]}`},
		{"sigma delta 2", "/v1/sigma", `{"dataset":"sample","budget":80,"t":3,"mc":4,"epsilon":0.05,"delta":2,"seeds":[{"user":0,"item":0,"t":1}]}`},
	}
	for _, tc := range bad {
		var errBody map[string]string
		if code := postJSON(t, srv.URL+tc.path, tc.body, &errBody); code != http.StatusBadRequest {
			t.Errorf("%s: status %d want 400 (%v)", tc.name, code, errBody)
		}
	}

	// Absent epsilon: the PR-5 wire, byte for byte. The response must
	// not grow a "backend" key, and σ must bit-match the same request
	// evaluated directly in process.
	legacy := `{"dataset":"sample","budget":80,"t":3,"mc":32,"seed":5,"seeds":[{"user":0,"item":0,"t":1}]}`
	resp, err := http.Post(srv.URL+"/v1/sigma", "application/json", bytes.NewBufferString(legacy))
	if err != nil {
		t.Fatalf("sigma: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("sigma: status %d, read err %v", resp.StatusCode, err)
	}
	if bytes.Contains(raw, []byte(`"backend"`)) {
		t.Fatalf("epsilon-absent sigma response grew a backend key: %s", raw)
	}
	var got imdpp.Estimate
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("decode sigma: %v", err)
	}
	ds, err := imdpp.LoadDataset("sample", 1.0)
	if err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	p := ds.Clone(80, 3)
	want := imdpp.NewEstimator(p, 32, 5).Run([]imdpp.Seed{{User: 0, Item: 0, T: 1}}, nil, false)
	if got.Sigma != want.Sigma {
		t.Fatalf("epsilon-absent daemon σ %v != direct MC σ %v", got.Sigma, want.Sigma)
	}

	// Present epsilon: sketch answer, labelled as such.
	skSigma := `{"dataset":"sample","budget":80,"t":3,"mc":32,"seed":5,"epsilon":0.05,"delta":0.1,"seeds":[{"user":0,"item":0,"t":1}]}`
	var sig sigmaResponse
	if code := postJSON(t, srv.URL+"/v1/sigma", skSigma, &sig); code != http.StatusOK {
		t.Fatalf("sketch sigma: status %d", code)
	}
	if sig.Backend != "sketch" {
		t.Fatalf("sketch sigma backend %q, want \"sketch\"", sig.Backend)
	}

	skSolve := `{"dataset":"sample","budget":80,"t":3,"mc":4,"mcsi":2,"candidate_cap":16,"seed":1,"epsilon":0.05,"delta":0.1}`
	var sub solveResponse
	if code := postJSON(t, srv.URL+"/v1/solve", skSolve, &sub); code != http.StatusAccepted {
		t.Fatalf("sketch solve: status %d", code)
	}
	if sub.Backend != "sketch" {
		t.Fatalf("solve accept backend %q, want \"sketch\"", sub.Backend)
	}
	view := pollUntil(t, srv.URL+"/v1/jobs/"+sub.JobID, func(v imdpp.JobView) bool {
		return v.Status == imdpp.JobDone || v.Status == imdpp.JobFailed
	})
	if view.Status != imdpp.JobDone {
		t.Fatalf("sketch solve failed: %+v", view)
	}
	if view.Backend != "sketch" {
		t.Fatalf("job view backend %q, want \"sketch\"", view.Backend)
	}

	var m struct {
		Sketch struct {
			Requests uint64 `json:"requests"`
			Builds   uint64 `json:"builds"`
		} `json:"sketch"`
	}
	if code := getJSON(t, srv.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if m.Sketch.Requests < 2 || m.Sketch.Builds < 1 {
		t.Fatalf("sketch counters not moving: %+v", m)
	}
}

// TestDaemonMetricsSchema pins the full /metrics document shape once:
// the exact top-level key set and the nested sketch/grid counter
// objects (satellite of the §10 PR — sketch and grid counters nest
// like the "shard" object instead of spreading flat keys).
func TestDaemonMetricsSchema(t *testing.T) {
	_, srv := newTestDaemon(t)

	// run one solve and two identical sigma evaluations so every
	// counter family has a chance to move (grid hits included); the
	// solve also materialises the default tenant's scheduling row
	sigma := `{"dataset":"sample","budget":80,"t":3,"mc":32,"seed":5,"seeds":[{"user":0,"item":0,"t":1}]}`
	for i := 0; i < 2; i++ {
		if code := postJSON(t, srv.URL+"/v1/sigma", sigma, nil); code != http.StatusOK {
			t.Fatalf("sigma %d: status %d", i, code)
		}
	}
	var sub solveResponse
	if code := postJSON(t, srv.URL+"/v1/solve",
		`{"dataset":"sample","budget":80,"t":3,"mc":4,"mcsi":2,"candidate_cap":8,"seed":5}`, &sub); code != http.StatusAccepted {
		t.Fatalf("solve: status %d", code)
	}
	pollUntil(t, srv.URL+"/v1/jobs/"+sub.JobID, func(v imdpp.JobView) bool {
		return v.Status != imdpp.JobQueued && v.Status != imdpp.JobRunning
	})

	var doc map[string]json.RawMessage
	if code := getJSON(t, srv.URL+"/metrics", &doc); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	want := []string{
		"jobs_submitted", "jobs_completed", "jobs_failed", "jobs_cancelled",
		"cache_hits", "cache_misses", "coalesced", "cache_entries",
		"queue_depth", "running", "samples_simulated", "solve_seconds",
		"samples_per_sec", "sketch", "grid", "latency", "tenants",
		"solve_workers", "datasets_cached", "uptime_seconds",
	}
	for _, k := range want {
		if _, ok := doc[k]; !ok {
			t.Errorf("metrics missing key %q", k)
		}
	}
	for got := range doc {
		found := false
		for _, k := range append(want, "shard") {
			if got == k {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("metrics has unexpected key %q", got)
		}
	}

	var nested struct {
		Sketch map[string]uint64 `json:"sketch"`
		Grid   map[string]any    `json:"grid"`
	}
	if err := json.Unmarshal(mustMarshal(t, doc), &nested); err != nil {
		t.Fatalf("decode nested: %v", err)
	}
	for _, k := range []string{"requests", "builds", "cache_hits", "disk_hits"} {
		if _, ok := nested.Sketch[k]; !ok {
			t.Errorf("sketch object missing %q", k)
		}
	}
	for _, k := range []string{"lookups", "hits", "disk_hits", "singleflights", "evictions", "bytes", "entries", "samples_saved"} {
		if _, ok := nested.Grid[k]; !ok {
			t.Errorf("grid object missing %q", k)
		}
	}
	if hits, ok := nested.Grid["hits"].(float64); !ok || hits < 1 {
		t.Errorf("identical sigma evaluations produced no grid hits: %v", nested.Grid["hits"])
	}

	// the tenants block carries one scheduling row per tenant seen; the
	// solve above ran under the default tenant (DESIGN.md §12)
	var tn struct {
		Tenants map[string]map[string]any `json:"tenants"`
	}
	if err := json.Unmarshal(mustMarshal(t, doc), &tn); err != nil {
		t.Fatalf("decode tenants: %v", err)
	}
	row, ok := tn.Tenants["default"]
	if !ok {
		t.Fatalf("tenants block missing the default tenant: %v", tn.Tenants)
	}
	for _, k := range []string{"admitted", "completed", "shed_quota", "shed_queue_full",
		"queued", "inflight", "weight", "max_queue", "max_inflight", "queue_wait"} {
		if _, ok := row[k]; !ok {
			t.Errorf("tenants.default missing %q", k)
		}
	}
	if adm, ok := row["admitted"].(float64); !ok || adm < 1 {
		t.Errorf("solve did not move tenants.default.admitted: %v", row["admitted"])
	}

	// the latency block carries one histogram snapshot per stage, each
	// with the full quantile key set (DESIGN.md §11)
	var lat struct {
		Latency map[string]map[string]float64 `json:"latency"`
	}
	if err := json.Unmarshal(mustMarshal(t, doc), &lat); err != nil {
		t.Fatalf("decode latency: %v", err)
	}
	for _, stage := range []string{"queue_wait", "solve_wall", "shard_rpc", "sigma"} {
		h, ok := lat.Latency[stage]
		if !ok {
			t.Errorf("latency block missing stage %q", stage)
			continue
		}
		for _, k := range []string{"count", "mean_ms", "p50_ms", "p95_ms", "p99_ms"} {
			if _, ok := h[k]; !ok {
				t.Errorf("latency.%s missing %q", stage, k)
			}
		}
	}
	if lat.Latency["sigma"]["count"] < 2 {
		t.Errorf("two sigma evaluations observed %v in latency.sigma", lat.Latency["sigma"]["count"])
	}

	// a pool-backed daemon grows the optional "shard" object; pin the
	// fleet-membership aggregate it carries (DESIGN.md §13)
	pool := imdpp.NewShardPool(nil, nil)
	t.Cleanup(pool.Close)
	pd := newDaemon(imdpp.ServiceConfig{Workers: 1, QueueDepth: 4, CacheSize: 8}, pool)
	pd.dynamic = true
	psrv := httptest.NewServer(pd.handler())
	t.Cleanup(func() {
		psrv.Close()
		pd.svc.Close()
	})
	var pdoc struct {
		Shard struct {
			Fleet map[string]any `json:"fleet"`
		} `json:"shard"`
	}
	if code := getJSON(t, psrv.URL+"/metrics", &pdoc); code != http.StatusOK {
		t.Fatalf("pool metrics: status %d", code)
	}
	for _, k := range []string{"registered", "draining", "suspect", "dead",
		"heartbeats", "breaker_open", "rejoin_count"} {
		if _, ok := pdoc.Shard.Fleet[k]; !ok {
			t.Errorf("shard.fleet missing %q", k)
		}
	}
}

// TestDaemonTracingEndToEnd pins the daemon-level observability
// surface: with a Tracer configured, a finished job reports its
// trace_id and per-phase timings, and the -debug-addr mux serves the
// recorded trace at GET /debug/traces.
func TestDaemonTracingEndToEnd(t *testing.T) {
	tracer := imdpp.NewTracer()
	d := newDaemon(imdpp.ServiceConfig{
		Workers: 1, QueueDepth: 8, CacheSize: 32, Tracer: tracer,
	}, nil)
	srv := httptest.NewServer(d.handler())
	debug := httptest.NewServer(debugMux(tracer))
	t.Cleanup(func() {
		srv.Close()
		debug.Close()
		d.svc.Close()
	})

	var sub solveResponse
	if code := postJSON(t, srv.URL+"/v1/solve", quickSolve, &sub); code != http.StatusAccepted {
		t.Fatalf("solve: status %d", code)
	}
	done := pollUntil(t, srv.URL+"/v1/jobs/"+sub.JobID, func(v imdpp.JobView) bool {
		return v.Status == imdpp.JobDone
	})
	if done.TraceID == "" {
		t.Fatalf("finished job has no trace_id: %+v", done)
	}
	if len(done.Phases) == 0 {
		t.Fatalf("finished job has no phase timings: %+v", done)
	}
	for _, ph := range done.Phases {
		if ph.Phase == "" || ph.Seconds < 0 {
			t.Fatalf("malformed phase timing: %+v", ph)
		}
	}

	var traces struct {
		Traces []imdpp.Trace `json:"traces"`
	}
	if code := getJSON(t, debug.URL+"/debug/traces", &traces); code != http.StatusOK {
		t.Fatalf("debug/traces: status %d", code)
	}
	found := false
	for _, tr := range traces.Traces {
		if tr.TraceID.String() != done.TraceID {
			continue
		}
		found = true
		names := make(map[string]int)
		for _, s := range tr.Spans {
			names[s.Name]++
		}
		if names["job"] == 0 || names["queue_wait"] == 0 {
			t.Fatalf("trace %s missing job/queue_wait spans: %v", done.TraceID, names)
		}
		phased := 0
		for n, c := range names {
			if len(n) > 6 && n[:6] == "phase:" {
				phased += c
			}
		}
		if phased == 0 {
			t.Fatalf("trace %s has no phase spans: %v", done.TraceID, names)
		}
	}
	if !found {
		t.Fatalf("job trace %s not in /debug/traces", done.TraceID)
	}

	// pprof rides the same debug mux
	if code := getJSON(t, debug.URL+"/debug/pprof/cmdline", nil); code != http.StatusOK {
		t.Fatalf("debug/pprof/cmdline: status %d", code)
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDaemonDynamicFleet walks the elastic-fleet path (DESIGN.md §13)
// at the daemon level: a coordinator with -shard-dynamic semantics
// mounts the registration routes, a worker's registrar announces it,
// negotiation seeds the wire codec without any probe RPC, σ through
// the registered fleet is bit-identical to local, and a draining
// worker reports unhealthy before deregistering.
func TestDaemonDynamicFleet(t *testing.T) {
	wdd := newWorkerDaemon(2, 16, "", nil)
	wsrv := httptest.NewServer(wdd.handler())
	t.Cleanup(wsrv.Close)

	pool := imdpp.NewShardPool(nil, nil)
	t.Cleanup(pool.Close)
	pool.SetHeartbeat(50 * time.Millisecond)
	coord := newDaemon(imdpp.ServiceConfig{
		Workers: 1, QueueDepth: 8, CacheSize: 32,
		Backend: imdpp.ShardBackend(pool),
	}, pool)
	coord.dynamic = true
	coordSrv := httptest.NewServer(coord.handler())
	t.Cleanup(func() {
		coordSrv.Close()
		coord.svc.Close()
	})

	reg, err := imdpp.NewShardRegistrar(imdpp.ShardRegistrarConfig{
		Coordinator: coordSrv.URL,
		SelfURL:     wsrv.URL,
	})
	if err != nil {
		t.Fatalf("registrar: %v", err)
	}
	reg.Start()
	t.Cleanup(reg.Stop)

	fleet := func() imdpp.ShardFleetStats {
		t.Helper()
		var m struct {
			Shard *imdpp.ShardPoolStats `json:"shard"`
		}
		if code := getJSON(t, coordSrv.URL+"/metrics", &m); code != http.StatusOK {
			t.Fatalf("metrics: status %d", code)
		}
		if m.Shard == nil {
			t.Fatalf("metrics has no shard block")
		}
		return m.Shard.Fleet
	}
	deadline := time.Now().Add(10 * time.Second)
	for fleet().Registered < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never registered: %+v", fleet())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// negotiation happened at registration: the remote's codec is
	// settled before any estimate RPC, no per-request probe needed
	var m struct {
		Shard *imdpp.ShardPoolStats `json:"shard"`
	}
	if code := getJSON(t, coordSrv.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if len(m.Shard.Remotes) != 1 {
		t.Fatalf("want 1 remote, got %+v", m.Shard.Remotes)
	}
	r := m.Shard.Remotes[0]
	if !r.Registered || r.State != "alive" || r.Codec != "binary" {
		t.Fatalf("registration did not negotiate caps: %+v", r)
	}

	// σ through the dynamically-registered fleet is bit-identical
	_, localSrv := newTestDaemon(t)
	body := `{"dataset":"sample","budget":80,"t":3,"mc":64,"seed":5,"seeds":[{"user":0,"item":0,"t":1},{"user":3,"item":1,"t":2}]}`
	var sharded, local imdpp.Estimate
	if code := postJSON(t, coordSrv.URL+"/v1/sigma", body, &sharded); code != http.StatusOK {
		t.Fatalf("sharded sigma: status %d", code)
	}
	if code := postJSON(t, localSrv.URL+"/v1/sigma", body, &local); code != http.StatusOK {
		t.Fatalf("local sigma: status %d", code)
	}
	if sharded.Sigma != local.Sigma || sharded.Pi != local.Pi {
		t.Fatalf("fleet σ differs from local: %+v vs %+v", sharded, local)
	}
	for time.Now().Before(deadline) && fleet().Heartbeats < 2 {
		time.Sleep(10 * time.Millisecond)
	}
	if hb := fleet().Heartbeats; hb < 2 {
		t.Fatalf("worker heartbeats not counted: %d", hb)
	}

	// drain: the worker turns unhealthy (probes must route away) and
	// rejects new shard dispatches with the typed "draining" error
	reg.Stop()
	<-wdd.w.BeginDrain()
	resp, err := http.Get(wsrv.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var hz struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || hz.OK || !hz.Draining {
		t.Fatalf("draining worker healthz: status %d body %+v", resp.StatusCode, hz)
	}
	deregCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := reg.Deregister(deregCtx); err != nil {
		t.Fatalf("deregister: %v", err)
	}
	if f := fleet(); f.Registered != 0 {
		t.Fatalf("worker still registered after deregister: %+v", f)
	}
}

// TestResolveQuotaSpec pins the @file indirection SIGHUP reload rides
// on: literal specs pass through, @path reads the file, a missing
// file is an error rather than a silent empty quota table.
func TestResolveQuotaSpec(t *testing.T) {
	if got, err := resolveQuotaSpec("pro:4:8"); err != nil || got != "pro:4:8" {
		t.Fatalf("literal spec: got %q, %v", got, err)
	}
	f := filepath.Join(t.TempDir(), "quotas")
	if err := os.WriteFile(f, []byte("pro:4:8,default:1:2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := resolveQuotaSpec("@" + f); err != nil || got != "pro:4:8,default:1:2" {
		t.Fatalf("@file spec: got %q, %v", got, err)
	}
	if _, err := resolveQuotaSpec("@" + f + ".missing"); err == nil {
		t.Fatalf("missing quota file silently accepted")
	}
}

// Command imdppd is the IMDPP campaign-solving daemon: an HTTP/JSON
// front-end over the serving layer (internal/service) — async solves
// on a bounded job queue, prompt cancellation, and a
// content-addressed result cache that serves identical requests in
// O(1) and coalesces concurrent duplicates onto one in-flight solve.
//
// Endpoints:
//
//	POST   /v1/solve             submit a solve; returns a job id.
//	                             ?wait=<duration> long-polls completion
//	GET    /v1/jobs/{id}         job status, progress and (when done) the solution
//	GET    /v1/jobs/{id}/events  SSE stream of progress + terminal events
//	                             (Last-Event-ID resume, heartbeats)
//	DELETE /v1/jobs/{id}         cancel a queued or running job (409 if finished)
//	POST   /v1/sigma             evaluate σ for an explicit seed group (sync)
//	GET    /healthz              liveness
//	GET    /metrics              JSON counters: jobs, cache hits, samples/sec,
//	                             per-tenant scheduling, worker-pool depth
//
// Requests are scheduled per tenant (X-IMDPP-Tenant header or "tenant"
// body field; default tenant otherwise) under deficit-weighted
// round-robin with per-tenant quotas (-tenant-quotas, DESIGN.md §12);
// shed load returns typed 429s (quota_exceeded / queue_full) bearing
// Retry-After.
//
// Quickstart:
//
//	imdppd -addr 127.0.0.1:8080 &
//	curl -s -X POST localhost:8080/v1/solve \
//	  -d '{"dataset":"sample","budget":100,"t":4,"mc":8}'
//	curl -s localhost:8080/v1/jobs/j1
//
// Scale-out (DESIGN.md §7): `imdppd -worker` turns the process into a
// remote estimator worker serving the shard RPC (problem upload +
// per-sample-range estimation); a coordinator started with
// `-shard-workers http://hostA:8081,http://hostB:8081` fans every
// solve's σ/π batches out over the fleet, bit-identical to a local
// solve. See README.md "Deploying a worker fleet".
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"imdpp"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	workers := flag.Int("workers", 2, "concurrent solver jobs")
	queue := flag.Int("queue", 16, "bounded job-queue depth")
	cacheSize := flag.Int("cache", 128, "content-addressed result cache entries")
	solveWorkers := flag.Int("solve-workers", 0, "estimator goroutines per solve (0 = GOMAXPROCS)")
	workerMode := flag.Bool("worker", false, "run as a remote estimator worker (shard RPC only)")
	register := flag.String("register", "", "coordinator base URL; the worker announces itself on /v1/shard/register and heartbeats until drained (requires -worker, DESIGN.md §13)")
	advertise := flag.String("advertise", "", "base URL the worker advertises at registration (default: http://<resolved listen address>)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "on SIGTERM, how long a draining worker waits for in-flight shards before exiting anyway")
	shardWorkers := flag.String("shard-workers", "", "comma-separated worker base URLs; fan σ/π estimation out over them")
	shardDynamic := flag.Bool("shard-dynamic", false, "accept dynamic worker registration on /v1/shard/register; registered workers are heartbeat-monitored and drained gracefully (DESIGN.md §13)")
	shardHeartbeat := flag.Duration("shard-heartbeat", 2*time.Second, "heartbeat cadence dictated to registered workers; a worker silent for 3 intervals is suspected")
	shardProbe := flag.Duration("shard-probe", 5*time.Second, "worker health-probe interval")
	shardCodec := flag.String("shard-codec", "binary", "shard RPC wire codec: binary (DESIGN.md §8) or json; binary falls back to json per worker on mixed-version fleets")
	shardWeighted := flag.Bool("shard-weighted", true, "size shard ranges proportionally to measured worker throughput")
	shardSpec := flag.Bool("shard-speculate", true, "speculatively re-dispatch straggler shards to idle workers")
	sketchDir := flag.String("sketch-dir", "", "directory persisting RR sketch indexes across restarts (empty = memory only)")
	gridMB := flag.Int("grid-cache-mb", 64, "in-memory sample-grid memoization cache bound in MiB (0 disables); shared across jobs, and by each -worker across estimate requests")
	gridDir := flag.String("grid-cache-dir", "", "directory spilling committed sample grids to disk (empty = memory only)")
	tenantQuotas := flag.String("tenant-quotas", "", "per-tenant scheduling quotas: name:weight[:max_queue[:max_inflight]] comma-separated; name 'default' sets the quota unlisted tenants get (DESIGN.md §12)")
	sseHeartbeat := flag.Duration("sse-heartbeat", 15*time.Second, "SSE keep-alive comment interval on GET /v1/jobs/{id}/events")
	debugAddr := flag.String("debug-addr", "", "optional debug listener (net/http/pprof + /debug/traces) kept off the serving mux; empty disables (DESIGN.md §11)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON lines instead of text")
	flag.Parse()

	logger, err := newLogger(*logLevel, *logJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imdppd: %v\n", err)
		os.Exit(1)
	}
	// one process-wide trace ring serves both modes: the coordinator
	// records solve/shard spans into it, a worker its estimate spans
	tracer := imdpp.NewTracer()

	var handler http.Handler
	var cleanup func()
	var wd *workerDaemon // non-nil in worker mode; drives SIGTERM drain
	var d *daemon        // non-nil in coordinator mode; drives SIGHUP reload
	switch {
	case *workerMode:
		if *shardWorkers != "" {
			fatal(logger, "-worker and -shard-workers are mutually exclusive")
		}
		if *shardDynamic {
			fatal(logger, "-shard-dynamic is a coordinator flag; a -worker registers with -register instead")
		}
		wd = newWorkerDaemon(*solveWorkers, *gridMB, *gridDir, tracer)
		handler = wd.handler()
		cleanup = func() {}
	default:
		if *register != "" {
			fatal(logger, "-register requires -worker; a coordinator accepts registrations with -shard-dynamic")
		}
		quotaSpec, err := resolveQuotaSpec(*tenantQuotas)
		if err != nil {
			fatal(logger, err.Error())
		}
		quotas, defQuota, err := imdpp.ParseTenantQuotas(quotaSpec)
		if err != nil {
			fatal(logger, err.Error())
		}
		cfg := imdpp.ServiceConfig{
			Workers:      *workers,
			QueueDepth:   *queue,
			CacheSize:    *cacheSize,
			SolveWorkers: *solveWorkers,
			SketchDir:    *sketchDir,
			GridCacheMB:  *gridMB,
			GridCacheDir: *gridDir,
			Tenants:      quotas,
			DefaultQuota: defQuota,
			Tracer:       tracer,
			Logger:       logger,
		}
		if *gridMB <= 0 {
			cfg.GridCacheMB = -1 // flag 0 means off; Config 0 means default
		}
		var pool *imdpp.ShardPool
		if *shardWorkers != "" || *shardDynamic {
			var urls []string
			if *shardWorkers != "" {
				urls = strings.Split(*shardWorkers, ",")
			}
			pool = imdpp.NewShardPool(urls, nil)
			if err := pool.SetCodec(*shardCodec); err != nil {
				fatal(logger, err.Error())
			}
			pool.SetWeighted(*shardWeighted)
			pool.SetSpeculation(*shardSpec)
			pool.SetLogger(logger)
			if *shardDynamic {
				pool.SetHeartbeat(*shardHeartbeat)
			}
			healthy := pool.Check(context.Background())
			logger.Info("shard pool ready",
				"healthy", healthy, "workers", pool.Size(), "codec", pool.Codec(),
				"weighted", *shardWeighted, "speculate", *shardSpec, "dynamic", *shardDynamic)
			pool.StartHealthLoop(*shardProbe)
			cfg.Backend = imdpp.ShardBackend(pool)
		}
		d = newDaemon(cfg, pool)
		d.dynamic = *shardDynamic
		d.heartbeat = *sseHeartbeat
		handler = d.handler()
		cleanup = func() {
			d.svc.Close()
			if pool != nil {
				pool.Close()
			}
		}
	}
	defer cleanup()

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(logger, "debug listen failed", "addr", *debugAddr, "err", err)
		}
		go func() { _ = http.Serve(dln, debugMux(tracer)) }()
		// same scrape contract as the serving line below, for harnesses
		// that need the resolved debug port
		fmt.Printf("imdppd debug listening on http://%s\n", dln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, "listen failed", "addr", *addr, "err", err)
	}
	srv := &http.Server{Handler: handler}

	// the resolved address line is a readiness contract: the smoke
	// harness scrapes it to discover the random port
	fmt.Printf("imdppd listening on http://%s\n", ln.Addr())

	// worker fleet membership (DESIGN.md §13): started only after the
	// listener is up so the advertised URL is live before the
	// coordinator hears about it
	var reg *imdpp.ShardRegistrar
	if wd != nil && *register != "" {
		self := *advertise
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		reg, err = imdpp.NewShardRegistrar(imdpp.ShardRegistrarConfig{
			Coordinator: *register,
			SelfURL:     self,
			Logger:      logger,
		})
		if err != nil {
			fatal(logger, "registrar failed", "err", err)
		}
		reg.Start()
		logger.Info("registering with coordinator", "coordinator", *register, "self", self)
	}

	// SIGHUP reloads the tenant-quota table atomically — queued jobs
	// keep their slots, only future admissions see the new limits
	// (DESIGN.md §12). Coordinator mode only; workers hold no queue.
	if d != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				spec, err := resolveQuotaSpec(*tenantQuotas)
				if err != nil {
					logger.Error("quota reload failed", "err", err)
					continue
				}
				quotas, defQuota, err := imdpp.ParseTenantQuotas(spec)
				if err != nil {
					logger.Error("quota reload failed", "err", err)
					continue
				}
				d.svc.ReloadQuotas(quotas, defQuota)
				logger.Info("tenant quotas reloaded", "tenants", len(quotas))
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		if wd != nil {
			// graceful drain (DESIGN.md §13): stop heartbeating, finish
			// in-flight shard ranges while rejecting new ones with a typed
			// "draining" error, tell the coordinator, then shut down
			if reg != nil {
				reg.Stop()
			}
			drained := wd.w.BeginDrain()
			if reg != nil {
				deregCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				_ = reg.Deregister(deregCtx)
				cancel()
			}
			select {
			case <-drained:
				logger.Info("worker drained: all in-flight shards finished")
			case <-time.After(*drainTimeout):
				logger.Warn("drain timeout expired with shards still in flight", "timeout", *drainTimeout)
			}
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(logger, "serve failed", "err", err)
	}
}

// newLogger builds the process logger from the -log-level / -log-json
// flags. Logs go to stderr so stdout keeps the readiness-line contract.
func newLogger(level string, jsonOut bool) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	if jsonOut {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
}

func fatal(logger *slog.Logger, msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

// debugMux is the opt-in -debug-addr surface: recent traces plus the
// standard pprof profiles, deliberately on a separate listener so
// profiling load and trace scrapes never contend with serving traffic.
func debugMux(tracer *imdpp.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /debug/traces", tracer.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// daemon wires the HTTP surface to the serving layer, memoizing the
// synthetic datasets so repeated requests against one workload don't
// pay regeneration. pool is non-nil when the daemon coordinates a
// shard worker fleet.
type daemon struct {
	svc     *imdpp.Service
	pool    *imdpp.ShardPool
	workers int
	// dynamic mounts the worker-registration routes (DESIGN.md §13).
	dynamic bool
	start   time.Time
	// heartbeat is the SSE keep-alive comment interval; tests shrink it.
	heartbeat time.Duration

	mu       sync.Mutex
	datasets map[dsKey]*imdpp.Dataset
}

type dsKey struct {
	name  string
	scale float64
}

func newDaemon(cfg imdpp.ServiceConfig, pool *imdpp.ShardPool) *daemon {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	return &daemon{
		svc:       imdpp.NewService(cfg),
		pool:      pool,
		workers:   workers,
		start:     time.Now(),
		heartbeat: 15 * time.Second,
		datasets:  make(map[dsKey]*imdpp.Dataset),
	}
}

// workerDaemon is the `imdppd -worker` surface: the shard estimator
// RPC plus liveness and counters. It holds no job queue, cache or
// datasets — a worker only simulates the sample ranges coordinators
// send it, against problems they upload by content address.
type workerDaemon struct {
	w     *imdpp.ShardWorker
	start time.Time
}

func newWorkerDaemon(solveWorkers, gridMB int, gridDir string, tracer *imdpp.Tracer) *workerDaemon {
	cfg := imdpp.ShardWorkerConfig{Workers: solveWorkers, Tracer: tracer}
	if gridMB > 0 {
		cfg.Grid = imdpp.NewGridCache(gridMB, gridDir)
	}
	return &workerDaemon{
		w:     imdpp.NewShardWorker(cfg),
		start: time.Now(),
	}
}

func (wd *workerDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	wd.w.Mount(mux)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		// a draining worker is deliberately unhealthy: probes must stop
		// routing to it while its in-flight shards finish (DESIGN.md §13)
		if wd.w.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"ok":             false,
				"worker":         true,
				"draining":       true,
				"uptime_seconds": time.Since(wd.start).Seconds(),
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":             true,
			"worker":         true,
			"uptime_seconds": time.Since(wd.start).Seconds(),
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			imdpp.ShardWorkerStats
			UptimeSeconds float64 `json:"uptime_seconds"`
		}{
			ShardWorkerStats: wd.w.Stats(),
			UptimeSeconds:    time.Since(wd.start).Seconds(),
		})
	})
	return mux
}

func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", d.handleSolve)
	mux.HandleFunc("GET /v1/jobs/{id}", d.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", d.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", d.handleJobCancel)
	mux.HandleFunc("POST /v1/sigma", d.handleSigma)
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	if d.pool != nil && d.dynamic {
		// elastic fleet membership (DESIGN.md §13): workers announce,
		// heartbeat, and take their leave here
		mux.HandleFunc("POST /v1/shard/register", d.pool.HandleRegister)
		mux.HandleFunc("POST /v1/shard/heartbeat", d.pool.HandleHeartbeat)
		mux.HandleFunc("POST /v1/shard/deregister", d.pool.HandleDeregister)
	}
	return mux
}

// resolveQuotaSpec resolves the -tenant-quotas flag value: a literal
// spec, or "@path" naming a file holding the spec — the indirection
// that lets SIGHUP pick up edits without a flag change.
func resolveQuotaSpec(spec string) (string, error) {
	if !strings.HasPrefix(spec, "@") {
		return spec, nil
	}
	b, err := os.ReadFile(strings.TrimPrefix(spec, "@"))
	if err != nil {
		return "", fmt.Errorf("-tenant-quotas: %w", err)
	}
	return strings.TrimSpace(string(b)), nil
}

// problemSpec is the shared problem-defining half of solve and sigma
// request bodies.
type problemSpec struct {
	Dataset string  `json:"dataset"` // amazon|yelp|douban|gowalla|sample
	Scale   float64 `json:"scale"`   // 0 → 1.0
	Budget  float64 `json:"budget"`
	T       int     `json:"t"`
}

// solveRequest is the POST /v1/solve body. Zero-valued option fields
// select the solver defaults (DESIGN.md §2).
type solveRequest struct {
	problemSpec
	Algo         string `json:"algo"` // dysim (default) | adaptive
	MC           int    `json:"mc"`
	MCSI         int    `json:"mcsi"`
	Seed         uint64 `json:"seed"`
	Theta        int    `json:"theta"`
	CandidateCap int    `json:"candidate_cap"`
	Order        string `json:"order"` // AE|PF|SZ|RMS|RD
	// Tenant selects the scheduling tenant (falls back to the
	// X-IMDPP-Tenant header, then the default tenant); Priority orders
	// dispatch within it, higher first. Both are result-invariant —
	// they steer when a job runs, never what it computes.
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	// Epsilon, when present, selects the RR-sketch approximate
	// backend: σ answers within ε·n·W of exact with probability
	// ≥ 1−delta (DESIGN.md §9). Absent keeps the exact MC path and
	// its bit-identical responses and cache keys. Pointers so an
	// explicit 0 is a client error rather than a silent MC fallback.
	Epsilon *float64 `json:"epsilon"`
	Delta   *float64 `json:"delta"` // absent with epsilon → 0.05
}

type solveResponse struct {
	JobID     string          `json:"job_id"`
	Status    imdpp.JobStatus `json:"status"`
	Key       string          `json:"key"`
	CacheHit  bool            `json:"cache_hit"`
	Coalesced bool            `json:"coalesced"`
	// Backend echoes the selected estimation backend ("sketch" for
	// epsilon requests; omitted on the exact MC path, keeping
	// pre-epsilon response bytes unchanged).
	Backend string `json:"backend,omitempty"`
}

// sigmaRequest is the POST /v1/sigma body.
type sigmaRequest struct {
	problemSpec
	MC    int          `json:"mc"` // 0 → 100
	Seed  uint64       `json:"seed"`
	Seeds []imdpp.Seed `json:"seeds"`
	// Epsilon/Delta select the RR-sketch approximate backend, exactly
	// as on /v1/solve; absent keeps the bit-identical MC path.
	Epsilon *float64 `json:"epsilon"`
	Delta   *float64 `json:"delta"`
}

// sigmaResponse wraps the estimate with the backend echo. Estimate is
// embedded so the σ fields keep their exact historical JSON shape;
// the extra key only appears for sketch answers.
type sigmaResponse struct {
	imdpp.Estimate
	Backend string `json:"backend,omitempty"`
}

// sketchParams resolves the optional epsilon/delta request fields
// shared by /v1/solve and /v1/sigma. Absent epsilon selects the exact
// MC backend; a present field must be usable — an explicit epsilon
// ≤ 0 or delta outside (0,1) is a client error, never a silent
// fallback that would hand back a differently-keyed answer than the
// caller asked for.
func sketchParams(eps, delta *float64) (float64, float64, error) {
	if eps == nil {
		if delta != nil {
			return 0, 0, &imdpp.InputError{Field: "Delta", Reason: "delta set without epsilon; the (ε, δ) contract needs both"}
		}
		return 0, 0, nil
	}
	if !(*eps > 0) { // rejects ≤ 0 and NaN
		return 0, 0, &imdpp.InputError{Field: "Epsilon", Reason: fmt.Sprintf("sketch accuracy %g must be > 0", *eps)}
	}
	d := 0.0
	if delta != nil {
		if !(*delta > 0 && *delta < 1) {
			return 0, 0, &imdpp.InputError{Field: "Delta", Reason: fmt.Sprintf("sketch failure probability %g outside (0,1)", *delta)}
		}
		d = *delta
	}
	return *eps, d, nil
}

func (d *daemon) loadProblem(spec problemSpec) (*imdpp.Problem, error) {
	if spec.Scale == 0 {
		spec.Scale = 1.0
	}
	key := dsKey{name: strings.ToLower(spec.Dataset), scale: spec.Scale}
	d.mu.Lock()
	ds, ok := d.datasets[key]
	d.mu.Unlock()
	if !ok {
		// built outside the lock: dataset generation can take seconds
		// at scale, and concurrent first requests for distinct datasets
		// shouldn't serialise (a duplicate build for the same key is
		// wasted work, not corruption — last writer wins)
		var err error
		ds, err = imdpp.LoadDataset(key.name, key.scale)
		if err != nil {
			return nil, err
		}
		d.mu.Lock()
		d.datasets[key] = ds
		d.mu.Unlock()
	}
	return ds.Clone(spec.Budget, spec.T), nil
}

func parseOrder(s string) (imdpp.OrderMetric, error) {
	switch strings.ToUpper(s) {
	case "", "AE":
		return imdpp.OrderAE, nil
	case "PF":
		return imdpp.OrderPF, nil
	case "SZ":
		return imdpp.OrderSZ, nil
	case "RMS":
		return imdpp.OrderRMS, nil
	case "RD":
		return imdpp.OrderRD, nil
	default:
		return 0, &imdpp.InputError{Field: "Order", Reason: fmt.Sprintf("unknown metric %q (want AE|PF|SZ|RMS|RD)", s)}
	}
}

func (d *daemon) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	adaptive := false
	switch strings.ToLower(req.Algo) {
	case "", "dysim":
	case "adaptive":
		adaptive = true
	default:
		writeError(w, http.StatusBadRequest, &imdpp.InputError{Field: "Algo", Reason: fmt.Sprintf("unknown algorithm %q (want dysim|adaptive)", req.Algo)})
		return
	}
	order, err := parseOrder(req.Order)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	eps, delta, err := sketchParams(req.Epsilon, req.Delta)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wait, err := parseWait(r.URL.Query().Get("wait"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = r.Header.Get("X-IMDPP-Tenant")
	}
	p, err := d.loadProblem(req.problemSpec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, coalesced, err := d.svc.Submit(imdpp.ServiceRequest{
		Problem: p,
		Options: imdpp.Options{
			MC:           req.MC,
			MCSI:         req.MCSI,
			Seed:         req.Seed,
			Theta:        req.Theta,
			CandidateCap: req.CandidateCap,
			Order:        order,
			Epsilon:      eps,
			Delta:        delta,
		},
		Adaptive: adaptive,
		Tenant:   tenant,
		Priority: req.Priority,
	})
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}
	if wait > 0 {
		// long-poll: block up to the deadline; a finished job returns its
		// full snapshot (solution included), a still-working one falls
		// through to the usual 202 ticket
		waitCtx, cancel := context.WithTimeout(r.Context(), wait)
		_, _ = job.Wait(waitCtx)
		cancel()
		if snap := job.Snapshot(); snap.Status == imdpp.JobDone ||
			snap.Status == imdpp.JobFailed || snap.Status == imdpp.JobCancelled {
			writeJSON(w, http.StatusOK, snap)
			return
		}
	}
	snap := job.Snapshot()
	writeJSON(w, http.StatusAccepted, solveResponse{
		JobID:     job.ID(),
		Status:    snap.Status,
		Key:       job.Key().String(),
		CacheHit:  snap.CacheHit,
		Coalesced: coalesced,
		Backend:   snap.Backend,
	})
}

// maxWait caps ?wait= long-polls so an absurd deadline cannot pin a
// connection for hours; clients needing longer should poll or stream.
const maxWait = 10 * time.Minute

// parseWait parses the ?wait= long-poll deadline on POST /v1/solve.
// Empty means no wait; values above maxWait are clamped, not rejected.
func parseWait(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, &imdpp.InputError{Field: "wait", Reason: fmt.Sprintf("bad duration %q: %v", s, err)}
	}
	if d < 0 {
		return 0, &imdpp.InputError{Field: "wait", Reason: fmt.Sprintf("negative duration %q", s)}
	}
	return min(d, maxWait), nil
}

func submitStatus(err error) int {
	var inputErr *imdpp.InputError
	switch {
	case errors.As(err, &inputErr):
		return http.StatusBadRequest
	case errors.Is(err, imdpp.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, imdpp.ErrServiceClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (d *daemon) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, ok := d.svc.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

// handleJobEvents streams a job's retained event log as Server-Sent
// Events (DESIGN.md §12): `id:` carries the event sequence number,
// `event:` the type ("progress", or the terminal "done"/"failed"/
// "cancelled"), `data:` the JSON payload (ProgressEvent for progress,
// the full JobView for the terminal event). A Last-Event-ID header (or
// ?last_event_id=) resumes after the given sequence number; progress
// older than the retention window is skipped, the terminal event never
// is. The stream ends after the terminal event; heartbeat comments
// (": hb") keep idle connections alive.
func (d *daemon) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := d.svc.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	last := 0
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("last_event_id")
	}
	if lastID != "" {
		if _, err := fmt.Sscanf(lastID, "%d", &last); err != nil || last < 0 {
			writeError(w, http.StatusBadRequest, &imdpp.InputError{Field: "Last-Event-ID", Reason: fmt.Sprintf("bad sequence number %q", lastID)})
			return
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	heartbeat := d.heartbeat
	if heartbeat <= 0 {
		heartbeat = 15 * time.Second
	}
	timer := time.NewTimer(heartbeat)
	defer timer.Stop()
	for {
		// grab the wake channel BEFORE reading, so a publication landing
		// between the read and the wait is never slept through
		wake := job.Wake()
		evs, terminal := job.EventsSince(last)
		for _, ev := range evs {
			if err := writeSSE(w, ev); err != nil {
				return
			}
			last = ev.Seq
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if terminal {
			return
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(heartbeat)
		select {
		case <-wake:
		case <-timer.C:
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE frames one job event: id carries the sequence number for
// Last-Event-ID resume, data the progress report or (terminal) the
// full job snapshot.
func writeSSE(w http.ResponseWriter, ev imdpp.JobEvent) error {
	var payload any
	if ev.Progress != nil {
		payload = ev.Progress
	} else {
		payload = ev.Job
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}

func (d *daemon) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := d.svc.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	// cancelling a finished job is a conflict, not a silent no-op: the
	// job's outcome is already settled and will not change
	if snap := job.Snapshot(); snap.Status == imdpp.JobDone ||
		snap.Status == imdpp.JobFailed || snap.Status == imdpp.JobCancelled {
		writeJSON(w, http.StatusConflict, errorBody{
			Error:  fmt.Sprintf("job %q already finished with status %q", id, snap.Status),
			Code:   "job_finished",
			Status: snap.Status,
		})
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.Snapshot())
}

func (d *daemon) handleSigma(w http.ResponseWriter, r *http.Request) {
	var req sigmaRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	eps, delta, err := sketchParams(req.Epsilon, req.Delta)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p, err := d.loadProblem(req.problemSpec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	est, backend, err := d.svc.Sigma(r.Context(), p, req.Seeds,
		imdpp.SigmaOptions{MC: req.MC, Seed: req.Seed, Epsilon: eps, Delta: delta})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, context.Canceled) {
			status = 499 // client closed request
		}
		writeError(w, status, err)
		return
	}
	resp := sigmaResponse{Estimate: est}
	if backend == imdpp.BackendSketch {
		resp.Backend = backend
	}
	writeJSON(w, http.StatusOK, resp)
}

func (d *daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":             true,
		"uptime_seconds": time.Since(d.start).Seconds(),
	})
}

func (d *daemon) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	datasets := len(d.datasets)
	d.mu.Unlock()
	out := struct {
		imdpp.ServiceMetrics
		// SolveWorkers is the solver worker-pool depth: how many jobs
		// can run concurrently.
		SolveWorkers   int                   `json:"solve_workers"`
		Shard          *imdpp.ShardPoolStats `json:"shard,omitempty"`
		DatasetsCached int                   `json:"datasets_cached"`
		UptimeSeconds  float64               `json:"uptime_seconds"`
	}{
		ServiceMetrics: d.svc.Metrics(),
		SolveWorkers:   d.workers,
		DatasetsCached: datasets,
		UptimeSeconds:  time.Since(d.start).Seconds(),
	}
	if d.pool != nil {
		st := d.pool.Snapshot()
		out.Shard = &st
		// the RPC-latency histogram lives pool-side; overlay it onto the
		// service's latency block so /metrics reports all four
		out.Latency.ShardRPC = d.pool.RPCLatency()
	}
	writeJSON(w, http.StatusOK, out)
}

// errorBody is the daemon's typed error payload. Code is a stable
// machine-readable discriminator (e.g. "job_finished", "queue_full",
// "quota_exceeded"); Status carries the job's settled state where
// relevant; Tenant and RetryAfterSeconds accompany scheduling sheds.
type errorBody struct {
	Error             string          `json:"error"`
	Code              string          `json:"code,omitempty"`
	Status            imdpp.JobStatus `json:"status,omitempty"`
	Tenant            string          `json:"tenant,omitempty"`
	RetryAfterSeconds int             `json:"retry_after_seconds,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	body := errorBody{Error: err.Error()}
	var qe *imdpp.QuotaError
	if errors.As(err, &qe) {
		// typed shed: surface the machine-readable code and the
		// Retry-After estimate both as a header and in the body
		body.Code = qe.Code
		body.Tenant = qe.Tenant
		if secs := int(qe.RetryAfter.Round(time.Second).Seconds()); secs > 0 {
			body.RetryAfterSeconds = secs
			w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		}
	}
	writeJSON(w, status, body)
}

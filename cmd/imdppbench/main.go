// Command imdppbench regenerates the paper's tables and figures.
//
// Usage:
//
//	imdppbench -fig all                # everything (slow)
//	imdppbench -fig 8a,8b              # Fig. 8 only
//	imdppbench -fig 9 -scale 0.5       # Fig. 9 at half dataset scale
//	imdppbench -fig tables,case        # Table II/III + case studies
//
// Figure ids: tables, 8a, 8b, 9, 9h, 10, 11, 12, 13, 14, case.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"imdpp/internal/dataset"
	"imdpp/internal/exp"
)

func main() {
	figs := flag.String("fig", "all", "comma-separated figure ids (tables,8a,8b,9,9h,10,11,12,13,14,case) or 'all'")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	evalMC := flag.Int("evalmc", 64, "Monte-Carlo samples for final evaluation")
	solverMC := flag.Int("mc", 24, "Monte-Carlo samples inside solvers")
	seed := flag.Uint64("seed", 1, "master RNG seed")
	flag.Parse()

	cfg := exp.Config{
		Scale:    dataset.Scale(*scale),
		EvalMC:   *evalMC,
		SolverMC: *solverMC,
		Seed:     *seed,
		Out:      os.Stdout,
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	run := func(id string, f func() error) {
		if !all && !want[id] {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}

	run("tables", func() error {
		if _, err := exp.TableII(cfg); err != nil {
			return err
		}
		_, err := exp.TableIII(cfg)
		return err
	})
	run("8a", func() error { _, err := exp.Fig8a(cfg); return err })
	run("8b", func() error { _, err := exp.Fig8b(cfg); return err })
	run("9", func() error {
		for _, ds := range []string{"Yelp", "Amazon", "Douban"} {
			if _, _, err := exp.Fig9Influence(cfg, ds); err != nil {
				return err
			}
		}
		for _, ds := range []string{"Yelp", "Amazon"} {
			if _, _, err := exp.Fig9VsT(cfg, ds); err != nil {
				return err
			}
		}
		return nil
	})
	run("9h", func() error { _, err := exp.Fig9h(cfg); return err })
	run("10", func() error {
		for _, ds := range []string{"Yelp", "Amazon"} {
			if _, err := exp.Fig10VsBudget(cfg, ds); err != nil {
				return err
			}
			if _, err := exp.Fig10VsT(cfg, ds); err != nil {
				return err
			}
		}
		return nil
	})
	run("11", func() error {
		for _, ds := range []string{"Yelp", "Amazon"} {
			if _, err := exp.Fig11VsBudget(cfg, ds); err != nil {
				return err
			}
			if _, err := exp.Fig11VsT(cfg, ds); err != nil {
				return err
			}
		}
		return nil
	})
	run("12", func() error { _, err := exp.Fig12(cfg); return err })
	run("13", func() error {
		for _, ds := range []string{"Yelp", "Gowalla", "Amazon", "Douban"} {
			if _, err := exp.Fig13(cfg, ds); err != nil {
				return err
			}
		}
		return nil
	})
	run("14", func() error {
		for _, ds := range []string{"Yelp", "Gowalla", "Amazon", "Douban"} {
			if _, err := exp.Fig14(cfg, ds, nil); err != nil {
				return err
			}
		}
		return nil
	})
	run("case", func() error { _, err := exp.CaseStudies(cfg); return err })
}

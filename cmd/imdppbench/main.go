// Command imdppbench regenerates the paper's tables and figures, and
// benchmarks the solver itself.
//
// Usage:
//
//	imdppbench -fig all                # everything (slow)
//	imdppbench -fig 8a,8b              # Fig. 8 only
//	imdppbench -fig 9 -scale 0.5       # Fig. 9 at half dataset scale
//	imdppbench -fig tables,case        # Table II/III + case studies
//	imdppbench -fig solve              # solver bench → BENCH_solve.json
//	imdppbench -fig shard -codec both  # shard wire/plan bench → BENCH_shard.json
//	imdppbench -fig sketch             # RR-sketch (ε, δ) harness → BENCH_sketch.json
//	imdppbench -fig gridcache          # grid-cache cold/warm bench → BENCH_gridcache.json
//
// Figure ids: tables, 8a, 8b, 9, 9h, 10, 11, 12, 13, 14, case, solve,
// shard, sketch, gridcache.
//
// The solve, shard, sketch and gridcache ids are not part of 'all':
// gridcache runs one CELF-heavy solve cold (empty sample-grid cache)
// and once warm (same cache), asserts the two are bit-identical and
// the warm one ≥1.5× faster, and appends the speedup/hit-rate record
// to -gridout (DESIGN.md §10); solve runs one Dysim Solve on a preset
// (-preset/-budget/-T) and writes
// machine-readable phase timings, estimator throughput (samples/sec)
// and σ to -benchout; shard boots an in-process worker fleet and
// drives a CELF-shaped batched-estimation workload through the shard
// RPC, appending one record per codec (-codec json|binary|both) with
// the -weighted planning mode, wire bytes and throughput to
// -shardout; sketch is the statistical harness of the approximate
// backend (DESIGN.md §9) — per synthetic preset it builds an RR index
// at (-epsilon, -delta), asserts every sketch σ lands within the
// ε·n·W additive contract of the MC ground truth, asserts ≥5×
// σ-query throughput on the largest preset, and appends the
// error/throughput records to -sketchout — so CI tracks the perf
// trajectory of the solver, the wire and the approximation together.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"imdpp/internal/core"
	"imdpp/internal/dataset"
	"imdpp/internal/diffusion"
	"imdpp/internal/exp"
	"imdpp/internal/gridcache"
	"imdpp/internal/service"
	"imdpp/internal/shard"
	"imdpp/internal/sketch"
)

func main() {
	figs := flag.String("fig", "all", "comma-separated figure ids (tables,8a,8b,9,9h,10,11,12,13,14,case,solve,shard,sketch) or 'all'")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	evalMC := flag.Int("evalmc", 64, "Monte-Carlo samples for final evaluation")
	solverMC := flag.Int("mc", 24, "Monte-Carlo samples inside solvers")
	seed := flag.Uint64("seed", 1, "master RNG seed")
	preset := flag.String("preset", "Amazon", "dataset preset for -fig solve (Amazon, Yelp, Douban, Gowalla)")
	budget := flag.Float64("budget", 500, "budget for -fig solve")
	promos := flag.Int("T", 10, "promotions for -fig solve")
	benchout := flag.String("benchout", "BENCH_solve.json", "output path of the -fig solve JSON report")
	shardout := flag.String("shardout", "BENCH_shard.json", "append path of the -fig shard JSON records")
	codec := flag.String("codec", "both", "-fig shard wire codec: json, binary or both (one record each)")
	weighted := flag.Bool("weighted", true, "-fig shard: throughput-proportional shard planning")
	shardN := flag.Int("shards", 2, "-fig shard: in-process worker count")
	epsilon := flag.Float64("epsilon", 0.05, "-fig sketch: additive accuracy ε of the (ε, δ) contract")
	delta := flag.Float64("delta", 0.05, "-fig sketch: failure probability δ of the (ε, δ) contract")
	sketchout := flag.String("sketchout", "BENCH_sketch.json", "append path of the -fig sketch JSON records")
	gridout := flag.String("gridout", "BENCH_gridcache.json", "append path of the -fig gridcache JSON records")
	flag.Parse()

	cfg := exp.Config{
		Scale:    dataset.Scale(*scale),
		EvalMC:   *evalMC,
		SolverMC: *solverMC,
		Seed:     *seed,
		Out:      os.Stdout,
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	run := func(id string, f func() error) {
		if !all && !want[id] {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}

	run("tables", func() error {
		if _, err := exp.TableII(cfg); err != nil {
			return err
		}
		_, err := exp.TableIII(cfg)
		return err
	})
	run("8a", func() error { _, err := exp.Fig8a(cfg); return err })
	run("8b", func() error { _, err := exp.Fig8b(cfg); return err })
	run("9", func() error {
		for _, ds := range []string{"Yelp", "Amazon", "Douban"} {
			if _, _, err := exp.Fig9Influence(cfg, ds); err != nil {
				return err
			}
		}
		for _, ds := range []string{"Yelp", "Amazon"} {
			if _, _, err := exp.Fig9VsT(cfg, ds); err != nil {
				return err
			}
		}
		return nil
	})
	run("9h", func() error { _, err := exp.Fig9h(cfg); return err })
	run("10", func() error {
		for _, ds := range []string{"Yelp", "Amazon"} {
			if _, err := exp.Fig10VsBudget(cfg, ds); err != nil {
				return err
			}
			if _, err := exp.Fig10VsT(cfg, ds); err != nil {
				return err
			}
		}
		return nil
	})
	run("11", func() error {
		for _, ds := range []string{"Yelp", "Amazon"} {
			if _, err := exp.Fig11VsBudget(cfg, ds); err != nil {
				return err
			}
			if _, err := exp.Fig11VsT(cfg, ds); err != nil {
				return err
			}
		}
		return nil
	})
	run("12", func() error { _, err := exp.Fig12(cfg); return err })
	run("13", func() error {
		for _, ds := range []string{"Yelp", "Gowalla", "Amazon", "Douban"} {
			if _, err := exp.Fig13(cfg, ds); err != nil {
				return err
			}
		}
		return nil
	})
	run("14", func() error {
		for _, ds := range []string{"Yelp", "Gowalla", "Amazon", "Douban"} {
			if _, err := exp.Fig14(cfg, ds, nil); err != nil {
				return err
			}
		}
		return nil
	})
	run("case", func() error { _, err := exp.CaseStudies(cfg); return err })
	if want["solve"] {
		start := time.Now()
		if err := solveBench(*preset, *scale, *budget, *promos, *solverMC, *seed, *benchout); err != nil {
			fmt.Fprintf(os.Stderr, "solve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[solve done in %v]\n", time.Since(start).Round(time.Millisecond))
	}
	if want["shard"] {
		start := time.Now()
		if err := shardBench(*preset, *scale, *budget, *promos, *solverMC, *seed, *codec, *weighted, *shardN, *shardout); err != nil {
			fmt.Fprintf(os.Stderr, "shard: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[shard done in %v]\n", time.Since(start).Round(time.Millisecond))
	}
	if want["sketch"] {
		start := time.Now()
		if err := sketchBench(*scale, *budget, *promos, *evalMC, *seed, *epsilon, *delta, *sketchout); err != nil {
			fmt.Fprintf(os.Stderr, "sketch: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[sketch done in %v]\n", time.Since(start).Round(time.Millisecond))
	}
	if want["gridcache"] {
		start := time.Now()
		if err := gridcacheBench(*preset, *scale, *budget, *promos, *solverMC, *seed, *gridout); err != nil {
			fmt.Fprintf(os.Stderr, "gridcache: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[gridcache done in %v]\n", time.Since(start).Round(time.Millisecond))
	}
}

// gridReport is one appended line of the sample-grid memoization
// trajectory (BENCH_gridcache.json): the cold and warm wall times of
// one identical CELF-heavy solve, the cache's hit rate over the warm
// pass and the simulations it saved. samples_per_sec carries the warm
// pass's effective throughput — (simulated + cache-served) samples per
// second — so scripts/bench_diff.sh can diff it like the other
// trajectories; the speedup must clear 1.5× or the bench fails.
type gridReport struct {
	TS     int64   `json:"ts"`
	Bench  string  `json:"bench"`
	Preset string  `json:"preset"`
	Scale  float64 `json:"scale"`
	Budget float64 `json:"budget"`
	T      int     `json:"t"`
	MC     int     `json:"mc"`
	Seed   uint64  `json:"seed"`

	ColdMS        float64 `json:"cold_ms"`
	WarmMS        float64 `json:"warm_ms"`
	Speedup       float64 `json:"speedup"`
	HitRate       float64 `json:"hit_rate"`
	Hits          uint64  `json:"hits"`
	Lookups       uint64  `json:"lookups"`
	SamplesSaved  uint64  `json:"samples_saved"`
	CacheBytes    int64   `json:"cache_bytes"`
	CacheEntries  int     `json:"cache_entries"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	Sigma         float64 `json:"sigma"`
}

// gridcacheBench measures the DESIGN.md §10 win end to end: the same
// CELF-heavy solve once against an empty shared grid cache (cold —
// simulating and committing every grid) and once against the warm
// cache (served from memory). The §3 determinism contract makes the
// two bit-comparable, so the bench asserts bit-identical σ and seed
// schedules before trusting the timings, then asserts the warm pass
// ≥1.5× faster and appends the record to out.
func gridcacheBench(preset string, scale, budget float64, T, mc int, seed uint64, out string) error {
	builders := map[string]func(dataset.Scale) (*dataset.Dataset, error){
		"Amazon": dataset.Amazon, "Yelp": dataset.Yelp,
		"Douban": dataset.Douban, "Gowalla": dataset.Gowalla,
	}
	build, ok := builders[preset]
	if !ok {
		return fmt.Errorf("unknown preset %q", preset)
	}
	d, err := build(dataset.Scale(scale))
	if err != nil {
		return err
	}
	p := d.Clone(budget, T)

	cache := gridcache.New(gridcache.Config{
		KeyFn: func(p *diffusion.Problem) string { return service.HashProblem(p).String() },
	})
	opt := core.Options{MC: mc, Seed: seed, GridCache: cache}

	coldStart := time.Now()
	cold, err := core.Solve(p, opt)
	if err != nil {
		return err
	}
	coldElapsed := time.Since(coldStart)
	preWarm := cache.Stats()

	warmStart := time.Now()
	warm, err := core.Solve(p, opt)
	if err != nil {
		return err
	}
	warmElapsed := time.Since(warmStart)
	st := cache.Stats()

	if math.Float64bits(cold.Sigma) != math.Float64bits(warm.Sigma) {
		return fmt.Errorf("warm solve σ %v != cold %v — the cache changed bits", warm.Sigma, cold.Sigma)
	}
	if len(cold.Seeds) != len(warm.Seeds) {
		return fmt.Errorf("warm solve picked %d seeds, cold %d", len(warm.Seeds), len(cold.Seeds))
	}
	for i := range cold.Seeds {
		if cold.Seeds[i] != warm.Seeds[i] {
			return fmt.Errorf("warm seed %d %+v != cold %+v", i, warm.Seeds[i], cold.Seeds[i])
		}
	}

	warmLookups := st.Lookups - preWarm.Lookups
	warmHits := st.Hits - preWarm.Hits
	rep := gridReport{
		TS: time.Now().Unix(), Bench: "gridcache", Preset: preset, Scale: scale,
		Budget: budget, T: T, MC: mc, Seed: seed,
		ColdMS:       float64(coldElapsed.Microseconds()) / 1e3,
		WarmMS:       float64(warmElapsed.Microseconds()) / 1e3,
		Hits:         warmHits,
		Lookups:      warmLookups,
		SamplesSaved: st.SamplesSaved - preWarm.SamplesSaved,
		CacheBytes:   st.Bytes,
		CacheEntries: st.Entries,
		Sigma:        warm.Sigma,
	}
	if warmLookups > 0 {
		rep.HitRate = float64(warmHits) / float64(warmLookups)
	}
	if secs := warmElapsed.Seconds(); secs > 0 {
		rep.SamplesPerSec = float64(warm.Stats.SamplesSimulated+rep.SamplesSaved) / secs
	}
	if rep.WarmMS > 0 {
		rep.Speedup = rep.ColdMS / rep.WarmMS
	}
	if rep.Speedup < 1.5 {
		return fmt.Errorf("warm solve only %.2f× faster than cold (want ≥1.5×): cold %.0fms warm %.0fms hit rate %.0f%%",
			rep.Speedup, rep.ColdMS, rep.WarmMS, 100*rep.HitRate)
	}

	f, err := os.OpenFile(out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(rep); err != nil {
		return err
	}
	fmt.Printf("gridcache: preset=%s scale=%g cold=%.0fms warm=%.0fms speedup=%.1f× hit-rate=%.0f%% saved=%d samples → %s\n",
		preset, scale, rep.ColdMS, rep.WarmMS, rep.Speedup, 100*rep.HitRate, rep.SamplesSaved, out)
	return nil
}

// shardReport is one appended line of the shard wire/planning
// trajectory (BENCH_shard.json): which codec and planner produced the
// numbers, the wire bytes they cost, and the estimation throughput.
type shardReport struct {
	TS       int64   `json:"ts"`
	Bench    string  `json:"bench"`
	Preset   string  `json:"preset"`
	Scale    float64 `json:"scale"`
	Codec    string  `json:"codec"`
	Weighted bool    `json:"weighted"`
	Shards   int     `json:"shards"`
	MC       int     `json:"mc"`
	Groups   int     `json:"groups"`
	Batches  int     `json:"batches"`

	Samples         uint64  `json:"samples_simulated"`
	SamplesPerSec   float64 `json:"samples_per_sec"`
	BytesTx         uint64  `json:"bytes_tx"`
	BytesRx         uint64  `json:"bytes_rx"`
	Redispatches    uint64  `json:"redispatches"`
	SpeculativeHits uint64  `json:"speculative_hits"`
	Sigma           float64 `json:"sigma"`
}

// shardBench boots an in-process worker fleet and drives a CELF-shaped
// batched-estimation workload (one problem upload amortized over
// many-group σ batches) through the shard RPC, appending one record
// per requested codec to out. σ of group 0 is recorded so trajectory
// diffs can also confirm the modes agree bit-for-bit.
func shardBench(preset string, scale, budget float64, T, mc int, seed uint64, codec string, weighted bool, shards int, out string) error {
	var codecs []string
	switch codec {
	case "both":
		codecs = []string{"json", "binary"}
	case "json", "binary":
		codecs = []string{codec}
	default:
		return fmt.Errorf("unknown codec %q (want json|binary|both)", codec)
	}
	builders := map[string]func(dataset.Scale) (*dataset.Dataset, error){
		"Amazon": dataset.Amazon, "Yelp": dataset.Yelp,
		"Douban": dataset.Douban, "Gowalla": dataset.Gowalla,
	}
	build, ok := builders[preset]
	if !ok {
		return fmt.Errorf("unknown preset %q", preset)
	}
	d, err := build(dataset.Scale(scale))
	if err != nil {
		return err
	}
	p := d.Clone(budget, T)

	const nGroups, batches = 24, 6
	groups := make([][]diffusion.Seed, nGroups)
	for i := range groups {
		groups[i] = []diffusion.Seed{
			{User: i % p.NumUsers(), Item: i % p.NumItems(), T: 1},
			{User: (i * 7) % p.NumUsers(), Item: (i + 1) % p.NumItems(), T: 1 + i%p.T},
		}
	}

	f, err := os.OpenFile(out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)

	for _, c := range codecs {
		urls := make([]string, shards)
		servers := make([]*httptest.Server, shards)
		for i := range urls {
			w := shard.NewWorker(shard.WorkerConfig{})
			mux := http.NewServeMux()
			w.Mount(mux)
			mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
				rw.WriteHeader(http.StatusOK)
				_, _ = rw.Write([]byte(`{"ok":true}`))
			})
			servers[i] = httptest.NewServer(mux)
			urls[i] = servers[i].URL
		}
		pool := shard.NewPool(urls, nil)
		if err := pool.SetCodec(c); err != nil {
			return err
		}
		pool.SetWeighted(weighted)
		est := shard.NewEstimator(pool, p, mc, seed, 0)

		start := time.Now()
		var sigma0 float64
		for b := 0; b < batches; b++ {
			ests := est.RunBatchPi(groups, nil)
			sigma0 = ests[0].Sigma
		}
		elapsed := time.Since(start)
		st := pool.Snapshot()
		pool.Close()
		for _, srv := range servers {
			srv.Close()
		}
		if st.LocalFallbacks > 0 {
			return fmt.Errorf("codec %s: %d local fallbacks — the fleet was not exercised", c, st.LocalFallbacks)
		}

		samples := uint64(nGroups * mc * batches)
		rep := shardReport{
			TS: time.Now().Unix(), Bench: "shard", Preset: preset, Scale: scale,
			Codec: c, Weighted: st.Weighted, Shards: shards,
			MC: mc, Groups: nGroups, Batches: batches,
			Samples:         samples,
			BytesTx:         st.BytesTx,
			BytesRx:         st.BytesRx,
			Redispatches:    st.Redispatches,
			SpeculativeHits: st.SpeculativeHits,
			Sigma:           sigma0,
		}
		if secs := elapsed.Seconds(); secs > 0 {
			rep.SamplesPerSec = float64(samples) / secs
		}
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Printf("shard: codec=%s weighted=%v shards=%d σ₀=%.3f throughput=%.0f samples/sec wire=%d tx + %d rx bytes\n",
			c, weighted, shards, sigma0, rep.SamplesPerSec, st.BytesTx, st.BytesRx)
	}
	return nil
}

// sketchReport is one appended line of the approximate-backend
// trajectory (BENCH_sketch.json): the (ε, δ) point and the θ it
// implied, the worst σ deviation observed against the MC ground truth
// next to the ε·n·W bound it must stay under, and the sketch-vs-MC
// σ-query throughput. samples_per_sec carries the sketch query rate
// so scripts/bench_diff.sh can diff it like the other trajectories.
type sketchReport struct {
	TS      int64   `json:"ts"`
	Bench   string  `json:"bench"`
	Preset  string  `json:"preset"`
	Scale   float64 `json:"scale"`
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	Theta   int     `json:"theta"`
	Users   int     `json:"users"`
	Items   int     `json:"items"`
	Groups  int     `json:"groups"`

	Bound         float64 `json:"bound"`
	MaxAbsErr     float64 `json:"max_abs_err"`
	BuildMS       float64 `json:"build_ms"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	MCPerSec      float64 `json:"mc_queries_per_sec"`
	Speedup       float64 `json:"speedup"`
	Sigma0        float64 `json:"sigma"`
}

// sketchBench is the statistical harness behind the DESIGN.md §9
// accuracy contract. For each synthetic preset (smallest first,
// Douban — the largest — last, so trajectory diffs read the hardest
// record) it runs the same σ-query workload through the exact MC
// estimator and through an RR sketch built at (ε, δ), then asserts
// the two promises the contract makes: every sketch σ within the
// additive ε·n·W bound of the MC ground truth, and ≥5× σ-query
// throughput over MC on the largest preset. One record per preset is
// appended to out.
func sketchBench(scale, budget float64, T, evalMC int, seed uint64, eps, delta float64, out string) error {
	theta := sketch.Theta(eps, delta)
	if theta <= 0 {
		return fmt.Errorf("invalid (ε, δ) = (%g, %g)", eps, delta)
	}
	builders := map[string]func(dataset.Scale) (*dataset.Dataset, error){
		"Amazon": dataset.Amazon, "Yelp": dataset.Yelp,
		"Douban": dataset.Douban, "Gowalla": dataset.Gowalla,
	}
	presets := []string{"Yelp", "Gowalla", "Amazon", "Douban"}

	f, err := os.OpenFile(out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)

	for _, preset := range presets {
		d, err := builders[preset](dataset.Scale(scale))
		if err != nil {
			return err
		}
		p := d.Clone(budget, T)
		// The (ε, δ) contract is stated for the static diffusion regime,
		// where RR coverage is an unbiased σ estimator (DESIGN.md §9);
		// under dynamic re-weighting the sketch is a heuristic with no
		// bound to assert. The harness therefore pins Static — the same
		// regime the theorem (and the sketch backend's intended use:
		// cheap σ triage before an exact dynamic solve) lives in.
		p.Params.Static = true

		const nGroups = 24
		groups := make([][]diffusion.Seed, nGroups)
		for i := range groups {
			groups[i] = []diffusion.Seed{
				{User: i % p.NumUsers(), Item: i % p.NumItems(), T: 1},
				{User: (i * 7) % p.NumUsers(), Item: (i + 1) % p.NumItems(), T: 1 + i%p.T},
			}
		}

		mc := diffusion.NewEstimator(p, evalMC, seed)
		mcStart := time.Now()
		truth := mc.SigmaBatch(groups)
		mcElapsed := time.Since(mcStart)

		buildStart := time.Now()
		sk, err := sketch.Build(p, sketch.Params{Epsilon: eps, Delta: delta, Seed: seed}, 0, nil)
		if err != nil {
			return fmt.Errorf("%s: build: %w", preset, err)
		}
		buildElapsed := time.Since(buildStart)

		bound := eps * float64(sk.Users) * sk.WSum
		var sc sketch.Scratch
		maxAbs := 0.0
		for gi, g := range groups {
			got := sk.Estimate(g, nil, nil, &sc).Sigma
			if diff := math.Abs(got - truth[gi]); diff > maxAbs {
				maxAbs = diff
			}
		}
		if maxAbs > bound {
			return fmt.Errorf("%s: (ε, δ) contract violated: max |σ_sketch − σ_mc| = %.4f > ε·n·W = %.4f (ε=%g δ=%g θ=%d)",
				preset, maxAbs, bound, eps, delta, sk.Theta)
		}

		// Query-throughput race on identical workloads: one "query" is
		// one seed-group σ evaluation. Repetitions double until the
		// sketch side runs long enough to time reliably.
		reps := 1
		var qElapsed time.Duration
		for {
			start := time.Now()
			for r := 0; r < reps; r++ {
				for _, g := range groups {
					_ = sk.Estimate(g, nil, nil, &sc)
				}
			}
			qElapsed = time.Since(start)
			if qElapsed >= 50*time.Millisecond || reps >= 1<<20 {
				break
			}
			reps *= 2
		}

		rep := sketchReport{
			TS: time.Now().Unix(), Bench: "sketch", Preset: preset, Scale: scale,
			Epsilon: eps, Delta: delta, Theta: sk.Theta,
			Users: sk.Users, Items: sk.Items, Groups: nGroups,
			Bound: bound, MaxAbsErr: maxAbs,
			BuildMS: float64(buildElapsed.Microseconds()) / 1e3,
			Sigma0:  truth[0],
		}
		if secs := qElapsed.Seconds(); secs > 0 {
			rep.SamplesPerSec = float64(reps*nGroups) / secs
		}
		if secs := mcElapsed.Seconds(); secs > 0 {
			rep.MCPerSec = float64(nGroups) / secs
		}
		if rep.MCPerSec > 0 {
			rep.Speedup = rep.SamplesPerSec / rep.MCPerSec
		}
		if preset == "Douban" && rep.Speedup < 5 {
			return fmt.Errorf("%s: sketch σ-query throughput only %.1f× MC (want ≥5×)", preset, rep.Speedup)
		}
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Printf("sketch: preset=%s θ=%d max|Δσ|=%.4f of bound %.1f build=%.1fms speedup=%.0f×\n",
			preset, sk.Theta, maxAbs, bound, rep.BuildMS, rep.Speedup)
	}
	return nil
}

// benchReport is the machine-readable solver benchmark record; one per
// run, appended to the repo's perf trajectory by CI artifacts.
type benchReport struct {
	Preset string  `json:"preset"`
	Scale  float64 `json:"scale"`
	Budget float64 `json:"budget"`
	T      int     `json:"t"`
	Seed   uint64  `json:"seed"`
	MC     int     `json:"mc"`
	Users  int     `json:"users"`
	Items  int     `json:"items"`

	SelectMS   float64 `json:"select_ms"`
	MarketMS   float64 `json:"market_ms"`
	ScheduleMS float64 `json:"schedule_ms"`
	TotalMS    float64 `json:"total_ms"`

	Sigma         float64 `json:"sigma"`
	Seeds         int     `json:"seeds"`
	Cost          float64 `json:"cost"`
	Markets       int     `json:"markets"`
	Groups        int     `json:"groups"`
	SigmaEvals    int     `json:"sigma_evals"`
	SIEvals       int     `json:"si_evals"`
	Samples       uint64  `json:"samples"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	// StateBytes is the peak per-worker simulation-state footprint; the
	// sparse State layout keeps it proportional to cascade size.
	StateBytes uint64 `json:"state_bytes_per_worker"`
}

// solveBench runs one Dysim Solve on the preset and writes the phase
// timings and estimator throughput as JSON to out.
func solveBench(preset string, scale, budget float64, T, mc int, seed uint64, out string) error {
	builders := map[string]func(dataset.Scale) (*dataset.Dataset, error){
		"Amazon": dataset.Amazon, "Yelp": dataset.Yelp,
		"Douban": dataset.Douban, "Gowalla": dataset.Gowalla,
	}
	build, ok := builders[preset]
	if !ok {
		return fmt.Errorf("unknown preset %q", preset)
	}
	d, err := build(dataset.Scale(scale))
	if err != nil {
		return err
	}
	p := d.Clone(budget, T)
	sol, err := core.Solve(p, core.Options{MC: mc, Seed: seed})
	if err != nil {
		return err
	}
	st := sol.Stats
	rep := benchReport{
		Preset: preset, Scale: scale, Budget: budget, T: T, Seed: seed, MC: mc,
		Users: p.NumUsers(), Items: p.NumItems(),
		SelectMS:   float64(st.SelectTime.Microseconds()) / 1e3,
		MarketMS:   float64(st.MarketTime.Microseconds()) / 1e3,
		ScheduleMS: float64(st.ScheduleTime.Microseconds()) / 1e3,
		TotalMS:    float64(st.TotalTime.Microseconds()) / 1e3,
		Sigma:      sol.Sigma, Seeds: len(sol.Seeds), Cost: sol.Cost,
		Markets: st.MarketCount, Groups: st.GroupCount,
		SigmaEvals: st.SigmaEvals, SIEvals: st.SIEvals,
		Samples:    st.SamplesSimulated,
		StateBytes: st.StateBytesPerWorker,
	}
	if secs := st.TotalTime.Seconds(); secs > 0 {
		rep.SamplesPerSec = float64(st.SamplesSimulated) / secs
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("solve: preset=%s scale=%g σ=%.1f seeds=%d total=%.0fms throughput=%.0f samples/sec → %s\n",
		preset, scale, sol.Sigma, len(sol.Seeds), rep.TotalMS, rep.SamplesPerSec, out)
	return nil
}

// Command imdpprun solves one IMDPP instance with a chosen algorithm
// and prints the seed schedule and influence estimate.
//
// Usage:
//
//	imdpprun -dataset amazon -algo dysim -budget 500 -T 10
//	imdpprun -dataset yelp -algo bgrd -budget 200 -T 5 -evalmc 200
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"imdpp"
)

func main() {
	name := flag.String("dataset", "amazon", "amazon|yelp|douban|gowalla|sample")
	algo := flag.String("algo", "dysim", "dysim|adaptive|bgrd|hag|ps|drhga")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	budget := flag.Float64("budget", 500, "total budget b")
	promos := flag.Int("T", 10, "number of promotions")
	mc := flag.Int("mc", 24, "solver Monte-Carlo samples")
	evalMC := flag.Int("evalmc", 100, "evaluation Monte-Carlo samples")
	seed := flag.Uint64("seed", 1, "RNG master seed")
	flag.Parse()

	var (
		d   *imdpp.Dataset
		err error
	)
	s := imdpp.Scale(*scale)
	switch strings.ToLower(*name) {
	case "amazon":
		d, err = imdpp.AmazonDataset(s)
	case "yelp":
		d, err = imdpp.YelpDataset(s)
	case "douban":
		d, err = imdpp.DoubanDataset(s)
	case "gowalla":
		d, err = imdpp.GowallaDataset(s)
	case "sample":
		d, err = imdpp.AmazonSampleDataset()
	default:
		err = fmt.Errorf("unknown dataset %q", *name)
	}
	fatal(err)

	p := d.Clone(*budget, *promos)
	start := time.Now()
	var seeds []imdpp.Seed
	switch strings.ToLower(*algo) {
	case "dysim":
		sol, e := imdpp.Solve(p, imdpp.Options{MC: *mc, Seed: *seed})
		fatal(e)
		seeds = sol.Seeds
	case "adaptive":
		sol, e := imdpp.SolveAdaptive(p, imdpp.Options{MC: *mc, Seed: *seed, CandidateCap: 64})
		fatal(e)
		seeds = sol.Seeds
	case "bgrd":
		sol, e := imdpp.BGRD(p, imdpp.BaselineOptions{MC: *mc, Seed: *seed})
		fatal(e)
		seeds = sol.Seeds
	case "hag":
		sol, e := imdpp.HAG(p, imdpp.BaselineOptions{MC: *mc, Seed: *seed})
		fatal(e)
		seeds = sol.Seeds
	case "ps":
		sol, e := imdpp.PS(p, imdpp.BaselineOptions{MC: *mc, Seed: *seed})
		fatal(e)
		seeds = sol.Seeds
	case "drhga":
		sol, e := imdpp.DRHGA(p, imdpp.BaselineOptions{MC: *mc, Seed: *seed})
		fatal(e)
		seeds = sol.Seeds
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	elapsed := time.Since(start)

	est := imdpp.NewEstimator(p, *evalMC, *seed+1000)
	run := est.Run(seeds, nil, false)

	fmt.Printf("%s on %s: %d seeds, cost %.1f/%.0f, σ = %.1f, %.1f adoptions, %v\n",
		*algo, d.Spec.Name, len(seeds), p.SeedCost(seeds), p.Budget,
		run.Sigma, run.Adoptions, elapsed.Round(time.Millisecond))

	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].T != seeds[j].T {
			return seeds[i].T < seeds[j].T
		}
		return seeds[i].User < seeds[j].User
	})
	for _, sd := range seeds {
		fmt.Printf("  t=%-3d user=%-6d item=%-4d cost=%.1f\n",
			sd.T, sd.User, sd.Item, p.CostOf(sd.User, sd.Item))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "imdpprun:", err)
		os.Exit(1)
	}
}

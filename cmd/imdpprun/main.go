// Command imdpprun solves one IMDPP instance with a chosen algorithm
// and prints the seed schedule and influence estimate.
//
// Usage:
//
//	imdpprun -dataset amazon -algo dysim -budget 500 -T 10
//	imdpprun -dataset yelp -algo bgrd -budget 200 -T 5 -evalmc 200
//	imdpprun -dataset sample -algo dysim -json   # machine-readable output
//	imdpprun -dataset amazon -workers http://hostA:8081,http://hostB:8081
//
// -workers fans the solver's σ/π estimation out over `imdppd -worker`
// processes (DESIGN.md §7); the result is bit-identical to a local
// run. It applies to the dysim and adaptive algorithms, which run
// through the estimator backend; the baselines always estimate
// locally.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"imdpp"
)

// runResult is the -json output: the solver's Solution (stable field
// names shared with the imdppd daemon) plus the run's context and the
// independent evaluation estimate.
type runResult struct {
	Algo      string         `json:"algo"`
	Dataset   string         `json:"dataset"`
	Elapsed   float64        `json:"elapsed_seconds"`
	Solution  imdpp.Solution `json:"solution"`
	Eval      imdpp.Estimate `json:"eval"` // independent-seed estimate of σ(Seeds)
	EvalMC    int            `json:"eval_mc"`
	EvalSeed  uint64         `json:"eval_seed"`
	SeedCount int            `json:"seed_count"`
}

func main() {
	name := flag.String("dataset", "amazon", "amazon|yelp|douban|gowalla|sample")
	algo := flag.String("algo", "dysim", "dysim|adaptive|bgrd|hag|ps|drhga")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	budget := flag.Float64("budget", 500, "total budget b")
	promos := flag.Int("T", 10, "number of promotions")
	mc := flag.Int("mc", 24, "solver Monte-Carlo samples")
	evalMC := flag.Int("evalmc", 100, "evaluation Monte-Carlo samples")
	seed := flag.Uint64("seed", 1, "RNG master seed")
	asJSON := flag.Bool("json", false, "emit the result as JSON on stdout")
	workerURLs := flag.String("workers", "", "comma-separated shard worker base URLs (imdppd -worker); dysim/adaptive σ/π estimation fans out over them")
	flag.Parse()

	if *mc < 1 {
		fatal(&imdpp.InputError{Field: "MC", Reason: fmt.Sprintf("sample count %d < 1", *mc)})
	}
	if *evalMC < 1 {
		fatal(&imdpp.InputError{Field: "EvalMC", Reason: fmt.Sprintf("sample count %d < 1", *evalMC)})
	}

	d, err := imdpp.LoadDataset(*name, *scale)
	fatal(err)

	p := d.Clone(*budget, *promos)
	opt := imdpp.Options{MC: *mc, Seed: *seed}
	if *workerURLs != "" {
		pool := imdpp.NewShardPool(strings.Split(*workerURLs, ","), nil)
		defer pool.Close()
		healthy := pool.Check(context.Background())
		fmt.Fprintf(os.Stderr, "imdpprun: shard pool: %d/%d workers healthy\n", healthy, pool.Size())
		opt.Backend = imdpp.ShardBackend(pool)
	}
	// one shared gate with the daemon: typed errors for bad budget/T/options
	fatal(imdpp.ValidateRequest(p, opt))

	start := time.Now()
	var sol imdpp.Solution
	switch strings.ToLower(*algo) {
	case "dysim":
		s, e := imdpp.Solve(p, opt)
		fatal(e)
		sol = s
	case "adaptive":
		opt.CandidateCap = 64
		s, e := imdpp.SolveAdaptive(p, opt)
		fatal(e)
		sol = s
	case "bgrd":
		s, e := imdpp.BGRD(p, imdpp.BaselineOptions{MC: *mc, Seed: *seed})
		fatal(e)
		sol = imdpp.Solution{Seeds: s.Seeds, Cost: p.SeedCost(s.Seeds), Sigma: s.Sigma}
	case "hag":
		s, e := imdpp.HAG(p, imdpp.BaselineOptions{MC: *mc, Seed: *seed})
		fatal(e)
		sol = imdpp.Solution{Seeds: s.Seeds, Cost: p.SeedCost(s.Seeds), Sigma: s.Sigma}
	case "ps":
		s, e := imdpp.PS(p, imdpp.BaselineOptions{MC: *mc, Seed: *seed})
		fatal(e)
		sol = imdpp.Solution{Seeds: s.Seeds, Cost: p.SeedCost(s.Seeds), Sigma: s.Sigma}
	case "drhga":
		s, e := imdpp.DRHGA(p, imdpp.BaselineOptions{MC: *mc, Seed: *seed})
		fatal(e)
		sol = imdpp.Solution{Seeds: s.Seeds, Cost: p.SeedCost(s.Seeds), Sigma: s.Sigma}
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	elapsed := time.Since(start)
	seeds := sol.Seeds

	est := imdpp.NewEstimator(p, *evalMC, *seed+1000)
	run := est.Run(seeds, nil, false)

	if *asJSON {
		out := runResult{
			Algo:      strings.ToLower(*algo),
			Dataset:   d.Spec.Name,
			Elapsed:   elapsed.Seconds(),
			Solution:  sol,
			Eval:      run,
			EvalMC:    *evalMC,
			EvalSeed:  *seed + 1000,
			SeedCount: len(seeds),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(out))
		return
	}

	fmt.Printf("%s on %s: %d seeds, cost %.1f/%.0f, σ = %.1f, %.1f adoptions, %v\n",
		*algo, d.Spec.Name, len(seeds), p.SeedCost(seeds), p.Budget,
		run.Sigma, run.Adoptions, elapsed.Round(time.Millisecond))

	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].T != seeds[j].T {
			return seeds[i].T < seeds[j].T
		}
		return seeds[i].User < seeds[j].User
	})
	for _, sd := range seeds {
		fmt.Printf("  t=%-3d user=%-6d item=%-4d cost=%.1f\n",
			sd.T, sd.User, sd.Item, p.CostOf(sd.User, sd.Item))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "imdpprun:", err)
		os.Exit(1)
	}
}

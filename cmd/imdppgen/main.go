// Command imdppgen generates a synthetic dataset and prints its
// Table II-style statistics, optionally dumping the social network and
// knowledge graph as edge lists for external inspection.
//
// Usage:
//
//	imdppgen -dataset amazon -scale 1.0
//	imdppgen -dataset yelp -dump /tmp/yelp
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"imdpp/internal/dataset"
)

func main() {
	name := flag.String("dataset", "amazon", "amazon|yelp|douban|gowalla|sample|classes")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	dump := flag.String("dump", "", "directory to write edge-list dumps (optional)")
	flag.Parse()

	s := dataset.Scale(*scale)
	var ds []*dataset.Dataset
	switch strings.ToLower(*name) {
	case "amazon":
		d, err := dataset.Amazon(s)
		fatal(err)
		ds = append(ds, d)
	case "yelp":
		d, err := dataset.Yelp(s)
		fatal(err)
		ds = append(ds, d)
	case "douban":
		d, err := dataset.Douban(s)
		fatal(err)
		ds = append(ds, d)
	case "gowalla":
		d, err := dataset.Gowalla(s)
		fatal(err)
		ds = append(ds, d)
	case "sample":
		d, err := dataset.AmazonSample()
		fatal(err)
		ds = append(ds, d)
	case "classes":
		for _, spec := range dataset.ClassSpecs() {
			d, err := dataset.BuildClass(spec, 1)
			fatal(err)
			ds = append(ds, d)
		}
	default:
		fatal(fmt.Errorf("unknown dataset %q", *name))
	}

	for _, d := range ds {
		st := d.Stats()
		fmt.Printf("%s: nodeTypes=%d nodes=%d users=%d items=%d edgeTypes=%d edges=%d friendships=%d directed=%v avgInfluence=%.3f avgImportance=%.2f\n",
			st.Name, st.NodeTypes, st.Nodes, st.Users, st.Items, st.EdgeTypes,
			st.Edges, st.Friendships, st.Directed, st.AvgInfluence, st.AvgImportance)
		if *dump != "" {
			fatal(dumpDataset(d, *dump))
		}
	}
}

func dumpDataset(d *dataset.Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// social edges
	f, err := os.Create(filepath.Join(dir, d.Spec.Name+".social.tsv"))
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	g := d.Problem.G
	for u := 0; u < g.N(); u++ {
		arcs := g.Out(u)
		for i, to := range arcs.To {
			fmt.Fprintf(w, "%d\t%d\t%.6f\n", u, to, arcs.W[i])
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// KG edges
	f, err = os.Create(filepath.Join(dir, d.Spec.Name+".kg.tsv"))
	if err != nil {
		return err
	}
	w = bufio.NewWriter(f)
	k := d.Problem.KG
	for v := 0; v < k.N(); v++ {
		for _, te := range k.Out(v) {
			fmt.Fprintf(w, "%d\t%s\t%d\t%s\t%s\n",
				v, k.NodeTypeName(k.NodeTypeOf(v)), te.To,
				k.NodeTypeName(k.NodeTypeOf(int(te.To))), k.EdgeTypeName(te.ET))
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "imdppgen:", err)
		os.Exit(1)
	}
}
